// Chaos conformance: every fault-tolerant serving topology — the
// auto-re-dialing Reliable session, the health-tracked Pool, the hedged
// k-of-n MultiServer, the replicated shard Router, and the batched
// coalescing stack — is driven through deterministic fault injection
// (resets mid-frame, latency spikes, torn and silently dropped writes)
// and must return byte-identical answers to the fault-free reference.
// The harness itself lives in internal/apitest (Chaos).
package sssearch

import (
	"crypto/rand"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sssearch/internal/apitest"
	"sssearch/internal/client"
	"sssearch/internal/coalesce"
	"sssearch/internal/core"
	"sssearch/internal/faultconn"
	"sssearch/internal/metrics"
	"sssearch/internal/resilience"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/shard"
	"sssearch/internal/sharing"
)

// chaosDialer dials a daemon through fault-injecting connection wrappers.
// Every dial draws a fresh seed so a connection that dies to an injected
// fault is not re-dialed into the identical fault at the identical
// offset, and each attempt's conn is retained so tests can assert the
// schedule really fired. The dial itself retries a few times: an injected
// reset can land inside the handshake, and a real dialer would just dial
// again.
type chaosDialer struct {
	addr string
	cfg  faultconn.Config
	seed atomic.Int64

	mu    sync.Mutex
	conns []*faultconn.Conn
}

func newChaosDialer(addr string, cfg faultconn.Config) *chaosDialer {
	return &chaosDialer{addr: addr, cfg: cfg}
}

func (d *chaosDialer) dial() (*client.Remote, error) {
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		conn, err := net.Dial("tcp", d.addr)
		if err != nil {
			lastErr = err
			continue
		}
		cfg := d.cfg
		cfg.Seed = d.cfg.Seed + d.seed.Add(1)*1000003
		fc := faultconn.New(conn, cfg)
		d.mu.Lock()
		d.conns = append(d.conns, fc)
		d.mu.Unlock()
		// Bound the handshake: a silently dropped Hello would otherwise
		// block the handshake read forever (session reads are bounded by
		// the caller's per-attempt timeouts instead).
		_ = conn.SetDeadline(time.Now().Add(time.Second))
		r, err := client.NewRemote(fc, nil)
		if err != nil {
			fc.Close()
			lastErr = err
			continue
		}
		_ = conn.SetDeadline(time.Time{})
		return r, nil
	}
	return nil, lastErr
}

// faults sums the injected faults across every connection this dialer
// produced — a chaos test whose schedule never fired proves nothing.
func (d *chaosDialer) faults() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total int64
	for _, c := range d.conns {
		total += c.Faults().Total()
	}
	return total
}

func requireFaults(t *testing.T, dialers ...*chaosDialer) {
	t.Helper()
	var total int64
	for _, d := range dialers {
		total += d.faults()
	}
	if total < 1 {
		t.Error("fault schedule never fired; the chaos run exercised nothing")
	}
}

// chaosFaultCfg is the standard fault mix: roughly one reset per 20
// operations, one torn write per 30, one 1 ms latency spike per 10 —
// aggressive enough that a multi-round run is guaranteed hits, mild
// enough that an 8-attempt policy fails with negligible probability.
func chaosFaultCfg(seed int64) faultconn.Config {
	return faultconn.Config{
		Seed:              seed,
		ResetEvery:        20,
		PartialWriteEvery: 30,
		LatencyEvery:      10,
		LatencySpike:      time.Millisecond,
	}
}

// chaosPolicy gives the resilient wrappers enough attempt budget to mask
// the schedule above, with backoff short enough for test time.
func chaosPolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts:       8,
		PerAttemptTimeout: 5 * time.Second,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        25 * time.Millisecond,
	}
}

// TestChaosReliable: one auto-re-dialing session over a fault-injected
// transport must serve byte-identical answers through resets, torn
// frames and latency spikes.
func TestChaosReliable(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	addr := startFixtureDaemon(t, f)
	d := newChaosDialer(addr, chaosFaultCfg(1))
	counters := &metrics.Counters{}
	rc, err := client.NewReliable(d.dial, chaosPolicy(), counters)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	apitest.Chaos(t, f, rc, 30)
	requireFaults(t, d)
}

// TestChaosReliableDroppedFrames: the silently-dropped-write fault is the
// one only per-attempt timeouts catch — the caller's write "succeeds",
// the server never answers. The session must time the attempt out,
// re-dial and still produce byte-identical answers.
func TestChaosReliableDroppedFrames(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustIntQuotient(1, 0, 1))
	addr := startFixtureDaemon(t, f)
	d := newChaosDialer(addr, faultconn.Config{Seed: 2, DropEvery: 8})
	pol := chaosPolicy()
	// A dropped frame costs a full attempt timeout and can force a
	// re-dial that itself eats stalled handshakes, so the budget here is
	// deliberately generous — the race detector triples every cost.
	pol.MaxAttempts = 20
	pol.PerAttemptTimeout = 500 * time.Millisecond
	counters := &metrics.Counters{}
	rc, err := client.NewReliable(d.dial, pol, counters)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	apitest.Chaos(t, f, rc, 8)
	requireFaults(t, d)
	if retries := counters.Snapshot().Retries; retries < 1 {
		t.Errorf("retries = %d, want >= 1 (dropped frames must be timed out and retried)", retries)
	}
}

// TestChaosPool: a pool whose members keep dying to injected faults must
// eject, re-dial and fail over without changing a single answer. The
// resilience.API wrapper absorbs the window where every member is down at
// once (ErrNoHealthyMembers while the probes re-dial).
func TestChaosPool(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	addr := startFixtureDaemon(t, f)
	d := newChaosDialer(addr, chaosFaultCfg(3))
	counters := &metrics.Counters{}
	p, err := client.NewPoolDial(d.dial, 3, counters)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	pol := chaosPolicy()
	pol.MaxAttempts = 10
	pol.Retryable = func(err error) bool {
		return errors.Is(err, client.ErrNoHealthyMembers) || resilience.Retryable(err)
	}
	api := &resilience.API{Inner: p, Policy: pol}

	apitest.Chaos(t, f, api, 24)
	requireFaults(t, d)
}

// TestChaosMultiServerHedged: a hedged 2-of-3 deployment where every
// member sits behind its own faulty transport — hedging, failover spares
// and per-member re-dials must compose into byte-identical combined
// answers.
func TestChaosMultiServerHedged(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	fp := f.Ring.(*ring.FpCyclotomic)
	const k, n = 2, 3
	shares, err := sharing.MultiSplit(f.Encoded, f.Seed, k, n, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	counters := &metrics.Counters{}
	members := make([]core.MultiMember, n)
	dialers := make([]*chaosDialer, n)
	for i, s := range shares {
		local, err := server.NewLocal(fp, s.Tree)
		if err != nil {
			t.Fatal(err)
		}
		addr := startDaemon(t, local)
		dialers[i] = newChaosDialer(addr, chaosFaultCfg(int64(10+i)))
		rc, err := client.NewReliable(dialers[i].dial, chaosPolicy(), counters)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rc.Close() })
		members[i] = core.MultiMember{X: s.X, API: rc}
	}
	ms, err := core.NewMultiServer(fp, k, members)
	if err != nil {
		t.Fatal(err)
	}
	ms.HedgeDelay = 5 * time.Millisecond
	ms.Counters = counters

	apitest.Chaos(t, f, ms, 15)
	requireFaults(t, dialers...)
}

// TestChaosReplicatedRouter: 2 shards × 2 replicas, every replica a
// re-dialing session over its own faulty transport to a guarded shard
// daemon. Replica failover inside the router plus re-dial inside each
// replica must keep scatter/gather answers byte-identical.
func TestChaosReplicatedRouter(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	const shards, replicas = 2, 2
	trees, man, err := shard.Partition(f.ServerTree, shards)
	if err != nil {
		t.Fatal(err)
	}
	counters := &metrics.Counters{}
	groups := make([][]core.ServerAPI, shards)
	var dialers []*chaosDialer
	for s, st := range trees {
		local, err := server.NewLocal(f.Ring, st)
		if err != nil {
			t.Fatal(err)
		}
		guard, err := shard.NewGuard(f.Ring, local, man, s)
		if err != nil {
			t.Fatal(err)
		}
		addr := startDaemon(t, guard)
		for rep := 0; rep < replicas; rep++ {
			d := newChaosDialer(addr, chaosFaultCfg(int64(100+10*s+rep)))
			dialers = append(dialers, d)
			rc, err := client.NewReliable(d.dial, chaosPolicy(), counters)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { rc.Close() })
			groups[s] = append(groups[s], rc)
		}
	}
	router, err := shard.NewReplicatedRouter(man, groups)
	if err != nil {
		t.Fatal(err)
	}

	apitest.Chaos(t, f, router, 15)
	requireFaults(t, dialers...)
}

// TestChaosBatcherCoalesce: the full batched serving stack — client-side
// micro-batcher over a re-dialing session into a coalescing daemon —
// under fault injection. Batched sub-requests whose carrier call dies to
// an injected fault must be retried as a unit without mixing answers.
func TestChaosBatcherCoalesce(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	addr := startDaemon(t, coalesce.New(f.Reference, nil))
	d := newChaosDialer(addr, chaosFaultCfg(4))
	rc, err := client.NewReliable(d.dial, chaosPolicy(), &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	apitest.Chaos(t, f, client.NewBatcher(rc, nil), 15)
	requireFaults(t, d)
}

// startDaemon serves any store on a loopback listener, shut down via
// t.Cleanup.
func startDaemon(t *testing.T, store server.Store) string {
	t.Helper()
	d := server.NewDaemon(store, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = d.Serve(l)
	}()
	t.Cleanup(func() {
		d.Close()
		<-done
	})
	return l.Addr().String()
}
