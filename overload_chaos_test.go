// Overload and live-operations conformance: every resilient serving
// topology — Reliable session, health-tracked Pool, hedged k-of-n
// MultiServer, replicated shard Router, and the batched coalescing stack
// — is driven (a) at several times a tiny admission cap, so the daemons
// are actively shedding with typed retryable errors the whole run, and
// (b) through continuous mid-wave hot swaps of the served store. The
// contract in both suites is the usual one: byte-identical answers to
// the fault-free reference, preserved semantics, zero failed calls.
package sssearch

import (
	"crypto/rand"
	"errors"
	"math/big"
	"net"
	"testing"
	"time"

	"sssearch/internal/apitest"
	"sssearch/internal/client"
	"sssearch/internal/coalesce"
	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/metrics"
	"sssearch/internal/resilience"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/shard"
	"sssearch/internal/sharing"
)

// startDaemonCfg serves a store with a daemon configuration hook and
// returns the daemon for counter/epoch assertions.
func startDaemonCfg(t *testing.T, store server.Store, configure func(*server.Daemon)) (*server.Daemon, string) {
	t.Helper()
	d := server.NewDaemon(store, nil)
	if configure != nil {
		configure(d)
	}
	addr := serveDaemon(t, d)
	return d, addr
}

// overloadCap is the daemon-wide admission bound the overload suites use:
// far below the offered concurrency, so shedding is continuous.
func overloadCap(d *server.Daemon) { d.MaxInflight = 2 }

// slowStore holds each store call for a beat before answering. The tiny
// test fixtures dispatch in microseconds — too fast for admission slots
// to ever be contended — so the overload suites stretch the slot-hold
// time to make shedding continuous at the offered concurrency.
type slowStore struct {
	server.Store
	delay time.Duration
}

func (s slowStore) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	time.Sleep(s.delay)
	return s.Store.EvalNodes(keys, points)
}

func (s slowStore) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	time.Sleep(s.delay)
	return s.Store.FetchPolys(keys)
}

// slow wraps a store with the standard overload-suite delay.
func slow(st server.Store) server.Store { return slowStore{Store: st, delay: 2 * time.Millisecond} }

// overloadPolicy gives the resilient wrappers enough retry budget to ride
// out continuous shedding: generous attempts, short backoff (the shed
// hint stretches sleeps as needed), and a breaker with a test-speed
// cooldown so tripping costs milliseconds, not the default probe window.
func overloadPolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts:       40,
		PerAttemptTimeout: 5 * time.Second,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        10 * time.Millisecond,
		Breaker:           &resilience.Breaker{Cooldown: 3 * time.Millisecond},
	}
}

// requireSheds fails the run unless the daemons actually shed — an
// overload suite that never hit the admission cap proves nothing.
func requireSheds(t *testing.T, daemons ...*server.Daemon) {
	t.Helper()
	var total int64
	for _, d := range daemons {
		total += d.Counters().Snapshot().RequestsShed
	}
	if total < 1 {
		t.Error("no request was ever shed; the overload run exercised nothing")
	}
}

// requireSwaps fails the run unless every daemon's store was actually
// replaced at least once mid-wave.
func requireSwaps(t *testing.T, daemons ...*server.Daemon) {
	t.Helper()
	for i, d := range daemons {
		if d.StoreEpoch() < 1 {
			t.Errorf("daemon %d: store epoch %d, want >= 1 swap", i, d.StoreEpoch())
		}
	}
}

// alternatingSwap returns a swap() that toggles every daemon between its
// two equivalent stores — each call lands a real store replacement on
// every daemon, concurrent with live traffic.
func alternatingSwap(daemons []*server.Daemon, stores [][2]server.Store) func() error {
	i := 0
	return func() error {
		i++
		for j, d := range daemons {
			if _, err := d.SwapStore(stores[j][i%2]); err != nil {
				return err
			}
		}
		return nil
	}
}

// TestOverloadReliable: one retrying session against a shedding daemon.
func TestOverloadReliable(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	d, addr := startDaemonCfg(t, slow(f.Reference), overloadCap)
	counters := &metrics.Counters{}
	rc, err := client.NewReliable(func() (*client.Remote, error) { return client.Dial(addr, counters) }, overloadPolicy(), counters)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	apitest.ChaosOverload(t, f, rc, 8, 5)
	requireSheds(t, d)
}

// TestOverloadPool: pooled connections all target the same shedding
// daemon; the pool-wide breaker plus the retrying API wrapper must mask
// every shed without failing over into the same full queue.
func TestOverloadPool(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	d, addr := startDaemonCfg(t, slow(f.Reference), overloadCap)
	counters := &metrics.Counters{}
	p, err := client.DialPool(addr, 3, counters)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Breaker().Cooldown = 3 * time.Millisecond
	pol := overloadPolicy()
	pol.Breaker = nil // the pool carries its own breaker
	pol.Retryable = func(err error) bool {
		return errors.Is(err, client.ErrNoHealthyMembers) || resilience.Retryable(err)
	}
	api := &resilience.API{Inner: p, Policy: pol}

	apitest.ChaosOverload(t, f, api, 8, 5)
	requireSheds(t, d)
}

// TestOverloadMultiServerHedged: a hedged 2-of-3 deployment where every
// member daemon sheds under its own tiny cap — member-level retries plus
// hedging and spares must still combine byte-identical answers.
func TestOverloadMultiServerHedged(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	fp := f.Ring.(*ring.FpCyclotomic)
	const k, n = 2, 3
	shares, err := sharing.MultiSplit(f.Encoded, f.Seed, k, n, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	counters := &metrics.Counters{}
	members := make([]core.MultiMember, n)
	daemons := make([]*server.Daemon, n)
	for i, s := range shares {
		local, err := server.NewLocal(fp, s.Tree)
		if err != nil {
			t.Fatal(err)
		}
		d, addr := startDaemonCfg(t, slow(local), overloadCap)
		daemons[i] = d
		a := addr
		rc, err := client.NewReliable(func() (*client.Remote, error) { return client.Dial(a, counters) }, overloadPolicy(), counters)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rc.Close() })
		members[i] = core.MultiMember{X: s.X, API: rc}
	}
	ms, err := core.NewMultiServer(fp, k, members)
	if err != nil {
		t.Fatal(err)
	}
	ms.HedgeDelay = 5 * time.Millisecond
	ms.Counters = counters

	apitest.ChaosOverload(t, f, ms, 6, 4)
	requireSheds(t, daemons...)
}

// TestOverloadReplicatedRouter: bare (non-retrying) sessions as replicas,
// so a shed from one replica daemon MUST fail over inside the router to
// its sibling — a different daemon whose admission queue may have room —
// with a retrying wrapper around the whole scatter for the waves where
// both replicas shed at once.
func TestOverloadReplicatedRouter(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	const shards, replicas = 2, 2
	trees, man, err := shard.Partition(f.ServerTree, shards)
	if err != nil {
		t.Fatal(err)
	}
	counters := &metrics.Counters{}
	groups := make([][]core.ServerAPI, shards)
	var daemons []*server.Daemon
	for s, st := range trees {
		local, err := server.NewLocal(f.Ring, st)
		if err != nil {
			t.Fatal(err)
		}
		guard, err := shard.NewGuard(f.Ring, local, man, s)
		if err != nil {
			t.Fatal(err)
		}
		d, addr := startDaemonCfg(t, slow(guard), overloadCap)
		daemons = append(daemons, d)
		for rep := 0; rep < replicas; rep++ {
			r, err := client.Dial(addr, counters)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })
			groups[s] = append(groups[s], r)
		}
	}
	router, err := shard.NewReplicatedRouter(man, groups)
	if err != nil {
		t.Fatal(err)
	}
	api := &resilience.API{Inner: router, Policy: overloadPolicy()}

	apitest.ChaosOverload(t, f, api, 8, 5)
	requireSheds(t, daemons...)
}

// TestOverloadBatcherCoalesce: the batched coalescing stack against a
// shedding coalescing daemon — batched sub-requests shed as a unit must
// be retried as a unit without mixing answers.
func TestOverloadBatcherCoalesce(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	d, addr := startDaemonCfg(t, coalesce.New(slow(f.Reference), nil), overloadCap)
	counters := &metrics.Counters{}
	rc, err := client.NewReliable(func() (*client.Remote, error) { return client.Dial(addr, counters) }, overloadPolicy(), counters)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	apitest.ChaosOverload(t, f, client.NewBatcher(rc, nil), 8, 5)
	requireSheds(t, d)
}

// TestHotSwapReliable: continuous SwapStore between two equivalent stores
// under live traffic on a retrying session — zero downtime, byte
// identity.
func TestHotSwapReliable(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	other, err := server.NewLocal(f.Ring, f.ServerTree)
	if err != nil {
		t.Fatal(err)
	}
	d, addr := startDaemonCfg(t, f.Reference, nil)
	counters := &metrics.Counters{}
	rc, err := client.NewReliable(func() (*client.Remote, error) { return client.Dial(addr, counters) }, overloadPolicy(), counters)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	swap := alternatingSwap([]*server.Daemon{d}, [][2]server.Store{{other, f.Reference}})
	apitest.ChaosHotSwap(t, f, rc, swap, 4, 6)
	requireSwaps(t, d)
}

// TestHotSwapPool: swaps landing while pooled connections carry
// concurrent pipelined waves.
func TestHotSwapPool(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	other, err := server.NewLocal(f.Ring, f.ServerTree)
	if err != nil {
		t.Fatal(err)
	}
	d, addr := startDaemonCfg(t, f.Reference, nil)
	p, err := client.DialPool(addr, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	swap := alternatingSwap([]*server.Daemon{d}, [][2]server.Store{{other, f.Reference}})
	apitest.ChaosHotSwap(t, f, p, swap, 4, 6)
	requireSwaps(t, d)
}

// TestHotSwapMultiServerHedged: every member daemon's share store swaps
// mid-wave; hedged combination across members must never see a torn
// store.
func TestHotSwapMultiServerHedged(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	fp := f.Ring.(*ring.FpCyclotomic)
	const k, n = 2, 3
	shares, err := sharing.MultiSplit(f.Encoded, f.Seed, k, n, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	counters := &metrics.Counters{}
	members := make([]core.MultiMember, n)
	daemons := make([]*server.Daemon, n)
	stores := make([][2]server.Store, n)
	for i, s := range shares {
		a, err := server.NewLocal(fp, s.Tree)
		if err != nil {
			t.Fatal(err)
		}
		b, err := server.NewLocal(fp, s.Tree)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = [2]server.Store{b, a}
		d, addr := startDaemonCfg(t, a, nil)
		daemons[i] = d
		addr2 := addr
		rc, err := client.NewReliable(func() (*client.Remote, error) { return client.Dial(addr2, counters) }, overloadPolicy(), counters)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rc.Close() })
		members[i] = core.MultiMember{X: s.X, API: rc}
	}
	ms, err := core.NewMultiServer(fp, k, members)
	if err != nil {
		t.Fatal(err)
	}
	ms.HedgeDelay = 5 * time.Millisecond
	ms.Counters = counters

	apitest.ChaosHotSwap(t, f, ms, alternatingSwap(daemons, stores), 4, 5)
	requireSwaps(t, daemons...)
}

// TestHotSwapReplicatedRouter: each shard daemon's guarded store swaps
// under scatter/gather traffic across replicas.
func TestHotSwapReplicatedRouter(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	const shards, replicas = 2, 2
	trees, man, err := shard.Partition(f.ServerTree, shards)
	if err != nil {
		t.Fatal(err)
	}
	counters := &metrics.Counters{}
	groups := make([][]core.ServerAPI, shards)
	daemons := make([]*server.Daemon, 0, shards)
	stores := make([][2]server.Store, 0, shards)
	for s, st := range trees {
		local, err := server.NewLocal(f.Ring, st)
		if err != nil {
			t.Fatal(err)
		}
		guardA, err := shard.NewGuard(f.Ring, local, man, s)
		if err != nil {
			t.Fatal(err)
		}
		guardB, err := shard.NewGuard(f.Ring, local, man, s)
		if err != nil {
			t.Fatal(err)
		}
		d, addr := startDaemonCfg(t, guardA, nil)
		daemons = append(daemons, d)
		stores = append(stores, [2]server.Store{guardB, guardA})
		for rep := 0; rep < replicas; rep++ {
			a := addr
			rc, err := client.NewReliable(func() (*client.Remote, error) { return client.Dial(a, counters) }, overloadPolicy(), counters)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { rc.Close() })
			groups[s] = append(groups[s], rc)
		}
	}
	router, err := shard.NewReplicatedRouter(man, groups)
	if err != nil {
		t.Fatal(err)
	}

	apitest.ChaosHotSwap(t, f, router, alternatingSwap(daemons, stores), 4, 5)
	requireSwaps(t, daemons...)
}

// TestHotSwapBatcherCoalesce: the coalescing daemon's store swaps while
// the client-side micro-batcher is merging waves into carrier calls.
func TestHotSwapBatcherCoalesce(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	a := coalesce.New(f.Reference, nil)
	b := coalesce.New(f.Reference, nil)
	d, addr := startDaemonCfg(t, a, nil)
	rc, err := client.NewReliable(func() (*client.Remote, error) { return client.Dial(addr, nil) }, overloadPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	swap := alternatingSwap([]*server.Daemon{d}, [][2]server.Store{{b, a}})
	apitest.ChaosHotSwap(t, f, client.NewBatcher(rc, nil), swap, 4, 6)
	requireSwaps(t, d)
}

// TestOverloadHotSwapCombined: shedding AND store swapping at once — the
// worst realistic minute of a deployment's life. Answers must still be
// byte-identical.
func TestOverloadHotSwapCombined(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	other, err := server.NewLocal(f.Ring, f.ServerTree)
	if err != nil {
		t.Fatal(err)
	}
	d, addr := startDaemonCfg(t, slow(f.Reference), overloadCap)
	counters := &metrics.Counters{}
	rc, err := client.NewReliable(func() (*client.Remote, error) { return client.Dial(addr, counters) }, overloadPolicy(), counters)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	swap := alternatingSwap([]*server.Daemon{d}, [][2]server.Store{{slow(other), slow(f.Reference)}})
	apitest.ChaosHotSwap(t, f, rc, swap, 6, 5)
	requireSheds(t, d)
	requireSwaps(t, d)
}

// serveDaemon runs a prepared daemon on a loopback listener, shut down in
// cleanup.
func serveDaemon(t *testing.T, d *server.Daemon) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = d.Serve(l)
	}()
	t.Cleanup(func() {
		d.Close()
		<-done
	})
	return l.Addr().String()
}
