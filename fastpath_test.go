package sssearch

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/mapping"
	"sssearch/internal/paperdata"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/sharing"
	"sssearch/internal/workload"
	"sssearch/internal/xmltree"
	"sssearch/internal/xpath"
)

// buildFpEngine assembles a full stack over doc in F_p. fast=false builds
// the big.Int reference: the whole pipeline (encode, split, seed client,
// server) runs on one ring instance so the share stream stays consistent.
func buildFpEngine(t *testing.T, doc *xmltree.Node, p uint64, fast bool, cacheEntries int) (*core.Engine, *server.Local) {
	t.Helper()
	r := ring.MustFp(p)
	r.SetFast(fast)
	m, err := mapping.New(r.MaxTag(), []byte("fastpath-diff"))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		t.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("fastpath-diff")))
	tree, err := sharing.Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewLocal(r, tree)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetEvalCacheEntries(cacheEntries)
	return core.NewEngine(r, seed, m, srv, nil), srv
}

func keysToStrings(keys []drbg.NodeKey) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k.String()
	}
	return out
}

// TestFastPathQueryDifferential runs identical query workloads through
// the fast engine (packed arithmetic, eval cache, multi-point shares) and
// the big.Int reference engine (SetFast(false), cache off): every match
// set, unresolved set and verification outcome must agree, across verify
// levels, repeated queries (cache warm), and multi-step paths.
func TestFastPathQueryDifferential(t *testing.T) {
	doc := workload.Auction(workload.AuctionConfig{Items: 25, People: 20, Auctions: 15, Seed: 13})
	queries := []string{
		"//person", "//watch", "//person/watches/watch", "//item/description",
		"//zz-missing", "//*/watches", "//open_auction/bidder/increase",
		"//*", // pure wildcard: no evaluation points, shape-only traversal
	}
	for _, p := range []uint64{257, 1009} {
		levels := []core.VerifyLevel{core.VerifyNone, core.VerifyResolve, core.VerifyFull}
		qset := queries
		if p == 1009 {
			// The big.Int reference engine is slow with 1008-coefficient
			// polynomials; one level and a query subset keep the suite fast.
			levels = levels[1:2]
			qset = queries[:3]
		}
		fastEng, _ := buildFpEngine(t, doc, p, true, server.DefaultEvalCacheEntries)
		refEng, _ := buildFpEngine(t, doc, p, false, 0)
		for _, lvl := range levels {
			for _, qs := range qset {
				q, err := xpath.Parse(qs)
				if err != nil {
					t.Fatal(err)
				}
				for pass := 0; pass < 2; pass++ { // pass 1: caches warm
					got, gerr := fastEng.Query(q, core.Opts{Verify: lvl})
					want, werr := refEng.Query(q, core.Opts{Verify: lvl})
					if (gerr == nil) != (werr == nil) {
						t.Fatalf("p=%d %s lvl=%s: error mismatch %v vs %v", p, qs, lvl, gerr, werr)
					}
					if gerr != nil {
						continue
					}
					gm := fmt.Sprint(keysToStrings(got.Matches))
					wm := fmt.Sprint(keysToStrings(want.Matches))
					if gm != wm {
						t.Fatalf("p=%d %s lvl=%s pass=%d: fast matches %s, ref %s", p, qs, lvl, pass, gm, wm)
					}
					gu := fmt.Sprint(keysToStrings(got.Unresolved))
					wu := fmt.Sprint(keysToStrings(want.Unresolved))
					if gu != wu {
						t.Fatalf("p=%d %s lvl=%s pass=%d: fast unresolved %s, ref %s", p, qs, lvl, pass, gu, wu)
					}
				}
			}
		}
	}
}

// TestFastPathPaperFigures replays the paper's published //client query
// (figures 3 and 5) through the fast path with the figure share values in
// a StaticSource, pinning the protocol to the published answer set.
func TestFastPathPaperFigures(t *testing.T) {
	// The paper document: customers → (client → name) ×2.
	doc := paperdata.Document()
	r := paperdata.FpRing()
	if r.Fast() == nil {
		t.Fatal("F_5 lost the fast path")
	}
	m := paperdata.MappingFp()
	enc, err := polyenc.EncodeWithOpts(r, doc, m, polyenc.Opts{AllowTagOverflow: true})
	if err != nil {
		t.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("paper-fig")))
	tree, err := sharing.Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewLocal(r, tree)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(r, seed, m, srv, nil)
	res, err := eng.Lookup("client", core.Opts{Verify: core.VerifyFull})
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(keysToStrings(res.Matches)); got != "[/0 /1]" {
		t.Fatalf("//client matches = %s, want [/0 /1]", got)
	}
	// Both dead branches (the two name leaves) must have been pruned, and
	// the warm server cache must answer a repeat query identically.
	res2, err := eng.Lookup("client", core.Opts{Verify: core.VerifyFull})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(keysToStrings(res2.Matches)) != "[/0 /1]" {
		t.Fatal("warm-cache repeat query changed the answer")
	}
	if hits := srv.Counters().Snapshot().EvalCacheHits; hits == 0 {
		t.Fatal("repeat query never hit the server eval cache")
	}
}

// TestOutsourcePipelineRoundTripDifferential is the full-stack anchor for
// the packed parallel outsourcing pipeline: a bundle produced by the
// default Outsource (PackedOnly encode + packed parallel split) must be
// byte-identical to one built through the sequential big.Int-boundary
// reference (generic encode + SplitSequential), and queries against both
// must agree with each other and the plaintext oracle at every
// verification level.
func TestOutsourcePipelineRoundTripDifferential(t *testing.T) {
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 240, MaxFanout: 4, Vocab: 10, Seed: 314})
	seed := drbg.Seed(sha256.Sum256([]byte("roundtrip-diff")))
	secret := []byte("roundtrip-diff")

	// Packed parallel pipeline, exactly as Outsource runs it.
	bundle, err := Outsource(doc, Config{Kind: RingFp, P: 257, Seed: seed, Secret: secret, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Sequential big.Int-boundary reference pipeline.
	r := ring.MustFp(257)
	m, err := mapping.New(r.MaxTag(), secret)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		t.Fatal(err)
	}
	refTree, err := sharing.SplitSequential(enc, seed)
	if err != nil {
		t.Fatal(err)
	}

	fastBytes, err := bundle.Server.tree.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := refTree.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(fastBytes) != string(refBytes) {
		t.Fatal("packed parallel Outsource tree differs from sequential big.Int reference")
	}

	refSrv, err := server.NewLocal(r, refTree)
	if err != nil {
		t.Fatal(err)
	}
	refEng := core.NewEngine(r, seed, m, refSrv, nil)

	sess, err := bundle.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	for _, expr := range []string{"//t0", "//t3", "/t1//t2", "//t4/t5"} {
		oracle, err := EvaluatePlaintext(doc, expr)
		if err != nil {
			t.Fatal(err)
		}
		for _, verify := range []VerifyLevel{VerifyNone, VerifyResolve, VerifyFull} {
			got, err := sess.Search(expr, WithVerify(verify))
			if err != nil {
				t.Fatalf("%s/%v: %v", expr, verify, err)
			}
			q, err := xpath.Parse(expr)
			if err != nil {
				t.Fatal(err)
			}
			want, err := refEng.Query(q, core.Opts{Verify: verify})
			if err != nil {
				t.Fatalf("%s/%v reference: %v", expr, verify, err)
			}
			if len(got.Matches) != len(want.Matches) {
				t.Fatalf("%s/%v: %d matches, reference %d", expr, verify, len(got.Matches), len(want.Matches))
			}
			for i := range got.Matches {
				if got.Matches[i].String() != want.Matches[i].String() {
					t.Fatalf("%s/%v: match %d differs", expr, verify, i)
				}
			}
			if verify != VerifyNone && len(got.Matches) != len(oracle) {
				t.Fatalf("%s/%v: %d matches, oracle %d", expr, verify, len(got.Matches), len(oracle))
			}
		}
	}
}
