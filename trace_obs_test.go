package sssearch

import (
	"context"
	crand "crypto/rand"
	"crypto/sha256"
	"errors"
	"math/big"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sssearch/internal/apitest"
	"sssearch/internal/client"
	"sssearch/internal/coalesce"
	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/metrics"
	"sssearch/internal/obs"
	"sssearch/internal/resilience"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/sharing"
	"sssearch/internal/wire"
)

// serveTraced starts a daemon over st with a private Observer, so each
// test inspects exactly the spans its own daemon recorded.
func serveTraced(t *testing.T, st server.Store) (string, *obs.Observer) {
	t.Helper()
	ob := &obs.Observer{}
	d := server.NewDaemon(st, nil)
	d.Obs = ob
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = d.Serve(l) }()
	t.Cleanup(func() { d.Close() })
	return l.Addr().String(), ob
}

// slowCount counts slow-log entries carrying trace id.
func slowCount(ob *obs.Observer, id uint64) int {
	n := 0
	for _, e := range ob.Slow.Entries() {
		if e.TraceID == id {
			n++
		}
	}
	return n
}

// waitFor polls cond until it holds or the deadline passes. Server spans
// finish asynchronously (when the response hits the socket), so tests
// wait for the slow log instead of asserting immediately.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// sampledCtx returns a context carrying a sampled span with a fixed
// trace id — a client-side trace origin under test control.
func sampledCtx(id uint64) (context.Context, *obs.Span) {
	sp := obs.StartSpan("test", obs.Trace{ID: id, Sampled: true})
	return obs.WithSpan(context.Background(), sp), sp
}

// flakyAPI delegates to the wrapped API, then fails the first call after
// the fact — the server did the work and answered, but the client-side
// leg looks like a transport fault, so the retry layer runs the request
// again. Both legs hit the daemon, which must see the same trace id.
type flakyAPI struct {
	core.ServerAPI
	calls atomic.Int32
}

func (f *flakyAPI) EvalNodesCtx(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	res, err := core.EvalNodesWithCtx(ctx, f.ServerAPI, keys, points)
	if f.calls.Add(1) == 1 {
		return nil, errors.New("injected transient fault")
	}
	return res, err
}

// TestTraceOneIDAcrossRetriedLegs proves the trace id survives the retry
// wrapper and the wire: a sampled request whose first leg fails
// client-side is retried, and the daemon's slow log records BOTH legs
// under the one id.
func TestTraceOneIDAcrossRetriedLegs(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	addr, ob := serveTraced(t, f.Reference)
	remote, err := client.Dial(addr, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	api := &resilience.API{
		Inner: &flakyAPI{ServerAPI: remote},
		Policy: resilience.Policy{
			MaxAttempts: 3,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
			Retryable:   func(error) bool { return true },
		},
	}

	const traceID = 0x5e7_1d_0001
	ctx, _ := sampledCtx(traceID)
	got, err := api.EvalNodesCtx(ctx, f.Keys, f.Points)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Reference.EvalNodes(f.Keys, f.Points)
	if err != nil {
		t.Fatal(err)
	}
	if err := apitest.CompareEvals(got, want); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both retried legs in the daemon slow log", func() bool {
		return slowCount(ob, traceID) >= 2
	})
}

// laggedAPI delays every eval before forwarding — a deterministic
// straggler primary that forces the hedge spare to fire.
type laggedAPI struct {
	core.ServerAPI
	delay time.Duration
}

func (s *laggedAPI) EvalNodesCtx(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	time.Sleep(s.delay)
	return core.EvalNodesWithCtx(ctx, s.ServerAPI, keys, points)
}

// TestTraceOneIDAcrossHedgedLegs proves the trace id rides both legs of
// a hedged fan-out: a 1-of-2 MultiServer whose primary straggles hedges
// to the spare, and BOTH member daemons slow-log the one id.
func TestTraceOneIDAcrossHedgedLegs(t *testing.T) {
	fp := ring.MustFp(257)
	f := apitest.NewFixture(t, fp)
	seed := drbg.Seed(sha256.Sum256([]byte("trace-hedge")))
	shares, err := sharing.MultiSplit(f.Encoded, seed, 1, 2, crand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]core.MultiMember, len(shares))
	obsv := make([]*obs.Observer, len(shares))
	for i, s := range shares {
		local, err := server.NewLocal(fp, s.Tree)
		if err != nil {
			t.Fatal(err)
		}
		addr, ob := serveTraced(t, local)
		remote, err := client.Dial(addr, &metrics.Counters{})
		if err != nil {
			t.Fatal(err)
		}
		defer remote.Close()
		obsv[i] = ob
		var api core.ServerAPI = remote
		if i == 0 {
			api = &laggedAPI{ServerAPI: remote, delay: 50 * time.Millisecond}
		}
		members[i] = core.MultiMember{X: s.X, API: api}
	}
	ms, err := core.NewMultiServer(fp, 1, members)
	if err != nil {
		t.Fatal(err)
	}
	ms.HedgeDelay = 2 * time.Millisecond

	const traceID = 0x5e7_1d_0002
	ctx, _ := sampledCtx(traceID)
	if _, err := ms.EvalNodesCtx(ctx, f.Keys[:4], f.Points[:2]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the hedge spare's daemon to log the trace", func() bool {
		return slowCount(obsv[1], traceID) >= 1
	})
	waitFor(t, "the straggler primary's daemon to log the same trace", func() bool {
		return slowCount(obsv[0], traceID) >= 1
	})
}

// tracePass records the span id and deduplicated key count of each
// inner evaluation pass, and blocks the first pass until released so
// followers pile up behind it (the deterministic-merge gate from the
// coalesce tests).
type traceGate struct {
	core.ServerAPI
	once    sync.Once
	release chan struct{}
	entered chan struct{}

	mu     sync.Mutex
	passes []tracePass
}

type tracePass struct {
	id   uint64
	keys int
}

func (g *traceGate) EvalNodesCtx(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	var id uint64
	if sp := obs.SpanFrom(ctx); sp != nil {
		id = sp.Trace.ID
	}
	g.mu.Lock()
	g.passes = append(g.passes, tracePass{id: id, keys: len(keys)})
	g.mu.Unlock()
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return g.ServerAPI.EvalNodes(keys, points)
}

// TestTraceCoalescedLegsShareID proves span adoption through the
// coalescer: two sampled requests merged into one shared evaluation
// pass hand the pass exactly one of their trace ids — the inner store
// sees a single span for the merged leg, not a trace per requester.
func TestTraceCoalescedLegsShareID(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	g := &traceGate{ServerAPI: f.Reference, release: make(chan struct{}), entered: make(chan struct{})}
	s := coalesce.New(g, nil)
	s.SetObserver(&obs.Observer{}) // keep the process-default observer clean

	const leaderID, followerB, followerC = 0x5e7_1d_000a, 0x5e7_1d_000b, 0x5e7_1d_000c

	// Leader occupies the drain; its pass is blocked inside the gate.
	leadErr := make(chan error, 1)
	go func() {
		ctx, _ := sampledCtx(leaderID)
		_, err := s.EvalNodesCtx(ctx, f.Keys[:1], f.Points[:1])
		leadErr <- err
	}()
	<-g.entered

	// Followers queue identical batches behind the busy drain.
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, id := range []uint64{followerB, followerC} {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			ctx, _ := sampledCtx(id)
			got, err := s.EvalNodesCtx(ctx, f.Keys, f.Points)
			if err == nil {
				var want []core.NodeEval
				want, err = f.Reference.EvalNodes(f.Keys, f.Points)
				if err == nil {
					err = apitest.CompareEvals(got, want)
				}
			}
			if err != nil {
				errs <- err
			}
		}(id)
	}
	time.Sleep(100 * time.Millisecond) // let both followers enqueue
	close(g.release)
	wg.Wait()
	if err := <-leadErr; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	g.mu.Lock()
	passes := append([]tracePass(nil), g.passes...)
	g.mu.Unlock()
	if len(passes) != 2 {
		t.Fatalf("inner saw %d passes, want 2 (leader + merged followers): %+v", len(passes), passes)
	}
	if passes[0].id != leaderID {
		t.Fatalf("leader pass carried trace %#x, want %#x", passes[0].id, leaderID)
	}
	if passes[1].id != followerB && passes[1].id != followerC {
		t.Fatalf("merged pass carried trace %#x, want one of the followers' (%#x or %#x)",
			passes[1].id, followerB, followerC)
	}
	if passes[1].keys != len(f.Keys) {
		t.Fatalf("merged pass evaluated %d keys, want %d deduplicated", passes[1].keys, len(f.Keys))
	}
}

// TestTraceV2DowngradeStripsTrace proves v2 interop with sampling on: a
// v2 session never puts trace bytes on the wire, the daemon parses its
// frames exactly as before and answers correctly, and no server span
// appears for the v2 request — while a v3 session against the same
// daemon does get its trace through.
func TestTraceV2DowngradeStripsTrace(t *testing.T) {
	prev := obs.SampleEvery()
	obs.SetSampleEvery(1)
	defer obs.SetSampleEvery(prev)

	f := apitest.NewFixture(t, ring.MustFp(257))
	addr, ob := serveTraced(t, f.Reference)

	r2, err := client.DialVersion(addr, wire.Version2, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	const v2ID = 0x5e7_1d_0020
	ctx2, _ := sampledCtx(v2ID)
	got, err := r2.EvalNodesCtx(ctx2, f.Keys, f.Points)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Reference.EvalNodes(f.Keys, f.Points)
	if err != nil {
		t.Fatal(err)
	}
	if err := apitest.CompareEvals(got, want); err != nil {
		t.Fatalf("v2 session answer under sampling: %v", err)
	}

	// A v3 request is the sentinel that the daemon has caught up on
	// span recording: once ITS id is logged, the v2 request has long
	// been answered — and must have left no trace.
	r3, err := client.Dial(addr, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	const v3ID = 0x5e7_1d_0021
	ctx3, _ := sampledCtx(v3ID)
	if _, err := r3.EvalNodesCtx(ctx3, f.Keys[:1], f.Points[:1]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the v3 sentinel trace in the slow log", func() bool {
		return slowCount(ob, v3ID) >= 1
	})
	if n := slowCount(ob, v2ID); n != 0 {
		t.Fatalf("v2 session leaked %d server span(s); the downgrade must strip the trace", n)
	}
}

// dawdlingStore stretches every eval — a store slow enough that the
// daemon's stage breakdown must attribute nearly all of the request's
// wall time to store_eval.
type dawdlingStore struct {
	server.Store
	delay time.Duration
}

func (s *dawdlingStore) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	time.Sleep(s.delay)
	return s.Store.EvalNodes(keys, points)
}

// TestTraceStagesAccountForWallTime pins the accounting quality of a
// server span: against a slow store, the slow-log entry's summed stage
// durations must cover at least 90% of its end-to-end total — the
// breakdown explains the latency rather than hand-waving at it.
func TestTraceStagesAccountForWallTime(t *testing.T) {
	f := apitest.NewFixture(t, ring.MustFp(257))
	addr, ob := serveTraced(t, &dawdlingStore{Store: f.Reference, delay: 15 * time.Millisecond})
	remote, err := client.Dial(addr, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	const traceID = 0x5e7_1d_0030
	ctx, _ := sampledCtx(traceID)
	if _, err := remote.EvalNodesCtx(ctx, f.Keys, f.Points); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the slow query's server span", func() bool {
		return slowCount(ob, traceID) >= 1
	})
	var entry obs.SlowEntry
	for _, e := range ob.Slow.Entries() {
		if e.TraceID == traceID {
			entry = e
			break
		}
	}
	if entry.Total < 15*time.Millisecond {
		t.Fatalf("span total %v, want >= the store's 15ms dawdle", entry.Total)
	}
	var sum time.Duration
	for _, d := range entry.Stages {
		sum += d
	}
	if sum < entry.Total*9/10 {
		t.Fatalf("stages account for %v of %v total (%.0f%%), want >= 90%%: %v",
			sum, entry.Total, 100*float64(sum)/float64(entry.Total), entry.StageMap())
	}
	if entry.Stages[obs.StageStoreEval] < 10*time.Millisecond {
		t.Fatalf("store_eval stage %v, want >= 10ms of the dawdle attributed", entry.Stages[obs.StageStoreEval])
	}
}
