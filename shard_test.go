// Sharded deployment tests: the differential harness (a partitioned
// deployment must return byte-identical results to the single store it
// was cut from, at every verification level, on both rings), the
// end-to-end TCP path through guarded daemons, and the Session.Close
// connection-leak check.
package sssearch

import (
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"sssearch/internal/drbg"
	"sssearch/internal/workload"
)

// shardTestBundle outsources a deterministic 180-node document.
func shardTestBundle(t *testing.T, cfg Config) (*Document, *Bundle) {
	t.Helper()
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 180, MaxFanout: 3, Vocab: 6, Seed: 2026})
	cfg.Seed = drbg.Seed{1: 0xD1, 7: 0x44}
	cfg.Secret = []byte("shard-differential")
	bundle, err := Outsource(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return doc, bundle
}

var shardTestQueries = []string{
	"//t0", "//t3", "//t5",
	"/*/t1", "//t2/t4",
}

// resultKey renders a search result for exact comparison.
func resultKey(r *SearchResult) string {
	return fmt.Sprintf("m=%v u=%v", r.Matches, r.Unresolved)
}

// TestShardedDifferential: Outsource → Shard(N) → Search returns
// byte-identical results to the unsharded single-Local path for
// N ∈ {1, 2, 4}, at all three VerifyLevels, for both rings.
func TestShardedDifferential(t *testing.T) {
	for _, ringCase := range []struct {
		name string
		cfg  Config
	}{
		{"Fp", Config{Kind: RingFp, P: 257}},
		{"Z", Config{Kind: RingZ}},
	} {
		t.Run(ringCase.name, func(t *testing.T) {
			_, bundle := shardTestBundle(t, ringCase.cfg)
			ref, err := bundle.Connect()
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			for _, n := range []int{1, 2, 4} {
				sb, err := bundle.Shard(n)
				if err != nil {
					t.Fatalf("Shard(%d): %v", n, err)
				}
				if len(sb.Stores) != n || sb.Manifest.NumShards() != n {
					t.Fatalf("Shard(%d): %d stores, manifest %d", n, len(sb.Stores), sb.Manifest.NumShards())
				}
				owned := 0
				for _, st := range sb.Stores {
					owned += st.OwnedNodes()
				}
				if owned != bundle.Server.NodeCount() {
					t.Fatalf("Shard(%d): shards own %d of %d nodes", n, owned, bundle.Server.NodeCount())
				}
				sess, err := bundle.Key.ConnectSharded(sb)
				if err != nil {
					t.Fatal(err)
				}
				for _, expr := range shardTestQueries {
					for _, v := range []VerifyLevel{VerifyNone, VerifyResolve, VerifyFull} {
						want, err := ref.Search(expr, WithVerify(v))
						if err != nil {
							t.Fatalf("reference %s @%v: %v", expr, v, err)
						}
						got, err := sess.Search(expr, WithVerify(v))
						if err != nil {
							t.Fatalf("shards=%d %s @%v: %v", n, expr, v, err)
						}
						if resultKey(got) != resultKey(want) {
							t.Errorf("shards=%d %s @%v:\n got %s\nwant %s", n, expr, v, resultKey(got), resultKey(want))
						}
					}
				}
				if n > 1 {
					stats, ok := sess.ShardCounters()
					if !ok || stats.Batches == 0 {
						t.Errorf("shards=%d: no routing stats recorded (%+v, %v)", n, stats, ok)
					}
				}
				sess.Close()
			}
		})
	}
}

// TestShardedTCPEndToEnd drives the whole deployment surface: shard
// stores round-trip through disk, each shard is served by its own
// guarded daemon, the manifest round-trips through its file format, and
// a DialSharded session answers identically to the in-process reference.
func TestShardedTCPEndToEnd(t *testing.T) {
	_, bundle := shardTestBundle(t, Config{Kind: RingFp, P: 257})
	ref, err := bundle.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	sb, err := bundle.Shard(3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	manPath := filepath.Join(dir, "routing.ssm")
	if err := sb.Manifest.Save(manPath); err != nil {
		t.Fatal(err)
	}
	man, err := LoadShardManifest(manPath)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, len(sb.Stores))
	for i, st := range sb.Stores {
		path := filepath.Join(dir, fmt.Sprintf("shard%d.sss", i))
		if err := st.Save(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadShardStore(path)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.ID() != i {
			t.Fatalf("shard %d loaded with id %d", i, loaded.ID())
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d, err := loaded.ServeTCP(l)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		addrs[i] = l.Addr().String()
	}

	sess, err := bundle.Key.DialSharded(man, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for _, expr := range shardTestQueries {
		want, err := ref.Search(expr, WithVerify(VerifyFull))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Search(expr, WithVerify(VerifyFull))
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if resultKey(got) != resultKey(want) {
			t.Errorf("%s: got %s, want %s", expr, resultKey(got), resultKey(want))
		}
	}
	stats, ok := sess.ShardCounters()
	if !ok {
		t.Fatal("sharded session reports no shard counters")
	}
	if len(stats.Requests) != 3 || stats.Requests[0] == 0 {
		t.Errorf("implausible shard requests: %+v", stats)
	}
	if c := sess.Counters(); c.BytesSent == 0 || c.BytesReceived == 0 {
		t.Error("no wire traffic recorded for a TCP sharded session")
	}
}

// TestServeShardTCPWholeStore exercises the -shard-manifest deployment
// mode: whole-tree stores logically fenced to manifest ranges.
func TestServeShardTCPWholeStore(t *testing.T) {
	_, bundle := shardTestBundle(t, Config{Kind: RingFp, P: 257})
	sb, err := bundle.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 2)
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d, err := bundle.Server.ServeShardTCP(l, sb.Manifest, i)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		addrs[i] = l.Addr().String()
	}
	sess, err := bundle.Key.DialSharded(sb.Manifest, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ref, err := bundle.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, err := ref.Search("//t1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Search("//t1")
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(got) != resultKey(want) {
		t.Errorf("got %s, want %s", resultKey(got), resultKey(want))
	}
}

// TestMultiShareDialMulti covers the surfaced k-of-n deployment: Shamir
// member stores served by plain daemons, queried through DialMulti.
func TestMultiShareDialMulti(t *testing.T) {
	_, bundle := shardTestBundle(t, Config{Kind: RingFp, P: 257})
	stores, err := bundle.MultiShare(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, len(stores))
	for i, st := range stores {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d, err := st.ServeTCP(l)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		addrs[i] = l.Addr().String()
	}
	sess, err := bundle.Key.DialMulti(2, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ref, err := bundle.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, expr := range []string{"//t0", "//t4"} {
		want, _ := ref.Search(expr)
		got, err := sess.Search(expr)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if resultKey(got) != resultKey(want) {
			t.Errorf("%s: got %s, want %s", expr, resultKey(got), resultKey(want))
		}
	}
	// Z-ring keys must refuse multi-server sessions.
	_, zBundle := shardTestBundle(t, Config{Kind: RingZ})
	if _, err := zBundle.Key.DialMulti(2, addrs...); err == nil {
		t.Error("DialMulti accepted a Z-ring key")
	}
}

// TestSessionCloseClosesAllConnections is the leak check for the
// Session.Close fix: a sharded (or pooled) session owns many
// connections, and Close must release every one — observable because
// each daemon's Close waits for its in-flight connections, so a leaked
// client socket would hang the shutdown until the test times out.
func TestSessionCloseClosesAllConnections(t *testing.T) {
	_, bundle := shardTestBundle(t, Config{Kind: RingFp, P: 257})
	sb, err := bundle.Shard(3)
	if err != nil {
		t.Fatal(err)
	}
	daemons := make([]*Daemon, len(sb.Stores))
	addrs := make([]string, len(sb.Stores))
	for i, st := range sb.Stores {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if daemons[i], err = st.ServeTCP(l); err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
	}
	sess, err := bundle.Key.DialSharded(sb.Manifest, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.closers) != 3 {
		t.Fatalf("sharded session owns %d connections, want 3", len(sess.closers))
	}
	if _, err := sess.Search("//t1"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Every daemon must shut down promptly: Close waits for in-flight
	// connections, which only drain if the session really closed them.
	done := make(chan struct{})
	go func() {
		for _, d := range daemons {
			d.Close()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon shutdown hung: session leaked connections")
	}
	// Searching on a closed session fails rather than wedging.
	if _, err := sess.Search("//t1"); err == nil {
		t.Error("search succeeded on a closed session")
	}
	// Pooled sessions own size connections and close them all too.
	poolStore := filepath.Join(t.TempDir(), "server.sss")
	if err := bundle.Server.Save(poolStore); err != nil {
		t.Fatal(err)
	}
	st, err := LoadServerStore(poolStore)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d, err := st.ServeTCP(l)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := bundle.Key.DialPool(l.Addr().String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pooled.Search("//t2"); err != nil {
		t.Fatal(err)
	}
	if err := pooled.Close(); err != nil {
		t.Fatal(err)
	}
	done2 := make(chan struct{})
	go func() {
		d.Close()
		close(done2)
	}()
	select {
	case <-done2:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon shutdown hung: pooled session leaked connections")
	}
}

// TestShardPlanIsShapeOnly pins the property the 2-D deployment relies
// on: planning any share tree of one document yields the same manifest.
func TestShardPlanIsShapeOnly(t *testing.T) {
	_, bundle := shardTestBundle(t, Config{Kind: RingFp, P: 257})
	sb1, err := bundle.Shard(4)
	if err != nil {
		t.Fatal(err)
	}
	stores, err := bundle.MultiShare(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sb2, err := stores[1].Shard(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sb1.Manifest.m.Entries, sb2.Manifest.m.Entries) {
		t.Error("manifests differ between share trees of the same document")
	}
}
