package sssearch

import (
	"net"
	"path/filepath"
	"testing"
)

const paperDoc = `<customers><client><name/></client><client><name/></client></customers>`

func TestQuickstartFlow(t *testing.T) {
	doc, err := ParseXML(paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := Outsource(doc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := bundle.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Search("//client")
	if err != nil {
		t.Fatal(err)
	}
	paths := res.Paths(doc)
	if len(paths) != 2 || paths[0] != "/customers/client" {
		t.Fatalf("paths = %v", paths)
	}
	// Plaintext oracle agrees.
	want, err := EvaluatePlaintext(doc, "//client")
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(paths) {
		t.Fatalf("oracle disagreement: %v vs %v", want, paths)
	}
	if FormatStats(res.Stats) == "" {
		t.Error("empty stats")
	}
}

func TestOutsourceFpRing(t *testing.T) {
	doc, _ := ParseXML(paperDoc)
	bundle, err := Outsource(doc, Config{Kind: RingFp, P: 101})
	if err != nil {
		t.Fatal(err)
	}
	if bundle.Server.RingName() != "F_101[x]/(x^100-1)" {
		t.Errorf("ring = %s", bundle.Server.RingName())
	}
	sess, _ := bundle.Connect()
	defer sess.Close()
	res, err := sess.Search("//name", WithVerify(VerifyFull))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %v", res.Matches)
	}
}

func TestOutsourceValidation(t *testing.T) {
	if _, err := Outsource(nil, Config{}); err == nil {
		t.Error("nil doc accepted")
	}
	doc, _ := ParseXML(paperDoc)
	if _, err := Outsource(doc, Config{Kind: RingFp, P: 10}); err == nil {
		t.Error("composite p accepted")
	}
	if _, err := Outsource(doc, Config{Kind: RingZ, R: []int64{-1, 0, 1}}); err == nil {
		t.Error("reducible modulus accepted")
	}
	if _, err := Outsource(doc, Config{Kind: RingKind(99)}); err == nil {
		t.Error("bad ring kind accepted")
	}
}

func TestSearchMissAndInvalid(t *testing.T) {
	doc, _ := ParseXML(paperDoc)
	bundle, _ := Outsource(doc, Config{})
	sess, _ := bundle.Connect()
	defer sess.Close()
	res, err := sess.Search("//nosuchtag")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Error("phantom matches")
	}
	if _, err := sess.Search("not-an-xpath"); err == nil {
		t.Error("bad xpath accepted")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	doc, _ := ParseXML(paperDoc)
	bundle, err := Outsource(doc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	srvPath := filepath.Join(dir, "server.sss")
	keyPath := filepath.Join(dir, "client.key")
	if err := bundle.Server.Save(srvPath); err != nil {
		t.Fatal(err)
	}
	if err := bundle.Key.Save(keyPath); err != nil {
		t.Fatal(err)
	}
	srv, err := LoadServerStore(srvPath)
	if err != nil {
		t.Fatal(err)
	}
	key, err := LoadClientKey(keyPath)
	if err != nil {
		t.Fatal(err)
	}
	if srv.NodeCount() != 5 || srv.ByteSize() == 0 {
		t.Error("server store shape lost")
	}
	sess, err := key.ConnectLocal(srv)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Search("//client")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches after reload = %v", res.Matches)
	}
}

func TestTCPSession(t *testing.T) {
	doc, _ := ParseXML(paperDoc)
	bundle, err := Outsource(doc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	daemon, err := bundle.Server.ServeTCP(l)
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Close()
	sess, err := bundle.Key.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Search("/customers/client/name")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %v", res.Matches)
	}
	if sess.Counters().BytesSent == 0 {
		t.Error("wire bytes not counted")
	}
}

func TestDeterministicSeedReuse(t *testing.T) {
	doc, _ := ParseXML(paperDoc)
	var seed [32]byte
	for i := range seed {
		seed[i] = 0x5A
	}
	b1, err := Outsource(doc, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Outsource(doc, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if b1.Server.ByteSize() != b2.Server.ByteSize() {
		t.Error("same seed produced different stores")
	}
	if b1.Key.Seed() != seed {
		t.Error("seed not preserved")
	}
}
