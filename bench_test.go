// Top-level benchmark harness: one testing.B benchmark per paper figure
// and per measured claim (experiment index in DESIGN.md §4). Each bench
// drives the same code path as cmd/sss-bench; figure benches re-validate
// the golden values on every iteration.
//
//	go test -bench=. -benchmem
package sssearch

import (
	"crypto/rand"
	"crypto/sha256"
	"io"
	"math/big"
	"testing"
	"time"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/experiments"
	"sssearch/internal/field"
	"sssearch/internal/mapping"
	"sssearch/internal/naive"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/shamir"
	"sssearch/internal/sharing"
	"sssearch/internal/swp"
	"sssearch/internal/workload"
	"sssearch/internal/xmltree"
	"sssearch/internal/xpath"
)

// runExperiment executes a registered experiment with output discarded.
func runExperiment(b *testing.B, id string, quick bool) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := experiments.Config{Quick: quick}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1-E6: the paper's figures (golden-checked every iteration) -----------

func BenchmarkFig1_EncodeZx(b *testing.B) { runExperiment(b, "fig1", true) }
func BenchmarkFig2_Reduce(b *testing.B)   { runExperiment(b, "fig2", true) }
func BenchmarkFig3_ShareFp(b *testing.B)  { runExperiment(b, "fig3", true) }
func BenchmarkFig4_ShareZ(b *testing.B)   { runExperiment(b, "fig4", true) }
func BenchmarkFig5_QueryFp(b *testing.B)  { runExperiment(b, "fig5", true) }
func BenchmarkFig6_QueryZ(b *testing.B)   { runExperiment(b, "fig6", true) }

// --- E7-E16: measured claims ------------------------------------------------

func BenchmarkStorageOverhead(b *testing.B)  { runExperiment(b, "storage", true) }
func BenchmarkPruningFraction(b *testing.B)  { runExperiment(b, "pruning", true) }
func BenchmarkSchemeComparison(b *testing.B) { runExperiment(b, "compare", true) }
func BenchmarkTrustedMode(b *testing.B)      { runExperiment(b, "trusted", true) }
func BenchmarkSeedOnlyClient(b *testing.B)   { runExperiment(b, "seedonly", true) }
func BenchmarkMultiServer(b *testing.B)      { runExperiment(b, "multiserver", true) }
func BenchmarkCoeffGrowth(b *testing.B)      { runExperiment(b, "coeffgrowth", true) }
func BenchmarkAdvancedQuery(b *testing.B)    { runExperiment(b, "advanced", true) }
func BenchmarkVerification(b *testing.B)     { runExperiment(b, "verify", true) }
func BenchmarkVoting(b *testing.B)           { runExperiment(b, "voting", true) }

// --- micro-benchmarks of the protocol's hot paths ---------------------------

type benchStack struct {
	doc    *xmltree.Node
	ring   ring.Ring
	m      *mapping.Map
	seed   drbg.Seed
	engine *core.Engine
}

func buildStack(b *testing.B, r ring.Ring, nodes int) *benchStack {
	b.Helper()
	doc := workload.RandomTree(workload.TreeConfig{Nodes: nodes, MaxFanout: 4, Vocab: 20, Seed: 1234})
	m, err := mapping.New(r.MaxTag(), []byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		b.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("bench-seed")))
	tree, err := sharing.Split(enc, seed)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.NewLocal(r, tree)
	if err != nil {
		b.Fatal(err)
	}
	return &benchStack{
		doc:    doc,
		ring:   r,
		m:      m,
		seed:   seed,
		engine: core.NewEngine(r, seed, m, srv, nil),
	}
}

func benchmarkLookup(b *testing.B, r ring.Ring, nodes int, tag string) {
	s := buildStack(b, r, nodes)
	if _, ok := s.m.Value(tag); !ok {
		if _, err := s.m.Assign(tag); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.engine.Lookup(tag, core.Opts{Verify: core.VerifyResolve}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupZ1000Hit(b *testing.B) {
	benchmarkLookup(b, ring.MustIntQuotient(1, 0, 1), 1000, "t3")
}

func BenchmarkLookupZ1000Miss(b *testing.B) {
	benchmarkLookup(b, ring.MustIntQuotient(1, 0, 1), 1000, "zz-ghost")
}

func BenchmarkLookupFp1000Hit(b *testing.B) {
	benchmarkLookup(b, ring.MustFp(257), 1000, "t3")
}

func BenchmarkPathQueryAuction(b *testing.B) {
	doc := workload.Auction(workload.AuctionConfig{Items: 100, People: 80, Auctions: 60, Seed: 7})
	r := ring.MustIntQuotient(1, 0, 1)
	m, _ := mapping.New(r.MaxTag(), []byte("bench-path"))
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		b.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("bench-path")))
	tree, _ := sharing.Split(enc, seed)
	srv, _ := server.NewLocal(r, tree)
	eng := core.NewEngine(r, seed, m, srv, nil)
	q := xpath.MustParse("//person/watches/watch")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(q, core.Opts{Verify: core.VerifyResolve}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeAuctionZ(b *testing.B) {
	doc := workload.Auction(workload.AuctionConfig{Items: 100, People: 80, Auctions: 60, Seed: 7})
	r := ring.MustIntQuotient(1, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := mapping.New(r.MaxTag(), []byte("enc"))
		if _, err := polyenc.Encode(r, doc, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSplitAuctionZ(b *testing.B) {
	doc := workload.Auction(workload.AuctionConfig{Items: 100, People: 80, Auctions: 60, Seed: 7})
	r := ring.MustIntQuotient(1, 0, 1)
	m, _ := mapping.New(r.MaxTag(), []byte("split"))
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		b.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("split")))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sharing.Split(enc, seed); err != nil {
			b.Fatal(err)
		}
	}
}

// --- baseline micro-benchmarks (same workload as BenchmarkLookupZ1000Hit) ---

func BenchmarkBaselineSWPScan1000(b *testing.B) {
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 1000, MaxFanout: 4, Vocab: 20, Seed: 1234})
	c := swp.NewClient([]byte("bench"))
	idx, err := c.BuildIndex(doc)
	if err != nil {
		b.Fatal(err)
	}
	td := c.Trapdoor("t3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search(td)
	}
}

func BenchmarkBaselineDownloadAll1000(b *testing.B) {
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 1000, MaxFanout: 4, Vocab: 20, Seed: 1234})
	key := []byte("bench")
	st, err := naive.Encrypt(key, doc)
	if err != nil {
		b.Fatal(err)
	}
	q := xpath.MustParse("//t3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := naive.Query(key, st, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselinePlaintext1000(b *testing.B) {
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 1000, MaxFanout: 4, Vocab: 20, Seed: 1234})
	q := xpath.MustParse("//t3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Evaluate(doc)
	}
}

// --- MPC benchmarks -----------------------------------------------------

func BenchmarkMajorityVote9(b *testing.B) {
	f := field.MustNew(10007)
	s, err := shamir.NewScheme(f, 4, 9)
	if err != nil {
		b.Fatal(err)
	}
	votes := make([]*big.Int, 9)
	for i := range votes {
		votes[i] = big.NewInt(int64(i % 2))
	}
	openers := []int{0, 2, 4, 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shamir.MajorityVote(s, votes, openers, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStartToFirstAnswer measures the full pipeline latency a new
// user experiences: parse → outsource → connect → first query.
func BenchmarkColdStartToFirstAnswer(b *testing.B) {
	xml := workload.Library(workload.LibraryConfig{Books: 40, Articles: 40, Seed: 3}).String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		doc, err := ParseXML(xml)
		if err != nil {
			b.Fatal(err)
		}
		bundle, err := Outsource(doc, Config{})
		if err != nil {
			b.Fatal(err)
		}
		sess, err := bundle.Connect()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Search("//book"); err != nil {
			b.Fatal(err)
		}
		sess.Close()
		_ = start
	}
}
