// Top-level benchmark harness: one testing.B benchmark per paper figure
// and per measured claim (experiment index in DESIGN.md §4). Each bench
// drives the same code path as cmd/sss-bench; figure benches re-validate
// the golden values on every iteration.
//
//	go test -bench=. -benchmem
package sssearch

import (
	"crypto/rand"
	"crypto/sha256"
	"io"
	"math/big"
	"net"
	"sync"
	"testing"
	"time"

	"sssearch/internal/client"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/experiments"
	"sssearch/internal/field"
	"sssearch/internal/mapping"
	"sssearch/internal/naive"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/shamir"
	"sssearch/internal/sharing"
	"sssearch/internal/swp"
	"sssearch/internal/workload"
	"sssearch/internal/xmltree"
	"sssearch/internal/xpath"
)

// runExperiment executes a registered experiment with output discarded.
func runExperiment(b *testing.B, id string, quick bool) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := experiments.Config{Quick: quick}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1-E6: the paper's figures (golden-checked every iteration) -----------

func BenchmarkFig1_EncodeZx(b *testing.B) { runExperiment(b, "fig1", true) }
func BenchmarkFig2_Reduce(b *testing.B)   { runExperiment(b, "fig2", true) }
func BenchmarkFig3_ShareFp(b *testing.B)  { runExperiment(b, "fig3", true) }
func BenchmarkFig4_ShareZ(b *testing.B)   { runExperiment(b, "fig4", true) }
func BenchmarkFig5_QueryFp(b *testing.B)  { runExperiment(b, "fig5", true) }
func BenchmarkFig6_QueryZ(b *testing.B)   { runExperiment(b, "fig6", true) }

// --- E7-E16: measured claims ------------------------------------------------

func BenchmarkStorageOverhead(b *testing.B)  { runExperiment(b, "storage", true) }
func BenchmarkPruningFraction(b *testing.B)  { runExperiment(b, "pruning", true) }
func BenchmarkSchemeComparison(b *testing.B) { runExperiment(b, "compare", true) }
func BenchmarkTrustedMode(b *testing.B)      { runExperiment(b, "trusted", true) }
func BenchmarkSeedOnlyClient(b *testing.B)   { runExperiment(b, "seedonly", true) }
func BenchmarkMultiServer(b *testing.B)      { runExperiment(b, "multiserver", true) }
func BenchmarkCoeffGrowth(b *testing.B)      { runExperiment(b, "coeffgrowth", true) }
func BenchmarkAdvancedQuery(b *testing.B)    { runExperiment(b, "advanced", true) }
func BenchmarkVerification(b *testing.B)     { runExperiment(b, "verify", true) }
func BenchmarkVoting(b *testing.B)           { runExperiment(b, "voting", true) }
func BenchmarkConcurrentEngine(b *testing.B) { runExperiment(b, "concurrent", true) }

// --- micro-benchmarks of the protocol's hot paths ---------------------------

type benchStack struct {
	doc    *xmltree.Node
	ring   ring.Ring
	m      *mapping.Map
	seed   drbg.Seed
	engine *core.Engine
}

func buildStack(b *testing.B, r ring.Ring, nodes int) *benchStack {
	b.Helper()
	doc := workload.RandomTree(workload.TreeConfig{Nodes: nodes, MaxFanout: 4, Vocab: 20, Seed: 1234})
	m, err := mapping.New(r.MaxTag(), []byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		b.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("bench-seed")))
	tree, err := sharing.Split(enc, seed)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.NewLocal(r, tree)
	if err != nil {
		b.Fatal(err)
	}
	return &benchStack{
		doc:    doc,
		ring:   r,
		m:      m,
		seed:   seed,
		engine: core.NewEngine(r, seed, m, srv, nil),
	}
}

func benchmarkLookup(b *testing.B, r ring.Ring, nodes int, tag string) {
	s := buildStack(b, r, nodes)
	if _, ok := s.m.Value(tag); !ok {
		if _, err := s.m.Assign(tag); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.engine.Lookup(tag, core.Opts{Verify: core.VerifyResolve}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupZ1000Hit(b *testing.B) {
	benchmarkLookup(b, ring.MustIntQuotient(1, 0, 1), 1000, "t3")
}

func BenchmarkLookupZ1000Miss(b *testing.B) {
	benchmarkLookup(b, ring.MustIntQuotient(1, 0, 1), 1000, "zz-ghost")
}

func BenchmarkLookupFp1000Hit(b *testing.B) {
	benchmarkLookup(b, ring.MustFp(257), 1000, "t3")
}

func BenchmarkPathQueryAuction(b *testing.B) {
	doc := workload.Auction(workload.AuctionConfig{Items: 100, People: 80, Auctions: 60, Seed: 7})
	r := ring.MustIntQuotient(1, 0, 1)
	m, _ := mapping.New(r.MaxTag(), []byte("bench-path"))
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		b.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("bench-path")))
	tree, _ := sharing.Split(enc, seed)
	srv, _ := server.NewLocal(r, tree)
	eng := core.NewEngine(r, seed, m, srv, nil)
	q := xpath.MustParse("//person/watches/watch")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(q, core.Opts{Verify: core.VerifyResolve}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeAuctionZ(b *testing.B) {
	doc := workload.Auction(workload.AuctionConfig{Items: 100, People: 80, Auctions: 60, Seed: 7})
	r := ring.MustIntQuotient(1, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := mapping.New(r.MaxTag(), []byte("enc"))
		if _, err := polyenc.Encode(r, doc, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSplitAuctionZ(b *testing.B) {
	doc := workload.Auction(workload.AuctionConfig{Items: 100, People: 80, Auctions: 60, Seed: 7})
	r := ring.MustIntQuotient(1, 0, 1)
	m, _ := mapping.New(r.MaxTag(), []byte("split"))
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		b.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("split")))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sharing.Split(enc, seed); err != nil {
			b.Fatal(err)
		}
	}
}

// --- baseline micro-benchmarks (same workload as BenchmarkLookupZ1000Hit) ---

func BenchmarkBaselineSWPScan1000(b *testing.B) {
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 1000, MaxFanout: 4, Vocab: 20, Seed: 1234})
	c := swp.NewClient([]byte("bench"))
	idx, err := c.BuildIndex(doc)
	if err != nil {
		b.Fatal(err)
	}
	td := c.Trapdoor("t3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search(td)
	}
}

func BenchmarkBaselineDownloadAll1000(b *testing.B) {
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 1000, MaxFanout: 4, Vocab: 20, Seed: 1234})
	key := []byte("bench")
	st, err := naive.Encrypt(key, doc)
	if err != nil {
		b.Fatal(err)
	}
	q := xpath.MustParse("//t3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := naive.Query(key, st, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselinePlaintext1000(b *testing.B) {
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 1000, MaxFanout: 4, Vocab: 20, Seed: 1234})
	q := xpath.MustParse("//t3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Evaluate(doc)
	}
}

// --- MPC benchmarks -----------------------------------------------------

func BenchmarkMajorityVote9(b *testing.B) {
	f := field.MustNew(10007)
	s, err := shamir.NewScheme(f, 4, 9)
	if err != nil {
		b.Fatal(err)
	}
	votes := make([]*big.Int, 9)
	for i := range votes {
		votes[i] = big.NewInt(int64(i % 2))
	}
	openers := []int{0, 2, 4, 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shamir.MajorityVote(s, votes, openers, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

// --- concurrent multi-server fan-out benchmarks -----------------------------
//
// The paper's §4.2 k-of-n extension puts one share server per party; the
// question is whether adding servers adds latency (sequential fan-out: the
// sum of k round trips per protocol round) or throughput (concurrent
// fan-out: the slowest of k round trips). Each member is wrapped in a
// fixed simulated RTT so the benchmark measures the fan-out schedule, not
// this machine's core count.

// latencyAPI models a share server one network round trip away.
type latencyAPI struct {
	inner core.ServerAPI
	rtt   time.Duration
}

func (l latencyAPI) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	time.Sleep(l.rtt)
	return l.inner.EvalNodes(keys, points)
}

func (l latencyAPI) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	time.Sleep(l.rtt)
	return l.inner.FetchPolys(keys)
}

func (l latencyAPI) Prune(keys []drbg.NodeKey) error {
	time.Sleep(l.rtt)
	return l.inner.Prune(keys)
}

// buildMultiEngine splits a document across n share servers (threshold k),
// each behind a simulated RTT, and returns an engine over the fan-out.
func buildMultiEngine(b *testing.B, k, n int, sequential bool, rtt time.Duration) *core.Engine {
	b.Helper()
	// F_17 keeps share polynomials short (16 coefficients) so the simulated
	// network RTT — the thing the fan-out schedule controls — dominates the
	// local big-integer arithmetic, which a 1-core host cannot parallelise.
	fp := ring.MustFp(17)
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 300, MaxFanout: 4, Vocab: 12, Seed: 77})
	m, err := mapping.New(fp.MaxTag(), []byte("bench-multi"))
	if err != nil {
		b.Fatal(err)
	}
	enc, err := polyenc.Encode(fp, doc, m)
	if err != nil {
		b.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("bench-multi")))
	shares, err := sharing.MultiSplit(enc, seed, k, n, rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	members := make([]core.MultiMember, n)
	for i, s := range shares {
		srv, err := server.NewLocal(fp, s.Tree)
		if err != nil {
			b.Fatal(err)
		}
		members[i] = core.MultiMember{X: s.X, API: latencyAPI{inner: srv, rtt: rtt}}
	}
	ms, err := core.NewMultiServer(fp, k, members)
	if err != nil {
		b.Fatal(err)
	}
	ms.Sequential = sequential
	return core.NewEngine(fp, seed, m, ms, nil)
}

func benchmarkMultiLookup(b *testing.B, sequential bool) {
	eng := buildMultiEngine(b, 4, 4, sequential, 2*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Lookup("t3", core.Opts{Verify: core.VerifyResolve}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiServer4Sequential is the seed behavior: 4 share servers
// queried one after another — every added server adds latency.
func BenchmarkMultiServer4Sequential(b *testing.B) { benchmarkMultiLookup(b, true) }

// BenchmarkMultiServer4Concurrent is the new fan-out: 4 share servers
// queried in parallel — the round costs one RTT, not four.
func BenchmarkMultiServer4Concurrent(b *testing.B) { benchmarkMultiLookup(b, false) }

// --- pipelined wire protocol benchmarks --------------------------------------

// benchmarkRemoteEval measures many independent EvalNodes calls through
// one TCP connection, strict v1 (each call waits its turn on the wire)
// versus pipelined v2 (calls overlap in flight).
func benchmarkRemoteEval(b *testing.B, version uint32, concurrency int) {
	fp := ring.MustFp(257)
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 200, MaxFanout: 4, Vocab: 12, Seed: 78})
	m, err := mapping.New(fp.MaxTag(), []byte("bench-wire"))
	if err != nil {
		b.Fatal(err)
	}
	enc, err := polyenc.Encode(fp, doc, m)
	if err != nil {
		b.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("bench-wire")))
	tree, err := sharing.Split(enc, seed)
	if err != nil {
		b.Fatal(err)
	}
	local, err := server.NewLocal(fp, tree)
	if err != nil {
		b.Fatal(err)
	}
	var keys []drbg.NodeKey
	enc.Walk(func(key drbg.NodeKey, _ *polyenc.Node) bool {
		keys = append(keys, key)
		return true
	})
	d := server.NewDaemon(local, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = d.Serve(l)
	}()
	defer func() {
		d.Close()
		<-done
	}()
	r, err := client.DialVersion(l.Addr().String(), version, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	points := []*big.Int{big.NewInt(2)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, concurrency)
		for c := 0; c < concurrency; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				_, errs[c] = r.EvalNodes(keys[(i+c)%len(keys):(i+c)%len(keys)+1], points)
			}(c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRemoteEvalStrictV1(b *testing.B)    { benchmarkRemoteEval(b, 1, 16) }
func BenchmarkRemoteEvalPipelinedV2(b *testing.B) { benchmarkRemoteEval(b, 2, 16) }

// BenchmarkColdStartToFirstAnswer measures the full pipeline latency a new
// user experiences: parse → outsource → connect → first query.
func BenchmarkColdStartToFirstAnswer(b *testing.B) {
	xml := workload.Library(workload.LibraryConfig{Books: 40, Articles: 40, Seed: 3}).String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		doc, err := ParseXML(xml)
		if err != nil {
			b.Fatal(err)
		}
		bundle, err := Outsource(doc, Config{})
		if err != nil {
			b.Fatal(err)
		}
		sess, err := bundle.Connect()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Search("//book"); err != nil {
			b.Fatal(err)
		}
		sess.Close()
		_ = start
	}
}

// --- outsourcing pipeline benchmarks -----------------------------------------

func benchmarkOutsourceFp(b *testing.B, sequential bool) {
	doc := experiments.OutsourceFpDoc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.OutsourceFpOnce(doc, sequential); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOutsourceFp1000 is the packed parallel outsourcing pipeline —
// the sss-bench `outsourceFp` target.
func BenchmarkOutsourceFp1000(b *testing.B) { benchmarkOutsourceFp(b, false) }

// BenchmarkOutsourceFp1000Sequential is the retained reference pipeline
// (boundary-crossing encode + SplitSequential) — the in-tree ablation for
// the packed parallel path.
func BenchmarkOutsourceFp1000Sequential(b *testing.B) { benchmarkOutsourceFp(b, true) }

// --- k-of-n combine benchmarks -----------------------------------------------

func benchmarkMultiCombine(b *testing.B, bigCombine bool) {
	w, err := experiments.NewMultiCombineWorkload(bigCombine)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiCombine measures the fastfield Lagrange combiner on a
// 3-of-4 deployment (member evals cache-hot: the combine dominates) —
// the sss-bench `multiCombine` target.
func BenchmarkMultiCombine(b *testing.B) { benchmarkMultiCombine(b, false) }

// BenchmarkMultiCombineBigInt is the per-point big.Int interpolation
// ablation (the pre-fastfield combiner).
func BenchmarkMultiCombineBigInt(b *testing.B) { benchmarkMultiCombine(b, true) }

// --- sharded deployment benchmarks -------------------------------------------

// BenchmarkShardQuery4 routes the lookupFp1000Hit workload across a
// 4-shard partitioned deployment of guarded in-process Locals — the
// sss-bench `shardQuery` target. Compare with BenchmarkLookupFp1000Hit
// to read off the scatter/gather overhead.
func BenchmarkShardQuery4(b *testing.B) {
	w, err := experiments.NewShardQueryWorkload(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardOutsource4 is the sharded write path (encode → split →
// partition into 4 shard trees) — the sss-bench `shardOutsource` target.
func BenchmarkShardOutsource4(b *testing.B) {
	doc := experiments.OutsourceFpDoc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.ShardOutsourceOnce(doc, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardExperiment smoke-runs the `shard` experiment table.
func BenchmarkShardExperiment(b *testing.B) { runExperiment(b, "shard", true) }

// --- capacity-scale benchmarks -----------------------------------------------

// BenchmarkOutsourceFp100k is the capacity-scale write path — the full
// packed parallel outsourcing pipeline over a 100k-node F_257 document —
// the sss-bench `outsourceFp100k` target. Seconds per iteration; CI runs
// it at -benchtime 1x.
func BenchmarkOutsourceFp100k(b *testing.B) {
	doc := experiments.OutsourceFpScaleDoc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.OutsourceFpScaleOnce(doc, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOutsourceFp100kSchoolbook is the big.Int reference pipeline
// (schoolbook products + sequential split) over the same document — the
// opt-in `outsourceFp100kSchoolbook` baseline (sss-bench -baselines).
// Minutes per iteration: run it deliberately, with -benchtime 1x.
func BenchmarkOutsourceFp100kSchoolbook(b *testing.B) {
	doc := experiments.OutsourceFpScaleDoc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.OutsourceFpScaleOnce(doc, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardOutsource100k is the sharded capacity-scale write path
// (100k-node encode → split → partition into 4 shard trees) — the
// sss-bench `shardOutsource100k` target.
func BenchmarkShardOutsource100k(b *testing.B) {
	doc := experiments.OutsourceFpScaleDoc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.ShardOutsourceOnce(doc, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiSplit300 is 3-of-4 Shamir share-tree generation over a
// 300-node document on the packed vectorized parallel walk — the
// sss-bench `multiSplit` target.
func BenchmarkMultiSplit300(b *testing.B) {
	w, err := experiments.NewMultiSplitWorkload()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiSplit300Sequential is the retained sequential big.Int
// reference walk — the `multiSplitSequential` ablation.
func BenchmarkMultiSplit300Sequential(b *testing.B) {
	w, err := experiments.NewMultiSplitWorkload()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.RunSequential(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoalesceQuery16 is the sss-bench `coalesceQuery` target: one
// iteration runs 16 concurrent seed-only sessions, all chasing the same
// rotating hot key, through ONE coalescing store with a cross-session
// shared pad cache — the production cross-session aggregate-throughput
// hot path. Compare with BenchmarkCoalesceQuery16Private (coalesced
// server, private per-session pad caches — the PR 5 stack) and
// BenchmarkCoalesceQuery16Uncoalesced (the PR 4 stack) to split the win
// between the server-side and client-side halves.
func BenchmarkCoalesceQuery16(b *testing.B) {
	benchmarkCoalesceQuery(b, experiments.QueryShared)
}

// BenchmarkCoalesceQuery16Private is the coalesced store with private
// per-session pad caches — isolates the shared-client-cache effect.
func BenchmarkCoalesceQuery16Private(b *testing.B) {
	benchmarkCoalesceQuery(b, experiments.QueryCoalesced)
}

// BenchmarkCoalesceQuery16Uncoalesced is the same 16-session workload
// against the bare shared Local — the uncoalesced baseline.
func BenchmarkCoalesceQuery16Uncoalesced(b *testing.B) {
	benchmarkCoalesceQuery(b, experiments.QueryBaseline)
}

func benchmarkCoalesceQuery(b *testing.B, mode experiments.QueryMode) {
	w, err := experiments.NewCoalesceQueryWorkload(16, mode)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Run(); err != nil { // warm caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharedPad16 is the sss-bench `sharedPad` target: 16 seed-only
// clients of one seed concurrently evaluating their client share on
// every tree node at the rotating hot point through one SharedPadCache —
// the isolated client-side share arithmetic one hot 16-session wave
// costs. BenchmarkSharedPad16Private is the pre-shared-cache ablation
// (each client its own pad cache, 16× the DRBG + Horner work).
func BenchmarkSharedPad16(b *testing.B) { benchmarkSharedPad(b, true) }

// BenchmarkSharedPad16Private is the private per-client cache ablation.
func BenchmarkSharedPad16Private(b *testing.B) { benchmarkSharedPad(b, false) }

func benchmarkSharedPad(b *testing.B, shared bool) {
	w, err := experiments.NewSharedPadWorkload(16, shared)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Run(); err != nil { // warm caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoalesceServe16 measures the serving path at 16 sessions
// through a real loopback daemon with the full batched+coalesced stack
// (client.Batcher over a pooled connection, coalesce.Server behind the
// daemon); BenchmarkCoalesceServe16Baseline is the same wave workload on
// the PR 4 path (16 independent connections, bare store). One iteration
// is one 16-session hot evaluation wave round.
func BenchmarkCoalesceServe16(b *testing.B) {
	benchmarkCoalesceServe(b, experiments.ServeBatched)
}

func BenchmarkCoalesceServe16Baseline(b *testing.B) {
	benchmarkCoalesceServe(b, experiments.ServeBaseline)
}

func benchmarkCoalesceServe(b *testing.B, mode experiments.ServeMode) {
	w, err := experiments.NewCoalesceServeWorkload(16, mode)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	if err := w.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- hedged fan-out benchmarks -----------------------------------------------

// BenchmarkHedgedTail is the sss-bench `hedgedTail` target: a 2-of-3
// MultiServer whose first primary is a deterministic 10 ms straggler,
// with a 1 ms hedge delay — the spare launched after the delay covers
// the straggler, so per-call latency collapses from the straggler's
// delay to roughly the hedge delay. Compare with BenchmarkUnhedgedTail.
func BenchmarkHedgedTail(b *testing.B) {
	benchmarkHedge(b, 10*time.Millisecond, time.Millisecond)
}

// BenchmarkUnhedgedTail is the same straggler deployment with the hedge
// timer armed far beyond the straggler delay, so no spare ever fires —
// every call eats the full 10 ms tail. The sss-bench `unhedgedTail`
// target.
func BenchmarkUnhedgedTail(b *testing.B) {
	benchmarkHedge(b, 10*time.Millisecond, time.Hour)
}

// BenchmarkHedgedFastPath has no straggler but keeps hedging armed — the
// fault-free overhead of the hedged call path. The sss-bench
// `hedgedFastPath` target.
func BenchmarkHedgedFastPath(b *testing.B) {
	benchmarkHedge(b, 0, time.Millisecond)
}

func benchmarkHedge(b *testing.B, slowDelay, hedgeDelay time.Duration) {
	w, err := experiments.NewHedgeWorkload(slowDelay, hedgeDelay)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
