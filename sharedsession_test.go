package sssearch

import (
	"fmt"
	"sync"
	"testing"
)

// sharedCacheDoc is large enough that a //client search walks real
// share-regeneration work worth sharing.
const sharedCacheDoc = `<customers>` +
	`<client><name/><order><item/><item/></order></client>` +
	`<client><name/><order><item/></order></client>` +
	`<client><name/></client>` +
	`</customers>`

// TestSessionsShareClientCache: sessions of one ClientKey share the
// cross-session client cache by default — 16 overlapping sessions return
// byte-identical results to an opted-out (private-cache) key, and the
// shared-cache counters prove pads/evals were actually reused across
// sessions.
func TestSessionsShareClientCache(t *testing.T) {
	doc, err := ParseXML(sharedCacheDoc)
	if err != nil {
		t.Fatal(err)
	}
	// RingFp carries the word-sized fast path the shared cache operates on.
	bundle, err := Outsource(doc, Config{Kind: RingFp, P: 257})
	if err != nil {
		t.Fatal(err)
	}

	// Reference answers from a private-cache key over the same material.
	privKey := &ClientKey{state: bundle.Key.state}
	privKey.SetSharedCache(false)
	refSess, err := privKey.ConnectLocal(bundle.Server)
	if err != nil {
		t.Fatal(err)
	}
	defer refSess.Close()
	exprs := []string{"//client", "//name", "//order/item", "//client/order"}
	want := map[string]string{}
	for _, e := range exprs {
		res, err := refSess.Search(e)
		if err != nil {
			t.Fatal(err)
		}
		want[e] = fmt.Sprint(res.Paths(doc))
		if s := refSess.Counters(); s.SharedPadHits+s.SharedPadMiss+s.ShareEvalHits+s.ShareEvalMiss != 0 {
			t.Fatalf("opted-out session touched the shared cache: %+v", s)
		}
	}

	const sessions = 16
	sess := make([]*Session, sessions)
	for i := range sess {
		if sess[i], err = bundle.Key.ConnectLocal(bundle.Server); err != nil {
			t.Fatal(err)
		}
		defer sess[i].Close()
	}
	var wg sync.WaitGroup
	for i := range sess {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			for _, e := range exprs {
				res, err := s.Search(e)
				if err != nil {
					t.Errorf("%s: %v", e, err)
					return
				}
				if got := fmt.Sprint(res.Paths(doc)); got != want[e] {
					t.Errorf("%s: shared-cache session got %s, want %s", e, got, want[e])
					return
				}
			}
		}(sess[i])
	}
	wg.Wait()

	var reused, regens int64
	for _, s := range sess {
		c := s.Counters()
		reused += c.SharedPadHits + c.SharedPadSingleflight + c.ShareEvalHits
		regens += c.SharedPadMiss
	}
	if reused == 0 {
		t.Error("16 overlapping sessions never reused a shared pad or eval")
	}
	if regens == 0 {
		t.Error("no session recorded a shared pad regeneration")
	}
}

// TestSetSharedCacheOptOut: after opting out, new sessions get private
// caches (no shared tallies) and still answer correctly; re-enabling
// restores sharing.
func TestSetSharedCacheOptOut(t *testing.T) {
	doc, err := ParseXML(sharedCacheDoc)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := Outsource(doc, Config{Kind: RingFp, P: 257})
	if err != nil {
		t.Fatal(err)
	}
	bundle.Key.SetSharedCache(false)
	s1, err := bundle.Key.ConnectLocal(bundle.Server)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	res, err := s1.Search("//client")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("opted-out search found %d matches, want 3", len(res.Matches))
	}
	if c := s1.Counters(); c.SharedPadHits+c.SharedPadMiss != 0 {
		t.Fatalf("opted-out session used the shared cache: %+v", c)
	}

	bundle.Key.SetSharedCache(true)
	s2, err := bundle.Key.ConnectLocal(bundle.Server)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Search("//client"); err != nil {
		t.Fatal(err)
	}
	if c := s2.Counters(); c.SharedPadMiss+c.SharedPadHits == 0 {
		t.Error("re-enabled session never touched the shared cache")
	}
}
