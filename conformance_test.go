// ServerAPI conformance: every implementation — the in-process store, the
// tamper wrappers, the multi-server fan-out, and the remote client over a
// loopback daemon (pipelined v2, strict v1, and pooled) — must satisfy the
// same contract. The table itself lives in internal/apitest.
package sssearch

import (
	"crypto/rand"
	"fmt"
	"net"
	"testing"

	"sssearch/internal/apitest"
	"sssearch/internal/client"
	"sssearch/internal/coalesce"
	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/shard"
	"sssearch/internal/sharing"
	"sssearch/internal/wire"
)

// startFixtureDaemon serves the fixture's share tree on a loopback
// listener, shut down via t.Cleanup.
func startFixtureDaemon(t *testing.T, f *apitest.Fixture) string {
	t.Helper()
	d := server.NewDaemon(f.Reference, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = d.Serve(l)
	}()
	t.Cleanup(func() {
		d.Close()
		<-done
	})
	return l.Addr().String()
}

func TestConformanceLocal(t *testing.T) {
	for _, tc := range []struct {
		name string
		ring ring.Ring
	}{
		{"Fp", ring.MustFp(257)},
		{"Z", ring.MustIntQuotient(1, 0, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			apitest.Run(t, tc.ring, func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
				return f.Reference
			})
		})
	}
}

// The tamper wrappers must be transparent when their targets never fire:
// idle (no target) and aimed at a key outside the document.
func TestConformanceTamperer(t *testing.T) {
	t.Run("Idle", func(t *testing.T) {
		apitest.Run(t, ring.MustIntQuotient(1, 0, 1), func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
			return &server.Tamperer{Inner: f.Reference}
		})
	})
	t.Run("MissedTarget", func(t *testing.T) {
		apitest.Run(t, ring.MustFp(257), func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
			return &server.Tamperer{
				Inner:          f.Reference,
				CorruptPolyAt:  drbg.NodeKey{1 << 20},
				CorruptValueAt: drbg.NodeKey{1 << 20},
			}
		})
	})
}

// TestConformanceMultiServer registers core.MultiServer (wrapping
// in-process Locals) with both combiner implementations: the fastfield
// Lagrange batch combiner (the default) and the big.Int interpolation
// ablation, so the rewritten combine path answers to the same contract as
// every other ServerAPI.
func TestConformanceMultiServer(t *testing.T) {
	for _, tc := range []struct {
		k, n       int
		bigCombine bool
	}{
		{1, 1, false}, {2, 3, false}, {4, 4, false},
		{2, 3, true}, {4, 4, true},
	} {
		name := fmt.Sprintf("k%d_n%d", tc.k, tc.n)
		if tc.bigCombine {
			name += "_bigCombine"
		}
		t.Run(name, func(t *testing.T) {
			apitest.Run(t, ring.MustFp(257), func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
				fp := f.Ring.(*ring.FpCyclotomic)
				shares, err := sharing.MultiSplit(f.Encoded, f.Seed, tc.k, tc.n, rand.Reader)
				if err != nil {
					t.Fatal(err)
				}
				members := make([]core.MultiMember, len(shares))
				for i, s := range shares {
					srv, err := server.NewLocal(fp, s.Tree)
					if err != nil {
						t.Fatal(err)
					}
					members[i] = core.MultiMember{X: s.X, API: srv}
				}
				ms, err := core.NewMultiServer(fp, tc.k, members)
				if err != nil {
					t.Fatal(err)
				}
				ms.BigCombine = tc.bigCombine
				return ms
			})
		})
	}
}

// TestConformanceShardRouter registers the scatter/gather shard.Router
// with the suite: the fixture tree is partitioned into 2 and 4 shards of
// guarded in-process Locals, on both rings — the routed deployment must
// be indistinguishable from the single store it was cut from.
func TestConformanceShardRouter(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
		ring   func() ring.Ring
	}{
		{"Fp_2shards", 2, func() ring.Ring { return ring.MustFp(257) }},
		{"Fp_4shards", 4, func() ring.Ring { return ring.MustFp(257) }},
		{"Z_2shards", 2, func() ring.Ring { return ring.MustIntQuotient(1, 0, 1) }},
		{"Z_4shards", 4, func() ring.Ring { return ring.MustIntQuotient(1, 0, 1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			apitest.Run(t, tc.ring(), func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
				return newShardRouter(t, f, tc.shards)
			})
		})
	}
}

// TestConformanceShardMultiServer registers the 2-D composition:
// the document is Shamir-shared 2-of-3 (MultiSplit), every member tree
// is partitioned under ONE shared manifest (the plan is shape-driven and
// all member trees mirror the document shape), and each shard's backend
// is a k-of-n MultiServer over that shard's member slices. Partition and
// replication must commute with the protocol.
func TestConformanceShardMultiServer(t *testing.T) {
	const shards, k, n = 2, 2, 3
	apitest.Run(t, ring.MustFp(257), func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
		fp := f.Ring.(*ring.FpCyclotomic)
		shares, err := sharing.MultiSplit(f.Encoded, f.Seed, k, n, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		man, err := shard.Plan(shares[0].Tree, shards)
		if err != nil {
			t.Fatal(err)
		}
		// perMember[j][s] is member j's slice of shard s.
		perMember := make([][]*sharing.Tree, n)
		for j, s := range shares {
			perMember[j], err = shard.PartitionWithManifest(s.Tree, man)
			if err != nil {
				t.Fatal(err)
			}
		}
		backends := make([]core.ServerAPI, shards)
		for s := 0; s < shards; s++ {
			members := make([]core.MultiMember, n)
			for j := 0; j < n; j++ {
				local, err := server.NewLocal(fp, perMember[j][s])
				if err != nil {
					t.Fatal(err)
				}
				members[j] = core.MultiMember{X: shares[j].X, API: local}
			}
			ms, err := core.NewMultiServer(fp, k, members)
			if err != nil {
				t.Fatal(err)
			}
			backends[s] = ms
		}
		router, err := shard.NewRouter(man, backends)
		if err != nil {
			t.Fatal(err)
		}
		return router
	})
}

// newShardRouter partitions the fixture tree into guarded in-process
// Locals behind a scatter/gather Router (shared by the router and
// coalescer conformance tables).
func newShardRouter(t *testing.T, f *apitest.Fixture, shards int) *shard.Router {
	t.Helper()
	trees, man, err := shard.Partition(f.ServerTree, shards)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]core.ServerAPI, len(trees))
	for s, st := range trees {
		local, err := server.NewLocal(f.Ring, st)
		if err != nil {
			t.Fatal(err)
		}
		guard, err := shard.NewGuard(f.Ring, local, man, s)
		if err != nil {
			t.Fatal(err)
		}
		backends[s] = guard
	}
	router, err := shard.NewRouter(man, backends)
	if err != nil {
		t.Fatal(err)
	}
	return router
}

// TestConformanceCoalesce pins the cross-session request coalescer to
// the ServerAPI contract: over the plain in-process store on both rings,
// and composed over a 2-shard guarded Router — merged passes must be
// indistinguishable from per-request serving, including error semantics
// (unknown keys must fail only their own request).
func TestConformanceCoalesce(t *testing.T) {
	t.Run("Fp", func(t *testing.T) {
		apitest.Run(t, ring.MustFp(257), func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
			return coalesce.New(f.Reference, nil)
		})
	})
	t.Run("Z", func(t *testing.T) {
		apitest.Run(t, ring.MustIntQuotient(1, 0, 1), func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
			return coalesce.New(f.Reference, nil)
		})
	})
	t.Run("Over2ShardRouter", func(t *testing.T) {
		apitest.Run(t, ring.MustFp(257), func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
			return coalesce.New(newShardRouter(t, f, 2), nil)
		})
	})
	t.Run("Z_Over2ShardRouter", func(t *testing.T) {
		apitest.Run(t, ring.MustIntQuotient(1, 0, 1), func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
			return coalesce.New(newShardRouter(t, f, 2), nil)
		})
	})
}

// TestConformanceBatcher pins the client-side micro-batcher: over a
// pipelined remote session and over a pooled connection set, both
// against a coalescing daemon — the full batched serving stack.
func TestConformanceBatcher(t *testing.T) {
	startCoalescingDaemon := func(t *testing.T, f *apitest.Fixture) string {
		t.Helper()
		d := server.NewDaemon(coalesce.New(f.Reference, nil), nil)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = d.Serve(l)
		}()
		t.Cleanup(func() {
			d.Close()
			<-done
		})
		return l.Addr().String()
	}
	t.Run("OverRemote", func(t *testing.T) {
		apitest.Run(t, ring.MustFp(257), func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
			r, err := client.Dial(startCoalescingDaemon(t, f), nil)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })
			return client.NewBatcher(r, nil)
		})
	})
	t.Run("OverPool", func(t *testing.T) {
		apitest.Run(t, ring.MustIntQuotient(1, 0, 1), func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
			p, err := client.DialPool(startCoalescingDaemon(t, f), 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { p.Close() })
			return client.NewBatcher(p, nil)
		})
	})
}

func TestConformanceRemote(t *testing.T) {
	t.Run("Pipelined", func(t *testing.T) {
		apitest.Run(t, ring.MustIntQuotient(1, 0, 1), func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
			addr := startFixtureDaemon(t, f)
			r, err := client.Dial(addr, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.ProtocolVersion(); got != wire.MaxVersion {
				t.Fatalf("negotiated version %d, want %d", got, wire.MaxVersion)
			}
			t.Cleanup(func() { r.Close() })
			return r
		})
	})
	t.Run("StrictV1", func(t *testing.T) {
		apitest.Run(t, ring.MustIntQuotient(1, 0, 1), func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
			addr := startFixtureDaemon(t, f)
			r, err := client.DialVersion(addr, wire.Version, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.ProtocolVersion(); got != wire.Version {
				t.Fatalf("negotiated version %d, want %d", got, wire.Version)
			}
			t.Cleanup(func() { r.Close() })
			return r
		})
	})
	t.Run("Pool", func(t *testing.T) {
		apitest.Run(t, ring.MustFp(257), func(t *testing.T, f *apitest.Fixture) core.ServerAPI {
			addr := startFixtureDaemon(t, f)
			p, err := client.DialPool(addr, 3, nil)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { p.Close() })
			return p
		})
	})
}
