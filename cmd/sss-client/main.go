// Command sss-client is an interactive query shell against a remote share
// server: type XPath expressions, get matching node keys back, with
// per-query protocol statistics.
//
// Usage:
//
//	sss-client -key client.key -addr 127.0.0.1:7070
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sssearch"
)

func main() {
	keyPath := flag.String("key", "client.key", "client key file")
	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	verify := flag.String("verify", "resolve", "verification level: none|resolve|full")
	flag.Parse()

	key, err := sssearch.LoadClientKey(*keyPath)
	if err != nil {
		log.Fatalf("sss-client: %v", err)
	}
	sess, err := key.Dial(*addr)
	if err != nil {
		log.Fatalf("sss-client: %v", err)
	}
	defer sess.Close()

	var lvl sssearch.VerifyLevel
	switch *verify {
	case "none":
		lvl = sssearch.VerifyNone
	case "full":
		lvl = sssearch.VerifyFull
	default:
		lvl = sssearch.VerifyResolve
	}

	fmt.Printf("connected to %s (verify=%s). Enter XPath queries, or \\q to quit.\n", *addr, *verify)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("sss> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == `\q` || line == "quit" || line == "exit" {
			break
		}
		res, err := sess.Search(line, sssearch.WithVerify(lvl))
		if err != nil {
			fmt.Printf("  error: %v\n", err)
			continue
		}
		for _, k := range res.Matches {
			fmt.Printf("  %s\n", k)
		}
		if len(res.Unresolved) > 0 {
			fmt.Printf("  (%d unresolved candidates)\n", len(res.Unresolved))
		}
		fmt.Printf("  %d match(es) — %s\n", len(res.Matches), sssearch.FormatStats(res.Stats))
	}
}
