// Command sss-server hosts a share store over TCP. The process holds only
// the server share tree and public ring parameters; it cannot decrypt
// anything it stores.
//
// Usage:
//
//	sss-server -store server.sss -listen 127.0.0.1:7070
//
// Sharded deployments: a shard store produced by Bundle.Shard embeds its
// shard id and routing manifest and is auto-detected, so each daemon of a
// partitioned deployment is started the same way:
//
//	sss-server -store shard0.sss -listen 127.0.0.1:7070
//
// Alternatively a WHOLE-tree store can be served as one logical shard of
// a manifest (partitioned routing over complete replicas):
//
//	sss-server -store server.sss -shard-manifest routing.ssm -shard-id 1
//
// Overload protection and live operations: -max-inflight bounds
// concurrently executing requests daemon-wide (excess requests are shed
// with a typed retryable error plus a retry-after hint that resilient
// clients honor), and -reload re-reads the store file and hot-swaps it
// into the running daemon on SIGHUP — in-flight requests finish on the
// old store, no connection is dropped:
//
//	sss-server -store server.sss -max-inflight 256 -reload
//	kill -HUP $(pidof sss-server)   # after replacing server.sss
//
// Observability: -debug-addr starts an operator-only HTTP listener with
// /metrics (Prometheus text: every protocol counter plus per-stage latency
// histograms), /healthz (503 once draining — point load-balancer checks
// here), /varz (JSON counters, stage latencies and the slow-query log) and
// /debug/pprof. -trace-sample N samples every Nth request end to end: the
// sampled request carries a trace ID across the wire, every serving stage
// it passes through is attributed to it, and the slowest sampled requests
// appear in /varz's slow_queries with their per-stage breakdown:
//
//	sss-server -store server.sss -debug-addr 127.0.0.1:7071 -trace-sample 100
//	curl -s 127.0.0.1:7071/metrics | grep sss_stage_latency
//
// Bind -debug-addr to loopback or an internal interface only; the pprof
// endpoints are not meant for untrusted networks.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sssearch"
	"sssearch/internal/obs"
)

func main() {
	storePath := flag.String("store", "server.sss", "server share store file (whole-tree or shard store)")
	listen := flag.String("listen", "127.0.0.1:7070", "listen address")
	quiet := flag.Bool("quiet", false, "suppress connection logging")
	manifestPath := flag.String("shard-manifest", "", "serve a whole-tree store as one shard of this routing manifest")
	shardID := flag.Int("shard-id", -1, "shard id within -shard-manifest")
	coalesceFlag := flag.Bool("coalesce", true, "merge concurrent queries from all connections into shared deduplicated evaluation passes")
	drain := flag.Duration("drain", 5*time.Second, "graceful-drain window on SIGTERM/SIGINT: finish in-flight requests and send clients a Bye before closing (0 = immediate close)")
	idleTimeout := flag.Duration("idle-timeout", 0, "close connections idle between frames for this long (0 = never)")
	maxInflight := flag.Int("max-inflight", 0, "bound concurrently executing requests across the daemon; excess requests are shed with a typed retryable error and a retry-after hint (0 = unbounded)")
	reload := flag.Bool("reload", false, "re-read -store and hot-swap it into the running daemon on SIGHUP — zero-downtime store reload (whole-tree stores only)")
	debugAddr := flag.String("debug-addr", "", "serve the ops/debug HTTP surface (/metrics, /healthz, /varz, /debug/pprof) on this address; keep it off untrusted networks (empty = disabled)")
	traceSample := flag.Int("trace-sample", 0, "sample every Nth request for end-to-end tracing: stage attribution and the slow-query log (1 = every request, 0 = off)")
	flag.Parse()
	if *idleTimeout < 0 {
		log.Fatal("sss-server: -idle-timeout must be >= 0")
	}
	if *traceSample < 0 {
		log.Fatal("sss-server: -trace-sample must be >= 0")
	}
	obs.SetSampleEvery(*traceSample)
	maxInflightSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "max-inflight" {
			maxInflightSet = true
		}
	})
	if maxInflightSet && *maxInflight < 1 {
		log.Fatal("sss-server: -max-inflight must be >= 1 (omit the flag for unbounded admission)")
	}
	if *reload && *storePath == "" {
		log.Fatal("sss-server: -reload requires a -store path to re-read")
	}
	opts := sssearch.ServeOpts{DisableCoalesce: !*coalesceFlag, IdleTimeout: *idleTimeout, MaxInflight: *maxInflight}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("sss-server: listen: %v", err)
	}

	var daemon *sssearch.Daemon
	reloadable := false
	switch {
	case *manifestPath != "":
		// Whole-tree store, logically fenced to one manifest range.
		if *shardID < 0 {
			log.Fatal("sss-server: -shard-manifest requires -shard-id")
		}
		man, err := sssearch.LoadShardManifest(*manifestPath)
		if err != nil {
			log.Fatalf("sss-server: loading manifest: %v", err)
		}
		st, err := sssearch.LoadServerStore(*storePath)
		if err != nil {
			log.Fatalf("sss-server: loading store: %v", err)
		}
		fmt.Printf("sss-server: serving %s (%s, %d nodes) as shard %d/%d on %s\n",
			*storePath, st.RingName(), st.NodeCount(), *shardID, man.NumShards(), l.Addr())
		daemon, err = st.ServeShardTCPOpts(l, man, *shardID, opts)
		if err != nil {
			log.Fatalf("sss-server: %v", err)
		}
	case isShardStore(*storePath):
		// Shard store: id + manifest travel in the file.
		st, err := sssearch.LoadShardStore(*storePath)
		if err != nil {
			log.Fatalf("sss-server: loading shard store: %v", err)
		}
		if *shardID >= 0 && *shardID != st.ID() {
			log.Fatalf("sss-server: -shard-id %d contradicts store's embedded shard id %d", *shardID, st.ID())
		}
		fmt.Printf("sss-server: serving %s (%s) as shard %d/%d, %d owned nodes, on %s\n",
			*storePath, st.RingName(), st.ID(), st.Manifest().NumShards(), st.OwnedNodes(), l.Addr())
		daemon, err = st.ServeTCPOpts(l, opts)
		if err != nil {
			log.Fatalf("sss-server: %v", err)
		}
	default:
		st, err := sssearch.LoadServerStore(*storePath)
		if err != nil {
			log.Fatalf("sss-server: loading store: %v", err)
		}
		fmt.Printf("sss-server: serving %s (%s, %d nodes) on %s\n",
			*storePath, st.RingName(), st.NodeCount(), l.Addr())
		daemon, err = st.ServeTCPOpts(l, opts)
		if err != nil {
			log.Fatalf("sss-server: %v", err)
		}
		reloadable = true
	}
	if *reload && !reloadable {
		log.Fatal("sss-server: -reload supports whole-tree stores only (shard daemons cannot hot-swap)")
	}
	if *debugAddr != "" {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("sss-server: debug listen: %v", err)
		}
		fmt.Printf("sss-server: debug surface on http://%s (/metrics /healthz /varz /debug/pprof)\n", dl.Addr())
		go func() {
			if err := http.Serve(dl, daemon.DebugHandler()); err != nil {
				log.Printf("sss-server: debug server: %v", err)
			}
		}()
	}
	if !*quiet {
		fmt.Println("sss-server: the store contains only additive shares; queries arrive as opaque points")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var hup chan os.Signal
	if *reload {
		hup = make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
	}
	for {
		select {
		case <-hup:
			// Zero-downtime reload: re-read the store file and swap it in.
			// In-flight requests finish on the old store; a failed load or
			// a params mismatch leaves the served store untouched.
			st, err := sssearch.LoadServerStore(*storePath)
			if err != nil {
				log.Printf("sss-server: reload: loading %s: %v (still serving the old store)", *storePath, err)
				continue
			}
			epoch, err := daemon.SwapStore(st)
			if err != nil {
				log.Printf("sss-server: reload: %v (still serving the old store)", err)
				continue
			}
			fmt.Printf("sss-server: reloaded %s (epoch %d)\n", *storePath, epoch)
		case <-sig:
			if *drain <= 0 {
				fmt.Println("\nsss-server: shutting down")
				if err := daemon.Close(); err != nil {
					log.Printf("sss-server: close: %v", err)
				}
				return
			}
			fmt.Printf("\nsss-server: draining (up to %v)\n", *drain)
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			defer cancel()
			if err := daemon.Shutdown(ctx); err != nil {
				log.Printf("sss-server: drain: %v", err)
			}
			return
		}
	}
}

// isShardStore sniffs the file magic without fully parsing the store.
func isShardStore(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false
	}
	return sssearch.IsShardStoreFile(magic[:])
}
