// Command sss-server hosts a share store over TCP. The process holds only
// the server share tree and public ring parameters; it cannot decrypt
// anything it stores.
//
// Usage:
//
//	sss-server -store server.sss -listen 127.0.0.1:7070
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"sssearch"
)

func main() {
	storePath := flag.String("store", "server.sss", "server share store file")
	listen := flag.String("listen", "127.0.0.1:7070", "listen address")
	quiet := flag.Bool("quiet", false, "suppress connection logging")
	flag.Parse()

	st, err := sssearch.LoadServerStore(*storePath)
	if err != nil {
		log.Fatalf("sss-server: loading store: %v", err)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("sss-server: listen: %v", err)
	}
	fmt.Printf("sss-server: serving %s (%s, %d nodes) on %s\n",
		*storePath, st.RingName(), st.NodeCount(), l.Addr())
	if !*quiet {
		fmt.Println("sss-server: the store contains only additive shares; queries arrive as opaque points")
	}
	daemon, err := st.ServeTCP(l)
	if err != nil {
		log.Fatalf("sss-server: %v", err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nsss-server: shutting down")
	if err := daemon.Close(); err != nil {
		log.Printf("sss-server: close: %v", err)
	}
}
