// Command sss-bench regenerates the paper's figures and the measured
// tables of EXPERIMENTS.md.
//
// Usage:
//
//	sss-bench               # run everything at full scale
//	sss-bench -quick        # reduced workloads (seconds, not minutes)
//	sss-bench -exp pruning  # a single experiment
//	sss-bench -list
//	sss-bench -json out.json  # time the tracked hot paths, write JSON
//	sss-bench -json out.json -metrics metrics.json  # + counter evidence
//	sss-bench -json out.json -baselines  # + heavy reference baselines
//
// -cpuprofile and -memprofile wrap any of the above in pprof collection,
// so perf work can attach evidence without a bespoke harness:
//
//	sss-bench -json out.json -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"sssearch/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment by id (default: all)")
	quick := flag.Bool("quick", false, "reduced workload sizes")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonPath := flag.String("json", "", "time the tracked hot-path benchmarks and write a machine-readable result file")
	metricsPath := flag.String("metrics", "", "with -json: also write the counter snapshots of instrumented targets (shed/retry/breaker evidence) to this file")
	baselines := flag.Bool("baselines", false, "with -json: include the heavy reference-pipeline baselines (outsourceFp100kSchoolbook — minutes per pass) so speedup claims are measured in the same run")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("sss-bench: cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("sss-bench: cpuprofile: %v", err)
		}
	}
	err := run(*exp, *quick, *list, *jsonPath, *metricsPath, *baselines)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		if werr := writeHeapProfile(*memProfile); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		log.Fatalf("sss-bench: %v", err)
	}
}

func run(exp string, quick, list bool, jsonPath, metricsPath string, baselines bool) error {
	if jsonPath != "" {
		return runJSONBench(jsonPath, metricsPath, baselines)
	}
	if list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %-28s %s\n", e.ID, e.Ref, e.Title)
		}
		return nil
	}
	cfg := experiments.Config{Quick: quick}
	if exp != "" {
		e, ok := experiments.ByID(exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", exp)
		}
		fmt.Printf("=== %s (%s): %s ===\n", e.ID, e.Ref, e.Title)
		return e.Run(os.Stdout, cfg)
	}
	return experiments.RunAll(os.Stdout, cfg)
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC() // settle live heap before the snapshot
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
