// Command sss-bench regenerates the paper's figures and the measured
// tables of EXPERIMENTS.md.
//
// Usage:
//
//	sss-bench               # run everything at full scale
//	sss-bench -quick        # reduced workloads (seconds, not minutes)
//	sss-bench -exp pruning  # a single experiment
//	sss-bench -list
//	sss-bench -json out.json  # time the tracked hot paths, write JSON
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sssearch/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment by id (default: all)")
	quick := flag.Bool("quick", false, "reduced workload sizes")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonPath := flag.String("json", "", "time the tracked hot-path benchmarks and write a machine-readable result file")
	flag.Parse()

	if *jsonPath != "" {
		if err := runJSONBench(*jsonPath); err != nil {
			log.Fatalf("sss-bench: %v", err)
		}
		return
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %-28s %s\n", e.ID, e.Ref, e.Title)
		}
		return
	}
	cfg := experiments.Config{Quick: *quick}
	if *exp != "" {
		e, ok := experiments.ByID(*exp)
		if !ok {
			log.Fatalf("sss-bench: unknown experiment %q (try -list)", *exp)
		}
		fmt.Printf("=== %s (%s): %s ===\n", e.ID, e.Ref, e.Title)
		if err := e.Run(os.Stdout, cfg); err != nil {
			log.Fatalf("sss-bench: %v", err)
		}
		return
	}
	if err := experiments.RunAll(os.Stdout, cfg); err != nil {
		log.Fatalf("sss-bench: %v", err)
	}
}
