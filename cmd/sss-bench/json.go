package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"sssearch/internal/experiments"
	"sssearch/internal/metrics"
)

// benchReport is the machine-readable result file written by -json. The
// schema is append-only: per-PR BENCH_N.json files embed these reports,
// so consumers diffing the perf trajectory across PRs rely on the field
// names staying put.
type benchReport struct {
	Schema string `json:"schema"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	// GoMaxProcs and NumCPU pin the host parallelism the numbers were
	// taken at, so BENCH_*.json trajectories are comparable across hosts
	// (the parallel walks and the coalescer behave very differently at
	// GOMAXPROCS=1 vs a many-core box).
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numcpu"`
	Results    []benchResult `json:"results"`
}

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// P50Ns/P95Ns/P99Ns are the latency quantiles exported by
	// distribution-story targets (the overload pair); zero/absent for
	// throughput targets. P99Ns was added first, the lower quantiles
	// later, all as optional fields — append-only evolution. Since the
	// distribution targets switched to log-bucketed histograms the
	// quantiles are bucket-interpolated rather than exact order
	// statistics.
	P50Ns float64 `json:"p50_ns,omitempty"`
	P95Ns float64 `json:"p95_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
}

// runJSONBench times every tracked target with the testing benchmark
// harness and writes the report to path. When metricsPath is non-empty
// it also writes the counter snapshots exported by instrumented targets
// (keyed target name → counter-set name → snapshot) — the evidence that
// the run exercised the machinery it claims to measure.
func runJSONBench(path, metricsPath string, baselines bool) error {
	targets, err := experiments.BenchTargetsWithOpts(experiments.BenchOpts{SchoolbookBaseline: baselines})
	if err != nil {
		return err
	}
	report := benchReport{
		Schema:     "sss-bench/v1",
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, t := range targets {
		t := t
		var failure error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := t.Fn(); err != nil {
					failure = err
					b.Fatal(err)
				}
			}
		})
		if failure != nil {
			return fmt.Errorf("bench %s: %w", t.Name, failure)
		}
		res := benchResult{
			Name:        t.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if t.Dist != nil {
			dist := t.Dist()
			res.P50Ns = dist.Quantile(0.50)
			res.P95Ns = dist.Quantile(0.95)
			res.P99Ns = dist.Quantile(0.99)
		}
		report.Results = append(report.Results, res)
		fmt.Printf("%-18s %12.0f ns/op %10d B/op %8d allocs/op (%d iters)\n",
			t.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.Iterations)
		if res.P99Ns > 0 {
			fmt.Printf("%-18s %12.0f ns p50 %12.0f ns p95 %12.0f ns p99\n",
				"", res.P50Ns, res.P95Ns, res.P99Ns)
		}
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	if metricsPath == "" {
		return nil
	}
	snaps := map[string]map[string]metrics.Snapshot{}
	for _, t := range targets {
		if t.Metrics != nil {
			snaps[t.Name] = t.Metrics()
		}
	}
	mbuf, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return err
	}
	mbuf = append(mbuf, '\n')
	return os.WriteFile(metricsPath, mbuf, 0o644)
}
