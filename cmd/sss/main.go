// Command sss is the scheme's Swiss-army CLI: encode and split XML
// documents, inspect stores, and run queries against local stores or
// remote servers.
//
// Usage:
//
//	sss encode  -in doc.xml -store server.sss -key client.key [-ring z|fp] [-p 257] [-r 1,0,1]
//	sss shard   -store server.sss -n 3 [-out dir]
//	sss query   -key client.key (-store server.sss | -addr host:port | -manifest routing.ssm -addrs a,b,c) [-verify none|resolve|full] [-stats] XPATH
//	sss inspect (-store server.sss | -key client.key)
//	sss figures
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"sssearch"
	"sssearch/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = cmdEncode(os.Args[2:])
	case "shard":
		err = cmdShard(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "figures":
		err = cmdFigures(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sss: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sss: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `sss — secret-shared search over encrypted XML (Brinkman et al., SDM@VLDB 2004)

commands:
  encode   translate an XML document into a server share store + client key
  shard    partition a server store into per-daemon shard stores + routing manifest
  query    run an XPath query against a store (local, remote, or sharded)
  inspect  describe a store or client key
  figures  reproduce the paper's figures 1-6`)
}

func cmdEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	in := fs.String("in", "", "input XML document (required)")
	storePath := fs.String("store", "server.sss", "output server share store")
	keyPath := fs.String("key", "client.key", "output client key")
	ringKind := fs.String("ring", "z", "ring family: z (Z[x]/(r)) or fp (F_p[x]/(x^(p-1)-1))")
	p := fs.Uint64("p", 257, "field prime for -ring fp")
	rCoeffs := fs.String("r", "1,0,1", "ascending modulus coefficients for -ring z")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("encode: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	doc, err := sssearch.ParseXMLReader(f)
	if err != nil {
		return err
	}
	cfg := sssearch.Config{}
	switch *ringKind {
	case "z":
		coeffs, err := parseCoeffs(*rCoeffs)
		if err != nil {
			return err
		}
		cfg.Kind = sssearch.RingZ
		cfg.R = coeffs
	case "fp":
		cfg.Kind = sssearch.RingFp
		cfg.P = *p
	default:
		return fmt.Errorf("encode: unknown ring %q", *ringKind)
	}
	bundle, err := sssearch.Outsource(doc, cfg)
	if err != nil {
		return err
	}
	if err := bundle.Server.Save(*storePath); err != nil {
		return err
	}
	if err := bundle.Key.Save(*keyPath); err != nil {
		return err
	}
	fmt.Printf("encoded %d elements into %s (%s, %d bytes)\n",
		doc.Count(), *storePath, bundle.Server.RingName(), bundle.Server.ByteSize())
	fmt.Printf("client key written to %s (keep it secret; it is the only copy)\n", *keyPath)
	return nil
}

func cmdShard(args []string) error {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	storePath := fs.String("store", "server.sss", "input server share store")
	n := fs.Int("n", 2, "number of shards")
	out := fs.String("out", ".", "output directory for shardN.sss + routing.ssm")
	fs.Parse(args)
	st, err := sssearch.LoadServerStore(*storePath)
	if err != nil {
		return err
	}
	sb, err := st.Shard(*n)
	if err != nil {
		return err
	}
	manPath := filepath.Join(*out, "routing.ssm")
	if err := sb.Manifest.Save(manPath); err != nil {
		return err
	}
	fmt.Printf("%s: %d nodes → %d shards\n", *storePath, st.NodeCount(), *n)
	for i, shardStore := range sb.Stores {
		path := filepath.Join(*out, fmt.Sprintf("shard%d.sss", i))
		if err := shardStore.Save(path); err != nil {
			return err
		}
		fmt.Printf("  %s: shard %d, %d owned nodes, %d bytes\n",
			path, i, shardStore.OwnedNodes(), shardStore.ByteSize())
	}
	fmt.Printf("  %s: routing manifest (give to the client alongside its key)\n", manPath)
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	keyPath := fs.String("key", "client.key", "client key file")
	storePath := fs.String("store", "", "local server store file")
	addr := fs.String("addr", "", "remote server address (host:port)")
	manifestPath := fs.String("manifest", "", "routing manifest of a sharded deployment")
	addrs := fs.String("addrs", "", "comma-separated shard addresses (with -manifest, one per shard)")
	verify := fs.String("verify", "resolve", "verification level: none|resolve|full")
	stats := fs.Bool("stats", false, "print protocol statistics")
	docPath := fs.String("doc", "", "optional plaintext document for path display")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("query: exactly one XPath expression required")
	}
	expr := fs.Arg(0)
	key, err := sssearch.LoadClientKey(*keyPath)
	if err != nil {
		return err
	}
	var sess *sssearch.Session
	switch {
	case *manifestPath != "":
		var man *sssearch.ShardManifest
		man, err = sssearch.LoadShardManifest(*manifestPath)
		if err != nil {
			return err
		}
		list := strings.Split(*addrs, ",")
		if *addrs == "" || len(list) != man.NumShards() {
			return fmt.Errorf("query: -manifest needs -addrs with %d comma-separated addresses", man.NumShards())
		}
		sess, err = key.DialSharded(man, list...)
	case *addr != "":
		sess, err = key.Dial(*addr)
	case *storePath != "":
		var st *sssearch.ServerStore
		st, err = sssearch.LoadServerStore(*storePath)
		if err == nil {
			sess, err = key.ConnectLocal(st)
		}
	default:
		return fmt.Errorf("query: need -store, -addr, or -manifest + -addrs")
	}
	if err != nil {
		return err
	}
	defer sess.Close()
	lvl, err := parseVerify(*verify)
	if err != nil {
		return err
	}
	res, err := sess.Search(expr, sssearch.WithVerify(lvl))
	if err != nil {
		return err
	}
	if *docPath != "" {
		f, err := os.Open(*docPath)
		if err != nil {
			return err
		}
		doc, err := sssearch.ParseXMLReader(f)
		f.Close()
		if err != nil {
			return err
		}
		for _, p := range res.Paths(doc) {
			fmt.Println(p)
		}
	} else {
		for _, k := range res.Matches {
			fmt.Println(k)
		}
	}
	if len(res.Unresolved) > 0 {
		fmt.Printf("(%d unresolved candidates — rerun with -verify resolve)\n", len(res.Unresolved))
	}
	fmt.Printf("%d match(es)\n", len(res.Matches))
	if *stats {
		fmt.Println(sssearch.FormatStats(res.Stats))
	}
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	storePath := fs.String("store", "", "server store file")
	keyPath := fs.String("key", "", "client key file")
	fs.Parse(args)
	switch {
	case *storePath != "":
		st, err := sssearch.LoadServerStore(*storePath)
		if err != nil {
			return err
		}
		fmt.Printf("server store: %s\n  ring:  %s\n  nodes: %d\n  bytes: %d\n",
			*storePath, st.RingName(), st.NodeCount(), st.ByteSize())
		return nil
	case *keyPath != "":
		key, err := sssearch.LoadClientKey(*keyPath)
		if err != nil {
			return err
		}
		seed := key.Seed()
		fmt.Printf("client key: %s\n  seed: %s…(%d bytes)\n", *keyPath, seed.String()[:8], len(seed))
		return nil
	default:
		return fmt.Errorf("inspect: need -store or -key")
	}
}

func cmdFigures(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ExitOnError)
	fs.Parse(args)
	for _, id := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6"} {
		e, ok := experiments.ByID(id)
		if !ok {
			return fmt.Errorf("figures: %s not registered", id)
		}
		fmt.Printf("\n=== %s: %s ===\n", e.Ref, e.Title)
		if err := e.Run(os.Stdout, experiments.Config{}); err != nil {
			return err
		}
	}
	return nil
}

func parseCoeffs(s string) ([]int64, error) {
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad coefficient %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func parseVerify(s string) (sssearch.VerifyLevel, error) {
	switch s {
	case "none":
		return sssearch.VerifyNone, nil
	case "resolve":
		return sssearch.VerifyResolve, nil
	case "full":
		return sssearch.VerifyFull, nil
	default:
		return sssearch.VerifyResolve, fmt.Errorf("unknown verify level %q", s)
	}
}
