// Quickstart: outsource a document, query it, verify against plaintext.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sssearch"
)

const doc = `<customers>
  <client><name/></client>
  <client><name/></client>
</customers>`

func main() {
	// 1. Parse the document (the paper's figure 1 example).
	d, err := sssearch.ParseXML(doc)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Outsource: encode the element tree as polynomials over
	//    Z[x]/(x^2+1), split into client + server shares. The bundle's
	//    server half holds no secrets; the client key is 32 bytes of seed
	//    plus the private tag mapping.
	bundle, err := sssearch.Outsource(d, sssearch.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server store: %s, %d nodes, %d bytes (no secrets inside)\n",
		bundle.Server.RingName(), bundle.Server.NodeCount(), bundle.Server.ByteSize())

	// 3. Query. The server only ever sees the opaque point map(client) and
	//    which subtrees died; it learns neither the tag nor the answer.
	session, err := bundle.Connect()
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	for _, expr := range []string{"//client", "//name", "/customers/client/name", "//absent"} {
		res, err := session.Search(expr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-25s → %v\n", expr, res.Paths(d))
		fmt.Printf("%25s   %s\n", "", sssearch.FormatStats(res.Stats))

		// Cross-check against the plaintext evaluator.
		want, err := sssearch.EvaluatePlaintext(d, expr)
		if err != nil {
			log.Fatal(err)
		}
		if len(want) != len(res.Matches) {
			log.Fatalf("MISMATCH: plaintext %v", want)
		}
	}
	fmt.Println("all queries agree with the plaintext oracle ✓")
}
