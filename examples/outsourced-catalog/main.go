// Outsourced catalog: a library ships its catalog to an untrusted storage
// provider and queries it over TCP — the paper's deployment scenario.
//
// The example runs both sides in one process for convenience but they
// communicate only through the real wire protocol over a TCP socket, and
// the server half holds nothing but its additive shares.
//
//	go run ./examples/outsourced-catalog
package main

import (
	"fmt"
	"log"
	"net"

	"sssearch"
)

const catalog = `<library>
  <shelf id="crypto">
    <book><title/><author/><author/><year/></book>
    <book><title/><author/><year/></book>
  </shelf>
  <shelf id="databases">
    <book><title/><author/><year/></book>
    <journal><title/><volume/></journal>
  </shelf>
  <office>
    <book><title/><author/></book>
  </office>
</library>`

func main() {
	doc, err := sssearch.ParseXML(catalog)
	if err != nil {
		log.Fatal(err)
	}

	// --- data owner side: encode and split -----------------------------
	bundle, err := sssearch.Outsource(doc, sssearch.Config{
		Kind: sssearch.RingZ,
		R:    []int64{1, 1, 0, 1}, // x^3 + x + 1, a degree-3 modulus
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- storage provider side: serve the share store ------------------
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	daemon, err := bundle.Server.ServeTCP(l)
	if err != nil {
		log.Fatal(err)
	}
	defer daemon.Close()
	fmt.Printf("provider: serving %d share polynomials (%s) on %s\n",
		bundle.Server.NodeCount(), bundle.Server.RingName(), l.Addr())

	// --- client side: connect with the key and query -------------------
	session, err := bundle.Key.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	queries := []string{
		"//book",           // all books anywhere
		"//shelf/book",     // books on shelves (not the office copy)
		"//journal",        // rare tag
		"/library//author", // every author
		"//shelf//year",    // years under shelves
	}
	for _, q := range queries {
		res, err := session.Search(q, sssearch.WithVerify(sssearch.VerifyFull))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquery %s\n", q)
		for _, p := range res.Paths(doc) {
			fmt.Printf("  %s\n", p)
		}
		fmt.Printf("  [%s]\n", sssearch.FormatStats(res.Stats))
	}
	fmt.Printf("\ncumulative wire traffic: %d B sent, %d B received\n",
		session.Counters().BytesSent, session.Counters().BytesReceived)
	fmt.Println("every answer re-verified against eq. (2) — a lying provider would have been caught")
}
