// Sharded deployment: one document's share tree partitioned across
// several daemons by subtree, so a document larger than any single host
// can still be outsourced — the capacity-scaling complement to Shamir
// replication (examples/multiserver).
//
// The data owner outsources once, cuts the server store into N shard
// stores plus a small routing manifest (Bundle.Shard), and hands each
// store to a different daemon. Each daemon holds only its key ranges and
// rejects anything else. The client routes with the manifest
// (DialSharded): every query wave is scattered to the owning shards
// concurrently and gathered back in order — same answers, same privacy,
// 1/N of the storage per host.
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"sssearch"
)

const doc = `<site>
  <regions>
    <europe><item/><item/><item/></europe>
    <asia><item/><item/></asia>
    <namerica><item/></namerica>
  </regions>
  <people>
    <person><name/><watch/></person>
    <person><name/></person>
    <person><name/><watch/><watch/></person>
  </people>
  <catgraph><edge/><edge/></catgraph>
</site>`

func main() {
	const shards = 3

	d, err := sssearch.ParseXML(doc)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := sssearch.Outsource(d, sssearch.Config{Kind: sssearch.RingFp, P: 257})
	if err != nil {
		log.Fatal(err)
	}

	// Owner side: cut the store into shard stores + routing manifest.
	sb, err := bundle.Shard(shards)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "sss-sharded")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	manifestPath := filepath.Join(dir, "routing.ssm")
	if err := sb.Manifest.Save(manifestPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d nodes, %d B as one store\n",
		bundle.Server.NodeCount(), bundle.Server.ByteSize())

	// Provider side: each shard store runs as its own daemon (in real
	// deployments: `sss-server -store shardN.sss` on N different hosts —
	// the shard id and manifest travel inside the file).
	addrs := make([]string, shards)
	for i, st := range sb.Stores {
		path := filepath.Join(dir, fmt.Sprintf("shard%d.sss", i))
		if err := st.Save(path); err != nil {
			log.Fatal(err)
		}
		loaded, err := sssearch.LoadShardStore(path)
		if err != nil {
			log.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		daemon, err := loaded.ServeTCP(l)
		if err != nil {
			log.Fatal(err)
		}
		defer daemon.Close()
		addrs[i] = l.Addr().String()
		fmt.Printf("shard %d: %d of %d polynomials (%d B) on %s\n",
			loaded.ID(), loaded.OwnedNodes(), bundle.Server.NodeCount(), loaded.ByteSize(), addrs[i])
	}

	// Client side: the key plus the public manifest route the queries.
	man, err := sssearch.LoadShardManifest(manifestPath)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := bundle.Key.DialSharded(man, addrs...)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	for _, expr := range []string{"//person", "//watch", "/site/regions/asia/item"} {
		res, err := sess.Search(expr, sssearch.WithVerify(sssearch.VerifyFull))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-28s → %d matches (verified)\n", expr, len(res.Matches))
		for _, p := range res.Paths(d) {
			fmt.Printf("  %s\n", p)
		}
	}

	if stats, ok := sess.ShardCounters(); ok {
		fmt.Printf("\nrouting: %d batches, avg fan-out %.2f, per-shard requests %v\n",
			stats.Batches, stats.AvgFanout(), stats.Requests)
	}
	fmt.Println("every daemon saw only opaque points for its own key ranges; no daemon holds the whole tree ✓")
}
