// Content search: the extension sketched in the paper's conclusion (§5) —
// searching the text BETWEEN the tags with a non-invertible hashed
// polynomial index, coupled with independently encrypted payloads.
//
//	"the data polynomials can be used as an index to the encrypted data"
//
//	go run ./examples/content-search
package main

import (
	"crypto/sha256"
	"fmt"
	"log"

	"sssearch/internal/contentindex"
	"sssearch/internal/drbg"
	"sssearch/internal/ring"
	"sssearch/internal/sharing"
	"sssearch/internal/xmltree"
)

const notes = `<notebook>
  <entry><title>polynomial secret sharing</title>
    <body>shamir splits a secret into shares using random polynomials</body></entry>
  <entry><title>encrypted search</title>
    <body>evaluate shared polynomials to search without decrypting</body></entry>
  <entry><title>groceries</title>
    <body>coffee beans and oat milk</body></entry>
</notebook>`

func main() {
	doc, err := xmltree.ParseString(notes)
	if err != nil {
		log.Fatal(err)
	}

	// Client-side secrets: word-hash key, share seed, payload key.
	r := ring.MustIntQuotient(1, 0, 1)
	hasher := contentindex.NewHasher(r, []byte("hash-key"))
	seed := drbg.Seed(sha256.Sum256([]byte("content-seed")))
	payloadKey := []byte("payload-master-key")

	// Build the content polynomial tree and split it; encrypt payloads.
	tree, err := contentindex.Build(r, doc, hasher)
	if err != nil {
		log.Fatal(err)
	}
	serverTree, err := sharing.Split(tree, seed)
	if err != nil {
		log.Fatal(err)
	}
	payloads, err := contentindex.EncryptPayloads(payloadKey, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server holds %d share polynomials + %d encrypted payloads; no keys\n\n",
		serverTree.Count(), payloads.Count())

	searcher := contentindex.NewSearcher(r, hasher, seed, payloadKey, nil)
	for _, word := range []string{"polynomials", "shamir", "coffee", "quantum"} {
		res, err := searcher.Search(word, serverTree, payloads)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("search %q: %d hit(s)\n", word, len(res.Matches))
		for _, k := range res.Matches {
			n, _ := doc.Lookup(k)
			fmt.Printf("  %s: %q\n", n.PathString(), n.Text)
		}
		fmt.Printf("  index narrowed %d nodes → %d candidates; %d payload bytes fetched\n\n",
			doc.Count(), res.IndexCandidates, res.PayloadBytes)
	}
	fmt.Println("note: the word hash is one-way — unlike tags, content matches cannot be")
	fmt.Println("verified algebraically (Theorem 1 does not apply); the decrypted payloads")
	fmt.Println("provide the exact filter, as §5 proposes.")
}
