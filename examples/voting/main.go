// Anonymous voting: the paper's §3 worked example of secure multi-party
// computation, which motivates the search scheme's secret-sharing design.
//
// Nine board members vote on a motion. Each shares its vote with a random
// degree-(t-1) polynomial — no trusted third party, and no party ever sees
// another's vote. Any t members open the tally. A second round runs the
// veto (Π) variant: one "no" zeroes the product.
//
//	go run ./examples/voting
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"math/big"

	"sssearch/internal/field"
	"sssearch/internal/shamir"
)

func main() {
	f, err := field.NewUint64(10007)
	if err != nil {
		log.Fatal(err)
	}
	const members, threshold = 9, 4
	scheme, err := shamir.NewScheme(f, threshold, members)
	if err != nil {
		log.Fatal(err)
	}

	// Majority vote: f(x1..x9) = Σ xi.
	ballots := []*big.Int{
		big.NewInt(1), big.NewInt(0), big.NewInt(1),
		big.NewInt(1), big.NewInt(1), big.NewInt(0),
		big.NewInt(1), big.NewInt(1), big.NewInt(0),
	}
	res, err := shamir.MajorityVote(scheme, ballots, []int{0, 3, 5, 8}, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("majority vote: %v of %d in favour", res.Value, members)
	if res.Value.Int64() > members/2 {
		fmt.Println(" — motion PASSES")
	} else {
		fmt.Println(" — motion FAILS")
	}
	fmt.Printf("  %d point-to-point share messages, %d shares opened, zero votes revealed\n",
		res.MessagesSent, res.OpeningShares)

	// Veto vote: f(x1..x4) = Π xi over a 4-member committee.
	committee := []*big.Int{big.NewInt(1), big.NewInt(1), big.NewInt(1), big.NewInt(1)}
	vetoScheme, err := shamir.NewScheme(f, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	v, err := shamir.VetoVote(vetoScheme, committee, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nveto round 1 (all consent): product = %v → approved\n", v.Value)

	committee[2] = big.NewInt(0) // one silent veto
	v, err = shamir.VetoVote(vetoScheme, committee, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("veto round 2 (one member vetoes): product = %v → blocked\n", v.Value)
	fmt.Println("nobody learns WHO vetoed — only that someone did")
}
