// Multi-server deployment: the paper's §4.2 extension. The server part of
// every node polynomial is Shamir-shared coefficient-wise across n
// storage providers with threshold k; the client plus ANY k providers can
// answer queries, and fewer than k providers learn nothing at all — even
// colluding.
//
// Because Lagrange reconstruction is linear and evaluation is linear in
// the coefficients, the client recombines *scalar evaluations* directly:
// the per-query traffic stays one value per node per provider.
//
//	go run ./examples/multiserver
package main

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"log"
	"math/big"

	"sssearch/internal/drbg"
	"sssearch/internal/mapping"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/sharing"
	"sssearch/internal/xmltree"
)

const doc = `<grid>
  <site><sensor/><sensor/></site>
  <site><sensor/><actuator/></site>
  <hub><sensor/></hub>
</grid>`

func main() {
	const k, n = 2, 3 // any 2 of 3 providers suffice

	d, err := xmltree.ParseString(doc)
	if err != nil {
		log.Fatal(err)
	}
	// Multi-server mode needs the F_p ring (Shamir wants a field).
	fp := ring.MustFp(257)
	m, err := mapping.New(fp.MaxTag(), []byte("multiserver-demo"))
	if err != nil {
		log.Fatal(err)
	}
	enc, err := polyenc.Encode(fp, d, m)
	if err != nil {
		log.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("multiserver-demo-seed")))
	providers, err := sharing.MultiSplit(enc, seed, k, n, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range providers {
		fmt.Printf("provider %d holds %d share polynomials (%d bytes); alone it learns nothing\n",
			p.X, p.Tree.Count(), p.Tree.ByteSize())
	}

	// Query //sensor: evaluate at map(sensor) with TWO of the three
	// providers (provider 2 is offline).
	point, _ := m.Value("sensor")
	client := sharing.NewSeedClient(fp, seed)
	available := []sharing.ServerShare{providers[0], providers[2]}
	fmt.Printf("\nquery //sensor → point %v, using providers {1, 3} (provider 2 offline)\n", point)

	matches := 0
	enc.Walk(func(key drbg.NodeKey, node *polyenc.Node) bool {
		evals := make([]sharing.ServerEval, 0, k)
		for _, p := range available {
			sn, err := p.Tree.Lookup(key)
			if err != nil {
				log.Fatal(err)
			}
			v, err := fp.Eval(sn.Polynomial(), point)
			if err != nil {
				log.Fatal(err)
			}
			evals = append(evals, sharing.ServerEval{X: p.X, Value: v})
		}
		sum, err := sharing.MultiReconstructEval(fp, client, key, point, evals, k)
		if err != nil {
			log.Fatal(err)
		}
		target, _ := d.Lookup(key)
		if sum.Sign() == 0 {
			fmt.Printf("  %-18s sum=0  (subtree contains a sensor)\n", target.PathString())
			if target.Tag == "sensor" {
				matches++
			}
			return true
		}
		fmt.Printf("  %-18s sum=%v (dead branch, pruned)\n", target.PathString(), sum)
		return false // prune: don't descend
	})
	fmt.Printf("\n%d sensors found with %d-of-%d reconstruction ✓\n", matches, k, n)

	// Sanity: a single provider's evaluation is NOT the share sum — below
	// threshold nothing reconstructs.
	single := []sharing.ServerEval{{X: providers[0].X, Value: big.NewInt(0)}}
	if _, err := sharing.CombineServerEvals(fp, single, k); err == nil {
		log.Fatal("sub-threshold reconstruction should have failed")
	}
	fmt.Println("sub-threshold reconstruction correctly refused ✓")
}
