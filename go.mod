module sssearch

go 1.21
