// Public-API coverage for the live-operations surface: ServeOpts
// admission bounds and Daemon.SwapStore — the zero-downtime reload path
// sss-server wires to SIGHUP.
package sssearch

import (
	"net"
	"path/filepath"
	"testing"

	"sssearch/internal/drbg"
	"sssearch/internal/workload"
)

// TestPublicSwapStoreReload: save a store, serve one loaded copy, then
// hot-swap a second loaded copy under a live session — the reload an
// operator does after replacing the store file with an updated save.
// Search results must be identical before and after, the session must
// survive, and the epoch must advance.
func TestPublicSwapStoreReload(t *testing.T) {
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 120, MaxFanout: 3, Vocab: 6, Seed: 7})
	bundle, err := Outsource(doc, Config{
		Kind:   RingFp,
		P:      257,
		Seed:   drbg.Seed{2: 0xA7},
		Secret: []byte("hot-reload"),
	})
	if err != nil {
		t.Fatal(err)
	}
	srvPath := filepath.Join(t.TempDir(), "server.sss")
	if err := bundle.Server.Save(srvPath); err != nil {
		t.Fatal(err)
	}
	first, err := LoadServerStore(srvPath)
	if err != nil {
		t.Fatal(err)
	}
	second, err := LoadServerStore(srvPath)
	if err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	daemon, err := first.ServeTCPOpts(l, ServeOpts{MaxInflight: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Close()

	sess, err := bundle.Key.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const query = "//t2"
	before, err := sess.Search(query)
	if err != nil {
		t.Fatal(err)
	}

	epoch, err := daemon.SwapStore(second)
	if err != nil {
		t.Fatalf("SwapStore: %v", err)
	}
	if epoch != 1 || daemon.StoreEpoch() != 1 {
		t.Fatalf("epoch = %d / %d, want 1", epoch, daemon.StoreEpoch())
	}

	after, err := sess.Search(query)
	if err != nil {
		t.Fatalf("search on the live session after the swap: %v", err)
	}
	if resultKey(before) != resultKey(after) {
		t.Fatalf("results changed across an equivalent-store swap:\nbefore %s\nafter  %s",
			resultKey(before), resultKey(after))
	}

	if _, err := daemon.SwapStore(nil); err == nil {
		t.Fatal("SwapStore(nil) accepted")
	}
}

// TestPublicSwapStoreShardRefused: shard daemons are fenced to the
// manifest range of the store they were built with, so the public
// SwapStore must refuse them rather than silently unguard the daemon.
func TestPublicSwapStoreShardRefused(t *testing.T) {
	_, bundle := shardTestBundle(t, Config{Kind: RingFp, P: 257})
	sb, err := bundle.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d, err := sb.Stores[0].ServeTCP(l)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.SwapStore(bundle.Server); err == nil {
		t.Fatal("SwapStore on a shard daemon accepted")
	}
}
