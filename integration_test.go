package sssearch

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"

	"sssearch/internal/workload"
	"sssearch/internal/xpath"
)

// TestIntegrationFullLifecycle drives the complete production flow:
// generate → outsource → persist both artifacts → reload → serve over TCP
// → query from several concurrent sessions → compare every answer with the
// plaintext oracle.
func TestIntegrationFullLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	doc := workload.Auction(workload.AuctionConfig{Items: 40, People: 30, Auctions: 20, Seed: 99})

	// Outsource with a Z ring of degree 3.
	bundle, err := Outsource(doc, Config{Kind: RingZ, R: []int64{1, 1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	srvPath := filepath.Join(dir, "server.sss")
	keyPath := filepath.Join(dir, "client.key")
	if err := bundle.Server.Save(srvPath); err != nil {
		t.Fatal(err)
	}
	if err := bundle.Key.Save(keyPath); err != nil {
		t.Fatal(err)
	}

	// A different process would now load both from disk.
	srv, err := LoadServerStore(srvPath)
	if err != nil {
		t.Fatal(err)
	}
	key, err := LoadClientKey(keyPath)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	daemon, err := srv.ServeTCP(l)
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Close()

	queries := []string{
		"//item", "//person", "//watch", "//bidder", "//site",
		"//people/person", "//person/watches/watch", "/site//initial",
		"//open_auctions/open_auction/bidder", "//regions//name",
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sess, err := key.Dial(l.Addr().String())
			if err != nil {
				errCh <- err
				return
			}
			defer sess.Close()
			for _, expr := range queries {
				res, err := sess.Search(expr, WithVerify(VerifyFull))
				if err != nil {
					errCh <- fmt.Errorf("client %d %s: %w", id, expr, err)
					return
				}
				want := xpath.MustParse(expr).Evaluate(doc)
				if len(res.Matches) != len(want) {
					errCh <- fmt.Errorf("client %d %s: %d matches, oracle %d",
						id, expr, len(res.Matches), len(want))
					return
				}
				for i, k := range res.Matches {
					if k.String() != want[i].Key().String() {
						errCh <- fmt.Errorf("client %d %s: match %d differs", id, expr, i)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestIntegrationSeedIsSufficient: drop every client-side artifact except
// the persisted key file, rebuild a session, and query — the §4.2 claim
// that seed+mapping is the client's entire state.
func TestIntegrationSeedIsSufficient(t *testing.T) {
	dir := t.TempDir()
	doc := workload.Library(workload.LibraryConfig{Books: 15, Articles: 15, Seed: 3})
	srvPath := filepath.Join(dir, "s.sss")
	keyPath := filepath.Join(dir, "c.key")
	{
		bundle, err := Outsource(doc, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := bundle.Server.Save(srvPath); err != nil {
			t.Fatal(err)
		}
		if err := bundle.Key.Save(keyPath); err != nil {
			t.Fatal(err)
		}
		// bundle goes out of scope: nothing survives in memory.
	}
	srv, err := LoadServerStore(srvPath)
	if err != nil {
		t.Fatal(err)
	}
	key, err := LoadClientKey(keyPath)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := key.ConnectLocal(srv)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Search("//book")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 15 {
		t.Fatalf("//book = %d matches, want 15", len(res.Matches))
	}
}

// TestIntegrationWrongKeyFindsNothing: a session opened with a DIFFERENT
// key against the same store must not produce correct answers — the store
// alone is useless without the owner's secrets.
func TestIntegrationWrongKeyFindsNothing(t *testing.T) {
	doc, _ := ParseXML(`<a><b/><b/><b/></a>`)
	right, err := Outsource(doc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := Outsource(doc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong client key, right server store.
	sess, err := wrong.Key.ConnectLocal(right.Server)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Search("//b")
	if err != nil {
		// An error (failed verification) is an acceptable outcome.
		return
	}
	// If it "succeeded", the answers must be garbage, not the real ones;
	// with overwhelming probability the root sum is nonzero and nothing
	// matches.
	if len(res.Matches) == 3 {
		t.Fatal("foreign key produced correct answers — shares are not hiding")
	}
}

// TestIntegrationBothRingsAgree: the same document under both ring
// families answers every query identically.
func TestIntegrationBothRingsAgree(t *testing.T) {
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 150, MaxFanout: 4, Vocab: 10, Seed: 17})
	zb, err := Outsource(doc, Config{Kind: RingZ})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Outsource(doc, Config{Kind: RingFp, P: 257})
	if err != nil {
		t.Fatal(err)
	}
	zs, _ := zb.Connect()
	fs, _ := fb.Connect()
	defer zs.Close()
	defer fs.Close()
	for i := 0; i < 10; i++ {
		expr := fmt.Sprintf("//t%d", i)
		zr, err := zs.Search(expr)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := fs.Search(expr)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(zr.Matches) != fmt.Sprint(fr.Matches) {
			t.Fatalf("%s: Z %v != Fp %v", expr, zr.Matches, fr.Matches)
		}
	}
}
