package core_test

import (
	"testing"

	"sssearch/internal/core"
	"sssearch/internal/paperdata"
	"sssearch/internal/poly"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/sharing"
)

// fixtureTrees assembles client and server share trees from the paper's
// published figure values.
func fixtureTrees(pick func(path string) paperdata.SharePair) (client, srv *sharing.Tree) {
	mk := func(get func(paperdata.SharePair) poly.Poly) *sharing.Tree {
		node := func(path string, children ...*sharing.Node) *sharing.Node {
			return &sharing.Node{Poly: get(pick(path)), Children: children}
		}
		return &sharing.Tree{Root: node("/",
			node("/0", node("/0/0")),
			node("/1", node("/1/0")),
		)}
	}
	client = mk(func(p paperdata.SharePair) poly.Poly { return p.Client })
	srv = mk(func(p paperdata.SharePair) poly.Poly { return p.Server })
	return client, srv
}

// TestProtocolOnPaperFixtureShares runs the full interactive protocol with
// the EXACT share polynomials printed in figures 3 and 4 of the paper —
// the strongest form of the reproduction: not just the algebra, but the
// actual client/server message exchange over the published values.
func TestProtocolOnPaperFixtureShares(t *testing.T) {
	cases := []struct {
		name   string
		r      ring.Ring
		shares map[string]paperdata.SharePair
	}{
		{"fig3-F5", paperdata.FpRing(), paperdata.Fig3},
		{"fig4-Zx2+1", paperdata.ZRing(), paperdata.Fig4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			clientTree, serverTree := fixtureTrees(func(p string) paperdata.SharePair {
				return c.shares[p]
			})
			srv, err := server.NewLocal(c.r, serverTree)
			if err != nil {
				t.Fatal(err)
			}
			src, err := sharing.NewStaticSource(c.r, clientTree)
			if err != nil {
				t.Fatal(err)
			}
			m := paperdata.MappingFp() // only map(client)=2 is queried
			eng := core.NewEngineWithShares(c.r, src, m, srv, nil)

			// The paper's running query: //client.
			res, err := eng.Lookup("client", core.Opts{Verify: core.VerifyResolve})
			if err != nil {
				t.Fatal(err)
			}
			got := keySet(res.Matches)
			if len(got) != 2 || !got["/0"] || !got["/1"] {
				t.Fatalf("//client over the paper's shares = %v", res.Matches)
			}
			// The name leaves are the dead branches of figures 5/6.
			if res.Stats.NodesPruned != 2 {
				t.Errorf("pruned %d, want 2 (the name leaves)", res.Stats.NodesPruned)
			}
			// //name finds the two leaves.
			res, err = eng.Lookup("name", core.Opts{Verify: core.VerifyResolve})
			if err != nil {
				t.Fatal(err)
			}
			got = keySet(res.Matches)
			if len(got) != 2 || !got["/0/0"] || !got["/1/0"] {
				t.Fatalf("//name over the paper's shares = %v", res.Matches)
			}
			// //customers resolves the root through eq. (2) on the
			// published polynomials.
			res, err = eng.Lookup("customers", core.Opts{Verify: core.VerifyFull})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Matches) != 1 || res.Matches[0].String() != "/" {
				t.Fatalf("//customers over the paper's shares = %v", res.Matches)
			}
		})
	}
}

// TestStaticSourceMatchesSeedClient: both share sources drive the engine
// to identical results on the same split.
func TestStaticSourceMatchesSeedClient(t *testing.T) {
	r := paperdata.ZRing()
	doc := paperdata.Document()
	eng, _ := setup(t, r, doc, paperdata.Mapping(nil), 42, false)
	resSeed, err := eng.Lookup("client", core.Opts{Verify: core.VerifyResolve})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild with a materialized static source for the same seed and the
	// same (pinned) mapping: the encoded tree is identical.
	enc, err := polyenc.Encode(r, doc, paperdata.Mapping(nil))
	if err != nil {
		t.Fatal(err)
	}
	serverTree, err := sharing.Split(enc, testSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	clientTree, err := sharing.Materialize(r, testSeed(42), serverTree)
	if err != nil {
		t.Fatal(err)
	}
	src, err := sharing.NewStaticSource(r, clientTree)
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := server.NewLocal(r, serverTree)
	engStatic := core.NewEngineWithShares(r, src, paperdata.Mapping(nil), srv, nil)
	resStatic, err := engStatic.Lookup("client", core.Opts{Verify: core.VerifyResolve})
	if err != nil {
		t.Fatal(err)
	}
	if len(resSeed.Matches) != len(resStatic.Matches) {
		t.Fatalf("seed %v vs static %v", resSeed.Matches, resStatic.Matches)
	}
	if _, err := sharing.NewStaticSource(r, nil); err == nil {
		t.Error("nil tree accepted")
	}
}
