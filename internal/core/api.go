// Package core implements the paper's primary contribution (§4.3): the
// interactive client/server protocol that evaluates XPath-style queries
// over a secret-shared polynomial tree without the server learning the
// data or the query.
//
// The client drives a top-down traversal. For each visited node the server
// evaluates its share polynomial at the query point(s) and returns scalar
// values; the client adds its own (seed-regenerated) share values and tests
// the sum for zero. A non-zero sum proves the subtree contains no match and
// the branch is pruned — the server is told to stop, which is the source of
// the scheme's sub-linear work. Zero nodes with no zero child are definite
// answers; other zero nodes are disambiguated by reconstructing polynomials
// and solving eq. (2) for the node tag (package polyenc).
package core

import (
	"context"
	"math/big"

	"sssearch/internal/drbg"
	"sssearch/internal/poly"
)

// NodeEval is the server's answer for one node: its share polynomial
// evaluated at each requested point, plus the node's child count (tree
// shape is not hidden from the client — it owns the data).
type NodeEval struct {
	Key         drbg.NodeKey
	Values      []*big.Int
	NumChildren int
}

// NodePoly is the server's answer to a polynomial fetch (verification).
type NodePoly struct {
	Key         drbg.NodeKey
	Poly        poly.Poly
	NumChildren int
}

// ServerAPI is the full server-side capability the protocol needs. It is
// implemented in-process by server.Local, remotely by client.Remote (and
// client.Pool, and the micro-batching client.Batcher over either),
// across a k-of-n deployment by MultiServer, across a partitioned one by
// shard.Router, and by the cross-session request coalescer
// coalesce.Server over any of them.
//
// Implementations must be safe for concurrent calls: the engine issues
// parallel evaluation batches (Opts.Parallelism) and MultiServer fans out
// from multiple goroutines. Answers are read-only once returned —
// batching layers may hand the same value objects to several concurrent
// callers. The conformance suite in internal/apitest checks the contract
// below (including concurrent-call identity); run it against any new
// implementation.
type ServerAPI interface {
	// EvalNodes evaluates the server share of each keyed node at each of
	// the given points, in order. Unknown keys are an error.
	EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]NodeEval, error)
	// FetchPolys returns the server share polynomial of each keyed node —
	// the expensive path used only for verification/disambiguation.
	FetchPolys(keys []drbg.NodeKey) ([]NodePoly, error)
	// Prune tells the server the given subtrees are dead for the current
	// query, so it can release per-query state. Advisory: the in-process
	// server is stateless per query, the remote server uses it to stop
	// precomputation.
	Prune(keys []drbg.NodeKey) error
}

// CtxEvaler is the optional context-aware extension of ServerAPI.
// Implementations that propagate deadlines or trace spans (client.Remote,
// Pool, Reliable, Batcher, MultiServer, shard.Router, coalesce.Server)
// expose EvalNodesCtx; callers reach it through EvalNodesWithCtx so that
// plain ServerAPI implementations keep working unchanged. Kept separate
// from ServerAPI because the in-process reference servers are
// deliberately context-free.
type CtxEvaler interface {
	EvalNodesCtx(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) ([]NodeEval, error)
}

// EvalNodesWithCtx evaluates via api, forwarding ctx when api supports
// it. This is how observability context (deadline budget, trace span)
// survives the ctx-free ServerAPI seams between layers.
func EvalNodesWithCtx(ctx context.Context, api ServerAPI, keys []drbg.NodeKey, points []*big.Int) ([]NodeEval, error) {
	if ce, ok := api.(CtxEvaler); ok {
		return ce.EvalNodesCtx(ctx, keys, points)
	}
	return api.EvalNodes(keys, points)
}

// VerifyLevel controls how much the client re-checks the server.
type VerifyLevel int

const (
	// VerifyNone trusts evaluations and skips all polynomial fetches.
	// Ambiguous nodes (zero sum with a zero child) are reported as
	// Unresolved, not resolved — maximum bandwidth savings, the paper's
	// trusted-server mode.
	VerifyNone VerifyLevel = iota
	// VerifyResolve fetches polynomials only for ambiguous nodes, exactly
	// enough to compute the complete answer set. Matches found without
	// fetches are trusted. The default.
	VerifyResolve
	// VerifyFull additionally re-derives the tag of every reported match
	// via eq. (2)'s overdetermined system, detecting a lying server
	// (§4.3: "we now have at least a way to check the answer").
	VerifyFull
)

func (v VerifyLevel) String() string {
	switch v {
	case VerifyNone:
		return "none"
	case VerifyResolve:
		return "resolve"
	case VerifyFull:
		return "full"
	default:
		return "invalid"
	}
}
