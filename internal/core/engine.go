package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"

	"sssearch/internal/drbg"
	"sssearch/internal/mapping"
	"sssearch/internal/metrics"
	"sssearch/internal/obs"
	"sssearch/internal/ring"
	"sssearch/internal/sharing"
	"sssearch/internal/xpath"
)

// Engine is the client-side query processor. It holds the client's secret
// material (seed-derived share generator and private tag mapping) and
// drives a ServerAPI. An Engine is safe for concurrent queries as long as
// the underlying ServerAPI is.
type Engine struct {
	ring     ring.Ring
	shares   sharing.ShareSource
	mapping  *mapping.Map
	api      ServerAPI
	counters *metrics.Counters
	obsv     *obs.Observer
}

// NewEngine assembles a query engine with a seed-derived client share
// source (the paper's §4.2 seed-only mode). counters may be nil (a private
// set is created).
func NewEngine(r ring.Ring, seed drbg.Seed, m *mapping.Map, api ServerAPI, counters *metrics.Counters) *Engine {
	return NewEngineShared(r, seed, m, api, counters, nil)
}

// NewEngineShared is NewEngine with the client share source attached to a
// cross-session sharing.SharedPadCache: every engine of one ClientKey
// built over the same cache shares one pad LRU, one share-eval LRU and
// singleflight regeneration, so N concurrent sessions pay the seed-only
// client's DRBG and Horner work once instead of N times. A nil shared
// falls back to a private per-engine cache (the opt-out path). The cache
// must have been built for exactly this (ring, seed) pair — a mismatch
// would corrupt every answer, so it panics instead.
func NewEngineShared(r ring.Ring, seed drbg.Seed, m *mapping.Map, api ServerAPI, counters *metrics.Counters, shared *sharing.SharedPadCache) *Engine {
	if counters == nil {
		counters = &metrics.Counters{}
	}
	var shares *sharing.SeedClient
	if shared != nil {
		if !shared.Matches(r, seed) {
			panic("core: shared pad cache built for different secret material")
		}
		shares = shared.NewClient()
	} else {
		shares = sharing.NewSeedClient(r, seed)
	}
	// Route the pad/eval cache tallies into the engine's counter set so
	// per-query snapshots expose share-regeneration work.
	shares.SetCounters(counters)
	return NewEngineWithShares(r, shares, m, api, counters)
}

// NewEngineWithShares assembles a query engine over an arbitrary client
// share source (materialized trees, external fixtures, …).
func NewEngineWithShares(r ring.Ring, shares sharing.ShareSource, m *mapping.Map, api ServerAPI, counters *metrics.Counters) *Engine {
	if counters == nil {
		counters = &metrics.Counters{}
	}
	return &Engine{
		ring:     r,
		shares:   shares,
		mapping:  m,
		api:      api,
		counters: counters,
		obsv:     obs.Default(),
	}
}

// Counters exposes the engine's metric counters.
func (e *Engine) Counters() *metrics.Counters { return e.counters }

// SetObserver replaces the observer recording this engine's stage
// latencies and sampled query spans (tests inject an isolated one). Call
// before querying.
func (e *Engine) SetObserver(o *obs.Observer) { e.obsv = o }

// Ring returns the engine's ring.
func (e *Engine) Ring() ring.Ring { return e.ring }

// Mapping returns the engine's private tag mapping.
func (e *Engine) Mapping() *mapping.Map { return e.mapping }

// Result is a completed query.
type Result struct {
	// Matches are the node keys whose element definitely satisfies the
	// query, in document order.
	Matches []drbg.NodeKey
	// Unresolved are zero-sum nodes the engine could not classify without
	// polynomial fetches (only under VerifyNone): each may or may not be a
	// match.
	Unresolved []drbg.NodeKey
	// Stats is the per-query metric delta.
	Stats metrics.Snapshot
}

// Opts tunes a single query.
type Opts struct {
	Verify VerifyLevel
	// DisableLookahead turns off the §4.3 "evaluate the whole query at
	// once" optimisation: steps are evaluated left-to-right at their own
	// point only, without filtering branches by the later step names.
	// Exists for the E15 ablation; leave false in production.
	DisableLookahead bool
	// Parallelism caps the number of concurrent ServerAPI batches one
	// query issues per evaluation wave: the sibling subtrees scanned at
	// each level are split into up to this many batches dispatched
	// concurrently. 0 or 1 means sequential (one batched call per wave,
	// the original behavior). Parallelism only pays off when the
	// ServerAPI hides latency (remote connections, multi-server fan-out)
	// or the host has spare cores; it never changes results.
	Parallelism int
}

// ErrUnknownTag is returned when a queried tag has no mapping value: the
// client can conclude locally (without contacting the server) that nothing
// matches; callers may treat it as an empty result.
var ErrUnknownTag = errors.New("core: tag has no mapping value (no occurrences in the document)")

// Lookup runs the paper's element lookup //tag.
func (e *Engine) Lookup(tag string, opts Opts) (*Result, error) {
	q, err := xpath.Parse("//" + tag)
	if err != nil {
		return nil, fmt.Errorf("core: bad tag %q: %w", tag, err)
	}
	return e.Query(q, opts)
}

// Query evaluates a parsed XPath query against the shared tree.
//
// Wildcard steps ('*') are matched structurally (no tag test). Non-wildcard
// step names with no mapping value yield ErrUnknownTag.
func (e *Engine) Query(q *xpath.Query, opts Opts) (*Result, error) {
	before := e.counters.Snapshot()
	steps := q.Steps()
	points := make([]*big.Int, len(steps))
	for i, s := range steps {
		if s.Wildcard() {
			continue
		}
		v, ok := e.mapping.Value(s.Name)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownTag, s.Name)
		}
		points[i] = v
	}
	// The engine is the trace origin for the query path: a sampled query
	// gets a span whose ID every downstream leg (batched, retried,
	// hedged, coalesced) carries on the wire.
	ctx := context.Background()
	var sp *obs.Span
	if tr := obs.NewTrace(); tr.Sampled {
		sp = obs.StartSpan("query", tr)
		ctx = obs.WithSpan(ctx, sp)
	}
	r := newRun(ctx, e, steps, points, opts)
	matches, unresolved, err := r.execute()
	if sp != nil {
		e.obsv.FinishSpan(sp)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Matches:    sortKeys(matches),
		Unresolved: sortKeys(unresolved),
		Stats:      e.counters.Snapshot().Sub(before),
	}, nil
}

func sortKeys(keys []drbg.NodeKey) []drbg.NodeKey {
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

// keyLess orders node keys in document (preorder) order.
func keyLess(a, b drbg.NodeKey) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func dedupKeys(keys []drbg.NodeKey) []drbg.NodeKey {
	seen := make(map[string]bool, len(keys))
	var out []drbg.NodeKey
	for _, k := range keys {
		s := k.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, k)
		}
	}
	return out
}
