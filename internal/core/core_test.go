package core_test

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/mapping"
	"sssearch/internal/paperdata"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/sharing"
	"sssearch/internal/xmltree"
	"sssearch/internal/xpath"
)

func testSeed(b byte) drbg.Seed {
	var s drbg.Seed
	for i := range s {
		s[i] = b
	}
	return s
}

// setup builds the full pipeline for a document: encode → split → local
// server → engine.
func setup(t testing.TB, r ring.Ring, doc *xmltree.Node, m *mapping.Map, seedByte byte, allowOverflow bool) (*core.Engine, *server.Local) {
	t.Helper()
	enc, err := polyenc.EncodeWithOpts(r, doc, m, polyenc.Opts{AllowTagOverflow: allowOverflow})
	if err != nil {
		t.Fatal(err)
	}
	seed := testSeed(seedByte)
	srvTree, err := sharing.Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewLocal(r, srvTree)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(r, seed, m, srv, nil), srv
}

func keySet(keys []drbg.NodeKey) map[string]bool {
	out := map[string]bool{}
	for _, k := range keys {
		out[k.String()] = true
	}
	return out
}

func oracleKeys(root *xmltree.Node, q *xpath.Query) map[string]bool {
	out := map[string]bool{}
	for _, n := range q.Evaluate(root) {
		out[n.Key().String()] = true
	}
	return out
}

// TestPaperQueryClientFp runs the paper's running example end to end in
// F_5[x]/(x^4-1) (figures 3 and 5): //client must return exactly the two
// client nodes, with the root ambiguous until resolved.
func TestPaperQueryClientFp(t *testing.T) {
	doc := paperdata.Document()
	eng, _ := setup(t, paperdata.FpRing(), doc, paperdata.MappingFp(), 1, true)
	res, err := eng.Lookup("client", core.Opts{Verify: core.VerifyResolve})
	if err != nil {
		t.Fatal(err)
	}
	got := keySet(res.Matches)
	if len(got) != 2 || !got["/0"] || !got["/1"] {
		t.Fatalf("matches = %v", res.Matches)
	}
	if len(res.Unresolved) != 0 {
		t.Fatalf("unresolved = %v", res.Unresolved)
	}
	// The root was ambiguous (zero with zero children) → one tag recovery.
	if res.Stats.TagsRecovered < 1 {
		t.Error("expected at least one tag recovery for the ambiguous root")
	}
	// The name leaves are dead branches → pruned.
	if res.Stats.NodesPruned != 2 {
		t.Errorf("pruned = %d, want 2 (the name leaves)", res.Stats.NodesPruned)
	}
}

// TestPaperQueryClientZ is the same over Z[x]/(x^2+1) (figures 4 and 6).
func TestPaperQueryClientZ(t *testing.T) {
	doc := paperdata.Document()
	eng, _ := setup(t, paperdata.ZRing(), doc, paperdata.Mapping(nil), 2, false)
	res, err := eng.Lookup("client", core.Opts{Verify: core.VerifyResolve})
	if err != nil {
		t.Fatal(err)
	}
	got := keySet(res.Matches)
	if len(got) != 2 || !got["/0"] || !got["/1"] {
		t.Fatalf("matches = %v", res.Matches)
	}
}

// TestPaperQueryVerifyNone reproduces the trusted-mode semantics: the two
// clients are definite, the root stays unresolved, and no polynomial is
// ever transferred.
func TestPaperQueryVerifyNone(t *testing.T) {
	doc := paperdata.Document()
	eng, _ := setup(t, paperdata.ZRing(), doc, paperdata.Mapping(nil), 3, false)
	res, err := eng.Lookup("client", core.Opts{Verify: core.VerifyNone})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %v", res.Matches)
	}
	if len(res.Unresolved) != 1 || res.Unresolved[0].String() != "/" {
		t.Fatalf("unresolved = %v, want the root", res.Unresolved)
	}
	if res.Stats.PolysFetched != 0 || res.Stats.PolyBytesMoved != 0 {
		t.Error("VerifyNone must not fetch polynomials")
	}
}

// TestQueryMissRootPrune: querying a tag absent from the document dies at
// the root with a single evaluation — the best-case pruning.
func TestQueryMissRootPrune(t *testing.T) {
	doc := paperdata.Document()
	m := paperdata.Mapping(nil)
	if _, err := m.Assign("ghost"); err != nil {
		t.Fatal(err)
	}
	eng, _ := setup(t, paperdata.ZRing(), doc, m, 4, false)
	res, err := eng.Lookup("ghost", core.Opts{Verify: core.VerifyResolve})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 || len(res.Unresolved) != 0 {
		t.Fatal("ghost tag matched")
	}
	if res.Stats.NodesVisited != 1 {
		t.Errorf("visited %d nodes, want 1 (root only)", res.Stats.NodesVisited)
	}
	if res.Stats.NodesPruned != 1 {
		t.Errorf("pruned %d, want 1", res.Stats.NodesPruned)
	}
}

func TestUnknownTagError(t *testing.T) {
	eng, _ := setup(t, paperdata.ZRing(), paperdata.Document(), paperdata.Mapping(nil), 5, false)
	_, err := eng.Lookup("never-mapped", core.Opts{})
	if err == nil {
		t.Fatal("unmapped tag accepted")
	}
}

// randomDoc builds a random tree over a fixed vocabulary.
func randomDoc(rng *rand.Rand, depth, fan int, vocab []string) *xmltree.Node {
	n := xmltree.NewNode(vocab[rng.Intn(len(vocab))])
	if depth > 0 {
		for i := 0; i < rng.Intn(fan+1); i++ {
			n.AppendChild(randomDoc(rng, depth-1, fan, vocab))
		}
	}
	return n
}

// TestOracleAgreementLookup: for random documents and every vocabulary tag,
// the encrypted lookup must return exactly the plaintext //tag result.
func TestOracleAgreementLookup(t *testing.T) {
	vocab := []string{"a", "b", "c", "d", "e"}
	rings := []ring.Ring{ring.MustFp(101), ring.MustIntQuotient(1, 0, 1)}
	rng := rand.New(rand.NewSource(2024))
	for _, r := range rings {
		for trial := 0; trial < 6; trial++ {
			doc := randomDoc(rng, 4, 3, vocab)
			m, _ := mapping.New(r.MaxTag(), []byte(fmt.Sprintf("t%d", trial)))
			eng, _ := setup(t, r, doc, m, byte(10+trial), false)
			for _, tag := range vocab {
				q := xpath.MustParse("//" + tag)
				want := oracleKeys(doc, q)
				res, err := eng.Query(q, core.Opts{Verify: core.VerifyResolve})
				if err != nil {
					if _, mapped := m.Value(tag); !mapped {
						continue // tag absent from this doc: ErrUnknownTag is correct
					}
					t.Fatalf("%s //%s: %v", r.Name(), tag, err)
				}
				got := keySet(res.Matches)
				if len(res.Unresolved) != 0 {
					t.Fatalf("%s //%s: unresolved left under VerifyResolve", r.Name(), tag)
				}
				if !sameSet(got, want) {
					t.Fatalf("%s //%s: got %v want %v\ndoc: %s", r.Name(), tag, got, want, doc)
				}
			}
		}
	}
}

// TestOracleAgreementPathQueries: multi-step queries with both axes and
// wildcards agree with the plaintext evaluator.
func TestOracleAgreementPathQueries(t *testing.T) {
	vocab := []string{"a", "b", "c"}
	rng := rand.New(rand.NewSource(99))
	queries := []string{
		"//a//b", "//a/b", "/a/b/c", "//b//c", "//a/*/c", "/*/b", "//a//b//c",
	}
	rings := []ring.Ring{ring.MustFp(101), ring.MustIntQuotient(1, 0, 1)}
	for _, r := range rings {
		for trial := 0; trial < 5; trial++ {
			doc := randomDoc(rng, 4, 3, vocab)
			m, _ := mapping.New(r.MaxTag(), []byte(fmt.Sprintf("p%d", trial)))
			// Pre-assign the whole vocabulary so queries never hit
			// ErrUnknownTag even for absent tags.
			stats := xmltree.ComputeStats(doc)
			_ = stats
			eng, _ := setup(t, r, doc, m, byte(30+trial), false)
			if err := m.AssignAll(vocab); err != nil {
				t.Fatal(err)
			}
			for _, qs := range queries {
				q := xpath.MustParse(qs)
				want := oracleKeys(doc, q)
				res, err := eng.Query(q, core.Opts{Verify: core.VerifyResolve})
				if err != nil {
					t.Fatalf("%s %s: %v", r.Name(), qs, err)
				}
				got := keySet(res.Matches)
				if !sameSet(got, want) {
					t.Fatalf("%s %s:\n got %v\nwant %v\ndoc: %s", r.Name(), qs, got, want, doc)
				}
			}
		}
	}
}

// TestVerifyNoneSuperset: under VerifyNone, matches ∪ unresolved must cover
// the oracle for single-step queries, and matches alone must be a subset.
func TestVerifyNoneSupersetLookup(t *testing.T) {
	vocab := []string{"a", "b"}
	rng := rand.New(rand.NewSource(55))
	r := ring.MustIntQuotient(1, 0, 1)
	for trial := 0; trial < 10; trial++ {
		doc := randomDoc(rng, 4, 3, vocab)
		m, _ := mapping.New(r.MaxTag(), []byte(fmt.Sprintf("v%d", trial)))
		eng, _ := setup(t, r, doc, m, byte(60+trial), false)
		for _, tag := range vocab {
			if _, ok := m.Value(tag); !ok {
				continue
			}
			q := xpath.MustParse("//" + tag)
			want := oracleKeys(doc, q)
			res, err := eng.Query(q, core.Opts{Verify: core.VerifyNone})
			if err != nil {
				t.Fatal(err)
			}
			matched := keySet(res.Matches)
			for k := range matched {
				if !want[k] {
					t.Fatalf("//%s: false positive %s", tag, k)
				}
			}
			union := keySet(append(append([]drbg.NodeKey{}, res.Matches...), res.Unresolved...))
			for k := range want {
				if !union[k] {
					t.Fatalf("//%s: missed true match %s", tag, k)
				}
			}
		}
	}
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestVerifyFullCatchesPolyTampering: a server that corrupts a fetched
// polynomial must be detected by the eq. (3) redundancy.
func TestVerifyFullCatchesPolyTampering(t *testing.T) {
	doc := paperdata.Document()
	r := paperdata.ZRing()
	m := paperdata.Mapping(nil)
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		t.Fatal(err)
	}
	seed := testSeed(70)
	srvTree, _ := sharing.Split(enc, seed)
	inner, _ := server.NewLocal(r, srvTree)
	tam := &server.Tamperer{Inner: inner, CorruptPolyAt: drbg.NodeKey{}}
	eng := core.NewEngine(r, seed, m, tam, nil)
	_, err = eng.Lookup("client", core.Opts{Verify: core.VerifyResolve})
	if err == nil {
		t.Fatal("tampered root polynomial not detected")
	}
	if tam.PolyTampered == 0 {
		t.Fatal("tamperer never fired — test is vacuous")
	}
}

// TestVerifyFullCatchesValueTampering: a forged zero evaluation that
// fabricates a definite match is caught by VerifyFull's re-derivation.
func TestVerifyFullCatchesValueTampering(t *testing.T) {
	// Document where 'b' is a leaf under root 'a': query //b, tamper the
	// OTHER leaf 'c' so it fakes a zero and becomes a fake definite match.
	doc, err := xmltree.ParseString(`<a><b/><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	r := ring.MustIntQuotient(1, 0, 1)
	m, _ := mapping.New(r.MaxTag(), []byte("tamper"))
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		t.Fatal(err)
	}
	seed := testSeed(71)
	srvTree, _ := sharing.Split(enc, seed)
	inner, _ := server.NewLocal(r, srvTree)

	// Find the value the honest server returns for node /1 ('c') at
	// point map(b), and tamper it into a zero sum.
	bPoint, _ := m.Value("b")
	mod, err := r.EvalModulus(bPoint)
	if err != nil {
		t.Fatal(err)
	}
	client := sharing.NewSeedClient(r, seed)
	cv, _ := client.EvalShare(drbg.NodeKey{1}, bPoint)
	honest, _ := inner.EvalNodes([]drbg.NodeKey{{1}}, []*big.Int{bPoint})
	// delta such that (cv + honest + delta) ≡ 0 (mod mod)
	sum := new(big.Int).Add(cv, honest[0].Values[0])
	delta := new(big.Int).Neg(sum)
	delta.Mod(delta, mod)

	forger := &valueForger{inner: inner, target: "/1", delta: delta}
	eng := core.NewEngine(r, seed, m, forger, nil)
	// VerifyNone happily reports the forged match.
	res, err := eng.Lookup("b", core.Opts{Verify: core.VerifyNone})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("forgery did not land: matches = %v", res.Matches)
	}
	// VerifyFull re-derives tags and catches the lie.
	if _, err := eng.Lookup("b", core.Opts{Verify: core.VerifyFull}); err == nil {
		t.Fatal("forged match not detected by VerifyFull")
	}
}

// valueForger adds a fixed delta to every evaluation of one node.
type valueForger struct {
	inner  core.ServerAPI
	target string
	delta  *big.Int
}

func (f *valueForger) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	out, err := f.inner.EvalNodes(keys, points)
	if err != nil {
		return nil, err
	}
	for i := range out {
		if out[i].Key.String() != f.target {
			continue
		}
		vals := make([]*big.Int, len(out[i].Values))
		for j, v := range out[i].Values {
			vals[j] = new(big.Int).Add(v, f.delta)
		}
		out[i].Values = vals
	}
	return out, nil
}

func (f *valueForger) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return f.inner.FetchPolys(keys)
}

func (f *valueForger) Prune(keys []drbg.NodeKey) error { return f.inner.Prune(keys) }

// TestPruningFractionDeepTree: on a wide tree where the target tag lives in
// one small subtree, the protocol must touch far fewer nodes than the tree
// holds (the §5 "only a small portion of the tree has to be examined").
func TestPruningFractionDeepTree(t *testing.T) {
	root := xmltree.NewNode("root")
	// 10 dead subtrees of 11 nodes each.
	for i := 0; i < 10; i++ {
		sub := root.AddChild("dead")
		for j := 0; j < 10; j++ {
			sub.AddChild("filler")
		}
	}
	// One live subtree holding the needle.
	live := root.AddChild("live")
	live.AddChild("needle")
	total := root.Count() // 1 + 10*11 + 2 = 113

	r := ring.MustFp(1009)
	m, _ := mapping.New(r.MaxTag(), []byte("prune"))
	eng, _ := setup(t, r, root, m, 80, false)
	res, err := eng.Lookup("needle", core.Opts{Verify: core.VerifyResolve})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %v", res.Matches)
	}
	// Visited: root + 11 children + needle + needle's (no) children = 13.
	if res.Stats.NodesVisited >= int64(total)/4 {
		t.Errorf("visited %d of %d nodes — pruning ineffective", res.Stats.NodesVisited, total)
	}
}

func BenchmarkLookupPaperDoc(b *testing.B) {
	eng, _ := setup(b, paperdata.ZRing(), paperdata.Document(), paperdata.Mapping(nil), 1, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Lookup("client", core.Opts{Verify: core.VerifyResolve}); err != nil {
			b.Fatal(err)
		}
	}
}
