package core

import (
	"fmt"
	"math/big"
	"sync"

	"sssearch/internal/drbg"
	"sssearch/internal/poly"
	"sssearch/internal/polyenc"
	"sssearch/internal/xpath"
)

// run is the per-query state: the compiled steps and points, the learned
// tree shape (child counts) and an evaluation cache that keeps the protocol
// from re-requesting sums the scan already produced.
//
// mu guards childCount and sumCache: when opts.Parallelism > 1 an
// evaluation wave splits into concurrent batches whose goroutines merge
// answers into both maps.
type run struct {
	e          *Engine
	steps      []xpath.Step
	points     []*big.Int // nil for wildcard steps
	opts       Opts
	mu         sync.Mutex
	childCount map[string]int
	sumCache   map[string]*big.Int // "key|point" → reduced sum
}

// sumState is the client-side record of one evaluated node.
type sumState struct {
	key  drbg.NodeKey
	nch  int
	sums []*big.Int // aligned with the step's point vector; wildcard slot = 0
}

// zeroAll reports whether every sum vanished.
func (s *sumState) zeroAll() bool {
	for _, v := range s.sums {
		if v.Sign() != 0 {
			return false
		}
	}
	return true
}

// execute runs all steps and returns final matches and unresolved keys.
func (r *run) execute() (matches, unresolved []drbg.NodeKey, err error) {
	if r.sumCache == nil {
		r.sumCache = map[string]*big.Int{}
	}
	var contexts []drbg.NodeKey
	for i, step := range r.steps {
		pts := r.activePoints(i)
		var scanRoots []drbg.NodeKey
		if i == 0 {
			scanRoots = []drbg.NodeKey{{}}
		} else {
			scanRoots = r.childrenOf(contexts)
		}
		scanRoots = dedupKeys(scanRoots)
		var cands []sumState
		if step.Axis == xpath.AxisChild {
			states, err := r.evalKeys(scanRoots, pts)
			if err != nil {
				return nil, nil, err
			}
			for _, st := range states {
				if st.zeroAll() {
					cands = append(cands, st)
				}
			}
		} else {
			cands, err = r.scanDescendants(scanRoots, pts)
			if err != nil {
				return nil, nil, err
			}
		}
		stepMatches, stepUnresolved, err := r.classify(cands, i)
		if err != nil {
			return nil, nil, err
		}
		if i == len(r.steps)-1 {
			if r.opts.Verify == VerifyFull {
				if err := r.verifyMatches(stepMatches, r.points[i], step.Wildcard()); err != nil {
					return nil, nil, err
				}
			}
			return stepMatches, stepUnresolved, nil
		}
		// Non-final steps: matched nodes (plus, under VerifyNone,
		// optimistically-kept unresolved nodes) become the next contexts.
		next := append(append([]drbg.NodeKey{}, stepMatches...), stepUnresolved...)
		contexts = dedupKeys(next)
		if len(contexts) == 0 {
			return nil, nil, nil
		}
	}
	return nil, nil, nil
}

// activePoints builds the point vector for step i: the step's own point
// (nil for wildcards — evalKeys fabricates a zero sum) followed by every
// later non-wildcard point. Evaluating candidates at future points is the
// §4.3 "evaluate the whole query at once" optimisation (disabled by the
// DisableLookahead ablation).
func (r *run) activePoints(i int) []*big.Int {
	out := []*big.Int{r.points[i]}
	if r.opts.DisableLookahead {
		return out
	}
	for _, p := range r.points[i+1:] {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// childrenOf expands contexts into their child keys using learned counts.
func (r *run) childrenOf(contexts []drbg.NodeKey) []drbg.NodeKey {
	var out []drbg.NodeKey
	for _, ctx := range contexts {
		n := r.childCount[ctx.String()]
		for i := 0; i < n; i++ {
			out = append(out, ctx.Child(uint32(i)))
		}
	}
	return out
}

// evalKeys returns the client+server sum of each key at each point,
// consulting the per-run cache and asking the server only for keys with
// missing values.
func (r *run) evalKeys(keys []drbg.NodeKey, points []*big.Int) ([]sumState, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	eff := make([]*big.Int, 0, len(points))
	for _, p := range points {
		if p != nil {
			eff = append(eff, p)
		}
	}
	// Partition into cached and missing.
	var missing []drbg.NodeKey
	for _, k := range keys {
		if !r.cachedAll(k, eff) {
			missing = append(missing, k)
		}
	}
	if len(missing) > 0 {
		// One wave = one protocol round (latency-wise), even when it is
		// split into concurrent batches below.
		r.e.counters.AddRound()
		r.e.counters.AddNodesVisited(len(missing))
		r.e.counters.AddNodesEvaluated(len(missing) * len(eff))
		r.e.counters.AddValuesMoved(len(missing) * len(eff))
		batches := splitBatches(missing, r.opts.Parallelism)
		if len(batches) == 1 {
			if err := r.evalBatch(batches[0], eff); err != nil {
				return nil, err
			}
		} else {
			errs := make([]error, len(batches))
			var wg sync.WaitGroup
			for bi, batch := range batches {
				wg.Add(1)
				go func(bi int, batch []drbg.NodeKey) {
					defer wg.Done()
					errs[bi] = r.evalBatch(batch, eff)
				}(bi, batch)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		}
	}
	// Assemble states from cache.
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]sumState, len(keys))
	for i, k := range keys {
		st := sumState{key: k, nch: r.childCount[k.String()], sums: make([]*big.Int, 0, len(points))}
		for _, p := range points {
			if p == nil {
				st.sums = append(st.sums, big.NewInt(0))
				continue
			}
			v, ok := r.sumCache[cacheKey(k, p)]
			if !ok {
				return nil, fmt.Errorf("core: internal: missing cached sum for %s", k)
			}
			st.sums = append(st.sums, v)
		}
		out[i] = st
	}
	return out, nil
}

// evalBatch asks the server for one batch of keys and merges the combined
// sums into the caches. Safe to call from concurrent batch goroutines (the
// ServerAPI contract requires concurrent-safe implementations; the cache
// merge is locked, the big-integer combining runs outside the lock).
func (r *run) evalBatch(batch []drbg.NodeKey, eff []*big.Int) error {
	answers, err := r.e.api.EvalNodes(batch, eff)
	if err != nil {
		return err
	}
	if len(answers) != len(batch) {
		return fmt.Errorf("core: server returned %d answers for %d keys", len(answers), len(batch))
	}
	for _, ans := range answers {
		if len(ans.Values) != len(eff) {
			return fmt.Errorf("core: server returned %d values for %d points", len(ans.Values), len(eff))
		}
		sums := make([]*big.Int, len(eff))
		for i, p := range eff {
			sum, err := r.combine(ans.Key, p, ans.Values[i])
			if err != nil {
				return err
			}
			sums[i] = sum
		}
		r.mu.Lock()
		r.childCount[ans.Key.String()] = ans.NumChildren
		for i, p := range eff {
			r.sumCache[cacheKey(ans.Key, p)] = sums[i]
		}
		r.mu.Unlock()
	}
	return nil
}

// splitBatches carves keys into at most parallelism near-even batches.
func splitBatches(keys []drbg.NodeKey, parallelism int) [][]drbg.NodeKey {
	if parallelism <= 1 || len(keys) <= 1 {
		return [][]drbg.NodeKey{keys}
	}
	n := parallelism
	if n > len(keys) {
		n = len(keys)
	}
	size := (len(keys) + n - 1) / n
	out := make([][]drbg.NodeKey, 0, n)
	for start := 0; start < len(keys); start += size {
		end := start + size
		if end > len(keys) {
			end = len(keys)
		}
		out = append(out, keys[start:end])
	}
	return out
}

// combine adds the client share evaluation to a server value, reduced
// modulo the ring's evaluation modulus at p.
func (r *run) combine(key drbg.NodeKey, p *big.Int, serverVal *big.Int) (*big.Int, error) {
	mod, err := r.e.ring.EvalModulus(p)
	if err != nil {
		return nil, fmt.Errorf("core: point %s: %w", p, err)
	}
	cv, err := r.e.shares.EvalShare(key, p)
	if err != nil {
		return nil, err
	}
	sum := new(big.Int).Add(cv, serverVal)
	return sum.Mod(sum, mod), nil
}

func (r *run) cachedAll(k drbg.NodeKey, points []*big.Int) bool {
	if _, ok := r.childCount[k.String()]; !ok {
		return false
	}
	for _, p := range points {
		if _, ok := r.sumCache[cacheKey(k, p)]; !ok {
			return false
		}
	}
	return true
}

func cacheKey(k drbg.NodeKey, p *big.Int) string {
	return k.String() + "|" + p.String()
}

// scanDescendants BFSes the subtrees rooted at roots, descending only
// through nodes whose sums are all zero (a non-zero sum at any active
// point proves no candidate can exist below — the paper's dead-branch
// pruning), and returns all all-zero nodes as candidates.
func (r *run) scanDescendants(roots []drbg.NodeKey, pts []*big.Int) ([]sumState, error) {
	var cands []sumState
	seen := map[string]bool{}
	var pruned []drbg.NodeKey
	frontier := roots
	for len(frontier) > 0 {
		states, err := r.evalKeys(frontier, pts)
		if err != nil {
			return nil, err
		}
		var next []drbg.NodeKey
		for _, st := range states {
			ks := st.key.String()
			if seen[ks] {
				continue
			}
			seen[ks] = true
			if st.zeroAll() {
				cands = append(cands, st)
				for c := 0; c < st.nch; c++ {
					next = append(next, st.key.Child(uint32(c)))
				}
			} else {
				pruned = append(pruned, st.key)
			}
		}
		frontier = dedupKeys(next)
	}
	if len(pruned) > 0 {
		r.e.counters.AddPruned(len(pruned))
		if err := r.e.api.Prune(pruned); err != nil {
			return nil, err
		}
	}
	return cands, nil
}

// classify applies the paper's answer rule to candidates of step i:
// a zero node with no zero child (at the step's own point) is a definite
// match; a zero node with a zero child is ambiguous and is resolved by tag
// recovery (or reported unresolved under VerifyNone). Wildcard steps match
// structurally.
func (r *run) classify(cands []sumState, i int) (matches, unresolved []drbg.NodeKey, err error) {
	if len(cands) == 0 {
		return nil, nil, nil
	}
	step := r.steps[i]
	if step.Wildcard() {
		for _, c := range cands {
			matches = append(matches, c.key)
		}
		return matches, nil, nil
	}
	cur := r.points[i]
	// Evaluate all candidates' children at the step point (cache hits for
	// descendant scans, one batched round otherwise).
	var childKeys []drbg.NodeKey
	for _, c := range cands {
		for j := 0; j < c.nch; j++ {
			childKeys = append(childKeys, c.key.Child(uint32(j)))
		}
	}
	childStates, err := r.evalKeys(dedupKeys(childKeys), []*big.Int{cur})
	if err != nil {
		return nil, nil, err
	}
	childZero := make(map[string]bool, len(childStates))
	for _, st := range childStates {
		childZero[st.key.String()] = st.sums[0].Sign() == 0
	}
	for _, c := range cands {
		anyZeroChild := false
		for j := 0; j < c.nch; j++ {
			if childZero[c.key.Child(uint32(j)).String()] {
				anyZeroChild = true
				break
			}
		}
		if !anyZeroChild {
			// Definite: the (x - point) factor must be the node's own.
			matches = append(matches, c.key)
			continue
		}
		// Ambiguous: node and some descendant chain both contain the tag.
		if r.opts.Verify == VerifyNone {
			unresolved = append(unresolved, c.key)
			continue
		}
		tag, err := r.recoverNodeTag(c.key, c.nch)
		if err != nil {
			return nil, nil, fmt.Errorf("core: resolving %s: %w", c.key, err)
		}
		if tag.Cmp(cur) == 0 {
			matches = append(matches, c.key)
		}
	}
	return matches, unresolved, nil
}

// fetchPolys wraps the API call with metrics.
func (r *run) fetchPolys(keys []drbg.NodeKey) (map[string]NodePoly, error) {
	if len(keys) == 0 {
		return map[string]NodePoly{}, nil
	}
	answers, err := r.e.api.FetchPolys(keys)
	if err != nil {
		return nil, err
	}
	r.e.counters.AddRound()
	r.e.counters.AddPolysFetched(len(answers))
	out := make(map[string]NodePoly, len(answers))
	for _, a := range answers {
		if b, err := a.Poly.MarshalBinary(); err == nil {
			r.e.counters.AddPolyBytes(len(b))
		}
		r.childCount[a.Key.String()] = a.NumChildren
		out[a.Key.String()] = a
	}
	return out, nil
}

// reconstructPoly adds the client share to a fetched server share.
func (r *run) reconstructPoly(answers map[string]NodePoly, key drbg.NodeKey) (poly.Poly, error) {
	ans, ok := answers[key.String()]
	if !ok {
		return poly.Poly{}, fmt.Errorf("core: server omitted polynomial for %s", key)
	}
	cs, err := r.e.shares.Share(key)
	if err != nil {
		return poly.Poly{}, err
	}
	return r.e.ring.Add(cs, ans.Poly), nil
}

// recoverNodeTag reconstructs the full polynomials of a node and its
// children and solves eq. (2) for the node's tag value.
func (r *run) recoverNodeTag(key drbg.NodeKey, nch int) (*big.Int, error) {
	keys := make([]drbg.NodeKey, 0, nch+1)
	keys = append(keys, key)
	for i := 0; i < nch; i++ {
		keys = append(keys, key.Child(uint32(i)))
	}
	answers, err := r.fetchPolys(keys)
	if err != nil {
		return nil, err
	}
	f, err := r.reconstructPoly(answers, key)
	if err != nil {
		return nil, err
	}
	children := make([]poly.Poly, nch)
	for i := 0; i < nch; i++ {
		cp, err := r.reconstructPoly(answers, key.Child(uint32(i)))
		if err != nil {
			return nil, err
		}
		children[i] = cp
	}
	r.e.counters.AddTagRecovered()
	tag, err := polyenc.RecoverTag(r.e.ring, f, children)
	if err != nil {
		r.e.counters.AddVerifyFailure()
		return nil, err
	}
	return tag, nil
}

// verifyMatches re-derives each reported match's tag and compares it with
// the query point (VerifyFull).
func (r *run) verifyMatches(keys []drbg.NodeKey, point *big.Int, wildcard bool) error {
	for _, k := range keys {
		tag, err := r.recoverNodeTag(k, r.childCount[k.String()])
		if err != nil {
			return fmt.Errorf("core: verification of %s failed: %w", k, err)
		}
		if !wildcard && tag.Cmp(point) != 0 {
			r.e.counters.AddVerifyFailure()
			return fmt.Errorf("core: server cheated: node %s has tag %s, query point %s", k, tag, point)
		}
	}
	return nil
}
