package core

import (
	"context"
	"fmt"
	"math/big"
	"sync"
	"time"

	"sssearch/internal/drbg"
	"sssearch/internal/obs"
	"sssearch/internal/poly"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/sharing"
	"sssearch/internal/xpath"
)

// run is the per-query state: the compiled steps and points, the learned
// tree shape (child counts) and an evaluation cache that keeps the protocol
// from re-requesting sums the scan already produced.
//
// mu guards childCount and sumCache: when opts.Parallelism > 1 an
// evaluation wave splits into concurrent batches whose goroutines merge
// answers into both maps.
type run struct {
	// ctx carries the query's observability context (trace span) into
	// every server call; it is not used for cancellation.
	ctx    context.Context
	e      *Engine
	steps  []xpath.Step
	points []*big.Int // nil for wildcard steps
	opts   Opts
	// ptIdx interns the query's evaluation points: every point a step can
	// ever evaluate at is one of the r.points pointers, assigned a small
	// index at construction. Read-only after newRun, so sumKey lookups
	// never render a big.Int to a string.
	ptIdx      map[*big.Int]int
	mu         sync.Mutex
	childCount map[string]int
	sumCache   map[sumKey]*big.Int
}

// sumKey addresses one cached (node, point) sum: the node's rendered path
// and the interned point index — a comparable struct, so cache hits cost
// no string concatenation or big.Int rendering.
type sumKey struct {
	node string
	pt   int
}

// newRun assembles the per-query state, interning the point set.
func newRun(ctx context.Context, e *Engine, steps []xpath.Step, points []*big.Int, opts Opts) *run {
	idx := make(map[*big.Int]int, len(points))
	for _, p := range points {
		if p == nil {
			continue
		}
		if _, ok := idx[p]; !ok {
			idx[p] = len(idx)
		}
	}
	return &run{
		ctx:        ctx,
		e:          e,
		steps:      steps,
		points:     points,
		opts:       opts,
		ptIdx:      idx,
		childCount: map[string]int{},
		sumCache:   map[sumKey]*big.Int{},
	}
}

// ptIndex resolves an interned point. All evaluation flows through the
// r.points pointers interned at construction, so a miss is an internal
// invariant violation, reported loudly by the caller.
func (r *run) ptIndex(p *big.Int) (int, bool) {
	i, ok := r.ptIdx[p]
	return i, ok
}

// sumState is the client-side record of one evaluated node.
type sumState struct {
	key drbg.NodeKey
	// ks is key.String(), rendered once per wave and reused by every map
	// consult downstream.
	ks   string
	nch  int
	sums []*big.Int // aligned with the step's point vector; wildcard slot = 0
}

// zeroAll reports whether every sum vanished.
func (s *sumState) zeroAll() bool {
	for _, v := range s.sums {
		if v.Sign() != 0 {
			return false
		}
	}
	return true
}

// execute runs all steps and returns final matches and unresolved keys.
func (r *run) execute() (matches, unresolved []drbg.NodeKey, err error) {
	var contexts []drbg.NodeKey
	for i, step := range r.steps {
		pts := r.activePoints(i)
		var scanRoots []drbg.NodeKey
		if i == 0 {
			scanRoots = []drbg.NodeKey{{}}
		} else {
			scanRoots = r.childrenOf(contexts)
		}
		scanRoots = dedupKeys(scanRoots)
		var cands []sumState
		if step.Axis == xpath.AxisChild {
			states, err := r.evalKeys(scanRoots, pts)
			if err != nil {
				return nil, nil, err
			}
			for _, st := range states {
				if st.zeroAll() {
					cands = append(cands, st)
				}
			}
		} else {
			cands, err = r.scanDescendants(scanRoots, pts)
			if err != nil {
				return nil, nil, err
			}
		}
		stepMatches, stepUnresolved, err := r.classify(cands, i)
		if err != nil {
			return nil, nil, err
		}
		if i == len(r.steps)-1 {
			if r.opts.Verify == VerifyFull {
				if err := r.verifyMatches(stepMatches, r.points[i], step.Wildcard()); err != nil {
					return nil, nil, err
				}
			}
			return stepMatches, stepUnresolved, nil
		}
		// Non-final steps: matched nodes (plus, under VerifyNone,
		// optimistically-kept unresolved nodes) become the next contexts.
		next := append(append([]drbg.NodeKey{}, stepMatches...), stepUnresolved...)
		contexts = dedupKeys(next)
		if len(contexts) == 0 {
			return nil, nil, nil
		}
	}
	return nil, nil, nil
}

// activePoints builds the point vector for step i: the step's own point
// (nil for wildcards — evalKeys fabricates a zero sum) followed by every
// later non-wildcard point. Evaluating candidates at future points is the
// §4.3 "evaluate the whole query at once" optimisation (disabled by the
// DisableLookahead ablation).
func (r *run) activePoints(i int) []*big.Int {
	out := []*big.Int{r.points[i]}
	if r.opts.DisableLookahead {
		return out
	}
	for _, p := range r.points[i+1:] {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// childrenOf expands contexts into their child keys using learned counts.
func (r *run) childrenOf(contexts []drbg.NodeKey) []drbg.NodeKey {
	var out []drbg.NodeKey
	for _, ctx := range contexts {
		n := r.childCount[ctx.String()]
		for i := 0; i < n; i++ {
			out = append(out, ctx.Child(uint32(i)))
		}
	}
	return out
}

// evalKeys returns the client+server sum of each key at each point,
// consulting the per-run cache and asking the server only for keys with
// missing values.
func (r *run) evalKeys(keys []drbg.NodeKey, points []*big.Int) ([]sumState, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	eff := make([]*big.Int, 0, len(points))
	effIdx := make([]int, 0, len(points))
	for _, p := range points {
		if p == nil {
			continue
		}
		pi, ok := r.ptIndex(p)
		if !ok {
			return nil, fmt.Errorf("core: internal: evaluation point %s was not interned", p)
		}
		eff = append(eff, p)
		effIdx = append(effIdx, pi)
	}
	// Render each key once; every cache consult below reuses the string.
	ks := make([]string, len(keys))
	for i, k := range keys {
		ks[i] = k.String()
	}
	// Partition into cached and missing.
	var missing []drbg.NodeKey
	for i := range keys {
		if !r.cachedAll(ks[i], effIdx) {
			missing = append(missing, keys[i])
		}
	}
	if len(missing) > 0 {
		// One wave = one protocol round (latency-wise), even when it is
		// split into concurrent batches below.
		r.e.counters.AddRound()
		r.e.counters.AddNodesVisited(len(missing))
		r.e.counters.AddNodesEvaluated(len(missing) * len(eff))
		r.e.counters.AddValuesMoved(len(missing) * len(eff))
		batches := splitBatches(missing, r.opts.Parallelism)
		if len(batches) == 1 {
			if err := r.evalBatch(batches[0], eff, effIdx); err != nil {
				return nil, err
			}
		} else {
			errs := make([]error, len(batches))
			var wg sync.WaitGroup
			for bi, batch := range batches {
				wg.Add(1)
				go func(bi int, batch []drbg.NodeKey) {
					defer wg.Done()
					errs[bi] = r.evalBatch(batch, eff, effIdx)
				}(bi, batch)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		}
	}
	// Assemble states from cache.
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]sumState, len(keys))
	for i := range keys {
		st := sumState{key: keys[i], ks: ks[i], nch: r.childCount[ks[i]], sums: make([]*big.Int, 0, len(points))}
		for _, p := range points {
			if p == nil {
				st.sums = append(st.sums, big.NewInt(0))
				continue
			}
			pi, _ := r.ptIndex(p)
			v, ok := r.sumCache[sumKey{node: ks[i], pt: pi}]
			if !ok {
				return nil, fmt.Errorf("core: internal: missing cached sum for %s", keys[i])
			}
			st.sums = append(st.sums, v)
		}
		out[i] = st
	}
	return out, nil
}

// evalBatch asks the server for one batch of keys and merges the combined
// sums into the caches. Safe to call from concurrent batch goroutines (the
// ServerAPI contract requires concurrent-safe implementations; the cache
// merge is locked, the big-integer combining runs outside the lock).
// effIdx holds the interned index of each eff point.
func (r *run) evalBatch(batch []drbg.NodeKey, eff []*big.Int, effIdx []int) error {
	answers, err := EvalNodesWithCtx(r.ctx, r.e.api, batch, eff)
	if err != nil {
		return err
	}
	if len(answers) != len(batch) {
		return fmt.Errorf("core: server returned %d answers for %d keys", len(answers), len(batch))
	}
	// Everything below is the client's own share arithmetic: pad/share
	// regeneration plus the modular sums combining client and server
	// summands. Timed as one block per batch — per-node timing would cost
	// more than the work it measures on cached paths.
	arithStart := time.Now()
	defer func() {
		d := time.Since(arithStart)
		r.e.obsv.Observe(obs.StageShareArith, d)
		obs.SpanFrom(r.ctx).Add(obs.StageShareArith, d)
	}()
	// The evaluation modulus of each point is fixed for the whole batch;
	// resolve it once instead of once per (node, point).
	mods := make([]*big.Int, len(eff))
	for i, p := range eff {
		if mods[i], err = r.e.ring.EvalModulus(p); err != nil {
			return fmt.Errorf("core: point %s: %w", p, err)
		}
	}
	multi, isMulti := r.e.shares.(sharing.MultiPointSource)
	for _, ans := range answers {
		if len(ans.Values) != len(eff) {
			return fmt.Errorf("core: server returned %d values for %d points", len(ans.Values), len(eff))
		}
		// Client share summands: one share regeneration serves all points
		// when the source supports multi-point evaluation. Wildcard-only
		// waves (eff empty) need no share work at all — the server round
		// still ran to learn child counts.
		var cvs []*big.Int
		switch {
		case len(eff) == 0:
		case isMulti:
			if cvs, err = multi.EvalShares(ans.Key, eff); err != nil {
				return err
			}
			if len(cvs) != len(eff) {
				return fmt.Errorf("core: share source returned %d values for %d points", len(cvs), len(eff))
			}
		default:
			cvs = make([]*big.Int, len(eff))
			for i, p := range eff {
				if cvs[i], err = r.e.shares.EvalShare(ans.Key, p); err != nil {
					return err
				}
			}
		}
		sums := make([]*big.Int, len(eff))
		for i := range eff {
			sum := new(big.Int).Add(cvs[i], ans.Values[i])
			sums[i] = sum.Mod(sum, mods[i])
		}
		aks := ans.Key.String()
		r.mu.Lock()
		r.childCount[aks] = ans.NumChildren
		for i := range eff {
			r.sumCache[sumKey{node: aks, pt: effIdx[i]}] = sums[i]
		}
		r.mu.Unlock()
	}
	return nil
}

// splitBatches carves keys into at most parallelism near-even batches.
func splitBatches(keys []drbg.NodeKey, parallelism int) [][]drbg.NodeKey {
	if parallelism <= 1 || len(keys) <= 1 {
		return [][]drbg.NodeKey{keys}
	}
	n := parallelism
	if n > len(keys) {
		n = len(keys)
	}
	size := (len(keys) + n - 1) / n
	out := make([][]drbg.NodeKey, 0, n)
	for start := 0; start < len(keys); start += size {
		end := start + size
		if end > len(keys) {
			end = len(keys)
		}
		out = append(out, keys[start:end])
	}
	return out
}

// cachedAll reports whether node ks has a cached child count and a cached
// sum at every interned point index.
func (r *run) cachedAll(ks string, effIdx []int) bool {
	if _, ok := r.childCount[ks]; !ok {
		return false
	}
	for _, pi := range effIdx {
		if _, ok := r.sumCache[sumKey{node: ks, pt: pi}]; !ok {
			return false
		}
	}
	return true
}

// scanDescendants BFSes the subtrees rooted at roots, descending only
// through nodes whose sums are all zero (a non-zero sum at any active
// point proves no candidate can exist below — the paper's dead-branch
// pruning), and returns all all-zero nodes as candidates.
func (r *run) scanDescendants(roots []drbg.NodeKey, pts []*big.Int) ([]sumState, error) {
	var cands []sumState
	seen := map[string]bool{}
	var pruned []drbg.NodeKey
	frontier := roots
	for len(frontier) > 0 {
		states, err := r.evalKeys(frontier, pts)
		if err != nil {
			return nil, err
		}
		var next []drbg.NodeKey
		for _, st := range states {
			if seen[st.ks] {
				continue
			}
			seen[st.ks] = true
			if st.zeroAll() {
				cands = append(cands, st)
				for c := 0; c < st.nch; c++ {
					next = append(next, st.key.Child(uint32(c)))
				}
			} else {
				pruned = append(pruned, st.key)
			}
		}
		frontier = dedupKeys(next)
	}
	if len(pruned) > 0 {
		r.e.counters.AddPruned(len(pruned))
		if err := r.e.api.Prune(pruned); err != nil {
			return nil, err
		}
	}
	return cands, nil
}

// classify applies the paper's answer rule to candidates of step i:
// a zero node with no zero child (at the step's own point) is a definite
// match; a zero node with a zero child is ambiguous and is resolved by tag
// recovery (or reported unresolved under VerifyNone). Wildcard steps match
// structurally.
func (r *run) classify(cands []sumState, i int) (matches, unresolved []drbg.NodeKey, err error) {
	if len(cands) == 0 {
		return nil, nil, nil
	}
	step := r.steps[i]
	if step.Wildcard() {
		for _, c := range cands {
			matches = append(matches, c.key)
		}
		return matches, nil, nil
	}
	cur := r.points[i]
	// Evaluate all candidates' children at the step point (cache hits for
	// descendant scans, one batched round otherwise).
	var childKeys []drbg.NodeKey
	for _, c := range cands {
		for j := 0; j < c.nch; j++ {
			childKeys = append(childKeys, c.key.Child(uint32(j)))
		}
	}
	childStates, err := r.evalKeys(dedupKeys(childKeys), []*big.Int{cur})
	if err != nil {
		return nil, nil, err
	}
	childZero := make(map[string]bool, len(childStates))
	for _, st := range childStates {
		childZero[st.ks] = st.sums[0].Sign() == 0
	}
	for _, c := range cands {
		anyZeroChild := false
		for j := 0; j < c.nch; j++ {
			if childZero[c.key.Child(uint32(j)).String()] {
				anyZeroChild = true
				break
			}
		}
		if !anyZeroChild {
			// Definite: the (x - point) factor must be the node's own.
			matches = append(matches, c.key)
			continue
		}
		// Ambiguous: node and some descendant chain both contain the tag.
		if r.opts.Verify == VerifyNone {
			unresolved = append(unresolved, c.key)
			continue
		}
		tag, err := r.recoverNodeTag(c.key, c.nch)
		if err != nil {
			return nil, nil, fmt.Errorf("core: resolving %s: %w", c.key, err)
		}
		if tag.Cmp(cur) == 0 {
			matches = append(matches, c.key)
		}
	}
	return matches, unresolved, nil
}

// fetchPolys wraps the API call with metrics.
func (r *run) fetchPolys(keys []drbg.NodeKey) (map[string]NodePoly, error) {
	if len(keys) == 0 {
		return map[string]NodePoly{}, nil
	}
	answers, err := r.e.api.FetchPolys(keys)
	if err != nil {
		return nil, err
	}
	r.e.counters.AddRound()
	r.e.counters.AddPolysFetched(len(answers))
	out := make(map[string]NodePoly, len(answers))
	for _, a := range answers {
		r.e.counters.AddPolyBytes(a.Poly.BinarySize())
		aks := a.Key.String()
		r.childCount[aks] = a.NumChildren
		out[aks] = a
	}
	return out, nil
}

// reconstructPoly adds the client share to a fetched server share.
func (r *run) reconstructPoly(answers map[string]NodePoly, key drbg.NodeKey) (poly.Poly, error) {
	ans, ok := answers[key.String()]
	if !ok {
		return poly.Poly{}, fmt.Errorf("core: server omitted polynomial for %s", key)
	}
	cs, err := r.e.shares.Share(key)
	if err != nil {
		return poly.Poly{}, err
	}
	return r.e.ring.Add(cs, ans.Poly), nil
}

// recoverNodeTag reconstructs the full polynomials of a node and its
// children and solves eq. (2) for the node's tag value.
func (r *run) recoverNodeTag(key drbg.NodeKey, nch int) (*big.Int, error) {
	keys := make([]drbg.NodeKey, 0, nch+1)
	keys = append(keys, key)
	for i := 0; i < nch; i++ {
		keys = append(keys, key.Child(uint32(i)))
	}
	answers, err := r.fetchPolys(keys)
	if err != nil {
		return nil, err
	}
	if tag, ok, err := r.recoverNodeTagPacked(answers, key, keys); ok {
		if err != nil {
			r.e.counters.AddVerifyFailure()
			return nil, err
		}
		return tag, nil
	}
	f, err := r.reconstructPoly(answers, key)
	if err != nil {
		return nil, err
	}
	children := make([]poly.Poly, nch)
	for i := 0; i < nch; i++ {
		cp, err := r.reconstructPoly(answers, key.Child(uint32(i)))
		if err != nil {
			return nil, err
		}
		children[i] = cp
	}
	r.e.counters.AddTagRecovered()
	tag, err := polyenc.RecoverTag(r.e.ring, f, children)
	if err != nil {
		r.e.counters.AddVerifyFailure()
		return nil, err
	}
	return tag, nil
}

// recoverNodeTagPacked is the fast-path tag recovery: server polynomials
// pack once, client shares arrive packed from the share source, and the
// reconstruction plus eq. (2) solve stay in the word representation end
// to end. ok=false falls back to the big.Int path (fast path off, source
// without packed shares, or a polynomial with out-of-word coefficients —
// e.g. a tampering server).
func (r *run) recoverNodeTagPacked(answers map[string]NodePoly, key drbg.NodeKey, keys []drbg.NodeKey) (*big.Int, bool, error) {
	fp, okRing := r.e.ring.(*ring.FpCyclotomic)
	if !okRing || fp.Fast() == nil {
		return nil, false, nil
	}
	src, okSrc := r.e.shares.(sharing.PackedShareSource)
	if !okSrc {
		return nil, false, nil
	}
	vecs := make([][]uint64, len(keys))
	for i, k := range keys {
		ans, ok := answers[k.String()]
		if !ok {
			return nil, false, fmt.Errorf("core: server omitted polynomial for %s", k)
		}
		sv, ok := fp.Pack(ans.Poly)
		if !ok || len(sv) > fp.DegreeBound() {
			return nil, false, nil
		}
		cv, ok, err := src.PackedShare(k)
		if err != nil {
			return nil, false, err
		}
		if !ok || len(cv) > fp.DegreeBound() {
			// Over-long externally supplied shares (StaticSource over
			// unreduced figure values) take the big.Int path, which Reduces.
			return nil, false, nil
		}
		vecs[i] = fp.AddPacked(cv, sv)
	}
	r.e.counters.AddTagRecovered()
	tag, err := polyenc.RecoverTagPacked(fp, vecs[0], vecs[1:])
	return tag, true, err
}

// verifyMatches re-derives each reported match's tag and compares it with
// the query point (VerifyFull).
func (r *run) verifyMatches(keys []drbg.NodeKey, point *big.Int, wildcard bool) error {
	for _, k := range keys {
		tag, err := r.recoverNodeTag(k, r.childCount[k.String()])
		if err != nil {
			return fmt.Errorf("core: verification of %s failed: %w", k, err)
		}
		if !wildcard && tag.Cmp(point) != 0 {
			r.e.counters.AddVerifyFailure()
			return fmt.Errorf("core: server cheated: node %s has tag %s, query point %s", k, tag, point)
		}
	}
	return nil
}
