package core_test

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
	"time"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/mapping"
	"sssearch/internal/metrics"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/sharing"
	"sssearch/internal/workload"
)

// multiStack builds a k-of-n deployment and a single-server reference over
// the same document, seed and mapping.
type multiStack struct {
	ring    *ring.FpCyclotomic
	m       *mapping.Map
	seed    drbg.Seed
	members []core.MultiMember
	single  *server.Local
}

func buildMultiStack(t testing.TB, k, n, nodes int) *multiStack {
	t.Helper()
	fp := ring.MustFp(257)
	doc := workload.RandomTree(workload.TreeConfig{Nodes: nodes, MaxFanout: 4, Vocab: 10, Seed: 42})
	m, err := mapping.New(fp.MaxTag(), []byte("multi-test"))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := polyenc.Encode(fp, doc, m)
	if err != nil {
		t.Fatal(err)
	}
	seed := testSeed(9)
	singleTree, err := sharing.Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	single, err := server.NewLocal(fp, singleTree)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := sharing.MultiSplit(enc, seed, k, n, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]core.MultiMember, n)
	for i, s := range shares {
		srv, err := server.NewLocal(fp, s.Tree)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = core.MultiMember{X: s.X, API: srv}
	}
	return &multiStack{ring: fp, m: m, seed: seed, members: members, single: single}
}

// failingAPI simulates a down member server.
type failingAPI struct{}

var errDown = errors.New("member down")

func (failingAPI) EvalNodes([]drbg.NodeKey, []*big.Int) ([]core.NodeEval, error) {
	return nil, errDown
}
func (failingAPI) FetchPolys([]drbg.NodeKey) ([]core.NodePoly, error) { return nil, errDown }
func (failingAPI) Prune([]drbg.NodeKey) error                         { return errDown }

// TestMultiServerMatchesSingleServer: the Lagrange-combined summands must
// be indistinguishable from a single-server deployment, end to end, at
// every verification level (VerifyFull exercises FetchPolys combining).
func TestMultiServerMatchesSingleServer(t *testing.T) {
	s := buildMultiStack(t, 2, 3, 60)
	ms, err := core.NewMultiServer(s.ring, 2, s.members)
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewEngine(s.ring, s.seed, s.m, s.single, nil)
	eng := core.NewEngine(s.ring, s.seed, s.m, ms, nil)
	for _, verify := range []core.VerifyLevel{core.VerifyNone, core.VerifyResolve, core.VerifyFull} {
		for _, tag := range []string{"t0", "t3", "t7"} {
			want, err := ref.Lookup(tag, core.Opts{Verify: verify})
			if err != nil {
				t.Fatalf("%s/%s: reference: %v", verify, tag, err)
			}
			got, err := eng.Lookup(tag, core.Opts{Verify: verify})
			if err != nil {
				t.Fatalf("%s/%s: multi-server: %v", verify, tag, err)
			}
			if len(got.Matches) != len(want.Matches) {
				t.Fatalf("%s/%s: %d matches, want %d", verify, tag, len(got.Matches), len(want.Matches))
			}
			for i := range got.Matches {
				if got.Matches[i].String() != want.Matches[i].String() {
					t.Fatalf("%s/%s: match %d = %s, want %s", verify, tag, i, got.Matches[i], want.Matches[i])
				}
			}
		}
	}
}

// TestMultiServerToleratesDownMembers: with threshold k, up to n-k member
// failures are invisible; one more is an error.
func TestMultiServerToleratesDownMembers(t *testing.T) {
	s := buildMultiStack(t, 2, 3, 40)
	// One member down: still answerable.
	members := append([]core.MultiMember(nil), s.members...)
	members[1] = core.MultiMember{X: members[1].X, API: failingAPI{}}
	ms, err := core.NewMultiServer(s.ring, 2, members)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(s.ring, s.seed, s.m, ms, nil)
	ref := core.NewEngine(s.ring, s.seed, s.m, s.single, nil)
	want, err := ref.Lookup("t2", core.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Lookup("t2", core.Opts{})
	if err != nil {
		t.Fatalf("query with one down member: %v", err)
	}
	if len(got.Matches) != len(want.Matches) {
		t.Fatalf("%d matches, want %d", len(got.Matches), len(want.Matches))
	}
	// Two members down: below threshold.
	members[2] = core.MultiMember{X: members[2].X, API: failingAPI{}}
	ms2, err := core.NewMultiServer(s.ring, 2, members)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := core.NewEngine(s.ring, s.seed, s.m, ms2, nil)
	if _, err := eng2.Lookup("t2", core.Opts{}); err == nil {
		t.Fatal("query with two of three members down should fail at threshold 2")
	}
}

// hangingAPI simulates a member whose connection black-holes: calls block
// until release is closed.
type hangingAPI struct{ release chan struct{} }

func (h hangingAPI) EvalNodes([]drbg.NodeKey, []*big.Int) ([]core.NodeEval, error) {
	<-h.release
	return nil, errDown
}
func (h hangingAPI) FetchPolys([]drbg.NodeKey) ([]core.NodePoly, error) {
	<-h.release
	return nil, errDown
}
func (h hangingAPI) Prune([]drbg.NodeKey) error {
	<-h.release
	return errDown
}

// TestMultiServerUnblockedByHungMember: with threshold k, a member that
// hangs (rather than erroring) must not stall the query — the fan-out
// returns as soon as k members answer.
func TestMultiServerUnblockedByHungMember(t *testing.T) {
	s := buildMultiStack(t, 2, 3, 30)
	release := make(chan struct{})
	defer close(release) // unblock straggler goroutines at test end
	members := append([]core.MultiMember(nil), s.members...)
	members[0] = core.MultiMember{X: members[0].X, API: hangingAPI{release: release}}
	ms, err := core.NewMultiServer(s.ring, 2, members)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(s.ring, s.seed, s.m, ms, nil)
	done := make(chan error, 1)
	go func() {
		_, err := eng.Lookup("t2", core.Opts{Verify: core.VerifyResolve})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("query with one hung member failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("query blocked on a hung member despite k=2 of 3 answering")
	}
}

// TestMultiServerSequentialParity: the Sequential ablation must return
// identical results to the concurrent fan-out.
func TestMultiServerSequentialParity(t *testing.T) {
	s := buildMultiStack(t, 3, 4, 50)
	conc, err := core.NewMultiServer(s.ring, 3, s.members)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := core.NewMultiServer(s.ring, 3, s.members)
	if err != nil {
		t.Fatal(err)
	}
	seq.Sequential = true
	engC := core.NewEngine(s.ring, s.seed, s.m, conc, nil)
	engS := core.NewEngine(s.ring, s.seed, s.m, seq, nil)
	for _, tag := range []string{"t1", "t5"} {
		rc, err := engC.Lookup(tag, core.Opts{Verify: core.VerifyResolve})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := engS.Lookup(tag, core.Opts{Verify: core.VerifyResolve})
		if err != nil {
			t.Fatal(err)
		}
		if len(rc.Matches) != len(rs.Matches) {
			t.Fatalf("%s: concurrent %d matches, sequential %d", tag, len(rc.Matches), len(rs.Matches))
		}
	}
}

// TestNewMultiServerValidation rejects bad thresholds and share points.
func TestNewMultiServerValidation(t *testing.T) {
	fp := ring.MustFp(257)
	api := failingAPI{}
	if _, err := core.NewMultiServer(fp, 2, []core.MultiMember{{X: 1, API: api}}); err == nil {
		t.Error("threshold above member count accepted")
	}
	if _, err := core.NewMultiServer(fp, 0, nil); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := core.NewMultiServer(fp, 1, []core.MultiMember{{X: 0, API: api}}); err == nil {
		t.Error("x=0 member accepted")
	}
	if _, err := core.NewMultiServer(fp, 2, []core.MultiMember{{X: 1, API: api}, {X: 1, API: api}}); err == nil {
		t.Error("duplicate member points accepted")
	}
	if _, err := core.NewMultiServer(fp, 1, []core.MultiMember{{X: 1, API: nil}}); err == nil {
		t.Error("nil member API accepted")
	}
}

// TestParallelQueryParity: Opts.Parallelism must not change results, and
// parallel batch goroutines must merge cleanly (exercised under -race).
func TestParallelQueryParity(t *testing.T) {
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 200, MaxFanout: 4, Vocab: 10, Seed: 7})
	z := ring.MustIntQuotient(1, 0, 1)
	m, err := mapping.New(z.MaxTag(), []byte("par-test"))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := polyenc.Encode(z, doc, m)
	if err != nil {
		t.Fatal(err)
	}
	seed := testSeed(5)
	tree, err := sharing.Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewLocal(z, tree)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(z, seed, m, srv, nil)
	for _, tag := range []string{"t0", "t4", "t9"} {
		want, err := eng.Lookup(tag, core.Opts{Verify: core.VerifyResolve})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 16} {
			got, err := eng.Lookup(tag, core.Opts{Verify: core.VerifyResolve, Parallelism: par})
			if err != nil {
				t.Fatalf("parallelism %d: %v", par, err)
			}
			if len(got.Matches) != len(want.Matches) {
				t.Fatalf("parallelism %d: %d matches, want %d", par, len(got.Matches), len(want.Matches))
			}
			for i := range got.Matches {
				if got.Matches[i].String() != want.Matches[i].String() {
					t.Fatalf("parallelism %d: match %d differs", par, i)
				}
			}
		}
	}
}

// TestMultiServerCombineDifferential pins the fastfield Lagrange combiner
// to the big.Int interpolation ablation (BigCombine): identical EvalNodes
// values and FetchPolys polynomials over the whole tree.
func TestMultiServerCombineDifferential(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{1, 1}, {2, 3}, {3, 4}, {4, 4}} {
		s := buildMultiStack(t, tc.k, tc.n, 50)
		fast, err := core.NewMultiServer(s.ring, tc.k, s.members)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := core.NewMultiServer(s.ring, tc.k, s.members)
		if err != nil {
			t.Fatal(err)
		}
		slow.BigCombine = true

		var keys []drbg.NodeKey
		s.single.Tree().Walk(func(key drbg.NodeKey, _ *sharing.Node) bool {
			keys = append(keys, key)
			return true
		})
		points := []*big.Int{big.NewInt(2), big.NewInt(3), big.NewInt(17)}

		fe, err := fast.EvalNodes(keys, points)
		if err != nil {
			t.Fatalf("k=%d n=%d: fast EvalNodes: %v", tc.k, tc.n, err)
		}
		se, err := slow.EvalNodes(keys, points)
		if err != nil {
			t.Fatalf("k=%d n=%d: big EvalNodes: %v", tc.k, tc.n, err)
		}
		for i := range keys {
			for pi := range points {
				if fe[i].Values[pi].Cmp(se[i].Values[pi]) != 0 {
					t.Fatalf("k=%d n=%d key %s point %d: fast %v, big %v",
						tc.k, tc.n, keys[i], pi, fe[i].Values[pi], se[i].Values[pi])
				}
			}
		}

		fp, err := fast.FetchPolys(keys)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := slow.FetchPolys(keys)
		if err != nil {
			t.Fatal(err)
		}
		for i := range keys {
			if !fp[i].Poly.Equal(sp[i].Poly) {
				t.Fatalf("k=%d n=%d key %s: fast/big FetchPolys polynomials differ", tc.k, tc.n, keys[i])
			}
		}
	}
}

// TestMultiServerCombineFallsBackWithoutFastPath: without the word-sized
// fast path the combiner must transparently run on shamir interpolation
// and still agree with the single-server reference. The whole stack is
// built over a dedicated SetFast(false) ring — the toggle is not safe
// concurrently with straggler member goroutines, so the test never flips
// a live ring.
func TestMultiServerCombineFallsBackWithoutFastPath(t *testing.T) {
	fp := ring.MustFp(257)
	fp.SetFast(false)
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 30, MaxFanout: 4, Vocab: 10, Seed: 42})
	m, err := mapping.New(fp.MaxTag(), []byte("slow-combine"))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := polyenc.Encode(fp, doc, m)
	if err != nil {
		t.Fatal(err)
	}
	seed := testSeed(9)
	singleTree, err := sharing.Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	single, err := server.NewLocal(fp, singleTree)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := sharing.MultiSplit(enc, seed, 2, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]core.MultiMember, len(shares))
	for i, sh := range shares {
		srv, err := server.NewLocal(fp, sh.Tree)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = core.MultiMember{X: sh.X, API: srv}
	}
	ms, err := core.NewMultiServer(fp, 2, members)
	if err != nil {
		t.Fatal(err)
	}
	var keys []drbg.NodeKey
	singleTree.Walk(func(key drbg.NodeKey, _ *sharing.Node) bool {
		keys = append(keys, key)
		return true
	})
	points := []*big.Int{big.NewInt(5)}
	got, err := ms.EvalNodes(keys, points)
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.EvalNodes(keys, points)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if got[i].Values[0].Cmp(want[i].Values[0]) != 0 {
			t.Fatalf("key %s: fallback combine %v, single-server %v", keys[i], got[i].Values[0], want[i].Values[0])
		}
	}
}

// slowAPI delays every call by a fixed amount — the straggler member
// hedged requests exist for.
type slowAPI struct {
	inner core.ServerAPI
	delay time.Duration
}

func (s slowAPI) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	time.Sleep(s.delay)
	return s.inner.EvalNodes(keys, points)
}
func (s slowAPI) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	time.Sleep(s.delay)
	return s.inner.FetchPolys(keys)
}
func (s slowAPI) Prune(keys []drbg.NodeKey) error {
	time.Sleep(s.delay)
	return s.inner.Prune(keys)
}

// TestMultiServerHedgedMatchesSingle: with one artificially slow member
// among the first k, hedging must fire a spare, the spare's answer must
// be used, and the reconstructed results must still match the
// single-server reference exactly.
func TestMultiServerHedgedMatchesSingle(t *testing.T) {
	s := buildMultiStack(t, 2, 4, 40)
	members := append([]core.MultiMember(nil), s.members...)
	members[0] = core.MultiMember{X: members[0].X, API: slowAPI{inner: members[0].API, delay: 200 * time.Millisecond}}
	ms, err := core.NewMultiServer(s.ring, 2, members)
	if err != nil {
		t.Fatal(err)
	}
	ms.HedgeDelay = 2 * time.Millisecond
	ms.Counters = &metrics.Counters{}
	ref := core.NewEngine(s.ring, s.seed, s.m, s.single, nil)
	eng := core.NewEngine(s.ring, s.seed, s.m, ms, nil)
	for _, tag := range []string{"t1", "t4"} {
		want, err := ref.Lookup(tag, core.Opts{Verify: core.VerifyFull})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Lookup(tag, core.Opts{Verify: core.VerifyFull})
		if err != nil {
			t.Fatalf("%s: hedged lookup: %v", tag, err)
		}
		if len(got.Matches) != len(want.Matches) {
			t.Fatalf("%s: %d matches, want %d", tag, len(got.Matches), len(want.Matches))
		}
		for i := range got.Matches {
			if got.Matches[i].String() != want.Matches[i].String() {
				t.Fatalf("%s: match %d = %s, want %s", tag, i, got.Matches[i], want.Matches[i])
			}
		}
	}
	snap := ms.Counters.Snapshot()
	if snap.HedgesFired < 1 {
		t.Errorf("hedgesFired = %d, want >= 1 with a 200ms-slow member and 2ms delay", snap.HedgesFired)
	}
	if snap.HedgesWon < 1 {
		t.Errorf("hedgesWon = %d, want >= 1 (spares should beat the slow member)", snap.HedgesWon)
	}
}

// TestMultiServerHedgedFailoverImmediate: a member that fails outright
// must trigger an immediate spare launch, not wait out the hedge delay —
// the query completes even with an effectively infinite delay.
func TestMultiServerHedgedFailoverImmediate(t *testing.T) {
	s := buildMultiStack(t, 2, 3, 30)
	members := append([]core.MultiMember(nil), s.members...)
	members[0] = core.MultiMember{X: members[0].X, API: failingAPI{}}
	ms, err := core.NewMultiServer(s.ring, 2, members)
	if err != nil {
		t.Fatal(err)
	}
	ms.HedgeDelay = time.Hour // failover must not depend on the timer
	eng := core.NewEngine(s.ring, s.seed, s.m, ms, nil)
	done := make(chan error, 1)
	go func() {
		_, err := eng.Lookup("t2", core.Opts{Verify: core.VerifyResolve})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("hedged query with one failed member: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("hedged fan-out waited for the hedge delay instead of failing over")
	}
}

// TestMultiServerHedgedBelowThreshold: hedging must preserve the failure
// contract — more than n-k failed members is an error, promptly.
func TestMultiServerHedgedBelowThreshold(t *testing.T) {
	s := buildMultiStack(t, 2, 3, 30)
	members := append([]core.MultiMember(nil), s.members...)
	members[0] = core.MultiMember{X: members[0].X, API: failingAPI{}}
	members[2] = core.MultiMember{X: members[2].X, API: failingAPI{}}
	ms, err := core.NewMultiServer(s.ring, 2, members)
	if err != nil {
		t.Fatal(err)
	}
	ms.HedgeDelay = time.Millisecond
	eng := core.NewEngine(s.ring, s.seed, s.m, ms, nil)
	if _, err := eng.Lookup("t2", core.Opts{}); err == nil {
		t.Fatal("query with two of three members down should fail at threshold 2")
	}
}
