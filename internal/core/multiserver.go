package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"time"

	"sssearch/internal/drbg"
	"sssearch/internal/fastfield"
	"sssearch/internal/metrics"
	"sssearch/internal/poly"
	"sssearch/internal/ring"
	"sssearch/internal/shamir"
)

// This file implements the client-side fan-out for the paper's §4.2
// k-of-n extension: every node polynomial's server part is Shamir-shared
// across n servers (sharing.MultiSplit), and the client together with any
// k of them can answer queries. MultiServer queries the share servers
// CONCURRENTLY and Lagrange-combines their scalar summands, so adding
// servers adds throughput (the slowest of k round trips) instead of
// latency (the sum of k round trips).

// MultiMember is one share server in a k-of-n deployment: its Shamir
// evaluation point and any ServerAPI transport (in-process Local over a
// sharing.ServerShare tree, a remote client.Remote, …).
type MultiMember struct {
	X   uint32
	API ServerAPI
}

// MultiServer fans one logical ServerAPI out over k-of-n share servers.
// EvalNodes and FetchPolys succeed as long as at least k members answer;
// the combined summands are exactly what a single-server deployment would
// have returned, so the query engine is oblivious to the fan-out.
//
// Safe for concurrent use if the member APIs are.
type MultiServer struct {
	ring    *ring.FpCyclotomic
	k       int
	members []MultiMember

	// Sequential disables the concurrent fan-out and queries members one
	// at a time, stopping after k successes — the pre-concurrency
	// behavior, kept as a benchmark baseline and ablation.
	Sequential bool

	// HedgeDelay, when positive, switches the concurrent fan-out to
	// hedged requests: only the first k members are queried immediately,
	// and a spare member is launched each time the delay elapses without
	// k answers (or immediately when a member fails). With a delay set
	// just above the healthy-path latency, a slow or hung member costs
	// one hedge delay instead of its full stall — the tail-tolerance
	// trade from "The Tail at Scale" — while the fault-free path sends
	// k instead of n requests. Zero keeps the fire-all fan-out.
	//
	// Hedging never changes answers: every member computes the same
	// deterministic function of its share tree, and reads are idempotent,
	// so which k members answer affects only the Lagrange basis, not the
	// reconstructed summand.
	HedgeDelay time.Duration

	// Counters, when non-nil, receives hedging telemetry: HedgesFired
	// counts spares launched by the delay timer, HedgesWon counts spares
	// whose answers were used in reconstruction.
	Counters *metrics.Counters

	// BigCombine disables the fastfield Lagrange combiner and
	// reconstructs every summand with per-point big.Int interpolation
	// (shamir.InterpolateAt) — the pre-fastfield behavior, kept as a
	// benchmark baseline and differential-test reference. Rings without
	// the word-sized fast path (>62-bit moduli, SetFast(false)) take
	// that path regardless.
	BigCombine bool
}

// NewMultiServer wraps n member servers with reconstruction threshold k.
// Multi-server mode requires the F_p ring (Shamir needs a field); member
// X points must be distinct and non-zero.
func NewMultiServer(r *ring.FpCyclotomic, k int, members []MultiMember) (*MultiServer, error) {
	if r == nil {
		return nil, errors.New("core: nil ring")
	}
	if k < 1 || k > len(members) {
		return nil, fmt.Errorf("core: threshold %d with %d members", k, len(members))
	}
	seen := make(map[uint32]bool, len(members))
	for _, m := range members {
		if m.X == 0 {
			return nil, errors.New("core: member share point x=0 is forbidden")
		}
		if seen[m.X] {
			return nil, fmt.Errorf("core: duplicate member share point x=%d", m.X)
		}
		seen[m.X] = true
		if m.API == nil {
			return nil, errors.New("core: nil member API")
		}
	}
	return &MultiServer{ring: r, k: k, members: members}, nil
}

// Members returns the number of member servers.
func (m *MultiServer) Members() int { return len(m.members) }

// Threshold returns the reconstruction threshold k.
func (m *MultiServer) Threshold() int { return m.k }

// memberCall runs one call against every member (concurrently unless
// Sequential) and returns the first k successful results, alongside the X
// points of the members that produced them. The concurrent path returns
// as soon as k members have answered (or n-k+1 have failed) — a hung
// member must not block an otherwise-answerable query; its straggler
// goroutine drains into a buffered channel. Fails only when fewer than k
// members can succeed.
func memberCall[T any](m *MultiServer, call func(MultiMember) (T, error)) ([]T, []uint32, error) {
	vals := make([]T, 0, m.k)
	xs := make([]uint32, 0, m.k)
	var firstErr error
	if m.Sequential {
		for _, mem := range m.members {
			v, err := call(mem)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			vals = append(vals, v)
			xs = append(xs, mem.X)
			if len(vals) == m.k {
				return vals, xs, nil
			}
		}
		return nil, nil, fmt.Errorf("core: only %d of %d member servers answered (need %d): %w",
			len(vals), len(m.members), m.k, firstErr)
	}
	if m.HedgeDelay > 0 && m.k < len(m.members) {
		return hedgedCall(m, call)
	}
	type memberResult struct {
		idx int
		val T
		err error
	}
	ch := make(chan memberResult, len(m.members))
	for i, mem := range m.members {
		go func(i int, mem MultiMember) {
			v, err := call(mem)
			ch <- memberResult{idx: i, val: v, err: err}
		}(i, mem)
	}
	failures := 0
	for range m.members {
		r := <-ch
		if r.err != nil {
			failures++
			if firstErr == nil {
				firstErr = r.err
			}
			if failures > len(m.members)-m.k {
				return nil, nil, fmt.Errorf("core: only %d of %d member servers answered (need %d): %w",
					len(vals), len(m.members), m.k, firstErr)
			}
			continue
		}
		vals = append(vals, r.val)
		xs = append(xs, m.members[r.idx].X)
		if len(vals) == m.k {
			return vals, xs, nil
		}
	}
	return nil, nil, fmt.Errorf("core: only %d of %d member servers answered (need %d): %w",
		len(vals), len(m.members), m.k, firstErr)
}

// hedgedCall is the hedged-request fan-out: launch the first k members,
// then one spare per elapsed hedge delay (or immediately on a member
// failure), until k members have answered. Stragglers — hedged-against
// members that answer late — drain into the buffered channel. Fails,
// like the fire-all path, once more than n-k members have failed.
func hedgedCall[T any](m *MultiServer, call func(MultiMember) (T, error)) ([]T, []uint32, error) {
	n := len(m.members)
	type memberResult struct {
		idx int
		val T
		err error
	}
	ch := make(chan memberResult, n)
	hedged := make([]bool, n) // spares launched by the timer, not by failover
	launched := 0
	launch := func(byTimer bool) {
		i := launched
		launched++
		hedged[i] = byTimer
		mem := m.members[i]
		go func() {
			v, err := call(mem)
			ch <- memberResult{idx: i, val: v, err: err}
		}()
	}
	for launched < m.k {
		launch(false)
	}
	timer := time.NewTimer(m.HedgeDelay)
	defer timer.Stop()

	vals := make([]T, 0, m.k)
	xs := make([]uint32, 0, m.k)
	var firstErr error
	failures := 0
	for {
		select {
		case r := <-ch:
			if r.err != nil {
				failures++
				if firstErr == nil {
					firstErr = r.err
				}
				if failures > n-m.k {
					return nil, nil, fmt.Errorf("core: only %d of %d member servers answered (need %d): %w",
						len(vals), n, m.k, firstErr)
				}
				if launched < n {
					launch(false) // immediate failover: no point waiting out the delay
				}
				continue
			}
			vals = append(vals, r.val)
			xs = append(xs, m.members[r.idx].X)
			if hedged[r.idx] && m.Counters != nil {
				m.Counters.AddHedgesWon(1)
			}
			if len(vals) == m.k {
				return vals, xs, nil
			}
		case <-timer.C:
			if launched < n {
				launch(true)
				if m.Counters != nil {
					m.Counters.AddHedgesFired(1)
				}
			}
			if launched < n {
				timer.Reset(m.HedgeDelay)
			}
		}
	}
}

// lagrange builds the fastfield interpolation-at-zero basis for the
// answering members' share points, or returns nil when the combine must
// run on the big.Int path (no word-sized fast path, the BigCombine
// ablation, or share points degenerate mod p).
func (m *MultiServer) lagrange(xs []uint32) *fastfield.Lagrange {
	if m.BigCombine {
		return nil
	}
	ff := m.ring.Fast()
	if ff == nil {
		return nil
	}
	xs64 := make([]uint64, len(xs))
	for i, x := range xs {
		xs64[i] = uint64(x)
	}
	lag, err := ff.LagrangeAtZero(xs64)
	if err != nil {
		return nil
	}
	return lag
}

// EvalNodes implements ServerAPI: fan the request out, then reconstruct
// each server summand f_rest(a) = Σ_j λ_j·share_j(a) via Lagrange
// interpolation at zero. On fast-path rings the λ_j basis is precomputed
// once per answer set and every node's value vector is combined in a
// single Montgomery pass; rings without the fast path fall back to
// per-point shamir.InterpolateAt.
func (m *MultiServer) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]NodeEval, error) {
	return m.EvalNodesCtx(context.Background(), keys, points)
}

// EvalNodesCtx implements CtxEvaler: every member leg — including hedged
// spares and failovers — runs under the caller's ctx, so all legs of a
// sampled query carry the same trace ID to their daemons.
func (m *MultiServer) EvalNodesCtx(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) ([]NodeEval, error) {
	per, xs, err := memberCall(m, func(mem MultiMember) ([]NodeEval, error) {
		answers, err := EvalNodesWithCtx(ctx, mem.API, keys, points)
		if err != nil {
			return nil, err
		}
		if len(answers) != len(keys) {
			return nil, fmt.Errorf("core: member %d returned %d answers for %d keys", mem.X, len(answers), len(keys))
		}
		for _, a := range answers {
			if len(a.Values) != len(points) {
				return nil, fmt.Errorf("core: member %d returned %d values for %d points", mem.X, len(a.Values), len(points))
			}
		}
		return answers, nil
	})
	if err != nil {
		return nil, err
	}
	lag := m.lagrange(xs)
	ff := m.ring.Fast()
	// Scratch reused across nodes on the fast path: one row per member,
	// one destination column per query point.
	var rows [][]uint64
	var dst []uint64
	if lag != nil {
		rows = make([][]uint64, len(per))
		for j := range rows {
			rows[j] = make([]uint64, len(points))
		}
		dst = make([]uint64, len(points))
	}
	zero := big.NewInt(0)
	f := m.ring.Field()
	out := make([]NodeEval, len(keys))
	for i, key := range keys {
		nch := per[0][i].NumChildren
		for j := 1; j < len(per); j++ {
			if per[j][i].NumChildren != nch {
				return nil, fmt.Errorf("core: member servers disagree on the child count of %s", key)
			}
		}
		values := make([]*big.Int, len(points))
		if lag != nil {
			for j := range per {
				for pi := range points {
					rows[j][pi] = ff.ReduceBig(per[j][i].Values[pi])
				}
			}
			lag.CombineVec(dst, rows)
			for pi, v := range dst {
				values[pi] = new(big.Int).SetUint64(v)
			}
		} else {
			shares := make([]shamir.Share, len(per))
			for pi := range points {
				for j := range per {
					shares[j] = shamir.Share{X: xs[j], Y: per[j][i].Values[pi]}
				}
				v, err := shamir.InterpolateAt(f, shares, zero, m.k)
				if err != nil {
					return nil, fmt.Errorf("core: combining evaluations of %s: %w", key, err)
				}
				values[pi] = v
			}
		}
		out[i] = NodeEval{Key: key, Values: values, NumChildren: nch}
	}
	return out, nil
}

// FetchPolys implements ServerAPI: reconstruct the single-server share
// polynomial coefficient-wise (Lagrange at zero is linear, so it commutes
// with the coefficient view). On fast-path rings all coefficients of a
// node combine in one Montgomery pass over the members' packed coefficient
// vectors; a member polynomial that refuses to pack sends that node to
// the big.Int path.
func (m *MultiServer) FetchPolys(keys []drbg.NodeKey) ([]NodePoly, error) {
	per, xs, err := memberCall(m, func(mem MultiMember) ([]NodePoly, error) {
		answers, err := mem.API.FetchPolys(keys)
		if err != nil {
			return nil, err
		}
		if len(answers) != len(keys) {
			return nil, fmt.Errorf("core: member %d returned %d polys for %d keys", mem.X, len(answers), len(keys))
		}
		return answers, nil
	})
	if err != nil {
		return nil, err
	}
	lag := m.lagrange(xs)
	ff := m.ring.Fast()
	rows := make([][]uint64, len(per))
	out := make([]NodePoly, len(keys))
	for i, key := range keys {
		nch := per[0][i].NumChildren
		maxLen := 0
		for j := range per {
			if per[j][i].NumChildren != nch {
				return nil, fmt.Errorf("core: member servers disagree on the child count of %s", key)
			}
			if l := per[j][i].Poly.Len(); l > maxLen {
				maxLen = l
			}
		}
		if lag != nil {
			packed := true
			for j := range per {
				row, ok := per[j][i].Poly.Uint64Coeffs(rows[j][:0])
				if !ok {
					packed = false
					break
				}
				ff.ReduceVec(row, row)
				rows[j] = row
			}
			if packed {
				dst := make([]uint64, maxLen)
				lag.CombineVec(dst, rows)
				out[i] = NodePoly{Key: key, Poly: poly.NewUint64(dst), NumChildren: nch}
				continue
			}
		}
		p, err := m.combinePolyBig(key, per, xs, i, maxLen)
		if err != nil {
			return nil, err
		}
		out[i] = NodePoly{Key: key, Poly: p, NumChildren: nch}
	}
	return out, nil
}

// combinePolyBig is the big.Int coefficient-wise reconstruction of one
// node's share polynomial — the fallback and ablation path.
func (m *MultiServer) combinePolyBig(key drbg.NodeKey, per [][]NodePoly, xs []uint32, i, maxLen int) (poly.Poly, error) {
	zero := big.NewInt(0)
	f := m.ring.Field()
	coeffs := make([]*big.Int, maxLen)
	shares := make([]shamir.Share, len(per))
	for c := 0; c < maxLen; c++ {
		for j := range per {
			shares[j] = shamir.Share{X: xs[j], Y: per[j][i].Poly.Coeff(c)}
		}
		v, err := shamir.InterpolateAt(f, shares, zero, m.k)
		if err != nil {
			return poly.Poly{}, fmt.Errorf("core: combining polynomial of %s: %w", key, err)
		}
		coeffs[c] = v
	}
	return poly.New(coeffs...), nil
}

// Prune implements ServerAPI: advisory, so it is fanned out to every
// member (concurrently unless Sequential) and succeeds as soon as any
// member acknowledges — a down or hung server must not stall an
// otherwise-answerable query. Straggler acknowledgements drain into a
// buffered channel.
func (m *MultiServer) Prune(keys []drbg.NodeKey) error {
	if m.Sequential {
		var firstErr error
		for _, mem := range m.members {
			if err := mem.API.Prune(keys); err == nil {
				return nil
			} else if firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	ch := make(chan error, len(m.members))
	for _, mem := range m.members {
		go func(mem MultiMember) { ch <- mem.API.Prune(keys) }(mem)
	}
	var firstErr error
	for range m.members {
		err := <-ch
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

var _ ServerAPI = (*MultiServer)(nil)
