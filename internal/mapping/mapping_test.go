package mapping

import (
	"fmt"
	"math/big"
	"testing"
)

func bi(v int64) *big.Int { return big.NewInt(v) }

func TestAssignDeterministicAndInjective(t *testing.T) {
	m, err := New(bi(1000), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	tags := []string{"customers", "client", "name", "order", "item"}
	vals := map[string]*big.Int{}
	for _, tag := range tags {
		v, err := m.Assign(tag)
		if err != nil {
			t.Fatal(err)
		}
		if v.Sign() < 1 || v.Cmp(bi(1000)) > 0 {
			t.Fatalf("value %v out of domain", v)
		}
		vals[tag] = v
	}
	// Idempotent.
	for _, tag := range tags {
		v, err := m.Assign(tag)
		if err != nil {
			t.Fatal(err)
		}
		if v.Cmp(vals[tag]) != 0 {
			t.Errorf("re-Assign(%q) changed value", tag)
		}
	}
	// Injective.
	seen := map[string]bool{}
	for tag, v := range vals {
		if seen[v.String()] {
			t.Errorf("collision at %q", tag)
		}
		seen[v.String()] = true
	}
	// Deterministic across instances with the same secret.
	m2, _ := New(bi(1000), []byte("secret"))
	for _, tag := range tags {
		v, err := m2.Assign(tag)
		if err != nil {
			t.Fatal(err)
		}
		if v.Cmp(vals[tag]) != 0 {
			t.Errorf("different instance disagreed on %q", tag)
		}
	}
	// Different secret ⇒ (almost surely) different assignment.
	m3, _ := New(bi(1_000_000_000), []byte("other"))
	diff := false
	for _, tag := range tags {
		v, _ := m3.Assign(tag)
		if v.Cmp(vals[tag]) != 0 {
			diff = true
		}
	}
	if !diff {
		t.Error("different secrets produced identical mapping")
	}
}

func TestInvertibility(t *testing.T) {
	m, _ := New(bi(100), []byte("k"))
	v, _ := m.Assign("client")
	tag, ok := m.Tag(v)
	if !ok || tag != "client" {
		t.Errorf("Tag(%v) = %q, %v", v, tag, ok)
	}
	if _, ok := m.Tag(bi(0)); ok {
		t.Error("phantom inverse")
	}
	if _, ok := m.Value("nope"); ok {
		t.Error("phantom value")
	}
}

func TestCollisionHandlingSmallDomain(t *testing.T) {
	// Domain of size 3: three tags must all fit, the fourth must fail.
	m, _ := New(bi(3), []byte("x"))
	for i := 0; i < 3; i++ {
		if _, err := m.Assign(fmt.Sprintf("tag%d", i)); err != nil {
			t.Fatalf("tag%d: %v", i, err)
		}
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	if _, err := m.Assign("overflow"); err == nil {
		t.Error("domain exhaustion not detected")
	}
	// All three values distinct and in [1,3].
	seen := map[int64]bool{}
	for _, tag := range m.Tags() {
		v, _ := m.Value(tag)
		if v.Int64() < 1 || v.Int64() > 3 || seen[v.Int64()] {
			t.Fatalf("bad value %v", v)
		}
		seen[v.Int64()] = true
	}
}

func TestSetExplicitPaperMapping(t *testing.T) {
	// The paper's figure 1(b): customers→3, client→2, name→4 with p=5
	// (domain [1, 3]... note 4 > p-2 for p=5 is only valid in the Z ring,
	// so use a domain that fits: [1, 100]).
	m, _ := New(bi(100), []byte("paper"))
	if err := m.SetExplicit("customers", bi(3)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetExplicit("client", bi(2)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetExplicit("name", bi(4)); err != nil {
		t.Fatal(err)
	}
	// Idempotent same-value pin.
	if err := m.SetExplicit("client", bi(2)); err != nil {
		t.Error(err)
	}
	// Conflicts rejected.
	if err := m.SetExplicit("client", bi(9)); err == nil {
		t.Error("re-pin with new value accepted")
	}
	if err := m.SetExplicit("other", bi(2)); err == nil {
		t.Error("value collision accepted")
	}
	if err := m.SetExplicit("bad", bi(0)); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if err := m.SetExplicit("bad", bi(101)); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if err := m.SetExplicit("", bi(5)); err == nil {
		t.Error("empty tag accepted")
	}
	v, _ := m.Value("customers")
	if v.Int64() != 3 {
		t.Error("explicit value lost")
	}
}

func TestAssignAvoidsExplicitValues(t *testing.T) {
	m, _ := New(bi(4), []byte("k"))
	for i := int64(1); i <= 3; i++ {
		if err := m.SetExplicit(fmt.Sprintf("pin%d", i), bi(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := m.Assign("fresh")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int64() != 4 {
		t.Errorf("Assign picked %v, only 4 was free", v)
	}
}

func TestNilMaxTagUsesDefault(t *testing.T) {
	m, err := New(nil, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxTag().Cmp(DefaultUnboundedMax) != 0 {
		t.Error("default bound not applied")
	}
	if _, err := New(bi(0), nil); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestAssignAllAndTags(t *testing.T) {
	m, _ := New(bi(1000), []byte("k"))
	if err := m.AssignAll([]string{"b", "a", "c", "a"}); err != nil {
		t.Fatal(err)
	}
	tags := m.Tags()
	if len(tags) != 3 || tags[0] != "a" || tags[1] != "b" || tags[2] != "c" {
		t.Errorf("Tags = %v", tags)
	}
	if _, err := m.Assign(""); err == nil {
		t.Error("empty tag accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	m, _ := New(bi(5000), []byte("secret"))
	m.AssignAll([]string{"x", "y", "z", "деревня", "tag-with-dash"})
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var m2 Map
	if err := m2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != m.Len() || m2.MaxTag().Cmp(m.MaxTag()) != 0 {
		t.Fatal("shape lost")
	}
	for _, tag := range m.Tags() {
		v1, _ := m.Value(tag)
		v2, ok := m2.Value(tag)
		if !ok || v1.Cmp(v2) != 0 {
			t.Errorf("tag %q lost: %v vs %v", tag, v1, v2)
		}
		back, ok := m2.Tag(v2)
		if !ok || back != tag {
			t.Errorf("inverse lost for %q", tag)
		}
	}
	// Deterministic serialization.
	data2, _ := m.MarshalBinary()
	if string(data) != string(data2) {
		t.Error("marshal not deterministic")
	}
}

func TestRestoreWithSecretExtends(t *testing.T) {
	m, _ := New(bi(10000), []byte("s"))
	m.AssignAll([]string{"a", "b"})
	data, _ := m.MarshalBinary()
	m2, err := RestoreWithSecret(data, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	// New assignments on the restored map agree with the original instance.
	vNew2, err := m2.Assign("c")
	if err != nil {
		t.Fatal(err)
	}
	vNew1, _ := m.Assign("c")
	if vNew1.Cmp(vNew2) != 0 {
		t.Error("restored map diverged on new tag")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{0xff},
		{0x01, 0x05, 0x01},       // truncated
		{0x01, 0x00, 0x01, 0x01}, // maxTag = 0
	}
	for i, b := range bad {
		var m Map
		if err := m.UnmarshalBinary(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Trailing bytes.
	m, _ := New(bi(10), []byte("k"))
	data, _ := m.MarshalBinary()
	var m2 Map
	if err := m2.UnmarshalBinary(append(data, 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func BenchmarkAssign(b *testing.B) {
	m, _ := New(bi(1_000_000), []byte("bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Assign(fmt.Sprintf("tag%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}
