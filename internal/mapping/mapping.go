// Package mapping implements the scheme's private mapping function
// map: tagnames → Z (§4.1 of the paper). The mapping must be
//
//   - injective (Theorems 1–2 recover tags uniquely only then),
//   - private to the client ("the mapping function should be private to
//     avoid the server to see the query"),
//   - restricted to [1, p-2] in the F_p ring: p-1 is the zero divisor
//     excluded by Lemma 3, and 0 would break evaluation of reduced
//     polynomials (a^{p-1} = 1 needs a ≠ 0).
//
// Values are assigned pseudorandomly from an HMAC-keyed draw so that the
// assignment is deterministic given the client's secret key — two runs over
// the same vocabulary agree — while revealing nothing about the tag to
// anyone without the key.
package mapping

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"
)

// DefaultUnboundedMax is the tag domain bound used when the ring imposes
// none (the Z[x]/(r(x)) case): values are drawn from [1, 2^31].
var DefaultUnboundedMax = new(big.Int).Lsh(big.NewInt(1), 31)

// Map is an injective, invertible tag-name mapping. Safe for concurrent use.
type Map struct {
	mu     sync.RWMutex
	key    []byte
	maxTag *big.Int // inclusive upper bound, >= 1
	byName map[string]*big.Int
	byVal  map[string]string // canonical decimal string → tag
}

// New creates an empty mapping with values in [1, maxTag]. A nil maxTag
// selects DefaultUnboundedMax. secret keys the deterministic assignment;
// it must be private to the client.
func New(maxTag *big.Int, secret []byte) (*Map, error) {
	if maxTag == nil {
		maxTag = DefaultUnboundedMax
	}
	if maxTag.Sign() < 1 {
		return nil, errors.New("mapping: empty tag domain")
	}
	return &Map{
		key:    append([]byte(nil), secret...),
		maxTag: new(big.Int).Set(maxTag),
		byName: map[string]*big.Int{},
		byVal:  map[string]string{},
	}, nil
}

// Len returns the number of mapped tags.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.byName)
}

// MaxTag returns the inclusive domain bound.
func (m *Map) MaxTag() *big.Int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return new(big.Int).Set(m.maxTag)
}

// Value returns the value for tag, if assigned.
func (m *Map) Value(tag string) (*big.Int, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.byName[tag]
	if !ok {
		return nil, false
	}
	return new(big.Int).Set(v), true
}

// Tag inverts the mapping: the tag mapped to v, if any.
func (m *Map) Tag(v *big.Int) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	tag, ok := m.byVal[v.String()]
	return tag, ok
}

// Tags returns the mapped tag names, sorted.
func (m *Map) Tags() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.byName))
	for t := range m.byName {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Assign returns the value for tag, assigning a fresh one on first use.
func (m *Map) Assign(tag string) (*big.Int, error) {
	if tag == "" {
		return nil, errors.New("mapping: empty tag")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.byName[tag]; ok {
		return new(big.Int).Set(v), nil
	}
	if big.NewInt(int64(len(m.byName))).Cmp(m.maxTag) >= 0 {
		return nil, fmt.Errorf("mapping: tag domain [1,%s] exhausted (%d tags)", m.maxTag, len(m.byName))
	}
	for ctr := uint64(0); ; ctr++ {
		v := m.draw(tag, ctr)
		if _, taken := m.byVal[v.String()]; taken {
			continue
		}
		m.byName[tag] = v
		m.byVal[v.String()] = tag
		return new(big.Int).Set(v), nil
	}
}

// AssignAll assigns every tag in the slice (idempotently).
func (m *Map) AssignAll(tags []string) error {
	for _, t := range tags {
		if _, err := m.Assign(t); err != nil {
			return err
		}
	}
	return nil
}

// SetExplicit pins tag to a specific value (used to reproduce the paper's
// fixed example mapping). Fails on collisions or out-of-domain values.
func (m *Map) SetExplicit(tag string, v *big.Int) error {
	if tag == "" {
		return errors.New("mapping: empty tag")
	}
	if v.Sign() < 1 || v.Cmp(m.maxTag) > 0 {
		return fmt.Errorf("mapping: value %s outside domain [1,%s]", v, m.maxTag)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.byName[tag]; ok {
		if old.Cmp(v) == 0 {
			return nil
		}
		return fmt.Errorf("mapping: tag %q already mapped to %s", tag, old)
	}
	if other, taken := m.byVal[v.String()]; taken {
		return fmt.Errorf("mapping: value %s already used by tag %q", v, other)
	}
	vc := new(big.Int).Set(v)
	m.byName[tag] = vc
	m.byVal[vc.String()] = tag
	return nil
}

// draw produces the ctr-th keyed candidate value for tag, in [1, maxTag].
func (m *Map) draw(tag string, ctr uint64) *big.Int {
	mac := hmac.New(sha256.New, m.key)
	mac.Write([]byte(tag))
	var ctrBuf [8]byte
	binary.BigEndian.PutUint64(ctrBuf[:], ctr)
	mac.Write(ctrBuf[:])
	digest := mac.Sum(nil)
	v := new(big.Int).SetBytes(digest)
	v.Mod(v, m.maxTag) // [0, maxTag)
	return v.Add(v, big.NewInt(1))
}
