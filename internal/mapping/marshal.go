package mapping

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// Binary layout:
//
//	varint  len(maxTag bytes); bytes maxTag
//	varint  nEntries
//	repeat: varint len(tag); bytes tag; varint len(value bytes); bytes value
//
// The HMAC key is deliberately NOT serialized: a persisted mapping is a
// complete dictionary, and the key is only needed to assign new tags.
// Callers that need to extend a restored mapping should construct it with
// the original secret and re-run AssignAll.

const (
	maxTagBytes   = 1 << 10
	maxTagNameLen = 1 << 16
	maxEntries    = 1 << 24
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Map) MarshalBinary() ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	buf := make([]byte, 0, 64+len(m.byName)*24)
	mt := m.maxTag.Bytes()
	buf = binary.AppendUvarint(buf, uint64(len(mt)))
	buf = append(buf, mt...)
	buf = binary.AppendUvarint(buf, uint64(len(m.byName)))
	// Deterministic order: sorted tags.
	tags := make([]string, 0, len(m.byName))
	for t := range m.byName {
		tags = append(tags, t)
	}
	sortStrings(tags)
	for _, t := range tags {
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		buf = append(buf, t...)
		vb := m.byName[t].Bytes()
		buf = binary.AppendUvarint(buf, uint64(len(vb)))
		buf = append(buf, vb...)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The restored map
// has no assignment key; Assign of *new* tags will still work but uses an
// empty key, so prefer restoring alongside the original secret via
// RestoreWithSecret when new tags may appear.
func (m *Map) UnmarshalBinary(data []byte) error {
	restored, err := unmarshal(data, nil)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.key = restored.key
	m.maxTag = restored.maxTag
	m.byName = restored.byName
	m.byVal = restored.byVal
	return nil
}

// RestoreWithSecret rebuilds a mapping from its serialized form plus the
// original assignment secret.
func RestoreWithSecret(data, secret []byte) (*Map, error) {
	return unmarshal(data, secret)
}

func unmarshal(data, secret []byte) (*Map, error) {
	l, k := binary.Uvarint(data)
	if k <= 0 || l > maxTagBytes {
		return nil, errors.New("mapping: bad maxTag length")
	}
	data = data[k:]
	if uint64(len(data)) < l {
		return nil, errors.New("mapping: truncated maxTag")
	}
	maxTag := new(big.Int).SetBytes(data[:l])
	data = data[l:]
	if maxTag.Sign() < 1 {
		return nil, errors.New("mapping: invalid maxTag")
	}
	n, k := binary.Uvarint(data)
	if k <= 0 || n > maxEntries {
		return nil, errors.New("mapping: bad entry count")
	}
	data = data[k:]
	out, err := New(maxTag, secret)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		tl, k := binary.Uvarint(data)
		if k <= 0 || tl > maxTagNameLen {
			return nil, errors.New("mapping: bad tag length")
		}
		data = data[k:]
		if uint64(len(data)) < tl {
			return nil, errors.New("mapping: truncated tag")
		}
		tag := string(data[:tl])
		data = data[tl:]
		vl, k := binary.Uvarint(data)
		if k <= 0 || vl > maxTagBytes {
			return nil, errors.New("mapping: bad value length")
		}
		data = data[k:]
		if uint64(len(data)) < vl {
			return nil, errors.New("mapping: truncated value")
		}
		v := new(big.Int).SetBytes(data[:vl])
		data = data[vl:]
		if err := out.SetExplicit(tag, v); err != nil {
			return nil, fmt.Errorf("mapping: restoring %q: %w", tag, err)
		}
	}
	if len(data) != 0 {
		return nil, errors.New("mapping: trailing bytes")
	}
	return out, nil
}

// sortStrings is a tiny insertion sort to avoid importing sort twice in the
// hot path — vocabulary sizes are small.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
