package fastfield

import (
	"fmt"
	"math/bits"
	"sync"
)

// This file is the convolution fallback behind the NTT-backed multiply for
// rings whose length n = p-1 has a prime factor above MaxRadix. The
// classical escape hatches for such lengths are Bluestein's chirp
// transform and Rader's prime-length reduction — but both bottom out in a
// convolution of a length F_p has no root of unity for (every root order
// in F_p divides p-1), so the inner convolution must leave F_p either way.
// Given that, the chirp is pure overhead: we instead compute the plain
// integer linear convolution of the two canonical coefficient vectors in
// power-of-two NTTs over auxiliary word-sized primes, CRT-combine when one
// prime cannot hold the coefficient bound, and fold the result mod
// (x^n - 1, p). The arithmetic is exact at every step, so the output is
// bit-identical to the schoolbook product.
//
// The auxiliary primes are the two largest 62-bit primes ≡ 1 (mod 2^24):
// their 2-adicity covers every transform size the ring cap admits
// (n ≤ 2^22 ⇒ conv length < 2^23), and 124 bits of CRT headroom cover the
// worst coefficient bound min(la,lb)·(p-1)^2 < 2^66 with room to spare.
// One prime suffices — and the second transform is skipped — whenever
// min(la,lb)·(p-1)^2 < q1, which holds for every modulus below ~2^20.

// auxPrimes are the CRT moduli: the largest primes q < 2^62 with
// 2^24 | q-1 (q1 = 274877906938·2^24 + 1, q2 = 274877906937·2^24 + 1 —
// verified prime, with the 2-adicity checked, in TestAuxPrimes).
var auxPrimes = [2]uint64{4611686018326724609, 4611686018309947393}

// auxEngine lazily carries one auxiliary prime's field plus its power-of-
// two transforms, keyed by size. Transforms are built once per size and
// shared read-only.
type auxEngine struct {
	once sync.Once
	f    *Field
	ntts sync.Map // int -> *NTT
}

var auxEngines [2]auxEngine

// auxField returns the i-th auxiliary prime's field.
func auxField(i int) *Field {
	e := &auxEngines[i]
	e.once.Do(func() {
		f, err := New(auxPrimes[i])
		if err != nil {
			panic(fmt.Sprintf("fastfield: bad auxiliary prime %d: %v", auxPrimes[i], err))
		}
		e.f = f
	})
	return e.f
}

// aux returns the i-th auxiliary engine's transform of length m (a power
// of two ≤ 2^25).
func aux(i, m int) *NTT {
	e := &auxEngines[i]
	if t, ok := e.ntts.Load(m); ok {
		return t.(*NTT)
	}
	t, err := NewNTT(auxField(i), m)
	if err != nil {
		panic(fmt.Sprintf("fastfield: auxiliary NTT size %d: %v", m, err))
	}
	actual, _ := e.ntts.LoadOrStore(m, t)
	return actual.(*NTT)
}

// CyclicConv multiplies in F_p[x]/(x^n - 1) for lengths n the mixed-radix
// NTT rejects (ErrNotSmooth). Stateless beyond its parameters; safe for
// concurrent use.
type CyclicConv struct {
	f *Field
	n int
	// pm1sq = (p-1)^2, the per-term bound of the integer convolution.
	pm1sq uint64
	// q2InvM is q1^{-1} mod q2 in q2's Montgomery form, for the CRT lift.
	q2InvM uint64
}

// NewCyclicConv builds the fallback multiplier for cyclic length n over f.
// The modulus must stay below 2^31 so the per-term coefficient bound
// (p-1)^2 fits a word — every constructible FpCyclotomic (p ≤ 2^22) does.
func NewCyclicConv(f *Field, n int) *CyclicConv {
	if f.p >= 1<<31 {
		panic(fmt.Sprintf("fastfield: CyclicConv modulus %d too wide", f.p))
	}
	f2 := auxField(1)
	q1InQ2 := f2.Reduce(auxPrimes[0])
	inv, ok := f2.Inv(q1InQ2)
	if !ok {
		panic("fastfield: auxiliary primes not coprime")
	}
	return &CyclicConv{
		f:      f,
		n:      n,
		pm1sq:  (f.p - 1) * (f.p - 1),
		q2InvM: f2.MForm(inv),
	}
}

// N returns the cyclic length.
func (c *CyclicConv) N() int { return c.n }

// MulCyclicInto writes the length-n cyclic product of a and b (each of
// length ≤ n, canonical mod p) into dst (length n).
func (c *CyclicConv) MulCyclicInto(dst, a, b []uint64) {
	if len(dst) != c.n {
		panic("fastfield: MulCyclicInto dst length mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return
	}
	convLen := la + lb - 1
	m := 1
	for m < convLen {
		m <<= 1
	}
	// Does one auxiliary prime hold the exact coefficients? Bound:
	// min(la,lb) terms of at most (p-1)^2 each.
	minLen := la
	if lb < la {
		minLen = lb
	}
	hi, lo := bits.Mul64(uint64(minLen), c.pm1sq)
	onePrime := hi == 0 && lo < auxPrimes[0]

	t1 := aux(0, m)
	r1 := t1.getBuf()
	defer t1.putBuf(r1)
	// Canonical residues mod p are already canonical mod the (much larger)
	// auxiliary primes, so the vectors lift verbatim.
	t1.MulCyclicInto(*r1, a, b)

	f := c.f
	if onePrime {
		for k := 0; k < convLen; k++ {
			i := k % c.n
			dst[i] = f.Add(dst[i], f.Reduce((*r1)[k]))
		}
		return
	}
	t2 := aux(1, m)
	r2 := t2.getBuf()
	defer t2.putBuf(r2)
	t2.MulCyclicInto(*r2, a, b)
	f2 := t2.f
	for k := 0; k < convLen; k++ {
		// CRT lift: c = v1 + q1·t with t = (v2 - v1)·q1^{-1} mod q2; c is
		// the exact integer coefficient, < q1·q2 < 2^124.
		v1 := (*r1)[k]
		t := f2.MRed(f2.Sub((*r2)[k], f2.Reduce(v1)), c.q2InvM)
		chi, clo := bits.Mul64(auxPrimes[0], t)
		clo, carry := bits.Add64(clo, v1, 0)
		chi += carry
		// Reduce the 128-bit value mod p: 2^64 ≡ f.one (mod p).
		v := f.Add(f.Mul(f.Reduce(chi), f.one), f.Reduce(clo))
		i := k % c.n
		dst[i] = f.Add(dst[i], v)
	}
}
