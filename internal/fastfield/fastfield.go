// Package fastfield is the word-sized fast-path arithmetic engine for
// prime fields whose modulus fits in a single machine word.
//
// Every hot path of the scheme — server-side share evaluation, client
// share regeneration, Horner loops over F_p[x]/(x^{p-1}-1) — reduces to
// scalar arithmetic mod a prime p that, for every deployable parameter
// set, fits comfortably in 62 bits. This package does that arithmetic on
// plain uint64 values with Montgomery reduction built on bits.Mul64,
// avoiding the per-operation allocations of math/big entirely:
//
//   - Elem is a canonical field element in [0, p), represented as uint64.
//   - Mul/Add/Sub/Neg/Inv/Exp are single-word operations; Mul uses
//     bits.Div64 in the plain domain, MRed/MForm expose the Montgomery
//     domain for chained multiplications.
//   - Packed coefficient vectors ([]uint64, ascending degree) carry whole
//     polynomials; EvalMany runs one allocation-free multi-point Horner
//     pass over a polynomial, serving all active query points at once.
//   - RandVec draws a uniform coefficient vector from an io.Reader with
//     the same bit-masked rejection sampling as field.(*Field).Rand, but
//     reading the stream in bulk.
//
// Callers fall back to the math/big path (package field / poly) whenever
// the modulus exceeds MaxModulusBits or the ring is not a prime field
// (ring.IntQuotient coefficients are unbounded integers). New(p) reports
// such moduli as unsupported; the packages ring, sharing and server gate
// on that and keep the exact pre-existing big.Int behavior.
//
// The Montgomery constants and reduction shape follow the widely used
// single-word design (cf. Lattigo's ring package): R = 2^64,
// MRed(a, b·R) = a·b mod p with one Mul64 by the precomputed p^{-1} mod
// 2^64 and a conditional subtraction. Correctness against math/big is
// enforced by the differential tests and the fuzz target in this package.
package fastfield

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"math/bits"
)

// MaxModulusBits is the largest modulus bit length the fast path accepts.
// 62 bits leaves headroom so a Montgomery-reduced product plus one
// canonical summand stays below 2^63 without intermediate reductions.
const MaxModulusBits = 62

// ErrUnsupportedModulus reports a modulus the fast path cannot carry.
var ErrUnsupportedModulus = errors.New("fastfield: modulus not supported by the word-sized fast path")

// Field holds the precomputed constants for F_p arithmetic on uint64
// words. Immutable after New; safe for concurrent use.
type Field struct {
	p    uint64 // the modulus (odd prime, <= MaxModulusBits bits)
	pInv uint64 // p^{-1} mod 2^64, for Montgomery reduction
	r2   uint64 // (2^64)^2 mod p, converts into the Montgomery domain
	one  uint64 // 2^64 mod p: the Montgomery form of 1

	// Rejection-sampling shape, mirroring field.(*Field).Rand: draw
	// sampleBytes big-endian bytes, mask the top byte to the modulus bit
	// length, reject values >= p.
	sampleBytes int
	sampleMask  byte
}

// New precomputes the Montgomery constants for modulus p. It returns
// ErrUnsupportedModulus when p is even, below 3, or wider than
// MaxModulusBits. Primality is the caller's responsibility (package field
// verifies it once at construction); compositeness here would break
// inversion, not reduction.
func New(p uint64) (*Field, error) {
	if p < 3 || p&1 == 0 || bits.Len64(p) > MaxModulusBits {
		return nil, fmt.Errorf("%w: %d", ErrUnsupportedModulus, p)
	}
	// Newton iteration for p^{-1} mod 2^64: each step doubles the number
	// of correct low bits; p odd gives 3 correct bits to start.
	pInv := p
	for i := 0; i < 5; i++ {
		pInv *= 2 - p*pInv
	}
	// 2^64 mod p via one 128/64 division of 2^64 = (1, 0).
	_, one := bits.Div64(1%p, 0, p)
	// R^2 mod p = (2^64 mod p)^2 mod p.
	hi, lo := bits.Mul64(one, one)
	_, r2 := bits.Div64(hi, lo, p)

	nbits := bits.Len64(p)
	nbytes := (nbits + 7) / 8
	excess := uint(nbytes*8 - nbits)
	return &Field{
		p:           p,
		pInv:        pInv,
		r2:          r2,
		one:         one,
		sampleBytes: nbytes,
		sampleMask:  byte(0xff >> excess),
	}, nil
}

// Supported reports whether modulus p is carried by the fast path.
func Supported(p *big.Int) bool {
	return p != nil && p.IsUint64() && p.Sign() > 0 &&
		p.BitLen() <= MaxModulusBits && p.Bit(0) == 1 && p.Uint64() >= 3
}

// P returns the modulus.
func (f *Field) P() uint64 { return f.p }

// Reduce maps an arbitrary uint64 into [0, p).
func (f *Field) Reduce(a uint64) uint64 {
	if a < f.p {
		return a
	}
	return a % f.p
}

// ReduceBig maps an arbitrary big integer into [0, p), without assuming
// it fits a word.
func (f *Field) ReduceBig(a *big.Int) uint64 {
	if a.Sign() >= 0 && a.IsUint64() {
		return f.Reduce(a.Uint64())
	}
	var t big.Int
	return t.Mod(a, t.SetUint64(f.p)).Uint64()
}

// Add returns a + b mod p for canonical a, b.
func (f *Field) Add(a, b uint64) uint64 {
	r := a + b // no overflow: a, b < 2^62
	if r >= f.p {
		r -= f.p
	}
	return r
}

// Sub returns a - b mod p for canonical a, b.
func (f *Field) Sub(a, b uint64) uint64 {
	r := a + f.p - b
	if r >= f.p {
		r -= f.p
	}
	return r
}

// Neg returns -a mod p for canonical a.
func (f *Field) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return f.p - a
}

// Mul returns a·b mod p for canonical a, b, via a 128-bit product and one
// hardware division (no domain conversion — use MRed/MForm in loops).
func (f *Field) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, r := bits.Div64(hi, lo, f.p)
	return r
}

// MForm converts a canonical element into the Montgomery domain: a·R mod p.
func (f *Field) MForm(a uint64) uint64 {
	return f.MRed(a, f.r2)
}

// MRed is the Montgomery product a·b·R^{-1} mod p for a, b < p. With b in
// Montgomery form (b = x·R mod p) the result is the plain product a·x mod
// p — the shape every inner loop here uses.
func (f *Field) MRed(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	h, _ := bits.Mul64(lo*f.pInv, f.p)
	r := hi - h + f.p
	if r >= f.p {
		r -= f.p
	}
	return r
}

// Exp returns a^e mod p for canonical a (0^0 = 1).
func (f *Field) Exp(a uint64, e uint64) uint64 {
	acc := f.one // Montgomery form of 1
	base := f.MForm(a)
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			acc = f.MRed(acc, base)
		}
		base = f.MRed(base, base)
	}
	return f.MRed(acc, 1) // out of the Montgomery domain
}

// Inv returns a^{-1} mod p via Fermat's little theorem; ok is false for
// a ≡ 0.
func (f *Field) Inv(a uint64) (uint64, bool) {
	if a == 0 {
		return 0, false
	}
	return f.Exp(a, f.p-2), true
}

// BatchInv writes the inverse of every src element into dst (which may be
// src itself) using Montgomery's batch-inversion trick: one Inv plus 3(n-1)
// multiplications. Zero elements map to zero. dst must have len(src).
func (f *Field) BatchInv(dst, src []uint64) {
	if len(dst) != len(src) {
		panic("fastfield: BatchInv length mismatch")
	}
	if len(src) == 0 {
		return
	}
	// Prefix products over the non-zero elements.
	prefix := make([]uint64, len(src))
	acc := f.one // Montgomery form of the running product
	for i, v := range src {
		prefix[i] = acc
		if v != 0 {
			acc = f.MRed(acc, f.MForm(v))
		}
	}
	// acc is M(prod); invert once.
	inv, ok := f.Inv(f.MRed(acc, 1))
	if !ok {
		// Product is zero only if p divides it — impossible with zeros
		// skipped, unless src is all zeros.
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	accInv := f.MForm(inv)
	for i := len(src) - 1; i >= 0; i-- {
		v := src[i]
		if v == 0 {
			dst[i] = 0
			continue
		}
		// dst[i] = prod_{j<i, src[j]!=0} src[j] · (prod_{j<=i})^{-1} = src[i]^{-1}.
		dst[i] = f.MRed(f.MRed(accInv, prefix[i]), 1)
		accInv = f.MRed(accInv, f.MForm(v))
	}
}

// ReduceVec reduces every element of src into [0, p), writing into dst
// (which may be src). dst must have len(src).
func (f *Field) ReduceVec(dst, src []uint64) {
	for i, v := range src {
		dst[i] = f.Reduce(v)
	}
}

// MFormVec converts a canonical vector into the Montgomery domain.
func (f *Field) MFormVec(dst, src []uint64) {
	for i, v := range src {
		dst[i] = f.MRed(v, f.r2)
	}
}

// ScalarMulAddVec accumulates dst[i] += src[i]·c for a scalar c given in
// Montgomery form (see MForm) — the axpy step of vectorized Shamir share
// generation. dst and src must have equal length; dst may alias src.
func (f *Field) ScalarMulAddVec(dst, src []uint64, cM uint64) {
	if len(dst) != len(src) {
		panic("fastfield: ScalarMulAddVec length mismatch")
	}
	for i, v := range src {
		dst[i] = f.Add(dst[i], f.MRed(v, cM))
	}
}

// Eval evaluates the packed polynomial coeffs (ascending degree,
// canonical coefficients) at the canonical point x by Horner's rule.
func (f *Field) Eval(coeffs []uint64, x uint64) uint64 {
	xm := f.MForm(x)
	var acc uint64
	for i := len(coeffs) - 1; i >= 0; i-- {
		// MRed(acc, xm) < p and coeffs[i] < p: the sum stays below 2^63.
		acc = f.MRed(acc, xm) + coeffs[i]
		if acc >= f.p {
			acc -= f.p
		}
	}
	return acc
}

// EvalMany evaluates the packed polynomial coeffs at every point of
// xsMont (each in Montgomery form, see MFormVec), writing the plain-domain
// values into dst. One pass over the polynomial serves all points; the
// call performs no allocations. dst must have len(xsMont).
func (f *Field) EvalMany(coeffs []uint64, xsMont []uint64, dst []uint64) {
	if len(dst) != len(xsMont) {
		panic("fastfield: EvalMany length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	p := f.p
	for i := len(coeffs) - 1; i >= 0; i-- {
		c := coeffs[i]
		for j, xm := range xsMont {
			acc := f.MRed(dst[j], xm) + c
			if acc >= p {
				acc -= p
			}
			dst[j] = acc
		}
	}
}

// RandVec fills dst with independent uniform elements of [0, p), reading
// entropy (or DRBG output) from r. The per-element distribution is the
// same bit-masked rejection sampling as field.(*Field).Rand, but the
// stream is consumed in bulk reads rather than one tiny read per draw —
// the dominant cost of seed-only share regeneration.
func (f *Field) RandVec(r io.Reader, dst []uint64) error {
	if len(dst) == 0 {
		return nil
	}
	// First bulk read: one sample per element, the common case. Rejected
	// samples (p just above a power of two rejects up to half the draws)
	// refill from chunked reads.
	buf := make([]byte, len(dst)*f.sampleBytes)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("fastfield: rand: %w", err)
	}
	refill := func() error {
		n := 64 * f.sampleBytes
		if want := len(dst) * f.sampleBytes; n > want {
			n = want
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("fastfield: rand: %w", err)
		}
		return nil
	}
	off := 0
	for i := range dst {
		for {
			if off+f.sampleBytes > len(buf) {
				if err := refill(); err != nil {
					return err
				}
				off = 0
			}
			v := uint64(buf[off] & f.sampleMask)
			for _, b := range buf[off+1 : off+f.sampleBytes] {
				v = v<<8 | uint64(b)
			}
			off += f.sampleBytes
			if v < f.p {
				dst[i] = v
				break
			}
		}
	}
	return nil
}
