package fastfield

import (
	"math/rand"
	"testing"
)

// The pair below calibrates the schoolbook→NTT cutover in
// ring.nttCutoverCost: BenchmarkNTT256Mul is one full-width cyclic product
// through the mixed-radix transform at the F_257 ring's native length,
// BenchmarkSchoolbook256Mul the same product through the zero-skipping
// double loop the ring's schoolbook path runs. Their ratio (transform cost
// in schoolbook-pair equivalents) is what the cutover formula encodes —
// re-measure here before touching the constant.

func benchVecs(p uint64, n int) (a, b []uint64) {
	rng := rand.New(rand.NewSource(int64(p)))
	a = make([]uint64, n)
	b = make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % p
		b[i] = rng.Uint64() % p
	}
	return a, b
}

func BenchmarkNTT256Mul(b *testing.B) {
	f, err := New(257)
	if err != nil {
		b.Fatal(err)
	}
	t, err := NewNTT(f, 256)
	if err != nil {
		b.Fatal(err)
	}
	va, vb := benchVecs(257, 256)
	dst := make([]uint64, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.MulCyclicInto(dst, va, vb)
	}
}

func BenchmarkSchoolbook256Mul(b *testing.B) {
	f, err := New(257)
	if err != nil {
		b.Fatal(err)
	}
	va, vb := benchVecs(257, 256)
	bm := make([]uint64, 256)
	dst := make([]uint64, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		for i := range dst {
			dst[i] = 0
		}
		f.MFormVec(bm, vb)
		for i, ai := range va {
			if ai == 0 {
				continue
			}
			for j, bj := range bm {
				k := i + j
				if k >= 256 {
					k -= 256
				}
				dst[k] = f.Add(dst[k], f.MRed(ai, bj))
			}
		}
	}
}

// BenchmarkConvFallback226Mul times the auxiliary-prime convolution engine
// at the F_227 ring's length (226 = 2·113 is not MaxRadix-smooth) — the
// path non-smooth rings pay instead of the in-field transform above.
func BenchmarkConvFallback226Mul(b *testing.B) {
	f, err := New(227)
	if err != nil {
		b.Fatal(err)
	}
	c := NewCyclicConv(f, 226)
	va, vb := benchVecs(227, 226)
	dst := make([]uint64, 226)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MulCyclicInto(dst, va, vb)
	}
}
