package fastfield

import (
	"crypto/sha256"
	"math/big"
	"math/rand"
	"testing"

	"sssearch/internal/drbg"
)

// testPrimes spans the deployable range: tiny paper primes, the defaults
// used by benchmarks, a Mersenne prime near the top, and the largest
// prime below 2^62.
var testPrimes = []uint64{
	5, 7, 257, 1009, 65537,
	(1 << 61) - 1,       // Mersenne
	4611686018427387847, // largest prime < 2^62
}

func TestTestPrimesArePrime(t *testing.T) {
	for _, p := range testPrimes {
		if !new(big.Int).SetUint64(p).ProbablyPrime(64) {
			t.Fatalf("test prime %d is not prime", p)
		}
	}
}

// edgeValues returns the boundary elements every op is checked at.
func edgeValues(p uint64) []uint64 {
	vals := []uint64{0, 1, p - 1}
	if p > 2 {
		vals = append(vals, p-2, p/2)
	}
	return vals
}

func TestNewRejectsUnsupported(t *testing.T) {
	for _, p := range []uint64{0, 1, 2, 4, 1 << 62, 1<<62 + 1, ^uint64(0)} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) accepted an unsupported modulus", p)
		}
	}
	if Supported(new(big.Int).Lsh(big.NewInt(1), 62)) {
		t.Error("Supported accepted a 63-bit modulus")
	}
	if !Supported(new(big.Int).SetUint64(257)) {
		t.Error("Supported rejected 257")
	}
}

func TestScalarOpsDifferential(t *testing.T) {
	for _, p := range testPrimes {
		f, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		bp := new(big.Int).SetUint64(p)
		rng := rand.New(rand.NewSource(int64(p)))
		var cases []uint64
		cases = append(cases, edgeValues(p)...)
		for i := 0; i < 40; i++ {
			cases = append(cases, rng.Uint64()%p)
		}
		mod := func(x *big.Int) uint64 { return new(big.Int).Mod(x, bp).Uint64() }
		for _, a := range cases {
			ba := new(big.Int).SetUint64(a)
			if got, want := f.Neg(a), mod(new(big.Int).Neg(ba)); got != want {
				t.Fatalf("p=%d Neg(%d) = %d, want %d", p, a, got, want)
			}
			if inv, ok := f.Inv(a); ok != (a != 0) {
				t.Fatalf("p=%d Inv(%d) ok=%v", p, a, ok)
			} else if ok {
				if got := f.Mul(a, inv); got != 1 {
					t.Fatalf("p=%d Inv(%d)=%d does not invert (a*inv=%d)", p, a, inv, got)
				}
			}
			e := rng.Uint64() % 1000
			wantExp := new(big.Int).Exp(ba, new(big.Int).SetUint64(e), bp).Uint64()
			if got := f.Exp(a, e); got != wantExp {
				t.Fatalf("p=%d Exp(%d,%d) = %d, want %d", p, a, e, got, wantExp)
			}
			for _, b := range cases {
				bb := new(big.Int).SetUint64(b)
				if got, want := f.Add(a, b), mod(new(big.Int).Add(ba, bb)); got != want {
					t.Fatalf("p=%d Add(%d,%d) = %d, want %d", p, a, b, got, want)
				}
				if got, want := f.Sub(a, b), mod(new(big.Int).Sub(ba, bb)); got != want {
					t.Fatalf("p=%d Sub(%d,%d) = %d, want %d", p, a, b, got, want)
				}
				wantMul := mod(new(big.Int).Mul(ba, bb))
				if got := f.Mul(a, b); got != wantMul {
					t.Fatalf("p=%d Mul(%d,%d) = %d, want %d", p, a, b, got, wantMul)
				}
				if got := f.MRed(a, f.MForm(b)); got != wantMul {
					t.Fatalf("p=%d MRed(%d,MForm(%d)) = %d, want %d", p, a, b, got, wantMul)
				}
			}
		}
	}
}

func TestBatchInv(t *testing.T) {
	for _, p := range testPrimes {
		f, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		src := make([]uint64, 33)
		for i := range src {
			src[i] = rng.Uint64() % p
		}
		src[0], src[13] = 0, 0 // zeros map to zero
		dst := make([]uint64, len(src))
		f.BatchInv(dst, src)
		for i, v := range src {
			if v == 0 {
				if dst[i] != 0 {
					t.Fatalf("p=%d BatchInv zero slot %d = %d", p, i, dst[i])
				}
				continue
			}
			inv, _ := f.Inv(v)
			if dst[i] != inv {
				t.Fatalf("p=%d BatchInv[%d] = %d, want %d", p, i, dst[i], inv)
			}
		}
		// In-place and all-zero variants.
		f.BatchInv(src, src)
		if src[1] != dst[1] {
			t.Fatalf("p=%d in-place BatchInv diverged", p)
		}
		zeros := make([]uint64, 5)
		f.BatchInv(zeros, zeros)
		for _, v := range zeros {
			if v != 0 {
				t.Fatalf("p=%d BatchInv of zeros produced %d", p, v)
			}
		}
	}
}

func TestEvalDifferential(t *testing.T) {
	for _, p := range testPrimes {
		f, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		bp := new(big.Int).SetUint64(p)
		rng := rand.New(rand.NewSource(int64(p) ^ 0x5ee))
		for _, n := range []int{0, 1, 2, 17, 64} {
			coeffs := make([]uint64, n)
			for i := range coeffs {
				coeffs[i] = rng.Uint64() % p
			}
			points := append(edgeValues(p), rng.Uint64()%p, rng.Uint64()%p)
			// Reference Horner over big.Int.
			ref := func(x uint64) uint64 {
				acc := new(big.Int)
				bx := new(big.Int).SetUint64(x)
				for i := n - 1; i >= 0; i-- {
					acc.Mul(acc, bx)
					acc.Add(acc, new(big.Int).SetUint64(coeffs[i]))
					acc.Mod(acc, bp)
				}
				return acc.Uint64()
			}
			xsM := make([]uint64, len(points))
			f.MFormVec(xsM, points)
			dst := make([]uint64, len(points))
			f.EvalMany(coeffs, xsM, dst)
			for j, x := range points {
				want := ref(x)
				if got := f.Eval(coeffs, x); got != want {
					t.Fatalf("p=%d n=%d Eval(x=%d) = %d, want %d", p, n, x, got, want)
				}
				if dst[j] != want {
					t.Fatalf("p=%d n=%d EvalMany(x=%d) = %d, want %d", p, n, x, dst[j], want)
				}
			}
		}
	}
}

func TestEvalManyAllocationFree(t *testing.T) {
	f, err := New(257)
	if err != nil {
		t.Fatal(err)
	}
	coeffs := make([]uint64, 256)
	for i := range coeffs {
		coeffs[i] = uint64(i) % 257
	}
	xsM := make([]uint64, 4)
	f.MFormVec(xsM, []uint64{2, 3, 5, 7})
	dst := make([]uint64, 4)
	avg := testing.AllocsPerRun(100, func() { f.EvalMany(coeffs, xsM, dst) })
	if avg != 0 {
		t.Fatalf("EvalMany allocates %v times per run, want 0", avg)
	}
}

// TestRandVecDistribution checks RandVec draws the same distribution as
// field.(*Field).Rand: uniform canonical elements, bit-masked rejection.
func TestRandVecDistribution(t *testing.T) {
	const p = 257
	f, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("randvec")))
	g := drbg.New(seed, []byte("dist"))
	dst := make([]uint64, 20000)
	if err := f.RandVec(g, dst); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, p)
	for _, v := range dst {
		if v >= p {
			t.Fatalf("RandVec produced out-of-range %d", v)
		}
		counts[v]++
	}
	// Loose uniformity check: every residue appears, no residue dominates.
	for v, c := range counts {
		if c == 0 {
			t.Fatalf("residue %d never drawn in %d samples", v, len(dst))
		}
		if c > 4*len(dst)/int(p) {
			t.Fatalf("residue %d drawn %d times (expected ~%d)", v, c, len(dst)/int(p))
		}
	}
}

func TestRandVecDeterministic(t *testing.T) {
	f, err := New(1009)
	if err != nil {
		t.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("det")))
	a := make([]uint64, 100)
	b := make([]uint64, 100)
	if err := f.RandVec(drbg.New(seed, []byte("x")), a); err != nil {
		t.Fatal(err)
	}
	if err := f.RandVec(drbg.New(seed, []byte("x")), b); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("RandVec not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func BenchmarkMRed(b *testing.B) {
	f, _ := New((1 << 61) - 1)
	x := f.MForm(123456789)
	acc := uint64(987654321)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = f.MRed(acc, x)
	}
	_ = acc
}

func BenchmarkEvalMany256x4(b *testing.B) {
	f, _ := New(257)
	coeffs := make([]uint64, 256)
	for i := range coeffs {
		coeffs[i] = uint64(i) % 257
	}
	xsM := make([]uint64, 4)
	f.MFormVec(xsM, []uint64{2, 3, 5, 7})
	dst := make([]uint64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.EvalMany(coeffs, xsM, dst)
	}
}
