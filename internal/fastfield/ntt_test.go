package fastfield

import (
	"math/big"
	"math/rand"
	"sync"
	"testing"
)

// naiveDFT is the O(n^2) reference transform: dst[k] = Σ_j src[j]·ω^{jk}.
func naiveDFT(f *Field, w uint64, src []uint64, inverse bool) []uint64 {
	n := len(src)
	if inverse {
		winv, _ := f.Inv(w)
		w = winv
	}
	dst := make([]uint64, n)
	for k := 0; k < n; k++ {
		var acc uint64
		for j := 0; j < n; j++ {
			acc = f.Add(acc, f.Mul(src[j], f.Exp(w, uint64(j*k%n))))
		}
		dst[k] = acc
	}
	if inverse {
		nInv, _ := f.Inv(f.Reduce(uint64(n)))
		for k := range dst {
			dst[k] = f.Mul(dst[k], nInv)
		}
	}
	return dst
}

// naiveCyclicMul is the schoolbook product in F_p[x]/(x^n - 1).
func naiveCyclicMul(f *Field, n int, a, b []uint64) []uint64 {
	out := make([]uint64, n)
	for i, ai := range a {
		for j, bj := range b {
			k := (i + j) % n
			out[k] = f.Add(out[k], f.Mul(ai, bj))
		}
	}
	return out
}

func randVec(rng *rand.Rand, f *Field, n int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = rng.Uint64() % f.p
	}
	return v
}

// testPrimes: smooth p-1 of several radix shapes. 257→2^8, 97→2^5·3,
// 31→2·3·5, 211→2·3·5·7, 4099→2·3·683 is NOT smooth (683 > MaxRadix).
var smoothPrimes = []uint64{31, 97, 211, 257}

func TestNTTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range smoothPrimes {
		f, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		n := int(p - 1)
		ntt, err := NewNTT(f, n)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		// Recover ω (plain domain) from the Montgomery table for the naive
		// reference.
		w := f.MRed(ntt.tab[1], 1)
		src := randVec(rng, f, n)
		got := make([]uint64, n)
		ntt.Transform(got, src, false)
		want := naiveDFT(f, w, src, false)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d forward[%d]: got %d want %d", p, i, got[i], want[i])
			}
		}
		inv := make([]uint64, n)
		ntt.Transform(inv, got, true)
		for i := range src {
			if inv[i] != src[i] {
				t.Fatalf("p=%d roundtrip[%d]: got %d want %d", p, i, inv[i], src[i])
			}
		}
	}
}

func TestNTTMulCyclicMatchesSchoolbook(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, p := range smoothPrimes {
		f, _ := New(p)
		n := int(p - 1)
		ntt, err := NewNTT(f, n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			la, lb := 1+rng.Intn(n), 1+rng.Intn(n)
			a, b := randVec(rng, f, la), randVec(rng, f, lb)
			got := make([]uint64, n)
			ntt.MulCyclicInto(got, a, b)
			want := naiveCyclicMul(f, n, a, b)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("p=%d trial=%d coeff %d: got %d want %d", p, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestNTTProdCyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f, _ := New(97)
	n := 96
	ntt, err := NewNTT(f, n)
	if err != nil {
		t.Fatal(err)
	}
	factors := make([][]uint64, 5)
	want := []uint64{1}
	for i := range factors {
		factors[i] = randVec(rng, f, 1+rng.Intn(20))
		want = naiveCyclicMul(f, n, want, factors[i])
	}
	got := make([]uint64, n)
	ntt.ProdCyclicInto(got, factors...)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coeff %d: got %d want %d", i, got[i], want[i])
		}
	}
	// Empty product is the ring's one.
	ntt.ProdCyclicInto(got, [][]uint64{}...)
	if got[0] != 1 {
		t.Fatalf("empty product: got %d want 1", got[0])
	}
	for _, v := range got[1:] {
		if v != 0 {
			t.Fatal("empty product has nonzero tail")
		}
	}
}

func TestNTTNotSmooth(t *testing.T) {
	// 226 = 2·113: 113 > MaxRadix.
	f, _ := New(227)
	if _, err := NewNTT(f, 226); err == nil {
		t.Fatal("expected ErrNotSmooth for n=226")
	}
}

func TestCyclicConvMatchesSchoolbook(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// 227-1 = 2·113 and 1283-1 = 2·641: both hit the fallback.
	for _, p := range []uint64{227, 1283} {
		f, _ := New(p)
		n := int(p - 1)
		conv := NewCyclicConv(f, n)
		for trial := 0; trial < 10; trial++ {
			la, lb := 1+rng.Intn(n), 1+rng.Intn(n)
			a, b := randVec(rng, f, la), randVec(rng, f, lb)
			got := make([]uint64, n)
			conv.MulCyclicInto(got, a, b)
			want := naiveCyclicMul(f, n, a, b)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("p=%d trial=%d coeff %d: got %d want %d", p, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCyclicConvCRTPath forces the two-prime CRT combine: a modulus wide
// enough that min(la,lb)·(p-1)^2 overflows the first auxiliary prime.
// (p-1)^2 ≈ 2^42 at p ≈ 2^21, so length ≥ 2^20 crosses q1 ≈ 2^62. A full
// malicious-size case would be slow; instead check the bound arithmetic by
// shrinking through the internal path with a big.Int cross-check on a
// moderate case that still satisfies onePrime=false is exercised in
// TestAuxPrimes below via direct bound math.
func TestCyclicConvCRTPath(t *testing.T) {
	// 1048573 is prime; 1048572 = 2^2·3·87381 = 2^2·3·3·29127... use
	// factorization-independent fallback: force CyclicConv regardless of
	// smoothness — the fallback works for any n.
	const p = 1048573
	f, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	// n chosen so minLen·(p-1)^2 > q1: (p-1)^2 ≈ 2^40, so minLen ≥ 2^22
	// would be needed — too slow for a unit test. Instead verify the CRT
	// lift directly on a small synthetic convolution by lowering the
	// single-prime bound: compute with both primes by hand.
	n := 1 << 12
	conv := NewCyclicConv(f, n)
	rng := rand.New(rand.NewSource(11))
	a, b := randVec(rng, f, 100), randVec(rng, f, 100)
	got := make([]uint64, n)
	// Force the two-prime path by pretending the bound does not fit.
	conv.pm1sq = 1 << 63
	conv.MulCyclicInto(got, a, b)
	want := naiveCyclicMul(f, n, a, b)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coeff %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestAuxPrimes(t *testing.T) {
	for _, q := range auxPrimes {
		bq := new(big.Int).SetUint64(q)
		if !bq.ProbablyPrime(64) {
			t.Fatalf("auxiliary modulus %d is not prime", q)
		}
		// Transform sizes reach 2^23 (linear convolution of two length-2^22
		// vectors); both primes must carry at least that adicity.
		if (q-1)%(1<<24) != 0 {
			t.Fatalf("auxiliary modulus %d lacks 2^24 adicity", q)
		}
	}
	if auxPrimes[0] <= auxPrimes[1] {
		t.Fatal("auxPrimes must be descending (bound check uses auxPrimes[0])")
	}
}

// TestNTTConcurrentUse hammers one shared NTT from many goroutines — the
// pooled-scratch path must be race-free (run under -race in CI).
func TestNTTConcurrentUse(t *testing.T) {
	f, _ := New(257)
	ntt, err := NewNTT(f, 256)
	if err != nil {
		t.Fatal(err)
	}
	a := randVec(rand.New(rand.NewSource(12)), f, 200)
	b := randVec(rand.New(rand.NewSource(13)), f, 150)
	want := naiveCyclicMul(f, 256, a, b)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := make([]uint64, 256)
			for i := 0; i < 50; i++ {
				ntt.MulCyclicInto(got, a, b)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("concurrent mul diverged at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}
