package fastfield

import (
	"math/big"
	"testing"
)

// FuzzOpsVsBigInt drives every scalar operation of the fast path against
// the math/big reference. Any divergence — for any modulus in the
// supported table, any pair of words — is a bug in the Montgomery
// constants or the reduction shape.
func FuzzOpsVsBigInt(f *testing.F) {
	f.Add(uint8(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint8(2), uint64(256), uint64(1), uint64(255))
	f.Add(uint8(5), uint64(1)<<61, uint64(1)<<60, uint64(3))
	f.Add(uint8(6), ^uint64(0), ^uint64(0)>>1, uint64(12345))
	f.Fuzz(func(t *testing.T, pSel uint8, a, b, e uint64) {
		p := testPrimes[int(pSel)%len(testPrimes)]
		ff, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		a %= p
		b %= p
		bp := new(big.Int).SetUint64(p)
		ba := new(big.Int).SetUint64(a)
		bb := new(big.Int).SetUint64(b)
		mod := func(x *big.Int) uint64 { return new(big.Int).Mod(x, bp).Uint64() }

		if got, want := ff.Add(a, b), mod(new(big.Int).Add(ba, bb)); got != want {
			t.Fatalf("p=%d Add(%d,%d)=%d want %d", p, a, b, got, want)
		}
		if got, want := ff.Sub(a, b), mod(new(big.Int).Sub(ba, bb)); got != want {
			t.Fatalf("p=%d Sub(%d,%d)=%d want %d", p, a, b, got, want)
		}
		wantMul := mod(new(big.Int).Mul(ba, bb))
		if got := ff.Mul(a, b); got != wantMul {
			t.Fatalf("p=%d Mul(%d,%d)=%d want %d", p, a, b, got, wantMul)
		}
		if got := ff.MRed(a, ff.MForm(b)); got != wantMul {
			t.Fatalf("p=%d MRed(%d,MForm(%d))=%d want %d", p, a, b, got, wantMul)
		}
		eSmall := e % 4096
		wantExp := new(big.Int).Exp(ba, new(big.Int).SetUint64(eSmall), bp).Uint64()
		if got := ff.Exp(a, eSmall); got != wantExp {
			t.Fatalf("p=%d Exp(%d,%d)=%d want %d", p, a, eSmall, got, wantExp)
		}
		if inv, ok := ff.Inv(a); ok {
			if ff.Mul(a, inv) != 1 {
				t.Fatalf("p=%d Inv(%d)=%d is not an inverse", p, a, inv)
			}
		} else if a != 0 {
			t.Fatalf("p=%d Inv(%d) refused a non-zero element", p, a)
		}
		// A three-coefficient Horner closes the loop on Eval.
		coeffs := []uint64{a, b, ff.Add(a, 1)}
		ref := new(big.Int)
		bx := bb
		for i := len(coeffs) - 1; i >= 0; i-- {
			ref.Mul(ref, bx)
			ref.Add(ref, new(big.Int).SetUint64(coeffs[i]))
			ref.Mod(ref, bp)
		}
		if got := ff.Eval(coeffs, b); got != ref.Uint64() {
			t.Fatalf("p=%d Eval=%d want %d", p, got, ref.Uint64())
		}
	})
}
