package fastfield

import (
	"errors"
	"fmt"
)

// Lagrange is a precomputed Lagrange-interpolation-at-zero basis over a
// fixed set of share points: λ_j = ∏_{i≠j} x_i/(x_i − x_j) mod p, kept in
// the Montgomery domain so combining a share vector costs one MRed and
// one modular add per share.
//
// Reconstruction at zero is the k-of-n combiner of the paper's §4.2
// multi-server extension: f(0) = Σ_j λ_j·y_j for any k shares (x_j, y_j).
// Because the λ_j depend only on the (xs, k) set — not on the shared
// values — one basis serves every node, every query point and every
// polynomial coefficient of a combine batch. Precompute once per answer
// set, then batch-combine whole value/coefficient vectors with CombineVec.
type Lagrange struct {
	f   *Field
	lam []uint64 // λ_j in the Montgomery domain
}

// LagrangeAtZero precomputes the interpolation-at-zero basis for the
// share points xs. Points are reduced mod p and must be nonzero and
// pairwise distinct after reduction (a zero point would place a share at
// the secret itself; colliding points make the system singular).
func (f *Field) LagrangeAtZero(xs []uint64) (*Lagrange, error) {
	if len(xs) == 0 {
		return nil, errors.New("fastfield: empty share point set")
	}
	xr := make([]uint64, len(xs))
	for i, x := range xs {
		v := f.Reduce(x)
		if v == 0 {
			return nil, fmt.Errorf("fastfield: share point %d ≡ 0 (mod %d)", x, f.p)
		}
		xr[i] = v
	}
	// nums[j] = ∏_{i≠j} x_i and dens[j] = ∏_{i≠j} (x_i − x_j); one batch
	// inversion covers every denominator.
	nums := make([]uint64, len(xr))
	dens := make([]uint64, len(xr))
	for j, xj := range xr {
		num, den := f.one, f.one // Montgomery form of 1
		for i, xi := range xr {
			if i == j {
				continue
			}
			d := f.Sub(xi, xj)
			if d == 0 {
				return nil, fmt.Errorf("fastfield: share points %d and %d coincide (mod %d)", xs[j], xs[i], f.p)
			}
			num = f.MRed(num, f.MForm(xi))
			den = f.MRed(den, f.MForm(d))
		}
		nums[j] = f.MRed(num, 1)
		dens[j] = f.MRed(den, 1)
	}
	f.BatchInv(dens, dens)
	lam := make([]uint64, len(xr))
	for j := range lam {
		lam[j] = f.MForm(f.Mul(nums[j], dens[j]))
	}
	return &Lagrange{f: f, lam: lam}, nil
}

// K returns the number of share points the basis was built over.
func (l *Lagrange) K() int { return len(l.lam) }

// Combine returns Σ_j λ_j·ys[j] mod p — the value at zero of the unique
// degree-<k polynomial through the shares. ys must align with the xs the
// basis was built from; values need not be canonical (any uint64 is
// reduced correctly by the Montgomery product).
func (l *Lagrange) Combine(ys []uint64) uint64 {
	if len(ys) != len(l.lam) {
		panic("fastfield: Combine share count mismatch")
	}
	var acc uint64
	for j, y := range ys {
		acc = l.f.Add(acc, l.f.MRed(y, l.lam[j]))
	}
	return acc
}

// CombineVec batch-combines whole share vectors: dst[i] = Σ_j
// λ_j·rows[j][i]. rows[j] is the j-th share point's value vector (node
// evaluations across query points, or polynomial coefficients); rows
// shorter than dst are zero-padded on the right, so coefficient vectors
// of differing trimmed lengths combine directly. One Montgomery pass over
// the rows, no allocations. Every row must fit dst.
func (l *Lagrange) CombineVec(dst []uint64, rows [][]uint64) {
	if len(rows) != len(l.lam) {
		panic("fastfield: CombineVec share count mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for j, row := range rows {
		if len(row) > len(dst) {
			panic("fastfield: CombineVec row longer than destination")
		}
		lam := l.lam[j]
		for i, v := range row {
			dst[i] = l.f.Add(dst[i], l.f.MRed(v, lam))
		}
	}
}
