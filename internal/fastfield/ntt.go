package fastfield

import (
	"errors"
	"fmt"
	"sync"
)

// This file implements the number-theoretic transform behind the packed
// polynomial multiply of ring.FpCyclotomic. The quotient F_p[x]/(x^{p-1}-1)
// is cyclic convolution of length n = p-1, and F_p^* is cyclic of exactly
// that order, so F_p always contains a primitive n-th root of unity ω (any
// generator of F_p^*): the length-n DFT over F_p itself diagonalizes the
// ring product. When n factors into small primes the transform runs as a
// mixed-radix Cooley-Tukey decimation in O(n log n) Montgomery operations;
// when n has a large prime factor the convolution fallback in conv.go takes
// over (see there). Schoolbook multiplication remains the right choice for
// short products — the cutover lives in ring.MulPacked, not here.
//
// Twiddle layout: one table tab[j] = ω^j (Montgomery form, j < n) serves
// both directions — the inverse transform indexes it at n-j. Tables are
// built once in NewNTT, immutable afterwards, and shared read-only across
// any number of concurrent transforms; scratch vectors come from an
// internal pool so steady-state multiplies do not allocate.

// MaxRadix is the largest prime factor of the transform length the
// mixed-radix path accepts. Lengths with a larger factor return
// ErrNotSmooth from NewNTT (callers fall back to the convolution engine).
// 61 keeps the generic-radix butterfly's gather buffer on the stack.
const MaxRadix = 61

// ErrNotSmooth reports a transform length whose largest prime factor
// exceeds MaxRadix.
var ErrNotSmooth = errors.New("fastfield: transform length not smooth enough for the mixed-radix NTT")

// NTT is a cached number-theoretic transform of fixed length n over F_p.
// Immutable after NewNTT; safe for concurrent use.
type NTT struct {
	f *Field
	n int
	// tab[j] = ω^j in Montgomery form for a fixed primitive n-th root of
	// unity ω. The inverse transform reads ω^{-j} as tab[(n-j) mod n].
	tab []uint64
	// plan is the prime factorization of n in ascending order; the
	// recursion peels radices front to back.
	plan []int
	// nInvM is n^{-1} mod p in Montgomery form — the inverse-transform
	// scaling factor.
	nInvM uint64
	// bufs pools length-n scratch vectors for transforms and products.
	bufs sync.Pool
}

// factorSmooth returns the ascending prime factorization of n, or
// ErrNotSmooth when a prime factor exceeds MaxRadix.
func factorSmooth(n int) ([]int, error) {
	var plan []int
	m := n
	for f := 2; f <= MaxRadix && f*f <= m; f++ {
		for m%f == 0 {
			plan = append(plan, f)
			m /= f
		}
	}
	if m > 1 {
		if m > MaxRadix {
			return nil, fmt.Errorf("%w: %d has prime factor %d", ErrNotSmooth, n, m)
		}
		plan = append(plan, m)
	}
	return plan, nil
}

// rootOfUnity finds an element of exact multiplicative order n in F_p,
// given the prime factors of n. Requires n | p-1 (F_p^* is cyclic, so such
// elements exist exactly then).
func rootOfUnity(f *Field, n int, factors []int) (uint64, error) {
	if n < 1 || (f.p-1)%uint64(n) != 0 {
		return 0, fmt.Errorf("fastfield: no order-%d root of unity mod %d", n, f.p)
	}
	if n == 1 {
		return 1, nil
	}
	exp := (f.p - 1) / uint64(n)
	// Distinct prime factors of n, for the exact-order check.
	var distinct []int
	for i, q := range factors {
		if i == 0 || q != factors[i-1] {
			distinct = append(distinct, q)
		}
	}
search:
	for a := uint64(2); a < f.p; a++ {
		w := f.Exp(a, exp)
		if w == 0 || w == 1 {
			continue
		}
		// ord(w) divides n; it equals n iff w^{n/q} != 1 for every prime
		// q | n.
		for _, q := range distinct {
			if f.Exp(w, uint64(n/q)) == 1 {
				continue search
			}
		}
		return w, nil
	}
	return 0, fmt.Errorf("fastfield: no order-%d root of unity mod %d found", n, f.p)
}

// NewNTT builds the transform tables for length n over f. It returns
// ErrNotSmooth when n has a prime factor above MaxRadix — the caller then
// falls back to NewCyclicConv. Table memory is 8n bytes plus pooled
// scratch; build cost is O(n) Montgomery multiplies plus the root search.
func NewNTT(f *Field, n int) (*NTT, error) {
	if n < 1 {
		return nil, fmt.Errorf("fastfield: invalid NTT length %d", n)
	}
	plan, err := factorSmooth(n)
	if err != nil {
		return nil, err
	}
	w, err := rootOfUnity(f, n, plan)
	if err != nil {
		return nil, err
	}
	tab := make([]uint64, n)
	tab[0] = f.one // Montgomery form of ω^0 = 1
	wM := f.MForm(w)
	for j := 1; j < n; j++ {
		tab[j] = f.MRed(tab[j-1], wM)
	}
	nInv, ok := f.Inv(f.Reduce(uint64(n)))
	if !ok {
		// n = p-1 (or a divisor) is never ≡ 0 mod p.
		return nil, fmt.Errorf("fastfield: transform length %d not invertible mod %d", n, f.p)
	}
	t := &NTT{f: f, n: n, tab: tab, plan: plan, nInvM: f.MForm(nInv)}
	t.bufs.New = func() any { v := make([]uint64, n); return &v }
	return t, nil
}

// N returns the transform length.
func (t *NTT) N() int { return t.n }

// Cost estimates the Montgomery-multiply count of one transform — the
// quantity ring.MulPacked weighs against the schoolbook product when
// picking a path.
func (t *NTT) Cost() int {
	c := 0
	for _, r := range t.plan {
		c += t.n * r
	}
	return c
}

func (t *NTT) getBuf() *[]uint64 { return t.bufs.Get().(*[]uint64) }
func (t *NTT) putBuf(b *[]uint64) {
	t.bufs.Put(b)
}

// Transform computes the length-n DFT (inverse=false) or unscaled inverse
// DFT (inverse=true) of src into dst. src is read with padding: entries
// beyond len(src) count as zero. dst must have length n and must not alias
// src. The inverse transform applies the 1/n scaling, so
// Transform(inverse=true) ∘ Transform(inverse=false) is the identity.
func (t *NTT) Transform(dst, src []uint64, inverse bool) {
	if len(dst) != t.n {
		panic("fastfield: Transform dst length mismatch")
	}
	if len(src) == t.n {
		t.rec(src, 1, dst, t.n, 0, inverse)
	} else {
		pad := t.getBuf()
		defer t.putBuf(pad)
		n := copy(*pad, src)
		for i := n; i < t.n; i++ {
			(*pad)[i] = 0
		}
		t.rec(*pad, 1, dst, t.n, 0, inverse)
	}
	if inverse {
		f := t.f
		for i, v := range dst {
			dst[i] = f.MRed(v, t.nInvM)
		}
	}
}

// rec is the recursive mixed-radix Cooley-Tukey step: it computes the
// size-sz DFT of src[0], src[stride], src[2·stride], … into dst[0:sz],
// peeling radix plan[pi]. All twiddle exponents are maintained
// incrementally (add the step, conditionally subtract n) — the butterfly
// loops carry no integer division.
func (t *NTT) rec(src []uint64, stride int, dst []uint64, sz, pi int, inv bool) {
	if sz == 1 {
		dst[0] = src[0]
		return
	}
	r := t.plan[pi]
	m := sz / r
	for j := 0; j < r; j++ {
		t.rec(src[j*stride:], stride*r, dst[j*m:], m, pi+1, inv)
	}
	f := t.f
	step := t.n / sz // global exponent scale: ω_sz = ω^step
	if r == 2 {
		// Radix-2 butterfly: ω_sz^{k0+m} = -ω_sz^{k0}. The exponent walks
		// 0, step, 2·step, … < n/2, so no reduction is ever needed.
		lo, hi := dst[:m], dst[m:sz]
		e := 0
		for k0 := 0; k0 < m; k0++ {
			a := lo[k0]
			bw := hi[k0]
			if e != 0 {
				bw = f.MRed(bw, t.tab[t.twIdx(e, inv)])
			}
			lo[k0] = f.Add(a, bw)
			hi[k0] = f.Sub(a, bw)
			e += step
		}
		return
	}
	var scratch [MaxRadix + 1]uint64
	// ew[j] tracks (step·j·k0) mod n across the k0 loop; stepJ[j] is its
	// per-iteration increment (step·j) mod n.
	var ew, stepJ [MaxRadix]int
	for j := 1; j < r; j++ {
		stepJ[j] = stepJ[j-1] + step
		if stepJ[j] >= t.n {
			stepJ[j] -= t.n
		}
	}
	rootR := t.n / r // ω_sz^{m} = ω^{n/r}
	for k0 := 0; k0 < m; k0++ {
		for j := 0; j < r; j++ {
			x := dst[j*m+k0]
			if e := ew[j]; e != 0 {
				x = f.MRed(x, t.tab[t.twIdx(e, inv)])
			}
			scratch[j] = x
		}
		for k1 := 0; k1 < r; k1++ {
			acc := scratch[0]
			// idx tracks (j·k1) mod r incrementally (idx += k1 with a
			// conditional subtract — k1 < r keeps it in range).
			idx := 0
			for j := 1; j < r; j++ {
				idx += k1
				if idx >= r {
					idx -= r
				}
				x := scratch[j]
				if idx != 0 {
					x = f.MRed(x, t.tab[t.twIdx(rootR*idx, inv)])
				}
				acc = f.Add(acc, x)
			}
			dst[k1*m+k0] = acc
		}
		for j := 1; j < r; j++ {
			ew[j] += stepJ[j]
			if ew[j] >= t.n {
				ew[j] -= t.n
			}
		}
	}
}

// twIdx maps a reduced exponent e (0 < e < n) to the table index of ω^e
// (forward) or ω^{-e} (inverse).
func (t *NTT) twIdx(e int, inv bool) int {
	if inv {
		return t.n - e
	}
	return e
}

// MulCyclicInto writes the length-n cyclic convolution of a and b (each of
// length ≤ n, canonical coefficients) into dst (length n): the product in
// F_p[x]/(x^n - 1). Allocation-free in steady state (pooled scratch).
func (t *NTT) MulCyclicInto(dst, a, b []uint64) {
	if len(dst) != t.n {
		panic("fastfield: MulCyclicInto dst length mismatch")
	}
	fa, fb := t.getBuf(), t.getBuf()
	defer t.putBuf(fa)
	defer t.putBuf(fb)
	t.Transform(*fa, a, false)
	t.Transform(*fb, b, false)
	f := t.f
	// Pointwise product in the evaluation domain: lift one side to
	// Montgomery form so each product is two MReds.
	va, vb := *fa, *fb
	for i := range va {
		va[i] = f.MRed(va[i], f.MRed(vb[i], f.r2))
	}
	t.Transform(dst, va, true)
}

// ProdCyclicInto writes the cyclic product of all factors into dst (length
// n): each factor is transformed once, multiplied pointwise into one
// accumulator, and a single inverse transform recovers the coefficients —
// the shape the bottom-up tree encode wants, where an interior node
// multiplies its tag factor against every child product.
func (t *NTT) ProdCyclicInto(dst []uint64, factors ...[]uint64) {
	if len(dst) != t.n {
		panic("fastfield: ProdCyclicInto dst length mismatch")
	}
	if len(factors) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		dst[0] = 1
		return
	}
	acc, fb := t.getBuf(), t.getBuf()
	defer t.putBuf(acc)
	defer t.putBuf(fb)
	t.Transform(*acc, factors[0], false)
	f := t.f
	va, vb := *acc, *fb
	for _, fac := range factors[1:] {
		t.Transform(vb, fac, false)
		for i := range va {
			va[i] = f.MRed(va[i], f.MRed(vb[i], f.r2))
		}
	}
	t.Transform(dst, va, true)
}
