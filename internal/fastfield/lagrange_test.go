package fastfield_test

import (
	"math/big"
	"math/rand"
	"testing"

	"sssearch/internal/fastfield"
	"sssearch/internal/field"
	"sssearch/internal/shamir"
)

// TestLagrangeMatchesShamirInterpolate pins the word-sized combiner to the
// big.Int reference: for random share sets over several moduli, Combine
// must equal shamir.InterpolateAt at zero.
func TestLagrangeMatchesShamirInterpolate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, p := range []uint64{257, 1009, 65537, (1 << 61) - 1} {
		ff, err := fastfield.New(p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		bf, err := field.New(new(big.Int).SetUint64(p))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			k := 1 + rng.Intn(6)
			// Distinct nonzero small points (the deployment shape: X = 1..n).
			perm := rng.Perm(40)
			xs := make([]uint64, k)
			ys := make([]uint64, k)
			shares := make([]shamir.Share, k)
			for j := 0; j < k; j++ {
				xs[j] = uint64(perm[j] + 1)
				ys[j] = rng.Uint64() % p
				shares[j] = shamir.Share{X: uint32(xs[j]), Y: new(big.Int).SetUint64(ys[j])}
			}
			lag, err := ff.LagrangeAtZero(xs)
			if err != nil {
				t.Fatalf("p=%d k=%d: %v", p, k, err)
			}
			got := lag.Combine(ys)
			want, err := shamir.InterpolateAt(bf, shares, big.NewInt(0), k)
			if err != nil {
				t.Fatal(err)
			}
			if new(big.Int).SetUint64(got).Cmp(want) != 0 {
				t.Fatalf("p=%d k=%d xs=%v ys=%v: fast %d, big.Int %s", p, k, xs, ys, got, want)
			}
		}
	}
}

// TestLagrangeReconstructsShamirSecret round-trips through the real Shamir
// scheme: Split a secret, combine any k shares with the fast basis.
func TestLagrangeReconstructsShamirSecret(t *testing.T) {
	const p = 1009
	ff, err := fastfield.New(p)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := field.New(big.NewInt(p))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		k, n := 2+rng.Intn(3), 5
		scheme, err := shamir.NewScheme(bf, k, n)
		if err != nil {
			t.Fatal(err)
		}
		secret := int64(rng.Intn(p))
		shares, err := scheme.Split(big.NewInt(secret), rng)
		if err != nil {
			t.Fatal(err)
		}
		// Every k-subset starting at a random offset must reconstruct.
		off := rng.Intn(n - k + 1)
		xs := make([]uint64, k)
		ys := make([]uint64, k)
		for j := 0; j < k; j++ {
			xs[j] = uint64(shares[off+j].X)
			ys[j] = shares[off+j].Y.Uint64()
		}
		lag, err := ff.LagrangeAtZero(xs)
		if err != nil {
			t.Fatal(err)
		}
		if got := lag.Combine(ys); got != uint64(secret) {
			t.Fatalf("k=%d off=%d: combined %d, want %d", k, off, got, secret)
		}
	}
}

// TestLagrangeCombineVec checks the batch path against scalar Combine,
// including the zero-padding of short rows.
func TestLagrangeCombineVec(t *testing.T) {
	const p = 257
	ff, err := fastfield.New(p)
	if err != nil {
		t.Fatal(err)
	}
	lag, err := ff.LagrangeAtZero([]uint64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]uint64{
		{5, 10, 15, 20},
		{7, 14},  // short: columns 2, 3 read as zero
		{1, 256}, // short, with a boundary value
	}
	dst := make([]uint64, 4)
	lag.CombineVec(dst, rows)
	for i := range dst {
		col := make([]uint64, len(rows))
		for j, row := range rows {
			if i < len(row) {
				col[j] = row[i]
			}
		}
		if want := lag.Combine(col); dst[i] != want {
			t.Fatalf("column %d: CombineVec %d, Combine %d", i, dst[i], want)
		}
	}
}

// TestLagrangeNonCanonicalInputs: points and values above p must reduce,
// matching the canonical computation.
func TestLagrangeNonCanonicalInputs(t *testing.T) {
	const p = 257
	ff, err := fastfield.New(p)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := ff.LagrangeAtZero([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := ff.LagrangeAtZero([]uint64{1 + p, 2 + 3*p, 3})
	if err != nil {
		t.Fatal(err)
	}
	ys := []uint64{100, 200, 255}
	big := []uint64{100 + p, 200 + 7*p, 255 + 2*p}
	if a, b := canon.Combine(ys), shifted.Combine(big); a != b {
		t.Fatalf("non-canonical combine %d, canonical %d", b, a)
	}
}

func TestLagrangeRejectsDegeneratePoints(t *testing.T) {
	const p = 257
	ff, err := fastfield.New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ff.LagrangeAtZero(nil); err == nil {
		t.Error("empty point set accepted")
	}
	if _, err := ff.LagrangeAtZero([]uint64{1, p}); err == nil {
		t.Error("point ≡ 0 accepted")
	}
	if _, err := ff.LagrangeAtZero([]uint64{3, 3}); err == nil {
		t.Error("duplicate points accepted")
	}
	if _, err := ff.LagrangeAtZero([]uint64{2, 2 + p}); err == nil {
		t.Error("points colliding mod p accepted")
	}
}
