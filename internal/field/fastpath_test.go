package field

import (
	"math/big"
	"math/rand"
	"testing"

	"sssearch/internal/fastfield"
)

// TestFastAccessor checks which moduli expose the word-sized engine.
func TestFastAccessor(t *testing.T) {
	if MustNew(257).Fast() == nil {
		t.Fatal("F_257 should carry the fast path")
	}
	big63, err := New(new(big.Int).SetUint64(9223372036854775783)) // prime near 2^63
	if err != nil {
		t.Fatal(err)
	}
	if big63.Fast() != nil {
		t.Fatalf("a %d-bit modulus must not carry the %d-bit fast path",
			big63.BitLen(), fastfield.MaxModulusBits)
	}
}

// TestFastMatchesBig cross-checks the word-sized engine against the
// big.Int methods of the same field on random and edge elements.
func TestFastMatchesBig(t *testing.T) {
	for _, p := range []uint64{5, 257, 1009, (1 << 61) - 1} {
		f := MustNew(p)
		ff := f.Fast()
		if ff == nil {
			t.Fatalf("no fast path for %d", p)
		}
		rng := rand.New(rand.NewSource(int64(p)))
		cases := []uint64{0, 1, p - 1, p / 2}
		for i := 0; i < 30; i++ {
			cases = append(cases, rng.Uint64()%p)
		}
		for _, a := range cases {
			ba := new(big.Int).SetUint64(a)
			for _, b := range cases {
				bb := new(big.Int).SetUint64(b)
				if got, want := ff.Mul(a, b), f.Mul(ba, bb).Uint64(); got != want {
					t.Fatalf("p=%d Mul(%d,%d): fast %d, big %d", p, a, b, got, want)
				}
				if got, want := ff.Add(a, b), f.Add(ba, bb).Uint64(); got != want {
					t.Fatalf("p=%d Add(%d,%d): fast %d, big %d", p, a, b, got, want)
				}
				if got, want := ff.Sub(a, b), f.Sub(ba, bb).Uint64(); got != want {
					t.Fatalf("p=%d Sub(%d,%d): fast %d, big %d", p, a, b, got, want)
				}
			}
			if inv, ok := ff.Inv(a); ok {
				ref, err := f.Inv(ba)
				if err != nil {
					t.Fatalf("p=%d Inv(%d): fast inverted, big errored", p, a)
				}
				if inv != ref.Uint64() {
					t.Fatalf("p=%d Inv(%d): fast %d, big %s", p, a, inv, ref)
				}
			}
		}
	}
}
