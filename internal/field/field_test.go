package field

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

func TestNewRejectsComposite(t *testing.T) {
	if _, err := NewUint64(10); err != ErrNotPrime {
		t.Errorf("NewUint64(10) err = %v, want ErrNotPrime", err)
	}
	if _, err := New(big.NewInt(0)); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := New(nil); err == nil {
		t.Error("New(nil) should fail")
	}
	if _, err := NewUint64(5); err != nil {
		t.Errorf("NewUint64(5): %v", err)
	}
}

func TestBasicOpsF5(t *testing.T) {
	f := MustNew(5)
	if got := f.Add(f.FromInt64(3), f.FromInt64(4)); got.Int64() != 2 {
		t.Errorf("3+4 mod 5 = %v, want 2", got)
	}
	if got := f.Sub(f.FromInt64(1), f.FromInt64(3)); got.Int64() != 3 {
		t.Errorf("1-3 mod 5 = %v, want 3", got)
	}
	if got := f.Mul(f.FromInt64(3), f.FromInt64(4)); got.Int64() != 2 {
		t.Errorf("3*4 mod 5 = %v, want 2", got)
	}
	if got := f.Neg(f.FromInt64(2)); got.Int64() != 3 {
		t.Errorf("-2 mod 5 = %v, want 3", got)
	}
	if got := f.FromInt64(-6); got.Int64() != 4 {
		t.Errorf("-6 mod 5 = %v, want 4", got)
	}
}

func TestInvDiv(t *testing.T) {
	f := MustNew(97)
	for a := int64(1); a < 97; a++ {
		inv, err := f.Inv(f.FromInt64(a))
		if err != nil {
			t.Fatal(err)
		}
		if f.Mul(f.FromInt64(a), inv).Int64() != 1 {
			t.Errorf("inv(%d) wrong", a)
		}
	}
	if _, err := f.Inv(f.Zero()); err == nil {
		t.Error("Inv(0) should fail")
	}
	q, err := f.Div(f.FromInt64(10), f.FromInt64(4))
	if err != nil {
		t.Fatal(err)
	}
	if f.Mul(q, f.FromInt64(4)).Int64() != 10 {
		t.Error("Div incorrect")
	}
	if _, err := f.Div(f.One(), f.Zero()); err == nil {
		t.Error("Div by zero should fail")
	}
}

func TestExp(t *testing.T) {
	f := MustNew(13)
	got, err := f.Exp(f.FromInt64(2), big.NewInt(10))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 1024%13 {
		t.Errorf("2^10 mod 13 = %v", got)
	}
	// Fermat: a^(p-1) = 1.
	for a := int64(1); a < 13; a++ {
		v, err := f.Exp(f.FromInt64(a), big.NewInt(12))
		if err != nil {
			t.Fatal(err)
		}
		if v.Int64() != 1 {
			t.Errorf("%d^12 mod 13 = %v, want 1 (Fermat)", a, v)
		}
	}
	// Negative exponent.
	v, err := f.Exp(f.FromInt64(2), big.NewInt(-1))
	if err != nil {
		t.Fatal(err)
	}
	if f.Mul(v, f.FromInt64(2)).Int64() != 1 {
		t.Error("negative exponent broken")
	}
	if _, err := f.Exp(f.Zero(), big.NewInt(-1)); err == nil {
		t.Error("0^-1 should fail")
	}
}

func TestFieldAxiomsProperty(t *testing.T) {
	f := MustNew(65537)
	cfg := &quick.Config{MaxCount: 300}
	// Commutativity, associativity, distributivity.
	err := quick.Check(func(a, b, c int64) bool {
		x, y, z := f.FromInt64(a), f.FromInt64(b), f.FromInt64(c)
		if f.Add(x, y).Cmp(f.Add(y, x)) != 0 {
			return false
		}
		if f.Mul(x, y).Cmp(f.Mul(y, x)) != 0 {
			return false
		}
		if f.Add(f.Add(x, y), z).Cmp(f.Add(x, f.Add(y, z))) != 0 {
			return false
		}
		if f.Mul(f.Mul(x, y), z).Cmp(f.Mul(x, f.Mul(y, z))) != 0 {
			return false
		}
		// a*(b+c) == a*b + a*c
		return f.Mul(x, f.Add(y, z)).Cmp(f.Add(f.Mul(x, y), f.Mul(x, z))) == 0
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Additive and multiplicative inverses.
	err = quick.Check(func(a int64) bool {
		x := f.FromInt64(a)
		if f.Add(x, f.Neg(x)).Sign() != 0 {
			return false
		}
		if x.Sign() == 0 {
			return true
		}
		inv, err := f.Inv(x)
		if err != nil {
			return false
		}
		return f.Mul(x, inv).Int64() == 1
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandUniformRange(t *testing.T) {
	f := MustNew(5)
	counts := make(map[int64]int)
	for i := 0; i < 2000; i++ {
		v, err := f.Rand(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Contains(v) {
			t.Fatalf("Rand out of range: %v", v)
		}
		counts[v.Int64()]++
	}
	for i := int64(0); i < 5; i++ {
		if counts[i] < 200 { // expected 400, generous slack
			t.Errorf("value %d drawn only %d times out of 2000", i, counts[i])
		}
	}
}

func TestRandNonZero(t *testing.T) {
	f := MustNew(3)
	for i := 0; i < 100; i++ {
		v, err := f.RandNonZero(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if v.Sign() == 0 {
			t.Fatal("RandNonZero returned zero")
		}
	}
}

func TestRandDeterministicSource(t *testing.T) {
	f := MustNew(65537)
	src := bytes.NewReader(bytes.Repeat([]byte{0x01, 0x02, 0x03, 0x04}, 64))
	a, err := f.Rand(src)
	if err != nil {
		t.Fatal(err)
	}
	src2 := bytes.NewReader(bytes.Repeat([]byte{0x01, 0x02, 0x03, 0x04}, 64))
	b, err := f.Rand(src2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) != 0 {
		t.Error("Rand not deterministic for identical source")
	}
}

func TestStringAndAccessors(t *testing.T) {
	f := MustNew(5)
	if f.String() != "F_5" {
		t.Errorf("String() = %q", f.String())
	}
	if f.P().Int64() != 5 || f.Order().Int64() != 5 || f.BitLen() != 3 {
		t.Error("accessors wrong")
	}
	// P must be a copy: mutating it must not corrupt the field.
	f.P().SetInt64(99)
	if f.Add(f.FromInt64(4), f.FromInt64(4)).Int64() != 3 {
		t.Error("field state was mutated via P()")
	}
}

func BenchmarkMul(b *testing.B) {
	f := MustNew(18446744073709551557)
	x := f.FromUint64(123456789123456789)
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, x)
	}
}
