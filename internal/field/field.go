// Package field implements arithmetic in the prime field F_p used by both
// the F_p[x]/(x^{p-1}-1) quotient ring of the scheme and the Shamir secret
// sharing layer.
//
// Elements are canonical *big.Int values in [0, p). All methods return fresh
// big.Int values and never mutate their arguments, so elements can be shared
// freely across goroutines once created.
package field

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"sssearch/internal/fastfield"
	"sssearch/internal/mathutil"
)

// Field is the prime field F_p. The zero value is not usable; construct with
// New or NewUint64.
type Field struct {
	p *big.Int
	// pMinus1 caches p-1, used for exponent reduction and range checks.
	pMinus1 *big.Int
	// fast is the word-sized arithmetic engine for this modulus, or nil
	// when p exceeds fastfield.MaxModulusBits. Callers on hot paths check
	// Fast() and fall back to the big.Int methods below.
	fast *fastfield.Field
}

var (
	// ErrNotPrime is returned by New when the modulus fails a primality test.
	ErrNotPrime = errors.New("field: modulus is not prime")
	// ErrWrongField is returned when elements from different fields are mixed.
	ErrWrongField = errors.New("field: element out of range for this field")
)

// New constructs F_p for a prime p. Primality is verified
// (ProbablyPrime(32), exact for all uint64-sized inputs in practice).
func New(p *big.Int) (*Field, error) {
	if p == nil || p.Sign() <= 0 {
		return nil, errors.New("field: modulus must be positive")
	}
	if !p.ProbablyPrime(32) {
		return nil, ErrNotPrime
	}
	pc := new(big.Int).Set(p)
	return &Field{p: pc, pMinus1: new(big.Int).Sub(pc, big.NewInt(1)), fast: fastPath(pc)}, nil
}

// fastPath builds the word-sized engine when the modulus supports it.
func fastPath(p *big.Int) *fastfield.Field {
	if !fastfield.Supported(p) {
		return nil
	}
	f, err := fastfield.New(p.Uint64())
	if err != nil {
		return nil
	}
	return f
}

// NewUint64 constructs F_p for a prime p given as uint64.
func NewUint64(p uint64) (*Field, error) {
	if !mathutil.IsPrime(p) {
		return nil, ErrNotPrime
	}
	bp := new(big.Int).SetUint64(p)
	return &Field{p: bp, pMinus1: new(big.Int).Sub(bp, big.NewInt(1)), fast: fastPath(bp)}, nil
}

// MustNew is New but panics on error; intended for tests and constants.
func MustNew(p uint64) *Field {
	f, err := NewUint64(p)
	if err != nil {
		panic(err)
	}
	return f
}

// P returns (a copy of) the field characteristic.
func (f *Field) P() *big.Int { return new(big.Int).Set(f.p) }

// Fast returns the word-sized fast-path engine for this field, or nil
// when the modulus exceeds fastfield.MaxModulusBits. The fast engine
// computes the same results as the big.Int methods (differentially
// tested); hot paths use it to avoid per-operation allocations.
func (f *Field) Fast() *fastfield.Field { return f.fast }

// Order returns the number of elements of the field (same as P for F_p).
func (f *Field) Order() *big.Int { return f.P() }

// BitLen returns the bit length of the modulus.
func (f *Field) BitLen() int { return f.p.BitLen() }

// Reduce maps an arbitrary integer into its canonical representative in [0,p).
func (f *Field) Reduce(a *big.Int) *big.Int {
	r := new(big.Int).Mod(a, f.p)
	return r
}

// FromInt64 returns the canonical element congruent to v.
func (f *Field) FromInt64(v int64) *big.Int {
	return f.Reduce(big.NewInt(v))
}

// FromUint64 returns the canonical element congruent to v.
func (f *Field) FromUint64(v uint64) *big.Int {
	return f.Reduce(new(big.Int).SetUint64(v))
}

// Zero returns the additive identity.
func (f *Field) Zero() *big.Int { return big.NewInt(0) }

// One returns the multiplicative identity.
func (f *Field) One() *big.Int { return f.Reduce(big.NewInt(1)) }

// Contains reports whether a is a canonical representative (0 <= a < p).
func (f *Field) Contains(a *big.Int) bool {
	return a != nil && a.Sign() >= 0 && a.Cmp(f.p) < 0
}

// Add returns a + b mod p.
func (f *Field) Add(a, b *big.Int) *big.Int {
	return f.Reduce(new(big.Int).Add(a, b))
}

// Sub returns a - b mod p.
func (f *Field) Sub(a, b *big.Int) *big.Int {
	return f.Reduce(new(big.Int).Sub(a, b))
}

// Neg returns -a mod p.
func (f *Field) Neg(a *big.Int) *big.Int {
	return f.Reduce(new(big.Int).Neg(a))
}

// Mul returns a * b mod p.
func (f *Field) Mul(a, b *big.Int) *big.Int {
	return f.Reduce(new(big.Int).Mul(a, b))
}

// Inv returns a^{-1} mod p, or an error if a ≡ 0.
func (f *Field) Inv(a *big.Int) (*big.Int, error) {
	r := f.Reduce(a)
	if r.Sign() == 0 {
		return nil, mathutil.ErrNoInverse
	}
	return new(big.Int).ModInverse(r, f.p), nil
}

// Div returns a / b mod p, or an error if b ≡ 0.
func (f *Field) Div(a, b *big.Int) (*big.Int, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return nil, err
	}
	return f.Mul(a, bi), nil
}

// Exp returns a^e mod p. Negative exponents are supported when a is
// invertible.
func (f *Field) Exp(a, e *big.Int) (*big.Int, error) {
	base := f.Reduce(a)
	if e.Sign() < 0 {
		inv, err := f.Inv(base)
		if err != nil {
			return nil, err
		}
		return new(big.Int).Exp(inv, new(big.Int).Neg(e), f.p), nil
	}
	return new(big.Int).Exp(base, e, f.p), nil
}

// Equal reports whether a ≡ b (mod p).
func (f *Field) Equal(a, b *big.Int) bool {
	return f.Reduce(a).Cmp(f.Reduce(b)) == 0
}

// Rand returns a uniformly random canonical element, reading entropy (or
// deterministic DRBG output) from r.
func (f *Field) Rand(r io.Reader) (*big.Int, error) {
	// Rejection sampling over ceil(bits/8) bytes keeps the distribution
	// uniform without modular bias.
	bits := f.p.BitLen()
	nbytes := (bits + 7) / 8
	buf := make([]byte, nbytes)
	excess := uint(nbytes*8 - bits)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("field: rand: %w", err)
		}
		buf[0] &= byte(0xff >> excess)
		v := new(big.Int).SetBytes(buf)
		if v.Cmp(f.p) < 0 {
			return v, nil
		}
	}
}

// RandNonZero returns a uniformly random non-zero element.
func (f *Field) RandNonZero(r io.Reader) (*big.Int, error) {
	for {
		v, err := f.Rand(r)
		if err != nil {
			return nil, err
		}
		if v.Sign() != 0 {
			return v, nil
		}
	}
}

// String implements fmt.Stringer.
func (f *Field) String() string { return fmt.Sprintf("F_%s", f.p) }
