package ring

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"math/bits"
	"sync"
	"sync/atomic"

	"sssearch/internal/fastfield"
	"sssearch/internal/field"
	"sssearch/internal/poly"
)

// FpCyclotomic is the quotient ring F_p[x]/(x^{p-1}-1).
//
// Canonical representatives have degree < p-1 and coefficients in [0, p).
// By Lemma 1 of the paper, x^{p-1}-1 ≡ ∏_{i=1}^{p-1}(x-i) (mod p), so
// reduction never destroys root information for tags in [1, p-2]
// (Theorem 1).
//
// When the modulus fits fastfield.MaxModulusBits (every constructible
// FpCyclotomic does — the coefficient-count cap keeps p far below it),
// the ring carries a word-sized fast path: polynomials whose coefficients
// fit machine words are packed into []uint64 vectors and all arithmetic
// runs in package fastfield without big.Int allocations. Polynomials that
// do not pack (negative or oversized coefficients from unreduced Z[x]
// inputs) fall back to the original big.Int path; both paths compute
// identical results (differentially tested in fastpath_test.go).
type FpCyclotomic struct {
	f *field.Field
	p *big.Int
	// n = p-1 is the folding period (number of coefficients).
	n int
	// fast is the word-sized engine, nil when disabled (SetFast) or
	// unsupported.
	fast *fastfield.Field

	// The NTT-backed encode engine. The quotient ring is cyclic
	// convolution of length n, so long packed products run through a
	// number-theoretic transform instead of the O(n²) schoolbook loop.
	// The tables are built lazily on the first eligible product (nttOnce;
	// immutable and shared read-only afterwards): ntt carries the
	// mixed-radix transform when n is MaxRadix-smooth, conv the
	// auxiliary-prime convolution fallback otherwise. Short products stay
	// on the schoolbook path (nttCut); SetNTT(false) disables the engine
	// for ablation benchmarks and differential tests.
	nttOnce sync.Once
	ntt     *fastfield.NTT
	conv    *fastfield.CyclicConv
	nttOff  atomic.Bool
	// nttCut is the pairwise size cutover: a product with
	// len(pa)·len(pb) below it runs schoolbook. ≈ the Montgomery-multiply
	// cost of the three transforms of one NTT multiply.
	nttCut int

	// bmPool recycles the Montgomery-form operand scratch of the
	// schoolbook loop (length-n vectors), so MulPackedInto is
	// allocation-free.
	bmPool sync.Pool
}

// nttCutoverCost estimates the cost of one NTT-backed multiply of cyclic
// length n — three transforms plus the pointwise pass — in units of
// schoolbook coefficient pairs, the break-even point against the
// schoolbook loop's len(pa)·len(pb). The constant is measured, not
// counted: one transform costs ≈ 1.8·n·log₂n pair-equivalents on the
// mixed-radix kernel (BenchmarkNTT256Mul vs BenchmarkSchoolbook256Mul),
// and rounding up to 5·n·log₂n for the full multiply errs toward the
// schoolbook side, where a mispredicted boundary costs least.
func nttCutoverCost(n int) int {
	return 5 * n * bits.Len(uint(n))
}

// NewFpCyclotomic constructs F_p[x]/(x^{p-1}-1) for prime p >= 5.
// Primes below 5 leave no usable tag values in [1, p-2].
func NewFpCyclotomic(p *big.Int) (*FpCyclotomic, error) {
	f, err := field.New(p)
	if err != nil {
		return nil, err
	}
	if p.Cmp(big.NewInt(5)) < 0 {
		return nil, errors.New("ring: p must be >= 5 to leave usable tag values")
	}
	if !p.IsInt64() || p.Int64() > 1<<22 {
		// p-1 coefficients per node; beyond ~4M coefficients per polynomial
		// the representation is unusable in practice.
		return nil, errors.New("ring: p too large for the F_p[x]/(x^(p-1)-1) representation")
	}
	r := &FpCyclotomic{f: f, p: new(big.Int).Set(p), n: int(p.Int64() - 1), fast: f.Fast()}
	r.nttCut = nttCutoverCost(r.n)
	r.bmPool.New = func() any { v := make([]uint64, r.n); return &v }
	return r, nil
}

// MustFp is NewFpCyclotomic for a uint64 prime; panics on error (tests).
func MustFp(p uint64) *FpCyclotomic {
	r, err := NewFpCyclotomic(new(big.Int).SetUint64(p))
	if err != nil {
		panic(err)
	}
	return r
}

// Kind implements Ring.
func (r *FpCyclotomic) Kind() Kind { return KindFpCyclotomic }

// Name implements Ring.
func (r *FpCyclotomic) Name() string {
	return fmt.Sprintf("F_%s[x]/(x^%d-1)", r.p, r.n)
}

// P returns (a copy of) the field characteristic.
func (r *FpCyclotomic) P() *big.Int { return new(big.Int).Set(r.p) }

// Field returns the coefficient field.
func (r *FpCyclotomic) Field() *field.Field { return r.f }

// Fast returns the word-sized arithmetic engine behind this ring's fast
// path, or nil when it is disabled. Packed-representation callers
// (server.Local, sharing.SeedClient) capture it once at construction.
func (r *FpCyclotomic) Fast() *fastfield.Field { return r.fast }

// SetFast enables or disables the word-sized fast path. It exists for
// differential tests and ablation benchmarks; production code leaves the
// fast path on. Not safe to call concurrently with ring use.
//
// Disabling the fast path also restores the original one-draw-per-
// coefficient DRBG consumption of Rand (the fast path reads the stream
// in bulk), so the client and server sides of one deployment must agree
// on the setting or seed-derived shares will not cancel.
func (r *FpCyclotomic) SetFast(enabled bool) {
	if enabled {
		r.fast = r.f.Fast()
		return
	}
	r.fast = nil
}

// Pack converts a polynomial into the packed word representation:
// coefficients reduced into [0, p), ascending degree, degrees NOT folded
// (evaluation is invariant under folding; use Reduce first when a
// canonical representative is required). ok is false — and the caller
// must take the big.Int path — when the fast path is off or any
// coefficient is negative or wider than a word.
func (r *FpCyclotomic) Pack(q poly.Poly) ([]uint64, bool) {
	if r.fast == nil {
		return nil, false
	}
	c, ok := q.Uint64Coeffs(make([]uint64, 0, q.Len()))
	if !ok {
		return nil, false
	}
	r.fast.ReduceVec(c, c)
	return c, true
}

// Unpack converts a packed vector back into the big.Int boundary
// representation. Coefficients must be canonical (< p).
func (r *FpCyclotomic) Unpack(c []uint64) poly.Poly {
	return poly.NewUint64(c)
}

// PackPoint maps an evaluation point to its canonical word residue,
// rejecting a ≡ 0 (evaluation is undefined there, see Eval). Only valid
// when the fast path is on.
func (r *FpCyclotomic) PackPoint(a *big.Int) (uint64, error) {
	x := r.fast.ReduceBig(a)
	if x == 0 {
		return 0, fmt.Errorf("%w: a ≡ 0 (mod %s)", ErrEvalUndefined, r.p)
	}
	return x, nil
}

// packFold packs q and folds its degrees with x^{p-1} ≡ 1, yielding at
// most n canonical word coefficients.
func (r *FpCyclotomic) packFold(q poly.Poly) ([]uint64, bool) {
	c, ok := r.Pack(q)
	if !ok {
		return nil, false
	}
	if len(c) <= r.n {
		return c, true
	}
	folded := c[:r.n]
	for i := r.n; i < len(c); i++ {
		folded[i%r.n] = r.fast.Add(folded[i%r.n], c[i])
	}
	return folded, true
}

// Reduce folds degrees with x^{p-1} ≡ 1 and reduces coefficients mod p.
func (r *FpCyclotomic) Reduce(p poly.Poly) poly.Poly {
	if c, ok := r.packFold(p); ok {
		return r.Unpack(c)
	}
	if p.Degree() < r.n {
		return p.ReduceCoeffs(r.p)
	}
	folded := make([]*big.Int, r.n)
	for i := range folded {
		folded[i] = new(big.Int)
	}
	for i, d := 0, p.Degree(); i <= d; i++ {
		folded[i%r.n].Add(folded[i%r.n], p.Coeff(i))
	}
	return poly.New(folded...).ReduceCoeffs(r.p)
}

// Add implements Ring.
func (r *FpCyclotomic) Add(a, b poly.Poly) poly.Poly {
	if pa, ok := r.packFold(a); ok {
		if pb, ok := r.packFold(b); ok {
			if len(pb) > len(pa) {
				pa, pb = pb, pa
			}
			for i, v := range pb {
				pa[i] = r.fast.Add(pa[i], v)
			}
			return r.Unpack(pa)
		}
	}
	return r.Reduce(a.Add(b))
}

// Sub implements Ring.
func (r *FpCyclotomic) Sub(a, b poly.Poly) poly.Poly {
	if pa, ok := r.packFold(a); ok {
		if pb, ok := r.packFold(b); ok {
			if len(pb) > len(pa) {
				grown := make([]uint64, len(pb))
				copy(grown, pa)
				pa = grown
			}
			for i, v := range pb {
				pa[i] = r.fast.Sub(pa[i], v)
			}
			return r.Unpack(pa)
		}
	}
	return r.Reduce(a.Sub(b))
}

// Neg implements Ring.
func (r *FpCyclotomic) Neg(a poly.Poly) poly.Poly {
	if pa, ok := r.packFold(a); ok {
		for i, v := range pa {
			pa[i] = r.fast.Neg(v)
		}
		return r.Unpack(pa)
	}
	return r.Reduce(a.Neg())
}

// Mul implements Ring. The fast path multiplies in the packed
// representation with no intermediate big.Int allocation — via the NTT
// engine for long operands, directly into the folded residue
// (out[(i+j) mod n]) schoolbook-style for short ones (see MulPacked).
func (r *FpCyclotomic) Mul(a, b poly.Poly) poly.Poly {
	pa, okA := r.packFold(a)
	if okA {
		if pb, okB := r.packFold(b); okB {
			return r.Unpack(r.MulPacked(pa, pb))
		}
	}
	return r.Reduce(a.Mul(b))
}

// AddPacked adds two packed canonical vectors of possibly different
// lengths, returning a fresh vector of the longer length. Only valid when
// the fast path is on.
func (r *FpCyclotomic) AddPacked(pa, pb []uint64) []uint64 {
	if len(pb) > len(pa) {
		pa, pb = pb, pa
	}
	out := make([]uint64, len(pa))
	r.AddPackedInto(out, pa, pb)
	return out
}

// AddPackedInto writes pa + pb into dst, which must have the length of the
// longer operand; dst may alias pa or pb. Only valid when the fast path is
// on.
func (r *FpCyclotomic) AddPackedInto(dst, pa, pb []uint64) {
	if len(pb) > len(pa) {
		pa, pb = pb, pa
	}
	if len(dst) != len(pa) {
		panic("ring: AddPackedInto dst length mismatch")
	}
	copy(dst, pa)
	for i, v := range pb {
		dst[i] = r.fast.Add(dst[i], v)
	}
}

// MulPacked multiplies two packed canonical vectors (each of length <= n,
// coefficients < p) in the quotient ring, returning a fresh length-n
// packed product. Only valid when the fast path is on; packed-
// representation callers (polyenc tag recovery) use it to stay off the
// big.Int boundary entirely.
//
// Long products run through the NTT engine (O(n log n)); short ones —
// where len(pa)·len(pb) is below the transform cost — keep the schoolbook
// loop. Both paths produce bit-identical canonical output.
func (r *FpCyclotomic) MulPacked(pa, pb []uint64) []uint64 {
	out := make([]uint64, r.n)
	r.MulPackedInto(out, pa, pb)
	return out
}

// MulPackedInto is MulPacked with a caller-provided output vector (length
// n, overwritten; must not alias pa or pb) — the hot encode and
// tag-recovery loops use it with reused buffers so steady-state products
// do not allocate.
func (r *FpCyclotomic) MulPackedInto(dst, pa, pb []uint64) {
	if len(dst) != r.n {
		panic("ring: MulPackedInto dst length mismatch")
	}
	if ntt, conv := r.engine(len(pa), len(pb)); ntt != nil {
		ntt.MulCyclicInto(dst, pa, pb)
		return
	} else if conv != nil {
		conv.MulCyclicInto(dst, pa, pb)
		return
	}
	r.mulSchoolbookInto(dst, pa, pb)
}

// MulPackedSchoolbook is the retained O(len(pa)·len(pb)) reference
// multiply — the differential-test anchor the NTT path is pinned against,
// and the path SetNTT(false) ablation benchmarks measure.
func (r *FpCyclotomic) MulPackedSchoolbook(pa, pb []uint64) []uint64 {
	out := make([]uint64, r.n)
	r.mulSchoolbookInto(out, pa, pb)
	return out
}

func (r *FpCyclotomic) mulSchoolbookInto(dst, pa, pb []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	bmp := r.bmPool.Get().(*[]uint64)
	defer r.bmPool.Put(bmp)
	bm := (*bmp)[:len(pb)]
	r.fast.MFormVec(bm, pb)
	for i, ai := range pa {
		if ai == 0 {
			continue
		}
		for j, bj := range bm {
			k := i + j
			if k >= r.n {
				k -= r.n
			}
			dst[k] = r.fast.Add(dst[k], r.fast.MRed(ai, bj))
		}
	}
}

// engine decides the multiply path for operand lengths la, lb and returns
// the transform to use, building the per-ring tables on first eligible
// use. Both returns are nil when the schoolbook loop is the right (or
// only) choice: short products, SetNTT(false), or a disabled fast path.
func (r *FpCyclotomic) engine(la, lb int) (*fastfield.NTT, *fastfield.CyclicConv) {
	if r.nttOff.Load() || la == 0 || lb == 0 {
		return nil, nil
	}
	work := la * lb
	if work < r.nttCut {
		return nil, nil
	}
	r.nttOnce.Do(func() {
		ff := r.f.Fast()
		if ff == nil {
			return
		}
		ntt, err := fastfield.NewNTT(ff, r.n)
		if err == nil {
			r.ntt = ntt
			return
		}
		if errors.Is(err, fastfield.ErrNotSmooth) {
			r.conv = fastfield.NewCyclicConv(ff, r.n)
		}
	})
	if r.ntt != nil {
		return r.ntt, nil
	}
	if r.conv != nil {
		// The fallback pays power-of-two transforms over 62-bit auxiliary
		// primes (up to six, for the CRT) — worth it only well past the
		// mixed-radix break-even.
		m := 1
		for m < la+lb-1 {
			m <<= 1
		}
		if work < 10*m*bits.Len(uint(m)) {
			return nil, nil
		}
		return nil, r.conv
	}
	return nil, nil
}

// SetNTT enables or disables the NTT-backed multiply, leaving the rest of
// the word-sized fast path untouched. It exists for ablation benchmarks
// (the capacity-scale outsourcing targets measure NTT vs schoolbook in
// one run) and differential tests; production code leaves it on. Safe to
// call concurrently with ring use — the toggle is a single atomic and
// both paths compute identical results.
func (r *FpCyclotomic) SetNTT(enabled bool) {
	r.nttOff.Store(!enabled)
}

// MulPackedProd multiplies all factors (each a packed canonical vector of
// length <= n) in one pass, returning a fresh length-n product. On the
// NTT path every factor is transformed exactly once and a single inverse
// transform recovers the product — the shape the bottom-up encode wants,
// where an interior node multiplies its tag factor against every child
// product. Falls back to left-to-right pairwise products when the
// operands are too short for the transform to pay, or on fallback rings.
// An empty factor list yields the ring's one.
func (r *FpCyclotomic) MulPackedProd(factors ...[]uint64) []uint64 {
	out := make([]uint64, r.n)
	if len(factors) == 0 {
		out[0] = 1
		return out
	}
	if len(factors) == 1 {
		copy(out, factors[0])
		return out
	}
	// Estimate the schoolbook cost of the left-to-right product: prefix
	// length grows by each factor's degree and caps at n.
	prefix := len(factors[0])
	cost := 0
	for _, f := range factors[1:] {
		cost += prefix * len(f)
		if prefix += len(f) - 1; prefix > r.n {
			prefix = r.n
		}
	}
	// NTT product cost: one forward transform per factor plus one inverse
	// — (k+1)/3 of a pairwise multiply's three transforms.
	if !r.nttOff.Load() && cost >= (len(factors)+1)*r.nttCut/3 {
		if ntt, _ := r.engine(r.n, r.n); ntt != nil {
			ntt.ProdCyclicInto(out, factors...)
			return out
		}
	}
	// Pairwise loop with degree trimming, ping-ponging two buffers; each
	// pairwise product still picks its own best path via MulPackedInto.
	bufp := r.bmPool.Get().(*[]uint64)
	defer r.bmPool.Put(bufp)
	acc := factors[0]
	scratch := out
	spare := *bufp
	for _, f := range factors[1:] {
		r.MulPackedInto(scratch, acc, f)
		acc = trimTrailingZeros(scratch)
		scratch, spare = spare, scratch
	}
	if len(acc) == 0 {
		// A zero factor annihilated the product; out may hold stale
		// intermediate coefficients.
		for i := range out {
			out[i] = 0
		}
		return out
	}
	if &acc[0] != &out[0] {
		n := copy(out, acc)
		for i := n; i < len(out); i++ {
			out[i] = 0
		}
	}
	return out
}

// trimTrailingZeros drops trailing zero coefficients so intermediate
// products carry their true degree into the next multiplication.
func trimTrailingZeros(v []uint64) []uint64 {
	n := len(v)
	for n > 0 && v[n-1] == 0 {
		n--
	}
	return v[:n]
}

// Zero implements Ring.
func (r *FpCyclotomic) Zero() poly.Poly { return poly.Zero() }

// One implements Ring.
func (r *FpCyclotomic) One() poly.Poly { return poly.One() }

// Linear implements Ring.
func (r *FpCyclotomic) Linear(root *big.Int) poly.Poly {
	if r.fast != nil {
		return r.Unpack([]uint64{r.fast.Neg(r.fast.ReduceBig(root)), 1})
	}
	return r.Reduce(poly.Linear(root))
}

// Equal implements Ring.
func (r *FpCyclotomic) Equal(a, b poly.Poly) bool {
	return r.Reduce(a).Equal(r.Reduce(b))
}

// Eval implements Ring. Evaluation at a is well defined iff a ≢ 0 (mod p):
// the homomorphism F_p[x]/(x^{p-1}-1) → F_p, x ↦ a, requires a^{p-1} = 1.
func (r *FpCyclotomic) Eval(f poly.Poly, a *big.Int) (*big.Int, error) {
	if r.fast != nil {
		x, err := r.PackPoint(a)
		if err != nil {
			return nil, err
		}
		// Short polynomials (tag recovery, the paper's figures) pack into
		// a stack buffer; longer ones spill to the heap via append.
		var buf [64]uint64
		if c, ok := f.Uint64Coeffs(buf[:0]); ok {
			r.fast.ReduceVec(c, c)
			return new(big.Int).SetUint64(r.fast.Eval(c, x)), nil
		}
	}
	am := new(big.Int).Mod(a, r.p)
	if am.Sign() == 0 {
		return nil, fmt.Errorf("%w: a ≡ 0 (mod %s)", ErrEvalUndefined, r.p)
	}
	return f.EvalMod(am, r.p), nil
}

// EvalModulus implements Ring: the codomain of Eval is always F_p.
func (r *FpCyclotomic) EvalModulus(a *big.Int) (*big.Int, error) {
	am := new(big.Int).Mod(a, r.p)
	if am.Sign() == 0 {
		return nil, ErrEvalUndefined
	}
	return new(big.Int).Set(r.p), nil
}

// SolveScalar implements Ring: t = num/den in F_p when den ≢ 0.
func (r *FpCyclotomic) SolveScalar(num, den *big.Int) (*big.Int, bool) {
	if r.fast != nil {
		d := r.fast.ReduceBig(den)
		inv, ok := r.fast.Inv(d)
		if !ok {
			return nil, false
		}
		return new(big.Int).SetUint64(r.fast.Mul(r.fast.ReduceBig(num), inv)), true
	}
	d := new(big.Int).Mod(den, r.p)
	if d.Sign() == 0 {
		return nil, false
	}
	inv := new(big.Int).ModInverse(d, r.p)
	t := new(big.Int).Mul(new(big.Int).Mod(num, r.p), inv)
	return t.Mod(t, r.p), true
}

// CoeffZero implements Ring.
func (r *FpCyclotomic) CoeffZero(v *big.Int) bool {
	if r.fast != nil {
		return r.fast.ReduceBig(v) == 0
	}
	return new(big.Int).Mod(v, r.p).Sign() == 0
}

// Rand implements Ring: a uniformly random canonical representative (p-1
// independent uniform coefficients). This gives information-theoretic
// hiding for additive shares.
//
// The fast path draws the coefficient vector through the bulk sampler
// (fastfield.RandVec): the same per-coefficient distribution, but the rng
// stream is consumed in large reads instead of one tiny read per
// coefficient — which is why sharing.ShareLabel is versioned: share pads
// derived under the old consumption pattern do not match.
func (r *FpCyclotomic) Rand(rng io.Reader) (poly.Poly, error) {
	if r.fast != nil {
		vec := make([]uint64, r.n)
		if err := r.fast.RandVec(rng, vec); err != nil {
			return poly.Poly{}, err
		}
		return r.Unpack(vec), nil
	}
	coeffs := make([]*big.Int, r.n)
	for i := range coeffs {
		v, err := r.f.Rand(rng)
		if err != nil {
			return poly.Poly{}, err
		}
		coeffs[i] = v
	}
	return poly.New(coeffs...), nil
}

// RandPacked is Rand in the packed representation: it fills dst (length
// DegreeBound) with a fresh uniform share pad, with no big.Int boundary
// crossing. Only valid when the fast path is on; the values are exactly
// what Rand would draw from the same rng.
func (r *FpCyclotomic) RandPacked(rng io.Reader, dst []uint64) error {
	if r.fast == nil {
		return errors.New("ring: RandPacked requires the fast path")
	}
	if len(dst) != r.n {
		return fmt.Errorf("ring: RandPacked needs %d slots, got %d", r.n, len(dst))
	}
	return r.fast.RandVec(rng, dst)
}

// MaxTag implements Ring: usable tags are [1, p-2].
func (r *FpCyclotomic) MaxTag() *big.Int {
	return new(big.Int).Sub(r.p, big.NewInt(2))
}

// DegreeBound implements Ring.
func (r *FpCyclotomic) DegreeBound() int { return r.n }

// Params implements Ring.
func (r *FpCyclotomic) Params() Params {
	return Params{Kind: KindFpCyclotomic, P: new(big.Int).Set(r.p)}
}

var _ Ring = (*FpCyclotomic)(nil)
