package ring

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"sssearch/internal/field"
	"sssearch/internal/poly"
)

// FpCyclotomic is the quotient ring F_p[x]/(x^{p-1}-1).
//
// Canonical representatives have degree < p-1 and coefficients in [0, p).
// By Lemma 1 of the paper, x^{p-1}-1 ≡ ∏_{i=1}^{p-1}(x-i) (mod p), so
// reduction never destroys root information for tags in [1, p-2]
// (Theorem 1).
type FpCyclotomic struct {
	f *field.Field
	p *big.Int
	// n = p-1 is the folding period (number of coefficients).
	n int
}

// NewFpCyclotomic constructs F_p[x]/(x^{p-1}-1) for prime p >= 5.
// Primes below 5 leave no usable tag values in [1, p-2].
func NewFpCyclotomic(p *big.Int) (*FpCyclotomic, error) {
	f, err := field.New(p)
	if err != nil {
		return nil, err
	}
	if p.Cmp(big.NewInt(5)) < 0 {
		return nil, errors.New("ring: p must be >= 5 to leave usable tag values")
	}
	if !p.IsInt64() || p.Int64() > 1<<22 {
		// p-1 coefficients per node; beyond ~4M coefficients per polynomial
		// the representation is unusable in practice.
		return nil, errors.New("ring: p too large for the F_p[x]/(x^(p-1)-1) representation")
	}
	return &FpCyclotomic{f: f, p: new(big.Int).Set(p), n: int(p.Int64() - 1)}, nil
}

// MustFp is NewFpCyclotomic for a uint64 prime; panics on error (tests).
func MustFp(p uint64) *FpCyclotomic {
	r, err := NewFpCyclotomic(new(big.Int).SetUint64(p))
	if err != nil {
		panic(err)
	}
	return r
}

// Kind implements Ring.
func (r *FpCyclotomic) Kind() Kind { return KindFpCyclotomic }

// Name implements Ring.
func (r *FpCyclotomic) Name() string {
	return fmt.Sprintf("F_%s[x]/(x^%d-1)", r.p, r.n)
}

// P returns (a copy of) the field characteristic.
func (r *FpCyclotomic) P() *big.Int { return new(big.Int).Set(r.p) }

// Field returns the coefficient field.
func (r *FpCyclotomic) Field() *field.Field { return r.f }

// Reduce folds degrees with x^{p-1} ≡ 1 and reduces coefficients mod p.
func (r *FpCyclotomic) Reduce(p poly.Poly) poly.Poly {
	if p.Degree() < r.n {
		return p.ReduceCoeffs(r.p)
	}
	folded := make([]*big.Int, r.n)
	for i := range folded {
		folded[i] = new(big.Int)
	}
	for i, d := 0, p.Degree(); i <= d; i++ {
		folded[i%r.n].Add(folded[i%r.n], p.Coeff(i))
	}
	return poly.New(folded...).ReduceCoeffs(r.p)
}

// Add implements Ring.
func (r *FpCyclotomic) Add(a, b poly.Poly) poly.Poly { return r.Reduce(a.Add(b)) }

// Sub implements Ring.
func (r *FpCyclotomic) Sub(a, b poly.Poly) poly.Poly { return r.Reduce(a.Sub(b)) }

// Neg implements Ring.
func (r *FpCyclotomic) Neg(a poly.Poly) poly.Poly { return r.Reduce(a.Neg()) }

// Mul implements Ring.
func (r *FpCyclotomic) Mul(a, b poly.Poly) poly.Poly { return r.Reduce(a.Mul(b)) }

// Zero implements Ring.
func (r *FpCyclotomic) Zero() poly.Poly { return poly.Zero() }

// One implements Ring.
func (r *FpCyclotomic) One() poly.Poly { return poly.One() }

// Linear implements Ring.
func (r *FpCyclotomic) Linear(root *big.Int) poly.Poly {
	return r.Reduce(poly.Linear(root))
}

// Equal implements Ring.
func (r *FpCyclotomic) Equal(a, b poly.Poly) bool {
	return r.Reduce(a).Equal(r.Reduce(b))
}

// Eval implements Ring. Evaluation at a is well defined iff a ≢ 0 (mod p):
// the homomorphism F_p[x]/(x^{p-1}-1) → F_p, x ↦ a, requires a^{p-1} = 1.
func (r *FpCyclotomic) Eval(f poly.Poly, a *big.Int) (*big.Int, error) {
	am := new(big.Int).Mod(a, r.p)
	if am.Sign() == 0 {
		return nil, fmt.Errorf("%w: a ≡ 0 (mod %s)", ErrEvalUndefined, r.p)
	}
	return f.EvalMod(am, r.p), nil
}

// EvalModulus implements Ring: the codomain of Eval is always F_p.
func (r *FpCyclotomic) EvalModulus(a *big.Int) (*big.Int, error) {
	am := new(big.Int).Mod(a, r.p)
	if am.Sign() == 0 {
		return nil, ErrEvalUndefined
	}
	return new(big.Int).Set(r.p), nil
}

// SolveScalar implements Ring: t = num/den in F_p when den ≢ 0.
func (r *FpCyclotomic) SolveScalar(num, den *big.Int) (*big.Int, bool) {
	d := new(big.Int).Mod(den, r.p)
	if d.Sign() == 0 {
		return nil, false
	}
	inv := new(big.Int).ModInverse(d, r.p)
	t := new(big.Int).Mul(new(big.Int).Mod(num, r.p), inv)
	return t.Mod(t, r.p), true
}

// CoeffZero implements Ring.
func (r *FpCyclotomic) CoeffZero(v *big.Int) bool {
	return new(big.Int).Mod(v, r.p).Sign() == 0
}

// Rand implements Ring: a uniformly random canonical representative (p-1
// independent uniform coefficients). This gives information-theoretic
// hiding for additive shares.
func (r *FpCyclotomic) Rand(rng io.Reader) (poly.Poly, error) {
	coeffs := make([]*big.Int, r.n)
	for i := range coeffs {
		v, err := r.f.Rand(rng)
		if err != nil {
			return poly.Poly{}, err
		}
		coeffs[i] = v
	}
	return poly.New(coeffs...), nil
}

// MaxTag implements Ring: usable tags are [1, p-2].
func (r *FpCyclotomic) MaxTag() *big.Int {
	return new(big.Int).Sub(r.p, big.NewInt(2))
}

// DegreeBound implements Ring.
func (r *FpCyclotomic) DegreeBound() int { return r.n }

// Params implements Ring.
func (r *FpCyclotomic) Params() Params {
	return Params{Kind: KindFpCyclotomic, P: new(big.Int).Set(r.p)}
}

var _ Ring = (*FpCyclotomic)(nil)
