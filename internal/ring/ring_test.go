package ring

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"

	"sssearch/internal/poly"
)

func bi(v int64) *big.Int { return big.NewInt(v) }

// TestLemma1 verifies ∏_{i=1}^{p-1}(x-i) ≡ x^{p-1}-1 (mod p) for several
// primes — Lemma 1 of the paper, the reason the cyclotomic-style modulus
// preserves root information.
func TestLemma1(t *testing.T) {
	for _, p := range []int64{5, 7, 11, 13, 17} {
		factors := make([]poly.Poly, 0, p-1)
		for i := int64(1); i < p; i++ {
			factors = append(factors, poly.Linear(bi(i)))
		}
		prod := poly.Product(factors).ReduceCoeffs(bi(p))
		// x^{p-1} - 1 mod p has constant term p-1.
		want := poly.Monomial(bi(1), int(p-1)).Add(poly.FromInt64(p - 1)).ReduceCoeffs(bi(p))
		if !prod.Equal(want) {
			t.Errorf("p=%d: ∏(x-i) = %v, want %v", p, prod, want)
		}
	}
}

func TestNewFpCyclotomicValidation(t *testing.T) {
	if _, err := NewFpCyclotomic(bi(4)); err == nil {
		t.Error("composite p accepted")
	}
	if _, err := NewFpCyclotomic(bi(3)); err == nil {
		t.Error("p=3 should be rejected (no usable tags)")
	}
	if _, err := NewFpCyclotomic(bi(5)); err != nil {
		t.Errorf("p=5: %v", err)
	}
	huge := new(big.Int).Lsh(bi(1), 30)
	if _, err := NewFpCyclotomic(huge); err == nil {
		t.Error("oversized p accepted")
	}
}

// TestFig2aReduction reproduces figure 2(a): the paper's example tree
// reduced into F_5[x]/(x^4-1). customers=3, client=2, name=4.
func TestFig2aReduction(t *testing.T) {
	r := MustFp(5)
	name := r.Linear(bi(4))
	if !name.Equal(poly.FromInt64(1, 1)) { // x+1
		t.Errorf("name = %v, want x + 1", name)
	}
	client := r.Mul(r.Linear(bi(2)), r.Linear(bi(4)))
	if !client.Equal(poly.FromInt64(3, 4, 1)) { // x^2+4x+3
		t.Errorf("client = %v, want x^2 + 4x + 3", client)
	}
	root := r.Mul(r.Linear(bi(3)), r.Mul(client, client))
	if !root.Equal(poly.FromInt64(3, 3, 3, 3)) { // 3x^3+3x^2+3x+3
		t.Errorf("root = %v, want 3x^3 + 3x^2 + 3x + 3", root)
	}
}

// TestFig2bReduction reproduces figure 2(b): the same tree in Z[x]/(x^2+1).
func TestFig2bReduction(t *testing.T) {
	q := MustIntQuotient(1, 0, 1) // x^2+1
	name := q.Linear(bi(4))
	if !name.Equal(poly.FromInt64(-4, 1)) { // x-4
		t.Errorf("name = %v, want x - 4", name)
	}
	client := q.Mul(q.Linear(bi(2)), q.Linear(bi(4)))
	if !client.Equal(poly.FromInt64(7, -6)) { // -6x+7
		t.Errorf("client = %v, want -6x + 7", client)
	}
	root := q.Mul(q.Linear(bi(3)), q.Mul(client, client))
	if !root.Equal(poly.FromInt64(45, 265)) { // 265x+45
		t.Errorf("root = %v, want 265x + 45", root)
	}
}

func TestFpReduceFolding(t *testing.T) {
	r := MustFp(5)
	// x^4 ≡ 1, x^5 ≡ x, x^7 ≡ x^3.
	if !r.Reduce(poly.Monomial(bi(1), 4)).Equal(poly.One()) {
		t.Error("x^4 != 1")
	}
	if !r.Reduce(poly.Monomial(bi(1), 5)).Equal(poly.X()) {
		t.Error("x^5 != x")
	}
	if !r.Reduce(poly.Monomial(bi(3), 7)).Equal(poly.FromInt64(0, 0, 0, 3)) {
		t.Error("3x^7 != 3x^3")
	}
	// Coefficients reduce mod 5, including negatives.
	if !r.Reduce(poly.FromInt64(-1, 6)).Equal(poly.FromInt64(4, 1)) {
		t.Error("coefficient reduction wrong")
	}
}

func TestFpEval(t *testing.T) {
	r := MustFp(5)
	client := r.Mul(r.Linear(bi(2)), r.Linear(bi(4))) // x^2+4x+3
	v, err := r.Eval(client, bi(2))
	if err != nil {
		t.Fatal(err)
	}
	if v.Sign() != 0 {
		t.Errorf("client(2) = %v, want 0", v)
	}
	v, err = r.Eval(client, bi(3))
	if err != nil {
		t.Fatal(err)
	}
	if v.Sign() == 0 {
		t.Error("client(3) = 0, want nonzero")
	}
	// Evaluation at 0 is undefined on the quotient.
	if _, err := r.Eval(client, bi(0)); err == nil {
		t.Error("Eval at 0 should fail")
	}
	if _, err := r.EvalModulus(bi(5)); err == nil {
		t.Error("EvalModulus at 0 mod p should fail")
	}
	m, err := r.EvalModulus(bi(2))
	if err != nil || m.Int64() != 5 {
		t.Errorf("EvalModulus = %v, %v", m, err)
	}
}

// TestFpEvalConsistentWithUnreduced: for a ∈ F_p^*, evaluating the reduced
// representative equals evaluating the original polynomial (this is what
// makes querying on reduced trees sound).
func TestFpEvalConsistentWithUnreduced(t *testing.T) {
	r := MustFp(13)
	rng := mrand.New(mrand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		// Random product of linear factors (like a tree node polynomial).
		f := poly.One()
		for i := 0; i < 1+rng.Intn(8); i++ {
			f = f.Mul(poly.Linear(bi(int64(1 + rng.Intn(11)))))
		}
		red := r.Reduce(f)
		a := bi(int64(1 + rng.Intn(12)))
		got, err := r.Eval(red, a)
		if err != nil {
			t.Fatal(err)
		}
		want := f.EvalMod(a, bi(13))
		if got.Cmp(want) != 0 {
			t.Fatalf("eval mismatch: reduced %v vs original %v at %v", got, want, a)
		}
	}
}

func TestIntQuotientValidation(t *testing.T) {
	if _, err := NewIntQuotient(poly.FromInt64(7)); err == nil {
		t.Error("constant modulus accepted")
	}
	if _, err := NewIntQuotient(poly.FromInt64(1, 0, 2)); err == nil {
		t.Error("non-monic modulus accepted")
	}
	// x^2-1 = (x-1)(x+1) reducible.
	if _, err := NewIntQuotient(poly.FromInt64(-1, 0, 1)); err == nil {
		t.Error("reducible modulus accepted")
	}
	// x^2+1 irreducible.
	if _, err := NewIntQuotient(poly.FromInt64(1, 0, 1)); err != nil {
		t.Errorf("x^2+1: %v", err)
	}
	// x^3+x+1 irreducible (mod 2).
	if _, err := NewIntQuotient(poly.FromInt64(1, 1, 0, 1)); err != nil {
		t.Errorf("x^3+x+1: %v", err)
	}
	// Degree 1 always fine.
	if _, err := NewIntQuotient(poly.FromInt64(-7, 1)); err != nil {
		t.Errorf("x-7: %v", err)
	}
	// Bad bound.
	if _, err := NewIntQuotientWithBound(poly.FromInt64(1, 0, 1), bi(1)); err == nil {
		t.Error("tiny bound accepted")
	}
}

func TestCertifyIrreducibleCases(t *testing.T) {
	irreducible := []poly.Poly{
		poly.FromInt64(1, 0, 1),     // x^2+1
		poly.FromInt64(-2, 0, 1),    // x^2-2
		poly.FromInt64(1, 1, 1),     // x^2+x+1
		poly.FromInt64(1, 1, 0, 1),  // x^3+x+1
		poly.FromInt64(-2, 0, 0, 1), // x^3-2
		poly.FromInt64(5, 1),        // x+5
	}
	for _, p := range irreducible {
		if err := CertifyIrreducible(p); err != nil {
			t.Errorf("CertifyIrreducible(%v) = %v, want nil", p, err)
		}
	}
	reducible := []poly.Poly{
		poly.FromInt64(-1, 0, 1),      // (x-1)(x+1)
		poly.FromInt64(0, 0, 1),       // x^2
		poly.FromInt64(-6, 11, -6, 1), // (x-1)(x-2)(x-3)
		poly.FromInt64(2, 3, 1),       // (x+1)(x+2)
	}
	for _, p := range reducible {
		if err := CertifyIrreducible(p); err == nil {
			t.Errorf("CertifyIrreducible(%v) = nil, want error", p)
		}
	}
	// x^4+1: irreducible over Z but reducible mod every prime — we must
	// reject it (cannot certify) rather than accept silently.
	if err := CertifyIrreducible(poly.FromInt64(1, 0, 0, 0, 1)); err == nil {
		t.Error("x^4+1 should be rejected as uncertifiable")
	}
	// x^4+x+1 is irreducible mod 2 — certifiable at degree 4.
	if err := CertifyIrreducible(poly.FromInt64(1, 1, 0, 0, 1)); err != nil {
		t.Errorf("x^4+x+1: %v", err)
	}
}

func TestIntQuotientReduceAndOps(t *testing.T) {
	q := MustIntQuotient(1, 0, 1) // x^2+1
	// x^2 ≡ -1: x^3 ≡ -x.
	if !q.Reduce(poly.Monomial(bi(1), 3)).Equal(poly.FromInt64(0, -1)) {
		t.Error("x^3 != -x mod x^2+1")
	}
	a := poly.FromInt64(1, 2)  // 2x+1
	b := poly.FromInt64(3, -1) // -x+3
	// (2x+1)(-x+3) = -2x^2+5x+3 ≡ 5x+5.
	if !q.Mul(a, b).Equal(poly.FromInt64(5, 5)) {
		t.Error("Mul wrong")
	}
	if !q.Add(a, b).Equal(poly.FromInt64(4, 1)) {
		t.Error("Add wrong")
	}
	if !q.Sub(a, a).IsZero() {
		t.Error("Sub wrong")
	}
	if !q.Neg(a).Add(a).IsZero() {
		t.Error("Neg wrong")
	}
	if !q.Equal(poly.Monomial(bi(1), 2), poly.FromInt64(-1)) {
		t.Error("Equal across representatives wrong")
	}
}

func TestIntQuotientEvalFig6Semantics(t *testing.T) {
	q := MustIntQuotient(1, 0, 1) // x^2+1, r(2) = 5
	m, err := q.EvalModulus(bi(2))
	if err != nil || m.Int64() != 5 {
		t.Fatalf("EvalModulus(2) = %v, %v; want 5", m, err)
	}
	// Root node 265x+45 at x=2: 575 ≡ 0 (mod 5) — the root matches //client.
	root := poly.FromInt64(45, 265)
	v, err := q.Eval(root, bi(2))
	if err != nil {
		t.Fatal(err)
	}
	if v.Sign() != 0 {
		t.Errorf("root(2) mod 5 = %v, want 0", v)
	}
	// name = x-4 at 2 → -2 ≡ 3 (mod 5): dead branch, matches figure 6.
	name := poly.FromInt64(-4, 1)
	v, err = q.Eval(name, bi(2))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int64() != 3 {
		t.Errorf("name(2) mod 5 = %v, want 3", v)
	}
	// Evaluation where |r(a)| <= 1 must fail: r(0) = 1.
	if _, err := q.Eval(root, bi(0)); err == nil {
		t.Error("Eval at 0 should fail (|r(0)|=1)")
	}
}

func TestSolveScalar(t *testing.T) {
	fp := MustFp(5)
	if v, ok := fp.SolveScalar(bi(3), bi(2)); !ok || v.Int64() != 4 {
		t.Errorf("Fp SolveScalar(3,2) = %v,%v; want 4 (2*4=8≡3)", v, ok)
	}
	if _, ok := fp.SolveScalar(bi(3), bi(5)); ok {
		t.Error("Fp SolveScalar with den≡0 should fail")
	}
	z := MustIntQuotient(1, 0, 1)
	if v, ok := z.SolveScalar(bi(-12), bi(4)); !ok || v.Int64() != -3 {
		t.Errorf("Z SolveScalar(-12,4) = %v,%v; want -3", v, ok)
	}
	if _, ok := z.SolveScalar(bi(7), bi(2)); ok {
		t.Error("Z SolveScalar inexact division should fail")
	}
	if _, ok := z.SolveScalar(bi(7), bi(0)); ok {
		t.Error("Z SolveScalar by zero should fail")
	}
}

func TestRandShapes(t *testing.T) {
	fp := MustFp(7)
	for i := 0; i < 20; i++ {
		s, err := fp.Rand(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if s.Degree() >= fp.DegreeBound() {
			t.Fatalf("share degree %d out of bounds", s.Degree())
		}
		for j := 0; j <= s.Degree(); j++ {
			c := s.Coeff(j)
			if c.Sign() < 0 || c.Cmp(bi(7)) >= 0 {
				t.Fatal("Fp share coefficient out of range")
			}
		}
	}
	z, err := NewIntQuotientWithBound(poly.FromInt64(1, 0, 1), bi(100))
	if err != nil {
		t.Fatal(err)
	}
	seenNeg := false
	for i := 0; i < 200; i++ {
		s, err := z.Rand(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if s.Degree() >= z.DegreeBound() {
			t.Fatal("Z share degree out of bounds")
		}
		for j := 0; j <= s.Degree(); j++ {
			c := s.Coeff(j)
			if c.CmpAbs(bi(100)) > 0 {
				t.Fatalf("Z share coefficient %v out of [-100,100]", c)
			}
			if c.Sign() < 0 {
				seenNeg = true
			}
		}
	}
	if !seenNeg {
		t.Error("Z shares never negative — biased sampler?")
	}
}

// TestSharingHidesInFp: c + (f - c) == f for random pads (additivity), and
// the pad alone is uniform over the ring (spot-check dimension).
func TestSharingRoundTripBothRings(t *testing.T) {
	rings := []Ring{MustFp(11), MustIntQuotient(1, 0, 1)}
	for _, r := range rings {
		f := r.Mul(r.Linear(bi(2)), r.Mul(r.Linear(bi(3)), r.Linear(bi(4))))
		for i := 0; i < 30; i++ {
			pad, err := r.Rand(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			server := r.Sub(f, pad)
			if !r.Equal(r.Add(pad, server), f) {
				t.Fatalf("%s: pad + (f-pad) != f", r.Name())
			}
		}
	}
}

func TestParamsRoundTrip(t *testing.T) {
	prs := []Params{
		MustFp(5).Params(),
		MustFp(65537).Params(),
		MustIntQuotient(1, 0, 1).Params(),
		MustIntQuotient(1, 1, 0, 1).Params(),
	}
	for _, pr := range prs {
		data, err := pr.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got Params
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		r1, err := FromParams(pr)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := FromParams(got)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Name() != r2.Name() {
			t.Errorf("params round trip: %s != %s", r1.Name(), r2.Name())
		}
	}
	// Corrupt input.
	var pr Params
	if err := pr.UnmarshalBinary(nil); err == nil {
		t.Error("empty params accepted")
	}
	if err := pr.UnmarshalBinary([]byte{99}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := FromParams(Params{Kind: KindFpCyclotomic}); err == nil {
		t.Error("FromParams without P accepted")
	}
}

func TestMaxTagAndNames(t *testing.T) {
	fp := MustFp(5)
	if fp.MaxTag().Int64() != 3 {
		t.Errorf("MaxTag = %v, want 3", fp.MaxTag())
	}
	if fp.DegreeBound() != 4 {
		t.Error("DegreeBound wrong")
	}
	if fp.Name() != "F_5[x]/(x^4-1)" {
		t.Errorf("Name = %q", fp.Name())
	}
	z := MustIntQuotient(1, 0, 1)
	if z.MaxTag() != nil {
		t.Error("Z MaxTag should be nil (unbounded)")
	}
	if z.DegreeBound() != 2 {
		t.Error("Z DegreeBound wrong")
	}
	if z.Name() != "Z[x]/(x^2 + 1)" {
		t.Errorf("Name = %q", z.Name())
	}
	if KindFpCyclotomic.String() == "" || KindIntQuotient.String() == "" || Kind(9).String() == "" {
		t.Error("Kind.String incomplete")
	}
}

func TestFpGCDInternal(t *testing.T) {
	p := bi(7)
	// gcd((x-1)(x-2), (x-2)(x-3)) = x-2 over F_7.
	a := poly.Linear(bi(1)).Mul(poly.Linear(bi(2)))
	b := poly.Linear(bi(2)).Mul(poly.Linear(bi(3)))
	g := fpGCD(a, b, p)
	if !g.Equal(poly.Linear(bi(2)).ReduceCoeffs(p)) {
		t.Errorf("fpGCD = %v", g)
	}
	if !fpGCD(poly.Zero(), poly.Zero(), p).IsZero() {
		t.Error("gcd(0,0) != 0")
	}
}

func BenchmarkFpMulP101(b *testing.B) {
	r := MustFp(101)
	rng := mrand.New(mrand.NewSource(1))
	coeffs := func() []*big.Int {
		cs := make([]*big.Int, 100)
		for i := range cs {
			cs[i] = bi(rng.Int63n(101))
		}
		return cs
	}
	x := poly.New(coeffs()...)
	y := poly.New(coeffs()...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Mul(x, y)
	}
}

func BenchmarkIntQuotientMul(b *testing.B) {
	q := MustIntQuotient(1, 1, 0, 1)
	x := poly.FromInt64(12345, -6789, 4242)
	y := poly.FromInt64(-777, 888, 999)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Mul(x, y)
	}
}
