package ring

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"sssearch/internal/poly"
)

// DefaultRandBound is the default coefficient bound for IntQuotient share
// pads: coefficients are drawn uniformly from [-B, B] with B = 2^128.
// Over Z a finite pad cannot hide unbounded data information-theoretically;
// 2^128 gives 128 bits of statistical hiding for the coefficient sizes that
// occur in practice (the paper is silent on this point; see DESIGN.md §6).
var DefaultRandBound = new(big.Int).Lsh(big.NewInt(1), 128)

// IntQuotient is the quotient ring Z[x]/(r(x)) for a monic irreducible
// integer polynomial r. Canonical representatives have degree < deg(r);
// their integer coefficients are unbounded and grow with tree size (§5 of
// the paper — measured by experiment E13).
type IntQuotient struct {
	r         poly.Poly
	deg       int
	randBound *big.Int
	// sampleBytes and sampleExcess precompute rejection-sampling parameters
	// for Rand: we draw values uniform in [0, 2B] and shift by -B.
	sampleSpan *big.Int // 2B+1
}

// NewIntQuotient constructs Z[x]/(r(x)) with the default pad bound.
// r must be monic of degree >= 1 and certifiably irreducible over Z
// (verified via reduction modulo small primes; see CertifyIrreducible).
func NewIntQuotient(r poly.Poly) (*IntQuotient, error) {
	return NewIntQuotientWithBound(r, DefaultRandBound)
}

// NewIntQuotientWithBound is NewIntQuotient with an explicit pad coefficient
// bound B >= 2 (shares drawn uniformly from [-B, B]).
func NewIntQuotientWithBound(r poly.Poly, bound *big.Int) (*IntQuotient, error) {
	if r.Degree() < 1 {
		return nil, errors.New("ring: modulus must have degree >= 1")
	}
	if !r.IsMonic() {
		return nil, errors.New("ring: modulus must be monic")
	}
	if err := CertifyIrreducible(r); err != nil {
		return nil, err
	}
	if bound == nil || bound.Cmp(big.NewInt(2)) < 0 {
		return nil, errors.New("ring: pad bound must be >= 2")
	}
	span := new(big.Int).Lsh(bound, 1)
	span.Add(span, big.NewInt(1))
	return &IntQuotient{
		r:          r,
		deg:        r.Degree(),
		randBound:  new(big.Int).Set(bound),
		sampleSpan: span,
	}, nil
}

// MustIntQuotient is NewIntQuotient but panics on error (tests).
func MustIntQuotient(coeffs ...int64) *IntQuotient {
	r, err := NewIntQuotient(poly.FromInt64(coeffs...))
	if err != nil {
		panic(err)
	}
	return r
}

// Kind implements Ring.
func (q *IntQuotient) Kind() Kind { return KindIntQuotient }

// Name implements Ring.
func (q *IntQuotient) Name() string { return fmt.Sprintf("Z[x]/(%s)", q.r) }

// Modulus returns the quotient polynomial r(x).
func (q *IntQuotient) Modulus() poly.Poly { return q.r }

// Reduce implements Ring.
func (q *IntQuotient) Reduce(p poly.Poly) poly.Poly {
	rem, err := p.Mod(q.r)
	if err != nil {
		// r is monic and nonzero by construction; Mod cannot fail.
		panic(fmt.Sprintf("ring: reduce: %v", err))
	}
	return rem
}

// Add implements Ring.
func (q *IntQuotient) Add(a, b poly.Poly) poly.Poly { return q.Reduce(a.Add(b)) }

// Sub implements Ring.
func (q *IntQuotient) Sub(a, b poly.Poly) poly.Poly { return q.Reduce(a.Sub(b)) }

// Neg implements Ring.
func (q *IntQuotient) Neg(a poly.Poly) poly.Poly { return q.Reduce(a.Neg()) }

// Mul implements Ring.
func (q *IntQuotient) Mul(a, b poly.Poly) poly.Poly { return q.Reduce(a.Mul(b)) }

// Zero implements Ring.
func (q *IntQuotient) Zero() poly.Poly { return poly.Zero() }

// One implements Ring.
func (q *IntQuotient) One() poly.Poly { return poly.One() }

// Linear implements Ring.
func (q *IntQuotient) Linear(root *big.Int) poly.Poly {
	return q.Reduce(poly.Linear(root))
}

// Equal implements Ring.
func (q *IntQuotient) Equal(a, b poly.Poly) bool {
	return q.Reduce(a).Equal(q.Reduce(b))
}

// Eval implements Ring: the homomorphism Z[x]/(r(x)) → Z/(r(a)), x ↦ a.
// Well defined whenever |r(a)| > 1 (figure 6 of the paper: "everything is
// calculated modulo r(2) = 5").
func (q *IntQuotient) Eval(f poly.Poly, a *big.Int) (*big.Int, error) {
	m, err := q.EvalModulus(a)
	if err != nil {
		return nil, err
	}
	return f.EvalMod(a, m), nil
}

// EvalModulus implements Ring: |r(a)|.
func (q *IntQuotient) EvalModulus(a *big.Int) (*big.Int, error) {
	m := q.r.Eval(a)
	m.Abs(m)
	if m.Cmp(big.NewInt(1)) <= 0 {
		return nil, fmt.Errorf("%w: |r(%s)| = %s", ErrEvalUndefined, a, m)
	}
	return m, nil
}

// SolveScalar implements Ring: exact integer division num/den.
func (q *IntQuotient) SolveScalar(num, den *big.Int) (*big.Int, bool) {
	if den.Sign() == 0 {
		return nil, false
	}
	t, rem := new(big.Int).QuoRem(num, den, new(big.Int))
	if rem.Sign() != 0 {
		return nil, false
	}
	return t, true
}

// CoeffZero implements Ring.
func (q *IntQuotient) CoeffZero(v *big.Int) bool { return v.Sign() == 0 }

// Rand implements Ring: deg(r) coefficients uniform in [-B, B].
func (q *IntQuotient) Rand(rng io.Reader) (poly.Poly, error) {
	coeffs := make([]*big.Int, q.deg)
	for i := range coeffs {
		v, err := uniformBelow(rng, q.sampleSpan)
		if err != nil {
			return poly.Poly{}, err
		}
		coeffs[i] = v.Sub(v, q.randBound)
	}
	return poly.New(coeffs...), nil
}

// RandBound returns the configured pad coefficient bound.
func (q *IntQuotient) RandBound() *big.Int { return new(big.Int).Set(q.randBound) }

// MaxTag implements Ring: tags are unbounded over Z (nil).
func (q *IntQuotient) MaxTag() *big.Int { return nil }

// DegreeBound implements Ring.
func (q *IntQuotient) DegreeBound() int { return q.deg }

// Params implements Ring.
func (q *IntQuotient) Params() Params {
	return Params{Kind: KindIntQuotient, R: q.r, RandBound: new(big.Int).Set(q.randBound)}
}

// uniformBelow draws a uniform integer in [0, n) by rejection sampling.
func uniformBelow(rng io.Reader, n *big.Int) (*big.Int, error) {
	bits := n.BitLen()
	nbytes := (bits + 7) / 8
	buf := make([]byte, nbytes)
	excess := uint(nbytes*8 - bits)
	for {
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, err
		}
		buf[0] &= byte(0xff >> excess)
		v := new(big.Int).SetBytes(buf)
		if v.Cmp(n) < 0 {
			return v, nil
		}
	}
}

var _ Ring = (*IntQuotient)(nil)
