package ring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"sssearch/internal/poly"
)

// Binary layout of Params:
//
//	byte    kind
//	kind == KindFpCyclotomic:
//	    varint  len(P bytes); bytes  P (big-endian)
//	kind == KindIntQuotient:
//	    poly    R            (poly wire format)
//	    varint  len(B bytes); bytes  RandBound (big-endian)

// maxParamBytes bounds a single big.Int field in a serialized Params.
const maxParamBytes = 1 << 16

// MarshalBinary implements encoding.BinaryMarshaler for Params.
func (pr Params) MarshalBinary() ([]byte, error) {
	buf := []byte{byte(pr.Kind)}
	switch pr.Kind {
	case KindFpCyclotomic:
		if pr.P == nil || pr.P.Sign() <= 0 {
			return nil, errors.New("ring: params missing P")
		}
		b := pr.P.Bytes()
		buf = binary.AppendUvarint(buf, uint64(len(b)))
		buf = append(buf, b...)
	case KindIntQuotient:
		var err error
		buf, err = pr.R.AppendBinary(buf)
		if err != nil {
			return nil, err
		}
		bound := pr.RandBound
		if bound == nil {
			bound = DefaultRandBound
		}
		b := bound.Bytes()
		buf = binary.AppendUvarint(buf, uint64(len(b)))
		buf = append(buf, b...)
	default:
		return nil, fmt.Errorf("ring: marshal unknown kind %d", pr.Kind)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for Params.
func (pr *Params) UnmarshalBinary(data []byte) error {
	p, rest, err := DecodeParams(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errors.New("ring: trailing bytes after params")
	}
	*pr = p
	return nil
}

// DecodeParams decodes one Params from the front of data, returning the
// remaining bytes.
func DecodeParams(data []byte) (Params, []byte, error) {
	if len(data) == 0 {
		return Params{}, nil, errors.New("ring: empty params")
	}
	kind := Kind(data[0])
	data = data[1:]
	switch kind {
	case KindFpCyclotomic:
		v, rest, err := decodeBig(data)
		if err != nil {
			return Params{}, nil, err
		}
		return Params{Kind: kind, P: v}, rest, nil
	case KindIntQuotient:
		r, rest, err := poly.DecodePoly(data)
		if err != nil {
			return Params{}, nil, err
		}
		bound, rest, err := decodeBig(rest)
		if err != nil {
			return Params{}, nil, err
		}
		return Params{Kind: kind, R: r, RandBound: bound}, rest, nil
	default:
		return Params{}, nil, fmt.Errorf("ring: unknown kind byte %d", kind)
	}
}

func decodeBig(data []byte) (*big.Int, []byte, error) {
	l, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, nil, errors.New("ring: bad big.Int length")
	}
	if l > maxParamBytes {
		return nil, nil, fmt.Errorf("ring: big.Int length %d exceeds limit", l)
	}
	data = data[k:]
	if uint64(len(data)) < l {
		return nil, nil, errors.New("ring: truncated big.Int")
	}
	return new(big.Int).SetBytes(data[:l]), data[l:], nil
}
