package ring

import (
	"math/bits"
	"math/rand"
	"sync"
	"testing"
)

// nttTestPrimes spans both engine paths: 31 and 257 have MaxRadix-smooth
// p-1 (mixed-radix NTT); 227 (226 = 2·113) and 1283 (1282 = 2·641) do not
// and exercise the auxiliary-prime convolution fallback.
var nttTestPrimes = []uint64{31, 257, 227, 1283}

func randPacked(rng *rand.Rand, p uint64, n int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = rng.Uint64() % p
	}
	return v
}

// TestMulPackedNTTDifferential pins the engine-routed MulPacked against
// the schoolbook reference across random operand sizes on both smooth and
// fallback rings, with a big.Int cross-check (SetFast(false)) on a
// subset of trials. Sizes are drawn to straddle the cutover so both the
// short schoolbook path and the transform path are hit.
func TestMulPackedNTTDifferential(t *testing.T) {
	for _, p := range nttTestPrimes {
		r := MustFp(p)
		ref := MustFp(p)
		ref.SetFast(false)
		n := r.DegreeBound()
		rng := rand.New(rand.NewSource(int64(p) * 101))
		for trial := 0; trial < 40; trial++ {
			la, lb := 1+rng.Intn(n), 1+rng.Intn(n)
			pa, pb := randPacked(rng, p, la), randPacked(rng, p, lb)
			got := r.MulPacked(pa, pb)
			want := r.MulPackedSchoolbook(pa, pb)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("p=%d la=%d lb=%d coeff %d: NTT %d, schoolbook %d", p, la, lb, i, got[i], want[i])
				}
			}
			// big.Int cross-check on a few trials (O(n²) big.Int is slow on
			// the wide rings).
			if trial < 5 {
				bigWant := ref.Mul(r.Unpack(pa), r.Unpack(pb))
				if !r.Unpack(got).Equal(bigWant) {
					t.Fatalf("p=%d la=%d lb=%d: NTT diverged from big.Int reference", p, la, lb)
				}
			}
		}
	}
}

// TestMulPackedCutoverBoundary walks operand sizes across the schoolbook→
// NTT cutover (±1 on the la·lb product) — the seam where the two paths
// hand over must be invisible.
func TestMulPackedCutoverBoundary(t *testing.T) {
	for _, p := range []uint64{257, 227} {
		r := MustFp(p)
		rng := rand.New(rand.NewSource(int64(p)))
		side := 1
		for side*side < r.nttCut {
			side++
		}
		for _, la := range []int{side - 2, side - 1, side, side + 1} {
			if la < 1 || la > r.DegreeBound() {
				continue
			}
			for _, lb := range []int{side - 1, side, side + 1} {
				if lb < 1 || lb > r.DegreeBound() {
					continue
				}
				pa, pb := randPacked(rng, p, la), randPacked(rng, p, lb)
				got := r.MulPacked(pa, pb)
				want := r.MulPackedSchoolbook(pa, pb)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("p=%d la=%d lb=%d (cut %d) coeff %d: %d != %d",
							p, la, lb, r.nttCut, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestMulPackedProdDifferential pins the multi-factor product against the
// left-to-right schoolbook fold, including empty and single-factor lists
// and a zero factor annihilating the product.
func TestMulPackedProdDifferential(t *testing.T) {
	for _, p := range []uint64{31, 257, 227} {
		r := MustFp(p)
		n := r.DegreeBound()
		rng := rand.New(rand.NewSource(int64(p) * 7))
		for trial := 0; trial < 25; trial++ {
			k := rng.Intn(6)
			factors := make([][]uint64, k)
			want := make([]uint64, n)
			want[0] = 1
			for i := range factors {
				factors[i] = randPacked(rng, p, 1+rng.Intn(n/2+1))
				want = r.MulPackedSchoolbook(want, factors[i])
			}
			got := r.MulPackedProd(factors...)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("p=%d k=%d coeff %d: prod %d, fold %d", p, k, i, got[i], want[i])
				}
			}
		}
		// A zero factor annihilates the product regardless of path.
		got := r.MulPackedProd(randPacked(rng, p, n), []uint64{0}, randPacked(rng, p, n))
		for i, v := range got {
			if v != 0 {
				t.Fatalf("p=%d: zero factor left coeff %d = %d", p, i, v)
			}
		}
	}
}

// TestSetNTTAblation: with the engine toggled off every product must run
// schoolbook and still match; toggled back on, the cached tables resume.
func TestSetNTTAblation(t *testing.T) {
	r := MustFp(257)
	rng := rand.New(rand.NewSource(42))
	pa, pb := randPacked(rng, 257, 256), randPacked(rng, 257, 256)
	on := r.MulPacked(pa, pb)
	r.SetNTT(false)
	off := r.MulPacked(pa, pb)
	r.SetNTT(true)
	back := r.MulPacked(pa, pb)
	for i := range on {
		if on[i] != off[i] || on[i] != back[i] {
			t.Fatalf("coeff %d: on=%d off=%d back=%d", i, on[i], off[i], back[i])
		}
	}
}

// TestNTTLazyInitRace regresses the lazy twiddle-table build under
// concurrent first use: many goroutines issue their first NTT-sized
// multiply on a fresh ring at once (meaningful under -race, which the CI
// race step runs).
func TestNTTLazyInitRace(t *testing.T) {
	for _, p := range []uint64{257, 227} {
		r := MustFp(p)
		n := r.DegreeBound()
		rng := rand.New(rand.NewSource(int64(p) * 13))
		pa, pb := randPacked(rng, p, n), randPacked(rng, p, n)
		want := r.MulPackedSchoolbook(pa, pb)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got := r.MulPacked(pa, pb)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("p=%d racing first multiply diverged at %d", p, i)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

// FuzzMulPackedNTT fuzzes the engine-routed multiply against the
// schoolbook reference on both ring families, deriving operand shapes and
// coefficients from the fuzz input.
func FuzzMulPackedNTT(f *testing.F) {
	f.Add(uint8(0), uint16(3), uint16(5), int64(1))
	f.Add(uint8(1), uint16(200), uint16(256), int64(2))
	f.Add(uint8(2), uint16(100), uint16(226), int64(3))
	f.Add(uint8(3), uint16(1000), uint16(1282), int64(4))
	rings := []*FpCyclotomic{MustFp(31), MustFp(257), MustFp(227), MustFp(1283)}
	f.Fuzz(func(t *testing.T, which uint8, la, lb uint16, seed int64) {
		r := rings[int(which)%len(rings)]
		n := r.DegreeBound()
		a := 1 + int(la)%n
		b := 1 + int(lb)%n
		p := r.P().Uint64()
		rng := rand.New(rand.NewSource(seed))
		pa, pb := randPacked(rng, p, a), randPacked(rng, p, b)
		got := r.MulPacked(pa, pb)
		want := r.MulPackedSchoolbook(pa, pb)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d la=%d lb=%d coeff %d: %d != %d", p, a, b, i, got[i], want[i])
			}
		}
	})
}

// sanity: the cutover estimate stays positive and monotone-ish in n (a
// guard against accidental overflow on the largest constructible rings).
func TestNTTCutoverCost(t *testing.T) {
	last := 0
	for _, n := range []int{4, 30, 256, 1 << 12, 1 << 22} {
		c := nttCutoverCost(n)
		if c <= last {
			t.Fatalf("cutover cost not increasing at n=%d: %d <= %d", n, c, last)
		}
		if c != 5*n*bits.Len(uint(n)) {
			t.Fatalf("cutover cost formula drifted at n=%d", n)
		}
		last = c
	}
}
