package ring

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sssearch/internal/poly"
)

// randomRingPoly draws a random Z[x] polynomial suited for ring tests.
func randomRingPoly(r *rand.Rand, maxDeg int, coeffRange int64) poly.Poly {
	deg := r.Intn(maxDeg + 1)
	cs := make([]*big.Int, deg+1)
	for i := range cs {
		cs[i] = big.NewInt(r.Int63n(2*coeffRange+1) - coeffRange)
	}
	return poly.New(cs...)
}

func quickCfg(maxDeg int) *quick.Config {
	return &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randomRingPoly(r, maxDeg, 50))
			}
		},
	}
}

// TestRingAxiomsProperty checks commutative-ring axioms on canonical
// representatives for both ring families via testing/quick.
func TestRingAxiomsProperty(t *testing.T) {
	rings := []Ring{MustFp(13), MustIntQuotient(1, 0, 1), MustIntQuotient(1, 1, 0, 1)}
	for _, r := range rings {
		r := r
		err := quick.Check(func(a, b, c poly.Poly) bool {
			// Reduce is idempotent.
			if !r.Reduce(r.Reduce(a)).Equal(r.Reduce(a)) {
				return false
			}
			// Commutativity.
			if !r.Add(a, b).Equal(r.Add(b, a)) {
				return false
			}
			if !r.Mul(a, b).Equal(r.Mul(b, a)) {
				return false
			}
			// Associativity.
			if !r.Add(r.Add(a, b), c).Equal(r.Add(a, r.Add(b, c))) {
				return false
			}
			if !r.Mul(r.Mul(a, b), c).Equal(r.Mul(a, r.Mul(b, c))) {
				return false
			}
			// Distributivity.
			if !r.Mul(a, r.Add(b, c)).Equal(r.Add(r.Mul(a, b), r.Mul(a, c))) {
				return false
			}
			// Identities and inverses.
			if !r.Add(a, r.Zero()).Equal(r.Reduce(a)) {
				return false
			}
			if !r.Mul(a, r.One()).Equal(r.Reduce(a)) {
				return false
			}
			return r.Add(a, r.Neg(a)).Equal(r.Zero())
		}, quickCfg(8))
		if err != nil {
			t.Errorf("%s: %v", r.Name(), err)
		}
	}
}

// TestEvalIsHomomorphismProperty: Eval must commute with ring operations —
// the property the whole query protocol rests on.
func TestEvalIsHomomorphismProperty(t *testing.T) {
	cases := []struct {
		r     Ring
		point int64
	}{
		{MustFp(13), 5},
		{MustIntQuotient(1, 0, 1), 2},    // mod r(2)=5
		{MustIntQuotient(1, 0, 1), 3},    // mod r(3)=10
		{MustIntQuotient(1, 1, 0, 1), 2}, // mod r(2)=11
	}
	for _, c := range cases {
		c := c
		a := big.NewInt(c.point)
		mod, err := c.r.EvalModulus(a)
		if err != nil {
			t.Fatalf("%s at %d: %v", c.r.Name(), c.point, err)
		}
		err = quick.Check(func(f, g poly.Poly) bool {
			ef, err1 := c.r.Eval(c.r.Reduce(f), a)
			eg, err2 := c.r.Eval(c.r.Reduce(g), a)
			if err1 != nil || err2 != nil {
				return false
			}
			// Eval(f+g) == Eval(f)+Eval(g).
			sum, err := c.r.Eval(c.r.Add(f, g), a)
			if err != nil {
				return false
			}
			want := new(big.Int).Add(ef, eg)
			want.Mod(want, mod)
			if sum.Cmp(want) != 0 {
				return false
			}
			// Eval(f*g) == Eval(f)*Eval(g).
			prod, err := c.r.Eval(c.r.Mul(f, g), a)
			if err != nil {
				return false
			}
			want = new(big.Int).Mul(ef, eg)
			want.Mod(want, mod)
			return prod.Cmp(want) == 0
		}, quickCfg(6))
		if err != nil {
			t.Errorf("%s at %d: %v", c.r.Name(), c.point, err)
		}
	}
}

// TestRootDetectionProperty: (x - t) divides f ⟺ Eval(f, t) == 0 for
// products of linear factors — the zero-test soundness behind §4.3.
func TestRootDetectionProperty(t *testing.T) {
	fp := MustFp(101)
	err := quick.Check(func(roots []uint8, probe uint8) bool {
		if len(roots) == 0 || len(roots) > 8 {
			return true
		}
		f := fp.One()
		contains := false
		p := int64(probe%99) + 1 // [1, 99]
		for _, rt := range roots {
			v := int64(rt%99) + 1
			if v == p {
				contains = true
			}
			f = fp.Mul(f, fp.Linear(big.NewInt(v)))
		}
		val, err := fp.Eval(f, big.NewInt(p))
		if err != nil {
			return false
		}
		return (val.Sign() == 0) == contains
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Fatal(err)
	}
}

// TestZRingRootDetectionProperty: same soundness in the Z ring, including
// the possibility of FALSE positives mod r(a) (the sum can vanish mod r(a)
// without (x-a) dividing f) — verify no false NEGATIVES ever occur.
func TestZRingRootDetectionProperty(t *testing.T) {
	z := MustIntQuotient(1, 0, 1)
	err := quick.Check(func(roots []uint8, probe uint8) bool {
		if len(roots) == 0 || len(roots) > 6 {
			return true
		}
		f := z.One()
		contains := false
		p := int64(probe%20) + 2 // r(a) > 1 needs |a| >= 2 ... a>=2 gives r(a)>=5
		for _, rt := range roots {
			v := int64(rt%20) + 2
			if v == p {
				contains = true
			}
			f = z.Mul(f, z.Linear(big.NewInt(v)))
		}
		val, err := z.Eval(f, big.NewInt(p))
		if err != nil {
			return false
		}
		if contains && val.Sign() != 0 {
			return false // false negative: never allowed
		}
		return true
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Fatal(err)
	}
}
