package ring

import (
	"errors"
	"fmt"
	"math/big"

	"sssearch/internal/poly"
)

// ErrCannotCertify is returned when irreducibility over Z could not be
// certified with the available sufficient conditions. (A polynomial like
// x^4+1 is irreducible over Z yet reducible modulo every prime, so the
// mod-p certificate is sufficient but not complete; such moduli are simply
// rejected rather than risking a non-irreducible quotient, which would
// break Theorem 2's uniqueness.)
var ErrCannotCertify = errors.New("ring: cannot certify irreducibility of modulus")

// certPrimes are the primes tried for the mod-p irreducibility certificate.
var certPrimes = []int64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43,
	47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113}

// CertifyIrreducible verifies that a monic r ∈ Z[x] is irreducible over Z,
// using (in order): the trivial degree-1 case, Rabin's irreducibility test
// modulo small primes (irreducible mod p ⇒ irreducible over Z for monic r),
// and, for degree 2–3, a rational-root search. Returns nil on success,
// an error describing the failure otherwise.
func CertifyIrreducible(r poly.Poly) error {
	d := r.Degree()
	switch {
	case d < 1:
		return errors.New("ring: constant polynomial is not a valid modulus")
	case d == 1:
		return nil
	}
	if !r.IsMonic() {
		return errors.New("ring: modulus must be monic")
	}
	for _, p := range certPrimes {
		bp := big.NewInt(p)
		if irreducibleModP(r, bp) {
			return nil
		}
	}
	// Degree 2 and 3 polynomials are reducible over Q iff they have a
	// rational root; for a monic integer polynomial any rational root is an
	// integer dividing the constant term.
	if d <= 3 {
		if hasIntegerRoot(r) {
			return fmt.Errorf("ring: modulus %s has an integer root (reducible)", r)
		}
		return nil
	}
	return fmt.Errorf("%w: %s (deg %d)", ErrCannotCertify, r, d)
}

// IrreducibleModP runs Rabin's irreducibility test on r reduced modulo a
// prime p: r̄ of degree d is irreducible over F_p iff x^{p^d} ≡ x (mod r̄)
// and gcd(x^{p^{d/q}} − x, r̄) = 1 for every prime divisor q of d.
// Exported for the GF(p^e) extension-field construction (package gf).
func IrreducibleModP(r poly.Poly, p *big.Int) bool {
	return irreducibleModP(r, p)
}

// irreducibleModP is the internal implementation.
func irreducibleModP(r poly.Poly, p *big.Int) bool {
	f := r.ReduceCoeffs(p)
	d := r.Degree()
	if f.Degree() != d {
		return false // leading coefficient vanished (cannot happen for monic)
	}
	x := poly.X()
	// x^{p^d} mod (f, p): apply the p-power (Frobenius) map d times.
	xp := x
	for i := 0; i < d; i++ {
		xp = fpPowMod(xp, p, f, p)
	}
	if !fpSub(xp, x, p).IsZero() {
		return false
	}
	// gcd condition for each prime divisor q of d: with e = d/q,
	// gcd(x^{p^e} - x, f) must be 1.
	for _, q := range primeDivisors(d) {
		e := d / q
		xe := x
		for i := 0; i < e; i++ {
			xe = fpPowMod(xe, p, f, p)
		}
		g := fpGCD(fpSub(xe, x, p), f, p)
		if g.Degree() > 0 {
			return false
		}
	}
	return true
}

// fpMod reduces a modulo (f, p) for monic f with coefficients in [0, p).
func fpMod(a, f poly.Poly, p *big.Int) poly.Poly {
	rem, err := a.ReduceCoeffs(p).Mod(f)
	if err != nil {
		panic(fmt.Sprintf("ring: fpMod: %v", err))
	}
	return rem.ReduceCoeffs(p)
}

// fpSub returns (a - b) with coefficients reduced mod p.
func fpSub(a, b poly.Poly, p *big.Int) poly.Poly {
	return a.Sub(b).ReduceCoeffs(p)
}

// fpMulMod returns a*b mod (f, p).
func fpMulMod(a, b, f poly.Poly, p *big.Int) poly.Poly {
	return fpMod(a.Mul(b), f, p)
}

// fpPowMod returns base^e mod (f, p) by square-and-multiply over e's bits.
func fpPowMod(base poly.Poly, e *big.Int, f poly.Poly, p *big.Int) poly.Poly {
	result := poly.One()
	b := fpMod(base, f, p)
	for i := e.BitLen() - 1; i >= 0; i-- {
		result = fpMulMod(result, result, f, p)
		if e.Bit(i) == 1 {
			result = fpMulMod(result, b, f, p)
		}
	}
	return result
}

// fpMonic scales a to be monic over F_p (a must be nonzero mod p).
func fpMonic(a poly.Poly, p *big.Int) poly.Poly {
	a = a.ReduceCoeffs(p)
	if a.IsZero() {
		return a
	}
	lead := a.LeadingCoeff()
	inv := new(big.Int).ModInverse(lead, p)
	if inv == nil {
		// p prime and lead != 0 mod p makes this unreachable.
		panic("ring: non-invertible leading coefficient")
	}
	return a.MulScalar(inv).ReduceCoeffs(p)
}

// fpGCD computes the monic gcd of a and b over F_p[x] by Euclid.
func fpGCD(a, b poly.Poly, p *big.Int) poly.Poly {
	a = a.ReduceCoeffs(p)
	b = b.ReduceCoeffs(p)
	for !b.IsZero() {
		bm := fpMonic(b, p)
		r := fpMod(a, bm, p)
		a, b = bm, r
	}
	if a.IsZero() {
		return a
	}
	return fpMonic(a, p)
}

// hasIntegerRoot searches for an integer root of monic r among the divisors
// of the constant term (found by trial division up to 10^6).
func hasIntegerRoot(r poly.Poly) bool {
	c0 := r.Coeff(0)
	if c0.Sign() == 0 {
		return true // root at 0
	}
	abs := new(big.Int).Abs(c0)
	for _, d := range smallDivisors(abs, 1_000_000) {
		for _, s := range []int64{1, -1} {
			cand := new(big.Int).Mul(d, big.NewInt(s))
			if r.Eval(cand).Sign() == 0 {
				return true
			}
		}
	}
	return false
}

// smallDivisors returns the positive divisors of n that are products of
// prime factors <= bound, plus n's cofactor divisors when n factors fully.
func smallDivisors(n *big.Int, bound int64) []*big.Int {
	divs := []*big.Int{big.NewInt(1)}
	rest := new(big.Int).Set(n)
	for f := int64(2); f <= bound && rest.Cmp(big.NewInt(1)) > 0; f++ {
		bf := big.NewInt(f)
		if new(big.Int).Mod(rest, bf).Sign() != 0 {
			continue
		}
		var powers []*big.Int
		pw := big.NewInt(1)
		for new(big.Int).Mod(rest, bf).Sign() == 0 {
			rest.Div(rest, bf)
			pw = new(big.Int).Mul(pw, bf)
			powers = append(powers, new(big.Int).Set(pw))
		}
		cur := divs
		for _, pk := range powers {
			for _, d := range cur {
				divs = append(divs, new(big.Int).Mul(d, pk))
			}
		}
	}
	if rest.Cmp(big.NewInt(1)) > 0 {
		// Remaining large prime cofactor: include multiples by it too.
		cur := make([]*big.Int, len(divs))
		copy(cur, divs)
		for _, d := range cur {
			divs = append(divs, new(big.Int).Mul(d, rest))
		}
	}
	return divs
}

// primeDivisors returns the distinct prime divisors of n.
func primeDivisors(n int) []int {
	var out []int
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			out = append(out, f)
			for n%f == 0 {
				n /= f
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}
