package ring

import (
	"bytes"
	"crypto/sha256"
	"math/big"
	"math/rand"
	"testing"

	"sssearch/internal/drbg"
	"sssearch/internal/poly"
)

// randTestPoly draws a polynomial whose coefficients exercise the packed
// path (canonical words) or force the big.Int fallback (negative / huge),
// depending on mode.
func randTestPoly(rng *rand.Rand, maxLen int, p uint64, mode int) poly.Poly {
	n := rng.Intn(maxLen + 1)
	coeffs := make([]*big.Int, n)
	for i := range coeffs {
		switch mode {
		case 0: // canonical
			coeffs[i] = new(big.Int).SetUint64(rng.Uint64() % p)
		case 1: // arbitrary word-sized, unreduced
			coeffs[i] = new(big.Int).SetUint64(rng.Uint64())
		default: // out of word range / negative: packing must refuse
			coeffs[i] = new(big.Int).Lsh(big.NewInt(int64(rng.Intn(100)-50)), uint(rng.Intn(3)*40))
		}
	}
	return poly.New(coeffs...)
}

// TestFastPathDifferential drives every ring operation through the fast
// path and the big.Int reference (SetFast(false)) on the same inputs.
func TestFastPathDifferential(t *testing.T) {
	for _, p := range []uint64{5, 7, 31, 257} {
		fast := MustFp(p)
		ref := MustFp(p)
		ref.SetFast(false)
		if fast.Fast() == nil {
			t.Fatalf("F_%d has no fast path", p)
		}
		if ref.Fast() != nil {
			t.Fatalf("SetFast(false) left the fast path on")
		}
		rng := rand.New(rand.NewSource(int64(p) * 17))
		for trial := 0; trial < 200; trial++ {
			mode := trial % 3
			a := randTestPoly(rng, 3*int(p), p, mode)
			b := randTestPoly(rng, 3*int(p), p, (trial/3)%3)
			if got, want := fast.Reduce(a), ref.Reduce(a); !got.Equal(want) {
				t.Fatalf("p=%d Reduce(%v): fast %v, ref %v", p, a, got, want)
			}
			if got, want := fast.Add(a, b), ref.Add(a, b); !got.Equal(want) {
				t.Fatalf("p=%d Add: fast %v, ref %v", p, got, want)
			}
			if got, want := fast.Sub(a, b), ref.Sub(a, b); !got.Equal(want) {
				t.Fatalf("p=%d Sub: fast %v, ref %v", p, got, want)
			}
			if got, want := fast.Neg(a), ref.Neg(a); !got.Equal(want) {
				t.Fatalf("p=%d Neg: fast %v, ref %v", p, got, want)
			}
			if got, want := fast.Mul(a, b), ref.Mul(a, b); !got.Equal(want) {
				t.Fatalf("p=%d Mul: fast %v, ref %v", p, got, want)
			}
			root := new(big.Int).SetInt64(int64(rng.Intn(200) - 100))
			if got, want := fast.Linear(root), ref.Linear(root); !got.Equal(want) {
				t.Fatalf("p=%d Linear(%s): fast %v, ref %v", p, root, got, want)
			}
			x := big.NewInt(int64(1 + rng.Intn(int(p)-1)))
			gv, gerr := fast.Eval(a, x)
			wv, werr := ref.Eval(a, x)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("p=%d Eval error mismatch: %v vs %v", p, gerr, werr)
			}
			if gerr == nil && gv.Cmp(wv) != 0 {
				t.Fatalf("p=%d Eval(%v, %s): fast %s, ref %s", p, a, x, gv, wv)
			}
			num := new(big.Int).SetUint64(rng.Uint64())
			den := new(big.Int).SetUint64(rng.Uint64())
			gs, gok := fast.SolveScalar(num, den)
			ws, wok := ref.SolveScalar(num, den)
			if gok != wok || (gok && gs.Cmp(ws) != 0) {
				t.Fatalf("p=%d SolveScalar: fast (%v,%v), ref (%v,%v)", p, gs, gok, ws, wok)
			}
		}
		// Eval at 0 must stay undefined on both paths.
		if _, err := fast.Eval(poly.One(), big.NewInt(0)); err == nil {
			t.Fatalf("p=%d fast Eval(0) succeeded", p)
		}
	}
}

// TestPackUnpackRoundTrip checks the packed boundary conversions against
// Reduce's canonical form.
func TestPackUnpackRoundTrip(t *testing.T) {
	r := MustFp(257)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		q := randTestPoly(rng, 256, 257, trial%2)
		vec, ok := r.Pack(q)
		if !ok {
			t.Fatalf("Pack refused word coefficients: %v", q)
		}
		if !r.Unpack(vec).Equal(q.ReduceCoeffs(r.P())) {
			t.Fatalf("Pack/Unpack changed the polynomial")
		}
	}
	if _, ok := r.Pack(poly.FromInt64(1, -2)); ok {
		t.Fatal("Pack accepted a negative coefficient")
	}
}

// TestRandFastReproducible: the bulk sampler must be deterministic in the
// DRBG stream and produce canonical representatives; RandPacked must draw
// exactly the Rand vector.
func TestRandFastReproducible(t *testing.T) {
	r := MustFp(257)
	seed := drbg.Seed(sha256.Sum256([]byte("ring-rand")))
	d := drbg.NewDeriver(seed, "test")
	key := drbg.NodeKey{1, 2}
	a, err := r.Rand(d.ForNode(key))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Rand(d.ForNode(key))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("Rand not deterministic in the DRBG stream")
	}
	vec := make([]uint64, r.DegreeBound())
	if err := r.RandPacked(d.ForNode(key), vec); err != nil {
		t.Fatal(err)
	}
	if !r.Unpack(vec).Equal(a) {
		t.Fatal("RandPacked diverged from Rand on the same stream")
	}
	for _, c := range a.Coeffs() {
		if c.Sign() < 0 || c.Cmp(r.P()) >= 0 {
			t.Fatalf("Rand produced non-canonical coefficient %s", c)
		}
	}
}

// TestMulPackedMatchesMul pins the packed multiply to the generic one.
func TestMulPackedMatchesMul(t *testing.T) {
	r := MustFp(31)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		a := randTestPoly(rng, 30, 31, 0)
		b := randTestPoly(rng, 30, 31, 0)
		pa, _ := r.Pack(a)
		pb, _ := r.Pack(b)
		got := r.Unpack(r.MulPacked(pa, pb))
		if want := r.Mul(a, b); !got.Equal(want) {
			t.Fatalf("MulPacked: %v, Mul: %v", got, want)
		}
		gotAdd := r.Unpack(r.AddPacked(pa, pb))
		if want := r.Add(a, b); !gotAdd.Equal(want) {
			t.Fatalf("AddPacked: %v, Add: %v", gotAdd, want)
		}
	}
}

// TestFastRandMarshalStable: packed polynomials round-trip through the
// wire encoding like any other polynomial (boundary check).
func TestFastRandMarshalStable(t *testing.T) {
	r := MustFp(257)
	seed := drbg.Seed(sha256.Sum256([]byte("marshal")))
	q, err := r.Rand(drbg.New(seed, nil))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := q.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back poly.Poly
	if err := back.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(q) {
		t.Fatal("marshal round trip changed a fast-path polynomial")
	}
	buf2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("re-marshal not canonical")
	}
}
