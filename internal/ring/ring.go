// Package ring implements the two finite quotient rings the paper encodes
// polynomial trees in:
//
//   - FpCyclotomic: F_p[x]/(x^{p-1}-1) — coefficients reduced mod a prime p,
//     degrees folded using x^{p-1} ≡ 1 (Lemma 1 of the paper: the modulus is
//     exactly ∏_{i=1}^{p-1}(x-i) mod p).
//   - IntQuotient: Z[x]/(r(x)) — reduced modulo a monic irreducible integer
//     polynomial r; coefficients stay in Z and grow with tree size (§5).
//
// Both expose the evaluation homomorphism used by the query protocol. For
// FpCyclotomic, evaluation at a point a ∈ F_p^* lands in F_p. For
// IntQuotient, evaluating at an integer a induces the homomorphism
// Z[x]/(r(x)) → Z/(r(a)) — this is why figure 6 of the paper computes
// "everything modulo r(2) = 5".
package ring

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"sssearch/internal/poly"
)

// Kind discriminates ring families for serialization.
type Kind uint8

const (
	// KindFpCyclotomic identifies F_p[x]/(x^{p-1}-1).
	KindFpCyclotomic Kind = 1
	// KindIntQuotient identifies Z[x]/(r(x)).
	KindIntQuotient Kind = 2
)

func (k Kind) String() string {
	switch k {
	case KindFpCyclotomic:
		return "Fp[x]/(x^(p-1)-1)"
	case KindIntQuotient:
		return "Z[x]/(r(x))"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Ring is a finite quotient ring of a polynomial ring, closed under the
// operations the scheme needs. Implementations are safe for concurrent use.
type Ring interface {
	// Kind identifies the ring family.
	Kind() Kind
	// Name is a human-readable description, e.g. "F_5[x]/(x^4-1)".
	Name() string

	// Reduce maps an arbitrary Z[x] polynomial to its canonical
	// representative in the ring.
	Reduce(p poly.Poly) poly.Poly
	// Add, Sub, Neg, Mul operate on representatives and return canonical
	// representatives.
	Add(a, b poly.Poly) poly.Poly
	Sub(a, b poly.Poly) poly.Poly
	Neg(a poly.Poly) poly.Poly
	Mul(a, b poly.Poly) poly.Poly
	// Zero and One are the ring identities.
	Zero() poly.Poly
	One() poly.Poly
	// Linear returns the canonical representative of (x - root).
	Linear(root *big.Int) poly.Poly
	// Equal reports whether a and b represent the same ring element.
	Equal(a, b poly.Poly) bool

	// Eval applies the evaluation-at-a homomorphism and returns the image
	// as a canonical residue modulo EvalModulus(a). It returns an error if
	// evaluation at a is not well defined on the quotient (e.g. a = 0 for
	// FpCyclotomic, or |r(a)| <= 1 for IntQuotient).
	Eval(f poly.Poly, a *big.Int) (*big.Int, error)
	// EvalModulus returns the modulus of Eval's codomain at point a:
	// p for FpCyclotomic, |r(a)| for IntQuotient.
	EvalModulus(a *big.Int) (*big.Int, error)

	// SolveScalar solves t·den ≡ num in the coefficient domain: modular
	// inversion for F_p, exact integer division for Z. The boolean is false
	// when den is zero or (Z case) the division is not exact; callers treat
	// that coordinate as indeterminate or inconsistent.
	SolveScalar(num, den *big.Int) (t *big.Int, ok bool)
	// CoeffZero reports whether a coefficient value is zero in the
	// coefficient domain (≡ 0 mod p, or == 0 over Z).
	CoeffZero(v *big.Int) bool

	// Rand draws a ring element suitable for use as a one-time additive
	// share pad, reading bytes from rng. For FpCyclotomic the distribution
	// is exactly uniform (information-theoretic hiding); for IntQuotient
	// coefficients are uniform in [-B, B] for the configured bound B
	// (statistical hiding only — see the package security note).
	Rand(rng io.Reader) (poly.Poly, error)

	// MaxTag is the largest usable tag value: p-2 for FpCyclotomic (values
	// 0 and p-1 are excluded; 0 breaks evaluation after reduction, p-1 is
	// the zero-divisor excluded by Lemma 3), unbounded (nil) for IntQuotient.
	MaxTag() *big.Int
	// DegreeBound is the number of coefficients of a canonical
	// representative: p-1, or deg(r).
	DegreeBound() int

	// Params returns a serializable description sufficient to reconstruct
	// the ring.
	Params() Params
}

// Params is a serializable ring description.
type Params struct {
	Kind Kind
	// P is the field characteristic (FpCyclotomic only).
	P *big.Int
	// R is the monic irreducible modulus polynomial (IntQuotient only).
	R poly.Poly
	// RandBound is the coefficient bound for share pads (IntQuotient only).
	RandBound *big.Int
}

// FromParams reconstructs a Ring from serialized parameters.
func FromParams(pr Params) (Ring, error) {
	switch pr.Kind {
	case KindFpCyclotomic:
		if pr.P == nil {
			return nil, errors.New("ring: missing characteristic p")
		}
		return NewFpCyclotomic(pr.P)
	case KindIntQuotient:
		if pr.RandBound != nil {
			return NewIntQuotientWithBound(pr.R, pr.RandBound)
		}
		return NewIntQuotient(pr.R)
	default:
		return nil, fmt.Errorf("ring: unknown kind %d", pr.Kind)
	}
}

// ErrEvalUndefined is returned when evaluation at the given point is not a
// well-defined homomorphism on the quotient ring.
var ErrEvalUndefined = errors.New("ring: evaluation not well defined at this point")
