package client

import (
	"context"
	"math/big"

	"sssearch/internal/coalesce"
	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/metrics"
	"sssearch/internal/obs"
)

// BatchTarget is what a Batcher drives: the context-aware call surface
// shared by Remote and Pool.
type BatchTarget interface {
	EvalNodesCtx(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error)
	FetchPolysCtx(ctx context.Context, keys []drbg.NodeKey) ([]core.NodePoly, error)
	PruneCtx(ctx context.Context, keys []drbg.NodeKey) error
}

// DefaultMaxBatchKeys bounds the distinct keys a single merged wire
// request carries; larger flushes split into concurrent chunked
// requests.
const DefaultMaxBatchKeys = 4096

// Batcher adds transparent client-side micro-batching in front of a
// Remote or Pool: concurrent EvalNodes calls — parallel engine batches,
// or many sessions sharing one pool — are merged into a single wire
// request with deduplicated keys, halving-or-better the frame count on
// fan-in workloads. It implements core.ServerAPI plus the same
// context-aware surface as Remote.
//
// Flushing is structural, never timed: the first call for a given point
// vector flushes immediately (a lone query pays no batching latency) and
// calls that arrive while its round trip is in flight merge into the
// next one — flush on size or first-await. Distinct point vectors flush
// on independent goroutines, so non-mergeable concurrent searches keep
// the pool's parallelism.
//
// The merged round trip is detached from any single caller's context:
// one session cancelling must not fail the others sharing the request
// (the abandoned caller gets its context error, the wire call
// completes). The merge engine is shared with the server-side
// coalesce.Server.
type Batcher struct {
	inner    BatchTarget
	counters *metrics.Counters
	obsv     *obs.Observer
	merger   *coalesce.Merger

	// MaxBatchKeys bounds distinct keys per merged request. Zero means
	// DefaultMaxBatchKeys. Set before use.
	MaxBatchKeys int
}

// NewBatcher wraps target. counters may be nil; the coalescing tallies
// land next to the wire counters of the session.
func NewBatcher(target BatchTarget, counters *metrics.Counters) *Batcher {
	if counters == nil {
		counters = &metrics.Counters{}
	}
	b := &Batcher{inner: target, counters: counters, obsv: obs.Default()}
	b.merger = coalesce.NewMerger(
		target.EvalNodesCtx,
		counters,
		func() int {
			if b.MaxBatchKeys > 0 {
				return b.MaxBatchKeys
			}
			return DefaultMaxBatchKeys
		},
	)
	b.merger.SetObserved(b.obsv, obs.StageBatchWait)
	return b
}

// Counters exposes the batching tallies (merged requests, deduplicated
// evaluations).
func (b *Batcher) Counters() *metrics.Counters { return b.counters }

// SetObserver replaces the observer recording batch-wait latencies.
// Call before use.
func (b *Batcher) SetObserver(o *obs.Observer) {
	b.obsv = o
	b.merger.SetObserved(o, obs.StageBatchWait)
}

// EvalNodesCtx queues the request for its point vector's next flush and
// waits for its answers, honouring ctx. A call arriving without trace
// context draws its own sampling decision — the Batcher is a trace
// origin for callers that use it directly, ahead of any Engine.
func (b *Batcher) EvalNodesCtx(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	if obs.SpanFrom(ctx) == nil {
		if tr := obs.NewTrace(); tr.Sampled {
			sp := obs.StartSpan("batch_eval", tr)
			ctx = obs.WithSpan(ctx, sp)
			defer b.obsv.FinishSpan(sp)
		}
	}
	return b.merger.Eval(ctx, keys, points)
}

// FetchPolysCtx passes through (the rare verification path).
func (b *Batcher) FetchPolysCtx(ctx context.Context, keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return b.inner.FetchPolysCtx(ctx, keys)
}

// PruneCtx passes through.
func (b *Batcher) PruneCtx(ctx context.Context, keys []drbg.NodeKey) error {
	return b.inner.PruneCtx(ctx, keys)
}

// EvalNodes implements core.ServerAPI.
func (b *Batcher) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	return b.EvalNodesCtx(context.Background(), keys, points)
}

// FetchPolys implements core.ServerAPI.
func (b *Batcher) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return b.inner.FetchPolysCtx(context.Background(), keys)
}

// Prune implements core.ServerAPI.
func (b *Batcher) Prune(keys []drbg.NodeKey) error {
	return b.inner.PruneCtx(context.Background(), keys)
}

var _ core.ServerAPI = (*Batcher)(nil)
var _ BatchTarget = (*Remote)(nil)
var _ BatchTarget = (*Pool)(nil)
