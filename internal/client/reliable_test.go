package client_test

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"sssearch/internal/client"
	"sssearch/internal/drbg"
	"sssearch/internal/metrics"
	"sssearch/internal/resilience"
	"sssearch/internal/ring"
	"sssearch/internal/workload"
)

// chaosProxy is a TCP forwarder the tests can sabotage: kill every live
// connection (simulating a crashed peer or cut network) or refuse new
// ones (simulating a server that is down). It gives black-box control
// over connection lifetime that reaching into client internals would not.
type chaosProxy struct {
	l net.Listener

	mu      sync.Mutex
	backend string
	conns   []net.Conn
	refuse  bool
	closed  bool
}

func startChaosProxy(t *testing.T, backend string) *chaosProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{l: l, backend: backend}
	go p.acceptLoop()
	t.Cleanup(func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		l.Close()
		p.killAll()
	})
	return p
}

func (p *chaosProxy) addr() string { return p.l.Addr().String() }

func (p *chaosProxy) acceptLoop() {
	for {
		c, err := p.l.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		refuse, backend := p.refuse, p.backend
		p.mu.Unlock()
		if refuse {
			c.Close()
			continue
		}
		b, err := net.Dial("tcp", backend)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			b.Close()
			return
		}
		p.conns = append(p.conns, c, b)
		p.mu.Unlock()
		go func() { io.Copy(b, c); b.Close(); c.Close() }()
		go func() { io.Copy(c, b); c.Close(); b.Close() }()
	}
}

// killAll hard-closes every proxied connection, both directions.
func (p *chaosProxy) killAll() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (p *chaosProxy) setRefuse(v bool) {
	p.mu.Lock()
	p.refuse = v
	p.mu.Unlock()
}

func (p *chaosProxy) setBackend(addr string) {
	p.mu.Lock()
	p.backend = addr
	p.mu.Unlock()
}

// testPolicy is generous enough for a 1-vCPU -race run: the point of
// these tests is state-machine behaviour, not tight timing.
func testPolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts:       8,
		PerAttemptTimeout: 2 * time.Second,
		BaseBackoff:       2 * time.Millisecond,
		MaxBackoff:        50 * time.Millisecond,
	}
}

// TestReliableRedialMidSessionByteIdentity kills every connection midway
// through a query stream; the Reliable session must re-dial in the
// background and every answer — before, across, and after the break —
// must match the local reference exactly.
func TestReliableRedialMidSessionByteIdentity(t *testing.T) {
	w := buildWorld(t, workload.RandomTree(workload.TreeConfig{Nodes: 40, MaxFanout: 3, Vocab: 8, Seed: 29}))
	p := startChaosProxy(t, w.addr)
	var counters metrics.Counters
	rc, err := client.DialReliable(p.addr(), testPolicy(), &counters)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	points := pts(3)
	const calls = 30
	for i := 0; i < calls; i++ {
		if i == calls/2 {
			p.killAll() // the mid-session break
		}
		key := w.keys[i%len(w.keys)]
		got, err := rc.EvalNodes([]drbg.NodeKey{key}, points)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		want, err := w.local.EvalNodes([]drbg.NodeKey{key}, points)
		if err != nil {
			t.Fatal(err)
		}
		if len(got[0].Values) != len(want[0].Values) {
			t.Fatalf("call %d: %d values, want %d", i, len(got[0].Values), len(want[0].Values))
		}
		for j := range want[0].Values {
			if got[0].Values[j].Cmp(want[0].Values[j]) != 0 {
				t.Fatalf("call %d: value %d diverged across re-dial", i, j)
			}
		}
	}
	if rc.Generation() < 2 {
		t.Errorf("generation = %d, want >= 2 after a killed connection", rc.Generation())
	}
	if got := counters.Snapshot(); got.Redials < 1 {
		t.Errorf("redials = %d, want >= 1", got.Redials)
	}
}

// TestReliableRejectsChangedServer: if a re-dial reaches a server with
// different ring parameters, resuming would silently change answer
// semantics — the session must fail permanently instead.
func TestReliableRejectsChangedServer(t *testing.T) {
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 20, MaxFanout: 3, Vocab: 6, Seed: 31})
	w1 := buildWorldRing(t, doc, ring.MustIntQuotient(1, 0, 1))
	w2 := buildWorldRing(t, doc, ring.MustFp(257))
	p := startChaosProxy(t, w1.addr)

	rc, err := client.DialReliable(p.addr(), testPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.EvalNodes(w1.keys[:1], pts(2)); err != nil {
		t.Fatalf("healthy call failed: %v", err)
	}

	p.setBackend(w2.addr) // the address now serves a different store
	p.killAll()

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = rc.EvalNodes(w1.keys[:1], pts(2))
		if err != nil || time.Now().After(deadline) {
			break
		}
	}
	if err == nil {
		t.Fatal("calls kept succeeding against a server with different parameters")
	}
	// The failure must be permanent: an immediate second call fails the
	// same way without spinning through dial attempts.
	start := time.Now()
	if _, err := rc.EvalNodes(w1.keys[:1], pts(2)); err == nil {
		t.Fatal("call succeeded after a parameter mismatch")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("post-mismatch call took %v, want fast terminal failure", d)
	}
}

// TestPoolEjectsAndReadmits: killing every pooled connection must not
// take the pool down for good — members are ejected, background re-dials
// probe the server, and the pool heals back to full strength.
func TestPoolEjectsAndReadmits(t *testing.T) {
	w := buildWorld(t, workload.RandomTree(workload.TreeConfig{Nodes: 30, MaxFanout: 3, Vocab: 8, Seed: 37}))
	p := startChaosProxy(t, w.addr)
	var counters metrics.Counters
	pool, err := client.DialPool(p.addr(), 3, &counters)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	points := pts(2)
	if _, err := pool.EvalNodes(w.keys[:1], points); err != nil {
		t.Fatalf("healthy pool call failed: %v", err)
	}

	p.killAll()

	// The pool must keep serving (after at most a short healing window)
	// and eventually return to full strength.
	deadline := time.Now().Add(10 * time.Second)
	served := false
	for time.Now().Before(deadline) {
		got, err := pool.EvalNodes(w.keys[:1], points)
		if err == nil {
			served = true
			want, werr := w.local.EvalNodes(w.keys[:1], points)
			if werr != nil {
				t.Fatal(werr)
			}
			for j := range want[0].Values {
				if got[0].Values[j].Cmp(want[0].Values[j]) != 0 {
					t.Fatal("post-failover answer diverged from reference")
				}
			}
			if pool.Healthy() == pool.Size() {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !served {
		t.Fatal("pool never served again after connections were killed")
	}
	if pool.Healthy() != pool.Size() {
		t.Errorf("healthy = %d, want %d after readmission", pool.Healthy(), pool.Size())
	}
	snap := counters.Snapshot()
	if snap.MembersEjected < 1 {
		t.Errorf("membersEjected = %d, want >= 1", snap.MembersEjected)
	}
	if snap.Redials < 1 {
		t.Errorf("redials = %d, want >= 1", snap.Redials)
	}
}

// TestPoolAllDownReturnsErrNoHealthyMembers: with the server unreachable
// the pool must fail with the typed error instead of spinning, and must
// readmit members once the server is back.
func TestPoolAllDownReturnsErrNoHealthyMembers(t *testing.T) {
	w := buildWorld(t, workload.RandomTree(workload.TreeConfig{Nodes: 20, MaxFanout: 3, Vocab: 6, Seed: 41}))
	p := startChaosProxy(t, w.addr)
	pool, err := client.DialPool(p.addr(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	p.setRefuse(true)
	p.killAll()

	deadline := time.Now().Add(5 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		_, lastErr = pool.EvalNodes(w.keys[:1], pts(2))
		if errors.Is(lastErr, client.ErrNoHealthyMembers) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(lastErr, client.ErrNoHealthyMembers) {
		t.Fatalf("fully-down pool error = %v, want ErrNoHealthyMembers", lastErr)
	}

	p.setRefuse(false) // server back: probes must readmit members
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := pool.EvalNodes(w.keys[:1], pts(2)); err == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("pool never recovered after the server came back")
}
