package client

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/metrics"
	"sssearch/internal/resilience"
	"sssearch/internal/ring"
)

// ErrNoHealthyMembers is returned when every pooled connection has been
// ejected and none has been readmitted yet. Callers distinguish "the pool
// is down" (back off, re-resolve, alert) from a single call failing.
var ErrNoHealthyMembers = errors.New("client: no healthy pool members")

// poolFailThreshold is how many consecutive transport failures eject a
// member. One flaky frame should not take a connection out of rotation;
// a connection that fails repeatedly is not coming back on its own.
const poolFailThreshold = 3

// poolMember is one pooled connection plus its health record.
type poolMember struct {
	mu        sync.Mutex
	r         *Remote
	fails     int  // consecutive transport failures
	dead      bool // ejected from rotation
	redialing bool // background probe/re-dial in flight
}

// Pool is a fixed-size pool of Remote sessions to one share server,
// spreading calls round-robin so concurrent queries are not serialised
// behind a single connection (even a pipelined one: separate connections
// sidestep head-of-line blocking in the kernel send queue). It implements
// core.ServerAPI and the same context/async call surface as Remote.
//
// Each member carries a health record: consecutive transport failures (or
// an observed broken session) eject it from rotation, a background probe
// re-dials it with capped backoff and readmits it on success, and a call
// that finds its member down fails over to the next healthy one. When
// every member is down calls fail with ErrNoHealthyMembers instead of
// spinning over dead connections. Pools built with NewPool (no dialer)
// still eject, but ejection is permanent — a Remote never heals itself.
type Pool struct {
	members []*poolMember
	next    atomic.Uint64

	dial     func() (*Remote, error) // nil: no re-dial/readmit (NewPool)
	counters *metrics.Counters
	params   ring.Params

	// breaker is shared across the whole pool: every member dials the
	// same daemon, so consecutive overload sheds — regardless of which
	// connection carried them — trip one circuit and calls fail fast
	// until the cooldown probe finds the daemon accepting again.
	breaker *resilience.Breaker

	mu     sync.Mutex
	closed bool
	done   chan struct{} // closed by Close: stops probe goroutines
}

// DialPool opens size connections to addr (all sharing counters, which
// may be nil). size < 1 is treated as 1. Members that later fail are
// re-dialed and readmitted automatically.
func DialPool(addr string, size int, counters *metrics.Counters) (*Pool, error) {
	if counters == nil {
		counters = &metrics.Counters{}
	}
	c := counters
	return NewPoolDial(func() (*Remote, error) { return Dial(addr, c) }, size, counters)
}

// NewPoolDial opens size connections via dial and keeps using it to
// re-dial and readmit members that fail later — the hook for custom
// transports (TLS wrappers, fault injection in tests). size < 1 is
// treated as 1; counters may be nil.
func NewPoolDial(dial func() (*Remote, error), size int, counters *metrics.Counters) (*Pool, error) {
	if size < 1 {
		size = 1
	}
	if counters == nil {
		counters = &metrics.Counters{}
	}
	p := &Pool{
		members:  make([]*poolMember, 0, size),
		dial:     dial,
		counters: counters,
		done:     make(chan struct{}),
	}
	p.breaker = &resilience.Breaker{OnTrip: func() { p.counters.AddBreakerTrips(1) }}
	for i := 0; i < size; i++ {
		r, err := dial()
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("client: pool connection %d: %w", i, err)
		}
		p.members = append(p.members, &poolMember{r: r})
	}
	p.params = p.members[0].r.Params()
	return p, nil
}

// NewPool wraps existing sessions (at least one, all non-nil) as a pool.
// Without a dial function, ejected members cannot be readmitted.
func NewPool(remotes []*Remote) (*Pool, error) {
	if len(remotes) == 0 {
		return nil, errors.New("client: empty pool")
	}
	p := &Pool{
		members:  make([]*poolMember, 0, len(remotes)),
		counters: &metrics.Counters{},
		done:     make(chan struct{}),
	}
	p.breaker = &resilience.Breaker{OnTrip: func() { p.counters.AddBreakerTrips(1) }}
	for i, r := range remotes {
		if r == nil {
			return nil, fmt.Errorf("client: nil remote at pool slot %d", i)
		}
		p.members = append(p.members, &poolMember{r: r})
	}
	p.params = remotes[0].Params()
	return p, nil
}

// Size returns the number of pooled connections.
func (p *Pool) Size() int { return len(p.members) }

// Healthy returns how many members are currently in rotation.
func (p *Pool) Healthy() int {
	n := 0
	for _, m := range p.members {
		m.mu.Lock()
		if !m.dead {
			n++
		}
		m.mu.Unlock()
	}
	return n
}

// Params returns the ring parameters announced by the server.
func (p *Pool) Params() ring.Params { return p.params }

// Breaker exposes the pool-wide circuit breaker (for health inspection
// and tests).
func (p *Pool) Breaker() *resilience.Breaker { return p.breaker }

// Ring reconstructs the ring from the announced parameters.
func (p *Pool) Ring() (ring.Ring, error) { return ring.FromParams(p.params) }

// Close closes every pooled connection, returning the first error.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	p.mu.Unlock()
	var first error
	for _, m := range p.members {
		m.mu.Lock()
		r := m.r
		m.mu.Unlock()
		if r == nil {
			continue
		}
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pick returns the next healthy member round-robin, lazily ejecting
// members whose session broke since their last use. The modulo runs in
// uint64 before any int conversion: converting the raw counter first
// would go negative once it exceeds MaxInt, indexing out of range.
func (p *Pool) pick() (*poolMember, error) {
	n := uint64(len(p.members))
	start := p.next.Add(1) - 1
	for i := uint64(0); i < n; i++ {
		m := p.members[(start+i)%n]
		m.mu.Lock()
		if m.dead {
			m.mu.Unlock()
			continue
		}
		if m.r.Broken() {
			p.ejectLocked(m)
			m.mu.Unlock()
			continue
		}
		m.mu.Unlock()
		return m, nil
	}
	return nil, ErrNoHealthyMembers
}

// ejectLocked (m.mu held) takes a member out of rotation and, when the
// pool can dial, starts the background probe/re-dial that will readmit it.
func (p *Pool) ejectLocked(m *poolMember) {
	m.dead = true
	p.counters.AddMembersEjected(1)
	r := m.r
	go r.Close()
	if p.dial != nil && !m.redialing {
		m.redialing = true
		go p.redialMember(m)
	}
}

// recordFailure notes a transport failure; the threshold (or an already
// broken session) ejects the member.
func (p *Pool) recordFailure(m *poolMember) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return
	}
	m.fails++
	if m.fails >= poolFailThreshold || m.r.Broken() {
		p.ejectLocked(m)
	}
}

func (p *Pool) recordSuccess(m *poolMember) {
	m.mu.Lock()
	m.fails = 0
	m.mu.Unlock()
}

// redialMember probes the server with capped backoff until a fresh
// session succeeds, then readmits the member. Runs once per ejection.
func (p *Pool) redialMember(m *poolMember) {
	var pol resilience.Policy // zero value: default backoff curve
	for attempt := 1; ; attempt++ {
		select {
		case <-p.done:
			return
		case <-time.After(pol.Backoff(attempt)):
		}
		r, err := p.dial()
		if err != nil {
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			r.Close()
			return
		}
		p.mu.Unlock()
		m.mu.Lock()
		m.r = r
		m.fails = 0
		m.dead = false
		m.redialing = false
		m.mu.Unlock()
		p.counters.AddRedials(1)
		return
	}
}

// poolCall runs one call with member failover: a transport-class failure
// records against the member and the call moves to the next healthy one;
// a semantic error (the server's answer) returns immediately. An
// overload shed also returns immediately — every member targets the same
// daemon, so failing over to a sibling connection would only hit the
// same full admission queue — without ejecting the member (the
// connection is healthy; the daemon is busy). Consecutive sheds trip the
// pool-wide breaker and subsequent calls fail fast until the cooldown
// probe. Visiting every member without success surfaces the last
// transport error.
func poolCall[T any](p *Pool, call func(r *Remote) (T, error)) (T, error) {
	var zero T
	if !p.breaker.Allow() {
		return zero, resilience.ErrBreakerOpen
	}
	var lastErr error
	for attempt := 0; attempt < len(p.members); attempt++ {
		m, err := p.pick()
		if err != nil {
			p.breaker.Record(err)
			if lastErr != nil {
				return zero, fmt.Errorf("%w (last transport error: %v)", err, lastErr)
			}
			return zero, err
		}
		m.mu.Lock()
		r := m.r
		m.mu.Unlock()
		v, err := call(r)
		if err == nil {
			p.recordSuccess(m)
			p.breaker.Record(nil)
			return v, nil
		}
		if resilience.Overloaded(err) {
			p.breaker.Record(err)
			return zero, err
		}
		if !transportFault(err) {
			p.breaker.Record(err)
			return zero, err
		}
		p.recordFailure(m)
		lastErr = err
		p.counters.AddRetries(1)
	}
	p.breaker.Record(lastErr)
	return zero, fmt.Errorf("client: pool members exhausted: %w", lastErr)
}

// EvalNodesCtx is EvalNodes with context cancellation.
func (p *Pool) EvalNodesCtx(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	return poolCall(p, func(r *Remote) ([]core.NodeEval, error) {
		return r.EvalNodesCtx(ctx, keys, points)
	})
}

// FetchPolysCtx is FetchPolys with context cancellation.
func (p *Pool) FetchPolysCtx(ctx context.Context, keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return poolCall(p, func(r *Remote) ([]core.NodePoly, error) {
		return r.FetchPolysCtx(ctx, keys)
	})
}

// PruneCtx is Prune with context cancellation.
func (p *Pool) PruneCtx(ctx context.Context, keys []drbg.NodeKey) error {
	_, err := poolCall(p, func(r *Remote) (struct{}, error) {
		return struct{}{}, r.PruneCtx(ctx, keys)
	})
	return err
}

// EvalNodes implements core.ServerAPI.
func (p *Pool) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	return p.EvalNodesCtx(context.Background(), keys, points)
}

// FetchPolys implements core.ServerAPI.
func (p *Pool) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return p.FetchPolysCtx(context.Background(), keys)
}

// Prune implements core.ServerAPI.
func (p *Pool) Prune(keys []drbg.NodeKey) error {
	return p.PruneCtx(context.Background(), keys)
}

// EvalNodesAsync issues an EvalNodes request without waiting; failover
// applies as in the synchronous calls.
func (p *Pool) EvalNodesAsync(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) <-chan EvalResult {
	ch := make(chan EvalResult, 1)
	go func() {
		answers, err := p.EvalNodesCtx(ctx, keys, points)
		ch <- EvalResult{Answers: answers, Err: err}
	}()
	return ch
}

var _ core.ServerAPI = (*Pool)(nil)
