package client

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/metrics"
	"sssearch/internal/ring"
)

// Pool is a fixed-size pool of Remote sessions to one share server,
// spreading calls round-robin so concurrent queries are not serialised
// behind a single connection (even a pipelined one: separate connections
// sidestep head-of-line blocking in the kernel send queue). It implements
// core.ServerAPI and the same context/async call surface as Remote.
type Pool struct {
	remotes []*Remote
	next    atomic.Uint64
}

// DialPool opens size connections to addr (all sharing counters, which
// may be nil). size < 1 is treated as 1.
func DialPool(addr string, size int, counters *metrics.Counters) (*Pool, error) {
	if size < 1 {
		size = 1
	}
	if counters == nil {
		counters = &metrics.Counters{}
	}
	p := &Pool{remotes: make([]*Remote, 0, size)}
	for i := 0; i < size; i++ {
		r, err := Dial(addr, counters)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("client: pool connection %d: %w", i, err)
		}
		p.remotes = append(p.remotes, r)
	}
	return p, nil
}

// NewPool wraps existing sessions (at least one, all non-nil) as a pool.
func NewPool(remotes []*Remote) (*Pool, error) {
	if len(remotes) == 0 {
		return nil, errors.New("client: empty pool")
	}
	for i, r := range remotes {
		if r == nil {
			return nil, fmt.Errorf("client: nil remote at pool slot %d", i)
		}
	}
	return &Pool{remotes: append([]*Remote(nil), remotes...)}, nil
}

// Size returns the number of pooled connections.
func (p *Pool) Size() int { return len(p.remotes) }

// Params returns the ring parameters announced by the server.
func (p *Pool) Params() ring.Params { return p.remotes[0].Params() }

// Ring reconstructs the ring from the announced parameters.
func (p *Pool) Ring() (ring.Ring, error) { return p.remotes[0].Ring() }

// Close closes every pooled connection, returning the first error.
func (p *Pool) Close() error {
	var first error
	for _, r := range p.remotes {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pick returns the next session round-robin. The modulo runs in uint64
// before any int conversion: converting the raw counter first would go
// negative once it exceeds MaxInt (and on 32-bit platforms after ~2^31
// calls), indexing out of range.
func (p *Pool) pick() *Remote {
	return p.remotes[(p.next.Add(1)-1)%uint64(len(p.remotes))]
}

// EvalNodesCtx is EvalNodes with context cancellation.
func (p *Pool) EvalNodesCtx(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	return p.pick().EvalNodesCtx(ctx, keys, points)
}

// FetchPolysCtx is FetchPolys with context cancellation.
func (p *Pool) FetchPolysCtx(ctx context.Context, keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return p.pick().FetchPolysCtx(ctx, keys)
}

// PruneCtx is Prune with context cancellation.
func (p *Pool) PruneCtx(ctx context.Context, keys []drbg.NodeKey) error {
	return p.pick().PruneCtx(ctx, keys)
}

// EvalNodes implements core.ServerAPI.
func (p *Pool) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	return p.pick().EvalNodes(keys, points)
}

// FetchPolys implements core.ServerAPI.
func (p *Pool) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return p.pick().FetchPolys(keys)
}

// Prune implements core.ServerAPI.
func (p *Pool) Prune(keys []drbg.NodeKey) error {
	return p.pick().Prune(keys)
}

// EvalNodesAsync issues an EvalNodes request on the next pooled session
// without waiting.
func (p *Pool) EvalNodesAsync(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) <-chan EvalResult {
	return p.pick().EvalNodesAsync(ctx, keys, points)
}

var _ core.ServerAPI = (*Pool)(nil)
