package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/metrics"
	"sssearch/internal/resilience"
	"sssearch/internal/ring"
	"sssearch/internal/wire"
)

// Reliable is a self-healing protocol session: it wraps a dial function
// and the current *Remote behind a broken-connection state machine. When
// the session breaks — reset, stall past the per-attempt timeout, server
// GOAWAY — the failed call is retried under the resilience Policy while a
// single background goroutine re-dials (with capped backoff) and resumes
// the session; concurrent calls piggyback on the one re-dial. Semantic
// errors (server ErrorMsg replies: unknown keys, foreign shard keys)
// never trigger a retry or a re-dial.
//
// Retrying is answer-preserving because every ServerAPI request is
// idempotent: EvalNodes and FetchPolys read an immutable share tree and
// Prune is advisory, so replaying a request that may or may not have
// executed cannot change any answer.
//
// Session resume: the handshake carries only the negotiated version and
// the public ring parameters, so a re-dialed session verifies the
// announced parameters are byte-identical to the original's and is then
// a perfect substitute. A parameter mismatch (the address now serves a
// different store) is a permanent failure, not a retry loop.
//
// Safe for concurrent use; calls in flight across a break fail over to
// the re-dialed session transparently.
type Reliable struct {
	dial     func() (*Remote, error)
	policy   resilience.Policy
	counters *metrics.Counters

	mu        sync.Mutex
	cur       *Remote
	gen       uint64 // bumps on every successful re-dial
	dialing   bool
	dialCh    chan struct{} // closed at the end of each dial round
	lastDial  error         // outcome of the last failed dial round
	permErr   error         // terminal state (parameter mismatch)
	closed    bool
	params    ring.Params
	paramsBin []byte

	done chan struct{} // closed by Close: stops the re-dial loop and waiters
}

// DialReliable connects to addr with automatic re-dial under the policy.
// counters may be nil.
func DialReliable(addr string, policy resilience.Policy, counters *metrics.Counters) (*Reliable, error) {
	if counters == nil {
		counters = &metrics.Counters{}
	}
	c := counters
	return NewReliable(func() (*Remote, error) { return Dial(addr, c) }, policy, counters)
}

// NewReliable wraps a dial function (which must produce a fresh handshaken
// session per call) with the retry/re-dial state machine. The initial dial
// runs synchronously so construction fails fast and the ring parameters
// are known. counters may be nil.
func NewReliable(dial func() (*Remote, error), policy resilience.Policy, counters *metrics.Counters) (*Reliable, error) {
	if dial == nil {
		return nil, errors.New("client: nil dial function")
	}
	if counters == nil {
		counters = &metrics.Counters{}
	}
	rc := &Reliable{dial: dial, counters: counters, done: make(chan struct{})}
	policy.Retryable = rc.retryable
	userOnRetry := policy.OnRetry
	policy.OnRetry = func(attempt int, err error) {
		counters.AddRetries(1)
		if userOnRetry != nil {
			userOnRetry(attempt, err)
		}
	}
	// Per-target circuit breaker: consecutive overload sheds from this
	// server trip it open, and while open calls fail fast instead of
	// hammering a daemon that is already drowning. Transport faults and
	// semantic errors never feed it, so it is inert unless the server
	// actually sheds.
	if policy.Breaker == nil {
		policy.Breaker = &resilience.Breaker{}
	}
	userOnTrip := policy.Breaker.OnTrip
	policy.Breaker.OnTrip = func() {
		counters.AddBreakerTrips(1)
		if userOnTrip != nil {
			userOnTrip()
		}
	}
	rc.policy = policy
	r, err := dial()
	if err != nil {
		return nil, err
	}
	pb, err := r.Params().MarshalBinary()
	if err != nil {
		r.Close()
		return nil, fmt.Errorf("client: pinning session parameters: %w", err)
	}
	rc.cur, rc.gen = r, 1
	rc.params, rc.paramsBin = r.Params(), pb
	return rc, nil
}

// Params returns the ring parameters pinned at the first handshake.
func (rc *Reliable) Params() ring.Params { return rc.params }

// Ring reconstructs the ring from the pinned parameters.
func (rc *Reliable) Ring() (ring.Ring, error) { return ring.FromParams(rc.params) }

// Generation returns the current connection generation: 1 after the
// initial dial, incremented by every successful re-dial.
func (rc *Reliable) Generation() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.gen
}

// Close tears the session down; in-flight and future calls fail with
// ErrClosed and the background re-dial (if any) stops.
func (rc *Reliable) Close() error {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil
	}
	rc.closed = true
	cur := rc.cur
	rc.cur = nil
	close(rc.done)
	rc.mu.Unlock()
	if cur != nil {
		return cur.Close()
	}
	return nil
}

// transportFault classifies call failures for retry and failover: a
// RemoteError is the server's answer (terminal), while a closed,
// corrupted, reset or stalled session is transport-class — the request
// never produced an answer, so replaying it on a fresh connection cannot
// change semantics. Checksum and magic mismatches count as transport
// faults because the byte stream is no longer trustworthy and only a
// fresh connection can resynchronise it.
func transportFault(err error) bool {
	var re *wire.RemoteError
	if errors.As(err, &re) {
		return false
	}
	if errors.Is(err, ErrClosed) {
		return true
	}
	if errors.Is(err, wire.ErrChecksum) || errors.Is(err, wire.ErrBadMagic) {
		return true
	}
	return resilience.Retryable(err)
}

// retryable classifies for the retry policy: transport faults are
// retryable on a fresh connection, and so is an overload shed — the
// server did no work and said so — though a shed must never trigger a
// re-dial (the session is healthy; it is the daemon that is busy).
func (rc *Reliable) retryable(err error) bool {
	return transportFault(err) || resilience.Overloaded(err)
}

// Breaker exposes the per-target circuit breaker (for health inspection
// and tests).
func (rc *Reliable) Breaker() *resilience.Breaker { return rc.policy.Breaker }

// session returns a healthy Remote, waiting (under ctx) for at most one
// re-dial round when the session is down. A failed dial round surfaces
// its error so the caller's retry policy owns the backoff between rounds.
func (rc *Reliable) session(ctx context.Context) (*Remote, uint64, error) {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil, 0, ErrClosed
	}
	if rc.permErr != nil {
		err := rc.permErr
		rc.mu.Unlock()
		return nil, 0, err
	}
	if rc.cur != nil && !rc.cur.Broken() {
		r, gen := rc.cur, rc.gen
		rc.mu.Unlock()
		return r, gen, nil
	}
	if rc.cur != nil {
		old := rc.cur
		rc.cur = nil
		go old.Close()
	}
	if !rc.dialing {
		rc.dialing = true
		rc.dialCh = make(chan struct{})
		go rc.redial()
	}
	ch := rc.dialCh
	rc.mu.Unlock()

	select {
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	case <-rc.done:
		return nil, 0, ErrClosed
	case <-ch:
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	switch {
	case rc.closed:
		return nil, 0, ErrClosed
	case rc.permErr != nil:
		return nil, 0, rc.permErr
	case rc.cur != nil && !rc.cur.Broken():
		return rc.cur, rc.gen, nil
	case rc.lastDial != nil:
		return nil, 0, fmt.Errorf("client: redial: %w", rc.lastDial)
	default:
		return nil, 0, fmt.Errorf("client: redial in flight: %w", resilience.ErrTransient)
	}
}

// redial is the single background reconnection loop: it keeps dialing
// with the policy's capped backoff until it succeeds, the session is
// closed, or the server's identity changed. After each failed round the
// current waiters are released (with the error recorded) and a fresh
// round begins, so the session heals on its own even with no calls
// outstanding.
func (rc *Reliable) redial() {
	for attempt := 1; ; attempt++ {
		r, err := rc.dial()
		rc.mu.Lock()
		if rc.closed {
			rc.mu.Unlock()
			if err == nil {
				r.Close()
			}
			return
		}
		if err == nil {
			pb, merr := r.Params().MarshalBinary()
			if merr != nil || !bytes.Equal(pb, rc.paramsBin) {
				// The address answers with a different store: resuming
				// would silently change answer semantics. Fail permanently.
				rc.permErr = fmt.Errorf("client: re-dialed server announces different ring parameters (have %v)", rc.params)
				rc.dialing = false
				close(rc.dialCh)
				rc.mu.Unlock()
				r.Close()
				return
			}
			rc.cur = r
			rc.gen++
			rc.dialing = false
			rc.lastDial = nil
			rc.counters.AddRedials(1)
			close(rc.dialCh)
			rc.mu.Unlock()
			return
		}
		rc.lastDial = err
		ch := rc.dialCh
		rc.dialCh = make(chan struct{})
		rc.mu.Unlock()
		close(ch) // release this round's waiters with the error recorded
		select {
		case <-rc.done:
			return
		case <-time.After(rc.policy.Backoff(attempt)):
		}
	}
}

// invalidate drops the session of generation gen (if still current) and
// kicks off the background re-dial. Later generations are left alone — a
// stale failure must not kill the fresh connection.
func (rc *Reliable) invalidate(gen uint64) {
	rc.mu.Lock()
	if rc.closed || rc.gen != gen || rc.cur == nil {
		rc.mu.Unlock()
		return
	}
	old := rc.cur
	rc.cur = nil
	if !rc.dialing {
		rc.dialing = true
		rc.dialCh = make(chan struct{})
		go rc.redial()
	}
	rc.mu.Unlock()
	old.Close()
}

// reliableCall runs one logical request under the retry policy: each
// attempt acquires the current session, and a transport-class failure
// invalidates that session (triggering the background re-dial) before the
// next attempt.
func reliableCall[T any](rc *Reliable, ctx context.Context, fn func(ctx context.Context, r *Remote) (T, error)) (T, error) {
	return resilience.Do(ctx, rc.policy, func(actx context.Context) (T, error) {
		r, gen, err := rc.session(actx)
		if err != nil {
			var zero T
			return zero, err
		}
		v, err := fn(actx, r)
		// Only transport faults invalidate the session: an overload shed
		// arrived over a perfectly healthy connection, and re-dialing
		// would hit the shedding daemon with handshake work it is trying
		// to get rid of.
		if err != nil && transportFault(err) {
			rc.invalidate(gen)
		}
		return v, err
	})
}

// EvalNodesCtx is EvalNodes with context cancellation.
func (rc *Reliable) EvalNodesCtx(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	return reliableCall(rc, ctx, func(actx context.Context, r *Remote) ([]core.NodeEval, error) {
		return r.EvalNodesCtx(actx, keys, points)
	})
}

// FetchPolysCtx is FetchPolys with context cancellation.
func (rc *Reliable) FetchPolysCtx(ctx context.Context, keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return reliableCall(rc, ctx, func(actx context.Context, r *Remote) ([]core.NodePoly, error) {
		return r.FetchPolysCtx(actx, keys)
	})
}

// PruneCtx is Prune with context cancellation.
func (rc *Reliable) PruneCtx(ctx context.Context, keys []drbg.NodeKey) error {
	_, err := reliableCall(rc, ctx, func(actx context.Context, r *Remote) (struct{}, error) {
		return struct{}{}, r.PruneCtx(actx, keys)
	})
	return err
}

// EvalNodes implements core.ServerAPI.
func (rc *Reliable) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	return rc.EvalNodesCtx(context.Background(), keys, points)
}

// FetchPolys implements core.ServerAPI.
func (rc *Reliable) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return rc.FetchPolysCtx(context.Background(), keys)
}

// Prune implements core.ServerAPI.
func (rc *Reliable) Prune(keys []drbg.NodeKey) error {
	return rc.PruneCtx(context.Background(), keys)
}

// EvalNodesAsync issues an EvalNodes request without waiting, like
// Remote.EvalNodesAsync but with the retry/re-dial machinery underneath.
func (rc *Reliable) EvalNodesAsync(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) <-chan EvalResult {
	ch := make(chan EvalResult, 1)
	go func() {
		answers, err := rc.EvalNodesCtx(ctx, keys, points)
		ch <- EvalResult{Answers: answers, Err: err}
	}()
	return ch
}

var _ core.ServerAPI = (*Reliable)(nil)
