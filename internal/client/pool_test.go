package client

import (
	"math"
	"testing"
)

// TestPoolPickCounterOverflow: the round-robin index must stay in range
// when the uint64 counter wraps. Converting the counter to int before
// the modulo went negative past MaxInt (and panicked with an
// out-of-range index); the fix reduces in uint64 first. The counter is
// pre-seeded to the wrap boundary so the test crosses it immediately.
func TestPoolPickCounterOverflow(t *testing.T) {
	p, err := NewPool([]*Remote{{}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	p.next.Store(math.MaxUint64 - 1)
	seen := make(map[*poolMember]int)
	for i := 0; i < 3*4; i++ {
		m, err := p.pick() // panics on the old int conversion
		if err != nil {
			t.Fatalf("pick failed: %v", err)
		}
		seen[m]++
	}
	// Round-robin must keep touching every slot across the wrap. The wrap
	// itself skews the distribution (2^64 is not a multiple of 3), so
	// assert coverage, not exact counts.
	for i, m := range p.members {
		if seen[m] == 0 {
			t.Errorf("slot %d never picked across the counter wrap", i)
		}
	}
}

// TestNewPoolRejectsNil: a nil session would crash on first pick; the
// constructor must reject it with the offending slot.
func TestNewPoolRejectsNil(t *testing.T) {
	if _, err := NewPool(nil); err == nil {
		t.Error("NewPool(nil) succeeded")
	}
	if _, err := NewPool([]*Remote{}); err == nil {
		t.Error("NewPool(empty) succeeded")
	}
	if _, err := NewPool([]*Remote{{}, nil, {}}); err == nil {
		t.Error("NewPool with a nil slot succeeded")
	}
	p, err := NewPool([]*Remote{{}, {}})
	if err != nil {
		t.Fatalf("NewPool rejected a valid slice: %v", err)
	}
	if p.Size() != 2 {
		t.Fatalf("Size = %d, want 2", p.Size())
	}
}
