package client_test

import (
	"context"
	"sync"
	"testing"

	"sssearch/internal/apitest"
	"sssearch/internal/client"
	"sssearch/internal/drbg"
	"sssearch/internal/workload"
)

// TestBatcherMergesConcurrentCalls: concurrent identical waves through a
// Batcher must collapse into fewer wire requests while every caller
// still gets reference-identical answers.
func TestBatcherMergesConcurrentCalls(t *testing.T) {
	w := buildWorld(t, workload.RandomTree(workload.TreeConfig{Nodes: 80, MaxFanout: 3, Vocab: 8, Seed: 29}))
	r, err := client.Dial(w.addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b := client.NewBatcher(r, nil)

	points := pts(2)
	want, err := w.local.EvalNodes(w.keys, points)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, rounds = 12, 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				got, err := b.EvalNodes(w.keys, points)
				if err == nil {
					err = apitest.CompareEvals(got, want)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	snap := b.Counters().Snapshot()
	if snap.CoalescedRequests == 0 || snap.CoalesceDedupHits == 0 {
		t.Fatalf("batcher never merged: %+v", snap)
	}
}

// TestBatcherErrorIsolation: a request with an unknown key merged into a
// shared flush must fail alone.
func TestBatcherErrorIsolation(t *testing.T) {
	w := buildWorld(t, workload.RandomTree(workload.TreeConfig{Nodes: 40, MaxFanout: 3, Vocab: 6, Seed: 31}))
	r, err := client.Dial(w.addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b := client.NewBatcher(r, nil)
	points := pts(1)
	unknown := drbg.NodeKey{1 << 30, 9, 9}

	const goroutines, rounds = 8, 6
	var wg sync.WaitGroup
	goodErrs := make(chan error, goroutines*rounds)
	badErrs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if g == 0 {
					_, err := b.EvalNodes([]drbg.NodeKey{w.keys[0], unknown}, points)
					badErrs <- err
				} else {
					_, err := b.EvalNodes(w.keys, points)
					goodErrs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(goodErrs)
	close(badErrs)
	for err := range goodErrs {
		if err != nil {
			t.Errorf("innocent request failed: %v", err)
		}
	}
	for err := range badErrs {
		if err == nil {
			t.Error("unknown-key request succeeded")
		}
	}
}

// TestBatcherCancellation: a caller abandoning its context must get a
// context error promptly and must not fail other members of its flush.
func TestBatcherCancellation(t *testing.T) {
	w := buildWorld(t, workload.RandomTree(workload.TreeConfig{Nodes: 40, MaxFanout: 3, Vocab: 6, Seed: 37}))
	r, err := client.Dial(w.addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b := client.NewBatcher(r, nil)
	points := pts(1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.EvalNodesCtx(ctx, w.keys, points); err == nil {
		t.Fatal("cancelled call succeeded")
	}
	// The batcher must still be serviceable afterwards.
	if _, err := b.EvalNodes(w.keys[:2], points); err != nil {
		t.Fatalf("call after cancellation failed: %v", err)
	}
}
