package client_test

import (
	"fmt"
	"math/big"
	"net"
	"testing"

	"sssearch/internal/client"
	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/mapping"
	"sssearch/internal/metrics"
	"sssearch/internal/paperdata"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/sharing"
	"sssearch/internal/xmltree"
	"sssearch/internal/xpath"
)

func testSeed(b byte) drbg.Seed {
	var s drbg.Seed
	for i := range s {
		s[i] = b
	}
	return s
}

// startDaemon builds a share server for doc and serves it on a loopback
// listener, returning the address and a shutdown func.
func startDaemon(t *testing.T, r ring.Ring, doc *xmltree.Node, m *mapping.Map, seed drbg.Seed) (string, func()) {
	t.Helper()
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := sharing.Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	local, err := server.NewLocal(r, tree)
	if err != nil {
		t.Fatal(err)
	}
	d := server.NewDaemon(local, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = d.Serve(l)
	}()
	return l.Addr().String(), func() {
		d.Close()
		<-done
	}
}

// TestEndToEndTCP runs the paper's query over a real TCP connection.
func TestEndToEndTCP(t *testing.T) {
	r := paperdata.ZRing()
	m := paperdata.Mapping(nil)
	seed := testSeed(11)
	addr, shutdown := startDaemon(t, r, paperdata.Document(), m, seed)
	defer shutdown()

	counters := &metrics.Counters{}
	remote, err := client.Dial(addr, counters)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// The handshake announces usable ring params.
	rr, err := remote.Ring()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Name() != r.Name() {
		t.Errorf("announced ring %s, want %s", rr.Name(), r.Name())
	}

	eng := core.NewEngine(r, seed, m, remote, counters)
	res, err := eng.Lookup("client", core.Opts{Verify: core.VerifyResolve})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %v", res.Matches)
	}
	snap := counters.Snapshot()
	if snap.BytesSent == 0 || snap.BytesReceived == 0 {
		t.Error("no bytes counted on the wire")
	}
	if snap.MessagesSent < 3 {
		t.Errorf("only %d messages sent", snap.MessagesSent)
	}
}

// TestRemoteMatchesLocalOracle: remote and in-process servers must answer
// queries identically, byte for byte.
func TestRemoteMatchesLocalOracle(t *testing.T) {
	doc, err := xmltree.ParseString(
		`<lib><shelf><book><title/></book><book><title/></book></shelf><office><book><title/></book></office></lib>`)
	if err != nil {
		t.Fatal(err)
	}
	r := ring.MustFp(101)
	m, _ := mapping.New(r.MaxTag(), []byte("net"))
	seed := testSeed(12)
	addr, shutdown := startDaemon(t, r, doc, m, seed)
	defer shutdown()
	remote, err := client.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	enc, _ := polyenc.Encode(r, doc, m)
	tree, _ := sharing.Split(enc, seed)
	local, _ := server.NewLocal(r, tree)

	engRemote := core.NewEngine(r, seed, m, remote, nil)
	engLocal := core.NewEngine(r, seed, m, local, nil)
	for _, qs := range []string{"//book", "//shelf/book", "/lib//title", "//office//book"} {
		q := xpath.MustParse(qs)
		a, err := engRemote.Query(q, core.Opts{Verify: core.VerifyResolve})
		if err != nil {
			t.Fatalf("remote %s: %v", qs, err)
		}
		b, err := engLocal.Query(q, core.Opts{Verify: core.VerifyResolve})
		if err != nil {
			t.Fatalf("local %s: %v", qs, err)
		}
		if fmt.Sprint(a.Matches) != fmt.Sprint(b.Matches) {
			t.Errorf("%s: remote %v != local %v", qs, a.Matches, b.Matches)
		}
	}
}

// TestServerErrorSurfaced: a bad key must come back as a RemoteError, and
// the session must remain usable.
func TestServerErrorSurfaced(t *testing.T) {
	r := paperdata.ZRing()
	m := paperdata.Mapping(nil)
	seed := testSeed(13)
	addr, shutdown := startDaemon(t, r, paperdata.Document(), m, seed)
	defer shutdown()
	remote, err := client.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	_, err = remote.EvalNodes([]drbg.NodeKey{{99, 99}}, []*big.Int{big.NewInt(2)})
	if err == nil {
		t.Fatal("bad key accepted")
	}
	// Session still alive:
	answers, err := remote.EvalNodes([]drbg.NodeKey{{}}, []*big.Int{big.NewInt(2)})
	if err != nil {
		t.Fatalf("session died after error: %v", err)
	}
	if len(answers) != 1 || answers[0].NumChildren != 2 {
		t.Errorf("root answer = %+v", answers)
	}
}

// TestConcurrentRemoteQueries exercises the session mutex.
func TestConcurrentRemoteQueries(t *testing.T) {
	r := paperdata.ZRing()
	m := paperdata.Mapping(nil)
	seed := testSeed(14)
	addr, shutdown := startDaemon(t, r, paperdata.Document(), m, seed)
	defer shutdown()
	remote, err := client.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	eng := core.NewEngine(r, seed, m, remote, nil)
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			res, err := eng.Lookup("client", core.Opts{Verify: core.VerifyResolve})
			if err == nil && len(res.Matches) != 2 {
				err = fmt.Errorf("got %d matches", len(res.Matches))
			}
			errs <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipeTransport runs the daemon over an in-memory duplex pipe.
func TestPipeTransport(t *testing.T) {
	r := paperdata.ZRing()
	m := paperdata.Mapping(nil)
	seed := testSeed(15)
	enc, _ := polyenc.Encode(r, paperdata.Document(), m)
	tree, _ := sharing.Split(enc, seed)
	local, _ := server.NewLocal(r, tree)
	d := server.NewDaemon(local, nil)

	cliConn, srvConn := net.Pipe()
	go d.HandleConn(srvConn)
	remote, err := client.NewRemote(cliConn, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	eng := core.NewEngine(r, seed, m, remote, nil)
	res, err := eng.Lookup("name", core.Opts{Verify: core.VerifyResolve})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Errorf("//name over pipe: %v", res.Matches)
	}
}
