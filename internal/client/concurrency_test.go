package client_test

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"math/big"
	"sssearch/internal/client"
	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/mapping"

	"sssearch/internal/paperdata"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/sharing"
	"sssearch/internal/wire"
	"sssearch/internal/workload"
	"sssearch/internal/xmltree"
)

// concurrencyWorld is a served share tree plus the reference local store
// it was built from.
type concurrencyWorld struct {
	addr  string
	local *server.Local
	ring  ring.Ring
	m     *mapping.Map
	seed  drbg.Seed
	keys  []drbg.NodeKey
}

func buildWorld(t *testing.T, doc *xmltree.Node) *concurrencyWorld {
	t.Helper()
	return buildWorldRing(t, doc, ring.MustIntQuotient(1, 0, 1))
}

func buildWorldRing(t *testing.T, doc *xmltree.Node, r ring.Ring) *concurrencyWorld {
	t.Helper()
	m, err := mapping.New(r.MaxTag(), []byte("conc-test"))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		t.Fatal(err)
	}
	seed := testSeed(21)
	tree, err := sharing.Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	local, err := server.NewLocal(r, tree)
	if err != nil {
		t.Fatal(err)
	}
	w := &concurrencyWorld{local: local, ring: r, m: m, seed: seed}
	enc.Walk(func(key drbg.NodeKey, _ *polyenc.Node) bool {
		w.keys = append(w.keys, key)
		return true
	})

	d := server.NewDaemon(local, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = d.Serve(l)
	}()
	t.Cleanup(func() {
		d.Close()
		<-done
	})
	w.addr = l.Addr().String()
	return w
}

// pts returns n small evaluation points.
func pts(n int) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = big.NewInt(int64(i + 2))
	}
	return out
}

// TestParallelEvalOnePipelinedConnection hammers a single v2 connection
// with concurrent EvalNodes calls and checks every answer against the
// local reference — the in-flight requests must not cross wires.
func TestParallelEvalOnePipelinedConnection(t *testing.T) {
	w := buildWorld(t, workload.RandomTree(workload.TreeConfig{Nodes: 60, MaxFanout: 3, Vocab: 8, Seed: 17}))
	r, err := client.Dial(w.addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.ProtocolVersion() < wire.Version2 {
		t.Fatalf("negotiated v%d, want a pipelined version (v2+)", r.ProtocolVersion())
	}

	points := pts(3)
	const goroutines = 16
	const callsEach = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for c := 0; c < callsEach; c++ {
				key := w.keys[(g*callsEach+c)%len(w.keys)]
				got, err := r.EvalNodes([]drbg.NodeKey{key}, points)
				if err != nil {
					errs <- err
					return
				}
				want, err := w.local.EvalNodes([]drbg.NodeKey{key}, points)
				if err != nil {
					errs <- err
					return
				}
				for i := range want[0].Values {
					if got[0].Values[i].Cmp(want[0].Values[i]) != 0 {
						errs <- errors.New("pipelined answer does not match reference (crossed wires?)")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDaemonUnder100ConcurrentClients runs 100 clients against one
// daemon, each completing a real query through the engine.
func TestDaemonUnder100ConcurrentClients(t *testing.T) {
	w := buildWorld(t, paperdata.Document())
	const clients = 100
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := client.Dial(w.addr, nil)
			if err != nil {
				errs <- err
				return
			}
			defer r.Close()
			if _, err := r.EvalNodes([]drbg.NodeKey{{}}, pts(2)); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	failures := 0
	for err := range errs {
		failures++
		t.Logf("client error: %v", err)
	}
	if failures > 0 {
		t.Fatalf("%d of %d clients failed", failures, clients)
	}
}

// fakeServer speaks the v2 handshake over an in-memory pipe and answers
// Eval requests only when released — deterministic mid-flight state for
// cancellation tests.
type fakeServer struct {
	conn    net.Conn
	release chan struct{} // closed → start answering held request
	held    chan uint64   // req IDs seen while holding
}

func startFakeServer(t *testing.T) (net.Conn, *fakeServer) {
	t.Helper()
	cli, srv := net.Pipe()
	fs := &fakeServer{conn: srv, release: make(chan struct{}), held: make(chan uint64, 16)}
	go fs.run()
	t.Cleanup(func() { srv.Close() })
	return cli, fs
}

func (fs *fakeServer) run() {
	f, _, err := wire.ReadFrame(fs.conn)
	if err != nil || f.Type != wire.MsgHello {
		return
	}
	ack, err := wire.EncodeHelloAck(wire.HelloAck{Version: wire.Version2, Params: ring.MustFp(257).Params()})
	if err != nil {
		return
	}
	if _, err := wire.WriteFrame(fs.conn, wire.Frame{Type: wire.MsgHelloAck, Payload: ack}); err != nil {
		return
	}
	released := false
	for {
		af, _, err := wire.ReadAny(fs.conn)
		if err != nil {
			return
		}
		if af.Type == wire.MsgBye {
			return
		}
		if af.Type != wire.MsgEval {
			continue
		}
		req, err := wire.DecodeEvalReq(af.Payload)
		if err != nil {
			return
		}
		answer := func() {
			answers := make([]core.NodeEval, len(req.Keys))
			for i, k := range req.Keys {
				answers[i] = core.NodeEval{Key: k, Values: req.Points}
			}
			_, _ = wire.WriteFramed(fs.conn, wire.FramedFrame{
				Type:    wire.MsgEvalResp,
				ReqID:   af.ReqID,
				Payload: wire.EncodeEvalResp(wire.EvalResp{ID: req.ID, Answers: answers}),
			})
		}
		if released {
			answer()
			continue
		}
		select {
		case <-fs.release:
			released = true
			answer()
		default:
			fs.held <- req.ID
			go func() {
				<-fs.release
				answer()
			}()
		}
	}
}

// TestCancellationMidQuery cancels an in-flight pipelined request: the
// call must return promptly with the context error, the late response
// must be dropped, and the session must stay usable.
func TestCancellationMidQuery(t *testing.T) {
	conn, fs := startFakeServer(t)
	r, err := client.NewRemote(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx, cancel := context.WithCancel(context.Background())
	resCh := r.EvalNodesAsync(ctx, []drbg.NodeKey{{0}}, pts(1))
	// Wait until the server holds the request mid-flight, then cancel.
	select {
	case <-fs.held:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the server")
	}
	cancel()
	select {
	case res := <-resCh:
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("cancelled call returned %v, want context.Canceled", res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled call did not return")
	}

	// Release the held response (now orphaned) and verify the session
	// still answers new calls correctly.
	close(fs.release)
	got, err := r.EvalNodes([]drbg.NodeKey{{1}}, pts(2))
	if err != nil {
		t.Fatalf("session unusable after cancellation: %v", err)
	}
	if len(got) != 1 || len(got[0].Values) != 2 {
		t.Fatalf("unexpected post-cancel answer shape: %+v", got)
	}
}

// TestOutOfOrderResponses verifies response routing by request ID: the
// fake server answers the second request before the first.
func TestOutOfOrderResponses(t *testing.T) {
	conn, fs := startFakeServer(t)
	r, err := client.NewRemote(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx := context.Background()
	first := r.EvalNodesAsync(ctx, []drbg.NodeKey{{0}}, pts(1))
	select {
	case <-fs.held:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never held")
	}
	// Second request: answered immediately once released; release unblocks
	// both, but the held first response arrives via a separate goroutine —
	// order is not guaranteed, which is exactly the point: both must
	// resolve correctly regardless.
	close(fs.release)
	second, err := r.EvalNodes([]drbg.NodeKey{{1}, {2}}, pts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 2 {
		t.Fatalf("second call: %d answers, want 2", len(second))
	}
	res := <-first
	if res.Err != nil {
		t.Fatalf("first call: %v", res.Err)
	}
	if len(res.Answers) != 1 || res.Answers[0].Key.String() != (drbg.NodeKey{0}).String() {
		t.Fatalf("first call answers misrouted: %+v", res.Answers)
	}
}

// TestPoolConcurrentQueries drives full engine queries through a
// connection pool from many goroutines.
func TestPoolConcurrentQueries(t *testing.T) {
	w := buildWorld(t, paperdata.Document())
	pool, err := client.DialPool(w.addr, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Size() != 4 {
		t.Fatalf("pool size %d", pool.Size())
	}
	eng := core.NewEngine(w.ring, w.seed, w.m, pool, nil)
	const queries = 24
	var wg sync.WaitGroup
	errs := make(chan error, queries)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			res, err := eng.Lookup("client", core.Opts{Verify: core.VerifyResolve, Parallelism: 2})
			if err != nil {
				errs <- err
				return
			}
			if len(res.Matches) != 2 {
				errs <- errors.New("wrong match count under concurrency")
			}
		}(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
