// Package client provides the network-facing side of the query protocol:
// a core.ServerAPI implementation that speaks the wire protocol to a
// remote share server, so the query engine works identically in-process
// and across the network.
package client

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"
	"sync"
	"sync/atomic"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/metrics"
	"sssearch/internal/ring"
	"sssearch/internal/wire"
)

// Remote is a connected protocol session. It implements core.ServerAPI.
// Safe for concurrent use (requests are serialized on the connection).
type Remote struct {
	mu       sync.Mutex
	conn     io.ReadWriteCloser
	nextID   atomic.Uint64
	params   ring.Params
	counters *metrics.Counters
	closed   bool
}

// Dial connects to a share server over TCP and performs the handshake.
// counters may be nil.
func Dial(addr string, counters *metrics.Counters) (*Remote, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	r, err := NewRemote(conn, counters)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return r, nil
}

// NewRemote performs the handshake over an existing connection.
func NewRemote(conn io.ReadWriteCloser, counters *metrics.Counters) (*Remote, error) {
	if counters == nil {
		counters = &metrics.Counters{}
	}
	r := &Remote{conn: conn, counters: counters}
	n, err := wire.WriteFrame(conn, wire.Frame{
		Type:    wire.MsgHello,
		Payload: wire.EncodeHello(wire.Hello{Version: wire.Version}),
	})
	counters.AddBytesSent(n)
	counters.AddMessageSent()
	if err != nil {
		return nil, err
	}
	f, rn, err := wire.ReadFrame(conn)
	counters.AddBytesReceived(rn)
	counters.AddMessageReceived()
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case wire.MsgHelloAck:
		ack, err := wire.DecodeHelloAck(f.Payload)
		if err != nil {
			return nil, err
		}
		if ack.Version != wire.Version {
			return nil, fmt.Errorf("client: server version %d unsupported", ack.Version)
		}
		r.params = ack.Params
		return r, nil
	case wire.MsgError:
		e, err := wire.DecodeError(f.Payload)
		if err != nil {
			return nil, err
		}
		return nil, &wire.RemoteError{ID: e.ID, Message: e.Message}
	default:
		return nil, fmt.Errorf("client: unexpected handshake frame %s", f.Type)
	}
}

// Params returns the ring parameters announced by the server.
func (r *Remote) Params() ring.Params { return r.params }

// Ring reconstructs the ring from the announced parameters.
func (r *Remote) Ring() (ring.Ring, error) { return ring.FromParams(r.params) }

// Close sends Bye and closes the connection.
func (r *Remote) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	_, _ = wire.WriteFrame(r.conn, wire.Frame{Type: wire.MsgBye})
	return r.conn.Close()
}

// roundTrip sends a request frame and reads the response, surfacing
// MsgError as *wire.RemoteError.
func (r *Remote) roundTrip(req wire.Frame) (wire.Frame, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return wire.Frame{}, errors.New("client: session closed")
	}
	n, err := wire.WriteFrame(r.conn, req)
	r.counters.AddBytesSent(n)
	r.counters.AddMessageSent()
	if err != nil {
		return wire.Frame{}, err
	}
	resp, rn, err := wire.ReadFrame(r.conn)
	r.counters.AddBytesReceived(rn)
	r.counters.AddMessageReceived()
	if err != nil {
		return wire.Frame{}, err
	}
	if resp.Type == wire.MsgError {
		e, derr := wire.DecodeError(resp.Payload)
		if derr != nil {
			return wire.Frame{}, derr
		}
		return wire.Frame{}, &wire.RemoteError{ID: e.ID, Message: e.Message}
	}
	return resp, nil
}

func (r *Remote) id() uint64 {
	return r.nextID.Add(1)
}

// EvalNodes implements core.ServerAPI.
func (r *Remote) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	id := r.id()
	resp, err := r.roundTrip(wire.Frame{
		Type:    wire.MsgEval,
		Payload: wire.EncodeEvalReq(wire.EvalReq{ID: id, Keys: keys, Points: points}),
	})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.MsgEvalResp {
		return nil, fmt.Errorf("client: unexpected reply %s to Eval", resp.Type)
	}
	dec, err := wire.DecodeEvalResp(resp.Payload)
	if err != nil {
		return nil, err
	}
	if dec.ID != id {
		return nil, fmt.Errorf("client: response id %d for request %d", dec.ID, id)
	}
	return dec.Answers, nil
}

// FetchPolys implements core.ServerAPI.
func (r *Remote) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	id := r.id()
	resp, err := r.roundTrip(wire.Frame{
		Type:    wire.MsgFetch,
		Payload: wire.EncodeFetchReq(wire.FetchReq{ID: id, Keys: keys}),
	})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.MsgFetchResp {
		return nil, fmt.Errorf("client: unexpected reply %s to Fetch", resp.Type)
	}
	dec, err := wire.DecodeFetchResp(resp.Payload)
	if err != nil {
		return nil, err
	}
	if dec.ID != id {
		return nil, fmt.Errorf("client: response id %d for request %d", dec.ID, id)
	}
	return dec.Answers, nil
}

// Prune implements core.ServerAPI.
func (r *Remote) Prune(keys []drbg.NodeKey) error {
	id := r.id()
	resp, err := r.roundTrip(wire.Frame{
		Type:    wire.MsgPrune,
		Payload: wire.EncodePruneReq(wire.PruneReq{ID: id, Keys: keys}),
	})
	if err != nil {
		return err
	}
	if resp.Type != wire.MsgAck {
		return fmt.Errorf("client: unexpected reply %s to Prune", resp.Type)
	}
	ackID, err := wire.DecodeAck(resp.Payload)
	if err != nil {
		return err
	}
	if ackID != id {
		return fmt.Errorf("client: ack id %d for request %d", ackID, id)
	}
	return nil
}

var _ core.ServerAPI = (*Remote)(nil)
