// Package client provides the network-facing side of the query protocol:
// a core.ServerAPI implementation that speaks the wire protocol to a
// remote share server, so the query engine works identically in-process
// and across the network.
//
// Sessions negotiate protocol version 2 (pipelined framing) when the
// server supports it: requests are written as framed (request-ID) frames
// and a single reader goroutine routes responses — possibly out of order —
// back to their callers, so one connection carries many in-flight
// requests. Against a version 1 server the session transparently falls
// back to strict lockstep request/response.
package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/metrics"
	"sssearch/internal/obs"
	"sssearch/internal/ring"
	"sssearch/internal/wire"
)

// ErrClosed is returned by calls on a closed session.
var ErrClosed = errors.New("client: session closed")

// Remote is a connected protocol session. It implements core.ServerAPI.
// Safe for concurrent use: on a v2 session concurrent calls are pipelined
// on the one connection; on a v1 session they serialise.
type Remote struct {
	conn     io.ReadWriteCloser
	params   ring.Params
	counters *metrics.Counters
	obsv     *obs.Observer
	version  uint32
	nextID   atomic.Uint64

	wmu sync.Mutex // serialises frame writes (and v1 round trips)

	pmu     sync.Mutex
	pending map[uint64]chan callResult // v2: in-flight requests by ID
	readErr error                      // v2: terminal reader error
	closed  bool
	goaway  bool // server sent Bye (graceful drain): session is winding down

	readerDone chan struct{} // v2: closed when the reader goroutine exits
}

// callResult is what the reader goroutine delivers to a waiting caller.
type callResult struct {
	typ     wire.MsgType
	payload []byte
	err     error
}

// Dial connects to a share server over TCP and performs the handshake,
// negotiating the highest protocol version the server supports.
// counters may be nil.
func Dial(addr string, counters *metrics.Counters) (*Remote, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	r, err := NewRemote(conn, counters)
	if err == nil {
		return r, nil
	}
	conn.Close()
	// A v1-only server rejects the version-2 Hello outright (it cannot
	// downgrade). Redial and speak v1 — but only for an actual version
	// rejection; any other handshake failure surfaces to the caller.
	if isVersionRejection(err) {
		conn, derr := net.Dial("tcp", addr)
		if derr != nil {
			return nil, fmt.Errorf("client: dial %s: %w", addr, derr)
		}
		r, rerr := newRemote(conn, counters, wire.Version)
		if rerr != nil {
			conn.Close()
			return nil, rerr
		}
		return r, nil
	}
	return nil, err
}

// isVersionRejection reports whether a handshake error is a v1-only
// server refusing the offered protocol version (the legacy daemon's
// fixed "unsupported version N" error), as opposed to any other
// server-side failure, which must not trigger a silent downgrade.
func isVersionRejection(err error) bool {
	var re *wire.RemoteError
	return errors.As(err, &re) && strings.HasPrefix(re.Message, "unsupported version")
}

// NewRemote performs the handshake over an existing connection, offering
// the newest protocol version and accepting the server's downgrade.
func NewRemote(conn io.ReadWriteCloser, counters *metrics.Counters) (*Remote, error) {
	return newRemote(conn, counters, wire.MaxVersion)
}

// DialVersion connects offering a specific protocol version — for interop
// testing and for talking to old strict request/response servers without
// the redial dance.
func DialVersion(addr string, version uint32, counters *metrics.Counters) (*Remote, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	r, err := newRemote(conn, counters, version)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return r, nil
}

func newRemote(conn io.ReadWriteCloser, counters *metrics.Counters, offer uint32) (*Remote, error) {
	if counters == nil {
		counters = &metrics.Counters{}
	}
	r := &Remote{conn: conn, counters: counters, obsv: obs.Default()}
	n, err := wire.WriteFrame(conn, wire.Frame{
		Type:    wire.MsgHello,
		Payload: wire.EncodeHello(wire.Hello{Version: offer}),
	})
	counters.AddBytesSent(n)
	counters.AddMessageSent()
	if err != nil {
		return nil, err
	}
	f, rn, err := wire.ReadFrame(conn)
	counters.AddBytesReceived(rn)
	counters.AddMessageReceived()
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case wire.MsgHelloAck:
		ack, err := wire.DecodeHelloAck(f.Payload)
		if err != nil {
			return nil, err
		}
		if ack.Version < wire.Version || ack.Version > offer {
			return nil, fmt.Errorf("client: server version %d unsupported", ack.Version)
		}
		r.params = ack.Params
		r.version = ack.Version
		if r.version >= wire.Version2 {
			r.pending = make(map[uint64]chan callResult)
			r.readerDone = make(chan struct{})
			go r.readLoop()
		}
		return r, nil
	case wire.MsgError:
		e, err := wire.DecodeError(f.Payload)
		if err != nil {
			return nil, err
		}
		return nil, remoteError(e)
	default:
		return nil, fmt.Errorf("client: unexpected handshake frame %s", f.Type)
	}
}

// remoteError surfaces a decoded server ErrorMsg, carrying the v3 typed
// code and retry-after hint through to the resilience classifiers.
func remoteError(e wire.ErrorMsg) *wire.RemoteError {
	return &wire.RemoteError{
		ID:         e.ID,
		Message:    e.Message,
		Code:       e.Code,
		RetryAfter: time.Duration(e.RetryAfterMillis) * time.Millisecond,
	}
}

// Params returns the ring parameters announced by the server.
func (r *Remote) Params() ring.Params { return r.params }

// Broken reports whether the session can no longer carry requests: it was
// closed, its reader hit a terminal error, or the server announced a
// graceful shutdown (Bye). A broken session never heals — re-dial.
func (r *Remote) Broken() bool {
	r.pmu.Lock()
	defer r.pmu.Unlock()
	return r.closed || r.readErr != nil || r.goaway
}

// Ring reconstructs the ring from the announced parameters.
func (r *Remote) Ring() (ring.Ring, error) { return ring.FromParams(r.params) }

// ProtocolVersion returns the negotiated wire protocol version.
func (r *Remote) ProtocolVersion() uint32 { return r.version }

// Close sends Bye and closes the connection. In-flight calls fail with
// ErrClosed.
func (r *Remote) Close() error {
	r.pmu.Lock()
	if r.closed {
		r.pmu.Unlock()
		return nil
	}
	r.closed = true
	r.pmu.Unlock()
	r.wmu.Lock()
	if r.version >= wire.Version2 {
		_, _ = wire.WriteFramed(r.conn, wire.FramedFrame{Type: wire.MsgBye})
	} else {
		_, _ = wire.WriteFrame(r.conn, wire.Frame{Type: wire.MsgBye})
	}
	r.wmu.Unlock()
	err := r.conn.Close()
	if r.readerDone != nil {
		<-r.readerDone
	}
	return err
}

// readLoop (v2 only) reads framed frames and routes each to the pending
// call with its request ID. On a terminal read error every pending and
// future call fails.
func (r *Remote) readLoop() {
	defer close(r.readerDone)
	for {
		f, n, err := wire.ReadAny(r.conn)
		if err != nil {
			r.pmu.Lock()
			r.readErr = err
			if r.closed || errors.Is(err, io.EOF) {
				r.readErr = ErrClosed
			}
			pending := r.pending
			r.pending = make(map[uint64]chan callResult)
			failErr := r.readErr
			r.pmu.Unlock()
			for _, ch := range pending {
				ch <- callResult{err: failErr}
			}
			return
		}
		r.counters.AddBytesReceived(n)
		r.counters.AddMessageReceived()
		if f.Type == wire.MsgBye {
			// Server-initiated GOAWAY (graceful drain): in-flight responses
			// have already been flushed before the Bye, so mark the session
			// broken — Reliable and Pool health checks will re-dial — and
			// keep reading until the server closes the connection.
			r.pmu.Lock()
			r.goaway = true
			r.pmu.Unlock()
			if f.Payload != nil {
				wire.PutBuf(f.Payload)
			}
			continue
		}
		res := callResult{typ: f.Type, payload: f.Payload}
		if f.Type == wire.MsgError {
			e, derr := wire.DecodeError(f.Payload)
			if derr != nil {
				res = callResult{err: derr}
			} else {
				res = callResult{err: remoteError(e)}
			}
			wire.PutBuf(f.Payload) // decoded; res carries no payload
		}
		r.pmu.Lock()
		ch, ok := r.pending[f.ReqID]
		delete(r.pending, f.ReqID)
		r.pmu.Unlock()
		if ok {
			ch <- res // buffered: never blocks the reader
		} else if res.payload != nil {
			// Responses with no waiter (cancelled calls) are dropped.
			wire.PutBuf(res.payload)
		}
	}
}

// call sends one request and waits for its response, honouring ctx. On a
// v2 session the request is pipelined; on v1 it holds the connection for
// a strict round trip (cancellation is only observed between phases).
// call takes ownership of the (possibly pooled) request payload and
// recycles it once written; the caller must not touch it afterwards.
func (r *Remote) call(ctx context.Context, typ wire.MsgType, id uint64, payload []byte) (wire.MsgType, []byte, error) {
	if err := ctx.Err(); err != nil {
		wire.PutBuf(payload)
		return 0, nil, err
	}
	if r.version >= wire.Version2 {
		return r.callPipelined(ctx, typ, id, payload)
	}
	return r.callStrict(ctx, typ, payload)
}

func (r *Remote) callPipelined(ctx context.Context, typ wire.MsgType, id uint64, payload []byte) (wire.MsgType, []byte, error) {
	ch := make(chan callResult, 1)
	r.pmu.Lock()
	if r.closed {
		r.pmu.Unlock()
		wire.PutBuf(payload)
		return 0, nil, ErrClosed
	}
	if r.readErr != nil {
		err := r.readErr
		r.pmu.Unlock()
		wire.PutBuf(payload)
		return 0, nil, err
	}
	r.pending[id] = ch
	r.pmu.Unlock()

	r.wmu.Lock()
	n, err := wire.WriteFramed(r.conn, wire.FramedFrame{Type: typ, ReqID: id, Payload: payload})
	r.wmu.Unlock()
	wire.PutBuf(payload) // written (or failed); either way done with it
	r.counters.AddBytesSent(n)
	r.counters.AddMessageSent()
	if err != nil {
		r.pmu.Lock()
		delete(r.pending, id)
		r.pmu.Unlock()
		return 0, nil, err
	}
	select {
	case res := <-ch:
		return res.typ, res.payload, res.err
	case <-ctx.Done():
		// Abandon the request: deregister so the eventual response is
		// dropped by the reader. The server still does the work.
		r.pmu.Lock()
		delete(r.pending, id)
		r.pmu.Unlock()
		// A response may have been delivered while we were deregistering.
		select {
		case res := <-ch:
			return res.typ, res.payload, res.err
		default:
		}
		return 0, nil, ctx.Err()
	}
}

func (r *Remote) callStrict(ctx context.Context, typ wire.MsgType, payload []byte) (wire.MsgType, []byte, error) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	r.pmu.Lock()
	closed := r.closed
	r.pmu.Unlock()
	if closed {
		wire.PutBuf(payload)
		return 0, nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		wire.PutBuf(payload)
		return 0, nil, err
	}
	n, err := wire.WriteFrame(r.conn, wire.Frame{Type: typ, Payload: payload})
	wire.PutBuf(payload)
	r.counters.AddBytesSent(n)
	r.counters.AddMessageSent()
	if err != nil {
		return 0, nil, err
	}
	resp, rn, err := wire.ReadFrame(r.conn)
	r.counters.AddBytesReceived(rn)
	r.counters.AddMessageReceived()
	if err != nil {
		return 0, nil, err
	}
	if resp.Type == wire.MsgBye {
		// Server-initiated GOAWAY (graceful drain): the session is winding
		// down. Surface ErrClosed — a transport-class fault — so retrying
		// wrappers re-dial instead of treating the drain as an answer.
		if resp.Payload != nil {
			wire.PutBuf(resp.Payload)
		}
		r.pmu.Lock()
		r.goaway = true
		r.pmu.Unlock()
		return 0, nil, ErrClosed
	}
	if resp.Type == wire.MsgError {
		e, derr := wire.DecodeError(resp.Payload)
		wire.PutBuf(resp.Payload)
		if derr != nil {
			return 0, nil, derr
		}
		return 0, nil, remoteError(e)
	}
	return resp.Type, resp.Payload, nil
}

func (r *Remote) id() uint64 {
	return r.nextID.Add(1)
}

// deadlineBudget converts the caller's remaining context deadline into
// the protocol v3 per-request budget field: milliseconds, rounded up so a
// sub-millisecond remainder is never truncated to "no deadline". Zero —
// no deadline rides the frame — when the context has none or the session
// negotiated an older version (the field would be trailing garbage to a
// v2 server).
func (r *Remote) deadlineBudget(ctx context.Context) uint64 {
	if r.version < wire.Version3 {
		return 0
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	left := time.Until(dl)
	if left <= 0 {
		return 1 // expired; the server will skip it, ctx.Err() races it
	}
	return uint64((left + time.Millisecond - 1) / time.Millisecond)
}

// SetObserver replaces the observer recording this session's wire
// round-trip latencies (tests inject an isolated one). Call before use.
func (r *Remote) SetObserver(o *obs.Observer) { r.obsv = o }

// traceFields returns the wire trace extension for this request: the
// context's sampled span, but only on a v3 session — a v2 peer would
// reject the extension bytes.
func (r *Remote) traceFields(ctx context.Context) (id uint64, sampled bool) {
	if r.version < wire.Version3 {
		return 0, false
	}
	if sp := obs.SpanFrom(ctx); sp != nil && sp.Trace.Sampled {
		return sp.Trace.ID, true
	}
	return 0, false
}

// observeWire records one completed wire round trip into the stage
// histogram and, when the request is sampled, its span.
func (r *Remote) observeWire(ctx context.Context, start time.Time) {
	d := time.Since(start)
	r.obsv.Observe(obs.StageWire, d)
	obs.SpanFrom(ctx).Add(obs.StageWire, d)
}

// EvalNodesCtx is EvalNodes with context cancellation.
func (r *Remote) EvalNodesCtx(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	id := r.id()
	traceID, sampled := r.traceFields(ctx)
	start := time.Now()
	typ, payload, err := r.call(ctx, wire.MsgEval, id, wire.AppendEvalReq(wire.GetBuf(), wire.EvalReq{ID: id, Keys: keys, Points: points, TimeoutMillis: r.deadlineBudget(ctx), TraceID: traceID, TraceSampled: sampled}))
	r.observeWire(ctx, start)
	if err != nil {
		return nil, err
	}
	defer wire.PutBuf(payload) // decoders copy everything out
	if typ != wire.MsgEvalResp {
		return nil, fmt.Errorf("client: unexpected reply %s to Eval", typ)
	}
	dec, err := wire.DecodeEvalResp(payload)
	if err != nil {
		return nil, err
	}
	if dec.ID != id {
		return nil, fmt.Errorf("client: response id %d for request %d", dec.ID, id)
	}
	return dec.Answers, nil
}

// FetchPolysCtx is FetchPolys with context cancellation.
func (r *Remote) FetchPolysCtx(ctx context.Context, keys []drbg.NodeKey) ([]core.NodePoly, error) {
	id := r.id()
	traceID, sampled := r.traceFields(ctx)
	start := time.Now()
	typ, payload, err := r.call(ctx, wire.MsgFetch, id, wire.AppendFetchReq(wire.GetBuf(), wire.FetchReq{ID: id, Keys: keys, TimeoutMillis: r.deadlineBudget(ctx), TraceID: traceID, TraceSampled: sampled}))
	r.observeWire(ctx, start)
	if err != nil {
		return nil, err
	}
	defer wire.PutBuf(payload)
	if typ != wire.MsgFetchResp {
		return nil, fmt.Errorf("client: unexpected reply %s to Fetch", typ)
	}
	dec, err := wire.DecodeFetchResp(payload)
	if err != nil {
		return nil, err
	}
	if dec.ID != id {
		return nil, fmt.Errorf("client: response id %d for request %d", dec.ID, id)
	}
	return dec.Answers, nil
}

// PruneCtx is Prune with context cancellation.
func (r *Remote) PruneCtx(ctx context.Context, keys []drbg.NodeKey) error {
	id := r.id()
	traceID, sampled := r.traceFields(ctx)
	start := time.Now()
	typ, payload, err := r.call(ctx, wire.MsgPrune, id, wire.AppendPruneReq(wire.GetBuf(), wire.PruneReq{ID: id, Keys: keys, TimeoutMillis: r.deadlineBudget(ctx), TraceID: traceID, TraceSampled: sampled}))
	r.observeWire(ctx, start)
	if err != nil {
		return err
	}
	defer wire.PutBuf(payload)
	if typ != wire.MsgAck {
		return fmt.Errorf("client: unexpected reply %s to Prune", typ)
	}
	ackID, err := wire.DecodeAck(payload)
	if err != nil {
		return err
	}
	if ackID != id {
		return fmt.Errorf("client: ack id %d for request %d", ackID, id)
	}
	return nil
}

// EvalNodes implements core.ServerAPI.
func (r *Remote) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	return r.EvalNodesCtx(context.Background(), keys, points)
}

// FetchPolys implements core.ServerAPI.
func (r *Remote) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return r.FetchPolysCtx(context.Background(), keys)
}

// Prune implements core.ServerAPI.
func (r *Remote) Prune(keys []drbg.NodeKey) error {
	return r.PruneCtx(context.Background(), keys)
}

// EvalResult is the outcome of an asynchronous EvalNodes call.
type EvalResult struct {
	Answers []core.NodeEval
	Err     error
}

// EvalNodesAsync issues an EvalNodes request without waiting: the result
// is delivered on the returned buffered channel. On a pipelined session
// many async calls proceed concurrently on one connection.
func (r *Remote) EvalNodesAsync(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) <-chan EvalResult {
	ch := make(chan EvalResult, 1)
	go func() {
		answers, err := r.EvalNodesCtx(ctx, keys, points)
		ch <- EvalResult{Answers: answers, Err: err}
	}()
	return ch
}

var _ core.ServerAPI = (*Remote)(nil)
