// Package faultconn wraps a connection with deterministic, seedable fault
// injection: latency spikes, mid-frame connection resets, partial writes,
// silently dropped writes, trickle reads (a consumer that stops draining
// responses) and stalled writes (a producer that hangs mid-request). It
// is the chaos half of the fault-tolerance
// harness — the resilience layer is proved against transports that fail on
// a reproducible schedule rather than on the test machine's mood.
//
// Faults are scheduled by a splitmix64 stream seeded from Config.Seed and
// advanced once per read/write, so a given seed produces the same fault
// pattern for the same operation sequence. After an injected reset the
// underlying connection is closed (both peers observe the fault, as a real
// RST would behave) and every later operation fails fast.
package faultconn

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected is the base of every injected failure; it wraps ECONNRESET
// so the resilience classifier treats injected faults exactly like real
// peer resets.
var ErrInjected = fmt.Errorf("faultconn: injected reset: %w", syscall.ECONNRESET)

// Config schedules the injected faults. A rate field N means roughly one
// fault per N operations (0 disables that fault). Rates are interpreted
// against independent draws of the deterministic stream, so several fault
// kinds can be armed at once.
type Config struct {
	// Seed selects the deterministic fault schedule.
	Seed int64

	// ResetEvery injects a connection reset on ~1/N reads or writes: the
	// operation fails with ErrInjected and the underlying connection is
	// closed mid-frame.
	ResetEvery int

	// LatencyEvery stalls ~1/N operations for LatencySpike before they
	// proceed — the hung-straggler fault hedging exists for.
	LatencyEvery int
	LatencySpike time.Duration

	// PartialWriteEvery truncates ~1/N writes: a strict prefix of the
	// buffer reaches the peer, then the connection resets — the torn-frame
	// fault.
	PartialWriteEvery int

	// DropEvery silently swallows ~1/N writes: the caller sees success,
	// the peer sees nothing — the fault only per-attempt timeouts catch.
	DropEvery int

	// SlowReadEvery throttles ~1/N reads to trickle mode: the read pauses
	// for SlowReadPause and then consumes at most one byte. A client whose
	// reads trickle stops draining responses, which is how a slow consumer
	// looks from the daemon's side — its bounded write queue fills and the
	// write-stall cutoff fires. This is the overload-shaped read fault.
	SlowReadEvery int
	SlowReadPause time.Duration

	// StallWriteEvery freezes ~1/N writes for StallWritePause before any
	// byte reaches the wire — a writer that hangs mid-request, holding the
	// peer's read loop without delivering a frame. Unlike a latency spike
	// (which delays both directions at random), this targets the write
	// path specifically, so request frames arrive late while the session
	// otherwise looks alive.
	StallWriteEvery int
	StallWritePause time.Duration
}

// Counts tallies the faults a Conn has actually fired, by kind. Tests
// assert against it so a chaos run proves its schedule really exercised
// the paths it claims to cover.
type Counts struct {
	Resets     int64
	Latencies  int64
	Partials   int64
	Drops      int64
	SlowReads  int64
	WriteStall int64
}

// Total sums every fault kind.
func (f Counts) Total() int64 {
	return f.Resets + f.Latencies + f.Partials + f.Drops + f.SlowReads + f.WriteStall
}

// Conn is a fault-injecting connection wrapper. Safe for one concurrent
// reader plus one concurrent writer (the wire protocol's usage).
type Conn struct {
	inner io.ReadWriteCloser
	cfg   Config

	state  atomic.Uint64 // splitmix64 stream position
	broken atomic.Bool   // a reset fired; everything fails fast now

	closeOnce sync.Once
	closeErr  error

	// Injected tallies the faults actually fired, by kind — tests assert
	// the schedule really exercised the paths they claim to cover.
	resets     atomic.Int64
	latencies  atomic.Int64
	partials   atomic.Int64
	drops      atomic.Int64
	slowReads  atomic.Int64
	writeStall atomic.Int64
}

// New wraps inner with the fault schedule.
func New(inner io.ReadWriteCloser, cfg Config) *Conn {
	c := &Conn{inner: inner, cfg: cfg}
	c.state.Store(uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
	return c
}

// Faults reports how many faults of each kind have fired.
func (c *Conn) Faults() Counts {
	return Counts{
		Resets:     c.resets.Load(),
		Latencies:  c.latencies.Load(),
		Partials:   c.partials.Load(),
		Drops:      c.drops.Load(),
		SlowReads:  c.slowReads.Load(),
		WriteStall: c.writeStall.Load(),
	}
}

// draw advances the deterministic stream and reports whether a 1-in-n
// event fires.
func (c *Conn) draw(n int) bool {
	if n <= 0 {
		return false
	}
	x := c.state.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x%uint64(n) == 0
}

func (c *Conn) maybeStall() {
	if c.cfg.LatencySpike > 0 && c.draw(c.cfg.LatencyEvery) {
		c.latencies.Add(1)
		time.Sleep(c.cfg.LatencySpike)
	}
}

func (c *Conn) reset() error {
	c.resets.Add(1)
	c.broken.Store(true)
	_ = c.Close()
	return ErrInjected
}

// Read implements io.Reader with scheduled stalls, resets and trickle
// reads.
func (c *Conn) Read(p []byte) (int, error) {
	if c.broken.Load() {
		return 0, ErrInjected
	}
	c.maybeStall()
	if c.draw(c.cfg.ResetEvery) {
		return 0, c.reset()
	}
	if len(p) > 1 && c.cfg.SlowReadPause > 0 && c.draw(c.cfg.SlowReadEvery) {
		c.slowReads.Add(1)
		time.Sleep(c.cfg.SlowReadPause)
		return c.inner.Read(p[:1])
	}
	return c.inner.Read(p)
}

// Write implements io.Writer with scheduled stalls, resets, torn frames
// and dropped frames.
func (c *Conn) Write(p []byte) (int, error) {
	if c.broken.Load() {
		return 0, ErrInjected
	}
	c.maybeStall()
	if c.cfg.StallWritePause > 0 && c.draw(c.cfg.StallWriteEvery) {
		c.writeStall.Add(1)
		time.Sleep(c.cfg.StallWritePause)
	}
	if c.draw(c.cfg.ResetEvery) {
		return 0, c.reset()
	}
	if len(p) > 1 && c.draw(c.cfg.PartialWriteEvery) {
		c.partials.Add(1)
		n, _ := c.inner.Write(p[:len(p)/2])
		err := c.reset()
		return n, err
	}
	if c.draw(c.cfg.DropEvery) {
		c.drops.Add(1)
		return len(p), nil
	}
	return c.inner.Write(p)
}

// Close closes the underlying connection (idempotently — an injected
// reset already closed it).
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.inner.Close() })
	return c.closeErr
}

// SetReadDeadline forwards to the underlying connection when it supports
// deadlines, so daemon idle timeouts keep working through the injector.
func (c *Conn) SetReadDeadline(t time.Time) error {
	if d, ok := c.inner.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}

var _ io.ReadWriteCloser = (*Conn)(nil)
