// Package faultconn wraps a connection with deterministic, seedable fault
// injection: latency spikes, mid-frame connection resets, partial writes
// and silently dropped writes. It is the chaos half of the fault-tolerance
// harness — the resilience layer is proved against transports that fail on
// a reproducible schedule rather than on the test machine's mood.
//
// Faults are scheduled by a splitmix64 stream seeded from Config.Seed and
// advanced once per read/write, so a given seed produces the same fault
// pattern for the same operation sequence. After an injected reset the
// underlying connection is closed (both peers observe the fault, as a real
// RST would behave) and every later operation fails fast.
package faultconn

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected is the base of every injected failure; it wraps ECONNRESET
// so the resilience classifier treats injected faults exactly like real
// peer resets.
var ErrInjected = fmt.Errorf("faultconn: injected reset: %w", syscall.ECONNRESET)

// Config schedules the injected faults. A rate field N means roughly one
// fault per N operations (0 disables that fault). Rates are interpreted
// against independent draws of the deterministic stream, so several fault
// kinds can be armed at once.
type Config struct {
	// Seed selects the deterministic fault schedule.
	Seed int64

	// ResetEvery injects a connection reset on ~1/N reads or writes: the
	// operation fails with ErrInjected and the underlying connection is
	// closed mid-frame.
	ResetEvery int

	// LatencyEvery stalls ~1/N operations for LatencySpike before they
	// proceed — the hung-straggler fault hedging exists for.
	LatencyEvery int
	LatencySpike time.Duration

	// PartialWriteEvery truncates ~1/N writes: a strict prefix of the
	// buffer reaches the peer, then the connection resets — the torn-frame
	// fault.
	PartialWriteEvery int

	// DropEvery silently swallows ~1/N writes: the caller sees success,
	// the peer sees nothing — the fault only per-attempt timeouts catch.
	DropEvery int
}

// Conn is a fault-injecting connection wrapper. Safe for one concurrent
// reader plus one concurrent writer (the wire protocol's usage).
type Conn struct {
	inner io.ReadWriteCloser
	cfg   Config

	state  atomic.Uint64 // splitmix64 stream position
	broken atomic.Bool   // a reset fired; everything fails fast now

	closeOnce sync.Once
	closeErr  error

	// Injected tallies the faults actually fired, by kind — tests assert
	// the schedule really exercised the paths they claim to cover.
	resets    atomic.Int64
	latencies atomic.Int64
	partials  atomic.Int64
	drops     atomic.Int64
}

// New wraps inner with the fault schedule.
func New(inner io.ReadWriteCloser, cfg Config) *Conn {
	c := &Conn{inner: inner, cfg: cfg}
	c.state.Store(uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
	return c
}

// Faults reports how many faults of each kind have fired.
func (c *Conn) Faults() (resets, latencies, partials, drops int64) {
	return c.resets.Load(), c.latencies.Load(), c.partials.Load(), c.drops.Load()
}

// draw advances the deterministic stream and reports whether a 1-in-n
// event fires.
func (c *Conn) draw(n int) bool {
	if n <= 0 {
		return false
	}
	x := c.state.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x%uint64(n) == 0
}

func (c *Conn) maybeStall() {
	if c.cfg.LatencySpike > 0 && c.draw(c.cfg.LatencyEvery) {
		c.latencies.Add(1)
		time.Sleep(c.cfg.LatencySpike)
	}
}

func (c *Conn) reset() error {
	c.resets.Add(1)
	c.broken.Store(true)
	_ = c.Close()
	return ErrInjected
}

// Read implements io.Reader with scheduled stalls and resets.
func (c *Conn) Read(p []byte) (int, error) {
	if c.broken.Load() {
		return 0, ErrInjected
	}
	c.maybeStall()
	if c.draw(c.cfg.ResetEvery) {
		return 0, c.reset()
	}
	return c.inner.Read(p)
}

// Write implements io.Writer with scheduled stalls, resets, torn frames
// and dropped frames.
func (c *Conn) Write(p []byte) (int, error) {
	if c.broken.Load() {
		return 0, ErrInjected
	}
	c.maybeStall()
	if c.draw(c.cfg.ResetEvery) {
		return 0, c.reset()
	}
	if len(p) > 1 && c.draw(c.cfg.PartialWriteEvery) {
		c.partials.Add(1)
		n, _ := c.inner.Write(p[:len(p)/2])
		err := c.reset()
		return n, err
	}
	if c.draw(c.cfg.DropEvery) {
		c.drops.Add(1)
		return len(p), nil
	}
	return c.inner.Write(p)
}

// Close closes the underlying connection (idempotently — an injected
// reset already closed it).
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.inner.Close() })
	return c.closeErr
}

// SetReadDeadline forwards to the underlying connection when it supports
// deadlines, so daemon idle timeouts keep working through the injector.
func (c *Conn) SetReadDeadline(t time.Time) error {
	if d, ok := c.inner.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}

var _ io.ReadWriteCloser = (*Conn)(nil)
