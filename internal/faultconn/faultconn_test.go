package faultconn

import (
	"errors"
	"io"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"sssearch/internal/resilience"
)

// memConn is a loopback io.ReadWriteCloser for schedule tests.
type memConn struct {
	r *io.PipeReader
	w *io.PipeWriter
}

func (m memConn) Read(p []byte) (int, error)  { return m.r.Read(p) }
func (m memConn) Write(p []byte) (int, error) { return m.w.Write(p) }
func (m memConn) Close() error                { m.r.Close(); return m.w.Close() }

func pipePair() (memConn, memConn) {
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	return memConn{r: ar, w: aw}, memConn{r: br, w: bw}
}

// TestDeterministicSchedule: the same seed over the same operation
// sequence fires the same faults at the same positions.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed int64) []int {
		a, b := pipePair()
		defer b.Close()
		c := New(a, Config{Seed: seed, ResetEvery: 7})
		go func() { // drain the peer so writes complete
			buf := make([]byte, 64)
			for {
				if _, err := b.Read(buf); err != nil {
					return
				}
			}
		}()
		var failedAt []int
		for i := 0; i < 40; i++ {
			if _, err := c.Write([]byte("x")); err != nil {
				failedAt = append(failedAt, i)
				break
			}
		}
		return failedAt
	}
	first := run(11)
	second := run(11)
	if len(first) == 0 {
		t.Fatal("seeded reset schedule never fired in 40 writes")
	}
	if len(second) == 0 || first[0] != second[0] {
		t.Fatalf("schedule not deterministic: %v vs %v", first, second)
	}
	other := run(12)
	if len(other) != 0 && other[0] == first[0] {
		// Different seeds may occasionally collide; only a hint, not fatal.
		t.Logf("seeds 11 and 12 reset at the same position %d", first[0])
	}
}

// TestResetClassifiesRetryable: injected faults must look like transport
// faults to the resilience classifier, and must poison the connection.
func TestResetClassifiesRetryable(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	c := New(a, Config{Seed: 3, ResetEvery: 1})
	_, err := c.Write([]byte("hello"))
	if err == nil {
		t.Fatal("ResetEvery=1 write succeeded")
	}
	if !errors.Is(err, syscall.ECONNRESET) || !resilience.Retryable(err) {
		t.Fatalf("injected reset %v must classify as a retryable reset", err)
	}
	if _, err := c.Write([]byte("again")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-reset write = %v, want fail-fast ErrInjected", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-reset read = %v, want fail-fast ErrInjected", err)
	}
	if f := c.Faults(); f.Resets != 1 {
		t.Fatalf("resets = %d, want 1", f.Resets)
	}
}

// TestPartialWriteTearsFrame: a partial write delivers a strict prefix
// then resets, so the peer observes a torn stream.
func TestPartialWriteTearsFrame(t *testing.T) {
	a, b := pipePair()
	c := New(a, Config{Seed: 5, PartialWriteEvery: 1})
	var got []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64)
		for {
			n, err := b.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				return
			}
		}
	}()
	msg := []byte("0123456789")
	n, err := c.Write(msg)
	if err == nil {
		t.Fatal("partial write reported success")
	}
	wg.Wait()
	if n >= len(msg) || len(got) != n {
		t.Fatalf("peer got %d bytes, writer reported %d of %d", len(got), n, len(msg))
	}
	if f := c.Faults(); f.Partials != 1 {
		t.Fatalf("partials = %d, want 1", f.Partials)
	}
}

// TestDropSwallowsWrite: a dropped write reports success and delivers
// nothing — the stall fault that forces timeout-based recovery.
func TestDropSwallowsWrite(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	c := New(a, Config{Seed: 9, DropEvery: 1})
	if n, err := c.Write([]byte("vanish")); err != nil || n != 6 {
		t.Fatalf("dropped write = (%d, %v), want silent success", n, err)
	}
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		b.Read(make([]byte, 8))
	}()
	select {
	case <-readDone:
		t.Fatal("peer received a dropped write")
	case <-time.After(30 * time.Millisecond):
	}
	if f := c.Faults(); f.Drops != 1 {
		t.Fatalf("drops = %d, want 1", f.Drops)
	}
}

// TestLatencySpike: scheduled stalls delay the operation but do not fail it.
func TestLatencySpike(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	c := New(a, Config{Seed: 1, LatencyEvery: 1, LatencySpike: 20 * time.Millisecond})
	go func() { b.Read(make([]byte, 8)) }()
	start := time.Now()
	if _, err := c.Write([]byte("slow")); err != nil {
		t.Fatalf("stalled write failed: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("write completed in %v, want the 20ms spike", d)
	}
}

// TestSlowReadTrickles: a slow read pauses and then consumes at most one
// byte — a consumer that stops draining, without breaking the stream.
func TestSlowReadTrickles(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	c := New(a, Config{Seed: 2, SlowReadEvery: 1, SlowReadPause: 20 * time.Millisecond})
	go func() { b.Write([]byte("payload")) }()
	start := time.Now()
	buf := make([]byte, 8)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatalf("slow read failed: %v", err)
	}
	if n != 1 {
		t.Fatalf("slow read consumed %d bytes, want trickle of 1", n)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("read completed in %v, want the 20ms pause", d)
	}
	if f := c.Faults(); f.SlowReads < 1 {
		t.Fatalf("slowReads = %d, want >= 1", f.SlowReads)
	}
}

// TestStallWriteDelaysFrame: a stalled write freezes before any byte hits
// the wire, then delivers the whole buffer — late, not torn.
func TestStallWriteDelaysFrame(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	c := New(a, Config{Seed: 4, StallWriteEvery: 1, StallWritePause: 20 * time.Millisecond})
	var got []byte
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		buf := make([]byte, 16)
		n, _ := b.Read(buf)
		got = buf[:n]
	}()
	start := time.Now()
	msg := []byte("held-up")
	if n, err := c.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("stalled write = (%d, %v), want full delayed delivery", n, err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("write completed in %v, want the 20ms stall", d)
	}
	<-readDone
	if string(got) != string(msg) {
		t.Fatalf("peer got %q, want %q intact", got, msg)
	}
	if f := c.Faults(); f.WriteStall != 1 {
		t.Fatalf("writeStall = %d, want 1", f.WriteStall)
	}
}

// TestDeadlinePassthrough: deadline support of the wrapped conn survives
// wrapping (the daemon's idle timeout depends on it).
func TestDeadlinePassthrough(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err == nil {
			defer conn.Close()
			time.Sleep(200 * time.Millisecond)
		}
	}()
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := New(raw, Config{})
	defer c.Close()
	if err := c.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err = c.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read = %v, want deadline timeout", err)
	}
}
