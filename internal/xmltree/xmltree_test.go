package xmltree

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"sssearch/internal/drbg"
)

const paperDoc = `<customers><client><name/></client><client><name/></client></customers>`

func mustParse(t *testing.T, s string) *Node {
	t.Helper()
	n, err := ParseString(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return n
}

func TestParsePaperExample(t *testing.T) {
	root := mustParse(t, paperDoc)
	if root.Tag != "customers" || len(root.Children) != 2 {
		t.Fatalf("bad root: %v", root)
	}
	for _, c := range root.Children {
		if c.Tag != "client" || len(c.Children) != 1 || c.Children[0].Tag != "name" {
			t.Fatalf("bad client: %v", c)
		}
	}
	if root.Count() != 5 || root.Depth() != 3 {
		t.Errorf("Count=%d Depth=%d, want 5, 3", root.Count(), root.Depth())
	}
}

func TestParseAttributesAndText(t *testing.T) {
	n := mustParse(t, `<a x="1" y='two &amp; three'>hello <b/> world</a>`)
	if v, ok := n.Attr("x"); !ok || v != "1" {
		t.Error("attr x wrong")
	}
	if v, ok := n.Attr("y"); !ok || v != "two & three" {
		t.Errorf("attr y = %q", v)
	}
	if _, ok := n.Attr("zzz"); ok {
		t.Error("phantom attribute")
	}
	if n.Text != "hello  world" {
		t.Errorf("text = %q", n.Text)
	}
	if len(n.Children) != 1 || n.Children[0].Tag != "b" {
		t.Error("child wrong")
	}
}

func TestParseEntities(t *testing.T) {
	n := mustParse(t, `<e>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</e>`)
	if n.Text != `<>&'"AB` {
		t.Errorf("entities = %q", n.Text)
	}
}

func TestParseCDATAAndComments(t *testing.T) {
	n := mustParse(t, `<e><!-- a comment --><![CDATA[<raw & data>]]></e>`)
	if n.Text != "<raw & data>" {
		t.Errorf("cdata = %q", n.Text)
	}
	n = mustParse(t, `<?xml version="1.0"?><!DOCTYPE e><e><?pi stuff?></e>`)
	if n.Tag != "e" {
		t.Error("prolog handling broken")
	}
}

func TestParseDoctypeWithSubset(t *testing.T) {
	n := mustParse(t, `<!DOCTYPE doc [ <!ELEMENT doc (#PCDATA)> ]><doc/>`)
	if n.Tag != "doc" {
		t.Error("doctype with internal subset broken")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`<a>`,
		`<a></b>`,
		`<a><b></a></b>`,
		`<a x="1" x="2"/>`,
		`<a x=1/>`,
		`<a>&bogus;</a>`,
		`<a>&#xZZ;</a>`,
		`<a/><b/>`,
		`<a><!-- -- --></a>`,
		`<a>]]></a>`,
		`<1bad/>`,
		`<a b="<"/>`,
		`text only`,
		`<a ...`,
		`<a><![CDATA[unterminated</a>`,
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("accepted malformed input %q", s)
		}
	}
	// Errors carry positions.
	_, err := ParseString("<a>\n<b></c></a>")
	var pe *ParseError
	if err == nil {
		t.Fatal("mismatch accepted")
	}
	if !asParseError(err, &pe) || pe.Line != 2 {
		t.Errorf("error position: %v", err)
	}
}

func asParseError(err error, out **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*out = pe
	}
	return ok
}

func TestSerializeRoundTrip(t *testing.T) {
	docs := []string{
		paperDoc,
		`<a x="1"><b>text</b><c/><c/></a>`,
		`<r><v>&lt;&amp;&gt;</v></r>`,
		`<solo/>`,
	}
	for _, d := range docs {
		n1 := mustParse(t, d)
		out := n1.String()
		n2 := mustParse(t, out)
		if !treesEqual(n1, n2) {
			t.Errorf("round trip changed tree:\n in: %s\nout: %s", d, out)
		}
	}
}

func TestPrettyIsReparseable(t *testing.T) {
	n := mustParse(t, paperDoc)
	pretty := n.Pretty()
	if !strings.Contains(pretty, "\n") {
		t.Error("Pretty not indented")
	}
	n2 := mustParse(t, pretty)
	if !treesEqual(n, n2) {
		t.Error("pretty output not equivalent")
	}
}

func treesEqual(a, b *Node) bool {
	if a.Tag != b.Tag || a.Text != b.Text || len(a.Children) != len(b.Children) || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !treesEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func TestKeyLookupRoundTrip(t *testing.T) {
	root := mustParse(t, paperDoc)
	var nodes []*Node
	root.Walk(func(n *Node) bool { nodes = append(nodes, n); return true })
	for _, n := range nodes {
		key := n.Key()
		got, err := root.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if got != n {
			t.Errorf("Lookup(%v) returned wrong node", key)
		}
	}
	if len(root.Key()) != 0 {
		t.Error("root key not empty")
	}
	if _, err := root.Lookup(drbg.NodeKey{7}); err == nil {
		t.Error("invalid key accepted")
	}
}

func TestWalkPrune(t *testing.T) {
	root := mustParse(t, paperDoc)
	visited := 0
	root.Walk(func(n *Node) bool {
		visited++
		return n.Tag != "client" // prune below client
	})
	if visited != 3 { // customers + 2 clients
		t.Errorf("visited %d nodes, want 3", visited)
	}
}

func TestAppendChildPanicsOnAttached(t *testing.T) {
	a, b := NewNode("a"), NewNode("b")
	a.AppendChild(b)
	defer func() {
		if recover() == nil {
			t.Error("re-attach did not panic")
		}
	}()
	NewNode("c").AppendChild(b)
}

func TestSetAttr(t *testing.T) {
	n := NewNode("x")
	n.SetAttr("k", "1")
	n.SetAttr("k", "2")
	n.SetAttr("j", "3")
	if v, _ := n.Attr("k"); v != "2" {
		t.Error("SetAttr replace failed")
	}
	if len(n.Attrs) != 2 {
		t.Error("SetAttr duplicated")
	}
}

func TestCloneDetached(t *testing.T) {
	root := mustParse(t, paperDoc)
	c := root.Children[0].Clone()
	if c.Parent() != nil {
		t.Error("clone has a parent")
	}
	if !treesEqual(c, root.Children[0]) {
		t.Error("clone differs")
	}
	c.Children[0].Tag = "mutated"
	if root.Children[0].Children[0].Tag == "mutated" {
		t.Error("clone aliases original")
	}
}

func TestStatsAndTags(t *testing.T) {
	root := mustParse(t, paperDoc)
	s := ComputeStats(root)
	if s.Elements != 5 || s.MaxDepth != 3 || s.Leaves != 2 || s.MaxFanout != 2 || s.DistinctTags != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.TagCounts["client"] != 2 || s.TagCounts["name"] != 2 || s.TagCounts["customers"] != 1 {
		t.Errorf("tag counts = %v", s.TagCounts)
	}
	tags := Tags(root)
	if len(tags) != 3 || tags[0] != "client" || tags[1] != "customers" || tags[2] != "name" {
		t.Errorf("tags = %v", tags)
	}
}

func TestPathString(t *testing.T) {
	root := mustParse(t, paperDoc)
	leaf := root.Children[1].Children[0]
	if leaf.PathString() != "/customers/client/name" {
		t.Errorf("PathString = %q", leaf.PathString())
	}
}

// randomTree builds a random element tree for cross-validation.
func randomTree(r *rand.Rand, depth int) *Node {
	tags := []string{"a", "b", "c", "d", "e", "item", "list"}
	n := NewNode(tags[r.Intn(len(tags))])
	if r.Intn(3) == 0 {
		n.SetAttr("id", fmt.Sprintf("n%d", r.Intn(1000)))
	}
	if depth > 0 {
		for i := 0; i < r.Intn(4); i++ {
			n.AppendChild(randomTree(r, depth-1))
		}
	}
	if len(n.Children) == 0 && r.Intn(2) == 0 {
		n.Text = fmt.Sprintf("text%d", r.Intn(100))
	}
	return n
}

// TestCrossValidateWithEncodingXML checks that our parser agrees with the
// stdlib parser about element structure on randomly generated documents.
func TestCrossValidateWithEncodingXML(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		doc := randomTree(r, 4)
		serialized := doc.String()
		ours := mustParse(t, serialized)
		theirs, err := parseWithStdlib(serialized)
		if err != nil {
			t.Fatalf("stdlib rejected our output: %v\n%s", err, serialized)
		}
		if !structEqual(ours, theirs) {
			t.Fatalf("structure disagreement on:\n%s", serialized)
		}
	}
}

type stdNode struct {
	tag      string
	children []*stdNode
}

func parseWithStdlib(s string) (*stdNode, error) {
	dec := xml.NewDecoder(strings.NewReader(s))
	var stack []*stdNode
	var root *stdNode
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch el := tok.(type) {
		case xml.StartElement:
			n := &stdNode{tag: el.Name.Local}
			if len(stack) == 0 {
				root = n
			} else {
				top := stack[len(stack)-1]
				top.children = append(top.children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			stack = stack[:len(stack)-1]
		}
	}
	return root, nil
}

func structEqual(a *Node, b *stdNode) bool {
	if a.Tag != b.tag || len(a.Children) != len(b.children) {
		return false
	}
	for i := range a.Children {
		if !structEqual(a.Children[i], b.children[i]) {
			return false
		}
	}
	return true
}

func TestParseReader(t *testing.T) {
	n, err := Parse(bytes.NewReader([]byte(paperDoc)))
	if err != nil {
		t.Fatal(err)
	}
	if n.Tag != "customers" {
		t.Error("Parse(io.Reader) broken")
	}
}

func BenchmarkParse(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	doc := randomTree(r, 6).String()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialize(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	doc := randomTree(r, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = doc.String()
	}
}
