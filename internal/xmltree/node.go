// Package xmltree is the XML substrate of the scheme: a document model for
// trees of elements, an independent tokenizer/parser, and a serializer.
//
// The search scheme encodes the *element structure* of a document (the
// paper, §5: "we only looked at storing and retrieving trees of tag names"),
// so the model keeps tags, attributes and text, while the encoder consumes
// only the element tree shape and tag names.
package xmltree

import (
	"fmt"
	"sort"
	"strings"

	"sssearch/internal/drbg"
)

// Attr is a single attribute.
type Attr struct {
	Name  string
	Value string
}

// Node is one XML element. Children holds child *elements* in document
// order; interleaved character data is concatenated into Text.
type Node struct {
	Tag      string
	Attrs    []Attr
	Text     string
	Children []*Node
	parent   *Node
}

// NewNode creates a detached element node.
func NewNode(tag string) *Node { return &Node{Tag: tag} }

// Parent returns the parent element, nil for a root.
func (n *Node) Parent() *Node { return n.parent }

// AppendChild attaches c as the last child of n and returns c for chaining.
// c must be detached (no parent).
func (n *Node) AppendChild(c *Node) *Node {
	if c.parent != nil {
		panic("xmltree: AppendChild of attached node")
	}
	c.parent = n
	n.Children = append(n.Children, c)
	return c
}

// AddChild creates a new element with the given tag, appends it and
// returns it.
func (n *Node) AddChild(tag string) *Node { return n.AppendChild(NewNode(tag)) }

// SetAttr appends or replaces an attribute.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Key returns the node's path of child indices from the root — the identity
// used by the share deriver and the wire protocol.
func (n *Node) Key() drbg.NodeKey {
	var rev []uint32
	for cur := n; cur.parent != nil; cur = cur.parent {
		idx := -1
		for i, sib := range cur.parent.Children {
			if sib == cur {
				idx = i
				break
			}
		}
		if idx < 0 {
			panic("xmltree: node not among its parent's children")
		}
		rev = append(rev, uint32(idx))
	}
	key := make(drbg.NodeKey, len(rev))
	for i := range rev {
		key[i] = rev[len(rev)-1-i]
	}
	return key
}

// Lookup resolves a node key (path of child indices) from n.
func (n *Node) Lookup(key drbg.NodeKey) (*Node, error) {
	cur := n
	for depth, idx := range key {
		if int(idx) >= len(cur.Children) {
			return nil, fmt.Errorf("xmltree: key %v invalid at depth %d (%d children)", key, depth, len(cur.Children))
		}
		cur = cur.Children[int(idx)]
	}
	return cur, nil
}

// Walk visits n and all descendants in document (pre-)order. Returning
// false from fn prunes the subtree below the visited node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Count returns the number of elements in the subtree rooted at n.
func (n *Node) Count() int {
	total := 0
	n.Walk(func(*Node) bool { total++; return true })
	return total
}

// Depth returns the height of the subtree (a leaf has depth 1).
func (n *Node) Depth() int {
	deepest := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > deepest {
			deepest = d
		}
	}
	return deepest + 1
}

// PathString renders the tag path from the root to n, e.g.
// "/customers/client/name".
func (n *Node) PathString() string {
	var tags []string
	for cur := n; cur != nil; cur = cur.parent {
		tags = append(tags, cur.Tag)
	}
	var sb strings.Builder
	for i := len(tags) - 1; i >= 0; i-- {
		sb.WriteByte('/')
		sb.WriteString(tags[i])
	}
	return sb.String()
}

// Clone deep-copies the subtree rooted at n; the copy is detached.
func (n *Node) Clone() *Node {
	c := &Node{Tag: n.Tag, Text: n.Text}
	if len(n.Attrs) > 0 {
		c.Attrs = append([]Attr(nil), n.Attrs...)
	}
	for _, child := range n.Children {
		c.AppendChild(child.Clone())
	}
	return c
}

// Stats summarises a tree's shape — consumed by the workload generators and
// the experiment tables.
type Stats struct {
	Elements  int
	MaxDepth  int
	Leaves    int
	MaxFanout int
	// DistinctTags is the tag vocabulary size.
	DistinctTags int
	// TagCounts maps tag → occurrence count.
	TagCounts map[string]int
}

// ComputeStats gathers Stats over the subtree rooted at n.
func ComputeStats(n *Node) Stats {
	s := Stats{TagCounts: map[string]int{}}
	var rec func(node *Node, depth int)
	rec = func(node *Node, depth int) {
		s.Elements++
		s.TagCounts[node.Tag]++
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		if len(node.Children) == 0 {
			s.Leaves++
		}
		if len(node.Children) > s.MaxFanout {
			s.MaxFanout = len(node.Children)
		}
		for _, c := range node.Children {
			rec(c, depth+1)
		}
	}
	rec(n, 1)
	s.DistinctTags = len(s.TagCounts)
	return s
}

// Tags returns the sorted distinct tag names in the subtree.
func Tags(n *Node) []string {
	set := map[string]bool{}
	n.Walk(func(m *Node) bool { set[m.Tag] = true; return true })
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
