package xmltree

import (
	"io"
	"strings"
)

// Serialize writes the subtree rooted at n as XML. indent <= 0 produces a
// compact single-line document; indent > 0 pretty-prints with that many
// spaces per level.
func Serialize(w io.Writer, n *Node, indent int) error {
	sw := &stringWriter{w: w}
	writeNode(sw, n, indent, 0)
	if indent > 0 {
		sw.WriteString("\n")
	}
	return sw.err
}

// String renders the subtree compactly.
func (n *Node) String() string {
	var sb strings.Builder
	_ = Serialize(&sb, n, 0)
	return sb.String()
}

// Pretty renders the subtree with two-space indentation.
func (n *Node) Pretty() string {
	var sb strings.Builder
	_ = Serialize(&sb, n, 2)
	return sb.String()
}

type stringWriter struct {
	w   io.Writer
	err error
}

func (s *stringWriter) WriteString(str string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, str)
}

func writeNode(w *stringWriter, n *Node, indent, depth int) {
	pad := ""
	if indent > 0 {
		pad = strings.Repeat(" ", indent*depth)
		if depth > 0 {
			w.WriteString("\n")
		}
		w.WriteString(pad)
	}
	w.WriteString("<")
	w.WriteString(n.Tag)
	for _, a := range n.Attrs {
		w.WriteString(" ")
		w.WriteString(a.Name)
		w.WriteString(`="`)
		w.WriteString(escapeAttr(a.Value))
		w.WriteString(`"`)
	}
	if len(n.Children) == 0 && n.Text == "" {
		w.WriteString("/>")
		return
	}
	w.WriteString(">")
	if n.Text != "" {
		w.WriteString(escapeText(n.Text))
	}
	for _, c := range n.Children {
		writeNode(w, c, indent, depth+1)
	}
	if indent > 0 && len(n.Children) > 0 {
		w.WriteString("\n")
		w.WriteString(pad)
	}
	w.WriteString("</")
	w.WriteString(n.Tag)
	w.WriteString(">")
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

var attrEscaper = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")

func escapeText(s string) string { return textEscaper.Replace(s) }

func escapeAttr(s string) string { return attrEscaper.Replace(s) }
