package xmltree

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ParseError reports a well-formedness violation with its input position.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xmltree: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse reads a complete XML document from r and returns its root element.
// Supported syntax: elements, attributes (single- or double-quoted),
// character data, CDATA sections, comments, processing instructions, an
// XML declaration, a DOCTYPE (without internal subset), and the five
// predefined entities plus decimal/hex character references.
func Parse(r io.Reader) (*Node, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmltree: reading input: %w", err)
	}
	return ParseBytes(data)
}

// ParseString parses a document held in a string.
func ParseString(s string) (*Node, error) { return ParseBytes([]byte(s)) }

// ParseBytes parses a document held in a byte slice.
func ParseBytes(data []byte) (*Node, error) {
	p := &parser{src: string(data), line: 1, col: 1}
	return p.document()
}

type parser struct {
	src  string
	pos  int
	line int
	col  int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) advance(n int) {
	for i := 0; i < n && p.pos < len(p.src); i++ {
		if p.src[p.pos] == '\n' {
			p.line++
			p.col = 1
		} else {
			p.col++
		}
		p.pos++
	}
}

func (p *parser) hasPrefix(s string) bool { return strings.HasPrefix(p.src[p.pos:], s) }

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.src[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.advance(1)
		default:
			return
		}
	}
}

// document parses prolog, the root element, and trailing misc.
func (p *parser) document() (*Node, error) {
	if err := p.prologAndMisc(); err != nil {
		return nil, err
	}
	if p.eof() || p.peek() != '<' {
		return nil, p.errf("expected root element")
	}
	root, err := p.element()
	if err != nil {
		return nil, err
	}
	if err := p.trailingMisc(); err != nil {
		return nil, err
	}
	return root, nil
}

// prologAndMisc consumes whitespace, the XML declaration, comments, PIs and
// a DOCTYPE before the root element.
func (p *parser) prologAndMisc() error {
	for {
		p.skipSpace()
		switch {
		case p.hasPrefix("<?"):
			if err := p.skipPI(); err != nil {
				return err
			}
		case p.hasPrefix("<!--"):
			if err := p.skipComment(); err != nil {
				return err
			}
		case p.hasPrefix("<!DOCTYPE"):
			if err := p.skipDoctype(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

func (p *parser) trailingMisc() error {
	for {
		p.skipSpace()
		switch {
		case p.eof():
			return nil
		case p.hasPrefix("<?"):
			if err := p.skipPI(); err != nil {
				return err
			}
		case p.hasPrefix("<!--"):
			if err := p.skipComment(); err != nil {
				return err
			}
		default:
			return p.errf("unexpected content after root element")
		}
	}
}

func (p *parser) skipPI() error {
	end := strings.Index(p.src[p.pos:], "?>")
	if end < 0 {
		return p.errf("unterminated processing instruction")
	}
	p.advance(end + 2)
	return nil
}

func (p *parser) skipComment() error {
	body := p.src[p.pos+4:]
	end := strings.Index(body, "-->")
	if end < 0 {
		return p.errf("unterminated comment")
	}
	if strings.Contains(body[:end], "--") {
		return p.errf("'--' not allowed inside comment")
	}
	p.advance(4 + end + 3)
	return nil
}

func (p *parser) skipDoctype() error {
	// Skip to the matching '>', tolerating an internal subset in brackets.
	depth := 0
	for i := p.pos; i < len(p.src); i++ {
		switch p.src[i] {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth == 0 {
				p.advance(i - p.pos + 1)
				return nil
			}
		}
	}
	return p.errf("unterminated DOCTYPE")
}

// element parses one element including its content and end tag.
func (p *parser) element() (*Node, error) {
	if p.peek() != '<' {
		return nil, p.errf("expected '<'")
	}
	p.advance(1)
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	node := NewNode(name)
	// Attributes.
	for {
		p.skipSpace()
		switch {
		case p.eof():
			return nil, p.errf("unterminated start tag <%s", name)
		case p.peek() == '>':
			p.advance(1)
			if err := p.content(node); err != nil {
				return nil, err
			}
			return node, nil
		case p.hasPrefix("/>"):
			p.advance(2)
			return node, nil
		default:
			aname, err := p.name()
			if err != nil {
				return nil, err
			}
			if _, dup := node.Attr(aname); dup {
				return nil, p.errf("duplicate attribute %q", aname)
			}
			p.skipSpace()
			if p.peek() != '=' {
				return nil, p.errf("expected '=' after attribute %q", aname)
			}
			p.advance(1)
			p.skipSpace()
			val, err := p.attrValue()
			if err != nil {
				return nil, err
			}
			node.Attrs = append(node.Attrs, Attr{Name: aname, Value: val})
		}
	}
}

// content parses element content up to and including the matching end tag.
func (p *parser) content(node *Node) error {
	var text strings.Builder
	for {
		switch {
		case p.eof():
			return p.errf("missing end tag </%s>", node.Tag)
		case p.hasPrefix("</"):
			p.advance(2)
			name, err := p.name()
			if err != nil {
				return err
			}
			if name != node.Tag {
				return p.errf("end tag </%s> does not match <%s>", name, node.Tag)
			}
			p.skipSpace()
			if p.peek() != '>' {
				return p.errf("malformed end tag </%s", name)
			}
			p.advance(1)
			node.Text += strings.TrimSpace(text.String())
			return nil
		case p.hasPrefix("<!--"):
			if err := p.skipComment(); err != nil {
				return err
			}
		case p.hasPrefix("<![CDATA["):
			end := strings.Index(p.src[p.pos+9:], "]]>")
			if end < 0 {
				return p.errf("unterminated CDATA section")
			}
			text.WriteString(p.src[p.pos+9 : p.pos+9+end])
			p.advance(9 + end + 3)
		case p.hasPrefix("<?"):
			if err := p.skipPI(); err != nil {
				return err
			}
		case p.peek() == '<':
			child, err := p.element()
			if err != nil {
				return err
			}
			node.AppendChild(child)
		default:
			chunk, err := p.charData()
			if err != nil {
				return err
			}
			text.WriteString(chunk)
		}
	}
}

// charData reads text up to the next '<', decoding entities.
func (p *parser) charData() (string, error) {
	var sb strings.Builder
	for !p.eof() && p.peek() != '<' {
		c := p.peek()
		if c == '&' {
			val, err := p.entity()
			if err != nil {
				return "", err
			}
			sb.WriteString(val)
			continue
		}
		if c == ']' && p.hasPrefix("]]>") {
			return "", p.errf("']]>' not allowed in character data")
		}
		sb.WriteByte(c)
		p.advance(1)
	}
	return sb.String(), nil
}

// entity decodes one entity or character reference at the cursor.
func (p *parser) entity() (string, error) {
	end := strings.IndexByte(p.src[p.pos:], ';')
	if end < 0 || end > 12 {
		return "", p.errf("unterminated entity reference")
	}
	ref := p.src[p.pos+1 : p.pos+end]
	p.advance(end + 1)
	switch ref {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "apos":
		return "'", nil
	case "quot":
		return "\"", nil
	}
	if strings.HasPrefix(ref, "#") {
		numeric := ref[1:]
		base := 10
		if strings.HasPrefix(numeric, "x") || strings.HasPrefix(numeric, "X") {
			numeric = numeric[1:]
			base = 16
		}
		cp, err := strconv.ParseUint(numeric, base, 32)
		if err != nil || !utf8.ValidRune(rune(cp)) {
			return "", p.errf("invalid character reference &%s;", ref)
		}
		return string(rune(cp)), nil
	}
	return "", p.errf("unknown entity &%s;", ref)
}

// attrValue parses a quoted attribute value with entity decoding.
func (p *parser) attrValue() (string, error) {
	quote := p.peek()
	if quote != '"' && quote != '\'' {
		return "", p.errf("attribute value must be quoted")
	}
	p.advance(1)
	var sb strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated attribute value")
		}
		c := p.peek()
		switch {
		case c == quote:
			p.advance(1)
			return sb.String(), nil
		case c == '<':
			return "", p.errf("'<' not allowed in attribute value")
		case c == '&':
			val, err := p.entity()
			if err != nil {
				return "", err
			}
			sb.WriteString(val)
		default:
			sb.WriteByte(c)
			p.advance(1)
		}
	}
}

// name parses an XML Name at the cursor.
func (p *parser) name() (string, error) {
	start := p.pos
	if p.eof() {
		return "", p.errf("expected name")
	}
	r, size := utf8.DecodeRuneInString(p.src[p.pos:])
	if !isNameStart(r) {
		return "", p.errf("invalid name start character %q", r)
	}
	p.advance(size)
	for !p.eof() {
		r, size := utf8.DecodeRuneInString(p.src[p.pos:])
		if !isNameChar(r) {
			break
		}
		p.advance(size)
	}
	return p.src[start:p.pos], nil
}

func isNameStart(r rune) bool {
	return r == '_' || r == ':' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return isNameStart(r) || r == '-' || r == '.' || unicode.IsDigit(r)
}
