package paperdata

import (
	"math/big"
	"testing"
)

// TestFixtureSelfConsistency re-derives every published figure value from
// first principles — the paper's example must be internally consistent
// with its own construction rules.
func TestFixtureSelfConsistency(t *testing.T) {
	doc := Document()
	if doc.Count() != 5 {
		t.Fatalf("document has %d nodes", doc.Count())
	}
	// Figure 2(a) from figure 1(b) mapping via the F_5 ring.
	fp := FpRing()
	name := fp.Linear(big.NewInt(TagValues["name"]))
	client := fp.Mul(fp.Linear(big.NewInt(TagValues["client"])), name)
	root := fp.Mul(fp.Linear(big.NewInt(TagValues["customers"])), fp.Mul(client, client))
	if !root.Equal(Fig2a["/"]) || !client.Equal(Fig2a["/0"]) || !name.Equal(Fig2a["/0/0"]) {
		t.Error("Fig2a fixtures inconsistent with construction")
	}
	// Figure 2(b) via the Z ring.
	z := ZRing()
	nameZ := z.Linear(big.NewInt(TagValues["name"]))
	clientZ := z.Mul(z.Linear(big.NewInt(TagValues["client"])), nameZ)
	rootZ := z.Mul(z.Linear(big.NewInt(TagValues["customers"])), z.Mul(clientZ, clientZ))
	if !rootZ.Equal(Fig2b["/"]) {
		t.Errorf("Fig2b root: %v vs %v", rootZ, Fig2b["/"])
	}
	// Figures 3/4: shares sum to the encodings.
	for path, pair := range Fig3 {
		if !fp.Equal(fp.Add(pair.Client, pair.Server), Fig2a[path]) {
			t.Errorf("Fig3 %s inconsistent", path)
		}
	}
	for path, pair := range Fig4 {
		if !z.Equal(z.Add(pair.Client, pair.Server), Fig2b[path]) {
			t.Errorf("Fig4 %s inconsistent", path)
		}
	}
	// Figures 5/6: evaluations of the shares at x=2.
	a := big.NewInt(QueryPoint)
	for path, want := range Fig5 {
		cv, err := fp.Eval(Fig3[path].Client, a)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := fp.Eval(Fig3[path].Server, a)
		if err != nil {
			t.Fatal(err)
		}
		if cv.Int64() != want.Client || sv.Int64() != want.Server {
			t.Errorf("Fig5 %s: (%v,%v) vs (%d,%d)", path, cv, sv, want.Client, want.Server)
		}
		sum := new(big.Int).Add(cv, sv)
		sum.Mod(sum, big.NewInt(5))
		if sum.Int64() != want.Sum {
			t.Errorf("Fig5 %s sum: %v vs %d", path, sum, want.Sum)
		}
	}
	for path, want := range Fig6 {
		cv, err := z.Eval(Fig4[path].Client, a)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := z.Eval(Fig4[path].Server, a)
		if err != nil {
			t.Fatal(err)
		}
		if cv.Int64() != want.Client || sv.Int64() != want.Server {
			t.Errorf("Fig6 %s: (%v,%v) vs (%d,%d)", path, cv, sv, want.Client, want.Server)
		}
	}
	// The mapping fixture pins exactly figure 1(b).
	m := Mapping(nil)
	for tag, v := range TagValues {
		got, ok := m.Value(tag)
		if !ok || got.Int64() != v {
			t.Errorf("mapping %s = %v, want %d", tag, got, v)
		}
	}
	// NodeOrder covers every fixture path exactly once.
	if len(NodeOrder) != 5 || len(NodeTags) != 5 {
		t.Error("node path fixtures incomplete")
	}
	for _, p := range NodeOrder {
		if _, ok := Fig2a[p]; !ok {
			t.Errorf("path %s missing from Fig2a", p)
		}
		if _, ok := NodeTags[p]; !ok {
			t.Errorf("path %s missing from NodeTags", p)
		}
	}
}

// TestLemma3ViolationDocumented: the paper's own example maps name→4 = p-1
// for p=5. Verify that the example still happens to work (the root
// polynomial is nonzero) — the reason the figures reproduce despite the
// violated precondition.
func TestLemma3ViolationDocumented(t *testing.T) {
	if TagValues["name"] != 4 {
		t.Skip("fixture changed")
	}
	if Fig2a["/"].IsZero() {
		t.Error("the paper's example should survive its own Lemma 3 violation")
	}
	// MaxTag of F_5 is 3 < 4: the strict API refuses this mapping.
	if FpRing().MaxTag().Int64() != 3 {
		t.Error("F_5 safe tag bound should be 3")
	}
}
