// Package paperdata holds the paper's worked example — the figure 1
// document, the figure 1(b) mapping, and the exact polynomial and
// evaluation values of figures 2–6 — as golden fixtures shared by tests,
// benchmarks and the figure-reproduction harness.
//
// Every value below appears verbatim in the paper and was re-derived
// independently while writing this package (see DESIGN.md).
package paperdata

import (
	"math/big"

	"sssearch/internal/mapping"
	"sssearch/internal/poly"
	"sssearch/internal/ring"
	"sssearch/internal/xmltree"
)

// DocumentXML is the figure 1(a) example: a customers list with two
// clients, each carrying a name.
const DocumentXML = `<customers><client><name/></client><client><name/></client></customers>`

// Document parses the figure 1(a) example tree.
func Document() *xmltree.Node {
	n, err := xmltree.ParseString(DocumentXML)
	if err != nil {
		panic("paperdata: " + err.Error())
	}
	return n
}

// TagValues is the figure 1(b) mapping: customers→3, client→2, name→4.
var TagValues = map[string]int64{
	"customers": 3,
	"client":    2,
	"name":      4,
}

// Mapping builds a mapping.Map pinned to figure 1(b). maxTag bounds the
// domain (pass nil for the Z-ring default).
func Mapping(maxTag *big.Int) *mapping.Map {
	m, err := mapping.New(maxTag, []byte("paperdata"))
	if err != nil {
		panic("paperdata: " + err.Error())
	}
	for tag, v := range TagValues {
		if err := m.SetExplicit(tag, big.NewInt(v)); err != nil {
			panic("paperdata: " + err.Error())
		}
	}
	return m
}

// FpRing returns F_5[x]/(x^4−1), the ring of figures 2(a), 3 and 5.
// NOTE: with p=5 the usable tag domain is [1, 3], yet figure 1(b) maps
// name→4 = p−1 — the paper's own example violates its Lemma 3 precondition!
// The example still works because no query ever evaluates at x=4 and the
// two name leaves never multiply into a x−(p−1) zero-divisor pair that
// cancels, but package mapping correctly refuses to assign 4 with p=5.
// The fixtures therefore pin values explicitly (see MappingFp).
func FpRing() *ring.FpCyclotomic {
	return ring.MustFp(5)
}

// MappingFp is the figure 1(b) mapping with the F_5 domain ceiling lifted
// to 4 so the paper's exact values can be reproduced (see FpRing note).
func MappingFp() *mapping.Map {
	return Mapping(big.NewInt(4))
}

// ZRing returns Z[x]/(x^2+1), the ring of figures 2(b), 4 and 6.
func ZRing() *ring.IntQuotient {
	return ring.MustIntQuotient(1, 0, 1)
}

// NodeOrder lists the five node paths in the order the figures enumerate
// them: first client's name, first client, second client's name, second
// client, root.
var NodeOrder = []string{"/0/0", "/0", "/1/0", "/1", "/"}

// NodeTags maps node path → tag name.
var NodeTags = map[string]string{
	"/":    "customers",
	"/0":   "client",
	"/0/0": "name",
	"/1":   "client",
	"/1/0": "name",
}

// Fig2a is the reduced tree of figure 2(a) in F_5[x]/(x^4−1), by node path.
var Fig2a = map[string]poly.Poly{
	"/":    poly.FromInt64(3, 3, 3, 3), // 3x^3+3x^2+3x+3
	"/0":   poly.FromInt64(3, 4, 1),    // x^2+4x+3
	"/0/0": poly.FromInt64(1, 1),       // x+1
	"/1":   poly.FromInt64(3, 4, 1),
	"/1/0": poly.FromInt64(1, 1),
}

// Fig2b is the reduced tree of figure 2(b) in Z[x]/(x^2+1), by node path.
var Fig2b = map[string]poly.Poly{
	"/":    poly.FromInt64(45, 265), // 265x+45
	"/0":   poly.FromInt64(7, -6),   // -6x+7
	"/0/0": poly.FromInt64(-4, 1),   // x-4
	"/1":   poly.FromInt64(7, -6),
	"/1/0": poly.FromInt64(-4, 1),
}

// SharePair is one node's client/server share pair.
type SharePair struct {
	Client poly.Poly
	Server poly.Poly
}

// Fig3 is the figure 3 sharing in F_5[x]/(x^4−1): client + server ≡ Fig2a.
var Fig3 = map[string]SharePair{
	"/0/0": {Client: poly.FromInt64(2, 2), Server: poly.FromInt64(4, 4)},
	"/0":   {Client: poly.FromInt64(4, 3, 1, 3), Server: poly.FromInt64(4, 1, 0, 2)},
	"/1/0": {Client: poly.FromInt64(0, 2, 2, 4), Server: poly.FromInt64(1, 4, 3, 1)},
	"/1":   {Client: poly.FromInt64(3, 3, 4), Server: poly.FromInt64(0, 1, 2)},
	"/":    {Client: poly.FromInt64(2, 2, 3, 2), Server: poly.FromInt64(1, 1, 0, 1)},
}

// Fig4 is the figure 4 sharing in Z[x]/(x^2+1): client + server = Fig2b.
var Fig4 = map[string]SharePair{
	"/0/0": {Client: poly.FromInt64(2, -8), Server: poly.FromInt64(-6, 9)},
	"/0":   {Client: poly.FromInt64(3, 3), Server: poly.FromInt64(4, -9)},
	"/1/0": {Client: poly.FromInt64(-1, 12), Server: poly.FromInt64(-3, -11)},
	"/1":   {Client: poly.FromInt64(8, -2), Server: poly.FromInt64(-1, -4)},
	"/":    {Client: poly.FromInt64(-12, 9), Server: poly.FromInt64(57, 256)},
}

// EvalTriple is one node's query-time evaluation: client value, server
// value, and their sum, all modulo the evaluation modulus.
type EvalTriple struct {
	Client, Server, Sum int64
}

// QueryPoint is the paper's running query //client translated through the
// mapping: x = map(client) = 2.
const QueryPoint = 2

// Fig5 is figure 5: evaluation of the figure 3 shares at x=2 over F_5.
// Sum == 0 marks a live branch (node or descendant named client).
var Fig5 = map[string]EvalTriple{
	"/0/0": {Client: 1, Server: 2, Sum: 3},
	"/0":   {Client: 3, Server: 2, Sum: 0},
	"/1/0": {Client: 4, Server: 4, Sum: 3},
	"/1":   {Client: 0, Server: 0, Sum: 0},
	"/":    {Client: 4, Server: 1, Sum: 0},
}

// Fig6 is figure 6: evaluation of the figure 4 shares at x=2, computed
// modulo r(2) = 2^2+1 = 5.
var Fig6 = map[string]EvalTriple{
	"/0/0": {Client: 1, Server: 2, Sum: 3},
	"/0":   {Client: 4, Server: 1, Sum: 0},
	"/1/0": {Client: 3, Server: 0, Sum: 3},
	"/1":   {Client: 4, Server: 1, Sum: 0},
	"/":    {Client: 1, Server: 4, Sum: 0},
}
