package wire

import "sync"

// Buffer reuse on the wire path. Frame payloads are short-lived: a
// request payload is dead once the daemon has decoded and dispatched it,
// a response payload once the client has decoded it, and an encode
// buffer once its frame has been written. All payload decoders copy
// their bytes out (big.Int.SetBytes, string conversion, fresh key
// slices), so a fully decoded payload buffer can be recycled safely.
//
// GetBuf/GetPayload hand out pooled buffers; PutBuf returns one. Putting
// a buffer back is always optional — an un-Put buffer is simply
// collected — and the pool refuses buffers above maxPooledBuf so a
// single jumbo frame cannot pin megabytes.

// maxPooledBuf bounds the capacity of recycled buffers (256 KiB): big
// enough for every routine Eval/Fetch frame, small enough that the pool
// stays a few MiB even under heavy pipelining.
const maxPooledBuf = 256 << 10

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// GetBuf returns an empty pooled buffer for append-style encoding.
func GetBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// GetPayload returns a pooled buffer of length n for frame payload
// reads. Oversized requests fall through to a plain allocation.
func GetPayload(n int) []byte {
	if n > maxPooledBuf {
		return make([]byte, n)
	}
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		// Too small for this frame: recycle it for a future small frame
		// and let the allocator size this one (it enters the pool on Put).
		bufPool.Put(bp)
		return make([]byte, n)
	}
	return (*bp)[:n]
}

// PutBuf returns a buffer to the pool. The caller must not touch b
// afterwards. Zero-capacity and jumbo buffers are dropped.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
