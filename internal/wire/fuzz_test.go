package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// The decoders sit on the trust boundary: arbitrary network bytes must
// never panic them, only produce errors (or valid values). These tests
// hammer every decoder with random and mutated inputs.

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestDecodersNeverPanicOnRandomInput(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		data := randBytes(r, r.Intn(200))
		// Each decoder either errors or returns; panics fail the test run.
		DecodeKey(data)
		DecodeKeys(data)
		DecodeBig(data)
		DecodeBigs(data)
		DecodeString(data)
		DecodeHello(data)
		DecodeHelloAck(data)
		DecodeEvalReq(data)
		DecodeEvalResp(data)
		DecodeFetchReq(data)
		DecodeFetchResp(data)
		DecodePruneReq(data)
		DecodeAck(data)
		DecodeError(data)
	}
}

func TestReadFrameNeverPanicsOnRandomStream(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		stream := randBytes(r, r.Intn(100))
		ReadFrame(bytes.NewReader(stream))
	}
}

// TestMutatedFramesRejected: take a valid frame, flip random bits, and
// require the reader to reject (or the payload to be caught downstream —
// the CRC makes silent corruption astronomically unlikely).
func TestMutatedFramesRejected(t *testing.T) {
	payload := EncodeEvalReq(EvalReq{ID: 1, Keys: nil, Points: nil})
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, Frame{Type: MsgEval, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	r := rand.New(rand.NewSource(3))
	rejected := 0
	for i := 0; i < 500; i++ {
		mutated := append([]byte(nil), valid...)
		pos := r.Intn(len(mutated))
		mutated[pos] ^= byte(1 << r.Intn(8))
		if _, _, err := ReadFrame(bytes.NewReader(mutated)); err != nil {
			rejected++
		}
	}
	// Every single-bit flip hits magic, type, length, payload or CRC; all
	// are covered by checks, so effectively all mutations must be caught.
	if rejected < 490 {
		t.Errorf("only %d/500 mutations rejected", rejected)
	}
}

// TestDecodeEncodedRandomMessages: round-trip stability under random but
// WELL-FORMED messages (complements the garbage tests above).
func TestDecodeEncodedRandomMessages(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		req := EvalReq{ID: r.Uint64()}
		for k := 0; k < r.Intn(5); k++ {
			key := make([]uint32, r.Intn(4))
			for j := range key {
				key[j] = r.Uint32() % 1000
			}
			req.Keys = append(req.Keys, key)
		}
		dec, err := DecodeEvalReq(EncodeEvalReq(req))
		if err != nil {
			t.Fatalf("well-formed message rejected: %v", err)
		}
		if dec.ID != req.ID || len(dec.Keys) != len(req.Keys) {
			t.Fatal("round trip changed message")
		}
	}
}
