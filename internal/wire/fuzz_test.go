package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"sssearch/internal/drbg"
)

// The decoders sit on the trust boundary: arbitrary network bytes must
// never panic them, only produce errors (or valid values). These tests
// hammer every decoder with random and mutated inputs.

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestDecodersNeverPanicOnRandomInput(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		data := randBytes(r, r.Intn(200))
		// Each decoder either errors or returns; panics fail the test run.
		DecodeKey(data)
		DecodeKeys(data)
		DecodeBig(data)
		DecodeBigs(data)
		DecodeString(data)
		DecodeHello(data)
		DecodeHelloAck(data)
		DecodeEvalReq(data)
		DecodeEvalResp(data)
		DecodeFetchReq(data)
		DecodeFetchResp(data)
		DecodePruneReq(data)
		DecodeAck(data)
		DecodeError(data)
	}
}

func TestReadFrameNeverPanicsOnRandomStream(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		stream := randBytes(r, r.Intn(100))
		ReadFrame(bytes.NewReader(stream))
	}
}

// TestMutatedFramesRejected: take a valid frame, flip random bits, and
// require the reader to reject (or the payload to be caught downstream —
// the CRC makes silent corruption astronomically unlikely).
func TestMutatedFramesRejected(t *testing.T) {
	payload := EncodeEvalReq(EvalReq{ID: 1, Keys: nil, Points: nil})
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, Frame{Type: MsgEval, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	r := rand.New(rand.NewSource(3))
	rejected := 0
	for i := 0; i < 500; i++ {
		mutated := append([]byte(nil), valid...)
		pos := r.Intn(len(mutated))
		mutated[pos] ^= byte(1 << r.Intn(8))
		if _, _, err := ReadFrame(bytes.NewReader(mutated)); err != nil {
			rejected++
		}
	}
	// Every single-bit flip hits magic, type, length, payload or CRC; all
	// are covered by checks, so effectively all mutations must be caught.
	if rejected < 490 {
		t.Errorf("only %d/500 mutations rejected", rejected)
	}
}

// --- framed (request-ID) frame seeds --------------------------------------

// TestReadAnyNeverPanicsOnRandomStream: the dual-format reader sits on the
// same trust boundary as ReadFrame and must reject arbitrary bytes
// gracefully in both magics.
func TestReadAnyNeverPanicsOnRandomStream(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		stream := randBytes(r, r.Intn(120))
		ReadAny(bytes.NewReader(stream))
	}
	// Random payloads behind each valid magic.
	for i := 0; i < 2000; i++ {
		var stream []byte
		if i%2 == 0 {
			stream = append(stream, 0x53, 0x53) // legacy magic
		} else {
			stream = append(stream, 0x53, 0x50) // framed magic
		}
		stream = append(stream, randBytes(r, r.Intn(60))...)
		ReadAny(bytes.NewReader(stream))
	}
}

// TestFramedTruncationRejected: every strict prefix of a valid framed
// frame must fail cleanly, never hang or panic.
func TestFramedTruncationRejected(t *testing.T) {
	payload := EncodeEvalReq(EvalReq{ID: 42, Keys: []drbg.NodeKey{{1, 2}, {3}}})
	var buf bytes.Buffer
	if _, err := WriteFramed(&buf, FramedFrame{Type: MsgEval, ReqID: 42, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for cut := 0; cut < len(valid); cut++ {
		if _, _, err := ReadAny(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(valid))
		}
	}
	// The untruncated frame decodes and round-trips.
	f, n, err := ReadAny(bytes.NewReader(valid))
	if err != nil || n != len(valid) {
		t.Fatalf("valid frame rejected: %v (consumed %d of %d)", err, n, len(valid))
	}
	if !f.Framed || f.ReqID != 42 || f.Type != MsgEval {
		t.Fatalf("framed header mangled: %+v", f)
	}
	dec, err := DecodeEvalReq(f.Payload)
	if err != nil || dec.ID != 42 || len(dec.Keys) != 2 {
		t.Fatalf("framed payload mangled: %+v, %v", dec, err)
	}
}

// TestFramedMutationsRejected: single-bit flips anywhere in a framed
// frame must be caught (magic, type, reqid, length or CRC checks).
func TestFramedMutationsRejected(t *testing.T) {
	payload := EncodeEvalReq(EvalReq{ID: 7, Keys: nil, Points: nil})
	var buf bytes.Buffer
	if _, err := WriteFramed(&buf, FramedFrame{Type: MsgEval, ReqID: 7, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	r := rand.New(rand.NewSource(6))
	rejected := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		mutated := append([]byte(nil), valid...)
		pos := r.Intn(len(mutated))
		mutated[pos] ^= byte(1 << r.Intn(8))
		f, _, err := ReadAny(bytes.NewReader(mutated))
		if err != nil {
			rejected++
			continue
		}
		// A flip the framing cannot see must at least keep the request ID
		// honest or fail payload decode downstream.
		if _, derr := DecodeEvalReq(f.Payload); derr != nil {
			rejected++
		}
	}
	if rejected < trials-10 {
		t.Errorf("only %d/%d mutations rejected", rejected, trials)
	}
}

// TestInterleavedFramedStream: a stream carrying several framed frames
// back to back — mixed with legacy frames — must parse each frame intact
// and in order, exactly consuming the stream.
func TestInterleavedFramedStream(t *testing.T) {
	var buf bytes.Buffer
	type sent struct {
		framed bool
		typ    MsgType
		reqID  uint64
	}
	var want []sent
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		payload := EncodeEvalReq(EvalReq{ID: uint64(i), Keys: []drbg.NodeKey{{uint32(i)}}})
		if i%3 == 2 {
			if _, err := WriteFrame(&buf, Frame{Type: MsgEval, Payload: payload}); err != nil {
				t.Fatal(err)
			}
			want = append(want, sent{false, MsgEval, 0})
			continue
		}
		id := r.Uint64()
		if _, err := WriteFramed(&buf, FramedFrame{Type: MsgEval, ReqID: id, Payload: payload}); err != nil {
			t.Fatal(err)
		}
		want = append(want, sent{true, MsgEval, id})
	}
	rd := bytes.NewReader(buf.Bytes())
	for i, w := range want {
		f, _, err := ReadAny(rd)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Framed != w.framed || f.Type != w.typ || f.ReqID != w.reqID {
			t.Fatalf("frame %d: got %+v, want %+v", i, f, w)
		}
		dec, err := DecodeEvalReq(f.Payload)
		if err != nil || dec.ID != uint64(i) {
			t.Fatalf("frame %d payload: %+v, %v", i, dec, err)
		}
	}
	if rd.Len() != 0 {
		t.Fatalf("%d trailing bytes after the last frame", rd.Len())
	}
}

// TestDecodeEncodedRandomMessages: round-trip stability under random but
// WELL-FORMED messages (complements the garbage tests above).

// TestDecodeEncodedRandomMessages: round-trip stability under random but
// WELL-FORMED messages (complements the garbage tests above).
func TestDecodeEncodedRandomMessages(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		req := EvalReq{ID: r.Uint64()}
		for k := 0; k < r.Intn(5); k++ {
			key := make([]uint32, r.Intn(4))
			for j := range key {
				key[j] = r.Uint32() % 1000
			}
			req.Keys = append(req.Keys, key)
		}
		dec, err := DecodeEvalReq(EncodeEvalReq(req))
		if err != nil {
			t.Fatalf("well-formed message rejected: %v", err)
		}
		if dec.ID != req.ID || len(dec.Keys) != len(req.Keys) {
			t.Fatal("round trip changed message")
		}
	}
}
