// Package wire defines the binary protocol between the query client and
// the share server: length-prefixed, CRC-protected frames carrying
// evaluation requests, scalar answers, polynomial fetches and prune
// notices.
//
// Frame layout (big-endian):
//
//	magic   uint16  0x5353 ("SS")
//	type    uint8
//	length  uint32  payload byte count
//	payload length bytes
//	crc32   uint32  IEEE CRC over type byte + payload
//
// Protocol version 2 adds a pipelined variant that carries the request ID
// in the frame header, so a connection can have many requests in flight
// and responses can complete out of order without the transport decoding
// payloads to route them:
//
//	magic   uint16  0x5350 ("SP")
//	type    uint8
//	reqid   uint64  request correlation ID (0 in the handshake)
//	length  uint32  payload byte count
//	payload length bytes
//	crc32   uint32  IEEE CRC over type byte + reqid + payload
//
// The two formats are distinguished by magic; ReadAny decodes either, so
// a v2 endpoint remains backward compatible with the strict
// request/response v1 framing.
//
// All payload integers are unsigned LEB128 varints unless stated otherwise.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/big"

	"sssearch/internal/drbg"
)

// Magic identifies legacy (strict request/response) protocol frames.
const Magic uint16 = 0x5353

// FramedMagic identifies pipelined frames carrying a request ID in the
// header (protocol version 2).
const FramedMagic uint16 = 0x5350

// Version is the original strict request/response protocol version.
const Version uint32 = 1

// Version2 is the pipelined protocol version: after the handshake both
// sides speak framed (request-ID) frames and may interleave requests.
const Version2 uint32 = 2

// Version3 is the overload-protection protocol version. The framing is
// unchanged from version 2; the payloads grow optional trailing fields —
// a per-request deadline budget on Eval/Fetch/Prune requests and a typed
// error code plus retry-after hint on ErrorMsg — all encoded as trailing
// varints, so a v3 decoder accepts v2 payloads unchanged and a v3 peer
// simply omits the extensions when the negotiated session is older.
const Version3 uint32 = 3

// MaxVersion is the highest protocol version this build speaks.
const MaxVersion = Version3

// MaxFrameSize bounds a single frame's payload (16 MiB).
const MaxFrameSize = 16 << 20

// MsgType enumerates frame types.
type MsgType uint8

const (
	// MsgHello opens a session (client → server): varint version.
	MsgHello MsgType = 1
	// MsgHelloAck acknowledges (server → client): varint version,
	// ring params blob.
	MsgHelloAck MsgType = 2
	// MsgEval requests evaluations: varint id, keys, big-int points.
	MsgEval MsgType = 3
	// MsgEvalResp answers MsgEval: varint id, node answers.
	MsgEvalResp MsgType = 4
	// MsgFetch requests share polynomials: varint id, keys.
	MsgFetch MsgType = 5
	// MsgFetchResp answers MsgFetch: varint id, poly answers.
	MsgFetchResp MsgType = 6
	// MsgPrune notifies dead subtrees: varint id, keys.
	MsgPrune MsgType = 7
	// MsgAck acknowledges MsgPrune: varint id.
	MsgAck MsgType = 8
	// MsgError reports a server-side failure: varint id, string message.
	MsgError MsgType = 9
	// MsgBye closes the session gracefully.
	MsgBye MsgType = 10
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "Hello"
	case MsgHelloAck:
		return "HelloAck"
	case MsgEval:
		return "Eval"
	case MsgEvalResp:
		return "EvalResp"
	case MsgFetch:
		return "Fetch"
	case MsgFetchResp:
		return "FetchResp"
	case MsgPrune:
		return "Prune"
	case MsgAck:
		return "Ack"
	case MsgError:
		return "Error"
	case MsgBye:
		return "Bye"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Frame is one protocol message.
type Frame struct {
	Type    MsgType
	Payload []byte
}

var (
	// ErrBadMagic signals a stream that is not speaking this protocol.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrFrameTooLarge signals an oversized frame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrChecksum signals payload corruption.
	ErrChecksum = errors.New("wire: checksum mismatch")
)

// writeChunks writes header, payload and CRC tail. Frames that fit a
// pooled buffer are assembled and written in ONE w.Write call — one
// syscall and no retained header allocation; oversized frames fall back
// to chunked writes.
func writeChunks(w io.Writer, header []byte, payload []byte, tail [4]byte) (int, error) {
	if len(header)+len(payload)+4 <= maxPooledBuf {
		buf := GetBuf()
		buf = append(buf, header...)
		buf = append(buf, payload...)
		buf = append(buf, tail[:]...)
		n, err := w.Write(buf)
		PutBuf(buf)
		if err != nil {
			return n, fmt.Errorf("wire: writing frame: %w", err)
		}
		return n, nil
	}
	total := 0
	for _, chunk := range [][]byte{header, payload, tail[:]} {
		n, err := w.Write(chunk)
		total += n
		if err != nil {
			return total, fmt.Errorf("wire: writing frame: %w", err)
		}
	}
	return total, nil
}

// WriteFrame writes one frame to w. It returns the number of bytes written.
func WriteFrame(w io.Writer, f Frame) (int, error) {
	if len(f.Payload) > MaxFrameSize {
		return 0, ErrFrameTooLarge
	}
	var header [7]byte
	binary.BigEndian.PutUint16(header[0:2], Magic)
	header[2] = byte(f.Type)
	binary.BigEndian.PutUint32(header[3:7], uint32(len(f.Payload)))
	crc := crc32.NewIEEE()
	crc.Write(header[2:3])
	crc.Write(f.Payload)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc.Sum32())
	return writeChunks(w, header[:], f.Payload, tail)
}

// ReadFrame reads one legacy frame from r. It returns the frame and the
// number of bytes consumed.
func ReadFrame(r io.Reader) (Frame, int, error) {
	var magic [2]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return Frame{}, 0, err
	}
	if binary.BigEndian.Uint16(magic[:]) != Magic {
		return Frame{}, 7, ErrBadMagic
	}
	f, n, err := readLegacyBody(r)
	return f, 2 + n, err
}

// readLegacyBody reads a legacy frame after its magic word, returning the
// bytes consumed past the magic.
func readLegacyBody(r io.Reader) (Frame, int, error) {
	rest := make([]byte, 5) // type + length
	if _, err := io.ReadFull(r, rest); err != nil {
		return Frame{}, 0, fmt.Errorf("wire: reading header: %w", err)
	}
	length := binary.BigEndian.Uint32(rest[1:5])
	if length > MaxFrameSize {
		return Frame{}, 5, ErrFrameTooLarge
	}
	// Pooled payload: callers that fully decode it may hand it back via
	// PutBuf; callers that retain it (handshake params) simply never do.
	payload := GetPayload(int(length))
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, 5, fmt.Errorf("wire: reading payload: %w", err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return Frame{}, 5 + int(length), fmt.Errorf("wire: reading checksum: %w", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(rest[0:1])
	crc.Write(payload)
	if crc.Sum32() != binary.BigEndian.Uint32(tail[:]) {
		return Frame{}, 9 + int(length), ErrChecksum
	}
	return Frame{Type: MsgType(rest[0]), Payload: payload}, 9 + int(length), nil
}

// FramedFrame is one pipelined (version 2) protocol message: a frame plus
// the request ID it belongs to, carried in the header so responses can be
// routed without decoding payloads.
type FramedFrame struct {
	Type    MsgType
	ReqID   uint64
	Payload []byte
}

// framedHeaderLen is magic(2) + type(1) + reqid(8) + length(4).
const framedHeaderLen = 15

// WriteFramed writes one pipelined frame to w. It returns the number of
// bytes written.
func WriteFramed(w io.Writer, f FramedFrame) (int, error) {
	if len(f.Payload) > MaxFrameSize {
		return 0, ErrFrameTooLarge
	}
	var header [framedHeaderLen]byte
	binary.BigEndian.PutUint16(header[0:2], FramedMagic)
	header[2] = byte(f.Type)
	binary.BigEndian.PutUint64(header[3:11], f.ReqID)
	binary.BigEndian.PutUint32(header[11:15], uint32(len(f.Payload)))
	crc := crc32.NewIEEE()
	crc.Write(header[2:11])
	crc.Write(f.Payload)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc.Sum32())
	return writeChunks(w, header[:], f.Payload, tail)
}

// AnyFrame is the result of ReadAny: a message in either framing. Framed
// reports which format was on the wire; ReqID is zero for legacy frames
// (their correlation ID, if any, lives in the payload).
type AnyFrame struct {
	Type    MsgType
	ReqID   uint64
	Framed  bool
	Payload []byte
}

// ReadAny reads one frame in either the legacy or the pipelined format,
// dispatching on the magic. It returns the frame and the number of bytes
// consumed.
func ReadAny(r io.Reader) (AnyFrame, int, error) {
	var magic [2]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return AnyFrame{}, 0, err
	}
	switch binary.BigEndian.Uint16(magic[:]) {
	case Magic:
		f, n, err := readLegacyBody(r)
		return AnyFrame{Type: f.Type, Payload: f.Payload}, 2 + n, err
	case FramedMagic:
		rest := make([]byte, framedHeaderLen-2) // type + reqid + length
		if _, err := io.ReadFull(r, rest); err != nil {
			return AnyFrame{}, 2, fmt.Errorf("wire: reading framed header: %w", err)
		}
		length := binary.BigEndian.Uint32(rest[9:13])
		if length > MaxFrameSize {
			return AnyFrame{}, framedHeaderLen, ErrFrameTooLarge
		}
		payload := GetPayload(int(length))
		if _, err := io.ReadFull(r, payload); err != nil {
			return AnyFrame{}, framedHeaderLen, fmt.Errorf("wire: reading payload: %w", err)
		}
		var tail [4]byte
		if _, err := io.ReadFull(r, tail[:]); err != nil {
			return AnyFrame{}, framedHeaderLen + int(length), fmt.Errorf("wire: reading checksum: %w", err)
		}
		crc := crc32.NewIEEE()
		crc.Write(rest[0:9])
		crc.Write(payload)
		if crc.Sum32() != binary.BigEndian.Uint32(tail[:]) {
			return AnyFrame{}, framedHeaderLen + 4 + int(length), ErrChecksum
		}
		return AnyFrame{
			Type:    MsgType(rest[0]),
			ReqID:   binary.BigEndian.Uint64(rest[1:9]),
			Framed:  true,
			Payload: payload,
		}, framedHeaderLen + 4 + int(length), nil
	default:
		return AnyFrame{}, 2, ErrBadMagic
	}
}

// --- payload codecs -------------------------------------------------------

// AppendKey encodes a node key.
func AppendKey(dst []byte, k drbg.NodeKey) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(k)))
	for _, c := range k {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	return dst
}

// maxKeyLen bounds node key depth on decode.
const maxKeyLen = 1 << 16

// DecodeKey decodes a node key from the front of data.
func DecodeKey(data []byte) (drbg.NodeKey, []byte, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 || n > maxKeyLen {
		return nil, nil, errors.New("wire: bad key length")
	}
	data = data[k:]
	key := make(drbg.NodeKey, n)
	for i := uint64(0); i < n; i++ {
		v, k := binary.Uvarint(data)
		if k <= 0 || v > 1<<32-1 {
			return nil, nil, errors.New("wire: bad key component")
		}
		key[i] = uint32(v)
		data = data[k:]
	}
	return key, data, nil
}

// AppendKeys encodes a key list.
func AppendKeys(dst []byte, keys []drbg.NodeKey) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = AppendKey(dst, k)
	}
	return dst
}

// maxListLen bounds list lengths on decode.
const maxListLen = 1 << 22

// DecodeKeys decodes a key list.
func DecodeKeys(data []byte) ([]drbg.NodeKey, []byte, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 || n > maxListLen {
		return nil, nil, errors.New("wire: bad key count")
	}
	data = data[k:]
	// Every key needs at least one byte; reject counts the data cannot
	// possibly back before allocating (DoS hardening).
	if n > uint64(len(data)) {
		return nil, nil, errors.New("wire: key count exceeds available bytes")
	}
	keys := make([]drbg.NodeKey, n)
	for i := uint64(0); i < n; i++ {
		var err error
		keys[i], data, err = DecodeKey(data)
		if err != nil {
			return nil, nil, err
		}
	}
	return keys, data, nil
}

// AppendBig encodes a signed big.Int (sign byte + magnitude).
func AppendBig(dst []byte, v *big.Int) []byte {
	switch v.Sign() {
	case 0:
		return append(dst, 0)
	case 1:
		dst = append(dst, 1)
	default:
		dst = append(dst, 2)
	}
	b := v.Bytes()
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// maxBigBytes bounds a big.Int magnitude on decode (1 MiB).
const maxBigBytes = 1 << 20

// DecodeBig decodes a signed big.Int.
func DecodeBig(data []byte) (*big.Int, []byte, error) {
	if len(data) == 0 {
		return nil, nil, errors.New("wire: empty big.Int")
	}
	sign := data[0]
	data = data[1:]
	if sign == 0 {
		return new(big.Int), data, nil
	}
	if sign > 2 {
		return nil, nil, fmt.Errorf("wire: bad sign byte %d", sign)
	}
	l, k := binary.Uvarint(data)
	if k <= 0 || l > maxBigBytes {
		return nil, nil, errors.New("wire: bad big.Int length")
	}
	data = data[k:]
	if uint64(len(data)) < l {
		return nil, nil, errors.New("wire: truncated big.Int")
	}
	v := new(big.Int).SetBytes(data[:l])
	if sign == 2 {
		v.Neg(v)
	}
	return v, data[l:], nil
}

// AppendBigs encodes a big.Int list.
func AppendBigs(dst []byte, vs []*big.Int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = AppendBig(dst, v)
	}
	return dst
}

// DecodeBigs decodes a big.Int list.
func DecodeBigs(data []byte) ([]*big.Int, []byte, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 || n > maxListLen {
		return nil, nil, errors.New("wire: bad big.Int count")
	}
	data = data[k:]
	if n > uint64(len(data)) {
		return nil, nil, errors.New("wire: big.Int count exceeds available bytes")
	}
	out := make([]*big.Int, n)
	for i := uint64(0); i < n; i++ {
		var err error
		out[i], data, err = DecodeBig(data)
		if err != nil {
			return nil, nil, err
		}
	}
	return out, data, nil
}

// AppendString encodes a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// maxStringLen bounds strings on decode (64 KiB).
const maxStringLen = 1 << 16

// DecodeString decodes a length-prefixed string.
func DecodeString(data []byte) (string, []byte, error) {
	l, k := binary.Uvarint(data)
	if k <= 0 || l > maxStringLen {
		return "", nil, errors.New("wire: bad string length")
	}
	data = data[k:]
	if uint64(len(data)) < l {
		return "", nil, errors.New("wire: truncated string")
	}
	return string(data[:l]), data[l:], nil
}
