package wire

import (
	"bytes"
	"math/big"
	"testing"
	"time"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/poly"
	"sssearch/internal/ring"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Type: MsgHello, Payload: []byte{1, 2, 3}},
		{Type: MsgBye, Payload: nil},
		{Type: MsgEval, Payload: bytes.Repeat([]byte{0xAB}, 10000)},
	}
	for _, f := range frames {
		wn, err := WriteFrame(&buf, f)
		if err != nil {
			t.Fatal(err)
		}
		got, rn, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if wn != rn {
			t.Errorf("wrote %d read %d bytes", wn, rn)
		}
		if got.Type != f.Type || !bytes.Equal(got.Payload, f.Payload) {
			t.Errorf("frame changed in transit")
		}
	}
}

func TestFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, Frame{Type: MsgEval, Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a payload byte → checksum failure.
	bad := append([]byte(nil), raw...)
	bad[8] ^= 0xFF
	if _, _, err := ReadFrame(bytes.NewReader(bad)); err != ErrChecksum {
		t.Errorf("corrupted payload: err = %v, want ErrChecksum", err)
	}
	// Bad magic.
	bad2 := append([]byte(nil), raw...)
	bad2[0] = 0x00
	if _, _, err := ReadFrame(bytes.NewReader(bad2)); err != ErrBadMagic {
		t.Errorf("bad magic: err = %v", err)
	}
	// Truncated stream.
	if _, _, err := ReadFrame(bytes.NewReader(raw[:5])); err == nil {
		t.Error("truncated header accepted")
	}
	if _, _, err := ReadFrame(bytes.NewReader(raw[:9])); err == nil {
		t.Error("truncated payload accepted")
	}
	// Oversized frame declared in header.
	huge := append([]byte(nil), raw[:7]...)
	huge[3], huge[4], huge[5], huge[6] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := ReadFrame(bytes.NewReader(huge)); err != ErrFrameTooLarge {
		t.Errorf("oversized frame: err = %v", err)
	}
	if _, err := WriteFrame(&buf, Frame{Payload: make([]byte, MaxFrameSize+1)}); err != ErrFrameTooLarge {
		t.Errorf("oversized write: err = %v", err)
	}
}

func TestKeyCodec(t *testing.T) {
	keys := []drbg.NodeKey{{}, {0}, {1, 2, 3}, {4294967295}}
	for _, k := range keys {
		data := AppendKey(nil, k)
		got, rest, err := DecodeKey(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 || got.String() != k.String() {
			t.Errorf("key %v round trip failed: %v", k, got)
		}
	}
	list := AppendKeys(nil, keys)
	got, rest, err := DecodeKeys(list)
	if err != nil || len(rest) != 0 || len(got) != len(keys) {
		t.Fatalf("keys list: %v %v %v", got, rest, err)
	}
	if _, _, err := DecodeKey([]byte{}); err == nil {
		t.Error("empty key input accepted")
	}
	if _, _, err := DecodeKeys([]byte{0x02, 0x01}); err == nil {
		t.Error("truncated key list accepted")
	}
}

func TestBigCodec(t *testing.T) {
	vals := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(-1),
		big.NewInt(1 << 40), new(big.Int).Neg(new(big.Int).Lsh(big.NewInt(1), 200)),
	}
	for _, v := range vals {
		data := AppendBig(nil, v)
		got, rest, err := DecodeBig(data)
		if err != nil || len(rest) != 0 {
			t.Fatalf("big %v: %v %v", v, got, err)
		}
		if got.Cmp(v) != 0 {
			t.Errorf("big %v round trip gave %v", v, got)
		}
	}
	list := AppendBigs(nil, vals)
	got, rest, err := DecodeBigs(list)
	if err != nil || len(rest) != 0 || len(got) != len(vals) {
		t.Fatal("bigs list broken")
	}
	if _, _, err := DecodeBig(nil); err == nil {
		t.Error("empty big accepted")
	}
	if _, _, err := DecodeBig([]byte{9}); err == nil {
		t.Error("bad sign accepted")
	}
}

func TestStringCodec(t *testing.T) {
	for _, s := range []string{"", "hi", "üñíçødé"} {
		data := AppendString(nil, s)
		got, rest, err := DecodeString(data)
		if err != nil || len(rest) != 0 || got != s {
			t.Errorf("string %q: got %q err %v", s, got, err)
		}
	}
	if _, _, err := DecodeString([]byte{0x05, 'a'}); err == nil {
		t.Error("truncated string accepted")
	}
}

func TestHelloMessages(t *testing.T) {
	h, err := DecodeHello(EncodeHello(Hello{Version: 7}))
	if err != nil || h.Version != 7 {
		t.Fatal("hello round trip failed")
	}
	params := ring.MustFp(101).Params()
	payload, err := EncodeHelloAck(HelloAck{Version: 1, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	ack, err := DecodeHelloAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Version != 1 || ack.Params.Kind != ring.KindFpCyclotomic || ack.Params.P.Int64() != 101 {
		t.Errorf("hello ack = %+v", ack)
	}
	zparams := ring.MustIntQuotient(1, 0, 1).Params()
	payload, _ = EncodeHelloAck(HelloAck{Version: 1, Params: zparams})
	ack, err = DecodeHelloAck(payload)
	if err != nil || ack.Params.Kind != ring.KindIntQuotient {
		t.Errorf("Z hello ack: %v %v", ack, err)
	}
	if _, err := DecodeHello(nil); err == nil {
		t.Error("empty hello accepted")
	}
}

func TestEvalMessages(t *testing.T) {
	req := EvalReq{
		ID:     42,
		Keys:   []drbg.NodeKey{{}, {1, 2}},
		Points: []*big.Int{big.NewInt(2), big.NewInt(5)},
	}
	dec, err := DecodeEvalReq(EncodeEvalReq(req))
	if err != nil {
		t.Fatal(err)
	}
	if dec.ID != 42 || len(dec.Keys) != 2 || len(dec.Points) != 2 {
		t.Errorf("eval req = %+v", dec)
	}
	resp := EvalResp{
		ID: 42,
		Answers: []core.NodeEval{
			{Key: drbg.NodeKey{}, NumChildren: 2, Values: []*big.Int{big.NewInt(0), big.NewInt(3)}},
			{Key: drbg.NodeKey{0}, NumChildren: 0, Values: []*big.Int{big.NewInt(4), big.NewInt(1)}},
		},
	}
	decR, err := DecodeEvalResp(EncodeEvalResp(resp))
	if err != nil {
		t.Fatal(err)
	}
	if decR.ID != 42 || len(decR.Answers) != 2 {
		t.Fatalf("eval resp = %+v", decR)
	}
	if decR.Answers[0].NumChildren != 2 || decR.Answers[0].Values[1].Int64() != 3 {
		t.Errorf("answer 0 = %+v", decR.Answers[0])
	}
	if _, err := DecodeEvalResp([]byte{0x01}); err == nil {
		t.Error("truncated eval resp accepted")
	}
	// Trailing bytes rejected.
	if _, err := DecodeEvalReq(append(EncodeEvalReq(req), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestFetchMessages(t *testing.T) {
	req := FetchReq{ID: 9, Keys: []drbg.NodeKey{{0, 1}}}
	dec, err := DecodeFetchReq(EncodeFetchReq(req))
	if err != nil || dec.ID != 9 || len(dec.Keys) != 1 {
		t.Fatalf("fetch req: %+v %v", dec, err)
	}
	resp := FetchResp{
		ID: 9,
		Answers: []core.NodePoly{
			{Key: drbg.NodeKey{0, 1}, NumChildren: 3, Poly: poly.FromInt64(45, 265)},
		},
	}
	payload, err := EncodeFetchResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	decR, err := DecodeFetchResp(payload)
	if err != nil {
		t.Fatal(err)
	}
	if decR.Answers[0].NumChildren != 3 || !decR.Answers[0].Poly.Equal(poly.FromInt64(45, 265)) {
		t.Errorf("fetch resp = %+v", decR.Answers[0])
	}
}

func TestPruneAckError(t *testing.T) {
	p := PruneReq{ID: 3, Keys: []drbg.NodeKey{{5}}}
	dec, err := DecodePruneReq(EncodePruneReq(p))
	if err != nil || dec.ID != 3 {
		t.Fatal("prune round trip failed")
	}
	id, err := DecodeAck(EncodeAck(77))
	if err != nil || id != 77 {
		t.Fatal("ack round trip failed")
	}
	e, err := DecodeError(EncodeError(ErrorMsg{ID: 5, Message: "boom"}))
	if err != nil || e.ID != 5 || e.Message != "boom" {
		t.Fatal("error round trip failed")
	}
	re := &RemoteError{ID: 5, Message: "boom"}
	if re.Error() == "" {
		t.Error("empty error string")
	}
}

func TestV3RequestDeadlines(t *testing.T) {
	// A request with a deadline budget round-trips, and its encoding with
	// the budget zeroed is byte-identical to the v2 encoding — the
	// back-compat contract that lets v3 builds talk to v2 daemons.
	req := EvalReq{
		ID:            7,
		Keys:          []drbg.NodeKey{{1}},
		Points:        []*big.Int{big.NewInt(3)},
		TimeoutMillis: 1500,
	}
	dec, err := DecodeEvalReq(EncodeEvalReq(req))
	if err != nil || dec.TimeoutMillis != 1500 {
		t.Fatalf("eval deadline round trip: %+v %v", dec, err)
	}
	legacy := req
	legacy.TimeoutMillis = 0
	withT := EncodeEvalReq(req)
	noT := EncodeEvalReq(legacy)
	if bytes.Equal(withT, noT) {
		t.Fatal("deadline budget not encoded")
	}
	if !bytes.HasPrefix(withT, noT) {
		t.Fatal("v3 extension is not a pure suffix of the v2 encoding")
	}
	decL, err := DecodeEvalReq(noT)
	if err != nil || decL.TimeoutMillis != 0 {
		t.Fatalf("legacy eval decode: %+v %v", decL, err)
	}

	f, err := DecodeFetchReq(EncodeFetchReq(FetchReq{ID: 8, Keys: []drbg.NodeKey{{2}}, TimeoutMillis: 250}))
	if err != nil || f.TimeoutMillis != 250 {
		t.Fatalf("fetch deadline round trip: %+v %v", f, err)
	}
	p, err := DecodePruneReq(EncodePruneReq(PruneReq{ID: 9, Keys: []drbg.NodeKey{{3}}, TimeoutMillis: 10}))
	if err != nil || p.TimeoutMillis != 10 {
		t.Fatalf("prune deadline round trip: %+v %v", p, err)
	}
	// Garbage after the budget varint is still rejected.
	if _, err := DecodeEvalReq(append(EncodeEvalReq(req), 0x01)); err == nil {
		t.Error("trailing bytes after deadline accepted")
	}
}

func TestV3RequestTrace(t *testing.T) {
	// A traced request round-trips trace ID + sampled flag on all three
	// request types, including a zero deadline budget alongside a trace.
	req := EvalReq{
		ID:           7,
		Keys:         []drbg.NodeKey{{1}},
		Points:       []*big.Int{big.NewInt(3)},
		TraceID:      0xdeadbeefcafef00d,
		TraceSampled: true,
	}
	dec, err := DecodeEvalReq(EncodeEvalReq(req))
	if err != nil || dec.TraceID != req.TraceID || !dec.TraceSampled || dec.TimeoutMillis != 0 {
		t.Fatalf("eval trace round trip: %+v %v", dec, err)
	}
	// Trace + deadline together.
	req.TimeoutMillis = 1500
	dec, err = DecodeEvalReq(EncodeEvalReq(req))
	if err != nil || dec.TraceID != req.TraceID || !dec.TraceSampled || dec.TimeoutMillis != 1500 {
		t.Fatalf("eval trace+deadline round trip: %+v %v", dec, err)
	}
	// An untraced request encodes byte-identically to the PR 8 form: the
	// trace extension is a pure suffix, and with no deadline either, to
	// the v2 form — so traceless frames are safe for v2 peers.
	traceless := req
	traceless.TraceID, traceless.TraceSampled = 0, false
	if !bytes.HasPrefix(EncodeEvalReq(req), EncodeEvalReq(traceless)) {
		t.Fatal("trace extension is not a pure suffix")
	}
	v2 := traceless
	v2.TimeoutMillis = 0
	if !bytes.HasPrefix(EncodeEvalReq(traceless), EncodeEvalReq(v2)) {
		t.Fatal("traceless v3 encoding is not a pure extension of v2")
	}

	f, err := DecodeFetchReq(EncodeFetchReq(FetchReq{ID: 8, Keys: []drbg.NodeKey{{2}}, TraceID: 42, TraceSampled: true}))
	if err != nil || f.TraceID != 42 || !f.TraceSampled {
		t.Fatalf("fetch trace round trip: %+v %v", f, err)
	}
	p, err := DecodePruneReq(EncodePruneReq(PruneReq{ID: 9, Keys: []drbg.NodeKey{{3}}, TimeoutMillis: 10, TraceID: 43, TraceSampled: true}))
	if err != nil || p.TraceID != 43 || !p.TraceSampled || p.TimeoutMillis != 10 {
		t.Fatalf("prune trace round trip: %+v %v", p, err)
	}
	// Garbage after the trace flags varint is still rejected.
	if _, err := DecodeEvalReq(append(EncodeEvalReq(req), 0x01)); err == nil {
		t.Error("trailing bytes after trace accepted")
	}
}

func TestTypedErrorCodec(t *testing.T) {
	// v3 extended encoding round-trips code + retry-after.
	shed := ErrorMsg{ID: 11, Message: "shed", Code: CodeOverloaded, RetryAfterMillis: 5}
	dec, err := DecodeError(EncodeError(shed))
	if err != nil || dec != shed {
		t.Fatalf("typed error round trip: %+v %v", dec, err)
	}
	// A generic error with no hint encodes byte-identically to v2, so v2
	// peers never see extension bytes.
	plain := ErrorMsg{ID: 11, Message: "shed"}
	if !bytes.Equal(EncodeError(plain), func() []byte {
		dst := AppendAck(nil, 11)
		return AppendString(dst, "shed")
	}()) {
		t.Fatal("generic error encoding grew extension bytes")
	}
	dec2, err := DecodeError(EncodeError(plain))
	if err != nil || dec2.Code != CodeGeneric || dec2.RetryAfterMillis != 0 {
		t.Fatalf("legacy error decode: %+v %v", dec2, err)
	}
	// Truncated extension (code without retry-after) is rejected.
	trunc := AppendAck(nil, 1)
	trunc = AppendString(trunc, "x")
	trunc = append(trunc, 0x01, 0x80) // code=1, then a dangling varint
	if _, err := DecodeError(trunc); err == nil {
		t.Error("truncated error extension accepted")
	}
}

func TestRemoteErrorHints(t *testing.T) {
	shed := &RemoteError{ID: 1, Message: "shed", Code: CodeOverloaded, RetryAfter: 5 * time.Millisecond}
	if !shed.Overloaded() || !shed.RetryableHint() {
		t.Error("shed error must be retryable")
	}
	if d, ok := shed.RetryAfterHint(); !ok || d != 5*time.Millisecond {
		t.Errorf("retry-after hint = %v %v", d, ok)
	}
	generic := &RemoteError{ID: 2, Message: "bad key"}
	if generic.Overloaded() || generic.RetryableHint() {
		t.Error("generic remote error must stay terminal")
	}
	if _, ok := generic.RetryAfterHint(); ok {
		t.Error("generic remote error must carry no hint")
	}
	expired := &RemoteError{ID: 3, Message: "late", Code: CodeDeadlineExpired}
	if expired.RetryableHint() {
		t.Error("deadline-expired must not be blindly retryable")
	}
	for _, e := range []*RemoteError{shed, generic, expired} {
		if e.Error() == "" {
			t.Error("empty error string")
		}
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := EncodeEvalResp(EvalResp{
		ID: 1,
		Answers: []core.NodeEval{
			{Key: drbg.NodeKey{1, 2, 3}, NumChildren: 4, Values: []*big.Int{big.NewInt(12345)}},
		},
	})
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := WriteFrame(&buf, Frame{Type: MsgEvalResp, Payload: payload}); err != nil {
			b.Fatal(err)
		}
		if _, _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
