package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"time"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/poly"
	"sssearch/internal/ring"
)

// This file defines typed encode/decode helpers for each message payload.

// Hello is the client's opening message.
type Hello struct{ Version uint32 }

// EncodeHello marshals a Hello payload.
func EncodeHello(h Hello) []byte {
	return binary.AppendUvarint(nil, uint64(h.Version))
}

// DecodeHello unmarshals a Hello payload.
func DecodeHello(data []byte) (Hello, error) {
	v, k := binary.Uvarint(data)
	if k <= 0 {
		return Hello{}, errors.New("wire: bad hello")
	}
	return Hello{Version: uint32(v)}, nil
}

// HelloAck is the server's session acceptance: protocol version plus the
// public ring parameters of the hosted tree.
type HelloAck struct {
	Version uint32
	Params  ring.Params
}

// EncodeHelloAck marshals a HelloAck payload.
func EncodeHelloAck(h HelloAck) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(h.Version))
	pb, err := h.Params.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return append(out, pb...), nil
}

// DecodeHelloAck unmarshals a HelloAck payload.
func DecodeHelloAck(data []byte) (HelloAck, error) {
	v, k := binary.Uvarint(data)
	if k <= 0 {
		return HelloAck{}, errors.New("wire: bad hello ack")
	}
	params, rest, err := ring.DecodeParams(data[k:])
	if err != nil {
		return HelloAck{}, err
	}
	if len(rest) != 0 {
		return HelloAck{}, errors.New("wire: trailing bytes in hello ack")
	}
	return HelloAck{Version: uint32(v), Params: params}, nil
}

// decodeTail parses the optional trailing varints of a v3 request
// payload. Three encodings, distinguished purely by remaining length:
// empty rest is the v2 form (no deadline, no trace); exactly one varint
// is the deadline budget alone (the PR 8 v3 form); three varints are
// deadline + trace ID + trace flags (bit 0 = sampled). Anything else is
// malformed.
func decodeTail(rest []byte, what string) (millis, traceID uint64, sampled bool, err error) {
	if len(rest) == 0 {
		return 0, 0, false, nil
	}
	bad := func() (uint64, uint64, bool, error) {
		return 0, 0, false, errors.New("wire: trailing bytes in " + what)
	}
	millis, k := binary.Uvarint(rest)
	if k <= 0 {
		return bad()
	}
	rest = rest[k:]
	if len(rest) == 0 {
		return millis, 0, false, nil
	}
	traceID, k = binary.Uvarint(rest)
	if k <= 0 {
		return bad()
	}
	rest = rest[k:]
	flags, k := binary.Uvarint(rest)
	if k <= 0 || k != len(rest) {
		return bad()
	}
	return millis, traceID, flags&1 != 0, nil
}

// appendTail appends the optional deadline budget and trace context.
// With no trace, a zero budget keeps the v2 encoding byte-identical and
// a nonzero one appends the single PR 8 varint. With a trace, the budget
// varint is always written — even when zero — so the decoder can tell
// the forms apart by length; extended requests only ever reach peers
// that negotiated version 3.
func appendTail(dst []byte, millis, traceID uint64, sampled bool) []byte {
	if traceID == 0 && !sampled {
		if millis == 0 {
			return dst
		}
		return binary.AppendUvarint(dst, millis)
	}
	dst = binary.AppendUvarint(dst, millis)
	dst = binary.AppendUvarint(dst, traceID)
	var flags uint64
	if sampled {
		flags = 1
	}
	return binary.AppendUvarint(dst, flags)
}

// EvalReq asks for evaluations of keys at points.
type EvalReq struct {
	ID     uint64
	Keys   []drbg.NodeKey
	Points []*big.Int

	// TimeoutMillis is the client's remaining deadline budget when the
	// request was sent (protocol v3; 0 = no deadline). The server skips
	// work whose budget has already elapsed instead of computing answers
	// nobody will read. A relative budget rather than an absolute
	// timestamp, so peers need no clock agreement.
	TimeoutMillis uint64

	// TraceID and TraceSampled carry the sampled trace context of the
	// logical query this request belongs to (protocol v3; zero = not
	// traced). Hedged, retried and coalesced legs of one query share a
	// trace ID, so a daemon's slow-query log correlates with the
	// client's. Only sampled requests carry the extension, keeping
	// unsampled frames byte-identical to PR 8 v3.
	TraceID      uint64
	TraceSampled bool
}

// EncodeEvalReq marshals an EvalReq payload.
func EncodeEvalReq(r EvalReq) []byte { return AppendEvalReq(nil, r) }

// AppendEvalReq marshals an EvalReq payload onto dst (which may be a
// pooled buffer, see GetBuf).
func AppendEvalReq(dst []byte, r EvalReq) []byte {
	dst = binary.AppendUvarint(dst, r.ID)
	dst = AppendKeys(dst, r.Keys)
	dst = AppendBigs(dst, r.Points)
	return appendTail(dst, r.TimeoutMillis, r.TraceID, r.TraceSampled)
}

// DecodeEvalReq unmarshals an EvalReq payload.
func DecodeEvalReq(data []byte) (EvalReq, error) {
	id, k := binary.Uvarint(data)
	if k <= 0 {
		return EvalReq{}, errors.New("wire: bad eval id")
	}
	keys, rest, err := DecodeKeys(data[k:])
	if err != nil {
		return EvalReq{}, err
	}
	points, rest, err := DecodeBigs(rest)
	if err != nil {
		return EvalReq{}, err
	}
	timeout, traceID, sampled, err := decodeTail(rest, "eval request")
	if err != nil {
		return EvalReq{}, err
	}
	return EvalReq{ID: id, Keys: keys, Points: points, TimeoutMillis: timeout,
		TraceID: traceID, TraceSampled: sampled}, nil
}

// EvalResp carries the answers to an EvalReq.
type EvalResp struct {
	ID      uint64
	Answers []core.NodeEval
}

// EncodeEvalResp marshals an EvalResp payload.
func EncodeEvalResp(r EvalResp) []byte { return AppendEvalResp(nil, r) }

// AppendEvalResp marshals an EvalResp payload onto dst.
func AppendEvalResp(dst []byte, r EvalResp) []byte {
	dst = binary.AppendUvarint(dst, r.ID)
	dst = binary.AppendUvarint(dst, uint64(len(r.Answers)))
	for _, a := range r.Answers {
		dst = AppendKey(dst, a.Key)
		dst = binary.AppendUvarint(dst, uint64(a.NumChildren))
		dst = AppendBigs(dst, a.Values)
	}
	return dst
}

// DecodeEvalResp unmarshals an EvalResp payload.
func DecodeEvalResp(data []byte) (EvalResp, error) {
	id, k := binary.Uvarint(data)
	if k <= 0 {
		return EvalResp{}, errors.New("wire: bad eval resp id")
	}
	data = data[k:]
	n, k := binary.Uvarint(data)
	if k <= 0 || n > maxListLen {
		return EvalResp{}, errors.New("wire: bad answer count")
	}
	data = data[k:]
	if n > uint64(len(data)) {
		return EvalResp{}, errors.New("wire: answer count exceeds available bytes")
	}
	out := EvalResp{ID: id, Answers: make([]core.NodeEval, n)}
	for i := uint64(0); i < n; i++ {
		key, rest, err := DecodeKey(data)
		if err != nil {
			return EvalResp{}, err
		}
		nch, k := binary.Uvarint(rest)
		if k <= 0 || nch > maxListLen {
			return EvalResp{}, errors.New("wire: bad child count")
		}
		values, rest2, err := DecodeBigs(rest[k:])
		if err != nil {
			return EvalResp{}, err
		}
		out.Answers[i] = core.NodeEval{Key: key, NumChildren: int(nch), Values: values}
		data = rest2
	}
	if len(data) != 0 {
		return EvalResp{}, errors.New("wire: trailing bytes in eval response")
	}
	return out, nil
}

// FetchReq asks for share polynomials.
type FetchReq struct {
	ID   uint64
	Keys []drbg.NodeKey

	// TimeoutMillis is the remaining deadline budget (protocol v3;
	// 0 = no deadline). See EvalReq.TimeoutMillis.
	TimeoutMillis uint64

	// TraceID and TraceSampled carry the sampled trace context
	// (protocol v3; zero = not traced). See EvalReq.TraceID.
	TraceID      uint64
	TraceSampled bool
}

// EncodeFetchReq marshals a FetchReq payload.
func EncodeFetchReq(r FetchReq) []byte { return AppendFetchReq(nil, r) }

// AppendFetchReq marshals a FetchReq payload onto dst.
func AppendFetchReq(dst []byte, r FetchReq) []byte {
	dst = binary.AppendUvarint(dst, r.ID)
	dst = AppendKeys(dst, r.Keys)
	return appendTail(dst, r.TimeoutMillis, r.TraceID, r.TraceSampled)
}

// DecodeFetchReq unmarshals a FetchReq payload.
func DecodeFetchReq(data []byte) (FetchReq, error) {
	id, k := binary.Uvarint(data)
	if k <= 0 {
		return FetchReq{}, errors.New("wire: bad fetch id")
	}
	keys, rest, err := DecodeKeys(data[k:])
	if err != nil {
		return FetchReq{}, err
	}
	timeout, traceID, sampled, err := decodeTail(rest, "fetch request")
	if err != nil {
		return FetchReq{}, err
	}
	return FetchReq{ID: id, Keys: keys, TimeoutMillis: timeout,
		TraceID: traceID, TraceSampled: sampled}, nil
}

// FetchResp carries the answers to a FetchReq.
type FetchResp struct {
	ID      uint64
	Answers []core.NodePoly
}

// EncodeFetchResp marshals a FetchResp payload.
func EncodeFetchResp(r FetchResp) ([]byte, error) { return AppendFetchResp(nil, r) }

// AppendFetchResp marshals a FetchResp payload onto dst.
func AppendFetchResp(dst []byte, r FetchResp) ([]byte, error) {
	dst = binary.AppendUvarint(dst, r.ID)
	dst = binary.AppendUvarint(dst, uint64(len(r.Answers)))
	var err error
	for _, a := range r.Answers {
		dst = AppendKey(dst, a.Key)
		dst = binary.AppendUvarint(dst, uint64(a.NumChildren))
		dst, err = a.Poly.AppendBinary(dst)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// DecodeFetchResp unmarshals a FetchResp payload.
func DecodeFetchResp(data []byte) (FetchResp, error) {
	id, k := binary.Uvarint(data)
	if k <= 0 {
		return FetchResp{}, errors.New("wire: bad fetch resp id")
	}
	data = data[k:]
	n, k := binary.Uvarint(data)
	if k <= 0 || n > maxListLen {
		return FetchResp{}, errors.New("wire: bad answer count")
	}
	data = data[k:]
	if n > uint64(len(data)) {
		return FetchResp{}, errors.New("wire: answer count exceeds available bytes")
	}
	out := FetchResp{ID: id, Answers: make([]core.NodePoly, n)}
	for i := uint64(0); i < n; i++ {
		key, rest, err := DecodeKey(data)
		if err != nil {
			return FetchResp{}, err
		}
		nch, k := binary.Uvarint(rest)
		if k <= 0 || nch > maxListLen {
			return FetchResp{}, errors.New("wire: bad child count")
		}
		p, rest2, err := poly.DecodePoly(rest[k:])
		if err != nil {
			return FetchResp{}, err
		}
		out.Answers[i] = core.NodePoly{Key: key, NumChildren: int(nch), Poly: p}
		data = rest2
	}
	if len(data) != 0 {
		return FetchResp{}, errors.New("wire: trailing bytes in fetch response")
	}
	return out, nil
}

// PruneReq notifies the server of dead subtrees.
type PruneReq struct {
	ID   uint64
	Keys []drbg.NodeKey

	// TimeoutMillis is the remaining deadline budget (protocol v3;
	// 0 = no deadline). See EvalReq.TimeoutMillis.
	TimeoutMillis uint64

	// TraceID and TraceSampled carry the sampled trace context
	// (protocol v3; zero = not traced). See EvalReq.TraceID.
	TraceID      uint64
	TraceSampled bool
}

// EncodePruneReq marshals a PruneReq payload.
func EncodePruneReq(r PruneReq) []byte { return AppendPruneReq(nil, r) }

// AppendPruneReq marshals a PruneReq payload onto dst.
func AppendPruneReq(dst []byte, r PruneReq) []byte {
	dst = binary.AppendUvarint(dst, r.ID)
	dst = AppendKeys(dst, r.Keys)
	return appendTail(dst, r.TimeoutMillis, r.TraceID, r.TraceSampled)
}

// DecodePruneReq unmarshals a PruneReq payload.
func DecodePruneReq(data []byte) (PruneReq, error) {
	id, k := binary.Uvarint(data)
	if k <= 0 {
		return PruneReq{}, errors.New("wire: bad prune id")
	}
	keys, rest, err := DecodeKeys(data[k:])
	if err != nil {
		return PruneReq{}, err
	}
	timeout, traceID, sampled, err := decodeTail(rest, "prune request")
	if err != nil {
		return PruneReq{}, err
	}
	return PruneReq{ID: id, Keys: keys, TimeoutMillis: timeout,
		TraceID: traceID, TraceSampled: sampled}, nil
}

// EncodeAck marshals an Ack payload.
func EncodeAck(id uint64) []byte { return AppendAck(nil, id) }

// AppendAck marshals an Ack payload onto dst.
func AppendAck(dst []byte, id uint64) []byte { return binary.AppendUvarint(dst, id) }

// DecodeAck unmarshals an Ack payload.
func DecodeAck(data []byte) (uint64, error) {
	id, k := binary.Uvarint(data)
	if k <= 0 {
		return 0, errors.New("wire: bad ack")
	}
	return id, nil
}

// ErrCode classifies a server-side failure so clients can tell
// retryable conditions (shed under overload) from terminal ones.
type ErrCode uint32

const (
	// CodeGeneric is an unclassified semantic failure — the v2 behaviour.
	// Not retryable: replaying the identical request yields the identical
	// error.
	CodeGeneric ErrCode = 0
	// CodeOverloaded means the daemon shed the request before doing any
	// work because admission control was at capacity. Retryable after the
	// RetryAfterMillis hint; the connection and session remain healthy.
	CodeOverloaded ErrCode = 1
	// CodeDeadlineExpired means the request's propagated deadline budget
	// had already elapsed when the daemon picked it up, so the work was
	// skipped. The client has invariably stopped waiting; not retryable
	// on its own (the caller's context governs).
	CodeDeadlineExpired ErrCode = 2
)

// ErrorMsg reports a server-side failure for a request. Code and
// RetryAfterMillis are protocol v3 extensions carried as trailing
// varints: a v3 decoder accepts the bare v2 encoding (both default to
// zero), and AppendError omits them when they are both zero so sessions
// negotiated at v2 or lower never see the extension bytes — shedding
// daemons must therefore only set them on v3 sessions.
type ErrorMsg struct {
	ID      uint64
	Message string

	// Code classifies the failure (protocol v3; 0 = CodeGeneric).
	Code ErrCode
	// RetryAfterMillis hints how long a shed client should back off
	// before retrying (protocol v3; 0 = no hint). Only meaningful with
	// CodeOverloaded.
	RetryAfterMillis uint64
}

// EncodeError marshals an ErrorMsg payload.
func EncodeError(e ErrorMsg) []byte { return AppendError(nil, e) }

// AppendError marshals an ErrorMsg payload onto dst.
func AppendError(dst []byte, e ErrorMsg) []byte {
	dst = binary.AppendUvarint(dst, e.ID)
	dst = AppendString(dst, e.Message)
	if e.Code == CodeGeneric && e.RetryAfterMillis == 0 {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(e.Code))
	return binary.AppendUvarint(dst, e.RetryAfterMillis)
}

// DecodeError unmarshals an ErrorMsg payload (v2 or v3 encoding).
func DecodeError(data []byte) (ErrorMsg, error) {
	id, k := binary.Uvarint(data)
	if k <= 0 {
		return ErrorMsg{}, errors.New("wire: bad error id")
	}
	msg, rest, err := DecodeString(data[k:])
	if err != nil {
		return ErrorMsg{}, err
	}
	out := ErrorMsg{ID: id, Message: msg}
	if len(rest) == 0 {
		return out, nil
	}
	code, k := binary.Uvarint(rest)
	if k <= 0 {
		return ErrorMsg{}, errors.New("wire: bad error code")
	}
	retry, k2 := binary.Uvarint(rest[k:])
	if k2 <= 0 || k+k2 != len(rest) {
		return ErrorMsg{}, errors.New("wire: trailing bytes in error message")
	}
	out.Code = ErrCode(code)
	out.RetryAfterMillis = retry
	return out, nil
}

// RemoteError is the client-side surfacing of a server ErrorMsg.
type RemoteError struct {
	ID      uint64
	Message string
	Code    ErrCode
	// RetryAfter is the server's back-off hint (zero if none was sent).
	RetryAfter time.Duration
}

func (e *RemoteError) Error() string {
	switch e.Code {
	case CodeOverloaded:
		return fmt.Sprintf("wire: server overloaded (req %d, shed): %s", e.ID, e.Message)
	case CodeDeadlineExpired:
		return fmt.Sprintf("wire: server skipped expired request %d: %s", e.ID, e.Message)
	default:
		return fmt.Sprintf("wire: server error (req %d): %s", e.ID, e.Message)
	}
}

// Overloaded reports whether the server shed this request under
// admission control.
func (e *RemoteError) Overloaded() bool { return e.Code == CodeOverloaded }

// RetryableHint implements the optional interface resilience.Retryable
// consults: a shed is explicitly safe to retry (the server did no work),
// while every other remote error stays terminal.
func (e *RemoteError) RetryableHint() bool { return e.Code == CodeOverloaded }

// RetryAfterHint implements the optional interface resilience.Do
// consults to honor server-provided back-off hints.
func (e *RemoteError) RetryAfterHint() (time.Duration, bool) {
	if e.RetryAfter <= 0 {
		return 0, false
	}
	return e.RetryAfter, true
}
