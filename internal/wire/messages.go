package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/poly"
	"sssearch/internal/ring"
)

// This file defines typed encode/decode helpers for each message payload.

// Hello is the client's opening message.
type Hello struct{ Version uint32 }

// EncodeHello marshals a Hello payload.
func EncodeHello(h Hello) []byte {
	return binary.AppendUvarint(nil, uint64(h.Version))
}

// DecodeHello unmarshals a Hello payload.
func DecodeHello(data []byte) (Hello, error) {
	v, k := binary.Uvarint(data)
	if k <= 0 {
		return Hello{}, errors.New("wire: bad hello")
	}
	return Hello{Version: uint32(v)}, nil
}

// HelloAck is the server's session acceptance: protocol version plus the
// public ring parameters of the hosted tree.
type HelloAck struct {
	Version uint32
	Params  ring.Params
}

// EncodeHelloAck marshals a HelloAck payload.
func EncodeHelloAck(h HelloAck) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(h.Version))
	pb, err := h.Params.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return append(out, pb...), nil
}

// DecodeHelloAck unmarshals a HelloAck payload.
func DecodeHelloAck(data []byte) (HelloAck, error) {
	v, k := binary.Uvarint(data)
	if k <= 0 {
		return HelloAck{}, errors.New("wire: bad hello ack")
	}
	params, rest, err := ring.DecodeParams(data[k:])
	if err != nil {
		return HelloAck{}, err
	}
	if len(rest) != 0 {
		return HelloAck{}, errors.New("wire: trailing bytes in hello ack")
	}
	return HelloAck{Version: uint32(v), Params: params}, nil
}

// EvalReq asks for evaluations of keys at points.
type EvalReq struct {
	ID     uint64
	Keys   []drbg.NodeKey
	Points []*big.Int
}

// EncodeEvalReq marshals an EvalReq payload.
func EncodeEvalReq(r EvalReq) []byte { return AppendEvalReq(nil, r) }

// AppendEvalReq marshals an EvalReq payload onto dst (which may be a
// pooled buffer, see GetBuf).
func AppendEvalReq(dst []byte, r EvalReq) []byte {
	dst = binary.AppendUvarint(dst, r.ID)
	dst = AppendKeys(dst, r.Keys)
	dst = AppendBigs(dst, r.Points)
	return dst
}

// DecodeEvalReq unmarshals an EvalReq payload.
func DecodeEvalReq(data []byte) (EvalReq, error) {
	id, k := binary.Uvarint(data)
	if k <= 0 {
		return EvalReq{}, errors.New("wire: bad eval id")
	}
	keys, rest, err := DecodeKeys(data[k:])
	if err != nil {
		return EvalReq{}, err
	}
	points, rest, err := DecodeBigs(rest)
	if err != nil {
		return EvalReq{}, err
	}
	if len(rest) != 0 {
		return EvalReq{}, errors.New("wire: trailing bytes in eval request")
	}
	return EvalReq{ID: id, Keys: keys, Points: points}, nil
}

// EvalResp carries the answers to an EvalReq.
type EvalResp struct {
	ID      uint64
	Answers []core.NodeEval
}

// EncodeEvalResp marshals an EvalResp payload.
func EncodeEvalResp(r EvalResp) []byte { return AppendEvalResp(nil, r) }

// AppendEvalResp marshals an EvalResp payload onto dst.
func AppendEvalResp(dst []byte, r EvalResp) []byte {
	dst = binary.AppendUvarint(dst, r.ID)
	dst = binary.AppendUvarint(dst, uint64(len(r.Answers)))
	for _, a := range r.Answers {
		dst = AppendKey(dst, a.Key)
		dst = binary.AppendUvarint(dst, uint64(a.NumChildren))
		dst = AppendBigs(dst, a.Values)
	}
	return dst
}

// DecodeEvalResp unmarshals an EvalResp payload.
func DecodeEvalResp(data []byte) (EvalResp, error) {
	id, k := binary.Uvarint(data)
	if k <= 0 {
		return EvalResp{}, errors.New("wire: bad eval resp id")
	}
	data = data[k:]
	n, k := binary.Uvarint(data)
	if k <= 0 || n > maxListLen {
		return EvalResp{}, errors.New("wire: bad answer count")
	}
	data = data[k:]
	if n > uint64(len(data)) {
		return EvalResp{}, errors.New("wire: answer count exceeds available bytes")
	}
	out := EvalResp{ID: id, Answers: make([]core.NodeEval, n)}
	for i := uint64(0); i < n; i++ {
		key, rest, err := DecodeKey(data)
		if err != nil {
			return EvalResp{}, err
		}
		nch, k := binary.Uvarint(rest)
		if k <= 0 || nch > maxListLen {
			return EvalResp{}, errors.New("wire: bad child count")
		}
		values, rest2, err := DecodeBigs(rest[k:])
		if err != nil {
			return EvalResp{}, err
		}
		out.Answers[i] = core.NodeEval{Key: key, NumChildren: int(nch), Values: values}
		data = rest2
	}
	if len(data) != 0 {
		return EvalResp{}, errors.New("wire: trailing bytes in eval response")
	}
	return out, nil
}

// FetchReq asks for share polynomials.
type FetchReq struct {
	ID   uint64
	Keys []drbg.NodeKey
}

// EncodeFetchReq marshals a FetchReq payload.
func EncodeFetchReq(r FetchReq) []byte { return AppendFetchReq(nil, r) }

// AppendFetchReq marshals a FetchReq payload onto dst.
func AppendFetchReq(dst []byte, r FetchReq) []byte {
	dst = binary.AppendUvarint(dst, r.ID)
	return AppendKeys(dst, r.Keys)
}

// DecodeFetchReq unmarshals a FetchReq payload.
func DecodeFetchReq(data []byte) (FetchReq, error) {
	id, k := binary.Uvarint(data)
	if k <= 0 {
		return FetchReq{}, errors.New("wire: bad fetch id")
	}
	keys, rest, err := DecodeKeys(data[k:])
	if err != nil {
		return FetchReq{}, err
	}
	if len(rest) != 0 {
		return FetchReq{}, errors.New("wire: trailing bytes in fetch request")
	}
	return FetchReq{ID: id, Keys: keys}, nil
}

// FetchResp carries the answers to a FetchReq.
type FetchResp struct {
	ID      uint64
	Answers []core.NodePoly
}

// EncodeFetchResp marshals a FetchResp payload.
func EncodeFetchResp(r FetchResp) ([]byte, error) { return AppendFetchResp(nil, r) }

// AppendFetchResp marshals a FetchResp payload onto dst.
func AppendFetchResp(dst []byte, r FetchResp) ([]byte, error) {
	dst = binary.AppendUvarint(dst, r.ID)
	dst = binary.AppendUvarint(dst, uint64(len(r.Answers)))
	var err error
	for _, a := range r.Answers {
		dst = AppendKey(dst, a.Key)
		dst = binary.AppendUvarint(dst, uint64(a.NumChildren))
		dst, err = a.Poly.AppendBinary(dst)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// DecodeFetchResp unmarshals a FetchResp payload.
func DecodeFetchResp(data []byte) (FetchResp, error) {
	id, k := binary.Uvarint(data)
	if k <= 0 {
		return FetchResp{}, errors.New("wire: bad fetch resp id")
	}
	data = data[k:]
	n, k := binary.Uvarint(data)
	if k <= 0 || n > maxListLen {
		return FetchResp{}, errors.New("wire: bad answer count")
	}
	data = data[k:]
	if n > uint64(len(data)) {
		return FetchResp{}, errors.New("wire: answer count exceeds available bytes")
	}
	out := FetchResp{ID: id, Answers: make([]core.NodePoly, n)}
	for i := uint64(0); i < n; i++ {
		key, rest, err := DecodeKey(data)
		if err != nil {
			return FetchResp{}, err
		}
		nch, k := binary.Uvarint(rest)
		if k <= 0 || nch > maxListLen {
			return FetchResp{}, errors.New("wire: bad child count")
		}
		p, rest2, err := poly.DecodePoly(rest[k:])
		if err != nil {
			return FetchResp{}, err
		}
		out.Answers[i] = core.NodePoly{Key: key, NumChildren: int(nch), Poly: p}
		data = rest2
	}
	if len(data) != 0 {
		return FetchResp{}, errors.New("wire: trailing bytes in fetch response")
	}
	return out, nil
}

// PruneReq notifies the server of dead subtrees.
type PruneReq struct {
	ID   uint64
	Keys []drbg.NodeKey
}

// EncodePruneReq marshals a PruneReq payload.
func EncodePruneReq(r PruneReq) []byte { return AppendPruneReq(nil, r) }

// AppendPruneReq marshals a PruneReq payload onto dst.
func AppendPruneReq(dst []byte, r PruneReq) []byte {
	dst = binary.AppendUvarint(dst, r.ID)
	return AppendKeys(dst, r.Keys)
}

// DecodePruneReq unmarshals a PruneReq payload.
func DecodePruneReq(data []byte) (PruneReq, error) {
	id, k := binary.Uvarint(data)
	if k <= 0 {
		return PruneReq{}, errors.New("wire: bad prune id")
	}
	keys, rest, err := DecodeKeys(data[k:])
	if err != nil {
		return PruneReq{}, err
	}
	if len(rest) != 0 {
		return PruneReq{}, errors.New("wire: trailing bytes in prune request")
	}
	return PruneReq{ID: id, Keys: keys}, nil
}

// EncodeAck marshals an Ack payload.
func EncodeAck(id uint64) []byte { return AppendAck(nil, id) }

// AppendAck marshals an Ack payload onto dst.
func AppendAck(dst []byte, id uint64) []byte { return binary.AppendUvarint(dst, id) }

// DecodeAck unmarshals an Ack payload.
func DecodeAck(data []byte) (uint64, error) {
	id, k := binary.Uvarint(data)
	if k <= 0 {
		return 0, errors.New("wire: bad ack")
	}
	return id, nil
}

// ErrorMsg reports a server-side failure for a request.
type ErrorMsg struct {
	ID      uint64
	Message string
}

// EncodeError marshals an ErrorMsg payload.
func EncodeError(e ErrorMsg) []byte { return AppendError(nil, e) }

// AppendError marshals an ErrorMsg payload onto dst.
func AppendError(dst []byte, e ErrorMsg) []byte {
	dst = binary.AppendUvarint(dst, e.ID)
	return AppendString(dst, e.Message)
}

// DecodeError unmarshals an ErrorMsg payload.
func DecodeError(data []byte) (ErrorMsg, error) {
	id, k := binary.Uvarint(data)
	if k <= 0 {
		return ErrorMsg{}, errors.New("wire: bad error id")
	}
	msg, rest, err := DecodeString(data[k:])
	if err != nil {
		return ErrorMsg{}, err
	}
	if len(rest) != 0 {
		return ErrorMsg{}, errors.New("wire: trailing bytes in error message")
	}
	return ErrorMsg{ID: id, Message: msg}, nil
}

// RemoteError is the client-side surfacing of a server ErrorMsg.
type RemoteError struct {
	ID      uint64
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: server error (req %d): %s", e.ID, e.Message)
}
