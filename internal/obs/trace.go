package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"sync/atomic"
	"time"
)

// Trace identifies one logical query across every leg the serving stack
// fans it into: retried attempts, hedged spares, shard sub-batches and
// coalesced merge passes all carry the same ID, so a slow request can be
// followed end to end. The zero Trace means "not traced" — requests only
// carry a trace when sampling selected them, so the unsampled path pays
// nothing on the wire or in allocations.
type Trace struct {
	ID      uint64
	Sampled bool
}

// sampleEvery is the sampling knob: 0 = never (default), 1 = every
// request, n = one in n.
var sampleEvery atomic.Uint64

// sampleTick counts NewTrace calls for the 1-in-n selection.
var sampleTick atomic.Uint64

// traceCtr and traceSeed drive ID generation: a process-random seed
// whitened through splitmix64 per counter increment, so IDs are unique
// within a process and collide across processes only at birthday-bound
// rates.
var (
	traceCtr  atomic.Uint64
	traceSeed = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return 0x9e3779b97f4a7c15 // deterministic fallback: IDs stay unique in-process
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
)

// SetSampleEvery sets the trace sampling rate: 0 disables tracing
// (default), 1 samples every request, n samples one in n. Applies
// process-wide to every trace origin (engines, batchers).
func SetSampleEvery(n int) {
	if n < 0 {
		n = 0
	}
	sampleEvery.Store(uint64(n))
}

// SampleEvery returns the current sampling rate.
func SampleEvery() int { return int(sampleEvery.Load()) }

// NewTrace draws the sampling decision for a new logical query. With
// sampling off (the default) it is one atomic load returning the zero
// Trace; when the 1-in-n tick selects the request it mints a fresh ID.
func NewTrace() Trace {
	n := sampleEvery.Load()
	if n == 0 {
		return Trace{}
	}
	if n > 1 && sampleTick.Add(1)%n != 0 {
		return Trace{}
	}
	return Trace{ID: splitmix64(traceSeed + traceCtr.Add(1)), Sampled: true}
}

// splitmix64 is the finalizer of the splitmix64 generator — a cheap
// bijective whitener, the same construction the resilience jitter uses.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Span accumulates the per-stage time of one sampled request on one side
// of the wire. Stage accumulators are atomic because parallel legs of
// one query (engine batches, hedged spares) add into the same span
// concurrently. Spans are created only for sampled traces.
type Span struct {
	Trace Trace
	// Op labels what the span covers ("query", "eval", …).
	Op    string
	start time.Time

	stages [NumStages]atomic.Int64 // accumulated ns per stage
}

// StartSpan opens a span for a sampled trace, starting now.
func StartSpan(op string, tr Trace) *Span { return StartSpanAt(op, tr, time.Now()) }

// StartSpanAt opens a span whose clock started at start (the daemon uses
// the frame-arrival time, so server spans cover arrival → response
// written).
func StartSpanAt(op string, tr Trace, start time.Time) *Span {
	return &Span{Trace: tr, Op: op, start: start}
}

// Add accumulates stage time into the span. Safe on a nil span and from
// concurrent goroutines.
func (sp *Span) Add(s Stage, d time.Duration) {
	if sp == nil || s < 0 || int(s) >= NumStages || d <= 0 {
		return
	}
	sp.stages[s].Add(int64(d))
}

// StageTotal returns the accumulated time of one stage.
func (sp *Span) StageTotal(s Stage) time.Duration {
	if sp == nil || s < 0 || int(s) >= NumStages {
		return 0
	}
	return time.Duration(sp.stages[s].Load())
}

// Start returns the span's start time.
func (sp *Span) Start() time.Time { return sp.start }

// SpanLogger receives finished span events. *slog.Logger satisfies it
// via SlogSpans; tests use their own recorder.
type SpanLogger interface {
	SpanEvent(e SlowEntry)
}

// FinishSpan closes a span against this observer: the elapsed total and
// stage breakdown are recorded into the slow-query log and emitted as a
// span event. Returns the span's total duration. Safe on a nil observer
// or span (the duration is still measured when possible).
func (o *Observer) FinishSpan(sp *Span) time.Duration {
	if sp == nil {
		return 0
	}
	total := time.Since(sp.start)
	if o == nil || !sp.Trace.Sampled {
		return total
	}
	e := SlowEntry{
		TraceID: sp.Trace.ID,
		Op:      sp.Op,
		Start:   sp.start,
		Total:   total,
	}
	for i := range e.Stages {
		e.Stages[i] = time.Duration(sp.stages[i].Load())
	}
	o.Slow.Record(e)
	if o.SpanLogger != nil {
		o.SpanLogger.SpanEvent(e)
	}
	return total
}

// spanKey carries a *Span through a context.
type spanKey struct{}

// WithSpan attaches a span to the context; every layer below forwards
// the context, so retried, hedged and coalesced legs read the same span.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom returns the context's span, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
