package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"reflect"
	"sort"
	"strings"
	"time"

	"sssearch/internal/metrics"
)

// DebugOptions configures the ops/debug HTTP surface. Every field is
// optional; absent pieces simply leave their endpoint section empty (or,
// for Healthy, report healthy).
type DebugOptions struct {
	// Counters supplies the current flat counter totals rendered on
	// /metrics and /varz. Use a merged snapshot when one process holds
	// several Counters (daemon + coalescer).
	Counters func() metrics.Snapshot

	// Observer supplies the stage histograms and slow-query log.
	Observer *Observer

	// Healthy reports nil when the process should pass /healthz; return
	// an error (e.g. "draining") to fail readiness.
	Healthy func() error

	// Vars contributes extra key/values to the /varz JSON document
	// (store epoch, inflight, breaker states, ...).
	Vars func() map[string]any
}

// DebugHandler builds the ops/debug HTTP mux: /metrics (Prometheus text
// format: every metrics.Counters field plus per-stage latency
// histograms), /healthz, /varz (JSON runtime snapshot incl. the
// slow-query log) and the standard net/http/pprof endpoints.
func DebugHandler(opts DebugOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		if opts.Counters != nil {
			writeCounterMetrics(&b, opts.Counters())
		}
		writeStageMetrics(&b, opts.Observer)
		_, _ = w.Write([]byte(b.String()))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if opts.Healthy != nil {
			if err := opts.Healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, r *http.Request) {
		doc := map[string]any{}
		if opts.Counters != nil {
			doc["counters"] = counterMap(opts.Counters())
		}
		if o := opts.Observer; o != nil {
			stages := map[string]any{}
			snaps := o.StageSnapshots()
			for i, s := range snaps {
				if s.Count == 0 {
					continue
				}
				stages[Stage(i).String()] = map[string]any{
					"count":   s.Count,
					"mean_ns": s.Mean(),
					"p50_ns":  s.Quantile(0.50),
					"p95_ns":  s.Quantile(0.95),
					"p99_ns":  s.Quantile(0.99),
					"max_ns":  s.Max,
				}
			}
			doc["stages"] = stages
			slow := o.Slow.Entries()
			entries := make([]map[string]any, 0, len(slow))
			for _, e := range slow {
				entries = append(entries, map[string]any{
					"trace_id": fmt.Sprintf("%016x", e.TraceID),
					"op":       e.Op,
					"start":    e.Start.Format(time.RFC3339Nano),
					"total_ns": e.Total.Nanoseconds(),
					"stages":   e.StageMap(),
				})
			}
			doc["slow_queries"] = entries
		}
		if opts.Vars != nil {
			for k, v := range opts.Vars() {
				doc[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeCounterMetrics renders every metrics.Snapshot field as one
// Prometheus counter line. Field discovery is reflective, so a counter
// added to metrics.Counters shows up here without a code change — the
// same property the Snapshot.String completeness test enforces.
func writeCounterMetrics(b *strings.Builder, s metrics.Snapshot) {
	v := reflect.ValueOf(s)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := "sss_" + snakeCase(f.Name)
		fmt.Fprintf(b, "# TYPE %s counter\n", name)
		switch fv := v.Field(i); fv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			fmt.Fprintf(b, "%s %d\n", name, fv.Int())
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fmt.Fprintf(b, "%s %d\n", name, fv.Uint())
		default:
			fmt.Fprintf(b, "%s %v\n", name, fv.Interface())
		}
	}
}

// writeStageMetrics renders each stage histogram as a Prometheus summary
// (quantiles in seconds) plus count/sum/max.
func writeStageMetrics(b *strings.Builder, o *Observer) {
	if o == nil {
		return
	}
	const name = "sss_stage_latency_seconds"
	fmt.Fprintf(b, "# HELP %s per-stage request latency\n# TYPE %s summary\n", name, name)
	snaps := o.StageSnapshots()
	for i, s := range snaps {
		label := Stage(i).String()
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(b, "%s{stage=%q,quantile=%q} %g\n", name, label, fmt.Sprintf("%g", q), s.Quantile(q)/1e9)
		}
		fmt.Fprintf(b, "%s_sum{stage=%q} %g\n", name, label, float64(s.Sum)/1e9)
		fmt.Fprintf(b, "%s_count{stage=%q} %d\n", name, label, s.Count)
		fmt.Fprintf(b, "%s_max{stage=%q} %g\n", name, label, float64(s.Max)/1e9)
	}
}

// counterMap flattens a metrics.Snapshot into snake_case name → value.
func counterMap(s metrics.Snapshot) map[string]int64 {
	out := map[string]int64{}
	v := reflect.ValueOf(s)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		switch fv := v.Field(i); fv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			out[snakeCase(f.Name)] = fv.Int()
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			out[snakeCase(f.Name)] = int64(fv.Uint())
		}
	}
	return out
}

// CounterNames returns the snake_case /metrics names (without the sss_
// prefix) of every exported metrics.Snapshot field, sorted. The CI smoke
// and completeness tests use it.
func CounterNames() []string {
	var names []string
	t := reflect.TypeOf(metrics.Snapshot{})
	for i := 0; i < t.NumField(); i++ {
		if f := t.Field(i); f.IsExported() {
			names = append(names, snakeCase(f.Name))
		}
	}
	sort.Strings(names)
	return names
}

// snakeCase converts a Go exported identifier to snake_case, keeping
// acronym runs together ("BytesSent" → "bytes_sent", "EvalLRUHits" →
// "eval_lru_hits").
func snakeCase(s string) string {
	var b strings.Builder
	rs := []rune(s)
	for i, r := range rs {
		if r >= 'A' && r <= 'Z' {
			// word boundary: previous is lowercase/digit, or previous is
			// uppercase and next is lowercase (end of an acronym run)
			if i > 0 {
				prevUpper := rs[i-1] >= 'A' && rs[i-1] <= 'Z'
				nextLower := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z'
				if !prevUpper || nextLower {
					b.WriteByte('_')
				}
			}
			b.WriteRune(r - 'A' + 'a')
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}
