package obs

import "log/slog"

// slogSpans adapts a *slog.Logger to SpanLogger.
type slogSpans struct{ l *slog.Logger }

// SlogSpans returns a SpanLogger that emits one structured slog record
// per finished sampled span: trace ID, op, total and the nonzero stage
// durations as attributes.
func SlogSpans(l *slog.Logger) SpanLogger {
	if l == nil {
		l = slog.Default()
	}
	return slogSpans{l}
}

func (s slogSpans) SpanEvent(e SlowEntry) {
	attrs := make([]any, 0, 6+2*NumStages)
	attrs = append(attrs,
		"trace_id", e.TraceID,
		"op", e.Op,
		"total", e.Total,
	)
	for i, d := range e.Stages {
		if d > 0 {
			attrs = append(attrs, "stage_"+Stage(i).String(), d)
		}
	}
	s.l.Info("span", attrs...)
}
