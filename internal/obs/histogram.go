package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-bucketed latency histogram: bucket i
// counts observations in [2^(i-1), 2^i) nanoseconds (bucket 0 counts
// exact zeros), so 64 fixed buckets cover every possible duration with
// sub-bucket linear interpolation giving quantiles accurate to within a
// power of two — plenty for latency work, where distributions span
// decades. Observe is a handful of atomic adds with no allocation, so
// the unsampled hot path can afford one per stage. The zero value is
// ready to use; safe for concurrent use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
	max     atomic.Uint64 // largest single observation, ns
	buckets [64]atomic.Uint64
}

// bucketOf maps an observation to its bucket index: bits.Len64 is the
// position of the highest set bit, so ns in [2^(i-1), 2^i) lands in
// bucket i and zero lands in bucket 0.
func bucketOf(ns uint64) int {
	b := bits.Len64(ns)
	if b > 63 {
		b = 63
	}
	return b
}

// Observe records one latency. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.ObserveNs(ns)
}

// ObserveNs records one latency in nanoseconds.
func (h *Histogram) ObserveNs(ns uint64) {
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketOf(ns)].Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot captures a consistent-enough copy of the histogram: each
// field is loaded atomically, so under concurrent writers the totals may
// straddle an in-flight observation by one — irrelevant for reporting,
// and Merge over snapshots stays exactly associative.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Reset zeroes the histogram. Not atomic with respect to concurrent
// Observes; intended for test and fixture setup.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistSnapshot is an immutable copy of a Histogram. Snapshots from
// different histograms (or different shards of one logical metric) merge
// by field-wise addition, which is commutative and associative, so
// per-shard and per-tenant histograms aggregate without coordination.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64 // nanoseconds
	Max     uint64 // nanoseconds
	Buckets [64]uint64
}

// Merge returns the field-wise combination s + o (max of maxes).
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	return out
}

// Mean returns the average observation in nanoseconds (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-quantile (0 <= q <= 1) in nanoseconds,
// linearly interpolated inside the containing bucket and clamped to the
// exact observed maximum (so Quantile(1) == Max). Returns 0 when the
// histogram is empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation in sorted
	// order; ceil so Quantile(0.99) of 100 observations is the 99th.
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) || rank == 0 {
		rank++
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		lo, hi := bucketBounds(i)
		frac := float64(rank-cum) / float64(c)
		v := float64(lo) + frac*float64(hi-lo)
		if v > float64(s.Max) {
			v = float64(s.Max)
		}
		return v
	}
	return float64(s.Max)
}

// bucketBounds returns the [lo, hi) nanosecond range of bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 1
	}
	lo = uint64(1) << (i - 1)
	if i == 63 {
		return lo, 1 << 63 // clamp; nothing observes beyond ~292 years
	}
	return lo, uint64(1) << i
}
