package obs

import (
	"sort"
	"sync"
	"time"
)

// DefaultSlowLogSize is the entry cap of a SlowLog whose SetCap was
// never called.
const DefaultSlowLogSize = 64

// SlowEntry is one finished sampled request in the slow-query log: what
// it was, how long it took end to end, and where the time went.
type SlowEntry struct {
	TraceID uint64
	Op      string
	Start   time.Time
	Total   time.Duration
	// Stages holds the per-stage breakdown, indexed by Stage.
	Stages [NumStages]time.Duration
}

// StageMap returns the nonzero stage durations keyed by stage label,
// the shape /varz serializes.
func (e SlowEntry) StageMap() map[string]time.Duration {
	m := make(map[string]time.Duration, NumStages)
	for i, d := range e.Stages {
		if d > 0 {
			m[Stage(i).String()] = d
		}
	}
	return m
}

// SlowLog is a bounded top-N-by-duration log of sampled requests: it
// keeps the cap slowest entries seen since the last Reset, evicting the
// fastest when full (a min-heap on Total). The zero value is ready to
// use with DefaultSlowLogSize. Safe for concurrent use; Record is a
// short critical section on the sampled path only, so it never touches
// the unsampled hot path.
type SlowLog struct {
	mu      sync.Mutex
	cap     int
	entries []SlowEntry // min-heap on Total
}

// SetCap sets the maximum number of retained entries (minimum 1),
// dropping the fastest surplus entries if shrinking.
func (l *SlowLog) SetCap(n int) {
	if n < 1 {
		n = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cap = n
	for len(l.entries) > n {
		l.popMin()
	}
}

// Record offers an entry to the log; it is kept if the log has room or
// the entry outlasts the current fastest retained one.
func (l *SlowLog) Record(e SlowEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	capN := l.cap
	if capN == 0 {
		capN = DefaultSlowLogSize
	}
	if len(l.entries) >= capN {
		if e.Total <= l.entries[0].Total {
			return
		}
		l.popMin()
	}
	l.entries = append(l.entries, e)
	// sift up
	i := len(l.entries) - 1
	for i > 0 {
		p := (i - 1) / 2
		if l.entries[p].Total <= l.entries[i].Total {
			break
		}
		l.entries[p], l.entries[i] = l.entries[i], l.entries[p]
		i = p
	}
}

// popMin removes the heap root (fastest entry). Caller holds mu.
func (l *SlowLog) popMin() {
	n := len(l.entries) - 1
	l.entries[0] = l.entries[n]
	l.entries = l.entries[:n]
	// sift down
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && l.entries[c+1].Total < l.entries[c].Total {
			c++
		}
		if l.entries[i].Total <= l.entries[c].Total {
			break
		}
		l.entries[i], l.entries[c] = l.entries[c], l.entries[i]
		i = c
	}
}

// Entries returns the retained entries, slowest first.
func (l *SlowLog) Entries() []SlowEntry {
	l.mu.Lock()
	out := make([]SlowEntry, len(l.entries))
	copy(out, l.entries)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// Len returns the number of retained entries.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Reset drops all entries.
func (l *SlowLog) Reset() {
	l.mu.Lock()
	l.entries = nil
	l.mu.Unlock()
}
