package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sssearch/internal/metrics"
)

// TestHistogramConcurrent hammers one histogram from 16 goroutines and
// checks count/sum conservation: every observation must land exactly
// once in the totals and exactly once in some bucket.
func TestHistogramConcurrent(t *testing.T) {
	const (
		goroutines = 16
		perG       = 5000
	)
	var h Histogram
	sums := make([]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			var local uint64
			for i := 0; i < perG; i++ {
				ns := uint64(rng.Int63n(1 << uint(rng.Intn(40))))
				local += ns
				h.ObserveNs(ns)
			}
			sums[g] = local
		}(g)
	}
	wg.Wait()

	s := h.Snapshot()
	if want := uint64(goroutines * perG); s.Count != want {
		t.Fatalf("count = %d, want %d", s.Count, want)
	}
	var wantSum uint64
	for _, v := range sums {
		wantSum += v
	}
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	var inBuckets uint64
	for _, c := range s.Buckets {
		inBuckets += c
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket total = %d, want %d", inBuckets, s.Count)
	}
	if s.Max == 0 || float64(s.Max) < s.Quantile(0.99) {
		t.Fatalf("max %d inconsistent with p99 %g", s.Max, s.Quantile(0.99))
	}
}

// TestSnapshotMergeAssociative checks (a+b)+c == a+(b+c) field-wise.
func TestSnapshotMergeAssociative(t *testing.T) {
	mk := func(seed int64, n int) HistSnapshot {
		var h Histogram
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			h.ObserveNs(uint64(rng.Int63n(1 << 30)))
		}
		return h.Snapshot()
	}
	a, b, c := mk(1, 100), mk(2, 2000), mk(3, 50)
	l := a.Merge(b).Merge(c)
	r := a.Merge(b.Merge(c))
	if l != r {
		t.Fatalf("merge not associative:\n%+v\n%+v", l, r)
	}
	if l.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count = %d", l.Count)
	}
	if l.Sum != a.Sum+b.Sum+c.Sum {
		t.Fatalf("merged sum = %d", l.Sum)
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty p50 = %g", got)
	}
	// 1000 observations spread 1ms..1s; quantiles must be monotone,
	// within log-bucket error (2x) of the true value, and p100 == max.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Max != uint64(time.Second) {
		t.Fatalf("max = %d", s.Max)
	}
	if got := s.Quantile(1); got != float64(s.Max) {
		t.Fatalf("p100 = %g, want %d", got, s.Max)
	}
	prev := -1.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: p%g=%g < %g", q*100, v, prev)
		}
		prev = v
		truth := q * 1000 * float64(time.Millisecond)
		if v < truth/2 || v > truth*2 {
			t.Fatalf("p%g = %g, truth %g: outside 2x log-bucket error", q*100, v, truth)
		}
	}
}

func TestSlowLogBounded(t *testing.T) {
	var l SlowLog
	l.SetCap(4)
	for i := 1; i <= 100; i++ {
		l.Record(SlowEntry{TraceID: uint64(i), Total: time.Duration(i)})
	}
	got := l.Entries()
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for i, e := range got {
		if want := time.Duration(100 - i); e.Total != want {
			t.Fatalf("entry %d total = %v, want %v", i, e.Total, want)
		}
	}
	// A fast entry must not evict a retained slow one.
	l.Record(SlowEntry{Total: 1})
	if got := l.Entries(); got[len(got)-1].Total != 97 {
		t.Fatalf("fast entry displaced a slow one: %+v", got)
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("reset left %d entries", l.Len())
	}
}

func TestSamplingAndSpans(t *testing.T) {
	defer SetSampleEvery(0)

	SetSampleEvery(0)
	if tr := NewTrace(); tr.Sampled || tr.ID != 0 {
		t.Fatalf("sampling off produced %+v", tr)
	}

	SetSampleEvery(1)
	tr := NewTrace()
	if !tr.Sampled || tr.ID == 0 {
		t.Fatalf("sampling on produced %+v", tr)
	}
	if tr2 := NewTrace(); tr2.ID == tr.ID {
		t.Fatalf("trace IDs collided")
	}

	SetSampleEvery(3)
	sampled := 0
	for i := 0; i < 300; i++ {
		if NewTrace().Sampled {
			sampled++
		}
	}
	if sampled != 100 {
		t.Fatalf("1-in-3 sampling picked %d of 300", sampled)
	}

	// Span lifecycle through a context, finishing into an observer.
	var o Observer
	sp := StartSpan("test", tr)
	ctx := WithSpan(context.Background(), sp)
	if SpanFrom(ctx) != sp {
		t.Fatalf("SpanFrom lost the span")
	}
	if SpanFrom(context.Background()) != nil {
		t.Fatalf("SpanFrom invented a span")
	}
	sp.Add(StageWire, 5*time.Millisecond)
	sp.Add(StageWire, 3*time.Millisecond)
	sp.Add(StageStoreEval, time.Millisecond)
	total := o.FinishSpan(sp)
	if total <= 0 {
		t.Fatalf("total = %v", total)
	}
	entries := o.Slow.Entries()
	if len(entries) != 1 {
		t.Fatalf("slow log has %d entries", len(entries))
	}
	e := entries[0]
	if e.TraceID != tr.ID || e.Op != "test" {
		t.Fatalf("entry = %+v", e)
	}
	if e.Stages[StageWire] != 8*time.Millisecond || e.Stages[StageStoreEval] != time.Millisecond {
		t.Fatalf("stage breakdown = %v", e.Stages)
	}

	// Unsampled spans must not reach the slow log.
	o.Slow.Reset()
	o.FinishSpan(StartSpan("quiet", Trace{}))
	if o.Slow.Len() != 0 {
		t.Fatalf("unsampled span recorded")
	}

	// Nil receivers are inert.
	var nilO *Observer
	nilO.Observe(StageWire, time.Second)
	nilO.FinishSpan(sp)
	var nilSp *Span
	nilSp.Add(StageWire, time.Second)
}

func TestDebugHandler(t *testing.T) {
	var o Observer
	o.Observe(StageWire, 2*time.Millisecond)
	o.Observe(StageStoreEval, time.Millisecond)
	o.Slow.Record(SlowEntry{TraceID: 42, Op: "eval", Total: 3 * time.Millisecond,
		Stages: func() (st [NumStages]time.Duration) { st[StageWire] = 2 * time.Millisecond; return }()})

	var c metrics.Counters
	c.AddNodesEvaluated(7)
	healthy := true
	h := DebugHandler(DebugOptions{
		Counters: c.Snapshot,
		Observer: &o,
		Healthy: func() error {
			if !healthy {
				return fmt.Errorf("draining")
			}
			return nil
		},
		Vars: func() map[string]any { return map[string]any{"store_epoch": 3} },
	})

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics code = %d", code)
	}
	if !strings.Contains(body, "sss_nodes_evaluated 7") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	// Every counter field must be present.
	for _, name := range CounterNames() {
		if !strings.Contains(body, "sss_"+name+" ") {
			t.Fatalf("/metrics missing %s", name)
		}
	}
	if !strings.Contains(body, `sss_stage_latency_seconds_count{stage="wire"} 1`) {
		t.Fatalf("/metrics missing stage histogram:\n%s", body)
	}

	code, body = get("/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	healthy = false
	if code, body = get("/healthz"); code != 503 || !strings.Contains(body, "draining") {
		t.Fatalf("unhealthy /healthz = %d %q", code, body)
	}

	code, body = get("/varz")
	if code != 200 {
		t.Fatalf("/varz code = %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/varz not JSON: %v\n%s", err, body)
	}
	if doc["store_epoch"] != float64(3) {
		t.Fatalf("/varz missing extra var: %v", doc)
	}
	slow, ok := doc["slow_queries"].([]any)
	if !ok || len(slow) != 1 {
		t.Fatalf("/varz slow_queries = %v", doc["slow_queries"])
	}
	if counters, ok := doc["counters"].(map[string]any); !ok || counters["nodes_evaluated"] != float64(7) {
		t.Fatalf("/varz counters = %v", doc["counters"])
	}

	if code, _ = get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof code = %d", code)
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"BytesSent":      "bytes_sent",
		"EvalLRUHits":    "eval_lru_hits",
		"NodesEvaluated": "nodes_evaluated",
		"MessagesRcvd":   "messages_rcvd",
		"RPCErrors":      "rpc_errors",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}
