// Package obs is the observability layer of the serving stack: lock-free
// log-bucketed latency histograms for every request-path stage, sampled
// trace propagation (one 64-bit trace ID shared by every retried, hedged
// and coalesced leg of a logical query), a bounded slow-query log with
// per-stage breakdowns, and an ops/debug HTTP surface (/metrics,
// /healthz, /varz, net/http/pprof).
//
// The design splits cost by sampling state:
//
//   - Histograms are recorded for EVERY request: one Observe is a couple
//     of atomic adds, so the unsampled hot path pays nanoseconds.
//   - Traces exist only for sampled requests (SetSampleEvery; off by
//     default). Only sampled requests allocate a Span, ride the wire
//     trace extension, emit slog span events and feed the slow-query
//     log.
//
// Components share an Observer — the bundle of stage histograms, slow
// log and span logger. The package Default observer is what every layer
// uses unless a specific one is injected (tests inject their own for
// isolation; the daemon exposes its observer to the debug handler).
package obs

import "time"

// Stage enumerates the instrumented request-path stages. The zero-based
// values index Observer histograms and Span accumulators; String returns
// the stable label used in /metrics and /varz.
type Stage int

const (
	// StageShareArith is the client-side share arithmetic of one
	// evaluation batch: pad/share evaluation plus the modular sums that
	// combine client and server summands.
	StageShareArith Stage = iota
	// StageBatchWait is the time an EvalNodes call spent queued in the
	// client-side micro-batcher before its merged flush started.
	StageBatchWait
	// StageWire is one wire round trip: request write through response
	// read on a Remote session.
	StageWire
	// StageAdmitWait is the time a request waited for the daemon's
	// admission-control slot (zero when admission is unbounded).
	StageAdmitWait
	// StageDispatch is the daemon-side queue/dispatch time: frame read
	// to handler start (worker-pool wait included).
	StageDispatch
	// StageCoalesceWait is the time an EvalNodes call spent queued in
	// the server-side coalescer before its merged pass started.
	StageCoalesceWait
	// StageStoreEval is the store evaluation itself (EvalNodes,
	// FetchPolys or Prune against the served share store).
	StageStoreEval
	// StageWriterQueue is a response's residency in the daemon's bounded
	// write queue: enqueue to written-to-socket.
	StageWriterQueue

	// NumStages is the number of instrumented stages.
	NumStages int = iota
)

var stageNames = [NumStages]string{
	"share_arith",
	"batch_wait",
	"wire",
	"admit_wait",
	"dispatch",
	"coalesce_wait",
	"store_eval",
	"writer_queue",
}

func (s Stage) String() string {
	if s < 0 || int(s) >= NumStages {
		return "invalid"
	}
	return stageNames[s]
}

// Observer bundles the per-stage histograms, the slow-query log and the
// optional span-event logger. The zero value is ready to use; a nil
// *Observer is safe to call (observations are dropped), so call sites
// never branch.
type Observer struct {
	stages [NumStages]Histogram

	// Slow is the bounded slow-query log fed by sampled spans.
	Slow SlowLog

	// SpanLogger, when non-nil, receives one structured span event per
	// finished sampled span (trace ID, op, total, stage breakdown).
	SpanLogger SpanLogger
}

// Stage returns the histogram of one stage (nil on a nil observer).
func (o *Observer) Stage(s Stage) *Histogram {
	if o == nil || s < 0 || int(s) >= NumStages {
		return nil
	}
	return &o.stages[s]
}

// Observe records one stage latency into the stage's histogram. Safe on
// a nil observer and from any goroutine.
func (o *Observer) Observe(s Stage, d time.Duration) {
	if o == nil || s < 0 || int(s) >= NumStages {
		return
	}
	o.stages[s].Observe(d)
}

// StageSnapshots captures every stage histogram.
func (o *Observer) StageSnapshots() [NumStages]HistSnapshot {
	var out [NumStages]HistSnapshot
	if o == nil {
		return out
	}
	for i := range o.stages {
		out[i] = o.stages[i].Snapshot()
	}
	return out
}

// defaultObserver is the process-wide observer used by every layer that
// was not handed a specific one.
var defaultObserver = &Observer{}

// Default returns the process-wide observer.
func Default() *Observer { return defaultObserver }
