package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestShardCounters(t *testing.T) {
	c := NewShardCounters(4)
	if got := c.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	c.RecordBatch([]int{0})
	c.RecordBatch([]int{1, 3})
	c.RecordBatch(nil) // empty batches are not recorded
	s := c.Snapshot()
	if s.Batches != 2 {
		t.Errorf("Batches = %d, want 2", s.Batches)
	}
	if s.Fanout != 3 {
		t.Errorf("Fanout = %d, want 3", s.Fanout)
	}
	if want := []int64{1, 1, 0, 1}; len(s.Requests) != len(want) {
		t.Fatalf("Requests = %v, want %v", s.Requests, want)
	} else {
		for i := range want {
			if s.Requests[i] != want[i] {
				t.Errorf("Requests[%d] = %d, want %d", i, s.Requests[i], want[i])
			}
		}
	}
	if got := s.AvgFanout(); got != 1.5 {
		t.Errorf("AvgFanout = %v, want 1.5", got)
	}
	if str := s.String(); !strings.Contains(str, "batches=2") {
		t.Errorf("String() = %q", str)
	}
	// Out-of-range shard ids must not panic (counted in fan-out only).
	c.RecordBatch([]int{-1, 99})
}

func TestShardCountersNilAndZero(t *testing.T) {
	var c *ShardCounters
	c.RecordBatch([]int{0}) // no-op, no panic
	if c.Shards() != 0 {
		t.Error("nil Shards() != 0")
	}
	s := c.Snapshot()
	if s.Batches != 0 || s.AvgFanout() != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
	if NewShardCounters(0).Shards() != 1 {
		t.Error("NewShardCounters(0) should clamp to 1 shard")
	}
}

func TestShardCountersConcurrent(t *testing.T) {
	c := NewShardCounters(2)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.RecordBatch([]int{0, 1})
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Batches != 800 || s.Fanout != 1600 || s.Requests[0] != 800 || s.Requests[1] != 800 {
		t.Errorf("snapshot = %+v", s)
	}
}
