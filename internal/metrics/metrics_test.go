package metrics

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCountersAccumulate(t *testing.T) {
	c := &Counters{}
	c.AddNodesEvaluated(3)
	c.AddValuesMoved(4)
	c.AddPolysFetched(2)
	c.AddPolyBytes(100)
	c.AddRound()
	c.AddRound()
	c.AddNodesVisited(5)
	c.AddPruned(1)
	c.AddTagRecovered()
	c.AddVerifyFailure()
	c.AddBytesSent(10)
	c.AddBytesReceived(20)
	c.AddMessageSent()
	c.AddMessageReceived()
	s := c.Snapshot()
	if s.NodesEvaluated != 3 || s.ValuesMoved != 4 || s.PolysFetched != 2 ||
		s.PolyBytesMoved != 100 || s.Rounds != 2 || s.NodesVisited != 5 ||
		s.NodesPruned != 1 || s.TagsRecovered != 1 || s.VerifyFailures != 1 ||
		s.BytesSent != 10 || s.BytesReceived != 20 ||
		s.MessagesSent != 1 || s.MessagesRcvd != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestSubDelta(t *testing.T) {
	c := &Counters{}
	c.AddRound()
	before := c.Snapshot()
	c.AddRound()
	c.AddValuesMoved(7)
	delta := c.Snapshot().Sub(before)
	if delta.Rounds != 1 || delta.ValuesMoved != 7 {
		t.Errorf("delta = %+v", delta)
	}
}

func TestReset(t *testing.T) {
	c := &Counters{}
	c.AddRound()
	c.AddBytesSent(99)
	c.Reset()
	s := c.Snapshot()
	if s != (Snapshot{}) {
		t.Errorf("after reset: %+v", s)
	}
}

func TestConcurrentUse(t *testing.T) {
	c := &Counters{}
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.AddNodesEvaluated(1)
				c.AddRound()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.NodesEvaluated != 5000 || s.Rounds != 5000 {
		t.Errorf("lost updates: %+v", s)
	}
}

func TestStringFormat(t *testing.T) {
	c := &Counters{}
	c.AddRound()
	out := c.Snapshot().String()
	if !strings.Contains(out, "rounds=1") {
		t.Errorf("String() = %q", out)
	}
}

// TestStringComplete reflects over Snapshot and gives every field a
// distinct value, then requires each value to appear in String() — so a
// future counter that is added to the struct but forgotten in the format
// string fails this test instead of silently vanishing from logs.
func TestStringComplete(t *testing.T) {
	var s Snapshot
	rv := reflect.ValueOf(&s).Elem()
	for i := 0; i < rv.NumField(); i++ {
		rv.Field(i).SetInt(int64(1000003 + i))
	}
	out := s.String()
	for i := 0; i < rv.NumField(); i++ {
		want := fmt.Sprintf("=%d", 1000003+i)
		if !strings.Contains(out, want) {
			t.Errorf("String() missing field %s (looked for %q): %s",
				rv.Type().Field(i).Name, want, out)
		}
	}
}

// TestSnapshotAdd checks the reflective merge sums every field.
func TestSnapshotAdd(t *testing.T) {
	var a, b Snapshot
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		av.Field(i).SetInt(int64(i + 1))
		bv.Field(i).SetInt(int64(10 * (i + 1)))
	}
	sum := a.Add(b)
	sv := reflect.ValueOf(sum)
	for i := 0; i < sv.NumField(); i++ {
		if got, want := sv.Field(i).Int(), int64(11*(i+1)); got != want {
			t.Errorf("Add field %s = %d, want %d", sv.Type().Field(i).Name, got, want)
		}
	}
	if a.Add(Snapshot{}) != a {
		t.Errorf("Add zero changed the snapshot")
	}
}

func TestCoalesceCounters(t *testing.T) {
	c := &Counters{}
	c.AddCoalescedBatches(2)
	c.AddCoalescedRequests(9)
	c.AddCoalesceDedupHits(40)
	s := c.Snapshot()
	if s.CoalescedBatches != 2 || s.CoalescedRequests != 9 || s.CoalesceDedupHits != 40 {
		t.Errorf("snapshot = %+v", s)
	}
	delta := s.Sub(Snapshot{CoalescedBatches: 1, CoalescedRequests: 4, CoalesceDedupHits: 15})
	if delta.CoalescedBatches != 1 || delta.CoalescedRequests != 5 || delta.CoalesceDedupHits != 25 {
		t.Errorf("delta = %+v", delta)
	}
	if out := s.String(); !strings.Contains(out, "coalBatch=2") || !strings.Contains(out, "coalDedup=40") {
		t.Errorf("String() missing coalesce counters: %s", out)
	}
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("reset snapshot = %+v", s)
	}
}

func TestSharedCacheCounters(t *testing.T) {
	c := &Counters{}
	c.AddSharedPadHits(5)
	c.AddSharedPadMiss(1)
	c.AddSharedPadSingleflight(3)
	c.AddShareEvalHits(7)
	c.AddShareEvalMiss(2)
	s := c.Snapshot()
	if s.SharedPadHits != 5 || s.SharedPadMiss != 1 || s.SharedPadSingleflight != 3 ||
		s.ShareEvalHits != 7 || s.ShareEvalMiss != 2 {
		t.Errorf("snapshot = %+v", s)
	}
	delta := s.Sub(Snapshot{SharedPadHits: 2, SharedPadSingleflight: 1, ShareEvalHits: 4})
	if delta.SharedPadHits != 3 || delta.SharedPadSingleflight != 2 || delta.ShareEvalHits != 3 ||
		delta.SharedPadMiss != 1 || delta.ShareEvalMiss != 2 {
		t.Errorf("delta = %+v", delta)
	}
	if out := s.String(); !strings.Contains(out, "sharedHit=5") || !strings.Contains(out, "sharedFlight=3") ||
		!strings.Contains(out, "shareEvalHit=7") {
		t.Errorf("String() missing shared-cache counters: %s", out)
	}
	c.Reset()
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("reset snapshot = %+v", s)
	}
}

func TestPadCacheCounters(t *testing.T) {
	c := &Counters{}
	c.AddPadCacheHits(3)
	c.AddPadCacheMiss(2)
	s := c.Snapshot()
	if s.PadCacheHits != 3 || s.PadCacheMiss != 2 {
		t.Errorf("snapshot = %+v", s)
	}
	delta := s.Sub(Snapshot{PadCacheHits: 1, PadCacheMiss: 1})
	if delta.PadCacheHits != 2 || delta.PadCacheMiss != 1 {
		t.Errorf("delta = %+v", delta)
	}
	if out := s.String(); !strings.Contains(out, "padHit=3") || !strings.Contains(out, "padMiss=2") {
		t.Errorf("String() missing pad counters: %s", out)
	}
	c.Reset()
	if s := c.Snapshot(); s.PadCacheHits != 0 || s.PadCacheMiss != 0 {
		t.Errorf("reset snapshot = %+v", s)
	}
}
