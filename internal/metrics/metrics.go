// Package metrics provides the instrumentation counters the experiment
// harness reports: protocol work (node evaluations, rounds), transfer
// volume (scalar values, polynomials, raw bytes) and verification effort.
package metrics

import (
	"fmt"
	"reflect"
	"sync/atomic"
)

// Counters accumulates protocol statistics. All methods are safe for
// concurrent use. The zero value is ready to use.
type Counters struct {
	nodesEvaluated atomic.Int64 // node×point evaluations performed
	valuesMoved    atomic.Int64 // scalar values sent server→client
	polysFetched   atomic.Int64 // full polynomials sent server→client
	polyBytesMoved atomic.Int64 // bytes of polynomial payloads
	rounds         atomic.Int64 // protocol round trips
	nodesVisited   atomic.Int64 // distinct nodes touched by the protocol
	nodesPruned    atomic.Int64 // subtree prunes issued
	tagsRecovered  atomic.Int64 // RecoverTag invocations
	verifyFailures atomic.Int64 // detected inconsistencies
	bytesSent      atomic.Int64 // wire bytes client→server
	bytesReceived  atomic.Int64 // wire bytes server→client
	messagesSent   atomic.Int64
	messagesRcvd   atomic.Int64
	evalCacheHits  atomic.Int64 // server eval-cache hits (node×point reused)
	evalCacheMiss  atomic.Int64 // server eval-cache misses (Horner passes run)
	padCacheHits   atomic.Int64 // client pad-cache hits (share pads reused)
	padCacheMiss   atomic.Int64 // client pad-cache misses (DRBG regenerations)

	// Coalescing tallies. The same triple serves both ends of the stack:
	// the server-side coalesce.Server counts merged inner evaluation
	// passes, and the client-side client.Batcher counts merged wire
	// requests — each on its own Counters instance.
	coalescedBatches  atomic.Int64 // shared passes that served >1 queued request
	coalescedRequests atomic.Int64 // Eval requests absorbed into shared passes
	coalesceDedupHits atomic.Int64 // duplicate (node, point-set) evals avoided

	// Cross-session shared client cache tallies (sharing.SharedPadCache):
	// pads reused across sessions of one ClientKey, regenerations actually
	// run, waits piggybacked on an in-flight regeneration (singleflight),
	// and the (node, point-set) share-eval LRU in front of the multi-point
	// Horner pass.
	sharedPadHits         atomic.Int64 // shared pad-cache hits
	sharedPadMiss         atomic.Int64 // shared pad-cache misses (DRBG runs)
	sharedPadSingleflight atomic.Int64 // waits merged into an in-flight regen
	shareEvalHits         atomic.Int64 // share-eval LRU hits (Horner skipped)
	shareEvalMiss         atomic.Int64 // share-eval LRU misses (Horner run)

	// Fault-tolerance tallies (internal/resilience and friends): calls
	// re-attempted after transport faults, hedged spare calls launched and
	// spare answers that made the k-set, connections re-dialed after a
	// break, pool members ejected by health tracking, and daemon
	// connections that completed a graceful drain.
	retries        atomic.Int64 // retried calls (transport faults re-attempted)
	hedgesFired    atomic.Int64 // spare member calls launched by the hedge timer
	hedgesWon      atomic.Int64 // spare answers that were needed for the k-set
	redials        atomic.Int64 // connections re-established after a break
	membersEjected atomic.Int64 // pool members removed by health tracking
	connsDrained   atomic.Int64 // daemon connections gracefully drained

	// Overload-protection and live-operations tallies: requests shed by
	// admission control, requests skipped because their propagated
	// deadline had already expired, circuit breakers tripped open by
	// consecutive sheds, live store swaps completed, and connections cut
	// because the peer would not drain its responses.
	requestsShed    atomic.Int64 // requests answered with CodeOverloaded
	deadlineSkips   atomic.Int64 // requests skipped, deadline already past
	breakerTrips    atomic.Int64 // circuit breakers tripped open
	storeSwaps      atomic.Int64 // Daemon.SwapStore epochs completed
	slowConsumerCut atomic.Int64 // connections disconnected as slow consumers
}

// Add* methods increment the corresponding counter.

func (c *Counters) AddNodesEvaluated(n int) { c.nodesEvaluated.Add(int64(n)) }
func (c *Counters) AddValuesMoved(n int)    { c.valuesMoved.Add(int64(n)) }
func (c *Counters) AddPolysFetched(n int)   { c.polysFetched.Add(int64(n)) }
func (c *Counters) AddPolyBytes(n int)      { c.polyBytesMoved.Add(int64(n)) }
func (c *Counters) AddRound()               { c.rounds.Add(1) }
func (c *Counters) AddNodesVisited(n int)   { c.nodesVisited.Add(int64(n)) }
func (c *Counters) AddPruned(n int)         { c.nodesPruned.Add(int64(n)) }
func (c *Counters) AddTagRecovered()        { c.tagsRecovered.Add(1) }
func (c *Counters) AddVerifyFailure()       { c.verifyFailures.Add(1) }
func (c *Counters) AddBytesSent(n int)      { c.bytesSent.Add(int64(n)) }
func (c *Counters) AddBytesReceived(n int)  { c.bytesReceived.Add(int64(n)) }
func (c *Counters) AddMessageSent()         { c.messagesSent.Add(1) }
func (c *Counters) AddMessageReceived()     { c.messagesRcvd.Add(1) }
func (c *Counters) AddEvalCacheHits(n int)  { c.evalCacheHits.Add(int64(n)) }
func (c *Counters) AddEvalCacheMiss(n int)  { c.evalCacheMiss.Add(int64(n)) }
func (c *Counters) AddPadCacheHits(n int)   { c.padCacheHits.Add(int64(n)) }
func (c *Counters) AddPadCacheMiss(n int)   { c.padCacheMiss.Add(int64(n)) }

func (c *Counters) AddCoalescedBatches(n int)  { c.coalescedBatches.Add(int64(n)) }
func (c *Counters) AddCoalescedRequests(n int) { c.coalescedRequests.Add(int64(n)) }
func (c *Counters) AddCoalesceDedupHits(n int) { c.coalesceDedupHits.Add(int64(n)) }

func (c *Counters) AddSharedPadHits(n int)         { c.sharedPadHits.Add(int64(n)) }
func (c *Counters) AddSharedPadMiss(n int)         { c.sharedPadMiss.Add(int64(n)) }
func (c *Counters) AddSharedPadSingleflight(n int) { c.sharedPadSingleflight.Add(int64(n)) }
func (c *Counters) AddShareEvalHits(n int)         { c.shareEvalHits.Add(int64(n)) }
func (c *Counters) AddShareEvalMiss(n int)         { c.shareEvalMiss.Add(int64(n)) }

func (c *Counters) AddRetries(n int)        { c.retries.Add(int64(n)) }
func (c *Counters) AddHedgesFired(n int)    { c.hedgesFired.Add(int64(n)) }
func (c *Counters) AddHedgesWon(n int)      { c.hedgesWon.Add(int64(n)) }
func (c *Counters) AddRedials(n int)        { c.redials.Add(int64(n)) }
func (c *Counters) AddMembersEjected(n int) { c.membersEjected.Add(int64(n)) }
func (c *Counters) AddConnsDrained(n int)   { c.connsDrained.Add(int64(n)) }

func (c *Counters) AddRequestsShed(n int)    { c.requestsShed.Add(int64(n)) }
func (c *Counters) AddDeadlineSkips(n int)   { c.deadlineSkips.Add(int64(n)) }
func (c *Counters) AddBreakerTrips(n int)    { c.breakerTrips.Add(int64(n)) }
func (c *Counters) AddStoreSwaps(n int)      { c.storeSwaps.Add(int64(n)) }
func (c *Counters) AddSlowConsumerCut(n int) { c.slowConsumerCut.Add(int64(n)) }

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	NodesEvaluated int64
	ValuesMoved    int64
	PolysFetched   int64
	PolyBytesMoved int64
	Rounds         int64
	NodesVisited   int64
	NodesPruned    int64
	TagsRecovered  int64
	VerifyFailures int64
	BytesSent      int64
	BytesReceived  int64
	MessagesSent   int64
	MessagesRcvd   int64
	EvalCacheHits  int64
	EvalCacheMiss  int64
	PadCacheHits   int64
	PadCacheMiss   int64

	CoalescedBatches  int64
	CoalescedRequests int64
	CoalesceDedupHits int64

	SharedPadHits         int64
	SharedPadMiss         int64
	SharedPadSingleflight int64
	ShareEvalHits         int64
	ShareEvalMiss         int64

	Retries        int64
	HedgesFired    int64
	HedgesWon      int64
	Redials        int64
	MembersEjected int64
	ConnsDrained   int64

	RequestsShed    int64
	DeadlineSkips   int64
	BreakerTrips    int64
	StoreSwaps      int64
	SlowConsumerCut int64
}

// Snapshot captures the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		NodesEvaluated: c.nodesEvaluated.Load(),
		ValuesMoved:    c.valuesMoved.Load(),
		PolysFetched:   c.polysFetched.Load(),
		PolyBytesMoved: c.polyBytesMoved.Load(),
		Rounds:         c.rounds.Load(),
		NodesVisited:   c.nodesVisited.Load(),
		NodesPruned:    c.nodesPruned.Load(),
		TagsRecovered:  c.tagsRecovered.Load(),
		VerifyFailures: c.verifyFailures.Load(),
		BytesSent:      c.bytesSent.Load(),
		BytesReceived:  c.bytesReceived.Load(),
		MessagesSent:   c.messagesSent.Load(),
		MessagesRcvd:   c.messagesRcvd.Load(),
		EvalCacheHits:  c.evalCacheHits.Load(),
		EvalCacheMiss:  c.evalCacheMiss.Load(),
		PadCacheHits:   c.padCacheHits.Load(),
		PadCacheMiss:   c.padCacheMiss.Load(),

		CoalescedBatches:  c.coalescedBatches.Load(),
		CoalescedRequests: c.coalescedRequests.Load(),
		CoalesceDedupHits: c.coalesceDedupHits.Load(),

		SharedPadHits:         c.sharedPadHits.Load(),
		SharedPadMiss:         c.sharedPadMiss.Load(),
		SharedPadSingleflight: c.sharedPadSingleflight.Load(),
		ShareEvalHits:         c.shareEvalHits.Load(),
		ShareEvalMiss:         c.shareEvalMiss.Load(),

		Retries:        c.retries.Load(),
		HedgesFired:    c.hedgesFired.Load(),
		HedgesWon:      c.hedgesWon.Load(),
		Redials:        c.redials.Load(),
		MembersEjected: c.membersEjected.Load(),
		ConnsDrained:   c.connsDrained.Load(),

		RequestsShed:    c.requestsShed.Load(),
		DeadlineSkips:   c.deadlineSkips.Load(),
		BreakerTrips:    c.breakerTrips.Load(),
		StoreSwaps:      c.storeSwaps.Load(),
		SlowConsumerCut: c.slowConsumerCut.Load(),
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.nodesEvaluated.Store(0)
	c.valuesMoved.Store(0)
	c.polysFetched.Store(0)
	c.polyBytesMoved.Store(0)
	c.rounds.Store(0)
	c.nodesVisited.Store(0)
	c.nodesPruned.Store(0)
	c.tagsRecovered.Store(0)
	c.verifyFailures.Store(0)
	c.bytesSent.Store(0)
	c.bytesReceived.Store(0)
	c.messagesSent.Store(0)
	c.messagesRcvd.Store(0)
	c.evalCacheHits.Store(0)
	c.evalCacheMiss.Store(0)
	c.padCacheHits.Store(0)
	c.padCacheMiss.Store(0)
	c.coalescedBatches.Store(0)
	c.coalescedRequests.Store(0)
	c.coalesceDedupHits.Store(0)
	c.sharedPadHits.Store(0)
	c.sharedPadMiss.Store(0)
	c.sharedPadSingleflight.Store(0)
	c.shareEvalHits.Store(0)
	c.shareEvalMiss.Store(0)
	c.retries.Store(0)
	c.hedgesFired.Store(0)
	c.hedgesWon.Store(0)
	c.redials.Store(0)
	c.membersEjected.Store(0)
	c.connsDrained.Store(0)
	c.requestsShed.Store(0)
	c.deadlineSkips.Store(0)
	c.breakerTrips.Store(0)
	c.storeSwaps.Store(0)
	c.slowConsumerCut.Store(0)
}

// Sub returns the delta s - prev, for per-query deltas over a shared
// counter set.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		NodesEvaluated: s.NodesEvaluated - prev.NodesEvaluated,
		ValuesMoved:    s.ValuesMoved - prev.ValuesMoved,
		PolysFetched:   s.PolysFetched - prev.PolysFetched,
		PolyBytesMoved: s.PolyBytesMoved - prev.PolyBytesMoved,
		Rounds:         s.Rounds - prev.Rounds,
		NodesVisited:   s.NodesVisited - prev.NodesVisited,
		NodesPruned:    s.NodesPruned - prev.NodesPruned,
		TagsRecovered:  s.TagsRecovered - prev.TagsRecovered,
		VerifyFailures: s.VerifyFailures - prev.VerifyFailures,
		BytesSent:      s.BytesSent - prev.BytesSent,
		BytesReceived:  s.BytesReceived - prev.BytesReceived,
		MessagesSent:   s.MessagesSent - prev.MessagesSent,
		MessagesRcvd:   s.MessagesRcvd - prev.MessagesRcvd,
		EvalCacheHits:  s.EvalCacheHits - prev.EvalCacheHits,
		EvalCacheMiss:  s.EvalCacheMiss - prev.EvalCacheMiss,
		PadCacheHits:   s.PadCacheHits - prev.PadCacheHits,
		PadCacheMiss:   s.PadCacheMiss - prev.PadCacheMiss,

		CoalescedBatches:  s.CoalescedBatches - prev.CoalescedBatches,
		CoalescedRequests: s.CoalescedRequests - prev.CoalescedRequests,
		CoalesceDedupHits: s.CoalesceDedupHits - prev.CoalesceDedupHits,

		SharedPadHits:         s.SharedPadHits - prev.SharedPadHits,
		SharedPadMiss:         s.SharedPadMiss - prev.SharedPadMiss,
		SharedPadSingleflight: s.SharedPadSingleflight - prev.SharedPadSingleflight,
		ShareEvalHits:         s.ShareEvalHits - prev.ShareEvalHits,
		ShareEvalMiss:         s.ShareEvalMiss - prev.ShareEvalMiss,

		Retries:        s.Retries - prev.Retries,
		HedgesFired:    s.HedgesFired - prev.HedgesFired,
		HedgesWon:      s.HedgesWon - prev.HedgesWon,
		Redials:        s.Redials - prev.Redials,
		MembersEjected: s.MembersEjected - prev.MembersEjected,
		ConnsDrained:   s.ConnsDrained - prev.ConnsDrained,

		RequestsShed:    s.RequestsShed - prev.RequestsShed,
		DeadlineSkips:   s.DeadlineSkips - prev.DeadlineSkips,
		BreakerTrips:    s.BreakerTrips - prev.BreakerTrips,
		StoreSwaps:      s.StoreSwaps - prev.StoreSwaps,
		SlowConsumerCut: s.SlowConsumerCut - prev.SlowConsumerCut,
	}
}

// Add returns the field-wise sum s + o, for merging snapshots taken
// from distinct Counters (e.g. a daemon's and its coalescer's) into one
// reporting surface. Implemented reflectively so a counter added to the
// struct is summed without a code change here.
func (s Snapshot) Add(o Snapshot) Snapshot {
	out := s
	ov := reflect.ValueOf(o)
	rv := reflect.ValueOf(&out).Elem()
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		f.SetInt(f.Int() + ov.Field(i).Int())
	}
	return out
}

// String renders a compact one-line summary.
func (s Snapshot) String() string {
	return fmt.Sprintf("evals=%d values=%d polys=%d polyB=%d rounds=%d visited=%d pruned=%d recovered=%d failures=%d sent=%d recvd=%d msgsSent=%d msgsRcvd=%d cacheHit=%d cacheMiss=%d padHit=%d padMiss=%d coalBatch=%d coalReq=%d coalDedup=%d sharedHit=%d sharedMiss=%d sharedFlight=%d shareEvalHit=%d shareEvalMiss=%d retries=%d hedged=%d hedgeWon=%d redials=%d ejected=%d drained=%d shed=%d deadlineSkip=%d breakerTrip=%d storeSwap=%d slowCut=%d",
		s.NodesEvaluated, s.ValuesMoved, s.PolysFetched, s.PolyBytesMoved,
		s.Rounds, s.NodesVisited, s.NodesPruned, s.TagsRecovered, s.VerifyFailures,
		s.BytesSent, s.BytesReceived, s.MessagesSent, s.MessagesRcvd,
		s.EvalCacheHits, s.EvalCacheMiss, s.PadCacheHits, s.PadCacheMiss,
		s.CoalescedBatches, s.CoalescedRequests, s.CoalesceDedupHits,
		s.SharedPadHits, s.SharedPadMiss, s.SharedPadSingleflight,
		s.ShareEvalHits, s.ShareEvalMiss,
		s.Retries, s.HedgesFired, s.HedgesWon, s.Redials, s.MembersEjected, s.ConnsDrained,
		s.RequestsShed, s.DeadlineSkips, s.BreakerTrips, s.StoreSwaps, s.SlowConsumerCut)
}
