package metrics

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// ShardCounters accumulates routing statistics for a tree-partitioned
// deployment: how many backend calls each shard absorbed and how widely
// each routed batch fanned out. It lives beside the eval/pad cache pairs
// in Counters but is sized by the deployment (one slot per shard), so it
// is its own type rather than more fixed fields. All methods are safe for
// concurrent use. A nil *ShardCounters is a valid no-op sink.
type ShardCounters struct {
	requests []atomic.Int64 // backend calls per shard
	batches  atomic.Int64   // routed batches (one per router call that touched a shard)
	fanout   atomic.Int64   // total shards touched across batches
	retries  atomic.Int64   // replica failovers (sub-batch retried on another replica)
}

// NewShardCounters builds a counter set for a deployment of n shards.
func NewShardCounters(n int) *ShardCounters {
	if n < 1 {
		n = 1
	}
	return &ShardCounters{requests: make([]atomic.Int64, n)}
}

// Shards returns the number of tracked shards.
func (c *ShardCounters) Shards() int {
	if c == nil {
		return 0
	}
	return len(c.requests)
}

// RecordBatch tallies one routed call that touched the given shards: each
// shard's request count is incremented, the batch count by one and the
// fan-out by the number of shards touched. Calls that touch no shard
// (empty key batches) are not recorded.
func (c *ShardCounters) RecordBatch(shards []int) {
	if c == nil || len(shards) == 0 {
		return
	}
	for _, s := range shards {
		if s >= 0 && s < len(c.requests) {
			c.requests[s].Add(1)
		}
	}
	c.batches.Add(1)
	c.fanout.Add(int64(len(shards)))
}

// RecordRetry tallies one replica failover: a shard sub-batch that
// failed on one replica backend and was retried against another.
func (c *ShardCounters) RecordRetry() {
	if c == nil {
		return
	}
	c.retries.Add(1)
}

// ShardSnapshot is an immutable copy of a ShardCounters.
type ShardSnapshot struct {
	// Requests[s] is the number of backend calls routed to shard s.
	Requests []int64
	// Batches is the number of routed calls (each touching ≥ 1 shard).
	Batches int64
	// Fanout is the total number of shards touched across all batches;
	// Fanout/Batches is the average cross-shard fan-out per call.
	Fanout int64
	// Retries is the number of replica failovers: shard sub-batches that
	// failed on one replica and were retried against another.
	Retries int64
}

// Snapshot captures the current counter values.
func (c *ShardCounters) Snapshot() ShardSnapshot {
	if c == nil {
		return ShardSnapshot{}
	}
	out := ShardSnapshot{
		Requests: make([]int64, len(c.requests)),
		Batches:  c.batches.Load(),
		Fanout:   c.fanout.Load(),
		Retries:  c.retries.Load(),
	}
	for i := range c.requests {
		out.Requests[i] = c.requests[i].Load()
	}
	return out
}

// AvgFanout returns the average number of shards touched per routed call.
func (s ShardSnapshot) AvgFanout() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Fanout) / float64(s.Batches)
}

// String renders a compact one-line summary.
func (s ShardSnapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "batches=%d fanout=%.2f retries=%d requests=[", s.Batches, s.AvgFanout(), s.Retries)
	for i, r := range s.Requests {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", r)
	}
	sb.WriteByte(']')
	return sb.String()
}
