package contentindex

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"sssearch/internal/drbg"
	"sssearch/internal/metrics"
	"sssearch/internal/ring"
	"sssearch/internal/sharing"
)

// Searcher is the client side of a content search deployment: the hasher
// key, the share seed, and the payload master key. The server side is the
// share tree (from sharing.Split over the Build tree) plus the
// PayloadStore.
type Searcher struct {
	ring     ring.Ring
	hasher   *Hasher
	shares   *sharing.SeedClient
	payKey   []byte
	counters *metrics.Counters
}

// NewSearcher assembles the client state. counters may be nil.
func NewSearcher(r ring.Ring, h *Hasher, seed drbg.Seed, payloadMaster []byte, counters *metrics.Counters) *Searcher {
	if counters == nil {
		counters = &metrics.Counters{}
	}
	return &Searcher{
		ring:     r,
		hasher:   h,
		shares:   sharing.NewSeedClient(r, seed),
		payKey:   append([]byte(nil), payloadMaster...),
		counters: counters,
	}
}

// Counters exposes protocol statistics.
func (s *Searcher) Counters() *metrics.Counters { return s.counters }

// Result is a completed word search.
type Result struct {
	// Matches are nodes whose own text certainly contains a word hashing
	// to the query point AND whose decrypted payload contains the word
	// (hash collisions filtered out).
	Matches []drbg.NodeKey
	// IndexCandidates counts nodes the index flagged before payload
	// filtering (matches + collisions + ambiguous containers).
	IndexCandidates int
	// PayloadBytes counts encrypted payload bytes fetched for filtering.
	PayloadBytes int
	Stats        metrics.Snapshot
}

// Search finds the document nodes whose text contains word, using the
// polynomial index for pruning and the encrypted payloads for exact
// filtering (the paper's "index to the encrypted data" flow).
func (s *Searcher) Search(word string, serverTree *sharing.Tree, payloads *PayloadStore) (*Result, error) {
	if serverTree == nil || serverTree.Root == nil {
		return nil, errors.New("contentindex: nil server tree")
	}
	before := s.counters.Snapshot()
	point := s.hasher.Point(word)
	mod, err := s.ring.EvalModulus(point)
	if err != nil {
		return nil, fmt.Errorf("contentindex: point: %w", err)
	}
	needle := strings.ToLower(word)

	// Phase 1: pruned descent over the index.
	type frame struct {
		key  drbg.NodeKey
		node *sharing.Node
	}
	var zeroNodes []frame
	queue := []frame{{drbg.NodeKey{}, serverTree.Root}}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		s.counters.AddNodesVisited(1)
		s.counters.AddNodesEvaluated(1)
		s.counters.AddValuesMoved(1)
		sv, err := s.ring.Eval(f.node.Polynomial(), point)
		if err != nil {
			return nil, err
		}
		cv, err := s.shares.EvalShare(f.key, point)
		if err != nil {
			return nil, err
		}
		sum := new(big.Int).Add(sv, cv)
		sum.Mod(sum, mod)
		if sum.Sign() != 0 {
			s.counters.AddPruned(1)
			continue // dead branch: no word hash below
		}
		zeroNodes = append(zeroNodes, f)
		for i, c := range f.node.Children {
			queue = append(queue, frame{f.key.Child(uint32(i)), c})
		}
	}

	// Phase 2: every zero node MAY own the word (no Theorem-1 verification
	// exists for hashed content) — fetch and filter its payload.
	res := &Result{IndexCandidates: len(zeroNodes)}
	for _, f := range zeroNodes {
		blob, err := payloads.Fetch(f.key)
		if err != nil {
			return nil, err
		}
		res.PayloadBytes += len(blob)
		text, err := DecryptPayload(s.payKey, blob)
		if err != nil {
			return nil, err
		}
		for _, w := range Words(text) {
			if w == needle {
				res.Matches = append(res.Matches, f.key)
				break
			}
		}
	}
	res.Stats = s.counters.Snapshot().Sub(before)
	return res, nil
}
