package contentindex

import (
	"crypto/sha256"
	"strings"
	"testing"

	"sssearch/internal/drbg"
	"sssearch/internal/ring"
	"sssearch/internal/sharing"
	"sssearch/internal/xmltree"
	"sssearch/internal/xpath"
)

const libraryDoc = `<library>
  <book><title>secret sharing schemes</title><author>shamir</author></book>
  <book><title>searching encrypted data</title><author>brinkman</author></book>
  <note>remember to return the encrypted data survey</note>
</library>`

type stack struct {
	doc      *xmltree.Node
	ring     ring.Ring
	hasher   *Hasher
	seed     drbg.Seed
	server   *sharing.Tree
	payloads *PayloadStore
	searcher *Searcher
}

func buildStack(t *testing.T, docXML string, r ring.Ring) *stack {
	t.Helper()
	doc, err := xmltree.ParseString(docXML)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHasher(r, []byte("hash-key"))
	tree, err := Build(r, doc, h)
	if err != nil {
		t.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("content-seed")))
	server, err := sharing.Split(tree, seed)
	if err != nil {
		t.Fatal(err)
	}
	master := []byte("payload-master")
	payloads, err := EncryptPayloads(master, doc)
	if err != nil {
		t.Fatal(err)
	}
	return &stack{
		doc:      doc,
		ring:     r,
		hasher:   h,
		seed:     seed,
		server:   server,
		payloads: payloads,
		searcher: NewSearcher(r, h, seed, master, nil),
	}
}

func TestWords(t *testing.T) {
	got := Words("Hello, World! 42 times; re-encrypted?")
	want := []string{"hello", "world", "42", "times", "re", "encrypted"}
	if len(got) != len(want) {
		t.Fatalf("Words = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(Words("")) != 0 || len(Words("...")) != 0 {
		t.Error("empty tokenization wrong")
	}
}

func TestHasherProperties(t *testing.T) {
	r := ring.MustIntQuotient(1, 0, 1)
	h := NewHasher(r, []byte("k"))
	a := h.Point("encrypted")
	b := h.Point("ENCRYPTED") // case-insensitive
	if a.Cmp(b) != 0 {
		t.Error("hashing not case-normalized")
	}
	if a.Sign() < 1 {
		t.Error("point out of domain")
	}
	other := NewHasher(r, []byte("different"))
	if other.Point("encrypted").Cmp(a) == 0 {
		t.Error("different keys should disagree (w.h.p.)")
	}
	// Fp ring: domain respects MaxTag.
	fp := ring.MustFp(11)
	hf := NewHasher(fp, []byte("k"))
	for _, w := range []string{"a", "b", "c", "d", "e", "f"} {
		p := hf.Point(w)
		if p.Sign() < 1 || p.Cmp(fp.MaxTag()) > 0 {
			t.Errorf("point %v outside [1, %v]", p, fp.MaxTag())
		}
	}
}

func searchOracle(doc *xmltree.Node, word string) map[string]bool {
	want := map[string]bool{}
	doc.Walk(func(n *xmltree.Node) bool {
		for _, w := range Words(n.Text) {
			if w == word {
				want[n.Key().String()] = true
				break
			}
		}
		return true
	})
	return want
}

func TestSearchFindsWords(t *testing.T) {
	for _, r := range []ring.Ring{ring.MustIntQuotient(1, 0, 1), ring.MustFp(1009)} {
		s := buildStack(t, libraryDoc, r)
		for _, word := range []string{"encrypted", "shamir", "sharing", "data", "survey", "nonexistent"} {
			res, err := s.searcher.Search(word, s.server, s.payloads)
			if err != nil {
				t.Fatalf("%s %q: %v", r.Name(), word, err)
			}
			want := searchOracle(s.doc, word)
			if len(res.Matches) != len(want) {
				t.Fatalf("%s %q: %d matches, oracle %d", r.Name(), word, len(res.Matches), len(want))
			}
			for _, k := range res.Matches {
				if !want[k.String()] {
					t.Fatalf("%s %q: false positive %s", r.Name(), word, k)
				}
			}
		}
	}
}

func TestSearchPrunesMisses(t *testing.T) {
	s := buildStack(t, libraryDoc, ring.MustIntQuotient(1, 0, 1))
	res, err := s.searcher.Search("zebra", s.server, s.payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Fatal("phantom match")
	}
	if res.Stats.NodesVisited != 1 {
		t.Errorf("miss visited %d nodes, want 1 (root)", res.Stats.NodesVisited)
	}
	if res.PayloadBytes != 0 {
		t.Error("miss fetched payloads")
	}
	// A selective hit fetches only candidate payloads, not all of them.
	res, err = s.searcher.Search("shamir", s.server, s.payloads)
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexCandidates >= s.payloads.Count() {
		t.Errorf("index did not narrow: %d candidates of %d nodes",
			res.IndexCandidates, s.payloads.Count())
	}
}

func TestPayloadEncryptionRoundTrip(t *testing.T) {
	doc, _ := xmltree.ParseString(`<a>alpha<b>beta</b></a>`)
	master := []byte("m")
	ps, err := EncryptPayloads(master, doc)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ps.Fetch(drbg.NodeKey{0})
	if err != nil {
		t.Fatal(err)
	}
	text, err := DecryptPayload(master, blob)
	if err != nil {
		t.Fatal(err)
	}
	if text != "beta" {
		t.Errorf("payload = %q", text)
	}
	// Ciphertext hides the word.
	if strings.Contains(string(blob), "beta") {
		t.Error("payload leaks plaintext")
	}
	// Wrong key / tampering rejected.
	if _, err := DecryptPayload([]byte("wrong"), blob); err == nil {
		t.Error("wrong key accepted")
	}
	blob[20] ^= 1
	if _, err := DecryptPayload(master, blob); err == nil {
		t.Error("tampered payload accepted")
	}
	if _, err := ps.Fetch(drbg.NodeKey{9}); err == nil {
		t.Error("phantom payload")
	}
}

func TestBuildNilDoc(t *testing.T) {
	r := ring.MustIntQuotient(1, 0, 1)
	if _, err := Build(r, nil, NewHasher(r, nil)); err == nil {
		t.Error("nil doc accepted")
	}
}

// TestIndexAgreesWithTagTreeShape: the content tree mirrors the document
// shape so the same node keys address both trees.
func TestIndexSharesDocumentShape(t *testing.T) {
	s := buildStack(t, libraryDoc, ring.MustIntQuotient(1, 0, 1))
	if s.server.Count() != s.doc.Count() {
		t.Errorf("index has %d nodes, document %d", s.server.Count(), s.doc.Count())
	}
	// Every document node key resolves in the share tree.
	for _, n := range xpath.MustParse("//*").Evaluate(s.doc) {
		if _, err := s.server.Lookup(n.Key()); err != nil {
			t.Errorf("key %v missing from index", n.Key())
		}
	}
}
