// Package contentindex implements the extension sketched in the paper's
// conclusion (§5): searching the *data between the tags*, not just tag
// names.
//
//	"We can use a hash function to map the data to an element of Z_p but
//	 in that case the mapping function is no longer invertible. In this
//	 case the data polynomials can be used as an index to the encrypted
//	 data."
//
// Construction: alongside the tag tree, a second polynomial tree is built
// in the same ring — each node's polynomial is the product of one linear
// factor (x − h(w)) per word w of its own text, times its children's
// polynomials, where h is a keyed (HMAC) hash into the ring's tag domain.
// The tree is split into client/server shares exactly like the tag tree.
//
// Because h is not invertible there is no Theorem-1 style verification:
// the polynomial tree is an INDEX. A query narrows the document to
// candidate nodes (plus hash-collision false positives); the client then
// fetches only those nodes' independently encrypted payloads, decrypts,
// and filters locally — which is exactly how the paper proposes to couple
// the index with "the encrypted data".
package contentindex

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
	"strings"
	"unicode"

	"sssearch/internal/drbg"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/xmltree"
)

// Hasher maps words into the ring's usable point domain with a private key.
type Hasher struct {
	key    []byte
	domain *big.Int // points drawn from [1, domain]
}

// NewHasher builds a word hasher for ring r. The private key must stay
// with the client (a server knowing it could dictionary-test words).
func NewHasher(r ring.Ring, key []byte) *Hasher {
	domain := r.MaxTag()
	if domain == nil {
		domain = new(big.Int).Lsh(big.NewInt(1), 31)
	}
	return &Hasher{key: append([]byte(nil), key...), domain: new(big.Int).Set(domain)}
}

// Point hashes a word to its query point h(w) ∈ [1, domain].
func (h *Hasher) Point(word string) *big.Int {
	mac := hmac.New(sha256.New, h.key)
	mac.Write([]byte(strings.ToLower(word)))
	v := new(big.Int).SetBytes(mac.Sum(nil))
	v.Mod(v, h.domain)
	return v.Add(v, big.NewInt(1))
}

// Words tokenizes text into search terms: lower-cased maximal runs of
// letters and digits.
func Words(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Build constructs the content polynomial tree for doc over r.
// Nodes without text contribute the constant 1 (no own factors).
func Build(r ring.Ring, doc *xmltree.Node, h *Hasher) (*polyenc.Tree, error) {
	if doc == nil {
		return nil, errors.New("contentindex: nil document")
	}
	root := buildNode(r, doc, h)
	return &polyenc.Tree{Ring: r, Root: root}, nil
}

func buildNode(r ring.Ring, n *xmltree.Node, h *Hasher) *polyenc.Node {
	out := &polyenc.Node{}
	prod := r.One()
	for _, w := range Words(n.Text) {
		prod = r.Mul(prod, r.Linear(h.Point(w)))
	}
	for _, c := range n.Children {
		ec := buildNode(r, c, h)
		out.Children = append(out.Children, ec)
		prod = r.Mul(prod, ec.Poly)
	}
	out.Poly = prod
	return out
}

// PayloadStore holds each node's independently encrypted text — the
// "encrypted data" the index points into. Server-side artifact.
type PayloadStore struct {
	blobs map[string][]byte // node key → nonce ‖ AES-CTR ciphertext ‖ HMAC tag
}

// payloadKeys derives per-store encryption and MAC keys.
func payloadKeys(master []byte) (encKey, macKey []byte) {
	e := hmac.New(sha256.New, master)
	e.Write([]byte("contentindex/enc"))
	m := hmac.New(sha256.New, master)
	m.Write([]byte("contentindex/mac"))
	return e.Sum(nil), m.Sum(nil)
}

// EncryptPayloads encrypts every node's text under the master key, with a
// deterministic per-node nonce derived from the node path (each node is
// encrypted at most once, so nonce reuse cannot occur).
func EncryptPayloads(master []byte, doc *xmltree.Node) (*PayloadStore, error) {
	encKey, macKey := payloadKeys(master)
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	ps := &PayloadStore{blobs: map[string][]byte{}}
	var rec func(n *xmltree.Node, key drbg.NodeKey) error
	rec = func(n *xmltree.Node, key drbg.NodeKey) error {
		nonceSrc := hmac.New(sha256.New, macKey)
		nonceSrc.Write([]byte("nonce"))
		nonceSrc.Write([]byte(key.String()))
		nonce := nonceSrc.Sum(nil)[:aes.BlockSize]
		ct := make([]byte, len(n.Text))
		cipher.NewCTR(block, nonce).XORKeyStream(ct, []byte(n.Text))
		tag := hmac.New(sha256.New, macKey)
		tag.Write(nonce)
		tag.Write(ct)
		blob := append(append(append([]byte{}, nonce...), ct...), tag.Sum(nil)...)
		ps.blobs[key.String()] = blob
		for i, c := range n.Children {
			if err := rec(c, key.Child(uint32(i))); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(doc, drbg.NodeKey{}); err != nil {
		return nil, err
	}
	return ps, nil
}

// Fetch returns a node's encrypted payload.
func (ps *PayloadStore) Fetch(key drbg.NodeKey) ([]byte, error) {
	blob, ok := ps.blobs[key.String()]
	if !ok {
		return nil, fmt.Errorf("contentindex: no payload for %s", key)
	}
	return blob, nil
}

// Count returns the number of stored payloads.
func (ps *PayloadStore) Count() int { return len(ps.blobs) }

// DecryptPayload authenticates and decrypts a fetched payload.
func DecryptPayload(master []byte, blob []byte) (string, error) {
	if len(blob) < aes.BlockSize+sha256.Size {
		return "", errors.New("contentindex: payload too short")
	}
	encKey, macKey := payloadKeys(master)
	nonce := blob[:aes.BlockSize]
	macTag := blob[len(blob)-sha256.Size:]
	ct := blob[aes.BlockSize : len(blob)-sha256.Size]
	check := hmac.New(sha256.New, macKey)
	check.Write(nonce)
	check.Write(ct)
	if !hmac.Equal(check.Sum(nil), macTag) {
		return "", errors.New("contentindex: payload MAC failed")
	}
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return "", err
	}
	plain := make([]byte, len(ct))
	cipher.NewCTR(block, nonce).XORKeyStream(plain, ct)
	return string(plain), nil
}
