// Package xpath implements the XPath fragment the paper queries with:
// absolute location paths built from child ('/') and descendant ('//')
// steps over element names, plus the '*' wildcard — e.g. //client,
// /customers/client/name, //a/b//c.
//
// The plaintext evaluator here is both the baseline system the scheme is
// compared against and the ground truth the encrypted protocol is tested
// against.
package xpath

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"sssearch/internal/xmltree"
)

// Axis distinguishes the two step connectors.
type Axis uint8

const (
	// AxisChild is the '/' connector: direct children.
	AxisChild Axis = iota
	// AxisDescendant is the '//' connector: any strict descendant
	// (descendant-or-self::node()/child:: in full XPath terms).
	AxisDescendant
)

func (a Axis) String() string {
	if a == AxisDescendant {
		return "//"
	}
	return "/"
}

// Step is one location step: an axis plus a name test ("*" = any element).
type Step struct {
	Axis Axis
	Name string
}

// Wildcard reports whether the step matches any tag.
func (s Step) Wildcard() bool { return s.Name == "*" }

// Matches reports whether the step's name test accepts tag.
func (s Step) Matches(tag string) bool { return s.Name == "*" || s.Name == tag }

func (s Step) String() string { return s.Axis.String() + s.Name }

// Query is a parsed location path.
type Query struct {
	steps []Step
	raw   string
}

// ErrEmptyQuery is returned for empty or axis-only expressions.
var ErrEmptyQuery = errors.New("xpath: empty query")

// Parse compiles an absolute location path. Accepted grammar:
//
//	path := ('/' | '//') step (('/' | '//') step)*
//	step := Name | '*'
func Parse(expr string) (*Query, error) {
	src := strings.TrimSpace(expr)
	if src == "" {
		return nil, ErrEmptyQuery
	}
	if !strings.HasPrefix(src, "/") {
		return nil, fmt.Errorf("xpath: %q: only absolute paths are supported", expr)
	}
	var steps []Step
	i := 0
	for i < len(src) {
		axis := AxisChild
		if src[i] != '/' {
			return nil, fmt.Errorf("xpath: %q: expected '/' at offset %d", expr, i)
		}
		i++
		if i < len(src) && src[i] == '/' {
			axis = AxisDescendant
			i++
		}
		start := i
		for i < len(src) && src[i] != '/' {
			i++
		}
		name := src[start:i]
		if name == "" {
			return nil, fmt.Errorf("xpath: %q: empty step", expr)
		}
		if name != "*" && !validName(name) {
			return nil, fmt.Errorf("xpath: %q: invalid name %q", expr, name)
		}
		steps = append(steps, Step{Axis: axis, Name: name})
	}
	if len(steps) == 0 {
		return nil, ErrEmptyQuery
	}
	return &Query{steps: steps, raw: src}, nil
}

// MustParse is Parse but panics on error (tests, examples).
func MustParse(expr string) *Query {
	q, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return q
}

// Steps returns a copy of the compiled steps.
func (q *Query) Steps() []Step { return append([]Step(nil), q.steps...) }

// Names returns the distinct non-wildcard step names in order of first use.
func (q *Query) Names() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range q.steps {
		if s.Wildcard() || seen[s.Name] {
			continue
		}
		seen[s.Name] = true
		out = append(out, s.Name)
	}
	return out
}

// String returns the canonical form of the query.
func (q *Query) String() string {
	var sb strings.Builder
	for _, s := range q.steps {
		sb.WriteString(s.String())
	}
	return sb.String()
}

// Evaluate returns the matching elements under root, deduplicated, in
// document order. The context of the first step is the (virtual) document
// node whose only child is root, matching standard XPath semantics: /a
// matches the root only if it is named a, //a matches every element named a
// including the root.
func (q *Query) Evaluate(root *xmltree.Node) []*xmltree.Node {
	if root == nil {
		return nil
	}
	current := []*xmltree.Node{} // result of the previous step
	for si, step := range q.steps {
		next := make([]*xmltree.Node, 0, len(current))
		seen := make(map[*xmltree.Node]bool)
		add := func(n *xmltree.Node) {
			if !seen[n] {
				seen[n] = true
				next = append(next, n)
			}
		}
		if si == 0 {
			// Document-node context.
			switch step.Axis {
			case AxisChild:
				if step.Matches(root.Tag) {
					add(root)
				}
			case AxisDescendant:
				root.Walk(func(n *xmltree.Node) bool {
					if step.Matches(n.Tag) {
						add(n)
					}
					return true
				})
			}
		} else {
			for _, ctx := range current {
				switch step.Axis {
				case AxisChild:
					for _, c := range ctx.Children {
						if step.Matches(c.Tag) {
							add(c)
						}
					}
				case AxisDescendant:
					for _, c := range ctx.Children {
						c.Walk(func(n *xmltree.Node) bool {
							if step.Matches(n.Tag) {
								add(n)
							}
							return true
						})
					}
				}
			}
		}
		current = next
		if len(current) == 0 {
			return nil
		}
	}
	return sortDocOrder(root, current)
}

// sortDocOrder orders nodes by position in a preorder walk of root.
// Intermediate steps can enqueue overlapping subtrees out of order; a single
// O(n) walk restores document order.
func sortDocOrder(root *xmltree.Node, nodes []*xmltree.Node) []*xmltree.Node {
	if len(nodes) <= 1 {
		return nodes
	}
	want := make(map[*xmltree.Node]bool, len(nodes))
	for _, n := range nodes {
		want[n] = true
	}
	out := make([]*xmltree.Node, 0, len(nodes))
	root.Walk(func(n *xmltree.Node) bool {
		if want[n] {
			out = append(out, n)
		}
		return true
	})
	return out
}

// validName checks an XML Name (mirrors the xmltree parser's rule).
func validName(s string) bool {
	for i, r := range s {
		if i == 0 {
			if !(r == '_' || r == ':' || unicode.IsLetter(r)) {
				return false
			}
			continue
		}
		if !(r == '_' || r == ':' || r == '-' || r == '.' ||
			unicode.IsLetter(r) || unicode.IsDigit(r)) {
			return false
		}
	}
	return utf8.ValidString(s) && s != ""
}
