package xpath

import (
	"fmt"
	"math/rand"
	"testing"

	"sssearch/internal/xmltree"
)

const paperDoc = `<customers><client><name/></client><client><name/></client></customers>`

func doc(t *testing.T, s string) *xmltree.Node {
	t.Helper()
	n, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func tags(nodes []*xmltree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Tag
	}
	return out
}

func paths(nodes []*xmltree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.PathString()
	}
	return out
}

func TestParseValid(t *testing.T) {
	cases := map[string][]Step{
		"//client": {{AxisDescendant, "client"}},
		"/customers/client": {
			{AxisChild, "customers"}, {AxisChild, "client"},
		},
		"//a/b//c": {
			{AxisDescendant, "a"}, {AxisChild, "b"}, {AxisDescendant, "c"},
		},
		"/*/name":  {{AxisChild, "*"}, {AxisChild, "name"}},
		" //x ":    {{AxisDescendant, "x"}},
		"/a-b/c.d": {{AxisChild, "a-b"}, {AxisChild, "c.d"}},
	}
	for expr, want := range cases {
		q, err := Parse(expr)
		if err != nil {
			t.Errorf("Parse(%q): %v", expr, err)
			continue
		}
		got := q.Steps()
		if len(got) != len(want) {
			t.Errorf("Parse(%q) steps = %v", expr, got)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("Parse(%q)[%d] = %v, want %v", expr, i, got[i], want[i])
			}
		}
	}
}

func TestParseInvalid(t *testing.T) {
	for _, expr := range []string{
		"", "   ", "client", "a/b", "/", "//", "/a//", "/a//", "///a",
		"/a/1bad", "/a/b c", "/a/&x",
	} {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) accepted", expr)
		}
	}
}

func TestQueryStringCanonical(t *testing.T) {
	q := MustParse(" //a/b//c ")
	if q.String() != "//a/b//c" {
		t.Errorf("String = %q", q.String())
	}
}

func TestNames(t *testing.T) {
	q := MustParse("//a/b//a/*/c")
	got := q.Names()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("Names = %v", got)
	}
}

func TestEvaluatePaperQuery(t *testing.T) {
	root := doc(t, paperDoc)
	// The paper's running query //client.
	got := MustParse("//client").Evaluate(root)
	if len(got) != 2 || got[0].Tag != "client" || got[1].Tag != "client" {
		t.Fatalf("//client = %v", tags(got))
	}
	// Root is matched by //customers.
	got = MustParse("//customers").Evaluate(root)
	if len(got) != 1 || got[0] != root {
		t.Error("//customers should match the root")
	}
	// /customers/client/name: both name leaves.
	got = MustParse("/customers/client/name").Evaluate(root)
	if len(got) != 2 || got[0].Tag != "name" {
		t.Errorf("path query = %v", paths(got))
	}
	// /client matches nothing (root is customers).
	if got := MustParse("/client").Evaluate(root); len(got) != 0 {
		t.Errorf("/client = %v", tags(got))
	}
	// //customers//name: names strictly below root.
	got = MustParse("//customers//name").Evaluate(root)
	if len(got) != 2 {
		t.Errorf("//customers//name = %v", paths(got))
	}
	// Miss: //zzz.
	if got := MustParse("//zzz").Evaluate(root); got != nil {
		t.Errorf("//zzz = %v", tags(got))
	}
}

func TestEvaluateWildcard(t *testing.T) {
	root := doc(t, paperDoc)
	got := MustParse("//*").Evaluate(root)
	if len(got) != 5 {
		t.Errorf("//* matched %d, want 5", len(got))
	}
	got = MustParse("/*/client").Evaluate(root)
	if len(got) != 2 {
		t.Errorf("/*/client = %v", tags(got))
	}
	got = MustParse("/customers/*").Evaluate(root)
	if len(got) != 2 || got[0].Tag != "client" {
		t.Errorf("/customers/* = %v", tags(got))
	}
}

func TestEvaluateNested(t *testing.T) {
	// a containing a — descendant steps must dedup and keep doc order.
	root := doc(t, `<a><a><b/></a><b/><c><a><b/></a></c></a>`)
	got := MustParse("//a//b").Evaluate(root)
	if len(got) != 3 {
		t.Fatalf("//a//b = %v", paths(got))
	}
	got = MustParse("//a/b").Evaluate(root)
	if len(got) != 3 { // b under inner a (x2 via outer too, dedup) + direct b
		t.Fatalf("//a/b = %v", paths(got))
	}
	// /a/a/b: only the b under the first nested a.
	got = MustParse("/a/a/b").Evaluate(root)
	if len(got) != 1 {
		t.Fatalf("/a/a/b = %v", paths(got))
	}
}

func TestEvaluateDocumentOrderAndDedup(t *testing.T) {
	root := doc(t, `<r><x><y id="1"/></x><y id="2"/><x><y id="3"/></x></r>`)
	got := MustParse("//y").Evaluate(root)
	if len(got) != 3 {
		t.Fatalf("//y = %v", paths(got))
	}
	for i, want := range []string{"1", "2", "3"} {
		if v, _ := got[i].Attr("id"); v != want {
			t.Errorf("position %d: id=%s want %s", i, v, want)
		}
	}
	// Overlapping contexts must not duplicate results.
	got = MustParse("//r//y").Evaluate(root)
	if len(got) != 3 {
		t.Errorf("//r//y duplicated: %v", paths(got))
	}
}

func TestEvaluateNilRoot(t *testing.T) {
	if got := MustParse("//a").Evaluate(nil); got != nil {
		t.Error("nil root should yield nil")
	}
}

// buildRandomTree makes a tree with controlled tags for the oracle test.
func buildRandomTree(r *rand.Rand, depth, fan int) *xmltree.Node {
	tags := []string{"a", "b", "c", "d"}
	n := xmltree.NewNode(tags[r.Intn(len(tags))])
	if depth > 0 {
		k := r.Intn(fan + 1)
		for i := 0; i < k; i++ {
			n.AppendChild(buildRandomTree(r, depth-1, fan))
		}
	}
	return n
}

// TestDescendantOracle: //t must equal a plain filtered walk.
func TestDescendantOracle(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 50; trial++ {
		root := buildRandomTree(r, 5, 3)
		for _, tag := range []string{"a", "b", "c", "d", "nope"} {
			want := []*xmltree.Node{}
			root.Walk(func(n *xmltree.Node) bool {
				if n.Tag == tag {
					want = append(want, n)
				}
				return true
			})
			got := MustParse("//" + tag).Evaluate(root)
			if len(got) != len(want) {
				t.Fatalf("//%s: %d matches, walk found %d", tag, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("//%s: order mismatch at %d", tag, i)
				}
			}
		}
	}
}

// TestChildStepOracle: /r/t equals manual child filtering.
func TestChildStepOracle(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	for trial := 0; trial < 30; trial++ {
		root := buildRandomTree(r, 4, 4)
		q := fmt.Sprintf("/%s/a", root.Tag)
		got := MustParse(q).Evaluate(root)
		want := 0
		for _, c := range root.Children {
			if c.Tag == "a" {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("%s: got %d, want %d", q, len(got), want)
		}
	}
}

func TestAxisStrings(t *testing.T) {
	if AxisChild.String() != "/" || AxisDescendant.String() != "//" {
		t.Error("axis strings wrong")
	}
	s := Step{AxisDescendant, "x"}
	if s.String() != "//x" {
		t.Error("step string wrong")
	}
	if !(Step{AxisChild, "*"}).Wildcard() {
		t.Error("wildcard detection wrong")
	}
}

func BenchmarkEvaluateDescendant(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	root := buildRandomTree(r, 8, 4)
	q := MustParse("//a//b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Evaluate(root)
	}
}
