package sharing

import (
	"math/big"
	"sync"
	"testing"

	"sssearch/internal/drbg"
	"sssearch/internal/metrics"
	"sssearch/internal/ring"
)

// TestSharedClientMatchesPrivate: a client attached to a SharedPadCache
// must be observationally identical to a private seed-only client —
// Share, PackedShare and EvalShares byte for byte, over every node,
// repeated so the second pass exercises the shared LRUs.
func TestSharedClientMatchesPrivate(t *testing.T) {
	r := ring.MustFp(257)
	_, keys, seed := fixtureKeys(t, r)
	sp := NewSharedPadCache(r, seed)
	if !sp.Active() {
		t.Fatal("shared cache inactive on a fast ring")
	}
	if !sp.Matches(r, seed) {
		t.Fatal("Matches rejected its own material")
	}
	if sp.Matches(r, testSeed(9)) {
		t.Fatal("Matches accepted a foreign seed")
	}
	shared := sp.NewClient()
	private := NewSeedClient(r, seed)
	points := []*big.Int{big.NewInt(3), big.NewInt(251), big.NewInt(1)}
	for pass := 0; pass < 2; pass++ {
		for _, k := range keys {
			sv, err := shared.EvalShares(k, points)
			if err != nil {
				t.Fatal(err)
			}
			pv, err := private.EvalShares(k, points)
			if err != nil {
				t.Fatal(err)
			}
			for i := range points {
				if sv[i].Cmp(pv[i]) != 0 {
					t.Fatalf("pass %d node %s point %s: shared %s != private %s", pass, k, points[i], sv[i], pv[i])
				}
			}
			ss, err := shared.Share(k)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := private.Share(k)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Equal(ss, ps) {
				t.Fatalf("pass %d node %s: shared Share diverged", pass, k)
			}
			svec, ok, err := shared.PackedShare(k)
			if err != nil || !ok {
				t.Fatalf("shared PackedShare(%s): ok=%v err=%v", k, ok, err)
			}
			pvec, _, err := private.PackedShare(k)
			if err != nil {
				t.Fatal(err)
			}
			for i := range svec {
				if svec[i] != pvec[i] {
					t.Fatalf("pass %d node %s: packed share word %d diverged", pass, k, i)
				}
			}
		}
	}
}

// TestSharedPadSingleflight: N concurrent first touches of ONE node pad
// run the DRBG regeneration exactly once — every other session lands as
// a shared-LRU hit or a singleflight piggyback. The double-check of the
// pad LRU under the singleflight mutex makes the miss count
// deterministic, so this asserts equality, not bounds.
func TestSharedPadSingleflight(t *testing.T) {
	r := ring.MustFp(257)
	_, keys, seed := fixtureKeys(t, r)
	sp := NewSharedPadCache(r, seed)
	agg := &metrics.Counters{}
	const sessions = 16
	clients := make([]*SeedClient, sessions)
	for i := range clients {
		clients[i] = sp.NewClient()
		clients[i].SetCounters(agg)
	}
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *SeedClient) {
			defer wg.Done()
			if _, _, err := c.PackedShare(keys[0]); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
	s := agg.Snapshot()
	if s.SharedPadMiss != 1 {
		t.Fatalf("SharedPadMiss = %d, want exactly 1 (singleflight)", s.SharedPadMiss)
	}
	if got := s.SharedPadHits + s.SharedPadSingleflight; got != sessions-1 {
		t.Fatalf("hits+singleflight = %d (%d hits, %d piggybacks), want %d",
			got, s.SharedPadHits, s.SharedPadSingleflight, sessions-1)
	}
}

// TestSharedEvalSingleflight: N concurrent identical (node, point-set)
// evaluations run the Horner pass once; piggybacked waiters count as
// eval hits. Only the one winning evaluation touches the pad layer.
func TestSharedEvalSingleflight(t *testing.T) {
	r := ring.MustFp(257)
	_, keys, seed := fixtureKeys(t, r)
	sp := NewSharedPadCache(r, seed)
	agg := &metrics.Counters{}
	const sessions = 16
	clients := make([]*SeedClient, sessions)
	for i := range clients {
		clients[i] = sp.NewClient()
		clients[i].SetCounters(agg)
	}
	points := []*big.Int{big.NewInt(7)}
	results := make([][]*big.Int, sessions)
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *SeedClient) {
			defer wg.Done()
			vals, err := c.EvalShares(keys[0], points)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = vals
		}(i, c)
	}
	wg.Wait()
	for i := 1; i < sessions; i++ {
		if results[i][0].Cmp(results[0][0]) != 0 {
			t.Fatalf("session %d got %s, session 0 got %s", i, results[i][0], results[0][0])
		}
	}
	s := agg.Snapshot()
	if s.ShareEvalMiss != 1 {
		t.Fatalf("ShareEvalMiss = %d, want exactly 1", s.ShareEvalMiss)
	}
	if s.ShareEvalHits != sessions-1 {
		t.Fatalf("ShareEvalHits = %d, want %d", s.ShareEvalHits, sessions-1)
	}
	if s.SharedPadMiss != 1 || s.SharedPadHits != 0 {
		t.Fatalf("pad layer: miss=%d hits=%d, want 1/0 (only the winner evaluates)", s.SharedPadMiss, s.SharedPadHits)
	}
}

// TestSharedEvalLRUHit: a repeated (node, point-set) request is answered
// from the shared eval LRU without touching the pad layer again.
func TestSharedEvalLRUHit(t *testing.T) {
	r := ring.MustFp(257)
	_, keys, seed := fixtureKeys(t, r)
	sp := NewSharedPadCache(r, seed)
	c := sp.NewClient()
	points := []*big.Int{big.NewInt(5), big.NewInt(11)}
	first, err := c.EvalShares(keys[0], points)
	if err != nil {
		t.Fatal(err)
	}
	pre := c.Counters().Snapshot()
	second, err := c.EvalShares(keys[0], points)
	if err != nil {
		t.Fatal(err)
	}
	d := c.Counters().Snapshot().Sub(pre)
	if d.ShareEvalHits != 1 || d.ShareEvalMiss != 0 || d.SharedPadHits != 0 || d.SharedPadMiss != 0 {
		t.Fatalf("repeat request: evalHits=%d evalMiss=%d padHits=%d padMiss=%d, want 1/0/0/0",
			d.ShareEvalHits, d.ShareEvalMiss, d.SharedPadHits, d.SharedPadMiss)
	}
	for i := range first {
		if first[i].Cmp(second[i]) != 0 {
			t.Fatalf("cached eval %d diverged: %s vs %s", i, second[i], first[i])
		}
	}
	// Cached values must be fresh big.Ints: mutating a result must not
	// poison later answers.
	second[0].SetInt64(-1)
	third, err := c.EvalShares(keys[0], points)
	if err != nil {
		t.Fatal(err)
	}
	if third[0].Cmp(first[0]) != 0 {
		t.Fatal("mutating a returned value corrupted the shared eval cache")
	}
}

// TestEvalSharesEdgePoints: zero-point and duplicate-point sets across
// all three ShareSource implementations — private SeedClient, shared
// SeedClient, StaticSource.
func TestEvalSharesEdgePoints(t *testing.T) {
	r := ring.MustFp(257)
	server, keys, seed := fixtureKeys(t, r)
	sp := NewSharedPadCache(r, seed)
	static, err := NewStaticSource(r, mustMaterialize(t, r, seed, server))
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string]MultiPointSource{
		"private": NewSeedClient(r, seed),
		"shared":  sp.NewClient(),
		"static":  static,
	}
	dup := []*big.Int{big.NewInt(9), big.NewInt(9), big.NewInt(2), big.NewInt(9)}
	for name, src := range sources {
		empty, err := src.EvalShares(keys[0], nil)
		if err != nil {
			t.Fatalf("%s: zero-point EvalShares: %v", name, err)
		}
		if len(empty) != 0 {
			t.Fatalf("%s: zero-point EvalShares returned %d values", name, len(empty))
		}
		vals, err := src.EvalShares(keys[0], dup)
		if err != nil {
			t.Fatalf("%s: duplicate-point EvalShares: %v", name, err)
		}
		if len(vals) != len(dup) {
			t.Fatalf("%s: got %d values for %d points", name, len(vals), len(dup))
		}
		if vals[0].Cmp(vals[1]) != 0 || vals[0].Cmp(vals[3]) != 0 {
			t.Fatalf("%s: duplicate points disagreed: %v", name, vals)
		}
		if vals[0].Cmp(vals[2]) == 0 {
			t.Logf("%s: note: distinct points coincided (possible but unlikely)", name)
		}
	}
}

func mustMaterialize(t *testing.T, r ring.Ring, seed drbg.Seed, shape *Tree) *Tree {
	t.Helper()
	tree, err := Materialize(r, seed, shape)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestSharedCacheInertOnSlowRing: on rings without the word-sized fast
// path the cache is inert and NewClient degrades to a working private
// client.
func TestSharedCacheInertOnSlowRing(t *testing.T) {
	r := ring.MustIntQuotient(1, 0, 1)
	_, keys, seed := fixtureKeys(t, r)
	sp := NewSharedPadCache(r, seed)
	if sp.Active() {
		t.Fatal("cache claims active on a non-fast ring")
	}
	c := sp.NewClient()
	ref := NewSeedClient(r, seed)
	got, err := c.Share(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Share(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(got, want) {
		t.Fatal("inert-cache client diverged from the private client")
	}
}

// TestSeedClientSetterRaces pins the SetCounters / SetShareCacheNodes
// concurrency contract: both may be called while queries are in flight
// (run under -race in CI).
func TestSeedClientSetterRaces(t *testing.T) {
	r := ring.MustFp(257)
	_, keys, seed := fixtureKeys(t, r)
	c := NewSeedClient(r, seed)
	points := []*big.Int{big.NewInt(4)}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, k := range keys {
					if _, _, err := c.PackedShare(k); err != nil {
						t.Error(err)
						return
					}
					if _, err := c.EvalShares(k, points); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		c.SetCounters(&metrics.Counters{})
		c.SetShareCacheNodes(i % 8 * 64)
	}
	close(done)
	wg.Wait()
}
