package sharing

import (
	"bytes"
	"crypto/sha256"
	"math/big"
	"testing"

	"sssearch/internal/ring"
	"sssearch/internal/shamir"
)

// maskRng returns a fresh reader yielding the same 32 mask-seed bytes on
// every call, so repeated MultiShare invocations draw identical mask
// streams and their outputs are comparable byte for byte.
func maskRng(label string) *bytes.Reader {
	sum := sha256.Sum256([]byte(label))
	return bytes.NewReader(sum[:])
}

// TestMultiSplitParallelismDeterminism is the MultiSplit determinism
// contract: the parallel packed walk at Parallelism 1, 2 and 8 must
// reproduce the sequential big.Int reference byte for byte — per-node
// mask streams leave no schedule-dependent state, and the vectorized
// share arithmetic (ScalarMulAddVec over precomputed point powers) must
// agree with the reference's coefficient-wise Horner evaluation.
func TestMultiSplitParallelismDeterminism(t *testing.T) {
	r := ring.MustFp(257)
	const k, n = 3, 5
	for _, nodes := range []int{1, 17, 230} {
		enc, seed := parallelFixture(t, r, nodes, int64(nodes)*5+7, "multi-par-det")
		ref, err := MultiSplitSequential(enc, seed, k, n, maskRng("multi-det"))
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]byte, n)
		for j, s := range ref {
			if want[j], err = s.Tree.MarshalBinary(); err != nil {
				t.Fatal(err)
			}
		}
		for _, par := range []int{1, 2, 8} {
			shares, err := MultiSplitWithOpts(enc, seed, k, n, maskRng("multi-det"), MultiOpts{Parallelism: par})
			if err != nil {
				t.Fatalf("nodes=%d par=%d: %v", nodes, par, err)
			}
			for j, s := range shares {
				if s.X != uint32(j+1) {
					t.Fatalf("share %d has X=%d", j, s.X)
				}
				got, err := s.Tree.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want[j]) {
					t.Fatalf("nodes=%d Parallelism=%d: server %d tree differs from sequential reference", nodes, par, j)
				}
			}
		}
	}
}

// TestMultiShareThresholdProperty: any k of the n parallel-generated
// share trees must Shamir-reconstruct the underlying rest polynomial at
// every node (coefficient-wise), tying the vectorized share generation
// back to the scheme it implements.
func TestMultiShareThresholdProperty(t *testing.T) {
	r := ring.MustFp(31)
	const k, n = 2, 4
	enc, seed := parallelFixture(t, r, 25, 11, "multi-thresh")
	rest, err := Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := MultiShare(r, rest, k, n, maskRng("thresh"))
	if err != nil {
		t.Fatal(err)
	}
	f := r.Field()
	// Walk via the rest tree's shape (all server trees share it).
	var check func(path []int)
	var lookup func(tr *Tree, path []int) *Node
	lookup = func(tr *Tree, path []int) *Node {
		cur := tr.Root
		for _, i := range path {
			cur = cur.Children[i]
		}
		return cur
	}
	check = func(path []int) {
		restNode := lookup(rest, path)
		restPoly := restNode.Polynomial()
		for i := 0; i < r.DegreeBound(); i++ {
			// Reconstruct coefficient i from servers {0, 2} (a non-trivial
			// k-subset).
			pts := []shamir.Share{
				{X: shares[0].X, Y: lookup(shares[0].Tree, path).Polynomial().Coeff(i)},
				{X: shares[2].X, Y: lookup(shares[2].Tree, path).Polynomial().Coeff(i)},
			}
			got, err := shamir.InterpolateAt(f, pts, big.NewInt(0), k)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(f.Reduce(restPoly.Coeff(i))) != 0 {
				t.Fatalf("path %v coeff %d: reconstructed %s, want %s", path, i, got, f.Reduce(restPoly.Coeff(i)))
			}
		}
		for ci := range restNode.Children {
			check(append(append([]int{}, path...), ci))
		}
	}
	check(nil)
}

// TestMultiShareFastOffFallback: with the fast path off MultiShare takes
// the sequential big.Int walk; the shares must still reconstruct the rest
// tree (internal consistency — the mask stream itself legitimately
// differs from the fast-path one, like ring.Rand's).
func TestMultiShareFastOffFallback(t *testing.T) {
	r := ring.MustFp(31)
	enc, seed := parallelFixture(t, r, 12, 3, "multi-fastoff")
	rest, err := Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	r.SetFast(false)
	defer r.SetFast(true)
	const k, n = 2, 3
	shares, err := MultiShare(r, rest, k, n, maskRng("fastoff"))
	if err != nil {
		t.Fatal(err)
	}
	f := r.Field()
	root := rest.Root.Polynomial()
	for i := 0; i < r.DegreeBound(); i++ {
		pts := []shamir.Share{
			{X: shares[1].X, Y: shares[1].Tree.Root.Polynomial().Coeff(i)},
			{X: shares[2].X, Y: shares[2].Tree.Root.Polynomial().Coeff(i)},
		}
		got, err := shamir.InterpolateAt(f, pts, big.NewInt(0), k)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(f.Reduce(root.Coeff(i))) != 0 {
			t.Fatalf("fast-off coeff %d: reconstructed %s, want %s", i, got, f.Reduce(root.Coeff(i)))
		}
	}
}
