// Package sharing implements §4.2 of the paper: splitting an encoded
// polynomial tree into a client part and a server part such that
// client + server = original in the ring, with the client part generated
// from a seeded DRBG so the client stores nothing but the seed.
//
// It also implements the paper's multi-server extension: the server part
// can be Shamir-shared coefficient-wise across n servers with threshold k,
// and — because both Lagrange reconstruction and polynomial evaluation are
// linear — the client can recombine *evaluations* from any k servers
// directly, without ever reconstructing polynomials.
package sharing

import (
	"errors"
	"fmt"
	"math/big"

	"sssearch/internal/drbg"
	"sssearch/internal/lru"
	"sssearch/internal/poly"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
)

// ShareLabel is the DRBG domain-separation label for client share streams.
//
// v2 marks the packed fast-path share stream: F_p pads are drawn through
// the bulk sampler (fastfield.RandVec via ring.RandPacked), which consumes
// the per-node DRBG stream in large reads instead of one tiny read per
// coefficient. The per-coefficient distribution is unchanged, but the
// byte-consumption pattern is not, so pads derived under the v1 label
// (pre-fast-path store files) would no longer cancel; the label bump
// domain-separates the two streams instead of letting them silently mix.
const ShareLabel = "sss/client-share/v2"

// Node is one node of a share tree.
type Node struct {
	Poly     poly.Poly
	Children []*Node
}

// Tree is a share tree: one polynomial per document node, mirroring the
// document shape.
type Tree struct {
	Root *Node
}

// Walk visits the share tree in preorder with node keys. Returning false
// prunes the subtree.
func (t *Tree) Walk(fn func(key drbg.NodeKey, n *Node) bool) {
	if t.Root == nil {
		return
	}
	walkNode(t.Root, drbg.NodeKey{}, fn)
}

func walkNode(n *Node, key drbg.NodeKey, fn func(drbg.NodeKey, *Node) bool) {
	if !fn(key, n) {
		return
	}
	for i, c := range n.Children {
		walkNode(c, key.Child(uint32(i)), fn)
	}
}

// Count returns the number of nodes.
func (t *Tree) Count() int {
	total := 0
	t.Walk(func(drbg.NodeKey, *Node) bool { total++; return true })
	return total
}

// Lookup resolves a node key.
func (t *Tree) Lookup(key drbg.NodeKey) (*Node, error) {
	if t.Root == nil {
		return nil, errors.New("sharing: empty tree")
	}
	cur := t.Root
	for depth, idx := range key {
		if int(idx) >= len(cur.Children) {
			return nil, fmt.Errorf("sharing: key %v invalid at depth %d", key, depth)
		}
		cur = cur.Children[int(idx)]
	}
	return cur, nil
}

// Split derives the deterministic client share for every node of enc from
// seed and returns the server tree (original − client). The client needs to
// keep only the seed; SeedClient regenerates its shares on demand.
func Split(enc *polyenc.Tree, seed drbg.Seed) (*Tree, error) {
	if enc == nil || enc.Root == nil {
		return nil, errors.New("sharing: nil encoded tree")
	}
	d := drbg.NewDeriver(seed, ShareLabel)
	root, err := splitNode(enc.Ring, enc.Root, drbg.NodeKey{}, d)
	if err != nil {
		return nil, err
	}
	return &Tree{Root: root}, nil
}

func splitNode(r ring.Ring, n *polyenc.Node, key drbg.NodeKey, d *drbg.Deriver) (*Node, error) {
	pad, err := r.Rand(d.ForNode(key))
	if err != nil {
		return nil, fmt.Errorf("sharing: node %s: %w", key, err)
	}
	out := &Node{Poly: r.Sub(n.Poly, pad)}
	for i, c := range n.Children {
		sc, err := splitNode(r, c, key.Child(uint32(i)), d)
		if err != nil {
			return nil, err
		}
		out.Children = append(out.Children, sc)
	}
	return out, nil
}

// DefaultShareCacheNodes bounds the seed-only client's packed-share LRU:
// the most recently touched node pads are kept in packed form so hot
// nodes (the root levels every query walks) are not re-derived from the
// DRBG on each visit. At the default, a F_257 deployment holds at most
// 4096 × 256 words ≈ 8 MiB — a mid-point of the §4.2 seed-vs-materialized
// trade-off that still leaves the durable client secret at 32 bytes.
const DefaultShareCacheNodes = 4096

// SeedClient regenerates client share polynomials from the seed alone —
// the §4.2 "store only the random seed" mode.
//
// On rings with the word-sized fast path, shares are regenerated directly
// into packed []uint64 vectors (no big.Int allocation) and the most
// recently used pads are kept in a bounded LRU cache; see
// DefaultShareCacheNodes.
type SeedClient struct {
	r ring.Ring
	d *drbg.Deriver
	// fp is non-nil when r carries the word-sized fast path.
	fp *ring.FpCyclotomic
	// cache maps node-key strings to packed share pads. Cached vectors
	// are shared and must never be mutated.
	cache *lru.Cache[string, []uint64]
}

// NewSeedClient builds the seed-only client view.
func NewSeedClient(r ring.Ring, seed drbg.Seed) *SeedClient {
	c := &SeedClient{r: r, d: drbg.NewDeriver(seed, ShareLabel)}
	if fp, ok := r.(*ring.FpCyclotomic); ok && fp.Fast() != nil {
		c.fp = fp
		c.cache = lru.New[string, []uint64](DefaultShareCacheNodes)
	}
	return c
}

// SetShareCacheNodes re-bounds the packed-share cache to at most n node
// pads (0 disables caching). Only meaningful on fast-path rings.
func (c *SeedClient) SetShareCacheNodes(n int) {
	if c.fp != nil {
		c.cache = lru.New[string, []uint64](n)
	}
}

// Ring returns the client's ring.
func (c *SeedClient) Ring() ring.Ring { return c.r }

// packedShare returns the node's share pad in packed form, regenerating
// it from the seed on a cache miss. The returned slice is shared — read
// only.
func (c *SeedClient) packedShare(key drbg.NodeKey) ([]uint64, error) {
	ks := key.String()
	if v, ok := c.cache.Get(ks); ok {
		return v, nil
	}
	vec := make([]uint64, c.fp.DegreeBound())
	if err := c.fp.RandPacked(c.d.ForNode(key), vec); err != nil {
		return nil, fmt.Errorf("sharing: node %s: %w", key, err)
	}
	c.cache.Add(ks, vec)
	return vec, nil
}

// PackedShare implements PackedShareSource.
func (c *SeedClient) PackedShare(key drbg.NodeKey) ([]uint64, bool, error) {
	if c.fp == nil {
		return nil, false, nil
	}
	vec, err := c.packedShare(key)
	if err != nil {
		return nil, false, err
	}
	return vec, true, nil
}

// Share regenerates the client share polynomial of the given node.
func (c *SeedClient) Share(key drbg.NodeKey) (poly.Poly, error) {
	if c.fp != nil {
		vec, err := c.packedShare(key)
		if err != nil {
			return poly.Poly{}, err
		}
		return c.fp.Unpack(vec), nil
	}
	return c.r.Rand(c.d.ForNode(key))
}

// EvalShare regenerates the node share and evaluates it at point a
// (modulo the ring's evaluation modulus at a).
func (c *SeedClient) EvalShare(key drbg.NodeKey, a *big.Int) (*big.Int, error) {
	if c.fp != nil {
		vals, err := c.EvalShares(key, []*big.Int{a})
		if err != nil {
			return nil, err
		}
		return vals[0], nil
	}
	share, err := c.Share(key)
	if err != nil {
		return nil, err
	}
	return c.r.Eval(share, a)
}

// EvalShares implements MultiPointSource: the share pad is regenerated
// (or fetched from the cache) once and evaluated at every point in a
// single multi-point Horner pass — the DRBG regeneration, not the
// arithmetic, dominates seed-only querying, so one pass per node is the
// difference between O(points) and O(1) regenerations.
func (c *SeedClient) EvalShares(key drbg.NodeKey, points []*big.Int) ([]*big.Int, error) {
	if c.fp == nil {
		share, err := c.Share(key)
		if err != nil {
			return nil, err
		}
		out := make([]*big.Int, len(points))
		for i, p := range points {
			if out[i], err = c.r.Eval(share, p); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	vec, err := c.packedShare(key)
	if err != nil {
		return nil, err
	}
	return evalPackedMany(c.fp, vec, points)
}

// evalPackedMany evaluates one packed polynomial at every point, boxing
// the word results into the big.Int boundary representation.
func evalPackedMany(fp *ring.FpCyclotomic, vec []uint64, points []*big.Int) ([]*big.Int, error) {
	xs := make([]uint64, len(points))
	for i, p := range points {
		x, err := fp.PackPoint(p)
		if err != nil {
			return nil, err
		}
		xs[i] = x
	}
	ff := fp.Fast()
	ff.MFormVec(xs, xs)
	dst := make([]uint64, len(xs))
	ff.EvalMany(vec, xs, dst)
	out := make([]*big.Int, len(dst))
	for i, v := range dst {
		out[i] = new(big.Int).SetUint64(v)
	}
	return out, nil
}

// Materialize expands the client's full share tree for a given document
// shape (taken from the server tree). This trades client memory for speed —
// experiment E11 measures the trade.
func Materialize(r ring.Ring, seed drbg.Seed, shape *Tree) (*Tree, error) {
	if shape == nil || shape.Root == nil {
		return nil, errors.New("sharing: nil shape")
	}
	c := NewSeedClient(r, seed)
	var build func(n *Node, key drbg.NodeKey) (*Node, error)
	build = func(n *Node, key drbg.NodeKey) (*Node, error) {
		share, err := c.Share(key)
		if err != nil {
			return nil, err
		}
		out := &Node{Poly: share}
		for i, ch := range n.Children {
			bc, err := build(ch, key.Child(uint32(i)))
			if err != nil {
				return nil, err
			}
			out.Children = append(out.Children, bc)
		}
		return out, nil
	}
	root, err := build(shape.Root, drbg.NodeKey{})
	if err != nil {
		return nil, err
	}
	return &Tree{Root: root}, nil
}

// Reconstruct adds client and server trees back into the encoded tree.
// Shapes must match exactly.
func Reconstruct(r ring.Ring, client, server *Tree) (*polyenc.Tree, error) {
	if client == nil || server == nil || client.Root == nil || server.Root == nil {
		return nil, errors.New("sharing: nil share tree")
	}
	var merge func(c, s *Node, key drbg.NodeKey) (*polyenc.Node, error)
	merge = func(c, s *Node, key drbg.NodeKey) (*polyenc.Node, error) {
		if len(c.Children) != len(s.Children) {
			return nil, fmt.Errorf("sharing: shape mismatch at %s: %d vs %d children",
				key, len(c.Children), len(s.Children))
		}
		out := &polyenc.Node{Poly: r.Add(c.Poly, s.Poly)}
		for i := range c.Children {
			mc, err := merge(c.Children[i], s.Children[i], key.Child(uint32(i)))
			if err != nil {
				return nil, err
			}
			out.Children = append(out.Children, mc)
		}
		return out, nil
	}
	root, err := merge(client.Root, server.Root, drbg.NodeKey{})
	if err != nil {
		return nil, err
	}
	return &polyenc.Tree{Ring: r, Root: root}, nil
}

// ReconstructFromSeed is Reconstruct with a seed-only client: the client
// tree is regenerated on the fly from the server tree's shape.
func ReconstructFromSeed(r ring.Ring, seed drbg.Seed, server *Tree) (*polyenc.Tree, error) {
	client, err := Materialize(r, seed, server)
	if err != nil {
		return nil, err
	}
	return Reconstruct(r, client, server)
}
