// Package sharing implements §4.2 of the paper: splitting an encoded
// polynomial tree into a client part and a server part such that
// client + server = original in the ring, with the client part generated
// from a seeded DRBG so the client stores nothing but the seed.
//
// It also implements the paper's multi-server extension: the server part
// can be Shamir-shared coefficient-wise across n servers with threshold k,
// and — because both Lagrange reconstruction and polynomial evaluation are
// linear — the client can recombine *evaluations* from any k servers
// directly, without ever reconstructing polynomials.
package sharing

import (
	"errors"
	"fmt"
	"math/big"

	"sssearch/internal/drbg"
	"sssearch/internal/poly"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
)

// ShareLabel is the DRBG domain-separation label for client share streams.
const ShareLabel = "sss/client-share/v1"

// Node is one node of a share tree.
type Node struct {
	Poly     poly.Poly
	Children []*Node
}

// Tree is a share tree: one polynomial per document node, mirroring the
// document shape.
type Tree struct {
	Root *Node
}

// Walk visits the share tree in preorder with node keys. Returning false
// prunes the subtree.
func (t *Tree) Walk(fn func(key drbg.NodeKey, n *Node) bool) {
	if t.Root == nil {
		return
	}
	walkNode(t.Root, drbg.NodeKey{}, fn)
}

func walkNode(n *Node, key drbg.NodeKey, fn func(drbg.NodeKey, *Node) bool) {
	if !fn(key, n) {
		return
	}
	for i, c := range n.Children {
		walkNode(c, key.Child(uint32(i)), fn)
	}
}

// Count returns the number of nodes.
func (t *Tree) Count() int {
	total := 0
	t.Walk(func(drbg.NodeKey, *Node) bool { total++; return true })
	return total
}

// Lookup resolves a node key.
func (t *Tree) Lookup(key drbg.NodeKey) (*Node, error) {
	if t.Root == nil {
		return nil, errors.New("sharing: empty tree")
	}
	cur := t.Root
	for depth, idx := range key {
		if int(idx) >= len(cur.Children) {
			return nil, fmt.Errorf("sharing: key %v invalid at depth %d", key, depth)
		}
		cur = cur.Children[int(idx)]
	}
	return cur, nil
}

// Split derives the deterministic client share for every node of enc from
// seed and returns the server tree (original − client). The client needs to
// keep only the seed; SeedClient regenerates its shares on demand.
func Split(enc *polyenc.Tree, seed drbg.Seed) (*Tree, error) {
	if enc == nil || enc.Root == nil {
		return nil, errors.New("sharing: nil encoded tree")
	}
	d := drbg.NewDeriver(seed, ShareLabel)
	root, err := splitNode(enc.Ring, enc.Root, drbg.NodeKey{}, d)
	if err != nil {
		return nil, err
	}
	return &Tree{Root: root}, nil
}

func splitNode(r ring.Ring, n *polyenc.Node, key drbg.NodeKey, d *drbg.Deriver) (*Node, error) {
	pad, err := r.Rand(d.ForNode(key))
	if err != nil {
		return nil, fmt.Errorf("sharing: node %s: %w", key, err)
	}
	out := &Node{Poly: r.Sub(n.Poly, pad)}
	for i, c := range n.Children {
		sc, err := splitNode(r, c, key.Child(uint32(i)), d)
		if err != nil {
			return nil, err
		}
		out.Children = append(out.Children, sc)
	}
	return out, nil
}

// SeedClient regenerates client share polynomials from the seed alone —
// the §4.2 "store only the random seed" mode.
type SeedClient struct {
	r ring.Ring
	d *drbg.Deriver
}

// NewSeedClient builds the seed-only client view.
func NewSeedClient(r ring.Ring, seed drbg.Seed) *SeedClient {
	return &SeedClient{r: r, d: drbg.NewDeriver(seed, ShareLabel)}
}

// Ring returns the client's ring.
func (c *SeedClient) Ring() ring.Ring { return c.r }

// Share regenerates the client share polynomial of the given node.
func (c *SeedClient) Share(key drbg.NodeKey) (poly.Poly, error) {
	return c.r.Rand(c.d.ForNode(key))
}

// EvalShare regenerates the node share and evaluates it at point a
// (modulo the ring's evaluation modulus at a).
func (c *SeedClient) EvalShare(key drbg.NodeKey, a *big.Int) (*big.Int, error) {
	share, err := c.Share(key)
	if err != nil {
		return nil, err
	}
	return c.r.Eval(share, a)
}

// Materialize expands the client's full share tree for a given document
// shape (taken from the server tree). This trades client memory for speed —
// experiment E11 measures the trade.
func Materialize(r ring.Ring, seed drbg.Seed, shape *Tree) (*Tree, error) {
	if shape == nil || shape.Root == nil {
		return nil, errors.New("sharing: nil shape")
	}
	c := NewSeedClient(r, seed)
	var build func(n *Node, key drbg.NodeKey) (*Node, error)
	build = func(n *Node, key drbg.NodeKey) (*Node, error) {
		share, err := c.Share(key)
		if err != nil {
			return nil, err
		}
		out := &Node{Poly: share}
		for i, ch := range n.Children {
			bc, err := build(ch, key.Child(uint32(i)))
			if err != nil {
				return nil, err
			}
			out.Children = append(out.Children, bc)
		}
		return out, nil
	}
	root, err := build(shape.Root, drbg.NodeKey{})
	if err != nil {
		return nil, err
	}
	return &Tree{Root: root}, nil
}

// Reconstruct adds client and server trees back into the encoded tree.
// Shapes must match exactly.
func Reconstruct(r ring.Ring, client, server *Tree) (*polyenc.Tree, error) {
	if client == nil || server == nil || client.Root == nil || server.Root == nil {
		return nil, errors.New("sharing: nil share tree")
	}
	var merge func(c, s *Node, key drbg.NodeKey) (*polyenc.Node, error)
	merge = func(c, s *Node, key drbg.NodeKey) (*polyenc.Node, error) {
		if len(c.Children) != len(s.Children) {
			return nil, fmt.Errorf("sharing: shape mismatch at %s: %d vs %d children",
				key, len(c.Children), len(s.Children))
		}
		out := &polyenc.Node{Poly: r.Add(c.Poly, s.Poly)}
		for i := range c.Children {
			mc, err := merge(c.Children[i], s.Children[i], key.Child(uint32(i)))
			if err != nil {
				return nil, err
			}
			out.Children = append(out.Children, mc)
		}
		return out, nil
	}
	root, err := merge(client.Root, server.Root, drbg.NodeKey{})
	if err != nil {
		return nil, err
	}
	return &polyenc.Tree{Ring: r, Root: root}, nil
}

// ReconstructFromSeed is Reconstruct with a seed-only client: the client
// tree is regenerated on the fly from the server tree's shape.
func ReconstructFromSeed(r ring.Ring, seed drbg.Seed, server *Tree) (*polyenc.Tree, error) {
	client, err := Materialize(r, seed, server)
	if err != nil {
		return nil, err
	}
	return Reconstruct(r, client, server)
}
