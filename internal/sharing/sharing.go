// Package sharing implements §4.2 of the paper: splitting an encoded
// polynomial tree into a client part and a server part such that
// client + server = original in the ring, with the client part generated
// from a seeded DRBG so the client stores nothing but the seed.
//
// It also implements the paper's multi-server extension: the server part
// can be Shamir-shared coefficient-wise across n servers with threshold k,
// and — because both Lagrange reconstruction and polynomial evaluation are
// linear — the client can recombine *evaluations* from any k servers
// directly, without ever reconstructing polynomials.
package sharing

import (
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"

	"sssearch/internal/drbg"
	"sssearch/internal/lru"
	"sssearch/internal/metrics"
	"sssearch/internal/parwalk"
	"sssearch/internal/poly"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
)

// ShareLabel is the DRBG domain-separation label for client share streams.
//
// v2 marks the packed fast-path share stream: F_p pads are drawn through
// the bulk sampler (fastfield.RandVec via ring.RandPacked), which consumes
// the per-node DRBG stream in large reads instead of one tiny read per
// coefficient. The per-coefficient distribution is unchanged, but the
// byte-consumption pattern is not, so pads derived under the v1 label
// (pre-fast-path store files) would no longer cancel; the label bump
// domain-separates the two streams instead of letting them silently mix.
const ShareLabel = "sss/client-share/v2"

// Node is one node of a share tree. Exactly one of Poly and Packed is
// authoritative: trees built through the big.Int path (unmarshal,
// Materialize, the sequential reference walks, hand-rolled fixtures)
// carry Poly; trees from the packed split and the packed MultiSplit
// carry Packed and materialize Poly on demand through Polynomial().
// Readers that cannot know the tree's provenance must go through
// Polynomial().
type Node struct {
	// Poly is the big.Int boundary representation of the share
	// polynomial; the zero value on packed trees (see Polynomial).
	Poly poly.Poly
	// Packed, when non-nil, is the canonical word-sized share polynomial
	// ([]uint64 coefficients, full ring length, ascending degree) left
	// behind by the packed split so server.Local can index share
	// polynomials without re-packing and the split never boxes
	// coefficients it may never serve. Serialization reads it through
	// Polynomial; unmarshaled trees re-pack lazily. Shared read-only.
	Packed   []uint64
	Children []*Node
	// boxed caches the Polynomial() materialization of Packed, so
	// repeated polynomial fetches over a packed tree (FetchPolys batches,
	// reconstruction) box each node once instead of per call. Benign
	// last-writer-wins race: every racer stores an identical value.
	boxed atomic.Pointer[poly.Poly]
}

// Polynomial returns the node's share polynomial in the big.Int boundary
// representation, materializing it from the packed mirror when that is
// the authoritative form. The first materialization is cached on the
// node (nodes are immutable after the split), so hot paths keep working
// on Packed while cold paths (marshal, polynomial fetches,
// reconstruction) pay one boxing pass per node, not per call.
func (n *Node) Polynomial() poly.Poly {
	if n.Packed == nil {
		return n.Poly
	}
	if p := n.boxed.Load(); p != nil {
		return *p
	}
	p := poly.NewUint64(n.Packed)
	n.boxed.Store(&p)
	return p
}

// Tree is a share tree: one polynomial per document node, mirroring the
// document shape.
type Tree struct {
	Root *Node
}

// Walk visits the share tree in preorder with node keys. Returning false
// prunes the subtree.
func (t *Tree) Walk(fn func(key drbg.NodeKey, n *Node) bool) {
	if t.Root == nil {
		return
	}
	walkNode(t.Root, drbg.NodeKey{}, fn)
}

func walkNode(n *Node, key drbg.NodeKey, fn func(drbg.NodeKey, *Node) bool) {
	if !fn(key, n) {
		return
	}
	for i, c := range n.Children {
		walkNode(c, key.Child(uint32(i)), fn)
	}
}

// Count returns the number of nodes.
func (t *Tree) Count() int {
	total := 0
	t.Walk(func(drbg.NodeKey, *Node) bool { total++; return true })
	return total
}

// Lookup resolves a node key.
func (t *Tree) Lookup(key drbg.NodeKey) (*Node, error) {
	if t.Root == nil {
		return nil, errors.New("sharing: empty tree")
	}
	cur := t.Root
	for depth, idx := range key {
		if int(idx) >= len(cur.Children) {
			return nil, fmt.Errorf("sharing: key %v invalid at depth %d", key, depth)
		}
		cur = cur.Children[int(idx)]
	}
	return cur, nil
}

// SplitOpts tunes Split.
type SplitOpts struct {
	// Parallelism bounds the worker pool of the tree walk: 0 selects
	// runtime.GOMAXPROCS, 1 forces a sequential walk. The output tree is
	// byte-identical at every setting — each node's pad is derived from
	// its own path-keyed DRBG stream, so no schedule-dependent state
	// exists to leak into the result.
	Parallelism int
}

// Split derives the deterministic client share for every node of enc from
// seed and returns the server tree (original − client). The client needs to
// keep only the seed; SeedClient regenerates its shares on demand.
//
// On rings with the word-sized fast path the walk runs packed — pads are
// drawn straight into []uint64 vectors, the subtraction is one word pass,
// and Node.Packed carries the result so server.NewLocal never re-packs —
// and subtrees are split in parallel on a bounded pool. SplitSequential is
// the retained big.Int-boundary reference; both produce identical trees.
func Split(enc *polyenc.Tree, seed drbg.Seed) (*Tree, error) {
	return SplitWithOpts(enc, seed, SplitOpts{})
}

// SplitWithOpts is Split with an explicit parallelism bound.
func SplitWithOpts(enc *polyenc.Tree, seed drbg.Seed, o SplitOpts) (*Tree, error) {
	if enc == nil || enc.Root == nil {
		return nil, errors.New("sharing: nil encoded tree")
	}
	s := &splitter{
		r:    enc.Ring,
		d:    drbg.NewDeriver(seed, ShareLabel),
		pool: parwalk.New(o.Parallelism),
	}
	if fp, ok := enc.Ring.(*ring.FpCyclotomic); ok && fp.Fast() != nil {
		s.fp = fp
	}
	root := &Node{}
	s.walk(enc.Root, drbg.NodeKey{}, root)
	if err := s.pool.Wait(); err != nil {
		return nil, err
	}
	return &Tree{Root: root}, nil
}

// SplitSequential is the sequential big.Int-boundary reference
// implementation of Split (the pre-parallel behavior, one generic ring op
// per node). It is retained as the differential-test anchor and the
// before side of the outsourcing benchmarks; production callers use
// Split. Both derive identical pads — the per-node DRBG streams do not
// depend on the walk — so the trees match byte for byte.
func SplitSequential(enc *polyenc.Tree, seed drbg.Seed) (*Tree, error) {
	if enc == nil || enc.Root == nil {
		return nil, errors.New("sharing: nil encoded tree")
	}
	d := drbg.NewDeriver(seed, ShareLabel)
	root, err := splitNodeRef(enc.Ring, enc.Root, drbg.NodeKey{}, d)
	if err != nil {
		return nil, err
	}
	return &Tree{Root: root}, nil
}

func splitNodeRef(r ring.Ring, n *polyenc.Node, key drbg.NodeKey, d *drbg.Deriver) (*Node, error) {
	pad, err := r.Rand(d.ForNode(key))
	if err != nil {
		return nil, fmt.Errorf("sharing: node %s: %w", key, err)
	}
	out := &Node{Poly: r.Sub(n.Polynomial(), pad)}
	for i, c := range n.Children {
		sc, err := splitNodeRef(r, c, key.Child(uint32(i)), d)
		if err != nil {
			return nil, err
		}
		out.Children = append(out.Children, sc)
	}
	return out, nil
}

// splitter is one parallel packed split run.
type splitter struct {
	r    ring.Ring
	fp   *ring.FpCyclotomic // non-nil on the word-sized fast path
	d    *drbg.Deriver
	pool *parwalk.Pool
}

func (s *splitter) walk(n *polyenc.Node, key drbg.NodeKey, out *Node) {
	if s.pool.Failed() {
		return
	}
	if err := s.fill(n, key, out); err != nil {
		s.pool.Fail(fmt.Errorf("sharing: node %s: %w", key, err))
		return
	}
	if len(n.Children) == 0 {
		return
	}
	out.Children = make([]*Node, len(n.Children))
	for i, c := range n.Children {
		c, child := c, &Node{} // pre-1.22 loop-var capture
		ck := key.Child(uint32(i))
		out.Children[i] = child
		s.pool.Do(func() { s.walk(c, ck, child) })
	}
}

// fill computes one node's server share: enc − pad. The packed path draws
// the pad into a word vector and subtracts in place; nodes that do not
// pack (foreign coefficients) and non-fast rings take the generic ring
// ops, consuming the identical DRBG stream.
func (s *splitter) fill(n *polyenc.Node, key drbg.NodeKey, out *Node) error {
	if s.fp != nil {
		if encP, ok := s.packedOf(n); ok {
			vec := make([]uint64, s.fp.DegreeBound())
			if err := s.fp.RandPacked(s.d.ForNode(key), vec); err != nil {
				return err
			}
			ff := s.fp.Fast()
			for i := range vec {
				var e uint64
				if i < len(encP) {
					e = encP[i]
				}
				vec[i] = ff.Sub(e, vec[i])
			}
			out.Packed = vec
			return nil
		}
	}
	pad, err := s.r.Rand(s.d.ForNode(key))
	if err != nil {
		return err
	}
	// Polynomial() (not Poly) so a PackedOnly-encoded tree still splits
	// correctly when the ring's fast path is off at split time.
	out.Poly = s.r.Sub(n.Polynomial(), pad)
	return nil
}

// packedOf returns the node's canonical packed coefficients, preferring
// the mirror the packed encode left behind.
func (s *splitter) packedOf(n *polyenc.Node) ([]uint64, bool) {
	if n.Packed != nil {
		return n.Packed, true
	}
	vec, ok := s.fp.Pack(n.Poly)
	if !ok || len(vec) > s.fp.DegreeBound() {
		return nil, false
	}
	return vec, true
}

// DefaultShareCacheNodes bounds the seed-only client's packed-share LRU:
// the most recently touched node pads are kept in packed form so hot
// nodes (the root levels every query walks) are not re-derived from the
// DRBG on each visit. At the default, a F_257 deployment holds at most
// 4096 × 256 words ≈ 8 MiB — a mid-point of the §4.2 seed-vs-materialized
// trade-off that still leaves the durable client secret at 32 bytes.
const DefaultShareCacheNodes = 4096

// SeedClient regenerates client share polynomials from the seed alone —
// the §4.2 "store only the random seed" mode.
//
// On rings with the word-sized fast path, shares are regenerated directly
// into packed []uint64 vectors (no big.Int allocation) and the most
// recently used pads are kept in a bounded LRU cache; see
// DefaultShareCacheNodes. A client built through SharedPadCache.NewClient
// instead shares one pad and eval cache with every other session of the
// same seed. Safe for concurrent use, including concurrent SetCounters /
// SetShareCacheNodes while queries are in flight.
type SeedClient struct {
	r ring.Ring
	d *drbg.Deriver
	// fp is non-nil when r carries the word-sized fast path.
	fp *ring.FpCyclotomic
	// shared, when non-nil, is the cross-session cache this client
	// attaches to (set only by SharedPadCache.NewClient, before first
	// use); the private cache below is then bypassed.
	shared *SharedPadCache
	// cache maps node-key strings to packed share pads. Cached vectors
	// are shared and must never be mutated. Held through an atomic
	// pointer: SetShareCacheNodes swaps it while packedShare reads it
	// from concurrent queries.
	cache atomic.Pointer[lru.Cache[string, []uint64]]
	// counters receives the pad-cache hit/miss tallies (the client-side
	// mirror of server.Local's eval-cache counters). Atomic for the same
	// reason as cache: SetCounters races in-flight queries by design.
	counters atomic.Pointer[metrics.Counters]
}

// NewSeedClient builds the seed-only client view.
func NewSeedClient(r ring.Ring, seed drbg.Seed) *SeedClient {
	c := &SeedClient{r: r, d: drbg.NewDeriver(seed, ShareLabel)}
	c.counters.Store(&metrics.Counters{})
	if fp, ok := r.(*ring.FpCyclotomic); ok && fp.Fast() != nil {
		c.fp = fp
		c.cache.Store(lru.New[string, []uint64](DefaultShareCacheNodes))
	}
	return c
}

// Counters exposes the client-side metric counters (pad-cache hits and
// misses).
func (c *SeedClient) Counters() *metrics.Counters { return c.counters.Load() }

// SetCounters redirects the pad-cache tallies into a shared counter set
// (the query engine passes its own so per-query snapshots include pad
// regeneration work). A nil argument is ignored. Safe to call while
// queries are in flight: the swap is atomic, in-flight operations finish
// tallying into whichever set they loaded.
func (c *SeedClient) SetCounters(m *metrics.Counters) {
	if m != nil {
		c.counters.Store(m)
	}
}

// SetShareCacheNodes re-bounds the packed-share cache to at most n node
// pads (0 disables caching). Only meaningful on fast-path rings, and a
// no-op on clients attached to a SharedPadCache (the shared bounds are
// set with SharedPadCache.SetBounds). Safe to call while queries are in
// flight: the swap is atomic, in-flight operations finish against the
// cache generation they loaded.
func (c *SeedClient) SetShareCacheNodes(n int) {
	if c.fp != nil {
		c.cache.Store(lru.New[string, []uint64](n))
	}
}

// Ring returns the client's ring.
func (c *SeedClient) Ring() ring.Ring { return c.r }

// packedShare returns the node's share pad in packed form, regenerating
// it from the seed on a cache miss. The returned slice is shared — read
// only.
func (c *SeedClient) packedShare(key drbg.NodeKey) ([]uint64, error) {
	ks := key.String()
	if c.shared != nil {
		return c.shared.pad(key, ks, c.counters.Load())
	}
	counters := c.counters.Load()
	cache := c.cache.Load()
	if v, ok := cache.Get(ks); ok {
		counters.AddPadCacheHits(1)
		return v, nil
	}
	counters.AddPadCacheMiss(1)
	vec := make([]uint64, c.fp.DegreeBound())
	if err := c.fp.RandPacked(c.d.ForNode(key), vec); err != nil {
		return nil, fmt.Errorf("sharing: node %s: %w", key, err)
	}
	cache.Add(ks, vec)
	return vec, nil
}

// PackedShare implements PackedShareSource.
func (c *SeedClient) PackedShare(key drbg.NodeKey) ([]uint64, bool, error) {
	if c.fp == nil {
		return nil, false, nil
	}
	vec, err := c.packedShare(key)
	if err != nil {
		return nil, false, err
	}
	return vec, true, nil
}

// Share regenerates the client share polynomial of the given node.
func (c *SeedClient) Share(key drbg.NodeKey) (poly.Poly, error) {
	if c.fp != nil {
		vec, err := c.packedShare(key)
		if err != nil {
			return poly.Poly{}, err
		}
		return c.fp.Unpack(vec), nil
	}
	return c.r.Rand(c.d.ForNode(key))
}

// EvalShare regenerates the node share and evaluates it at point a
// (modulo the ring's evaluation modulus at a).
func (c *SeedClient) EvalShare(key drbg.NodeKey, a *big.Int) (*big.Int, error) {
	if c.fp != nil {
		vals, err := c.EvalShares(key, []*big.Int{a})
		if err != nil {
			return nil, err
		}
		return vals[0], nil
	}
	share, err := c.Share(key)
	if err != nil {
		return nil, err
	}
	return c.r.Eval(share, a)
}

// EvalShares implements MultiPointSource: the share pad is regenerated
// (or fetched from the cache) once and evaluated at every point in a
// single multi-point Horner pass — the DRBG regeneration, not the
// arithmetic, dominates seed-only querying, so one pass per node is the
// difference between O(points) and O(1) regenerations. On clients
// attached to a SharedPadCache, repeated (node, point-set) requests —
// every session of one key chasing the same hot wave — skip the Horner
// pass entirely via the shared eval LRU.
func (c *SeedClient) EvalShares(key drbg.NodeKey, points []*big.Int) ([]*big.Int, error) {
	if c.fp == nil {
		share, err := c.Share(key)
		if err != nil {
			return nil, err
		}
		out := make([]*big.Int, len(points))
		for i, p := range points {
			if out[i], err = c.r.Eval(share, p); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if c.shared != nil {
		return c.shared.evalShares(key, points, c.counters.Load())
	}
	vec, err := c.packedShare(key)
	if err != nil {
		return nil, err
	}
	return evalPackedMany(c.fp, vec, points)
}

// evalPackedMany evaluates one packed polynomial at every point, boxing
// the word results into the big.Int boundary representation.
func evalPackedMany(fp *ring.FpCyclotomic, vec []uint64, points []*big.Int) ([]*big.Int, error) {
	xs := make([]uint64, len(points))
	for i, p := range points {
		x, err := fp.PackPoint(p)
		if err != nil {
			return nil, err
		}
		xs[i] = x
	}
	ff := fp.Fast()
	ff.MFormVec(xs, xs)
	dst := make([]uint64, len(xs))
	ff.EvalMany(vec, xs, dst)
	out := make([]*big.Int, len(dst))
	for i, v := range dst {
		out[i] = new(big.Int).SetUint64(v)
	}
	return out, nil
}

// Materialize expands the client's full share tree for a given document
// shape (taken from the server tree). This trades client memory for speed —
// experiment E11 measures the trade.
func Materialize(r ring.Ring, seed drbg.Seed, shape *Tree) (*Tree, error) {
	if shape == nil || shape.Root == nil {
		return nil, errors.New("sharing: nil shape")
	}
	c := NewSeedClient(r, seed)
	var build func(n *Node, key drbg.NodeKey) (*Node, error)
	build = func(n *Node, key drbg.NodeKey) (*Node, error) {
		share, err := c.Share(key)
		if err != nil {
			return nil, err
		}
		out := &Node{Poly: share}
		for i, ch := range n.Children {
			bc, err := build(ch, key.Child(uint32(i)))
			if err != nil {
				return nil, err
			}
			out.Children = append(out.Children, bc)
		}
		return out, nil
	}
	root, err := build(shape.Root, drbg.NodeKey{})
	if err != nil {
		return nil, err
	}
	return &Tree{Root: root}, nil
}

// Reconstruct adds client and server trees back into the encoded tree.
// Shapes must match exactly.
func Reconstruct(r ring.Ring, client, server *Tree) (*polyenc.Tree, error) {
	if client == nil || server == nil || client.Root == nil || server.Root == nil {
		return nil, errors.New("sharing: nil share tree")
	}
	var merge func(c, s *Node, key drbg.NodeKey) (*polyenc.Node, error)
	merge = func(c, s *Node, key drbg.NodeKey) (*polyenc.Node, error) {
		if len(c.Children) != len(s.Children) {
			return nil, fmt.Errorf("sharing: shape mismatch at %s: %d vs %d children",
				key, len(c.Children), len(s.Children))
		}
		out := &polyenc.Node{Poly: r.Add(c.Polynomial(), s.Polynomial())}
		for i := range c.Children {
			mc, err := merge(c.Children[i], s.Children[i], key.Child(uint32(i)))
			if err != nil {
				return nil, err
			}
			out.Children = append(out.Children, mc)
		}
		return out, nil
	}
	root, err := merge(client.Root, server.Root, drbg.NodeKey{})
	if err != nil {
		return nil, err
	}
	return &polyenc.Tree{Ring: r, Root: root}, nil
}

// ReconstructFromSeed is Reconstruct with a seed-only client: the client
// tree is regenerated on the fly from the server tree's shape.
func ReconstructFromSeed(r ring.Ring, seed drbg.Seed, server *Tree) (*polyenc.Tree, error) {
	client, err := Materialize(r, seed, server)
	if err != nil {
		return nil, err
	}
	return Reconstruct(r, client, server)
}
