package sharing

import (
	"fmt"
	"math/big"

	"sssearch/internal/drbg"
	"sssearch/internal/poly"
	"sssearch/internal/ring"
)

// ShareSource abstracts where the client's share polynomials come from:
// regenerated from a seed (SeedClient, the paper's §4.2 storage-optimal
// mode), held in a materialized tree (StaticSource), or — in tests — the
// paper's published figure values verbatim.
type ShareSource interface {
	// Share returns the client share polynomial of the keyed node.
	Share(key drbg.NodeKey) (poly.Poly, error)
	// EvalShare evaluates the node's client share at point a, reduced
	// modulo the ring's evaluation modulus at a.
	EvalShare(key drbg.NodeKey, a *big.Int) (*big.Int, error)
}

// MultiPointSource is the multi-point extension of ShareSource: one share
// materialization (or DRBG regeneration) serves every active query point
// in a single polynomial pass. The query engine type-asserts for it and
// falls back to per-point EvalShare calls otherwise; results are
// identical either way.
type MultiPointSource interface {
	ShareSource
	// EvalShares evaluates the node's client share at every point, in
	// order, reduced modulo the ring's evaluation modulus at each point.
	EvalShares(key drbg.NodeKey, points []*big.Int) ([]*big.Int, error)
}

// PackedShareSource exposes client shares in the packed word
// representation, letting the engine's tag-recovery path reconstruct
// polynomials without crossing the big.Int boundary. ok=false means the
// source has no packed form for that node (fast path off, or out-of-word
// coefficients); callers fall back to Share. Returned vectors are shared
// — read only.
type PackedShareSource interface {
	ShareSource
	PackedShare(key drbg.NodeKey) (vec []uint64, ok bool, err error)
}

var (
	_ MultiPointSource  = (*SeedClient)(nil)
	_ MultiPointSource  = (*StaticSource)(nil)
	_ PackedShareSource = (*SeedClient)(nil)
	_ PackedShareSource = (*StaticSource)(nil)
)

// StaticSource serves client shares from a materialized share tree — the
// memory-for-CPU end of the §4.2 trade-off, and the vehicle for running
// the protocol on externally supplied share values (e.g. the paper's
// figures 3 and 4). On fast-path rings every node polynomial is packed
// into its word representation once at construction, so per-query
// evaluations run allocation-free.
type StaticSource struct {
	r    ring.Ring
	tree *Tree
	// fp is non-nil when r carries the word-sized fast path; packed then
	// holds the word representation of every node that packs (nodes with
	// out-of-word coefficients fall back to the big.Int path).
	fp     *ring.FpCyclotomic
	packed map[*Node][]uint64
}

// NewStaticSource wraps a materialized client share tree.
func NewStaticSource(r ring.Ring, tree *Tree) (*StaticSource, error) {
	if r == nil || tree == nil || tree.Root == nil {
		return nil, fmt.Errorf("sharing: nil ring or tree")
	}
	s := &StaticSource{r: r, tree: tree}
	if fp, ok := r.(*ring.FpCyclotomic); ok && fp.Fast() != nil {
		s.fp = fp
		s.packed = make(map[*Node][]uint64)
		tree.Walk(func(_ drbg.NodeKey, n *Node) bool {
			if n.Packed != nil {
				s.packed[n] = n.Packed
			} else if vec, ok := fp.Pack(n.Poly); ok {
				s.packed[n] = vec
			}
			return true
		})
	}
	return s, nil
}

// Share implements ShareSource.
func (s *StaticSource) Share(key drbg.NodeKey) (poly.Poly, error) {
	n, err := s.tree.Lookup(key)
	if err != nil {
		return poly.Poly{}, err
	}
	return n.Polynomial(), nil
}

// EvalShare implements ShareSource.
func (s *StaticSource) EvalShare(key drbg.NodeKey, a *big.Int) (*big.Int, error) {
	vals, err := s.EvalShares(key, []*big.Int{a})
	if err != nil {
		return nil, err
	}
	return vals[0], nil
}

// PackedShare implements PackedShareSource.
func (s *StaticSource) PackedShare(key drbg.NodeKey) ([]uint64, bool, error) {
	if s.fp == nil {
		return nil, false, nil
	}
	n, err := s.tree.Lookup(key)
	if err != nil {
		return nil, false, err
	}
	vec, ok := s.packed[n]
	return vec, ok, nil
}

// EvalShares implements MultiPointSource: one pass over the stored
// polynomial serves all points.
func (s *StaticSource) EvalShares(key drbg.NodeKey, points []*big.Int) ([]*big.Int, error) {
	n, err := s.tree.Lookup(key)
	if err != nil {
		return nil, err
	}
	if vec, ok := s.packed[n]; ok {
		return evalPackedMany(s.fp, vec, points)
	}
	out := make([]*big.Int, len(points))
	np := n.Polynomial()
	for i, p := range points {
		if out[i], err = s.r.Eval(np, p); err != nil {
			return nil, err
		}
	}
	return out, nil
}
