package sharing

import (
	"fmt"
	"math/big"

	"sssearch/internal/drbg"
	"sssearch/internal/poly"
	"sssearch/internal/ring"
)

// ShareSource abstracts where the client's share polynomials come from:
// regenerated from a seed (SeedClient, the paper's §4.2 storage-optimal
// mode), held in a materialized tree (StaticSource), or — in tests — the
// paper's published figure values verbatim.
type ShareSource interface {
	// Share returns the client share polynomial of the keyed node.
	Share(key drbg.NodeKey) (poly.Poly, error)
	// EvalShare evaluates the node's client share at point a, reduced
	// modulo the ring's evaluation modulus at a.
	EvalShare(key drbg.NodeKey, a *big.Int) (*big.Int, error)
}

var _ ShareSource = (*SeedClient)(nil)

// StaticSource serves client shares from a materialized share tree — the
// memory-for-CPU end of the §4.2 trade-off, and the vehicle for running
// the protocol on externally supplied share values (e.g. the paper's
// figures 3 and 4).
type StaticSource struct {
	r    ring.Ring
	tree *Tree
}

// NewStaticSource wraps a materialized client share tree.
func NewStaticSource(r ring.Ring, tree *Tree) (*StaticSource, error) {
	if r == nil || tree == nil || tree.Root == nil {
		return nil, fmt.Errorf("sharing: nil ring or tree")
	}
	return &StaticSource{r: r, tree: tree}, nil
}

// Share implements ShareSource.
func (s *StaticSource) Share(key drbg.NodeKey) (poly.Poly, error) {
	n, err := s.tree.Lookup(key)
	if err != nil {
		return poly.Poly{}, err
	}
	return n.Poly, nil
}

// EvalShare implements ShareSource.
func (s *StaticSource) EvalShare(key drbg.NodeKey, a *big.Int) (*big.Int, error) {
	share, err := s.Share(key)
	if err != nil {
		return nil, err
	}
	return s.r.Eval(share, a)
}

var _ ShareSource = (*StaticSource)(nil)
