package sharing

import (
	"crypto/sha256"
	"math/big"
	"testing"

	"sssearch/internal/drbg"
	"sssearch/internal/mapping"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/workload"
)

// fixtureKeys returns every node key of a small split document plus the
// seed used, over ring r.
func fixtureKeys(t *testing.T, r ring.Ring) (*Tree, []drbg.NodeKey, drbg.Seed) {
	t.Helper()
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 25, MaxFanout: 3, Vocab: 6, Seed: 21})
	m, err := mapping.New(r.MaxTag(), []byte("sharing-fast"))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		t.Fatal(err)
	}
	seed := drbg.Seed(sha256.Sum256([]byte("sharing-fast")))
	server, err := Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	var keys []drbg.NodeKey
	server.Walk(func(k drbg.NodeKey, _ *Node) bool {
		keys = append(keys, k)
		return true
	})
	return server, keys, seed
}

// TestSeedClientEvalSharesDifferential: the multi-point fast path, the
// per-point EvalShare and the reference ring.Eval over the regenerated
// share must all agree, cached and uncached.
func TestSeedClientEvalSharesDifferential(t *testing.T) {
	r := ring.MustFp(31)
	_, keys, seed := fixtureKeys(t, r)
	points := []*big.Int{big.NewInt(2), big.NewInt(7), big.NewInt(29)}
	c := NewSeedClient(r, seed)
	// A second client with caching off regenerates everything, every time.
	cNoCache := NewSeedClient(r, seed)
	cNoCache.SetShareCacheNodes(0)
	for pass := 0; pass < 2; pass++ { // second pass hits the share cache
		for _, k := range keys {
			many, err := c.EvalShares(k, points)
			if err != nil {
				t.Fatal(err)
			}
			share, err := cNoCache.Share(k)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range points {
				ref, err := r.Eval(share, p)
				if err != nil {
					t.Fatal(err)
				}
				if many[i].Cmp(ref) != 0 {
					t.Fatalf("pass %d: EvalShares(%s)[%s] = %s, ref %s", pass, k, p, many[i], ref)
				}
				one, err := c.EvalShare(k, p)
				if err != nil {
					t.Fatal(err)
				}
				if one.Cmp(ref) != 0 {
					t.Fatalf("pass %d: EvalShare(%s, %s) = %s, ref %s", pass, k, p, one, ref)
				}
			}
		}
	}
}

// TestSeedClientPackedShareMatchesShare: the packed representation must
// unpack to exactly the regenerated polynomial (it is what tag recovery
// reconstructs from).
func TestSeedClientPackedShareMatchesShare(t *testing.T) {
	r := ring.MustFp(31)
	_, keys, seed := fixtureKeys(t, r)
	c := NewSeedClient(r, seed)
	for _, k := range keys {
		vec, ok, err := c.PackedShare(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("no packed share for %s on a fast ring", k)
		}
		share, err := c.Share(k)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Unpack(vec).Equal(share) {
			t.Fatalf("packed share of %s diverged from Share", k)
		}
	}
}

// TestStaticSourceEvalSharesDifferential covers the materialized source,
// including the IntQuotient fallback (no packed form).
func TestStaticSourceEvalSharesDifferential(t *testing.T) {
	for _, r := range []ring.Ring{ring.MustFp(31), ring.MustIntQuotient(1, 0, 1)} {
		server, keys, _ := fixtureKeys(t, r)
		src, err := NewStaticSource(r, server)
		if err != nil {
			t.Fatal(err)
		}
		points := []*big.Int{big.NewInt(2), big.NewInt(7)}
		for _, k := range keys {
			many, err := src.EvalShares(k, points)
			if err != nil {
				t.Fatal(err)
			}
			share, err := src.Share(k)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range points {
				ref, err := r.Eval(share, p)
				if err != nil {
					t.Fatal(err)
				}
				if many[i].Cmp(ref) != 0 {
					t.Fatalf("%s: EvalShares(%s)[%s] = %s, ref %s", r.Name(), k, p, many[i], ref)
				}
			}
		}
	}
}

// TestSplitSeedClientConsistency: the pads Split subtracts must be the
// pads SeedClient regenerates — client + server ≡ encoded at every node —
// with the share cache on and off.
func TestSplitSeedClientConsistency(t *testing.T) {
	for _, r := range []ring.Ring{ring.MustFp(257), ring.MustIntQuotient(1, 0, 1)} {
		doc := workload.RandomTree(workload.TreeConfig{Nodes: 25, MaxFanout: 3, Vocab: 6, Seed: 22})
		m, err := mapping.New(r.MaxTag(), []byte("consistency"))
		if err != nil {
			t.Fatal(err)
		}
		enc, err := polyenc.Encode(r, doc, m)
		if err != nil {
			t.Fatal(err)
		}
		seed := drbg.Seed(sha256.Sum256([]byte("consistency")))
		server, err := Split(enc, seed)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ReconstructFromSeed(r, seed, server)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		enc.Walk(func(k drbg.NodeKey, n *polyenc.Node) bool {
			bn, err := back.Lookup(k)
			if err != nil || !r.Equal(bn.Poly, n.Poly) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			t.Fatalf("%s: client + server != encoded after the packed split", r.Name())
		}
	}
}
