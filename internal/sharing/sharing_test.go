package sharing

import (
	"crypto/rand"
	"math/big"
	"testing"

	"sssearch/internal/drbg"
	"sssearch/internal/paperdata"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
)

func bi(v int64) *big.Int { return big.NewInt(v) }

func testSeed(b byte) drbg.Seed {
	var s drbg.Seed
	for i := range s {
		s[i] = b
	}
	return s
}

func TestFig3PaperShares(t *testing.T) {
	// client + server must equal figure 2(a), node by node, in F_5[x]/(x^4-1).
	r := paperdata.FpRing()
	for path, pair := range paperdata.Fig3 {
		sum := r.Add(pair.Client, pair.Server)
		want := paperdata.Fig2a[path]
		if !r.Equal(sum, want) {
			t.Errorf("fig3 %s: client+server = %v, want %v", path, sum, want)
		}
	}
}

func TestFig4PaperShares(t *testing.T) {
	r := paperdata.ZRing()
	for path, pair := range paperdata.Fig4 {
		sum := r.Add(pair.Client, pair.Server)
		want := paperdata.Fig2b[path]
		if !r.Equal(sum, want) {
			t.Errorf("fig4 %s: client+server = %v, want %v", path, sum, want)
		}
	}
}

func encodePaperZ(t *testing.T) *polyenc.Tree {
	t.Helper()
	enc, err := polyenc.Encode(paperdata.ZRing(), paperdata.Document(), paperdata.Mapping(nil))
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestSplitReconstructSeedOnly(t *testing.T) {
	enc := encodePaperZ(t)
	seed := testSeed(1)
	server, err := Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	if server.Count() != 5 {
		t.Fatalf("server tree has %d nodes", server.Count())
	}
	// Reconstruct from seed alone.
	back, err := ReconstructFromSeed(enc.Ring, seed, server)
	if err != nil {
		t.Fatal(err)
	}
	var mismatch bool
	back.Walk(func(key drbg.NodeKey, n *polyenc.Node) bool {
		orig, err := enc.Lookup(key)
		if err != nil || !enc.Ring.Equal(n.Poly, orig.Poly) {
			mismatch = true
			return false
		}
		return true
	})
	if mismatch {
		t.Fatal("reconstruction differs from original")
	}
}

func TestSplitDeterministicPerSeed(t *testing.T) {
	enc := encodePaperZ(t)
	s1, err := Split(enc, testSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Split(enc, testSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := s1.MarshalBinary()
	b2, _ := s2.MarshalBinary()
	if string(b1) != string(b2) {
		t.Error("same seed produced different server trees")
	}
	s3, err := Split(enc, testSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	b3, _ := s3.MarshalBinary()
	if string(b1) == string(b3) {
		t.Error("different seeds produced identical server trees")
	}
}

func TestSeedClientMatchesSplit(t *testing.T) {
	// The server tree plus regenerated client shares must reproduce the
	// encoded polynomial at every node — for both rings.
	rings := []ring.Ring{paperdata.ZRing(), ring.MustFp(11)}
	for _, r := range rings {
		m := paperdata.Mapping(r.MaxTag())
		enc, err := polyenc.Encode(r, paperdata.Document(), m)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		seed := testSeed(7)
		server, err := Split(enc, seed)
		if err != nil {
			t.Fatal(err)
		}
		client := NewSeedClient(r, seed)
		enc.Walk(func(key drbg.NodeKey, n *polyenc.Node) bool {
			cs, err := client.Share(key)
			if err != nil {
				t.Fatal(err)
			}
			sn, err := server.Lookup(key)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Equal(r.Add(cs, sn.Polynomial()), n.Poly) {
				t.Fatalf("%s node %s: shares do not sum to original", r.Name(), key)
			}
			return true
		})
	}
}

func TestEvalShareAdditivity(t *testing.T) {
	// f(a) = client_share(a) + server_share(a) mod EvalModulus — the
	// query-time identity of figures 5 and 6.
	r := paperdata.ZRing()
	enc := encodePaperZ(t)
	seed := testSeed(9)
	server, err := Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	client := NewSeedClient(r, seed)
	a := bi(paperdata.QueryPoint)
	mod, err := r.EvalModulus(a)
	if err != nil {
		t.Fatal(err)
	}
	enc.Walk(func(key drbg.NodeKey, n *polyenc.Node) bool {
		cv, err := client.EvalShare(key, a)
		if err != nil {
			t.Fatal(err)
		}
		sn, _ := server.Lookup(key)
		sv, err := r.Eval(sn.Polynomial(), a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := r.Eval(n.Poly, a)
		if err != nil {
			t.Fatal(err)
		}
		sum := new(big.Int).Add(cv, sv)
		sum.Mod(sum, mod)
		if sum.Cmp(want) != 0 {
			t.Fatalf("node %s: %v + %v != %v (mod %v)", key, cv, sv, want, mod)
		}
		return true
	})
}

func TestMaterializeEqualsSeedClient(t *testing.T) {
	enc := encodePaperZ(t)
	seed := testSeed(4)
	server, _ := Split(enc, seed)
	mat, err := Materialize(enc.Ring, seed, server)
	if err != nil {
		t.Fatal(err)
	}
	client := NewSeedClient(enc.Ring, seed)
	mat.Walk(func(key drbg.NodeKey, n *Node) bool {
		want, err := client.Share(key)
		if err != nil {
			t.Fatal(err)
		}
		if !n.Poly.Equal(want) {
			t.Fatalf("materialized share differs at %s", key)
		}
		return true
	})
	if _, err := Materialize(enc.Ring, seed, nil); err == nil {
		t.Error("nil shape accepted")
	}
}

func TestReconstructShapeMismatch(t *testing.T) {
	enc := encodePaperZ(t)
	server, _ := Split(enc, testSeed(5))
	client, _ := Materialize(enc.Ring, testSeed(5), server)
	// Drop a child from the client copy.
	client.Root.Children = client.Root.Children[:1]
	if _, err := Reconstruct(enc.Ring, client, server); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := Reconstruct(enc.Ring, nil, server); err == nil {
		t.Error("nil tree accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	enc := encodePaperZ(t)
	server, _ := Split(enc, testSeed(6))
	data, err := server.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Count() != server.Count() {
		t.Fatal("node count changed")
	}
	b2, _ := back.MarshalBinary()
	if string(data) != string(b2) {
		t.Error("re-marshal differs")
	}
	if server.ByteSize() != len(data) {
		t.Error("ByteSize inconsistent")
	}
	// Corrupt inputs.
	var bad Tree
	if err := bad.UnmarshalBinary(nil); err == nil {
		t.Error("empty input accepted")
	}
	if err := bad.UnmarshalBinary([]byte{0x00}); err == nil {
		t.Error("zero-node tree accepted")
	}
	if err := bad.UnmarshalBinary(append(data, 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Child count exceeding node count.
	if err := bad.UnmarshalBinary([]byte{0x01, 0x05, 0x00}); err == nil {
		t.Error("inconsistent child count accepted")
	}
}

func TestMultiSplitReconstruct(t *testing.T) {
	r := ring.MustFp(11)
	m := paperdata.Mapping(r.MaxTag())
	enc, err := polyenc.Encode(r, paperdata.Document(), m)
	if err != nil {
		t.Fatal(err)
	}
	seed := testSeed(8)
	const k, n = 2, 3
	servers, err := MultiSplit(enc, seed, k, n, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != n {
		t.Fatalf("%d servers", len(servers))
	}
	client := NewSeedClient(r, seed)
	a := bi(2)
	enc.Walk(func(key drbg.NodeKey, node *polyenc.Node) bool {
		want, err := r.Eval(node.Poly, a)
		if err != nil {
			t.Fatal(err)
		}
		// Every k-subset of servers must reconstruct the evaluation.
		subsets := [][]int{{0, 1}, {0, 2}, {1, 2}}
		for _, sub := range subsets {
			evals := make([]ServerEval, 0, k)
			for _, j := range sub {
				sn, err := servers[j].Tree.Lookup(key)
				if err != nil {
					t.Fatal(err)
				}
				v, err := r.Eval(sn.Polynomial(), a)
				if err != nil {
					t.Fatal(err)
				}
				evals = append(evals, ServerEval{X: servers[j].X, Value: v})
			}
			got, err := MultiReconstructEval(r, client, key, a, evals, k)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("node %s servers %v: got %v want %v", key, sub, got, want)
			}
		}
		return true
	})
}

func TestMultiSplitRejectsZRing(t *testing.T) {
	enc := encodePaperZ(t)
	if _, err := MultiSplit(enc, testSeed(1), 2, 3, rand.Reader); err == nil {
		t.Error("Z ring accepted for multi-server mode")
	}
}

func TestMultiSplitBadThreshold(t *testing.T) {
	r := ring.MustFp(11)
	m := paperdata.Mapping(r.MaxTag())
	enc, _ := polyenc.Encode(r, paperdata.Document(), m)
	if _, err := MultiSplit(enc, testSeed(1), 5, 3, rand.Reader); err == nil {
		t.Error("k>n accepted")
	}
}

func BenchmarkSplitPaperDoc(b *testing.B) {
	enc, err := polyenc.Encode(paperdata.ZRing(), paperdata.Document(), paperdata.Mapping(nil))
	if err != nil {
		b.Fatal(err)
	}
	seed := testSeed(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Split(enc, seed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeedClientShare(b *testing.B) {
	client := NewSeedClient(paperdata.ZRing(), testSeed(1))
	key := drbg.NodeKey{0, 1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Share(key); err != nil {
			b.Fatal(err)
		}
	}
}
