package sharing

import (
	"bytes"
	"crypto/sha256"
	"math/big"
	"testing"

	"sssearch/internal/drbg"
	"sssearch/internal/mapping"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/workload"
)

func parallelFixture(t *testing.T, r ring.Ring, nodes int, seedNum int64, secret string) (*polyenc.Tree, drbg.Seed) {
	t.Helper()
	doc := workload.RandomTree(workload.TreeConfig{Nodes: nodes, MaxFanout: 4, Vocab: 9, Seed: seedNum})
	m, err := mapping.New(r.MaxTag(), []byte(secret))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		t.Fatal(err)
	}
	return enc, drbg.Seed(sha256.Sum256([]byte(secret)))
}

// TestSplitParallelismDeterminism is the tentpole property test: Split
// with Parallelism 1, 2 and 8 must produce byte-identical trees for
// random documents, on the packed F_p path and the generic IntQuotient
// path, and all must match the sequential big.Int-boundary reference.
func TestSplitParallelismDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		ring ring.Ring
	}{
		{"Fp257", ring.MustFp(257)},
		{"Fp1009", ring.MustFp(1009)},
		{"Z", ring.MustIntQuotient(1, 0, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, nodes := range []int{1, 17, 230} {
				enc, seed := parallelFixture(t, tc.ring, nodes, int64(nodes)*3+1, "par-det")
				ref, err := SplitSequential(enc, seed)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []int{1, 2, 8} {
					tree, err := SplitWithOpts(enc, seed, SplitOpts{Parallelism: par})
					if err != nil {
						t.Fatalf("nodes=%d par=%d: %v", nodes, par, err)
					}
					got, err := tree.MarshalBinary()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("%s nodes=%d: Parallelism=%d tree differs from sequential reference", tc.name, nodes, par)
					}
				}
			}
		})
	}
}

// TestSplitPackedMatchesBigIntReference pins the packed F_p split — word
// subtraction, bulk pad sampling, lazy Poly — to true big.Int ring
// arithmetic: the same pads (regenerated through the fast sampler, which
// defines the v2 share stream) subtracted from the encoded polynomials on
// a SetFast(false) ring must give the same share polynomials.
func TestSplitPackedMatchesBigIntReference(t *testing.T) {
	fp := ring.MustFp(257)
	enc, seed := parallelFixture(t, fp, 120, 5, "packed-vs-big")
	tree, err := SplitWithOpts(enc, seed, SplitOpts{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The reference ring computes Sub in pure big.Int arithmetic.
	slow := ring.MustFp(257)
	slow.SetFast(false)
	client := NewSeedClient(fp, seed) // fast sampler: the v2 pad stream
	enc.Walk(func(key drbg.NodeKey, n *polyenc.Node) bool {
		pad, err := client.Share(key)
		if err != nil {
			t.Fatal(err)
		}
		want := slow.Sub(n.Poly, pad)
		sn, err := tree.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if !sn.Polynomial().Equal(want) {
			t.Fatalf("node %s: packed split differs from big.Int reference", key)
		}
		return true
	})
}

// TestSplitPackedOnlyEncodePipeline drives the exact Outsource fast path
// (PackedOnly encode → packed parallel split) and checks the result
// against the default pipeline and against reconstruction.
func TestSplitPackedOnlyEncodePipeline(t *testing.T) {
	fp := ring.MustFp(257)
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 90, MaxFanout: 4, Vocab: 9, Seed: 11})
	seed := drbg.Seed(sha256.Sum256([]byte("packed-only")))

	m1, err := mapping.New(fp.MaxTag(), []byte("packed-only"))
	if err != nil {
		t.Fatal(err)
	}
	encPacked, err := polyenc.EncodeWithOpts(fp, doc, m1, polyenc.Opts{PackedOnly: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := SplitWithOpts(encPacked, seed, SplitOpts{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	m2, err := mapping.New(fp.MaxTag(), []byte("packed-only"))
	if err != nil {
		t.Fatal(err)
	}
	encRef, err := polyenc.Encode(fp, doc, m2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SplitSequential(encRef, seed)
	if err != nil {
		t.Fatal(err)
	}
	fastBytes, err := fast.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := ref.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fastBytes, refBytes) {
		t.Fatal("PackedOnly pipeline tree differs from reference pipeline")
	}

	// Client + server must still reconstruct the reference encoding.
	back, err := ReconstructFromSeed(fp, seed, fast)
	if err != nil {
		t.Fatal(err)
	}
	encRef.Walk(func(key drbg.NodeKey, n *polyenc.Node) bool {
		bn, err := back.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if !fp.Equal(bn.Poly, n.Poly) {
			t.Fatalf("node %s: reconstruction mismatch", key)
		}
		return true
	})
}

// TestSeedClientPadCounters: the pad LRU must tally hits and misses into
// the wired counter set.
func TestSeedClientPadCounters(t *testing.T) {
	fp := ring.MustFp(257)
	seed := drbg.Seed(sha256.Sum256([]byte("counters")))
	c := NewSeedClient(fp, seed)
	key := drbg.NodeKey{0, 1}
	if _, err := c.Share(key); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EvalShare(key, big.NewInt(2)); err != nil {
		t.Fatal(err)
	}
	s := c.Counters().Snapshot()
	if s.PadCacheMiss != 1 {
		t.Errorf("PadCacheMiss = %d, want 1 (one regeneration)", s.PadCacheMiss)
	}
	if s.PadCacheHits != 1 {
		t.Errorf("PadCacheHits = %d, want 1 (second touch cached)", s.PadCacheHits)
	}
	// A rewired counter set receives subsequent tallies.
	ext := c.Counters()
	c.SetCounters(nil) // ignored
	if c.Counters() != ext {
		t.Fatal("SetCounters(nil) replaced the counter set")
	}
}

// TestSplitSequentialHandlesPackedOnlyTrees is the regression anchor for
// the PackedOnly hazard: the big.Int split paths must materialize the
// encoded polynomial from the packed mirror instead of silently
// subtracting pads from zero.
func TestSplitSequentialHandlesPackedOnlyTrees(t *testing.T) {
	fp := ring.MustFp(257)
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 70, MaxFanout: 4, Vocab: 8, Seed: 21})
	seed := drbg.Seed(sha256.Sum256([]byte("packed-only-seq")))
	m, err := mapping.New(fp.MaxTag(), []byte("packed-only-seq"))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := polyenc.EncodeWithOpts(fp, doc, m, polyenc.Opts{PackedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	seqTree, err := SplitSequential(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	fastTree, err := Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	seqBytes, err := seqTree.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fastBytes, err := fastTree.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqBytes, fastBytes) {
		t.Fatal("SplitSequential on a PackedOnly tree differs from Split")
	}
}
