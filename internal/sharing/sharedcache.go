package sharing

import (
	"encoding/binary"
	"fmt"
	"math/big"
	"sync"

	"sssearch/internal/drbg"
	"sssearch/internal/lru"
	"sssearch/internal/metrics"
	"sssearch/internal/ring"
)

// DefaultSharedPadNodes bounds the cross-session shared pad LRU. It is
// deliberately larger than the per-session DefaultShareCacheNodes: one
// shared cache replaces N private ones, so the same memory budget buys a
// working set every session profits from (at F_257, 16384 × 256 words
// ≈ 32 MiB worst case for a whole ClientKey, vs 8 MiB per session before).
const DefaultSharedPadNodes = 16384

// DefaultShareEvalEntries bounds the shared (node, point-set) share-eval
// LRU — the client-side mirror of server.DefaultEvalCacheEntries. Each
// entry holds one word per point of the set, so memory stays small even
// at the default.
const DefaultShareEvalEntries = 1 << 16

// shareEvalKey addresses one cached multi-point share evaluation: the
// node's rendered path plus the exact point vector (canonical word
// residues, in call order) rendered to bytes once per lookup.
type shareEvalKey struct {
	node string
	sig  string
}

// padCall is one in-flight singleflight pad regeneration.
type padCall struct {
	done chan struct{}
	vec  []uint64
	err  error
}

// evalCall is one in-flight singleflight share evaluation.
type evalCall struct {
	done chan struct{}
	vals []uint64
	err  error
}

// SharedPadCache is the cross-session client share cache of one ClientKey:
// every SeedClient attached to it (see NewClient) shares one packed pad
// LRU, one (node, point-set) share-eval LRU, and a singleflight front so
// concurrent misses on one node run the HMAC-DRBG regeneration (or the
// multi-point Horner pass) exactly once, with every other session
// piggybacking on the in-flight result. Before this cache, N sessions of
// one seed regenerated the same pads and re-evaluated the same share
// polynomials N times — the client-side dilution that kept the PR 5
// serving-path win from surviving end to end.
//
// The cache is scoped to exactly one (ring, seed) pair: it owns the seed
// and derives attached clients itself, so a pad can never be served to a
// session with different secret material. Safe for concurrent use. On
// rings without the word-sized fast path the cache is inert and NewClient
// returns ordinary private clients.
type SharedPadCache struct {
	r    ring.Ring
	seed drbg.Seed
	// fp is non-nil when r carries the word-sized fast path; the cache
	// only operates there (pads are packed word vectors).
	fp *ring.FpCyclotomic
	d  *drbg.Deriver

	pads  *lru.Cache[string, []uint64]
	evals *lru.Cache[shareEvalKey, []uint64]

	// mu guards the two singleflight maps only; cache hits never take it.
	mu        sync.Mutex
	padCalls  map[string]*padCall
	evalCalls map[shareEvalKey]*evalCall
}

// NewSharedPadCache builds a shared client share cache for one seed over
// one ring, with the default bounds (DefaultSharedPadNodes pads,
// DefaultShareEvalEntries evaluations).
func NewSharedPadCache(r ring.Ring, seed drbg.Seed) *SharedPadCache {
	s := &SharedPadCache{
		r:         r,
		seed:      seed,
		d:         drbg.NewDeriver(seed, ShareLabel),
		padCalls:  map[string]*padCall{},
		evalCalls: map[shareEvalKey]*evalCall{},
	}
	if fp, ok := r.(*ring.FpCyclotomic); ok && fp.Fast() != nil {
		s.fp = fp
		s.pads = lru.New[string, []uint64](DefaultSharedPadNodes)
		s.evals = lru.New[shareEvalKey, []uint64](DefaultShareEvalEntries)
	}
	return s
}

// SetBounds re-bounds the two LRUs (padNodes pads, evalEntries cached
// point-set evaluations; 0 disables the respective cache). Not safe to
// call concurrently with queries.
func (s *SharedPadCache) SetBounds(padNodes, evalEntries int) {
	if s.fp == nil {
		return
	}
	s.pads = lru.New[string, []uint64](padNodes)
	s.evals = lru.New[shareEvalKey, []uint64](evalEntries)
}

// Active reports whether the cache actually caches (fast-path ring).
func (s *SharedPadCache) Active() bool { return s.fp != nil }

// Matches reports whether the cache serves exactly the given secret
// material: the same seed over the same ring parameters. Attaching a
// session to a cache of different material would silently corrupt every
// answer, so callers check loudly.
func (s *SharedPadCache) Matches(r ring.Ring, seed drbg.Seed) bool {
	return s.seed == seed && r != nil && s.r.Name() == r.Name()
}

// NewClient builds a SeedClient attached to this shared cache. The client
// regenerates from the cache's own seed — there is no way to pair it with
// foreign secret material. On non-fast rings the client is an ordinary
// private SeedClient.
func (s *SharedPadCache) NewClient() *SeedClient {
	c := NewSeedClient(s.r, s.seed)
	if s.fp != nil {
		c.shared = s
	}
	return c
}

// pad returns the node's packed share pad, serving cross-session hits
// from the shared LRU and collapsing concurrent misses into one DRBG
// regeneration. m receives the calling session's tallies.
func (s *SharedPadCache) pad(key drbg.NodeKey, ks string, m *metrics.Counters) ([]uint64, error) {
	if v, ok := s.pads.Get(ks); ok {
		m.AddSharedPadHits(1)
		return v, nil
	}
	s.mu.Lock()
	if call, ok := s.padCalls[ks]; ok {
		s.mu.Unlock()
		m.AddSharedPadSingleflight(1)
		<-call.done
		return call.vec, call.err
	}
	// Re-check under the lock: the regeneration that raced our miss has
	// already retired its call entry and filled the cache.
	if v, ok := s.pads.Get(ks); ok {
		s.mu.Unlock()
		m.AddSharedPadHits(1)
		return v, nil
	}
	call := &padCall{done: make(chan struct{})}
	s.padCalls[ks] = call
	s.mu.Unlock()

	m.AddSharedPadMiss(1)
	vec := make([]uint64, s.fp.DegreeBound())
	err := s.fp.RandPacked(s.d.ForNode(key), vec)
	if err != nil {
		vec, err = nil, fmt.Errorf("sharing: node %s: %w", key, err)
	} else {
		s.pads.Add(ks, vec)
	}
	call.vec, call.err = vec, err
	s.mu.Lock()
	delete(s.padCalls, ks)
	s.mu.Unlock()
	close(call.done)
	return vec, err
}

// pointSig renders a point vector (canonical word residues, call order)
// to the comparable key string of the share-eval LRU.
func pointSig(xs []uint64) string {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[i*8:], x)
	}
	return string(b)
}

// boxVals lifts cached word values into the big.Int boundary
// representation (fresh allocations — cached words are never aliased into
// caller-visible big.Ints).
func boxVals(vals []uint64) []*big.Int {
	out := make([]*big.Int, len(vals))
	for i, v := range vals {
		out[i] = new(big.Int).SetUint64(v)
	}
	return out
}

// evalShares evaluates the node's client share at every point, serving
// repeated (node, point-set) requests — the hot-wave pattern where every
// session of one key asks for the same node at the same rotating point —
// from the shared eval LRU without touching the pad at all. Concurrent
// misses on one (node, point-set) run the Horner pass once; piggybacked
// waiters count as eval hits (they skipped the pass).
func (s *SharedPadCache) evalShares(key drbg.NodeKey, points []*big.Int, m *metrics.Counters) ([]*big.Int, error) {
	xs := make([]uint64, len(points))
	for i, p := range points {
		x, err := s.fp.PackPoint(p)
		if err != nil {
			return nil, err
		}
		xs[i] = x
	}
	ks := key.String()
	ek := shareEvalKey{node: ks, sig: pointSig(xs)}
	if v, ok := s.evals.Get(ek); ok {
		m.AddShareEvalHits(1)
		return boxVals(v), nil
	}
	s.mu.Lock()
	if call, ok := s.evalCalls[ek]; ok {
		s.mu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, call.err
		}
		m.AddShareEvalHits(1)
		return boxVals(call.vals), nil
	}
	if v, ok := s.evals.Get(ek); ok {
		s.mu.Unlock()
		m.AddShareEvalHits(1)
		return boxVals(v), nil
	}
	call := &evalCall{done: make(chan struct{})}
	s.evalCalls[ek] = call
	s.mu.Unlock()

	m.AddShareEvalMiss(1)
	vals, err := s.evalOnce(key, ks, xs, m)
	if err == nil {
		s.evals.Add(ek, vals)
	}
	call.vals, call.err = vals, err
	s.mu.Lock()
	delete(s.evalCalls, ek)
	s.mu.Unlock()
	close(call.done)
	if err != nil {
		return nil, err
	}
	return boxVals(vals), nil
}

// evalOnce runs the actual multi-point Horner pass over the (possibly
// freshly regenerated) pad.
func (s *SharedPadCache) evalOnce(key drbg.NodeKey, ks string, xs []uint64, m *metrics.Counters) ([]uint64, error) {
	vec, err := s.pad(key, ks, m)
	if err != nil {
		return nil, err
	}
	ff := s.fp.Fast()
	mont := make([]uint64, len(xs))
	ff.MFormVec(mont, xs)
	dst := make([]uint64, len(xs))
	ff.EvalMany(vec, mont, dst)
	return dst, nil
}
