package sharing

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sssearch/internal/poly"
)

// Binary layout of a share tree (preorder):
//
//	varint  nNodes
//	repeat nNodes times (preorder):
//	    varint  nChildren
//	    poly    share polynomial (poly wire format)
//
// Preorder with explicit child counts reconstructs the shape uniquely.

// maxTreeNodes bounds accepted trees (16M nodes).
const maxTreeNodes = 1 << 24

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Tree) MarshalBinary() ([]byte, error) {
	if t.Root == nil {
		return nil, errors.New("sharing: marshal of empty tree")
	}
	buf := binary.AppendUvarint(nil, uint64(t.Count()))
	var err error
	var rec func(n *Node)
	rec = func(n *Node) {
		if err != nil {
			return
		}
		buf = binary.AppendUvarint(buf, uint64(len(n.Children)))
		buf, err = n.Polynomial().AppendBinary(buf)
		if err != nil {
			return
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
	return buf, err
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *Tree) UnmarshalBinary(data []byte) error {
	tree, rest, err := DecodeTree(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errors.New("sharing: trailing bytes after tree")
	}
	*t = *tree
	return nil
}

// DecodeTree decodes one share tree from the front of data.
func DecodeTree(data []byte) (*Tree, []byte, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, nil, errors.New("sharing: bad node count")
	}
	if n == 0 || n > maxTreeNodes {
		return nil, nil, fmt.Errorf("sharing: node count %d out of range", n)
	}
	data = data[k:]
	remaining := n
	root, data, err := decodeNode(data, &remaining)
	if err != nil {
		return nil, nil, err
	}
	if remaining != 0 {
		return nil, nil, fmt.Errorf("sharing: node count mismatch: %d unconsumed", remaining)
	}
	return &Tree{Root: root}, data, nil
}

func decodeNode(data []byte, remaining *uint64) (*Node, []byte, error) {
	if *remaining == 0 {
		return nil, nil, errors.New("sharing: more nodes than declared")
	}
	*remaining--
	nc, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, nil, errors.New("sharing: bad child count")
	}
	if nc > *remaining {
		return nil, nil, fmt.Errorf("sharing: child count %d exceeds remaining nodes %d", nc, *remaining)
	}
	data = data[k:]
	p, rest, err := poly.DecodePoly(data)
	if err != nil {
		return nil, nil, err
	}
	data = rest
	node := &Node{Poly: p}
	for i := uint64(0); i < nc; i++ {
		var c *Node
		c, data, err = decodeNode(data, remaining)
		if err != nil {
			return nil, nil, err
		}
		node.Children = append(node.Children, c)
	}
	return node, data, nil
}

// ByteSize returns the serialized size of the tree in bytes — the storage
// metric of experiment E7.
func (t *Tree) ByteSize() int {
	b, err := t.MarshalBinary()
	if err != nil {
		return 0
	}
	return len(b)
}
