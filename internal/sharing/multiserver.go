package sharing

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"sssearch/internal/drbg"
	"sssearch/internal/poly"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/shamir"
)

// This file implements the paper's §4.2 extension: "this can easily be
// extended to a model with multiple servers, in which the client together
// with k out of n servers … can reconstruct the shared secret polynomial."
//
// Construction: split f = f_client + f_rest as usual, then Shamir-share
// every coefficient of f_rest with threshold k among n servers. Server j
// stores the polynomial whose coefficients are its Shamir shares. Because
// Lagrange reconstruction at 0 is a fixed linear combination Σ λ_j·y_j and
// evaluation-at-a is linear in the coefficients, the client recombines
// *scalar evaluations* from any k servers:
//
//	f_rest(a) = Σ_j λ_j · share_j(a)  (mod p)
//
// so the per-query protocol stays one scalar per node per server.
// Shamir needs a field, so multi-server mode requires the F_p ring.

// ServerShare is one server's share tree plus its Shamir evaluation point.
type ServerShare struct {
	X    uint32
	Tree *Tree
}

// MultiSplit produces the client seed share (implicit, from seed) and n
// server share trees with reconstruction threshold k. Only FpCyclotomic
// rings are supported (Shamir needs a field).
func MultiSplit(enc *polyenc.Tree, seed drbg.Seed, k, n int, rng io.Reader) ([]ServerShare, error) {
	if enc == nil || enc.Root == nil {
		return nil, errors.New("sharing: nil encoded tree")
	}
	// Reject non-field rings before paying for the split.
	if _, ok := enc.Ring.(*ring.FpCyclotomic); !ok {
		return nil, fmt.Errorf("sharing: multi-server mode requires the F_p ring, got %s", enc.Ring.Name())
	}
	// First compute the single-server tree (client pad removed), then
	// Shamir-share it.
	rest, err := Split(enc, seed)
	if err != nil {
		return nil, err
	}
	return MultiShare(enc.Ring, rest, k, n, rng)
}

// MultiShare Shamir-shares an existing single-server share tree (the
// "rest" part left by Split) across n servers with threshold k — the
// second half of MultiSplit, usable when the encoded tree is gone and
// only the outsourced server store remains. Server j's share point is
// X = j+1 in the returned order.
func MultiShare(r ring.Ring, rest *Tree, k, n int, rng io.Reader) ([]ServerShare, error) {
	if rest == nil || rest.Root == nil {
		return nil, errors.New("sharing: nil share tree")
	}
	fpRing, ok := r.(*ring.FpCyclotomic)
	if !ok {
		return nil, fmt.Errorf("sharing: multi-server mode requires the F_p ring, got %s", r.Name())
	}
	scheme, err := shamir.NewScheme(fpRing.Field(), k, n)
	if err != nil {
		return nil, err
	}
	// Shamir-share each node polynomial coefficient-wise.
	roots, err := multiSplitNode(fpRing, scheme, rest.Root, rng, n)
	if err != nil {
		return nil, err
	}
	out := make([]ServerShare, n)
	for j := 0; j < n; j++ {
		out[j] = ServerShare{X: uint32(j + 1), Tree: &Tree{Root: roots[j]}}
	}
	return out, nil
}

// multiSplitNode returns the n per-server images of the subtree rooted at n.
func multiSplitNode(r *ring.FpCyclotomic, scheme *shamir.Scheme, n *Node, rng io.Reader, servers int) ([]*Node, error) {
	bound := r.DegreeBound()
	parts := make([][]*big.Int, servers) // parts[j][i] = coeff i of server j
	for j := range parts {
		parts[j] = make([]*big.Int, bound)
	}
	np := n.Polynomial()
	for i := 0; i < bound; i++ {
		shares, err := scheme.Split(np.Coeff(i), rng)
		if err != nil {
			return nil, err
		}
		for j := range parts {
			parts[j][i] = shares[j].Y
		}
	}
	nodes := make([]*Node, servers)
	for j := range nodes {
		nodes[j] = &Node{Poly: poly.New(parts[j]...)}
	}
	for _, c := range n.Children {
		childNodes, err := multiSplitNode(r, scheme, c, rng, servers)
		if err != nil {
			return nil, err
		}
		for j := range nodes {
			nodes[j].Children = append(nodes[j].Children, childNodes[j])
		}
	}
	return nodes, nil
}

// ServerEval is one server's scalar answer for a node.
type ServerEval struct {
	X     uint32
	Value *big.Int
}

// CombineServerEvals reconstructs f_rest(a) from >= k scalar server
// evaluations via Lagrange interpolation at zero. Fast-path rings combine
// on fastfield words; the big.Int interpolation remains the fallback for
// wide moduli (and the behavioral reference — both paths are
// differentially tested against each other).
func CombineServerEvals(r *ring.FpCyclotomic, evals []ServerEval, k int) (*big.Int, error) {
	if ff := r.Fast(); ff != nil && len(evals) >= k {
		xs := make([]uint64, len(evals))
		ys := make([]uint64, len(evals))
		for i, e := range evals {
			xs[i] = uint64(e.X)
			ys[i] = ff.ReduceBig(e.Value)
		}
		if lag, err := ff.LagrangeAtZero(xs); err == nil {
			return new(big.Int).SetUint64(lag.Combine(ys)), nil
		}
		// Degenerate point sets fall through to the big.Int path for its
		// established error reporting.
	}
	shares := make([]shamir.Share, len(evals))
	for i, e := range evals {
		shares[i] = shamir.Share{X: e.X, Y: e.Value}
	}
	return shamir.InterpolateAt(r.Field(), shares, big.NewInt(0), k)
}

// MultiReconstructEval computes the full f(a) from the client's seed share
// and >= k server evaluations.
func MultiReconstructEval(r *ring.FpCyclotomic, client *SeedClient, key drbg.NodeKey, a *big.Int, evals []ServerEval, k int) (*big.Int, error) {
	rest, err := CombineServerEvals(r, evals, k)
	if err != nil {
		return nil, err
	}
	cv, err := client.EvalShare(key, a)
	if err != nil {
		return nil, err
	}
	return r.Field().Add(cv, rest), nil
}
