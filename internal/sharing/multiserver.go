package sharing

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"sssearch/internal/drbg"
	"sssearch/internal/fastfield"
	"sssearch/internal/parwalk"
	"sssearch/internal/poly"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/shamir"
)

// This file implements the paper's §4.2 extension: "this can easily be
// extended to a model with multiple servers, in which the client together
// with k out of n servers … can reconstruct the shared secret polynomial."
//
// Construction: split f = f_client + f_rest as usual, then Shamir-share
// every coefficient of f_rest with threshold k among n servers. Server j
// stores the polynomial whose coefficients are its Shamir shares. Because
// Lagrange reconstruction at 0 is a fixed linear combination Σ λ_j·y_j and
// evaluation-at-a is linear in the coefficients, the client recombines
// *scalar evaluations* from any k servers:
//
//	f_rest(a) = Σ_j λ_j · share_j(a)  (mod p)
//
// so the per-query protocol stays one scalar per node per server.
// Shamir needs a field, so multi-server mode requires the F_p ring.

// MultiShareLabel is the DRBG domain-separation label for the Shamir mask
// streams of MultiShare/MultiSplit.
//
// v1 marks the move off the shared-rng construction: instead of drawing
// every Shamir coefficient from one sequential rng stream (which forced a
// sequential tree walk — any reordering changed every share), MultiShare
// reads a single mask seed from its rng and derives an independent
// per-node stream from it, exactly the construction Split uses for client
// pads. Each node's k−1 mask vectors come from its own path-keyed stream
// via the bulk sampler, so the walk order — and hence the parwalk
// schedule — cannot leak into the output: MultiShare is byte-identical to
// MultiShareSequential at every Parallelism setting.
const MultiShareLabel = "sss/shamir-share/v1"

// ServerShare is one server's share tree plus its Shamir evaluation point.
type ServerShare struct {
	X    uint32
	Tree *Tree
}

// MultiOpts tunes MultiSplit/MultiShare.
type MultiOpts struct {
	// Parallelism bounds the worker pool of the Shamir-sharing tree walk:
	// 0 selects runtime.GOMAXPROCS, 1 forces a sequential walk. The output
	// is byte-identical at every setting (see MultiShareLabel).
	Parallelism int
}

// MultiSplit produces the client seed share (implicit, from seed) and n
// server share trees with reconstruction threshold k. Only FpCyclotomic
// rings are supported (Shamir needs a field). rng supplies one 32-byte
// mask seed; all Shamir mask randomness derives from it per node.
func MultiSplit(enc *polyenc.Tree, seed drbg.Seed, k, n int, rng io.Reader) ([]ServerShare, error) {
	return MultiSplitWithOpts(enc, seed, k, n, rng, MultiOpts{})
}

// MultiSplitWithOpts is MultiSplit with an explicit parallelism bound,
// applied to both the additive split and the Shamir-sharing walk.
func MultiSplitWithOpts(enc *polyenc.Tree, seed drbg.Seed, k, n int, rng io.Reader, o MultiOpts) ([]ServerShare, error) {
	if enc == nil || enc.Root == nil {
		return nil, errors.New("sharing: nil encoded tree")
	}
	// Reject non-field rings before paying for the split.
	if _, ok := enc.Ring.(*ring.FpCyclotomic); !ok {
		return nil, fmt.Errorf("sharing: multi-server mode requires the F_p ring, got %s", enc.Ring.Name())
	}
	// First compute the single-server tree (client pad removed), then
	// Shamir-share it.
	rest, err := SplitWithOpts(enc, seed, SplitOpts{Parallelism: o.Parallelism})
	if err != nil {
		return nil, err
	}
	return MultiShareWithOpts(enc.Ring, rest, k, n, rng, o)
}

// MultiSplitSequential is the sequential reference implementation of
// MultiSplit: the same additive split and the same per-node mask streams,
// but a plain recursive walk computing each Shamir share coefficient-wise
// in big.Int field arithmetic. It is retained as the differential-test
// anchor — MultiSplit must match it byte for byte at every Parallelism —
// and the before side of the multiSplit benchmark target.
func MultiSplitSequential(enc *polyenc.Tree, seed drbg.Seed, k, n int, rng io.Reader) ([]ServerShare, error) {
	if enc == nil || enc.Root == nil {
		return nil, errors.New("sharing: nil encoded tree")
	}
	if _, ok := enc.Ring.(*ring.FpCyclotomic); !ok {
		return nil, fmt.Errorf("sharing: multi-server mode requires the F_p ring, got %s", enc.Ring.Name())
	}
	rest, err := SplitSequential(enc, seed)
	if err != nil {
		return nil, err
	}
	return MultiShareSequential(enc.Ring, rest, k, n, rng)
}

// MultiShare Shamir-shares an existing single-server share tree (the
// "rest" part left by Split) across n servers with threshold k — the
// second half of MultiSplit, usable when the encoded tree is gone and
// only the outsourced server store remains. Server j's share point is
// X = j+1 in the returned order.
//
// rng is read exactly once, for a 32-byte mask seed; every node's Shamir
// mask vectors then come from the node's own path-keyed DRBG stream
// (MultiShareLabel), drawn through the bulk sampler. On fast-path rings
// the share arithmetic is vectorized — share_j = rest + Σ_d mask_d·(j^d)
// in one fused scalar-multiply-add pass per mask — and subtrees are
// shared in parallel on a bounded pool; with the fast path off the
// sequential big.Int walk takes over (and, like ring.Rand, consumes the
// mask streams per coefficient instead of in bulk, so the two settings
// produce different — but internally consistent — share trees).
func MultiShare(r ring.Ring, rest *Tree, k, n int, rng io.Reader) ([]ServerShare, error) {
	return MultiShareWithOpts(r, rest, k, n, rng, MultiOpts{})
}

// MultiShareWithOpts is MultiShare with an explicit parallelism bound.
func MultiShareWithOpts(r ring.Ring, rest *Tree, k, n int, rng io.Reader, o MultiOpts) ([]ServerShare, error) {
	fpRing, d, err := multiShareSetup(r, rest, k, n, rng)
	if err != nil {
		return nil, err
	}
	if fpRing.Fast() == nil {
		return multiShareSequential(fpRing, d, rest, k, n)
	}
	m := &multiSharer{
		fp:   fpRing,
		ff:   fpRing.Fast(),
		d:    d,
		k:    k,
		n:    n,
		pool: parwalk.New(o.Parallelism),
		xPow: shamirPointPowers(fpRing.Fast(), k, n),
	}
	roots := make([]*Node, n)
	for j := range roots {
		roots[j] = &Node{}
	}
	m.walk(rest.Root, drbg.NodeKey{}, roots)
	if err := m.pool.Wait(); err != nil {
		return nil, err
	}
	return wrapServerShares(roots), nil
}

// MultiShareSequential is the sequential big.Int reference for MultiShare:
// identical mask streams (same label, same bulk draws on fast-path
// rings), but every share coefficient computed by an independent Horner
// evaluation in big.Int field arithmetic and a plain recursive walk.
// MultiShare at any Parallelism must reproduce its output byte for byte —
// the differential anchor for both the vectorized share arithmetic and
// the parallel schedule.
func MultiShareSequential(r ring.Ring, rest *Tree, k, n int, rng io.Reader) ([]ServerShare, error) {
	fpRing, d, err := multiShareSetup(r, rest, k, n, rng)
	if err != nil {
		return nil, err
	}
	return multiShareSequential(fpRing, d, rest, k, n)
}

// multiShareSetup validates the arguments and derives the mask-stream
// deriver from one 32-byte read of rng.
func multiShareSetup(r ring.Ring, rest *Tree, k, n int, rng io.Reader) (*ring.FpCyclotomic, *drbg.Deriver, error) {
	if rest == nil || rest.Root == nil {
		return nil, nil, errors.New("sharing: nil share tree")
	}
	fpRing, ok := r.(*ring.FpCyclotomic)
	if !ok {
		return nil, nil, fmt.Errorf("sharing: multi-server mode requires the F_p ring, got %s", r.Name())
	}
	// Bounds (1 <= k <= n, n < p) via the scheme constructor, for one
	// consistent set of error messages.
	if _, err := shamir.NewScheme(fpRing.Field(), k, n); err != nil {
		return nil, nil, err
	}
	var maskSeed drbg.Seed
	if _, err := io.ReadFull(rng, maskSeed[:]); err != nil {
		return nil, nil, fmt.Errorf("sharing: reading mask seed: %w", err)
	}
	return fpRing, drbg.NewDeriver(maskSeed, MultiShareLabel), nil
}

// shamirPointPowers precomputes the Montgomery form of (j+1)^d for every
// server j < n and mask degree 1 <= d < k — the scalars of the vectorized
// share evaluation.
func shamirPointPowers(ff *fastfield.Field, k, n int) [][]uint64 {
	out := make([][]uint64, n)
	for j := range out {
		out[j] = make([]uint64, k-1)
		x := ff.Reduce(uint64(j + 1))
		pw := x
		for d := 0; d < k-1; d++ {
			out[j][d] = ff.MForm(pw)
			pw = ff.Mul(pw, x)
		}
	}
	return out
}

func wrapServerShares(roots []*Node) []ServerShare {
	out := make([]ServerShare, len(roots))
	for j, root := range roots {
		out[j] = ServerShare{X: uint32(j + 1), Tree: &Tree{Root: root}}
	}
	return out
}

// multiSharer is one parallel packed Shamir-sharing run.
type multiSharer struct {
	fp   *ring.FpCyclotomic
	ff   *fastfield.Field
	d    *drbg.Deriver
	k, n int
	pool *parwalk.Pool
	xPow [][]uint64 // xPow[j][d-1] = MForm((j+1)^d)
}

func (m *multiSharer) walk(src *Node, key drbg.NodeKey, outs []*Node) {
	if m.pool.Failed() {
		return
	}
	if err := m.fill(src, key, outs); err != nil {
		m.pool.Fail(fmt.Errorf("sharing: node %s: %w", key, err))
		return
	}
	if len(src.Children) == 0 {
		return
	}
	for j := range outs {
		outs[j].Children = make([]*Node, len(src.Children))
	}
	for i, c := range src.Children {
		c := c // pre-1.22 loop-var capture
		ck := key.Child(uint32(i))
		childOuts := make([]*Node, m.n)
		for j := range childOuts {
			childOuts[j] = &Node{}
			outs[j].Children[i] = childOuts[j]
		}
		m.pool.Do(func() { m.walk(c, ck, childOuts) })
	}
}

// fill computes one node's n Shamir share polynomials: k−1 mask vectors
// from the node's own stream, then share_j = rest + Σ_d mask_d·(j+1)^d
// as fused scalar-multiply-add passes.
func (m *multiSharer) fill(src *Node, key drbg.NodeKey, outs []*Node) error {
	masks, err := drawMasks(m.fp, m.d, key, m.k)
	if err != nil {
		return err
	}
	rest := m.packedOf(src)
	bound := m.fp.DegreeBound()
	for j := 0; j < m.n; j++ {
		share := make([]uint64, bound)
		copy(share, rest)
		for d, mv := range masks {
			m.ff.ScalarMulAddVec(share, mv, m.xPow[j][d])
		}
		outs[j].Packed = share
	}
	return nil
}

// drawMasks draws the node's k−1 Shamir mask vectors from its path-keyed
// stream, in bulk, in ascending degree order — the consumption pattern
// both MultiShare and MultiShareSequential share.
func drawMasks(fp *ring.FpCyclotomic, d *drbg.Deriver, key drbg.NodeKey, k int) ([][]uint64, error) {
	stream := d.ForNode(key)
	masks := make([][]uint64, k-1)
	for i := range masks {
		masks[i] = make([]uint64, fp.DegreeBound())
		if err := fp.RandPacked(stream, masks[i]); err != nil {
			return nil, err
		}
	}
	return masks, nil
}

// packedOf returns the node's canonical packed coefficients (length ≤
// bound), re-canonicalizing through the ring when the tree was built off
// the packed path.
func (m *multiSharer) packedOf(src *Node) []uint64 {
	if src.Packed != nil {
		return src.Packed
	}
	if vec, ok := m.fp.Pack(src.Poly); ok && len(vec) <= m.fp.DegreeBound() {
		return vec
	}
	// Reduce folds into the canonical representative, which always packs
	// on a fast-path ring.
	vec, _ := m.fp.Pack(m.fp.Reduce(src.Poly))
	return vec
}

// multiShareSequential is the recursive big.Int walk behind
// MultiShareSequential and the fast-path-off fallback of MultiShare. On
// fast-path rings the masks come from the same bulk draws as the parallel
// walk; with the fast path off they are drawn through ring.Rand's
// per-coefficient path (see MultiShare).
func multiShareSequential(fp *ring.FpCyclotomic, d *drbg.Deriver, rest *Tree, k, n int) ([]ServerShare, error) {
	roots, err := multiShareNodeRef(fp, d, rest.Root, drbg.NodeKey{}, k, n)
	if err != nil {
		return nil, err
	}
	return wrapServerShares(roots), nil
}

// multiShareNodeRef returns the n per-server images of the subtree at src.
func multiShareNodeRef(fp *ring.FpCyclotomic, d *drbg.Deriver, src *Node, key drbg.NodeKey, k, n int) ([]*Node, error) {
	bound := fp.DegreeBound()
	f := fp.Field()
	// Mask coefficients as big.Ints: masks[deg][i].
	masks := make([][]*big.Int, k-1)
	if fp.Fast() != nil {
		vecs, err := drawMasks(fp, d, key, k)
		if err != nil {
			return nil, fmt.Errorf("sharing: node %s: %w", key, err)
		}
		for deg, vec := range vecs {
			masks[deg] = make([]*big.Int, bound)
			for i, v := range vec {
				masks[deg][i] = new(big.Int).SetUint64(v)
			}
		}
	} else {
		stream := d.ForNode(key)
		for deg := range masks {
			pad, err := fp.Rand(stream)
			if err != nil {
				return nil, fmt.Errorf("sharing: node %s: %w", key, err)
			}
			masks[deg] = make([]*big.Int, bound)
			for i := range masks[deg] {
				masks[deg][i] = pad.Coeff(i)
			}
		}
	}
	np := src.Polynomial()
	nodes := make([]*Node, n)
	for j := range nodes {
		x := f.FromInt64(int64(j + 1))
		coeffs := make([]*big.Int, bound)
		for i := 0; i < bound; i++ {
			// Horner over the degree-(k−1) Shamir polynomial of
			// coefficient i: g_i(x) = rest_i + Σ_d masks[d][i]·x^d.
			acc := f.Zero()
			for deg := k - 2; deg >= 0; deg-- {
				acc = f.Mul(f.Add(acc, masks[deg][i]), x)
			}
			coeffs[i] = f.Add(acc, f.Reduce(np.Coeff(i)))
		}
		nodes[j] = &Node{Poly: poly.New(coeffs...)}
	}
	for i, c := range src.Children {
		childNodes, err := multiShareNodeRef(fp, d, c, key.Child(uint32(i)), k, n)
		if err != nil {
			return nil, err
		}
		for j := range nodes {
			nodes[j].Children = append(nodes[j].Children, childNodes[j])
		}
	}
	return nodes, nil
}

// ServerEval is one server's scalar answer for a node.
type ServerEval struct {
	X     uint32
	Value *big.Int
}

// CombineServerEvals reconstructs f_rest(a) from >= k scalar server
// evaluations via Lagrange interpolation at zero. Fast-path rings combine
// on fastfield words; the big.Int interpolation remains the fallback for
// wide moduli (and the behavioral reference — both paths are
// differentially tested against each other).
func CombineServerEvals(r *ring.FpCyclotomic, evals []ServerEval, k int) (*big.Int, error) {
	if ff := r.Fast(); ff != nil && len(evals) >= k {
		xs := make([]uint64, len(evals))
		ys := make([]uint64, len(evals))
		for i, e := range evals {
			xs[i] = uint64(e.X)
			ys[i] = ff.ReduceBig(e.Value)
		}
		if lag, err := ff.LagrangeAtZero(xs); err == nil {
			return new(big.Int).SetUint64(lag.Combine(ys)), nil
		}
		// Degenerate point sets fall through to the big.Int path for its
		// established error reporting.
	}
	shares := make([]shamir.Share, len(evals))
	for i, e := range evals {
		shares[i] = shamir.Share{X: e.X, Y: e.Value}
	}
	return shamir.InterpolateAt(r.Field(), shares, big.NewInt(0), k)
}

// MultiReconstructEval computes the full f(a) from the client's seed share
// and >= k server evaluations.
func MultiReconstructEval(r *ring.FpCyclotomic, client *SeedClient, key drbg.NodeKey, a *big.Int, evals []ServerEval, k int) (*big.Int, error) {
	rest, err := CombineServerEvals(r, evals, k)
	if err != nil {
		return nil, err
	}
	cv, err := client.EvalShare(key, a)
	if err != nil {
		return nil, err
	}
	return r.Field().Add(cv, rest), nil
}
