// Package resilience is the shared fault-tolerance layer of the serving
// fabric: a retry Policy (per-attempt timeouts, bounded retries with
// exponential backoff and deterministic jitter, a hedging delay for
// fan-outs), and an error classifier separating retryable transport
// faults (resets, timeouts, short reads, closed connections) from
// terminal semantic errors (server-side answers such as unknown keys or
// foreign shard keys, payload decode failures).
//
// The classifier is what keeps retries answer-preserving: EvalNodes and
// FetchPolys are pure reads over an immutable share tree and Prune is an
// advisory no-op, so re-issuing a request after a TRANSPORT fault can
// only reproduce the byte-identical answer — while a SEMANTIC error is
// the answer, and retrying it against the same or another honest server
// would only repeat it. Unknown errors default to terminal, so a retry
// can never paper over a real failure.
package resilience

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"syscall"
	"time"
)

// ErrTransient marks an error as a retryable transport fault when wrapped
// with %w: packages whose failures the classifier cannot recognise
// structurally (injected faults, pool exhaustion while members re-dial)
// tag them instead of teaching this package their types.
var ErrTransient = errors.New("resilience: transient fault")

// Defaults for Policy zero fields.
const (
	DefaultMaxAttempts = 3
	DefaultBaseBackoff = 5 * time.Millisecond
	DefaultMaxBackoff  = 500 * time.Millisecond
)

// Policy bounds one logical operation's fault handling. The zero value is
// usable: 3 attempts, 5 ms base backoff doubling to a 500 ms cap, no
// per-attempt timeout, no hedging.
type Policy struct {
	// MaxAttempts is the total number of tries including the first.
	// Zero selects DefaultMaxAttempts; 1 disables retries.
	MaxAttempts int

	// PerAttemptTimeout bounds each individual try (a child context
	// deadline). Zero leaves attempts bounded only by the caller's
	// context. A stalled server — dropped frame, hung daemon — is
	// indistinguishable from a slow one without this.
	PerAttemptTimeout time.Duration

	// BaseBackoff and MaxBackoff shape the exponential backoff between
	// attempts: sleep ~ min(MaxBackoff, BaseBackoff << attempt), scaled
	// by deterministic jitter in [0.5, 1.0]. Zeroes select the defaults.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// HedgeDelay is how long a fan-out waits on its primary calls before
	// launching a spare. Do ignores it; hedging fan-outs
	// (core.MultiServer) read it from here so deployments tune one knob
	// set.
	HedgeDelay time.Duration

	// Seed makes the jitter sequence deterministic; two Policies with
	// equal Seed back off identically. Zero is a valid seed.
	Seed int64

	// Retryable overrides the error classifier for Do. Nil selects
	// the package Retryable.
	Retryable func(error) bool

	// Breaker, when non-nil, is consulted before every attempt: while it
	// is open, Do fails fast with ErrBreakerOpen (still subject to the
	// retry budget, so a short open window can heal mid-operation), and
	// every attempt's outcome is recorded so consecutive overload sheds
	// trip it. Share one Breaker per target, not per call.
	Breaker *Breaker

	// OnRetry, when non-nil, is invoked before each re-attempt with the
	// upcoming attempt number (1-based) and the error being retried —
	// the metrics hook.
	OnRetry func(attempt int, err error)
}

// Retryable reports whether err is a transport-class fault that a retry
// (on a fresh connection or another replica) may cure without changing
// answer semantics. Unknown errors are terminal.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	// Caller cancellation is never retried; an expired attempt deadline is
	// (the parent context is checked separately by Do).
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	// Connection lifecycle faults: peer reset or vanished, local close,
	// mid-stream cut (EOF surfaced from a read that expected more).
	switch {
	case errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.EPIPE):
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		// Any socket-layer error is transport-class; semantic failures
		// never arrive as net.Error.
		return true
	}
	// An error may carry its own verdict (wire.RemoteError with
	// CodeOverloaded: the server sheds before doing any work, so a retry
	// is explicitly answer-preserving). The hint can only widen the
	// retryable set for errors the structural rules above call terminal.
	var rh interface{ RetryableHint() bool }
	if errors.As(err, &rh) && rh.RetryableHint() {
		return true
	}
	// A fast-fail from an open breaker heals after the cooldown probe.
	if errors.Is(err, ErrBreakerOpen) {
		return true
	}
	return false
}

// RetryAfter extracts a server-provided back-off hint from err (a shed
// response's retry-after field). ok is false when err carries none.
func RetryAfter(err error) (time.Duration, bool) {
	var h interface{ RetryAfterHint() (time.Duration, bool) }
	if errors.As(err, &h) {
		return h.RetryAfterHint()
	}
	return 0, false
}

// Overloaded reports whether err is a load-shed answer from a server at
// capacity — the signal the circuit breaker counts.
func Overloaded(err error) bool {
	var o interface{ Overloaded() bool }
	if errors.As(err, &o) {
		return o.Overloaded()
	}
	return false
}

// Backoff returns the sleep before 1-based retry attempt n: exponential
// from BaseBackoff, capped at MaxBackoff, scaled by a deterministic
// jitter factor in [0.5, 1.0) derived from Seed and n.
func (p Policy) Backoff(n int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = DefaultMaxBackoff
	}
	d := base
	for i := 1; i < n && d < maxB; i++ {
		// Clamp before doubling can overflow: once d reaches half the cap
		// the next doubling would meet or exceed it anyway, so jump to the
		// cap. Without this, an effectively-unbounded MaxBackoff lets
		// d*2 wrap negative near attempt 63.
		if d >= maxB>>1 {
			d = maxB
			break
		}
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	// splitmix64 of (seed, attempt): full-period, stateless, so concurrent
	// Do loops over one Policy need no locked rng.
	x := uint64(p.Seed) + uint64(n)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	frac := float64(x>>11) / (1 << 53) // [0, 1)
	return time.Duration(float64(d) * (0.5 + frac/2))
}

func (p Policy) attempts() int {
	if p.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return p.MaxAttempts
}

func (p Policy) retryable(err error) bool {
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return Retryable(err)
}

// sleepFor is the pause before 1-based retry attempt n: the policy's
// jittered backoff, stretched to any server-provided retry-after hint
// carried by err (the server knows its own queue depth better than the
// client's exponential guess).
func (p Policy) sleepFor(n int, err error) time.Duration {
	d := p.Backoff(n)
	if hint, ok := RetryAfter(err); ok && hint > d {
		d = hint
	}
	return d
}

// Do runs op under the policy: each attempt gets a child context bounded
// by PerAttemptTimeout, retryable failures back off and re-run until the
// attempts or the caller's context run out, terminal failures return
// immediately. The zero-value T is returned alongside any error.
func Do[T any](ctx context.Context, p Policy, op func(ctx context.Context) (T, error)) (T, error) {
	var zero T
	attempts := p.attempts()
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return zero, err
			}
			return zero, cerr
		}
		if p.Breaker != nil && !p.Breaker.Allow() {
			err = ErrBreakerOpen
		} else {
			actx, cancel := ctx, context.CancelFunc(func() {})
			if p.PerAttemptTimeout > 0 {
				actx, cancel = context.WithTimeout(ctx, p.PerAttemptTimeout)
			}
			var v T
			v, err = op(actx)
			cancel()
			if p.Breaker != nil {
				p.Breaker.Record(err)
			}
			if err == nil {
				return v, nil
			}
		}
		// The caller's own context ending is always terminal, even when
		// the error it surfaced as would otherwise classify retryable.
		if ctx.Err() != nil || attempt >= attempts || !p.retryable(err) {
			return zero, err
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		select {
		case <-time.After(p.sleepFor(attempt, err)):
		case <-ctx.Done():
			return zero, err
		}
	}
}
