package resilience

import (
	"context"
	"math/big"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
)

// API wraps any core.ServerAPI with the retry policy: every call runs
// under Do, so transient faults of the wrapped transport (a pool whose
// members are mid-re-dial, a router whose replicas flap) are absorbed up
// to the policy's attempt budget while semantic errors pass straight
// through. Safe for concurrent use if the inner API is.
type API struct {
	Inner  core.ServerAPI
	Policy Policy
}

// EvalNodes implements core.ServerAPI.
func (a *API) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	return Do(context.Background(), a.Policy, func(ctx context.Context) ([]core.NodeEval, error) {
		return a.Inner.EvalNodes(keys, points)
	})
}

// FetchPolys implements core.ServerAPI.
func (a *API) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return Do(context.Background(), a.Policy, func(ctx context.Context) ([]core.NodePoly, error) {
		return a.Inner.FetchPolys(keys)
	})
}

// Prune implements core.ServerAPI.
func (a *API) Prune(keys []drbg.NodeKey) error {
	_, err := Do(context.Background(), a.Policy, func(ctx context.Context) (struct{}, error) {
		return struct{}{}, a.Inner.Prune(keys)
	})
	return err
}

var _ core.ServerAPI = (*API)(nil)
