package resilience

import (
	"context"
	"math/big"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
)

// API wraps any core.ServerAPI with the retry policy: every call runs
// under Do, so transient faults of the wrapped transport (a pool whose
// members are mid-re-dial, a router whose replicas flap) are absorbed up
// to the policy's attempt budget while semantic errors pass straight
// through. Safe for concurrent use if the inner API is.
type API struct {
	Inner  core.ServerAPI
	Policy Policy
}

// EvalNodes implements core.ServerAPI.
func (a *API) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	return a.EvalNodesCtx(context.Background(), keys, points)
}

// EvalNodesCtx implements core.CtxEvaler: the caller's ctx bounds the
// whole retry loop and flows into every attempt, so each retried leg of
// a sampled query carries the query's trace ID.
func (a *API) EvalNodesCtx(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	return Do(ctx, a.Policy, func(ctx context.Context) ([]core.NodeEval, error) {
		return core.EvalNodesWithCtx(ctx, a.Inner, keys, points)
	})
}

// FetchPolys implements core.ServerAPI.
func (a *API) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return Do(context.Background(), a.Policy, func(ctx context.Context) ([]core.NodePoly, error) {
		return a.Inner.FetchPolys(keys)
	})
}

// Prune implements core.ServerAPI.
func (a *API) Prune(keys []drbg.NodeKey) error {
	_, err := Do(context.Background(), a.Policy, func(ctx context.Context) (struct{}, error) {
		return struct{}{}, a.Inner.Prune(keys)
	})
	return err
}

var _ core.ServerAPI = (*API)(nil)
var _ core.CtxEvaler = (*API)(nil)
