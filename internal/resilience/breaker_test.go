package resilience

import (
	"context"
	"errors"
	"math"
	"syscall"
	"testing"
	"time"
)

// shedErr mimics a wire.RemoteError carrying CodeOverloaded without
// importing wire (which would cycle through client packages in spirit):
// the resilience layer only ever sees the hint interfaces.
type shedErr struct{ after time.Duration }

func (e *shedErr) Error() string       { return "server overloaded (shed)" }
func (e *shedErr) Overloaded() bool    { return true }
func (e *shedErr) RetryableHint() bool { return true }
func (e *shedErr) RetryAfterHint() (time.Duration, bool) {
	return e.after, e.after > 0
}

func TestBackoffNoOverflowAtLargeAttempts(t *testing.T) {
	// Regression: with an effectively-unbounded cap, BaseBackoff doubled
	// past attempt 62 used to wrap negative. The clamp must hold the
	// result positive and at most MaxBackoff for every attempt count.
	p := Policy{BaseBackoff: 5 * time.Millisecond, MaxBackoff: math.MaxInt64}
	for _, n := range []int{62, 63, 64, 100, 1 << 20} {
		d := p.Backoff(n)
		if d <= 0 {
			t.Fatalf("attempt %d: backoff overflowed to %v", n, d)
		}
		if d > p.MaxBackoff {
			t.Fatalf("attempt %d: backoff %v above cap", n, d)
		}
	}
	// Sane caps keep their ceiling too.
	capped := Policy{BaseBackoff: time.Millisecond, MaxBackoff: 64 * time.Millisecond}
	for n := 1; n < 200; n++ {
		if d := capped.Backoff(n); d <= 0 || d > 64*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v outside (0, max]", n, d)
		}
	}
}

func TestRetryAfterHintHonored(t *testing.T) {
	p := Policy{BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}
	// The server's hint stretches the sleep past the policy backoff...
	if d := p.sleepFor(1, &shedErr{after: 3 * time.Millisecond}); d != 3*time.Millisecond {
		t.Fatalf("sleepFor with hint = %v, want 3ms", d)
	}
	// ...but a hint below the computed backoff never shortens it.
	slow := Policy{BaseBackoff: 50 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	if d := slow.sleepFor(1, &shedErr{after: time.Millisecond}); d < 25*time.Millisecond {
		t.Fatalf("hint shortened backoff to %v", d)
	}
	if d, ok := RetryAfter(errors.New("plain")); ok || d != 0 {
		t.Fatal("plain error produced a retry-after hint")
	}
}

func TestShedClassification(t *testing.T) {
	shed := &shedErr{}
	if !Retryable(shed) {
		t.Fatal("shed error must classify retryable")
	}
	if !Overloaded(shed) {
		t.Fatal("shed error must classify overloaded")
	}
	if Overloaded(syscall.ECONNRESET) {
		t.Fatal("transport fault classified as overload")
	}
	if !Retryable(ErrBreakerOpen) {
		t.Fatal("breaker-open must classify retryable")
	}
	if Overloaded(ErrBreakerOpen) {
		t.Fatal("breaker-open is a client-side fast-fail, not a server shed")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	trips := 0
	b := &Breaker{Threshold: 3, Cooldown: 10 * time.Millisecond, OnTrip: func() { trips++ }}
	shed := &shedErr{}

	// Closed: passes through, counts consecutive sheds.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused a call")
		}
		b.Record(shed)
	}
	// A successful answer resets the streak.
	b.Record(nil)
	for i := 0; i < 2; i++ {
		b.Record(shed)
	}
	if b.Open() {
		t.Fatal("breaker tripped below threshold after a reset")
	}
	b.Record(shed) // third consecutive → trip
	if !b.Open() || trips != 1 || b.Trips() != 1 {
		t.Fatalf("breaker not tripped: open=%v trips=%d", b.Open(), trips)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call inside cooldown")
	}

	// After the cooldown, exactly one probe goes through.
	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Shed probe → open again for a fresh cooldown.
	b.Record(shed)
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call")
	}
	time.Sleep(15 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Record(nil) // healthy probe → closed
	if b.Open() {
		t.Fatal("breaker still open after healthy probe")
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a call after recovery")
	}
	b.Record(nil)
	if b.Trips() != 1 {
		t.Fatalf("re-open after shed probe double-counted: trips=%d", b.Trips())
	}
}

func TestBreakerTransportFaultsAreNeutral(t *testing.T) {
	b := &Breaker{Threshold: 2, Cooldown: time.Minute}
	shed := &shedErr{}
	b.Record(shed)
	// Transport faults between sheds neither feed nor reset the streak.
	b.Record(syscall.ECONNRESET)
	b.Record(shed)
	if !b.Open() {
		t.Fatal("streak broken by a transport fault")
	}
}

func TestDoBreakerIntegration(t *testing.T) {
	shed := &shedErr{}
	b := &Breaker{Threshold: 2, Cooldown: time.Minute}
	calls := 0
	p := Policy{
		MaxAttempts: 4,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  time.Microsecond,
		Breaker:     b,
	}
	_, err := Do(context.Background(), p, func(context.Context) (int, error) {
		calls++
		return 0, shed
	})
	if err == nil {
		t.Fatal("want error")
	}
	// Attempts 1 and 2 shed and trip the breaker; the remaining budget
	// fails fast without invoking op.
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (breaker should cut off the rest)", calls)
	}
	if !errors.Is(err, ErrBreakerOpen) && !Overloaded(err) {
		t.Fatalf("err = %v", err)
	}
	if !b.Open() {
		t.Fatal("breaker not open after consecutive sheds")
	}
	// While open, Do fails fast without calling op at all.
	calls = 0
	_, err = Do(context.Background(), p, func(context.Context) (int, error) {
		calls++
		return 1, nil
	})
	if calls != 0 || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker: calls=%d err=%v", calls, err)
	}
}
