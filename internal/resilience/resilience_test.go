package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

func TestRetryableClassifier(t *testing.T) {
	semantic := errors.New("server: key invalid at depth 2")
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"eof", io.EOF, true},
		{"unexpectedEOF", io.ErrUnexpectedEOF, true},
		{"closedPipe", io.ErrClosedPipe, true},
		{"netClosed", net.ErrClosed, true},
		{"connReset", syscall.ECONNRESET, true},
		{"wrappedReset", fmt.Errorf("write tcp: %w", syscall.ECONNRESET), true},
		{"connRefused", syscall.ECONNREFUSED, true},
		{"epipe", syscall.EPIPE, true},
		{"opError", &net.OpError{Op: "read", Err: errors.New("boom")}, true},
		{"deadline", context.DeadlineExceeded, true},
		{"canceled", context.Canceled, false},
		{"transientTag", fmt.Errorf("pool drained: %w", ErrTransient), true},
		{"semantic", semantic, false},
		{"wrappedSemantic", fmt.Errorf("shard 2: %w", semantic), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Retryable(tc.err); got != tc.want {
				t.Fatalf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := Policy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 42}
	for n := 1; n <= 8; n++ {
		a, b := p.Backoff(n), p.Backoff(n)
		if a != b {
			t.Fatalf("attempt %d: jitter not deterministic: %v vs %v", n, a, b)
		}
		if a < 5*time.Millisecond || a > 80*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v outside [base/2, max]", n, a)
		}
	}
	if p.Backoff(1) == p.Backoff(2) && p.Backoff(2) == p.Backoff(3) {
		t.Fatal("jitter appears constant across attempts")
	}
	other := Policy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 43}
	if p.Backoff(1) == other.Backoff(1) && p.Backoff(2) == other.Backoff(2) {
		t.Fatal("jitter does not vary with seed")
	}
}

func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	calls := 0
	retried := 0
	p := Policy{
		MaxAttempts: 5,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  time.Microsecond,
		OnRetry:     func(int, error) { retried++ },
	}
	v, err := Do(context.Background(), p, func(context.Context) (int, error) {
		calls++
		if calls < 3 {
			return 0, syscall.ECONNRESET
		}
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("Do = (%d, %v), want (7, nil)", v, err)
	}
	if calls != 3 || retried != 2 {
		t.Fatalf("calls=%d retried=%d, want 3 and 2", calls, retried)
	}
}

func TestDoTerminalErrorReturnsImmediately(t *testing.T) {
	calls := 0
	semantic := errors.New("unknown key")
	_, err := Do(context.Background(), Policy{MaxAttempts: 4, BaseBackoff: time.Microsecond}, func(context.Context) (int, error) {
		calls++
		return 0, semantic
	})
	if !errors.Is(err, semantic) {
		t.Fatalf("err = %v, want the semantic error", err)
	}
	if calls != 1 {
		t.Fatalf("terminal error retried: %d calls", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	_, err := Do(context.Background(), Policy{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}, func(context.Context) (int, error) {
		calls++
		return 0, io.ErrUnexpectedEOF
	})
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoPerAttemptTimeoutRetriesStall(t *testing.T) {
	calls := 0
	v, err := Do(context.Background(), Policy{
		MaxAttempts:       3,
		PerAttemptTimeout: 20 * time.Millisecond,
		BaseBackoff:       time.Microsecond,
		MaxBackoff:        time.Microsecond,
	}, func(ctx context.Context) (int, error) {
		calls++
		if calls == 1 {
			<-ctx.Done() // simulated hung server: dropped frame, no response
			return 0, ctx.Err()
		}
		return 1, nil
	})
	if err != nil || v != 1 {
		t.Fatalf("Do = (%d, %v), want (1, nil)", v, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestDoParentCancellationIsTerminal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := Do(ctx, Policy{MaxAttempts: 5, BaseBackoff: time.Microsecond}, func(context.Context) (int, error) {
		calls++
		cancel()
		return 0, syscall.ECONNRESET // retryable class, but the caller is gone
	})
	if err == nil {
		t.Fatal("want error")
	}
	if calls != 1 {
		t.Fatalf("retried after parent cancellation: %d calls", calls)
	}
}

func TestDoCustomClassifier(t *testing.T) {
	special := errors.New("member pool drained")
	calls := 0
	v, err := Do(context.Background(), Policy{
		MaxAttempts: 3,
		BaseBackoff: time.Microsecond,
		MaxBackoff:  time.Microsecond,
		Retryable:   func(err error) bool { return errors.Is(err, special) || Retryable(err) },
	}, func(context.Context) (int, error) {
		calls++
		if calls == 1 {
			return 0, special
		}
		return 9, nil
	})
	if err != nil || v != 9 || calls != 2 {
		t.Fatalf("Do = (%d, %v) after %d calls", v, err, calls)
	}
}
