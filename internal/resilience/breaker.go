package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is the fast-fail a caller gets while a circuit breaker
// is open: the target shed enough consecutive requests that sending more
// before the cooldown probe would only deepen its overload. Classified
// retryable — the breaker heals after its cooldown.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// Defaults for Breaker zero fields.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 100 * time.Millisecond
)

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a per-target circuit breaker driven by overload sheds.
// Closed, it passes everything through and counts consecutive shed
// answers (Overloaded errors); at Threshold it trips open. Open, Allow
// fails fast until Cooldown has elapsed, then the breaker goes half-open
// and admits exactly one probe: a shed probe re-opens it for another
// cooldown, a successful probe closes it. Non-shed outcomes (success or
// semantic errors — the server is doing work) reset the consecutive
// count; transport faults neither feed nor reset the breaker, they are
// the retry layer's concern.
//
// The zero value is ready to use. All methods are safe for concurrent
// use; share one Breaker per target (per address), not per call.
type Breaker struct {
	// Threshold is the consecutive-shed count that trips the breaker.
	// Zero selects DefaultBreakerThreshold.
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe. Zero selects DefaultBreakerCooldown.
	Cooldown time.Duration
	// OnTrip, when non-nil, runs once per closed→open transition — the
	// metrics hook. Called without internal locks held.
	OnTrip func()

	mu          sync.Mutex
	state       int
	consecutive int
	openedAt    time.Time
	probing     bool
	trips       int64
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return DefaultBreakerThreshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return DefaultBreakerCooldown
}

// Allow reports whether a call may proceed. While open it returns false
// until the cooldown has elapsed, then admits a single half-open probe
// (concurrent callers during the probe keep failing fast). Every Allow
// that returns true must be matched by one Record with the outcome.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown() {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record feeds one call outcome into the breaker.
func (b *Breaker) Record(err error) {
	shed := err != nil && Overloaded(err)
	b.mu.Lock()
	var tripped func()
	switch {
	case b.state == breakerHalfOpen:
		b.probing = false
		if shed {
			// Probe shed: the target is still drowning, back off again.
			b.state = breakerOpen
			b.openedAt = time.Now()
		} else if err == nil {
			b.state = breakerClosed
			b.consecutive = 0
		}
		// A transport/semantic probe error is inconclusive: stay
		// half-open and let the next Allow probe again.
	case !shed:
		if err == nil || !Retryable(err) {
			// The target answered (even if the answer was an error): it
			// is serving, not shedding.
			b.consecutive = 0
		}
	default:
		b.consecutive++
		if b.consecutive >= b.threshold() && b.state == breakerClosed {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.trips++
			tripped = b.OnTrip
		}
	}
	b.mu.Unlock()
	if tripped != nil {
		tripped()
	}
}

// Open reports whether the breaker is currently refusing calls (open and
// still inside its cooldown).
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && time.Since(b.openedAt) < b.cooldown()
}

// Trips returns the number of closed→open transitions so far.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
