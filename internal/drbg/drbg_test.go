package drbg

import (
	"bytes"
	"testing"
)

func testSeed(b byte) Seed {
	var s Seed
	for i := range s {
		s[i] = b
	}
	return s
}

func TestDeterminism(t *testing.T) {
	g1 := New(testSeed(7), []byte("ctx"))
	g2 := New(testSeed(7), []byte("ctx"))
	a := make([]byte, 1000)
	b := make([]byte, 1000)
	if _, err := g1.Read(a); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Read(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical seeds produced different streams")
	}
}

func TestSeedSeparation(t *testing.T) {
	a := make([]byte, 64)
	b := make([]byte, 64)
	New(testSeed(1), nil).Read(a)
	New(testSeed(2), nil).Read(b)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical streams")
	}
	New(testSeed(1), []byte("x")).Read(b)
	if bytes.Equal(a, b) {
		t.Fatal("different personalization produced identical streams")
	}
}

func TestChunkingInvariance(t *testing.T) {
	// HMAC_DRBG regenerates per Read call, so identical *sequences of read
	// sizes* must match; a single big read defines the canonical stream.
	g1 := New(testSeed(3), nil)
	g2 := New(testSeed(3), nil)
	one := make([]byte, 96)
	g1.Read(one)
	parts := make([]byte, 0, 96)
	for i := 0; i < 3; i++ {
		buf := make([]byte, 32)
		g2.Read(buf)
		parts = append(parts, buf...)
	}
	// Reads of 32+32+32 vs 96 differ by design (update between reads), but
	// each must be self-consistent:
	g3 := New(testSeed(3), nil)
	again := make([]byte, 96)
	g3.Read(again)
	if !bytes.Equal(one, again) {
		t.Fatal("same-read-pattern streams differ")
	}
	g4 := New(testSeed(3), nil)
	parts2 := make([]byte, 0, 96)
	for i := 0; i < 3; i++ {
		buf := make([]byte, 32)
		g4.Read(buf)
		parts2 = append(parts2, buf...)
	}
	if !bytes.Equal(parts, parts2) {
		t.Fatal("same chunked-read pattern differs")
	}
}

func TestStreamLooksBalanced(t *testing.T) {
	g := New(testSeed(9), nil)
	buf := make([]byte, 1<<16)
	g.Read(buf)
	ones := 0
	for _, b := range buf {
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				ones++
			}
		}
	}
	total := len(buf) * 8
	ratio := float64(ones) / float64(total)
	if ratio < 0.49 || ratio > 0.51 {
		t.Errorf("bit ratio %f far from 0.5", ratio)
	}
}

func TestSeedRoundTrip(t *testing.T) {
	s, err := NewSeed()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SeedFromString(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if s != s2 {
		t.Fatal("seed hex round trip failed")
	}
	if _, err := SeedFromBytes([]byte{1, 2}); err == nil {
		t.Error("short seed accepted")
	}
	if _, err := SeedFromString("zz"); err == nil {
		t.Error("bad hex accepted")
	}
}

func TestDeriverNodeIndependence(t *testing.T) {
	d := NewDeriver(testSeed(5), "test/v1")
	root := NodeKey{}
	k1 := root.Child(0)
	k2 := root.Child(1)
	k11 := k1.Child(0)

	read := func(k NodeKey) []byte {
		buf := make([]byte, 48)
		d.ForNode(k).Read(buf)
		return buf
	}
	a, b, c, r := read(k1), read(k2), read(k11), read(root)
	if bytes.Equal(a, b) || bytes.Equal(a, c) || bytes.Equal(a, r) || bytes.Equal(b, c) {
		t.Fatal("node streams not independent")
	}
	// Regeneration: same path, same stream — the seed-only client property.
	if !bytes.Equal(a, read(k1)) {
		t.Fatal("node stream not reproducible")
	}
	// Different label ⇒ different stream.
	d2 := NewDeriver(testSeed(5), "test/v2")
	buf := make([]byte, 48)
	d2.ForNode(k1).Read(buf)
	if bytes.Equal(a, buf) {
		t.Fatal("label not separating domains")
	}
}

func TestNodeKeyEncodingUnambiguous(t *testing.T) {
	// Paths [1,2] and [12] must not collide, nor [0] and [] with any prefix
	// tricks.
	d := NewDeriver(testSeed(6), "amb")
	pairs := [][2]NodeKey{
		{NodeKey{1, 2}, NodeKey{12}},
		{NodeKey{}, NodeKey{0}},
		{NodeKey{0, 0}, NodeKey{0}},
		{NodeKey{256}, NodeKey{1, 128}},
	}
	for _, p := range pairs {
		a := make([]byte, 32)
		b := make([]byte, 32)
		d.ForNode(p[0]).Read(a)
		d.ForNode(p[1]).Read(b)
		if bytes.Equal(a, b) {
			t.Errorf("paths %v and %v collide", p[0], p[1])
		}
	}
}

func TestNodeKeyChildDoesNotAlias(t *testing.T) {
	k := NodeKey{1}
	c1 := k.Child(2)
	c2 := k.Child(3)
	if c1[1] != 2 || c2[1] != 3 || len(k) != 1 {
		t.Fatal("Child aliases parent storage")
	}
}

func TestNodeKeyString(t *testing.T) {
	if (NodeKey{}).String() != "/" {
		t.Errorf("root = %q", (NodeKey{}).String())
	}
	if (NodeKey{0, 2, 1}).String() != "/0/2/1" {
		t.Errorf("key = %q", NodeKey{0, 2, 1}.String())
	}
}

func BenchmarkRead32(b *testing.B) {
	g := New(testSeed(1), nil)
	buf := make([]byte, 32)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		g.Read(buf)
	}
}

func BenchmarkForNodeDepth10(b *testing.B) {
	d := NewDeriver(testSeed(1), "bench")
	k := NodeKey{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	buf := make([]byte, 32)
	for i := 0; i < b.N; i++ {
		d.ForNode(k).Read(buf)
	}
}
