// Package drbg provides a deterministic random bit generator (HMAC-SHA256,
// after NIST SP 800-90A's HMAC_DRBG construction) with hierarchical,
// path-keyed derivation.
//
// The scheme's client keeps only a 32-byte seed (§4.2 of the paper: "store
// only the random seed with which the random polynomials were generated").
// Derivation by node path lets the client regenerate the share of any single
// tree node in O(path length) work, without materialising the whole tree and
// without any per-node state.
package drbg

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"strconv"
	"strings"
)

// SeedSize is the seed length in bytes.
const SeedSize = 32

// Seed is the client's sole secret for share regeneration.
type Seed [SeedSize]byte

// NewSeed draws a fresh random seed from crypto/rand.
func NewSeed() (Seed, error) {
	var s Seed
	if _, err := io.ReadFull(rand.Reader, s[:]); err != nil {
		return Seed{}, fmt.Errorf("drbg: generating seed: %w", err)
	}
	return s, nil
}

// SeedFromBytes builds a Seed from exactly SeedSize bytes.
func SeedFromBytes(b []byte) (Seed, error) {
	var s Seed
	if len(b) != SeedSize {
		return s, fmt.Errorf("drbg: seed must be %d bytes, got %d", SeedSize, len(b))
	}
	copy(s[:], b)
	return s, nil
}

// SeedFromString parses a hex-encoded seed.
func SeedFromString(h string) (Seed, error) {
	b, err := hex.DecodeString(h)
	if err != nil {
		return Seed{}, fmt.Errorf("drbg: bad seed hex: %w", err)
	}
	return SeedFromBytes(b)
}

// String returns the hex encoding of the seed.
func (s Seed) String() string { return hex.EncodeToString(s[:]) }

// Generator is a deterministic stream of pseudo-random bytes. It implements
// io.Reader. A Generator is NOT safe for concurrent use; derive independent
// generators per goroutine instead.
type Generator struct {
	k [sha256.Size]byte
	v [sha256.Size]byte
	// mac is the HMAC keyed with k, reused (via Reset) across the many
	// v = HMAC(k, v) chain steps of a bulk Read: rebuilding the keyed
	// state per block used to dominate share-pad generation. Lazily
	// rebuilt whenever k changes. The output stream is bit-identical to
	// the one-HMAC-per-call construction.
	mac hash.Hash
}

// New instantiates a generator from seed and an optional personalization
// string (domain separation between independent uses of the same seed).
func New(seed Seed, personalization []byte) *Generator {
	g := &Generator{}
	for i := range g.v {
		g.v[i] = 0x01
	}
	// k starts all zero.
	g.update(append(seed[:], personalization...))
	return g
}

func (g *Generator) hmacK(parts ...[]byte) [sha256.Size]byte {
	if g.mac == nil {
		g.mac = hmac.New(sha256.New, g.k[:])
	}
	m := g.mac
	m.Reset()
	for _, p := range parts {
		m.Write(p)
	}
	var out [sha256.Size]byte
	m.Sum(out[:0])
	return out
}

// update is the HMAC_DRBG state-update function.
func (g *Generator) update(data []byte) {
	g.k = g.hmacK(g.v[:], []byte{0x00}, data)
	g.mac = nil // k changed: rebuild the keyed state on next use
	g.v = g.hmacK(g.v[:])
	if len(data) == 0 {
		return
	}
	g.k = g.hmacK(g.v[:], []byte{0x01}, data)
	g.mac = nil
	g.v = g.hmacK(g.v[:])
}

// Read fills p with deterministic pseudo-random bytes. It never fails.
func (g *Generator) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		g.v = g.hmacK(g.v[:])
		c := copy(p, g.v[:])
		p = p[c:]
	}
	g.update(nil)
	return n, nil
}

var _ io.Reader = (*Generator)(nil)

// NodeKey identifies a tree node by its path of child indices from the
// root (the root itself is the empty path).
type NodeKey []uint32

// String renders a NodeKey like "/0/2/1" ("/" for the root).
func (k NodeKey) String() string {
	if len(k) == 0 {
		return "/"
	}
	var sb strings.Builder
	for _, c := range k {
		sb.WriteByte('/')
		sb.WriteString(strconv.FormatUint(uint64(c), 10))
	}
	return sb.String()
}

// Deriver produces independent per-node generators from one seed. It is
// safe for concurrent use (each call builds fresh state).
type Deriver struct {
	seed  Seed
	label []byte
}

// NewDeriver builds a Deriver with a domain-separation label (e.g.
// "sss/client-share/v1").
func NewDeriver(seed Seed, label string) *Deriver {
	return &Deriver{seed: seed, label: []byte(label)}
}

// ForNode returns a fresh deterministic generator for a node path. Distinct
// paths yield computationally independent streams; the same path always
// yields the identical stream.
func (d *Deriver) ForNode(key NodeKey) *Generator {
	// Unambiguous path encoding: varint length, then varint components.
	enc := make([]byte, 0, 8+len(key)*5+len(d.label))
	enc = append(enc, d.label...)
	enc = append(enc, 0x00)
	enc = binary.AppendUvarint(enc, uint64(len(key)))
	for _, c := range key {
		enc = binary.AppendUvarint(enc, uint64(c))
	}
	return New(d.seed, enc)
}

// Child extends a node key by one step. The receiver is not modified.
func (k NodeKey) Child(i uint32) NodeKey {
	out := make(NodeKey, len(k)+1)
	copy(out, k)
	out[len(k)] = i
	return out
}

// ErrShortSeed reports malformed seed material.
var ErrShortSeed = errors.New("drbg: short seed")
