package mathutil

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestAddModBasic(t *testing.T) {
	cases := []struct{ a, b, m, want uint64 }{
		{0, 0, 5, 0},
		{2, 3, 5, 0},
		{4, 4, 5, 3},
		{1<<63 + 5, 1<<63 + 7, 1<<63 + 11, 1<<63 + 1},
		{18446744073709551556, 18446744073709551556, 18446744073709551557, 18446744073709551555},
	}
	for _, c := range cases {
		if got := AddMod(c.a%c.m, c.b%c.m, c.m); got != c.want {
			t.Errorf("AddMod(%d,%d,%d) = %d, want %d", c.a, c.b, c.m, got, c.want)
		}
	}
}

func TestSubModBasic(t *testing.T) {
	if got := SubMod(2, 4, 5); got != 3 {
		t.Errorf("SubMod(2,4,5) = %d, want 3", got)
	}
	if got := SubMod(4, 2, 5); got != 2 {
		t.Errorf("SubMod(4,2,5) = %d, want 2", got)
	}
	if got := SubMod(0, 0, 7); got != 0 {
		t.Errorf("SubMod(0,0,7) = %d, want 0", got)
	}
}

func TestMulModAgainstBig(t *testing.T) {
	f := func(a, b, m uint64) bool {
		if m == 0 {
			m = 1
		}
		a %= m
		b %= m
		got := MulMod(a, b, m)
		var ba, bb, bm, res big.Int
		ba.SetUint64(a)
		bb.SetUint64(b)
		bm.SetUint64(m)
		res.Mul(&ba, &bb).Mod(&res, &bm)
		return got == res.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPowModAgainstBig(t *testing.T) {
	f := func(a, e uint64, m uint64) bool {
		if m == 0 {
			m = 1
		}
		e %= 10000 // keep big.Exp cheap
		got := PowMod(a, e, m)
		var ba, be, bm, res big.Int
		ba.SetUint64(a)
		be.SetUint64(e)
		bm.SetUint64(m)
		res.Exp(&ba, &be, &bm)
		return got == res.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPowModEdge(t *testing.T) {
	if got := PowMod(0, 0, 7); got != 1 {
		t.Errorf("PowMod(0,0,7) = %d, want 1", got)
	}
	if got := PowMod(5, 0, 1); got != 0 {
		t.Errorf("PowMod mod 1 = %d, want 0", got)
	}
	if got := PowMod(2, 10, 1000); got != 24 {
		t.Errorf("PowMod(2,10,1000) = %d, want 24", got)
	}
}

func TestExtGCD(t *testing.T) {
	cases := [][2]int64{{240, 46}, {17, 5}, {1, 1}, {100, 0}, {0, 7}, {12, 18}}
	for _, c := range cases {
		g, x, y := ExtGCD(c[0], c[1])
		if c[0]*x+c[1]*y != g {
			t.Errorf("ExtGCD(%d,%d): %d*%d + %d*%d != %d", c[0], c[1], c[0], x, c[1], y, g)
		}
	}
}

func TestInvMod(t *testing.T) {
	for _, m := range []uint64{5, 7, 97, 65537, 4294967311} {
		for a := uint64(1); a < 50; a++ {
			if a%m == 0 {
				continue
			}
			inv, err := InvMod(a, m)
			if err != nil {
				t.Fatalf("InvMod(%d,%d): %v", a, m, err)
			}
			if MulMod(a%m, inv, m) != 1 {
				t.Errorf("InvMod(%d,%d) = %d: a*inv != 1", a, m, inv)
			}
		}
	}
	if _, err := InvMod(6, 9); err != ErrNoInverse {
		t.Errorf("InvMod(6,9) should fail, got err=%v", err)
	}
	if _, err := InvMod(0, 9); err != ErrNoInverse {
		t.Errorf("InvMod(0,9) should fail, got err=%v", err)
	}
}

func TestInvModLargeModulus(t *testing.T) {
	m := uint64(18446744073709551557) // largest uint64 prime
	for a := uint64(2); a < 20; a++ {
		inv, err := InvMod(a, m)
		if err != nil {
			t.Fatalf("InvMod(%d, %d): %v", a, m, err)
		}
		if MulMod(a, inv, m) != 1 {
			t.Errorf("large-mod inverse wrong for a=%d", a)
		}
	}
}

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 13: true,
		97: true, 65537: true, 4294967311: true, 18446744073709551557: true,
	}
	composites := []uint64{0, 1, 4, 6, 9, 15, 21, 25, 91, 561, 41041, 825265,
		3215031751, 3825123056546413051, 18446744073709551555}
	for p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true, want false", c)
		}
	}
}

func TestIsPrimeAgainstBig(t *testing.T) {
	f := func(n uint64) bool {
		n %= 1 << 40
		var b big.Int
		b.SetUint64(n)
		return IsPrime(n) == b.ProbablyPrime(20)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPrevPrime(t *testing.T) {
	cases := []struct{ n, next uint64 }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {14, 17}, {90, 97}, {65536, 65537},
	}
	for _, c := range cases {
		if got := NextPrime(c.n); got != c.next {
			t.Errorf("NextPrime(%d) = %d, want %d", c.n, got, c.next)
		}
	}
	if got := PrevPrime(100); got != 97 {
		t.Errorf("PrevPrime(100) = %d, want 97", got)
	}
	if got := PrevPrime(1); got != 0 {
		t.Errorf("PrevPrime(1) = %d, want 0", got)
	}
	if got := PrevPrime(2); got != 2 {
		t.Errorf("PrevPrime(2) = %d, want 2", got)
	}
}

func TestNextPrimeIsPrimeProperty(t *testing.T) {
	f := func(n uint64) bool {
		n %= 1 << 32
		p := NextPrime(n)
		return p >= n && IsPrime(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCRTPair(t *testing.T) {
	x, err := CRTPair(2, 3, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if x != 8 {
		t.Errorf("CRT(2 mod 3, 3 mod 5) = %d, want 8", x)
	}
	if _, err := CRTPair(1, 4, 1, 6); err == nil {
		t.Error("CRT with non-coprime moduli should fail")
	}
}

func TestCRTPairProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		m, n := uint64(97), uint64(101)
		a %= m
		b %= n
		x, err := CRTPair(a, m, b, n)
		if err != nil {
			return false
		}
		return x%m == a && x%n == b && x < m*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestILog2BitLen(t *testing.T) {
	if ILog2(0) != 0 || ILog2(1) != 0 || ILog2(2) != 1 || ILog2(1024) != 10 || ILog2(1025) != 10 {
		t.Error("ILog2 wrong")
	}
	if BitLen(0) != 0 || BitLen(1) != 1 || BitLen(255) != 8 || BitLen(256) != 9 {
		t.Error("BitLen wrong")
	}
}

func BenchmarkMulMod(b *testing.B) {
	m := uint64(18446744073709551557)
	x := uint64(123456789123456789)
	for i := 0; i < b.N; i++ {
		x = MulMod(x, x, m)
	}
	_ = x
}

func BenchmarkIsPrime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		IsPrime(18446744073709551557)
	}
}
