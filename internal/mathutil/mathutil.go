// Package mathutil provides the modular-arithmetic primitives underlying the
// secret-shared search scheme: safe uint64 modular operations, extended
// Euclid, modular inverses, Miller–Rabin primality testing and prime
// generation, and a small CRT helper.
//
// Everything here is deterministic and allocation-light; the big.Int based
// packages (field, poly, ring) build on top of it.
package mathutil

import (
	"errors"
	"math/big"
	"math/bits"
)

// ErrNoInverse is returned when a modular inverse does not exist.
var ErrNoInverse = errors.New("mathutil: element has no modular inverse")

// AddMod returns (a + b) mod m, correct even when a+b overflows uint64.
// Requires a < m and b < m.
func AddMod(a, b, m uint64) uint64 {
	s, carry := bits.Add64(a, b, 0)
	if carry != 0 || s >= m {
		s -= m
	}
	return s
}

// SubMod returns (a - b) mod m. Requires a < m and b < m.
func SubMod(a, b, m uint64) uint64 {
	if a >= b {
		return a - b
	}
	return m - (b - a)
}

// MulMod returns (a * b) mod m using 128-bit intermediate arithmetic.
func MulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// PowMod returns a^e mod m by square-and-multiply. PowMod(0, 0, m) == 1 mod m
// by the usual convention.
func PowMod(a, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	base := a % m
	for e > 0 {
		if e&1 == 1 {
			result = MulMod(result, base, m)
		}
		base = MulMod(base, base, m)
		e >>= 1
	}
	return result
}

// GCD returns the greatest common divisor of a and b.
func GCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ExtGCD returns (g, x, y) such that a*x + b*y = g = gcd(a, b).
// It operates on int64 values; callers must ensure inputs fit.
func ExtGCD(a, b int64) (g, x, y int64) {
	x0, x1 := int64(1), int64(0)
	y0, y1 := int64(0), int64(1)
	for b != 0 {
		q := a / b
		a, b = b, a-q*b
		x0, x1 = x1, x0-q*x1
		y0, y1 = y1, y0-q*y1
	}
	return a, x0, y0
}

// InvMod returns the multiplicative inverse of a modulo m, or ErrNoInverse
// if gcd(a, m) != 1. m must be > 1.
func InvMod(a, m uint64) (uint64, error) {
	if m == 0 {
		return 0, errors.New("mathutil: zero modulus")
	}
	a %= m
	if a == 0 {
		return 0, ErrNoInverse
	}
	// Extended Euclid over signed arithmetic on values < 2^63 is fine for all
	// moduli used by the scheme; fall back to big.Int above that.
	if m < 1<<63 {
		g, x, _ := ExtGCD(int64(a), int64(m))
		if g != 1 {
			return 0, ErrNoInverse
		}
		if x < 0 {
			x += int64(m)
		}
		return uint64(x), nil
	}
	var bi, bm, out big.Int
	bi.SetUint64(a)
	bm.SetUint64(m)
	if out.ModInverse(&bi, &bm) == nil {
		return 0, ErrNoInverse
	}
	return out.Uint64(), nil
}

// millerRabinBases is a deterministic witness set: testing against these
// bases is a correct primality test for all n < 3,317,044,064,679,887,385,961,981
// (Sorenson & Webster), which covers the full uint64 range.
var millerRabinBases = [...]uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// IsPrime reports whether n is prime, using deterministic Miller–Rabin
// witnesses valid for the entire uint64 range.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// n-1 = d * 2^s with d odd.
	d := n - 1
	s := 0
	for d&1 == 0 {
		d >>= 1
		s++
	}
witness:
	for _, a := range millerRabinBases {
		x := PowMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < s-1; i++ {
			x = MulMod(x, x, n)
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

// NextPrime returns the smallest prime >= n. It panics if no uint64 prime
// >= n exists (n beyond 18446744073709551557).
func NextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n&1 == 0 {
		n++
	}
	for {
		if IsPrime(n) {
			return n
		}
		if n > n+2 { // overflow guard
			panic("mathutil: no next prime in uint64 range")
		}
		n += 2
	}
}

// PrevPrime returns the largest prime <= n, or 0 if none exists (n < 2).
func PrevPrime(n uint64) uint64 {
	if n < 2 {
		return 0
	}
	if n == 2 {
		return 2
	}
	if n&1 == 0 {
		n--
	}
	for n >= 3 {
		if IsPrime(n) {
			return n
		}
		n -= 2
	}
	return 2
}

// CRTPair combines x ≡ a (mod m) and x ≡ b (mod n) for coprime m, n into
// the unique solution modulo m*n. Returns an error if m and n are not
// coprime. m*n must fit in uint64.
func CRTPair(a, m, b, n uint64) (uint64, error) {
	if GCD(m, n) != 1 {
		return 0, errors.New("mathutil: CRT moduli not coprime")
	}
	mn := m * n
	// x = a + m * ((b - a) * m^{-1} mod n)
	inv, err := InvMod(m%n, n)
	if err != nil {
		return 0, err
	}
	diff := SubMod(b%n, a%n, n)
	t := MulMod(diff, inv, n)
	return AddMod(a%mn, MulMod(m%mn, t, mn), mn), nil
}

// ILog2 returns floor(log2(n)) for n > 0, and 0 for n == 0.
func ILog2(n uint64) int {
	if n == 0 {
		return 0
	}
	return 63 - bits.LeadingZeros64(n)
}

// BitLen returns the number of bits needed to represent n (0 for n == 0).
func BitLen(n uint64) int {
	return bits.Len64(n)
}
