// Package lru provides the small bounded LRU cache backing the server's
// eval cache and the seed-only client's packed-share cache. It favors
// predictable memory over hit-rate sophistication: a plain mutex-guarded
// map plus intrusive doubly-linked recency list, evicting the least
// recently used entry at capacity.
//
// A nil *Cache is valid and behaves as a disabled cache (every Get
// misses, Add is a no-op), so callers can turn caching off by
// constructing with capacity <= 0 without branching at each use.
package lru

import "sync"

// Cache is a bounded LRU map. Safe for concurrent use. The zero value is
// not usable; construct with New.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	m     map[K]*entry[K, V]
	front *entry[K, V] // most recently used
	back  *entry[K, V] // least recently used
}

type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// New builds a cache holding at most capacity entries. A capacity <= 0
// returns nil: a valid, permanently empty cache.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		return nil
	}
	return &Cache[K, V]{cap: capacity, m: make(map[K]*entry[K, V], capacity)}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[k]
	if !ok {
		return zero, false
	}
	c.moveFront(e)
	return e.val, true
}

// Add inserts or refreshes a key, evicting the least recently used entry
// when the cache is full.
func (c *Cache[K, V]) Add(k K, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[k]; ok {
		e.val = v
		c.moveFront(e)
		return
	}
	if len(c.m) >= c.cap {
		lru := c.back
		c.unlink(lru)
		delete(c.m, lru.key)
	}
	e := &entry[K, V]{key: k, val: v}
	c.m[k] = e
	c.pushFront(e)
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Cap returns the capacity (0 for a disabled cache).
func (c *Cache[K, V]) Cap() int {
	if c == nil {
		return 0
	}
	return c.cap
}

func (c *Cache[K, V]) moveFront(e *entry[K, V]) {
	if c.front == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.front
	if c.front != nil {
		c.front.prev = e
	}
	c.front = e
	if c.back == nil {
		c.back = e
	}
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.back = e.prev
	}
	e.prev, e.next = nil, nil
}
