package lru

import (
	"sync"
	"testing"
)

func TestBasic(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	// "b" is now LRU; adding "c" must evict it.
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("recently used entry evicted: %d, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("Get(c) = %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestUpdateExisting(t *testing.T) {
	c := New[int, string](2)
	c.Add(1, "x")
	c.Add(1, "y")
	if c.Len() != 1 {
		t.Fatalf("duplicate Add grew the cache: %d", c.Len())
	}
	if v, _ := c.Get(1); v != "y" {
		t.Fatalf("Add did not update: %q", v)
	}
}

func TestNilCacheDisabled(t *testing.T) {
	var c *Cache[string, int] // also what New(0) returns
	if New[string, int](0) != nil {
		t.Fatal("New(0) should return nil")
	}
	c.Add("a", 1) // must not panic
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Len() != 0 || c.Cap() != 0 {
		t.Fatal("nil cache has size")
	}
}

func TestSingleEntry(t *testing.T) {
	c := New[int, int](1)
	for i := 0; i < 10; i++ {
		c.Add(i, i)
		if v, ok := c.Get(i); !ok || v != i {
			t.Fatalf("entry %d missing right after Add", i)
		}
		if c.Len() != 1 {
			t.Fatalf("Len = %d, want 1", c.Len())
		}
	}
}

func TestConcurrent(t *testing.T) {
	c := New[int, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 100
				c.Add(k, k)
				if v, ok := c.Get(k); ok && v != k {
					t.Errorf("Get(%d) = %d", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}
