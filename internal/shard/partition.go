package shard

import (
	"errors"
	"fmt"
	"sort"

	"sssearch/internal/drbg"
	"sssearch/internal/sharing"
)

// The planner cuts the share tree into disjoint subtree ranges and
// assigns them to shards balanced by node count. It is purely
// shape-driven and fully deterministic (ties broken by document order),
// so planning any share tree of a document — including every Shamir
// member tree, which all mirror the document shape — yields the same
// manifest, and re-planning is reproducible across hosts.

// expansionFactor is how many frontier subtrees the planner aims for per
// shard before assigning: more, smaller ranges pack flatter, at the cost
// of a larger manifest.
const expansionFactor = 4

// frontierItem is one candidate subtree range during planning.
type frontierItem struct {
	key  drbg.NodeKey
	node *sharing.Node
	size int
}

// subtreeSize counts the nodes under n (inclusive).
func subtreeSize(n *sharing.Node, memo map[*sharing.Node]int) int {
	total := 1
	for _, c := range n.Children {
		total += subtreeSize(c, memo)
	}
	memo[n] = total
	return total
}

// Plan computes a manifest partitioning the shape of tree across n
// shards. The root region above the cut (the "spine" every query enters
// through) stays on shard 0 via the catch-all root entry; the frontier
// subtrees below it are assigned largest-first to the least-loaded shard.
func Plan(tree *sharing.Tree, n int) (*Manifest, error) {
	if tree == nil || tree.Root == nil {
		return nil, errors.New("shard: nil tree")
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: cannot partition into %d shards", n)
	}
	if n == 1 {
		return &Manifest{Shards: 1, Entries: []Entry{{Prefix: drbg.NodeKey{}, Shard: 0}}}, nil
	}
	memo := make(map[*sharing.Node]int)
	total := subtreeSize(tree.Root, memo)

	// Grow the frontier by repeatedly exploding the largest subtree into
	// its children until there are enough ranges to balance, the largest
	// range is already small enough, or nothing expandable remains. The
	// expansion budget terminates pathological shapes (e.g. a pure path,
	// where exploding never widens the frontier).
	var frontier []frontierItem
	for i, c := range tree.Root.Children {
		frontier = append(frontier, frontierItem{
			key: drbg.NodeKey{uint32(i)}, node: c, size: memo[c],
		})
	}
	sizeGoal := (total + 2*n - 1) / (2 * n)
	for budget := expansionFactor * 4 * n; budget > 0; budget-- {
		if len(frontier) >= expansionFactor*n {
			break
		}
		// Largest expandable subtree, document order on ties.
		best := -1
		for i, it := range frontier {
			if len(it.node.Children) == 0 || it.size <= 1 {
				continue
			}
			if best < 0 || it.size > frontier[best].size ||
				(it.size == frontier[best].size && keyLess(it.key, frontier[best].key)) {
				best = i
			}
		}
		if best < 0 || frontier[best].size <= sizeGoal {
			break
		}
		it := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)
		for i, c := range it.node.Children {
			frontier = append(frontier, frontierItem{
				key: it.key.Child(uint32(i)), node: c, size: memo[c],
			})
		}
	}

	// Largest-first greedy assignment onto the least-loaded shard. Shard 0
	// starts pre-loaded with the spine (everything above the frontier).
	sort.Slice(frontier, func(i, j int) bool {
		if frontier[i].size != frontier[j].size {
			return frontier[i].size > frontier[j].size
		}
		return keyLess(frontier[i].key, frontier[j].key)
	})
	loads := make([]int, n)
	spine := total
	for _, it := range frontier {
		spine -= it.size
	}
	loads[0] = spine
	man := &Manifest{Shards: n, Entries: []Entry{{Prefix: drbg.NodeKey{}, Shard: 0}}}
	for _, it := range frontier {
		target := 0
		for s := 1; s < n; s++ {
			if loads[s] < loads[target] {
				target = s
			}
		}
		loads[target] += it.size
		man.Entries = append(man.Entries, Entry{Prefix: it.key, Shard: target})
	}
	return man, nil
}

// keyLess orders node keys in document (preorder) order.
func keyLess(a, b drbg.NodeKey) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// PartitionWithManifest materializes the per-shard trees of an existing
// plan: each shard receives a full-shape copy of tree (so NodeKey lookups
// navigate identically everywhere) in which only its owned nodes carry
// the real share polynomial — foreign nodes hold the zero polynomial and
// are rejected by the serving Guard. Packed fast-path vectors are shared
// read-only with the source tree, never copied.
func PartitionWithManifest(tree *sharing.Tree, man *Manifest) ([]*sharing.Tree, error) {
	if tree == nil || tree.Root == nil {
		return nil, errors.New("shard: nil tree")
	}
	if err := man.Validate(); err != nil {
		return nil, err
	}
	var build func(n *sharing.Node, key drbg.NodeKey) []*sharing.Node
	build = func(n *sharing.Node, key drbg.NodeKey) []*sharing.Node {
		copies := make([]*sharing.Node, man.Shards)
		owner := man.Owner(key)
		for s := range copies {
			copies[s] = &sharing.Node{}
			if len(n.Children) > 0 {
				copies[s].Children = make([]*sharing.Node, len(n.Children))
			}
		}
		copies[owner].Poly = n.Poly
		copies[owner].Packed = n.Packed
		for i, c := range n.Children {
			for s, cc := range build(c, key.Child(uint32(i))) {
				copies[s].Children[i] = cc
			}
		}
		return copies
	}
	roots := build(tree.Root, drbg.NodeKey{})
	out := make([]*sharing.Tree, man.Shards)
	for s, r := range roots {
		out[s] = &sharing.Tree{Root: r}
	}
	return out, nil
}

// Partition plans a manifest for n shards and materializes the per-shard
// trees in one step.
func Partition(tree *sharing.Tree, n int) ([]*sharing.Tree, *Manifest, error) {
	man, err := Plan(tree, n)
	if err != nil {
		return nil, nil, err
	}
	trees, err := PartitionWithManifest(tree, man)
	if err != nil {
		return nil, nil, err
	}
	return trees, man, nil
}

// OwnedNodes counts the nodes of tree owned by shard id under man — the
// shard's real storage load (its tree retains the full shape, but foreign
// nodes are empty).
func OwnedNodes(tree *sharing.Tree, man *Manifest, id int) int {
	count := 0
	tree.Walk(func(key drbg.NodeKey, _ *sharing.Node) bool {
		if man.Owner(key) == id {
			count++
		}
		return true
	})
	return count
}
