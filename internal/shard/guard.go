package shard

import (
	"fmt"
	"math/big"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/ring"
)

// Guard is the server-side ownership fence of a sharded deployment. A
// shard's tree keeps the full document shape (so NodeKey navigation works
// unchanged), with foreign nodes holding zero polynomials — answering for
// one of those would silently corrupt a query, so the Guard rejects every
// evaluation or fetch of a key outside the shard's manifest ranges
// instead of letting the zero share leak out as a real value.
//
// It implements core.ServerAPI (plus Ring, so server.Daemon can announce
// parameters) over any inner API. Safe for concurrent use if the inner
// API is. A coalesce.Server composes on either side: wrapped OVER the
// guard (the sss-server default) merged passes stay inside the shard's
// ownership fence, since every merged key came from a request this guard
// would have checked anyway.
type Guard struct {
	inner core.ServerAPI
	ring  ring.Ring
	man   *Manifest
	id    int
}

// NewGuard fences inner behind the manifest ranges of shard id.
func NewGuard(r ring.Ring, inner core.ServerAPI, man *Manifest, id int) (*Guard, error) {
	if r == nil || inner == nil {
		return nil, fmt.Errorf("shard: nil ring or inner API")
	}
	if err := man.Validate(); err != nil {
		return nil, err
	}
	if id < 0 || id >= man.Shards {
		return nil, fmt.Errorf("shard: shard id %d out of range [0, %d)", id, man.Shards)
	}
	return &Guard{inner: inner, ring: r, man: man, id: id}, nil
}

// Ring returns the (public) ring parameters, for the daemon handshake.
func (g *Guard) Ring() ring.Ring { return g.ring }

// ID returns the guarded shard's id.
func (g *Guard) ID() int { return g.id }

// Manifest returns the deployment manifest the guard enforces.
func (g *Guard) Manifest() *Manifest { return g.man }

// check rejects any key outside the shard's ranges.
func (g *Guard) check(keys []drbg.NodeKey) error {
	for _, k := range keys {
		if owner := g.man.Owner(k); owner != g.id {
			return fmt.Errorf("%w: %s belongs to shard %d, this is shard %d", ErrNotOwned, k, owner, g.id)
		}
	}
	return nil
}

// EvalNodes implements core.ServerAPI.
func (g *Guard) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	if err := g.check(keys); err != nil {
		return nil, err
	}
	return g.inner.EvalNodes(keys, points)
}

// FetchPolys implements core.ServerAPI.
func (g *Guard) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	if err := g.check(keys); err != nil {
		return nil, err
	}
	return g.inner.FetchPolys(keys)
}

// Prune implements core.ServerAPI. Prune is advisory and a pruned
// subtree may span several shards (the Router broadcasts it to every
// intersecting one), so the guard keeps any key whose subtree intersects
// this shard's ranges and silently drops the rest rather than rejecting.
func (g *Guard) Prune(keys []drbg.NodeKey) error {
	kept := keys[:0:0]
	for _, k := range keys {
		for _, s := range g.man.SubtreeShards(k) {
			if s == g.id {
				kept = append(kept, k)
				break
			}
		}
	}
	return g.inner.Prune(kept)
}

var _ core.ServerAPI = (*Guard)(nil)
