package shard

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/metrics"
	"sssearch/internal/resilience"
	"sssearch/internal/wire"
)

// Router fans one logical core.ServerAPI out over a tree-partitioned
// deployment: each request batch is split by the manifest's ownership
// ranges, scattered to the owning shard backends concurrently, and the
// per-shard answers are gathered back into request order, so the query
// engine (and any wrapper such as a Shamir MultiServer around a shard
// group) is oblivious to the partitioning.
//
// Safe for concurrent use if the backend APIs are.
type Router struct {
	man      *Manifest
	backends [][]core.ServerAPI // backends[s] is shard s's replica group, tried in order
	counters *metrics.ShardCounters
}

// NewRouter wraps one backend per manifest shard. A backend may be any
// ServerAPI: an in-process Local, a remote connection or pool, or a
// k-of-n MultiServer replica group (the 2-D partition × replica
// deployment).
func NewRouter(man *Manifest, backends []core.ServerAPI) (*Router, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	if len(backends) != man.Shards {
		return nil, fmt.Errorf("shard: %d backends for %d shards", len(backends), man.Shards)
	}
	groups := make([][]core.ServerAPI, len(backends))
	for i, b := range backends {
		if b == nil {
			return nil, fmt.Errorf("shard: nil backend for shard %d", i)
		}
		groups[i] = []core.ServerAPI{b}
	}
	return &Router{
		man:      man,
		backends: groups,
		counters: metrics.NewShardCounters(man.Shards),
	}, nil
}

// NewReplicatedRouter wraps one replica GROUP per manifest shard: each
// shard's sub-batch goes to the group's first replica and fails over to
// the next on infrastructure faults, so losing a replica degrades latency
// (one failed call), not availability. Replicas of a shard must serve the
// same share tree — failover is answer-preserving only because every
// replica computes the same deterministic function.
func NewReplicatedRouter(man *Manifest, replicas [][]core.ServerAPI) (*Router, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	if len(replicas) != man.Shards {
		return nil, fmt.Errorf("shard: %d replica groups for %d shards", len(replicas), man.Shards)
	}
	groups := make([][]core.ServerAPI, len(replicas))
	for i, g := range replicas {
		if len(g) == 0 {
			return nil, fmt.Errorf("shard: empty replica group for shard %d", i)
		}
		for j, b := range g {
			if b == nil {
				return nil, fmt.Errorf("shard: nil replica %d for shard %d", j, i)
			}
		}
		groups[i] = append([]core.ServerAPI(nil), g...)
	}
	return &Router{
		man:      man,
		backends: groups,
		counters: metrics.NewShardCounters(man.Shards),
	}, nil
}

// Replicas returns the replica-group size of shard s.
func (r *Router) Replicas(s int) int { return len(r.backends[s]) }

// failoverSafe reports whether a failed sub-batch may be retried against
// another replica. A semantic answer from the server — a RemoteError
// (unknown key, decode failure) or ErrNotOwned — is terminal: the replica
// would answer identically, so retrying only wastes a round trip. An
// overload shed is the exception among RemoteErrors: the shedding
// replica did no work, and a sibling replica is a different daemon whose
// admission queue may have room — failing over is both answer-preserving
// and exactly what replicas are for. A breaker-open fast-fail from a
// wrapped client is failed over for the same reason. Everything else is
// treated as infrastructure (resets, closed sessions, timeouts,
// exhausted client-side retries); failing those over is
// answer-preserving because replicas serve the same immutable share tree
// and all requests are idempotent reads.
func failoverSafe(err error) bool {
	if errors.Is(err, ErrNotOwned) {
		return false
	}
	if resilience.Overloaded(err) || errors.Is(err, resilience.ErrBreakerOpen) {
		return true
	}
	var re *wire.RemoteError
	return !errors.As(err, &re)
}

// groupCall runs one sub-batch against shard s, failing over through the
// replica group. The error returned is the last replica's.
func groupCall[T any](r *Router, s int, fn func(api core.ServerAPI) (T, error)) (T, error) {
	group := r.backends[s]
	var zero T
	for i, api := range group {
		v, err := fn(api)
		if err == nil {
			return v, nil
		}
		if i == len(group)-1 || !failoverSafe(err) {
			return zero, err
		}
		r.counters.RecordRetry()
	}
	return zero, nil // unreachable: the loop always returns
}

// Manifest returns the routing manifest.
func (r *Router) Manifest() *Manifest { return r.man }

// Counters exposes the routing tallies: per-shard backend calls and
// cross-shard fan-out per routed batch.
func (r *Router) Counters() *metrics.ShardCounters { return r.counters }

// split groups the key batch by owning shard, preserving each shard's
// request-order subsequence. shards lists the involved shard ids in
// first-appearance order; idx[j] and sub[j] are the original positions
// and keys routed to shards[j].
func (r *Router) split(keys []drbg.NodeKey) (shards []int, idx [][]int, sub [][]drbg.NodeKey) {
	slot := make(map[int]int, 4) // shard id → position in shards
	for i, k := range keys {
		s := r.man.Owner(k)
		j, ok := slot[s]
		if !ok {
			j = len(shards)
			slot[s] = j
			shards = append(shards, s)
			idx = append(idx, nil)
			sub = append(sub, nil)
		}
		idx[j] = append(idx[j], i)
		sub[j] = append(sub[j], k)
	}
	return shards, idx, sub
}

// scatter routes one keyed call: single-shard batches pass through on the
// caller's goroutine; multi-shard batches fan out concurrently and the
// answers are reassembled in request order. call must return one answer
// per key, in order.
func scatter[T any](r *Router, keys []drbg.NodeKey, call func(shard int, sub []drbg.NodeKey) ([]T, error)) ([]T, error) {
	if len(keys) == 0 {
		return []T{}, nil
	}
	shards, idx, sub := r.split(keys)
	r.counters.RecordBatch(shards)
	if len(shards) == 1 {
		res, err := call(shards[0], keys)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", shards[0], err)
		}
		if len(res) != len(keys) {
			return nil, fmt.Errorf("shard: shard %d returned %d answers for %d keys", shards[0], len(res), len(keys))
		}
		return res, nil
	}
	type shardResult struct {
		j   int
		res []T
		err error
	}
	ch := make(chan shardResult, len(shards))
	for j := range shards {
		go func(j int) {
			res, err := call(shards[j], sub[j])
			ch <- shardResult{j: j, res: res, err: err}
		}(j)
	}
	out := make([]T, len(keys))
	var firstErr error
	for range shards {
		sr := <-ch
		if sr.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", shards[sr.j], sr.err)
			}
			continue
		}
		if len(sr.res) != len(sub[sr.j]) {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard: shard %d returned %d answers for %d keys",
					shards[sr.j], len(sr.res), len(sub[sr.j]))
			}
			continue
		}
		for m, i := range idx[sr.j] {
			out[i] = sr.res[m]
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// EvalNodes implements core.ServerAPI: scatter the batch to the owning
// shards and gather in request order. A coalesce.Server wrapped over the
// Router merges concurrent session waves BEFORE the scatter, so each
// owning shard sees one deduplicated sub-batch per drain instead of one
// per session (conformance-pinned composition).
// shards, gather the evaluations in request order.
func (r *Router) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	return r.EvalNodesCtx(context.Background(), keys, points)
}

// EvalNodesCtx implements core.CtxEvaler: every shard sub-batch —
// including replica failovers — runs under the caller's ctx, so all
// legs of a sampled query share its trace ID.
func (r *Router) EvalNodesCtx(ctx context.Context, keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	return scatter(r, keys, func(s int, sub []drbg.NodeKey) ([]core.NodeEval, error) {
		return groupCall(r, s, func(api core.ServerAPI) ([]core.NodeEval, error) {
			return core.EvalNodesWithCtx(ctx, api, sub, points)
		})
	})
}

// FetchPolys implements core.ServerAPI.
func (r *Router) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return scatter(r, keys, func(s int, sub []drbg.NodeKey) ([]core.NodePoly, error) {
		return groupCall(r, s, func(api core.ServerAPI) ([]core.NodePoly, error) {
			return api.FetchPolys(sub)
		})
	})
}

// Prune implements core.ServerAPI: every shard whose ranges intersect a
// pruned subtree is told about it (concurrently when several are
// involved) — a spine subtree's descendants may be carved out to other
// shards, and those shards hold dead nodes of the subtree too. Prune is
// advisory, but a shard that owns live keys of the query must still hear
// about its pruned ones, so errors are collected rather than
// first-ack-wins.
func (r *Router) Prune(keys []drbg.NodeKey) error {
	if len(keys) == 0 {
		return nil
	}
	// Group by intersecting shard (a key may fan out to several shards,
	// unlike the eval/fetch split).
	var shards []int
	var sub [][]drbg.NodeKey
	slot := make(map[int]int, 4)
	for _, k := range keys {
		for _, s := range r.man.SubtreeShards(k) {
			j, ok := slot[s]
			if !ok {
				j = len(shards)
				slot[s] = j
				shards = append(shards, s)
				sub = append(sub, nil)
			}
			sub[j] = append(sub[j], k)
		}
	}
	r.counters.RecordBatch(shards)
	prune := func(s int, keys []drbg.NodeKey) error {
		_, err := groupCall(r, s, func(api core.ServerAPI) (struct{}, error) {
			return struct{}{}, api.Prune(keys)
		})
		return err
	}
	if len(shards) == 1 {
		if err := prune(shards[0], sub[0]); err != nil {
			return fmt.Errorf("shard %d: %w", shards[0], err)
		}
		return nil
	}
	ch := make(chan error, len(shards))
	for j := range shards {
		go func(j int) {
			if err := prune(shards[j], sub[j]); err != nil {
				ch <- fmt.Errorf("shard %d: %w", shards[j], err)
				return
			}
			ch <- nil
		}(j)
	}
	var firstErr error
	for range shards {
		if err := <-ch; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

var _ core.ServerAPI = (*Router)(nil)

// ErrNotOwned reports a request for a node key outside a shard's ranges.
var ErrNotOwned = errors.New("shard: node key not owned by this shard")
