package shard

import (
	"errors"
	"fmt"
	"math/big"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/metrics"
)

// Router fans one logical core.ServerAPI out over a tree-partitioned
// deployment: each request batch is split by the manifest's ownership
// ranges, scattered to the owning shard backends concurrently, and the
// per-shard answers are gathered back into request order, so the query
// engine (and any wrapper such as a Shamir MultiServer around a shard
// group) is oblivious to the partitioning.
//
// Safe for concurrent use if the backend APIs are.
type Router struct {
	man      *Manifest
	backends []core.ServerAPI
	counters *metrics.ShardCounters
}

// NewRouter wraps one backend per manifest shard. A backend may be any
// ServerAPI: an in-process Local, a remote connection or pool, or a
// k-of-n MultiServer replica group (the 2-D partition × replica
// deployment).
func NewRouter(man *Manifest, backends []core.ServerAPI) (*Router, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	if len(backends) != man.Shards {
		return nil, fmt.Errorf("shard: %d backends for %d shards", len(backends), man.Shards)
	}
	for i, b := range backends {
		if b == nil {
			return nil, fmt.Errorf("shard: nil backend for shard %d", i)
		}
	}
	return &Router{
		man:      man,
		backends: backends,
		counters: metrics.NewShardCounters(man.Shards),
	}, nil
}

// Manifest returns the routing manifest.
func (r *Router) Manifest() *Manifest { return r.man }

// Counters exposes the routing tallies: per-shard backend calls and
// cross-shard fan-out per routed batch.
func (r *Router) Counters() *metrics.ShardCounters { return r.counters }

// split groups the key batch by owning shard, preserving each shard's
// request-order subsequence. shards lists the involved shard ids in
// first-appearance order; idx[j] and sub[j] are the original positions
// and keys routed to shards[j].
func (r *Router) split(keys []drbg.NodeKey) (shards []int, idx [][]int, sub [][]drbg.NodeKey) {
	slot := make(map[int]int, 4) // shard id → position in shards
	for i, k := range keys {
		s := r.man.Owner(k)
		j, ok := slot[s]
		if !ok {
			j = len(shards)
			slot[s] = j
			shards = append(shards, s)
			idx = append(idx, nil)
			sub = append(sub, nil)
		}
		idx[j] = append(idx[j], i)
		sub[j] = append(sub[j], k)
	}
	return shards, idx, sub
}

// scatter routes one keyed call: single-shard batches pass through on the
// caller's goroutine; multi-shard batches fan out concurrently and the
// answers are reassembled in request order. call must return one answer
// per key, in order.
func scatter[T any](r *Router, keys []drbg.NodeKey, call func(shard int, sub []drbg.NodeKey) ([]T, error)) ([]T, error) {
	if len(keys) == 0 {
		return []T{}, nil
	}
	shards, idx, sub := r.split(keys)
	r.counters.RecordBatch(shards)
	if len(shards) == 1 {
		res, err := call(shards[0], keys)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", shards[0], err)
		}
		if len(res) != len(keys) {
			return nil, fmt.Errorf("shard: shard %d returned %d answers for %d keys", shards[0], len(res), len(keys))
		}
		return res, nil
	}
	type shardResult struct {
		j   int
		res []T
		err error
	}
	ch := make(chan shardResult, len(shards))
	for j := range shards {
		go func(j int) {
			res, err := call(shards[j], sub[j])
			ch <- shardResult{j: j, res: res, err: err}
		}(j)
	}
	out := make([]T, len(keys))
	var firstErr error
	for range shards {
		sr := <-ch
		if sr.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", shards[sr.j], sr.err)
			}
			continue
		}
		if len(sr.res) != len(sub[sr.j]) {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard: shard %d returned %d answers for %d keys",
					shards[sr.j], len(sr.res), len(sub[sr.j]))
			}
			continue
		}
		for m, i := range idx[sr.j] {
			out[i] = sr.res[m]
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// EvalNodes implements core.ServerAPI: scatter the batch to the owning
// shards and gather in request order. A coalesce.Server wrapped over the
// Router merges concurrent session waves BEFORE the scatter, so each
// owning shard sees one deduplicated sub-batch per drain instead of one
// per session (conformance-pinned composition).
// shards, gather the evaluations in request order.
func (r *Router) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	return scatter(r, keys, func(s int, sub []drbg.NodeKey) ([]core.NodeEval, error) {
		return r.backends[s].EvalNodes(sub, points)
	})
}

// FetchPolys implements core.ServerAPI.
func (r *Router) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return scatter(r, keys, func(s int, sub []drbg.NodeKey) ([]core.NodePoly, error) {
		return r.backends[s].FetchPolys(sub)
	})
}

// Prune implements core.ServerAPI: every shard whose ranges intersect a
// pruned subtree is told about it (concurrently when several are
// involved) — a spine subtree's descendants may be carved out to other
// shards, and those shards hold dead nodes of the subtree too. Prune is
// advisory, but a shard that owns live keys of the query must still hear
// about its pruned ones, so errors are collected rather than
// first-ack-wins.
func (r *Router) Prune(keys []drbg.NodeKey) error {
	if len(keys) == 0 {
		return nil
	}
	// Group by intersecting shard (a key may fan out to several shards,
	// unlike the eval/fetch split).
	var shards []int
	var sub [][]drbg.NodeKey
	slot := make(map[int]int, 4)
	for _, k := range keys {
		for _, s := range r.man.SubtreeShards(k) {
			j, ok := slot[s]
			if !ok {
				j = len(shards)
				slot[s] = j
				shards = append(shards, s)
				sub = append(sub, nil)
			}
			sub[j] = append(sub[j], k)
		}
	}
	r.counters.RecordBatch(shards)
	if len(shards) == 1 {
		if err := r.backends[shards[0]].Prune(sub[0]); err != nil {
			return fmt.Errorf("shard %d: %w", shards[0], err)
		}
		return nil
	}
	ch := make(chan error, len(shards))
	for j := range shards {
		go func(j int) {
			if err := r.backends[shards[j]].Prune(sub[j]); err != nil {
				ch <- fmt.Errorf("shard %d: %w", shards[j], err)
				return
			}
			ch <- nil
		}(j)
	}
	var firstErr error
	for range shards {
		if err := <-ch; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

var _ core.ServerAPI = (*Router)(nil)

// ErrNotOwned reports a request for a node key outside a shard's ranges.
var ErrNotOwned = errors.New("shard: node key not owned by this shard")
