// Package shard partitions one document's share tree across multiple
// daemons by subtree — the capacity-scaling complement to the paper's
// §4.2 Shamir replication. A deterministic planner cuts the tree into
// NodeKey-prefix ranges recorded in a small Manifest; each shard daemon
// serves only its ranges (rejecting out-of-range keys), and a client-side
// Router implements core.ServerAPI by scattering each request batch to
// the owning shards and gathering the answers back in request order, so
// the query engine runs unchanged against a partitioned deployment.
//
// Sharding composes with replication: each shard's backend can itself be
// a k-of-n core.MultiServer, giving a 2-D (partition × replica)
// deployment. Because the partition is purely shape-driven, one manifest
// planned from any share tree of a document applies to every Shamir
// member tree of the same document.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"

	"sssearch/internal/drbg"
)

// manifestVersion is the manifest wire-format generation.
const manifestVersion = 1

// maxManifestEntries bounds accepted manifests (defense against corrupt
// or hostile inputs driving huge allocations).
const maxManifestEntries = 1 << 20

// Entry assigns the subtree rooted at Prefix to one shard. Longest prefix
// wins, so nested entries carve exceptions out of enclosing ranges.
type Entry struct {
	Prefix drbg.NodeKey
	Shard  int
}

// Manifest is the routing table of a sharded deployment: which shard owns
// which NodeKey-prefix range. A valid manifest always contains a root
// (empty-prefix) entry, so every key has an owner. Manifests are
// immutable after construction/unmarshalling; Owner is safe for
// concurrent use.
type Manifest struct {
	// Shards is the number of shards keys are routed to; owners are in
	// [0, Shards).
	Shards int
	// Entries are the prefix assignments, longest-prefix-match semantics.
	Entries []Entry

	indexOnce sync.Once
	index     map[string]int
	rootOwner int
}

// Validate checks structural invariants: at least one shard, a root
// entry, owners in range and no duplicate prefixes.
func (m *Manifest) Validate() error {
	if m == nil {
		return errors.New("shard: nil manifest")
	}
	if m.Shards < 1 {
		return fmt.Errorf("shard: manifest with %d shards", m.Shards)
	}
	seen := make(map[string]bool, len(m.Entries))
	root := false
	for _, e := range m.Entries {
		if e.Shard < 0 || e.Shard >= m.Shards {
			return fmt.Errorf("shard: entry %s assigned to shard %d of %d", e.Prefix, e.Shard, m.Shards)
		}
		ks := e.Prefix.String()
		if seen[ks] {
			return fmt.Errorf("shard: duplicate manifest entry for %s", e.Prefix)
		}
		seen[ks] = true
		if len(e.Prefix) == 0 {
			root = true
		}
	}
	if !root {
		return errors.New("shard: manifest lacks a root entry (some keys would have no owner)")
	}
	return nil
}

// buildIndex materializes the prefix → shard lookup map once.
func (m *Manifest) buildIndex() {
	m.index = make(map[string]int, len(m.Entries))
	for _, e := range m.Entries {
		m.index[e.Prefix.String()] = e.Shard
		if len(e.Prefix) == 0 {
			m.rootOwner = e.Shard
		}
	}
	// An unvalidated manifest without a root entry leaves rootOwner 0,
	// routing unmatched keys to shard 0 so a guard or store lookup
	// produces the real error.
}

// Owner returns the shard that owns key: the entry with the longest
// prefix of key. On a validated manifest every key has an owner (the root
// entry is the catch-all). Owner sits on the per-key hot path of both
// the Router and the Guard, so the key is rendered once and trimmed at
// path separators — one string build plus O(depth) map probes, no
// per-prefix re-rendering.
func (m *Manifest) Owner(key drbg.NodeKey) int {
	m.indexOnce.Do(m.buildIndex)
	ks := key.String()
	for len(ks) > 1 {
		if s, ok := m.index[ks]; ok {
			return s
		}
		i := strings.LastIndexByte(ks, '/')
		if i <= 0 {
			break
		}
		ks = ks[:i]
	}
	return m.rootOwner
}

// keyHasPrefix reports whether key starts with prefix.
func keyHasPrefix(key, prefix drbg.NodeKey) bool {
	if len(prefix) > len(key) {
		return false
	}
	for i, c := range prefix {
		if key[i] != c {
			return false
		}
	}
	return true
}

// SubtreeShards returns every shard whose owned ranges intersect the
// subtree rooted at key: the owner of key itself plus any entry nested
// strictly below it. This is the advisory-broadcast set a prune of key
// must reach — spine subtrees have descendant ranges carved out to other
// shards, and those shards hold dead nodes of the pruned subtree too.
func (m *Manifest) SubtreeShards(key drbg.NodeKey) []int {
	out := []int{m.Owner(key)}
	for _, e := range m.Entries {
		if len(e.Prefix) <= len(key) || !keyHasPrefix(e.Prefix, key) {
			continue
		}
		seen := false
		for _, s := range out {
			if s == e.Shard {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, e.Shard)
		}
	}
	return out
}

// Binary layout (all varint = unsigned LEB128):
//
//	varint  version (1)
//	varint  nShards
//	varint  nEntries
//	repeat nEntries times:
//	    varint  prefixLen
//	    varint  × prefixLen  path components
//	    varint  shard

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Manifest) MarshalBinary() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	buf := binary.AppendUvarint(nil, manifestVersion)
	buf = binary.AppendUvarint(buf, uint64(m.Shards))
	buf = binary.AppendUvarint(buf, uint64(len(m.Entries)))
	for _, e := range m.Entries {
		buf = binary.AppendUvarint(buf, uint64(len(e.Prefix)))
		for _, c := range e.Prefix {
			buf = binary.AppendUvarint(buf, uint64(c))
		}
		buf = binary.AppendUvarint(buf, uint64(e.Shard))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Manifest) UnmarshalBinary(data []byte) error {
	dec, rest, err := DecodeManifest(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errors.New("shard: trailing bytes after manifest")
	}
	m.Shards = dec.Shards
	m.Entries = dec.Entries
	m.indexOnce = sync.Once{}
	m.index = nil
	m.rootOwner = 0
	return nil
}

// DecodeManifest decodes one manifest from the front of data, returning
// the remaining bytes.
func DecodeManifest(data []byte) (*Manifest, []byte, error) {
	next := func() (uint64, error) {
		v, k := binary.Uvarint(data)
		if k <= 0 {
			return 0, errors.New("shard: truncated manifest")
		}
		data = data[k:]
		return v, nil
	}
	version, err := next()
	if err != nil {
		return nil, nil, err
	}
	if version != manifestVersion {
		return nil, nil, fmt.Errorf("shard: unsupported manifest version %d", version)
	}
	shards, err := next()
	if err != nil {
		return nil, nil, err
	}
	n, err := next()
	if err != nil {
		return nil, nil, err
	}
	if n > maxManifestEntries {
		return nil, nil, fmt.Errorf("shard: entry count %d exceeds limit", n)
	}
	m := &Manifest{Shards: int(shards), Entries: make([]Entry, 0, n)}
	for i := uint64(0); i < n; i++ {
		plen, err := next()
		if err != nil {
			return nil, nil, err
		}
		if plen > uint64(len(data)) { // each component needs ≥ 1 byte
			return nil, nil, errors.New("shard: prefix length exceeds available bytes")
		}
		prefix := make(drbg.NodeKey, plen)
		for j := range prefix {
			c, err := next()
			if err != nil {
				return nil, nil, err
			}
			if c > 1<<32-1 {
				return nil, nil, fmt.Errorf("shard: path component %d out of range", c)
			}
			prefix[j] = uint32(c)
		}
		s, err := next()
		if err != nil {
			return nil, nil, err
		}
		m.Entries = append(m.Entries, Entry{Prefix: prefix, Shard: int(s)})
	}
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	return m, data, nil
}
