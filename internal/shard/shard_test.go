package shard

import (
	"errors"
	"math/big"
	"reflect"
	"sync"
	"testing"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/mapping"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/sharing"
	"sssearch/internal/workload"
)

// fixture builds a deterministic share tree over r with its key walk and
// a couple of valid evaluation points.
func fixture(t testing.TB, r ring.Ring, nodes int) (*sharing.Tree, []drbg.NodeKey, []*big.Int) {
	t.Helper()
	doc := workload.RandomTree(workload.TreeConfig{Nodes: nodes, MaxFanout: 3, Vocab: 8, Seed: 42})
	m, err := mapping.New(r.MaxTag(), []byte("shard-test"))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		t.Fatal(err)
	}
	var seed drbg.Seed
	for i := range seed {
		seed[i] = 0x5C
	}
	tree, err := sharing.Split(enc, seed)
	if err != nil {
		t.Fatal(err)
	}
	var keys []drbg.NodeKey
	tree.Walk(func(key drbg.NodeKey, _ *sharing.Node) bool {
		keys = append(keys, key)
		return true
	})
	var points []*big.Int
	for _, tag := range []string{"t0", "t1", "t2", "t3"} {
		if v, ok := m.Value(tag); ok && len(points) < 2 {
			points = append(points, v)
		}
	}
	if len(points) < 2 {
		t.Fatal("fixture has too few points")
	}
	return tree, keys, points
}

func TestManifestOwnerLongestPrefix(t *testing.T) {
	man := &Manifest{Shards: 3, Entries: []Entry{
		{Prefix: drbg.NodeKey{}, Shard: 0},
		{Prefix: drbg.NodeKey{1}, Shard: 1},
		{Prefix: drbg.NodeKey{1, 2}, Shard: 2},
	}}
	if err := man.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		key  drbg.NodeKey
		want int
	}{
		{drbg.NodeKey{}, 0},
		{drbg.NodeKey{0}, 0},
		{drbg.NodeKey{1}, 1},
		{drbg.NodeKey{1, 0}, 1},
		{drbg.NodeKey{1, 2}, 2},
		{drbg.NodeKey{1, 2, 9, 9}, 2},
	}
	for _, c := range cases {
		if got := man.Owner(c.key); got != c.want {
			t.Errorf("Owner(%s) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestManifestValidate(t *testing.T) {
	bad := []*Manifest{
		nil,
		{Shards: 0, Entries: []Entry{{Prefix: drbg.NodeKey{}, Shard: 0}}},
		{Shards: 2, Entries: []Entry{{Prefix: drbg.NodeKey{0}, Shard: 0}}},                                  // no root entry
		{Shards: 2, Entries: []Entry{{Prefix: drbg.NodeKey{}, Shard: 2}}},                                   // owner out of range
		{Shards: 2, Entries: []Entry{{Prefix: drbg.NodeKey{}, Shard: 0}, {Prefix: drbg.NodeKey{}, Shard: 1}}}, // duplicate
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid manifest accepted", i)
		}
	}
}

func TestManifestMarshalRoundTrip(t *testing.T) {
	man := &Manifest{Shards: 4, Entries: []Entry{
		{Prefix: drbg.NodeKey{}, Shard: 0},
		{Prefix: drbg.NodeKey{0}, Shard: 3},
		{Prefix: drbg.NodeKey{2, 1}, Shard: 1},
	}}
	b, err := man.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got.Shards != man.Shards || !reflect.DeepEqual(got.Entries, man.Entries) {
		t.Fatalf("round trip: got %+v, want %+v", got.Entries, man.Entries)
	}
	// Truncations must error, not panic.
	for i := 0; i < len(b); i++ {
		var m Manifest
		if err := m.UnmarshalBinary(b[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	if err := got.UnmarshalBinary(append(b, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestPlanDeterministicAndBalanced(t *testing.T) {
	tree, keys, _ := fixture(t, ring.MustFp(257), 200)
	for _, n := range []int{1, 2, 4, 7} {
		man, err := Plan(tree, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := man.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		again, err := Plan(tree, n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(man.Entries, again.Entries) {
			t.Fatalf("n=%d: plan is not deterministic", n)
		}
		// Every shard owns a non-trivial slice (the fixture is large
		// enough), and ownership covers all keys exactly once.
		counts := make([]int, n)
		for _, k := range keys {
			counts[man.Owner(k)]++
		}
		total := 0
		for s, c := range counts {
			total += c
			if n <= 4 && c == 0 {
				t.Errorf("n=%d: shard %d owns no nodes (counts %v)", n, s, counts)
			}
		}
		if total != len(keys) {
			t.Fatalf("n=%d: %d owned keys of %d", n, total, len(keys))
		}
		if n > 1 {
			max := 0
			for _, c := range counts {
				if c > max {
					max = c
				}
			}
			if max > (len(keys)*3)/n {
				t.Errorf("n=%d: poor balance, max shard holds %d of %d (%v)", n, max, len(keys), counts)
			}
		}
	}
	if _, err := Plan(tree, 0); err == nil {
		t.Error("Plan(0) accepted")
	}
}

func TestPartitionPreservesShapeAndShares(t *testing.T) {
	tree, keys, _ := fixture(t, ring.MustFp(257), 120)
	trees, man, err := Partition(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 3 {
		t.Fatalf("%d shard trees", len(trees))
	}
	owned := 0
	for s, st := range trees {
		if st.Count() != tree.Count() {
			t.Fatalf("shard %d shape: %d nodes, want %d", s, st.Count(), tree.Count())
		}
		owned += OwnedNodes(tree, man, s)
		for _, k := range keys {
			orig, err := tree.Lookup(k)
			if err != nil {
				t.Fatal(err)
			}
			copy, err := st.Lookup(k)
			if err != nil {
				t.Fatalf("shard %d: %v", s, err)
			}
			if len(copy.Children) != len(orig.Children) {
				t.Fatalf("shard %d %s: child count %d, want %d", s, k, len(copy.Children), len(orig.Children))
			}
			if man.Owner(k) == s {
				if !copy.Polynomial().Equal(orig.Polynomial()) {
					t.Fatalf("shard %d owns %s but polynomial differs", s, k)
				}
			} else if copy.Polynomial().Len() != 0 {
				t.Fatalf("shard %d does not own %s but carries a polynomial", s, k)
			}
		}
	}
	if owned != tree.Count() {
		t.Fatalf("OwnedNodes sums to %d, want %d", owned, tree.Count())
	}
}

// routedFixture assembles a Router over guarded in-process Locals plus
// the unsharded reference Local.
func routedFixture(t *testing.T, r ring.Ring, shards int) (*Router, *server.Local, []drbg.NodeKey, []*big.Int) {
	t.Helper()
	tree, keys, points := fixture(t, r, 150)
	ref, err := server.NewLocal(r, tree)
	if err != nil {
		t.Fatal(err)
	}
	trees, man, err := Partition(tree, shards)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]core.ServerAPI, len(trees))
	for s, st := range trees {
		local, err := server.NewLocal(r, st)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGuard(r, local, man, s)
		if err != nil {
			t.Fatal(err)
		}
		backends[s] = g
	}
	router, err := NewRouter(man, backends)
	if err != nil {
		t.Fatal(err)
	}
	return router, ref, keys, points
}

func TestRouterMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		ring ring.Ring
	}{
		{"Fp", ring.MustFp(257)},
		{"Z", ring.MustIntQuotient(1, 0, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			router, ref, keys, points := routedFixture(t, tc.ring, 4)
			want, err := ref.EvalNodes(keys, points)
			if err != nil {
				t.Fatal(err)
			}
			got, err := router.EvalNodes(keys, points)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i].Key.String() != want[i].Key.String() || got[i].NumChildren != want[i].NumChildren {
					t.Fatalf("answer %d misrouted: %+v vs %+v", i, got[i], want[i])
				}
				for j := range want[i].Values {
					if got[i].Values[j].Cmp(want[i].Values[j]) != 0 {
						t.Fatalf("%s point %d: %v, want %v", want[i].Key, j, got[i].Values[j], want[i].Values[j])
					}
				}
			}
			wantP, err := ref.FetchPolys(keys)
			if err != nil {
				t.Fatal(err)
			}
			gotP, err := router.FetchPolys(keys)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantP {
				if !gotP[i].Poly.Equal(wantP[i].Poly) {
					t.Fatalf("%s: fetched polynomial differs", wantP[i].Key)
				}
			}
			if err := router.Prune(keys[:3]); err != nil {
				t.Fatalf("prune: %v", err)
			}
			snap := router.Counters().Snapshot()
			if snap.Batches == 0 || snap.Fanout < snap.Batches {
				t.Errorf("implausible routing counters: %+v", snap)
			}
		})
	}
}

func TestRouterEmptyAndErrorPaths(t *testing.T) {
	router, _, keys, points := routedFixture(t, ring.MustFp(257), 2)
	out, err := router.EvalNodes(nil, points)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %d answers", err, len(out))
	}
	if router.Counters().Snapshot().Batches != 0 {
		t.Error("empty batch was recorded")
	}
	// An unknown key routes to its range owner and must surface that
	// shard's error without wedging later calls.
	unknown := drbg.NodeKey{1 << 30, 9}
	if _, err := router.EvalNodes([]drbg.NodeKey{unknown, keys[0]}, points); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := router.EvalNodes(keys, points); err != nil {
		t.Fatalf("call after error failed: %v", err)
	}
	if _, err := NewRouter(&Manifest{Shards: 2, Entries: []Entry{{Prefix: drbg.NodeKey{}, Shard: 0}}}, make([]core.ServerAPI, 1)); err == nil {
		t.Error("backend/shard count mismatch accepted")
	}
}

func TestGuardRejectsForeignKeys(t *testing.T) {
	r := ring.MustFp(257)
	tree, keys, points := fixture(t, r, 100)
	trees, man, err := Partition(tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	local, err := server.NewLocal(r, trees[1])
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGuard(r, local, man, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mine, foreign []drbg.NodeKey
	for _, k := range keys {
		if man.Owner(k) == 1 {
			mine = append(mine, k)
		} else {
			foreign = append(foreign, k)
		}
	}
	if len(mine) == 0 || len(foreign) == 0 {
		t.Fatal("fixture did not split ownership")
	}
	if _, err := g.EvalNodes(mine[:1], points); err != nil {
		t.Fatalf("owned eval rejected: %v", err)
	}
	if _, err := g.EvalNodes(foreign[:1], points); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("foreign eval error = %v, want ErrNotOwned", err)
	}
	if _, err := g.FetchPolys(foreign[:1]); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("foreign fetch error = %v, want ErrNotOwned", err)
	}
	// Prune is advisory: foreign keys are dropped, not rejected.
	if err := g.Prune(append(append([]drbg.NodeKey{}, foreign[:2]...), mine[:1]...)); err != nil {
		t.Fatalf("mixed prune rejected: %v", err)
	}
	if _, err := NewGuard(r, local, man, 5); err == nil {
		t.Error("out-of-range shard id accepted")
	}
}

// TestManifestOwnerRootFallback pins the root-entry fallback: with the
// catch-all on a NON-zero shard, the root key and unmatched keys must
// route there (a regression test — the root renders as "/", not "").
func TestManifestOwnerRootFallback(t *testing.T) {
	man := &Manifest{Shards: 3, Entries: []Entry{
		{Prefix: drbg.NodeKey{}, Shard: 1},
		{Prefix: drbg.NodeKey{2}, Shard: 2},
	}}
	if err := man.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := man.Owner(drbg.NodeKey{}); got != 1 {
		t.Errorf("Owner(root) = %d, want 1", got)
	}
	if got := man.Owner(drbg.NodeKey{0, 5, 5}); got != 1 {
		t.Errorf("Owner(unmatched deep key) = %d, want 1", got)
	}
	if got := man.Owner(drbg.NodeKey{2, 9}); got != 2 {
		t.Errorf("Owner(/2/9) = %d, want 2", got)
	}
	// Round-tripping must preserve the non-zero root owner.
	b, err := man.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var rt Manifest
	if err := rt.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got := rt.Owner(drbg.NodeKey{}); got != 1 {
		t.Errorf("unmarshalled Owner(root) = %d, want 1", got)
	}
}

func TestManifestSubtreeShards(t *testing.T) {
	man := &Manifest{Shards: 4, Entries: []Entry{
		{Prefix: drbg.NodeKey{}, Shard: 0},
		{Prefix: drbg.NodeKey{1}, Shard: 1},
		{Prefix: drbg.NodeKey{1, 0}, Shard: 2},
		{Prefix: drbg.NodeKey{3}, Shard: 3},
	}}
	cases := []struct {
		key  drbg.NodeKey
		want []int
	}{
		{drbg.NodeKey{}, []int{0, 1, 2, 3}},  // root subtree touches everything
		{drbg.NodeKey{1}, []int{1, 2}},       // /1 has /1/0 carved out to shard 2
		{drbg.NodeKey{1, 0}, []int{2}},       // leaf range
		{drbg.NodeKey{0}, []int{0}},          // spine-only subtree
		{drbg.NodeKey{3, 4, 5}, []int{3}},    // below a leaf range
	}
	for _, c := range cases {
		got := man.SubtreeShards(c.key)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SubtreeShards(%s) = %v, want %v", c.key, got, c.want)
		}
	}
}

// pruneRecorder is a ServerAPI stub that records Prune batches.
type pruneRecorder struct {
	mu     sync.Mutex
	pruned []drbg.NodeKey
}

func (p *pruneRecorder) EvalNodes([]drbg.NodeKey, []*big.Int) ([]core.NodeEval, error) {
	return nil, errors.New("unused")
}
func (p *pruneRecorder) FetchPolys([]drbg.NodeKey) ([]core.NodePoly, error) {
	return nil, errors.New("unused")
}
func (p *pruneRecorder) Prune(keys []drbg.NodeKey) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pruned = append(p.pruned, keys...)
	return nil
}

// TestRouterPruneBroadcast: pruning a spine subtree must reach every
// shard whose ranges are nested inside it, not only the subtree root's
// owner — those shards hold dead nodes of the pruned subtree too.
func TestRouterPruneBroadcast(t *testing.T) {
	man := &Manifest{Shards: 3, Entries: []Entry{
		{Prefix: drbg.NodeKey{}, Shard: 0},
		{Prefix: drbg.NodeKey{1}, Shard: 1},
		{Prefix: drbg.NodeKey{1, 0}, Shard: 2},
	}}
	recorders := []*pruneRecorder{{}, {}, {}}
	router, err := NewRouter(man, []core.ServerAPI{recorders[0], recorders[1], recorders[2]})
	if err != nil {
		t.Fatal(err)
	}
	// /1 is owned by shard 1 but contains shard 2's /1/0 range.
	if err := router.Prune([]drbg.NodeKey{{1}}); err != nil {
		t.Fatal(err)
	}
	if len(recorders[0].pruned) != 0 {
		t.Errorf("shard 0 heard an unrelated prune: %v", recorders[0].pruned)
	}
	for _, s := range []int{1, 2} {
		if len(recorders[s].pruned) != 1 || recorders[s].pruned[0].String() != "/1" {
			t.Errorf("shard %d pruned = %v, want [/1]", s, recorders[s].pruned)
		}
	}
	// The guard keeps broadcast keys whose subtree intersects its ranges.
	g, err := NewGuard(ring.MustFp(257), recorders[2], man, 2)
	if err != nil {
		t.Fatal(err)
	}
	recorders[2].pruned = nil
	if err := g.Prune([]drbg.NodeKey{{1}, {0}}); err != nil {
		t.Fatal(err)
	}
	if len(recorders[2].pruned) != 1 || recorders[2].pruned[0].String() != "/1" {
		t.Errorf("guard forwarded %v, want [/1]", recorders[2].pruned)
	}
}

// brokenAPI fails every call with a fixed error — a replica whose
// transport (or client-side retry stack) has given up.
type brokenAPI struct{ err error }

func (b brokenAPI) EvalNodes([]drbg.NodeKey, []*big.Int) ([]core.NodeEval, error) {
	return nil, b.err
}
func (b brokenAPI) FetchPolys([]drbg.NodeKey) ([]core.NodePoly, error) { return nil, b.err }
func (b brokenAPI) Prune([]drbg.NodeKey) error                         { return b.err }

// replicatedFixture assembles a Router with nReplicas guarded Locals per
// shard, where replica 0 of every shard is broken with brokenErr (nil =
// healthy), plus the unsharded reference.
func replicatedFixture(t *testing.T, r ring.Ring, shards int, brokenErr error) (*Router, *server.Local, []drbg.NodeKey, []*big.Int) {
	t.Helper()
	tree, keys, points := fixture(t, r, 120)
	ref, err := server.NewLocal(r, tree)
	if err != nil {
		t.Fatal(err)
	}
	trees, man, err := Partition(tree, shards)
	if err != nil {
		t.Fatal(err)
	}
	groups := make([][]core.ServerAPI, len(trees))
	for s, st := range trees {
		local, err := server.NewLocal(r, st)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGuard(r, local, man, s)
		if err != nil {
			t.Fatal(err)
		}
		if brokenErr != nil {
			groups[s] = []core.ServerAPI{brokenAPI{err: brokenErr}, g}
		} else {
			groups[s] = []core.ServerAPI{g}
		}
	}
	router, err := NewReplicatedRouter(man, groups)
	if err != nil {
		t.Fatal(err)
	}
	return router, ref, keys, points
}

// TestReplicatedRouterFailsOver: with the first replica of every shard
// broken, every sub-batch must fail over to the second replica and the
// gathered answers must match the unsharded reference exactly.
func TestReplicatedRouterFailsOver(t *testing.T) {
	r := ring.MustFp(257)
	router, ref, keys, points := replicatedFixture(t, r, 3, errors.New("replica transport down"))
	got, err := router.EvalNodes(keys, points)
	if err != nil {
		t.Fatalf("EvalNodes with broken first replicas: %v", err)
	}
	want, err := ref.EvalNodes(keys, points)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		for j := range points {
			if got[i].Values[j].Cmp(want[i].Values[j]) != 0 {
				t.Fatalf("key %s point %d diverged after failover", keys[i], j)
			}
		}
	}
	gotP, err := router.FetchPolys(keys[:5])
	if err != nil {
		t.Fatalf("FetchPolys with broken first replicas: %v", err)
	}
	wantP, err := ref.FetchPolys(keys[:5])
	if err != nil {
		t.Fatal(err)
	}
	for i := range gotP {
		if !gotP[i].Poly.Equal(wantP[i].Poly) {
			t.Fatalf("poly %s diverged after failover", keys[i])
		}
	}
	if err := router.Prune(keys[:1]); err != nil {
		t.Fatalf("Prune with broken first replicas: %v", err)
	}
	if snap := router.Counters().Snapshot(); snap.Retries < 1 {
		t.Errorf("retries = %d, want >= 1", snap.Retries)
	}
}

// TestReplicatedRouterSemanticErrorsAreTerminal: a semantic answer (the
// guard's ErrNotOwned, or a server ErrorMsg) must NOT fail over — the
// replica would answer identically.
func TestReplicatedRouterSemanticErrorsAreTerminal(t *testing.T) {
	r := ring.MustFp(257)
	router, _, _, points := replicatedFixture(t, r, 2, nil)
	// Rebuild with a first replica that answers semantically.
	man := router.Manifest()
	groups := make([][]core.ServerAPI, man.Shards)
	for s := 0; s < man.Shards; s++ {
		groups[s] = []core.ServerAPI{
			brokenAPI{err: ErrNotOwned},
			brokenAPI{err: errors.New("second replica must never be consulted")},
		}
	}
	rr, err := NewReplicatedRouter(man, groups)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rr.EvalNodes([]drbg.NodeKey{{0}}, points)
	if !errors.Is(err, ErrNotOwned) {
		t.Fatalf("err = %v, want ErrNotOwned surfaced without failover", err)
	}
	if snap := rr.Counters().Snapshot(); snap.Retries != 0 {
		t.Errorf("retries = %d, want 0 for a terminal semantic error", snap.Retries)
	}
}

// TestReplicatedRouterAllReplicasDown: exhausting a replica group
// surfaces the last transport error.
func TestReplicatedRouterAllReplicasDown(t *testing.T) {
	r := ring.MustFp(257)
	router, _, _, points := replicatedFixture(t, r, 2, nil)
	man := router.Manifest()
	down := errors.New("every replica down")
	groups := make([][]core.ServerAPI, man.Shards)
	for s := 0; s < man.Shards; s++ {
		groups[s] = []core.ServerAPI{brokenAPI{err: down}, brokenAPI{err: down}}
	}
	rr, err := NewReplicatedRouter(man, groups)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.EvalNodes([]drbg.NodeKey{{0}}, points); !errors.Is(err, down) {
		t.Fatalf("err = %v, want the replicas' error", err)
	}
}
