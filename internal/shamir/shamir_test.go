package shamir

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"

	"sssearch/internal/field"
)

var f97 = field.MustNew(97)

func TestNewSchemeValidation(t *testing.T) {
	if _, err := NewScheme(f97, 0, 3); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := NewScheme(f97, 4, 3); err == nil {
		t.Error("t>n accepted")
	}
	if _, err := NewScheme(field.MustNew(5), 2, 5); err == nil {
		t.Error("n >= p accepted")
	}
	s, err := NewScheme(f97, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Threshold() != 3 || s.Parties() != 5 || s.Field() != f97 {
		t.Error("accessors wrong")
	}
}

func TestSplitReconstructExact(t *testing.T) {
	s, _ := NewScheme(f97, 3, 5)
	secret := big.NewInt(42)
	shares, err := s.Split(secret, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 5 {
		t.Fatalf("got %d shares", len(shares))
	}
	got, err := s.Reconstruct(shares[:3])
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 42 {
		t.Errorf("reconstructed %v", got)
	}
	// Any subset of size t works.
	got, err = s.Reconstruct([]Share{shares[4], shares[1], shares[2]})
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 42 {
		t.Errorf("subset reconstruction %v", got)
	}
	// All n shares also reconstruct correctly (overdetermined).
	got, err = s.Reconstruct(shares)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 42 {
		t.Errorf("full reconstruction %v", got)
	}
}

func TestReconstructErrors(t *testing.T) {
	s, _ := NewScheme(f97, 3, 5)
	shares, _ := s.Split(big.NewInt(7), rand.Reader)
	if _, err := s.Reconstruct(shares[:2]); err == nil {
		t.Error("too few shares accepted")
	}
	dup := []Share{shares[0], shares[0], shares[1]}
	if _, err := s.Reconstruct(dup); err == nil {
		t.Error("duplicate shares accepted")
	}
	bad := []Share{{X: 0, Y: big.NewInt(1)}, shares[0], shares[1]}
	if _, err := s.Reconstruct(bad); err == nil {
		t.Error("x=0 share accepted")
	}
}

// TestThresholdHiding: with t-1 shares, every candidate secret remains
// consistent with some polynomial — demonstrated by completing the t-1
// shares with a forged share and checking each candidate is reachable.
func TestThresholdHiding(t *testing.T) {
	p := int64(13)
	fp := field.MustNew(uint64(p))
	s, _ := NewScheme(fp, 2, 3)
	shares, err := s.Split(big.NewInt(5), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Adversary holds only shares[0]. For EVERY candidate secret c there is
	// a degree-1 polynomial through (0, c) and (x0, y0) — so one share rules
	// nothing out.
	for c := int64(0); c < p; c++ {
		forged := []Share{
			shares[0],
			{X: shares[1].X, Y: nil},
		}
		// Solve for the y that makes the line pass through (0, c).
		x0 := fp.FromInt64(int64(shares[0].X))
		x1 := fp.FromInt64(int64(shares[1].X))
		slopeNum := fp.Sub(shares[0].Y, fp.FromInt64(c))
		slope, err := fp.Div(slopeNum, x0)
		if err != nil {
			t.Fatal(err)
		}
		forged[1].Y = fp.Add(fp.FromInt64(c), fp.Mul(slope, x1))
		got, err := s.Reconstruct(forged)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != c {
			t.Fatalf("candidate %d not reachable (got %v)", c, got)
		}
	}
}

func TestSplitReconstructProperty(t *testing.T) {
	rng := mrand.New(mrand.NewSource(11))
	fp := field.MustNew(65537)
	for trial := 0; trial < 60; trial++ {
		tt := 1 + rng.Intn(5)
		n := tt + rng.Intn(5)
		s, err := NewScheme(fp, tt, n)
		if err != nil {
			t.Fatal(err)
		}
		secret := fp.FromInt64(rng.Int63n(65537))
		shares, err := s.Split(secret, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		// Random subset of size tt.
		idx := rng.Perm(n)[:tt]
		sub := make([]Share, 0, tt)
		for _, i := range idx {
			sub = append(sub, shares[i])
		}
		got, err := s.Reconstruct(sub)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(secret) != 0 {
			t.Fatalf("trial %d: got %v want %v", trial, got, secret)
		}
	}
}

func TestAddSharesHomomorphism(t *testing.T) {
	s, _ := NewScheme(f97, 3, 5)
	a, _ := s.Split(big.NewInt(30), rand.Reader)
	b, _ := s.Split(big.NewInt(50), rand.Reader)
	sum, err := s.AddShares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Reconstruct(sum[:3])
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 80 {
		t.Errorf("share addition: %v, want 80", got)
	}
	if _, err := s.AddShares(a, b[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMulSharesDegreeGrowth(t *testing.T) {
	// Degree-1 polys (t=2): product has degree 2, so 3 points reconstruct
	// the product but 2 points generally do not.
	s, _ := NewScheme(f97, 2, 5)
	a, _ := s.Split(big.NewInt(6), rand.Reader)
	b, _ := s.Split(big.NewInt(7), rand.Reader)
	prod, err := s.MulShares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := InterpolateAt(f97, prod[:3], f97.Zero(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 42 {
		t.Errorf("share product: %v, want 42", got)
	}
}

func TestAdditiveSharing(t *testing.T) {
	secret := f97.FromInt64(77)
	for _, n := range []int{2, 3, 7} {
		parts, err := SplitAdditive(f97, secret, n, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != n {
			t.Fatalf("got %d parts", len(parts))
		}
		if CombineAdditive(f97, parts).Cmp(secret) != 0 {
			t.Error("additive reconstruction failed")
		}
		// n-1 parts sum to something unrelated (whp not the secret —
		// deterministic check: combining a strict subset must not be forced
		// to equal the secret; we verify the last part is the exact
		// difference).
		partial := CombineAdditive(f97, parts[:n-1])
		if f97.Add(partial, parts[n-1]).Cmp(secret) != 0 {
			t.Error("difference part inconsistent")
		}
	}
	if _, err := SplitAdditive(f97, secret, 1, rand.Reader); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestMajorityVote(t *testing.T) {
	fp := field.MustNew(101)
	s, _ := NewScheme(fp, 3, 7)
	// 7 voters: 5 yes, 2 no.
	votes := []*big.Int{
		big.NewInt(1), big.NewInt(1), big.NewInt(0), big.NewInt(1),
		big.NewInt(1), big.NewInt(0), big.NewInt(1),
	}
	res, err := MajorityVote(s, votes, []int{0, 3, 6}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Int64() != 5 {
		t.Errorf("tally = %v, want 5", res.Value)
	}
	if res.MessagesSent != 7*6 {
		t.Errorf("messages = %d, want 42", res.MessagesSent)
	}
	// Too few openers.
	if _, err := MajorityVote(s, votes, []int{0, 1}, rand.Reader); err == nil {
		t.Error("insufficient openers accepted")
	}
	// Wrong vote count.
	if _, err := MajorityVote(s, votes[:3], []int{0, 1, 2}, rand.Reader); err == nil {
		t.Error("wrong vote count accepted")
	}
	// Bad opener index.
	if _, err := MajorityVote(s, votes, []int{0, 1, 99}, rand.Reader); err == nil {
		t.Error("bad opener index accepted")
	}
}

func TestVetoVote(t *testing.T) {
	fp := field.MustNew(101)
	s, _ := NewScheme(fp, 2, 4)
	consent := []*big.Int{big.NewInt(1), big.NewInt(1), big.NewInt(1), big.NewInt(1)}
	res, err := VetoVote(s, consent, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Sign() == 0 {
		t.Error("unanimous consent opened as veto")
	}
	veto := []*big.Int{big.NewInt(1), big.NewInt(0), big.NewInt(1), big.NewInt(1)}
	res, err = VetoVote(s, veto, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Sign() != 0 {
		t.Errorf("veto ignored: product = %v", res.Value)
	}
	if _, err := VetoVote(s, nil, rand.Reader); err == nil {
		t.Error("empty vote set accepted")
	}
}

func TestVetoVoteManyTrials(t *testing.T) {
	fp := field.MustNew(1009)
	s, _ := NewScheme(fp, 3, 5)
	rng := mrand.New(mrand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(4)
		votes := make([]*big.Int, k)
		anyVeto := false
		for i := range votes {
			if rng.Intn(2) == 0 {
				votes[i] = big.NewInt(0)
				anyVeto = true
			} else {
				votes[i] = big.NewInt(1)
			}
		}
		res, err := VetoVote(s, votes, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if anyVeto != (res.Value.Sign() == 0) {
			t.Fatalf("trial %d: veto=%v but product=%v", trial, anyVeto, res.Value)
		}
	}
}

func BenchmarkSplit3of5(b *testing.B) {
	fp := field.MustNew(1000003)
	s, _ := NewScheme(fp, 3, 5)
	secret := big.NewInt(424242)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Split(secret, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct3of5(b *testing.B) {
	fp := field.MustNew(1000003)
	s, _ := NewScheme(fp, 3, 5)
	shares, _ := s.Split(big.NewInt(424242), rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Reconstruct(shares[:3]); err != nil {
			b.Fatal(err)
		}
	}
}
