// Package shamir implements Shamir's t-of-n secret sharing over a prime
// field, plus the additive 2-party sharing the search scheme uses directly
// (§4.2 of the paper calls it "a direct application of a basic secret
// sharing scheme") and the secure multi-party voting protocols the paper
// uses as its §3 worked example.
package shamir

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"sssearch/internal/field"
)

// Share is one party's share: the evaluation point X (1-based, nonzero) and
// the polynomial value Y = g(X).
type Share struct {
	X uint32
	Y *big.Int
}

// Scheme fixes a field, a reconstruction threshold t and a party count n.
// Any t of the n shares reconstruct the secret; t-1 shares reveal nothing.
type Scheme struct {
	f *field.Field
	t int
	n int
}

// NewScheme validates and builds a t-of-n scheme over f. Requires
// 1 <= t <= n and n < p (evaluation points 1..n must be distinct nonzero
// field elements).
func NewScheme(f *field.Field, t, n int) (*Scheme, error) {
	if t < 1 || n < 1 || t > n {
		return nil, fmt.Errorf("shamir: invalid threshold %d of %d", t, n)
	}
	if big.NewInt(int64(n)).Cmp(f.P()) >= 0 {
		return nil, fmt.Errorf("shamir: need n < p, got n=%d p=%s", n, f.P())
	}
	return &Scheme{f: f, t: t, n: n}, nil
}

// Threshold returns t.
func (s *Scheme) Threshold() int { return s.t }

// Parties returns n.
func (s *Scheme) Parties() int { return s.n }

// Field returns the underlying field.
func (s *Scheme) Field() *field.Field { return s.f }

// Split shares a secret: chooses a random polynomial g of degree t-1 with
// g(0) = secret and returns the n shares (i, g(i)) for i = 1..n.
func (s *Scheme) Split(secret *big.Int, rng io.Reader) ([]Share, error) {
	coeffs := make([]*big.Int, s.t)
	coeffs[0] = s.f.Reduce(secret)
	for i := 1; i < s.t; i++ {
		c, err := s.f.Rand(rng)
		if err != nil {
			return nil, err
		}
		coeffs[i] = c
	}
	shares := make([]Share, s.n)
	for i := 1; i <= s.n; i++ {
		shares[i-1] = Share{X: uint32(i), Y: evalAt(s.f, coeffs, int64(i))}
	}
	return shares, nil
}

// evalAt computes the polynomial with the given coefficients at x (Horner).
func evalAt(f *field.Field, coeffs []*big.Int, x int64) *big.Int {
	bx := f.FromInt64(x)
	acc := f.Zero()
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, bx), coeffs[i])
	}
	return acc
}

// Reconstruct recovers the secret (the value at x=0) from at least t
// shares with distinct X, by Lagrange interpolation.
func (s *Scheme) Reconstruct(shares []Share) (*big.Int, error) {
	return InterpolateAt(s.f, shares, s.f.Zero(), s.t)
}

// ReconstructAt recovers g(x0) from at least t shares — used by the voting
// protocols to open sums/products at points other than zero if needed.
func (s *Scheme) ReconstructAt(shares []Share, x0 *big.Int) (*big.Int, error) {
	return InterpolateAt(s.f, shares, x0, s.t)
}

// InterpolateAt evaluates the unique degree-<len(shares) polynomial through
// the shares at x0, requiring at least minShares points with distinct X.
func InterpolateAt(f *field.Field, shares []Share, x0 *big.Int, minShares int) (*big.Int, error) {
	if len(shares) < minShares {
		return nil, fmt.Errorf("shamir: need >= %d shares, got %d", minShares, len(shares))
	}
	seen := make(map[uint32]bool, len(shares))
	for _, sh := range shares {
		if sh.X == 0 {
			return nil, errors.New("shamir: share at x=0 is forbidden")
		}
		if seen[sh.X] {
			return nil, fmt.Errorf("shamir: duplicate share point x=%d", sh.X)
		}
		seen[sh.X] = true
	}
	// Lagrange: Σ_i y_i · ∏_{j≠i} (x0 - x_j)/(x_i - x_j).
	acc := f.Zero()
	for i, si := range shares {
		num := f.One()
		den := f.One()
		xi := f.FromInt64(int64(si.X))
		for j, sj := range shares {
			if i == j {
				continue
			}
			xj := f.FromInt64(int64(sj.X))
			num = f.Mul(num, f.Sub(x0, xj))
			den = f.Mul(den, f.Sub(xi, xj))
		}
		li, err := f.Div(num, den)
		if err != nil {
			return nil, fmt.Errorf("shamir: interpolation: %w", err)
		}
		acc = f.Add(acc, f.Mul(si.Y, li))
	}
	return acc, nil
}

// AddShares adds two share vectors pointwise: the shares of the sum of the
// secrets. Both vectors must cover the same points in the same order.
func (s *Scheme) AddShares(a, b []Share) ([]Share, error) {
	if len(a) != len(b) {
		return nil, errors.New("shamir: share vectors differ in length")
	}
	out := make([]Share, len(a))
	for i := range a {
		if a[i].X != b[i].X {
			return nil, fmt.Errorf("shamir: share point mismatch at %d: %d vs %d", i, a[i].X, b[i].X)
		}
		out[i] = Share{X: a[i].X, Y: s.f.Add(a[i].Y, b[i].Y)}
	}
	return out, nil
}

// MulShares multiplies two share vectors pointwise. The result lies on the
// product polynomial, whose degree is the sum of the operand degrees;
// reconstruction then needs correspondingly more shares. (This is the
// degree-growth behind the veto protocol's party requirement.)
func (s *Scheme) MulShares(a, b []Share) ([]Share, error) {
	if len(a) != len(b) {
		return nil, errors.New("shamir: share vectors differ in length")
	}
	out := make([]Share, len(a))
	for i := range a {
		if a[i].X != b[i].X {
			return nil, fmt.Errorf("shamir: share point mismatch at %d: %d vs %d", i, a[i].X, b[i].X)
		}
		out[i] = Share{X: a[i].X, Y: s.f.Mul(a[i].Y, b[i].Y)}
	}
	return out, nil
}

// SplitAdditive shares a secret additively among n parties: n-1 uniform
// values plus the difference. All n parts are required to reconstruct —
// the form the search scheme uses with n=2 (client + server).
func SplitAdditive(f *field.Field, secret *big.Int, n int, rng io.Reader) ([]*big.Int, error) {
	if n < 2 {
		return nil, errors.New("shamir: additive sharing needs n >= 2")
	}
	parts := make([]*big.Int, n)
	sum := f.Zero()
	for i := 0; i < n-1; i++ {
		v, err := f.Rand(rng)
		if err != nil {
			return nil, err
		}
		parts[i] = v
		sum = f.Add(sum, v)
	}
	parts[n-1] = f.Sub(f.Reduce(secret), sum)
	return parts, nil
}

// CombineAdditive reconstructs an additively shared secret.
func CombineAdditive(f *field.Field, parts []*big.Int) *big.Int {
	acc := f.Zero()
	for _, p := range parts {
		acc = f.Add(acc, p)
	}
	return acc
}
