package shamir

import (
	"errors"
	"fmt"
	"io"
	"math/big"
)

// This file implements the paper's §3 worked example of secure multi-party
// computation: anonymous voting without a trusted third party.
//
//   - Majority vote: f(x1,…,xn) = Σ xi. Each voter Pi shares its vote with a
//     random degree-(t-1) polynomial gi, gi(0) = xi, and sends gi(j) to
//     party Pj. Each party locally sums the received shares: h(j) = Σ gi(j).
//     Any t parties interpolate h(0) = Σ xi. No party ever sees another's
//     vote.
//   - Veto vote: f(x1,…,xn) = Π xi (1 = consent). Share products multiply
//     polynomial degrees, so opening Π gi needs k(t-1)+1 evaluation points
//     for k voters; the protocol therefore distributes shares to
//     max(n, k(t-1)+1) tally parties. (The BGW degree-reduction step that
//     would avoid this is out of the paper's scope.)
//
// The functions below simulate the full message flow: dealing, local
// aggregation, and opening from a caller-chosen subset of parties.

// VoteResult captures the outcome and the transcript sizes of a protocol
// run (for the E16 experiment).
type VoteResult struct {
	// Value is the opened function result: the vote sum, or the veto
	// product (nonzero = unanimous consent when votes are 0/1).
	Value *big.Int
	// MessagesSent counts point-to-point share transfers.
	MessagesSent int
	// OpeningShares is the number of shares used to open the result.
	OpeningShares int
}

// MajorityVote runs the Σ-protocol among n = len(votes) parties with
// threshold t, then opens the tally using the t parties selected by
// openers (indices into 0..n-1). Vote values may be any field elements;
// {0,1} gives the paper's yes/no semantics.
func MajorityVote(s *Scheme, votes []*big.Int, openers []int, rng io.Reader) (*VoteResult, error) {
	n := s.Parties()
	if len(votes) != n {
		return nil, fmt.Errorf("shamir: %d votes for %d parties", len(votes), n)
	}
	if len(openers) < s.Threshold() {
		return nil, fmt.Errorf("shamir: need %d openers, got %d", s.Threshold(), len(openers))
	}
	// Phase 1: each voter deals shares of its vote.
	msgs := 0
	received := make([][]Share, n) // received[j] = shares held by party j
	for i := 0; i < n; i++ {
		shares, err := s.Split(votes[i], rng)
		if err != nil {
			return nil, err
		}
		for j := 0; j < n; j++ {
			received[j] = append(received[j], shares[j])
			if i != j {
				msgs++
			}
		}
	}
	// Phase 2: each party locally sums its received shares → h(j).
	local := make([]Share, n)
	for j := 0; j < n; j++ {
		acc := s.Field().Zero()
		for _, sh := range received[j] {
			acc = s.Field().Add(acc, sh.Y)
		}
		local[j] = Share{X: uint32(j + 1), Y: acc}
	}
	// Phase 3: the openers pool their h(j) points and interpolate h(0).
	opening := make([]Share, 0, len(openers))
	for _, idx := range openers {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("shamir: opener index %d out of range", idx)
		}
		opening = append(opening, local[idx])
	}
	sum, err := s.Reconstruct(opening)
	if err != nil {
		return nil, err
	}
	return &VoteResult{Value: sum, MessagesSent: msgs, OpeningShares: len(opening)}, nil
}

// VetoVote runs the Π-protocol: every voter shares its consent bit
// (1 = consent, 0 = veto); the tally parties multiply their local shares;
// the opened product is nonzero iff nobody vetoed. The share polynomial
// product has degree k(t-1), so the protocol uses m = k(t-1)+1 tally
// parties (m may exceed the voter count).
func VetoVote(s *Scheme, votes []*big.Int, rng io.Reader) (*VoteResult, error) {
	k := len(votes)
	if k == 0 {
		return nil, errors.New("shamir: no votes")
	}
	t := s.Threshold()
	m := k*(t-1) + 1
	if m < s.Parties() {
		m = s.Parties()
	}
	tally, err := NewScheme(s.Field(), t, m)
	if err != nil {
		return nil, fmt.Errorf("shamir: veto needs %d tally parties: %w", m, err)
	}
	msgs := 0
	// received[j] = the j-th tally party's share of each vote.
	received := make([][]Share, m)
	for i := 0; i < k; i++ {
		shares, err := tally.Split(votes[i], rng)
		if err != nil {
			return nil, err
		}
		for j := 0; j < m; j++ {
			received[j] = append(received[j], shares[j])
			msgs++
		}
	}
	// Each tally party multiplies its shares: a point on Π gi.
	product := make([]Share, m)
	for j := 0; j < m; j++ {
		acc := s.Field().One()
		for _, sh := range received[j] {
			acc = s.Field().Mul(acc, sh.Y)
		}
		product[j] = Share{X: uint32(j + 1), Y: acc}
	}
	// Opening needs all k(t-1)+1 points of the degree-k(t-1) product.
	need := k*(t-1) + 1
	val, err := InterpolateAt(s.Field(), product[:need], s.Field().Zero(), need)
	if err != nil {
		return nil, err
	}
	return &VoteResult{Value: val, MessagesSent: msgs, OpeningShares: need}, nil
}
