package gf

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sssearch/internal/field"
	"sssearch/internal/poly"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(4, 2); err == nil {
		t.Error("composite characteristic accepted")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := New(2, 99); err == nil {
		t.Error("huge degree accepted")
	}
	f, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Order().Int64() != 2 {
		t.Errorf("GF(2^1) order = %v", f.Order())
	}
}

func TestKnownFieldOrders(t *testing.T) {
	cases := []struct {
		p uint64
		e int
		q int64
	}{
		{2, 2, 4}, {2, 3, 8}, {2, 8, 256}, {3, 2, 9}, {3, 3, 27}, {5, 2, 25}, {7, 2, 49},
	}
	for _, c := range cases {
		f, err := New(c.p, c.e)
		if err != nil {
			t.Fatalf("GF(%d^%d): %v", c.p, c.e, err)
		}
		if f.Order().Int64() != c.q {
			t.Errorf("GF(%d^%d) order = %v, want %d", c.p, c.e, f.Order(), c.q)
		}
		if f.Modulus().Degree() != c.e || !f.Modulus().IsMonic() {
			t.Errorf("GF(%d^%d) modulus %v malformed", c.p, c.e, f.Modulus())
		}
		if f.Degree() != c.e || f.P().Int64() != int64(c.p) {
			t.Error("accessors wrong")
		}
	}
}

func TestGF4MultiplicationTable(t *testing.T) {
	// GF(4) = F_2[y]/(y^2+y+1): elements {0, 1, y, y+1}.
	f, err := NewWithModulus(mustBase(t, 2), poly.FromInt64(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	y := f.Y()
	y1 := f.Add(y, f.One())
	// y * y = y+1 (since y^2 = y+1 mod y^2+y+1 over F_2).
	if !f.Equal(f.Mul(y, y), y1) {
		t.Errorf("y*y = %v, want y+1", f.Mul(y, y))
	}
	// y * (y+1) = y^2+y = 1.
	if !f.Equal(f.Mul(y, y1), f.One()) {
		t.Errorf("y*(y+1) = %v, want 1", f.Mul(y, y1))
	}
	// (y+1)^2 = y.
	if !f.Equal(f.Mul(y1, y1), y) {
		t.Errorf("(y+1)^2 = %v, want y", f.Mul(y1, y1))
	}
}

func mustBase(t *testing.T, p uint64) *field.Field {
	t.Helper()
	b, err := field.NewUint64(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// elements enumerates all q elements of a small field.
func elements(f *Field) []poly.Poly {
	p := f.P().Int64()
	e := f.Degree()
	var out []poly.Poly
	var rec func(coeffs []int64, i int)
	rec = func(coeffs []int64, i int) {
		if i == e {
			cs := make([]*big.Int, e)
			for j, c := range coeffs {
				cs[j] = big.NewInt(c)
			}
			out = append(out, poly.New(cs...))
			return
		}
		for v := int64(0); v < p; v++ {
			coeffs[i] = v
			rec(coeffs, i+1)
		}
	}
	rec(make([]int64, e), 0)
	return out
}

// TestFermatLittleTheorem: a^(q-1) = 1 for all nonzero a — verified
// exhaustively on GF(8), GF(9) and GF(25).
func TestFermatLittleTheorem(t *testing.T) {
	for _, c := range []struct {
		p uint64
		e int
	}{{2, 3}, {3, 2}, {5, 2}} {
		f, err := New(c.p, c.e)
		if err != nil {
			t.Fatal(err)
		}
		qm1 := new(big.Int).Sub(f.Order(), big.NewInt(1))
		for _, a := range elements(f) {
			if f.IsZero(a) {
				continue
			}
			got := f.Exp(a, qm1)
			if !f.Equal(got, f.One()) {
				t.Fatalf("%s: %v^(q-1) = %v", f, a, got)
			}
		}
	}
}

// TestInverseExhaustive: every nonzero element has a working inverse.
func TestInverseExhaustive(t *testing.T) {
	for _, c := range []struct {
		p uint64
		e int
	}{{2, 4}, {3, 3}, {7, 2}} {
		f, err := New(c.p, c.e)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range elements(f) {
			if f.IsZero(a) {
				if _, err := f.Inv(a); err == nil {
					t.Fatal("Inv(0) accepted")
				}
				continue
			}
			inv, err := f.Inv(a)
			if err != nil {
				t.Fatalf("%s: Inv(%v): %v", f, a, err)
			}
			if !f.Equal(f.Mul(a, inv), f.One()) {
				t.Fatalf("%s: %v * %v != 1", f, a, inv)
			}
		}
	}
}

func TestFieldAxiomsProperty(t *testing.T) {
	f, err := New(5, 3) // GF(125)
	if err != nil {
		t.Fatal(err)
	}
	gen := func(vals []reflect.Value, r *mrand.Rand) {
		for i := range vals {
			cs := make([]*big.Int, 3)
			for j := range cs {
				cs[j] = big.NewInt(r.Int63n(5))
			}
			vals[i] = reflect.ValueOf(poly.New(cs...))
		}
	}
	err = quick.Check(func(a, b, c poly.Poly) bool {
		if !f.Equal(f.Add(a, b), f.Add(b, a)) {
			return false
		}
		if !f.Equal(f.Mul(a, b), f.Mul(b, a)) {
			return false
		}
		if !f.Equal(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c))) {
			return false
		}
		if !f.Equal(f.Mul(a, f.Add(b, c)), f.Add(f.Mul(a, b), f.Mul(a, c))) {
			return false
		}
		if !f.Equal(f.Add(a, f.Neg(a)), f.Zero()) {
			return false
		}
		if !f.Equal(f.Sub(a, b), f.Add(a, f.Neg(b))) {
			return false
		}
		if f.IsZero(a) {
			return true
		}
		inv, err := f.Inv(a)
		if err != nil {
			return false
		}
		d, err := f.Div(f.Mul(a, b), a)
		if err != nil {
			return false
		}
		return f.Equal(f.Mul(a, inv), f.One()) && f.Equal(d, f.Reduce(b))
	}, &quick.Config{MaxCount: 200, Values: gen})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandInField(t *testing.T) {
	f, err := New(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a, err := f.Rand(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if a.Degree() >= f.Degree() {
			t.Fatal("element degree out of range")
		}
		if !f.Equal(f.Reduce(a), a) {
			t.Fatal("Rand not canonical")
		}
	}
}

func TestNewWithModulusValidation(t *testing.T) {
	base := mustBase(t, 2)
	// y^2 (reducible).
	if _, err := NewWithModulus(base, poly.FromInt64(0, 0, 1)); err == nil {
		t.Error("reducible modulus accepted")
	}
	// Constant.
	if _, err := NewWithModulus(base, poly.FromInt64(1)); err == nil {
		t.Error("constant modulus accepted")
	}
	// Valid: y^2+y+1 over F_2.
	if _, err := NewWithModulus(base, poly.FromInt64(1, 1, 1)); err != nil {
		t.Errorf("y^2+y+1: %v", err)
	}
}

func TestStringer(t *testing.T) {
	f, _ := New(2, 8)
	if f.String() != "GF(2^8)" {
		t.Errorf("String = %q", f.String())
	}
}

func BenchmarkMulGF256(b *testing.B) {
	f, err := New(2, 8)
	if err != nil {
		b.Fatal(err)
	}
	x, _ := f.Rand(rand.Reader)
	y, _ := f.Rand(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Mul(x, y)
	}
}

func BenchmarkInvGF256(b *testing.B) {
	f, err := New(2, 8)
	if err != nil {
		b.Fatal(err)
	}
	x := f.Y()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Inv(x); err != nil {
			b.Fatal(err)
		}
	}
}
