// Package gf implements the finite extension fields GF(p^e) = F_{p^e}
// that §4.1 of the paper alludes to: "a finite ring … F_q[x]/(x^{q-1}-1)
// (where q is a prime power q = p^e. For the reader's convenience, all
// proofs will be given for q prime)".
//
// The main scheme (and the paper's worked example) uses q prime; this
// package supplies the prime-power coefficient fields that generalize it,
// so a deployment can pick q = 2^8 or 3^5 instead of a prime — useful when
// tags should pack into whole bytes.
//
// Elements are polynomials over F_p of degree < e, reduced modulo a monic
// irreducible h(y) of degree e, represented as poly.Poly with canonical
// coefficients in [0, p).
package gf

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"sssearch/internal/field"
	"sssearch/internal/poly"
	"sssearch/internal/ring"
)

// Field is GF(p^e). Safe for concurrent use.
type Field struct {
	base *field.Field
	p    *big.Int
	e    int
	h    poly.Poly // monic irreducible modulus of degree e
	q    *big.Int  // p^e
}

// New constructs GF(p^e) for prime p and e >= 1, searching for a monic
// irreducible modulus deterministically (smallest by lexicographic
// coefficient order).
func New(p uint64, e int) (*Field, error) {
	base, err := field.NewUint64(p)
	if err != nil {
		return nil, err
	}
	if e < 1 {
		return nil, errors.New("gf: extension degree must be >= 1")
	}
	if e > 16 {
		return nil, errors.New("gf: extension degree too large")
	}
	bp := base.P()
	h, err := findIrreducible(bp, e)
	if err != nil {
		return nil, err
	}
	return NewWithModulus(base, h)
}

// NewWithModulus constructs GF(p^e) with an explicit monic modulus
// (verified irreducible mod p).
func NewWithModulus(base *field.Field, h poly.Poly) (*Field, error) {
	e := h.Degree()
	if e < 1 {
		return nil, errors.New("gf: modulus degree must be >= 1")
	}
	bp := base.P()
	hc := h.ReduceCoeffs(bp)
	if hc.Degree() != e || !hc.IsMonic() {
		return nil, errors.New("gf: modulus must be monic mod p")
	}
	if e > 1 && !ring.IrreducibleModP(hc, bp) {
		return nil, fmt.Errorf("gf: %v is reducible mod %v", hc, bp)
	}
	q := new(big.Int).Exp(bp, big.NewInt(int64(e)), nil)
	return &Field{base: base, p: bp, e: e, h: hc, q: q}, nil
}

// findIrreducible enumerates monic degree-e polynomials in lexicographic
// coefficient order (lower coefficients as base-p digits of a counter)
// until one passes Rabin's test. Irreducibles have density ~1/e among
// monic polynomials, so the scan terminates almost immediately; degree 8
// over F_2, which famously has no irreducible trinomial, lands on the
// pentanomial y^8+y^4+y^3+y^2+1 family region within a few dozen steps.
func findIrreducible(p *big.Int, e int) (poly.Poly, error) {
	if e == 1 {
		return poly.FromInt64(0, 1), nil // y
	}
	pv := p.Int64()
	const maxScan = 1 << 20
	digits := make([]int64, e) // coefficients of y^0..y^{e-1}
	for iter := 0; iter < maxScan; iter++ {
		coeffs := make([]*big.Int, e+1)
		for i := 0; i < e; i++ {
			coeffs[i] = big.NewInt(digits[i])
		}
		coeffs[e] = big.NewInt(1)
		h := poly.New(coeffs...)
		if ring.IrreducibleModP(h, p) {
			return h, nil
		}
		// Increment the base-p counter.
		for i := 0; i < e; i++ {
			digits[i]++
			if digits[i] < pv {
				break
			}
			digits[i] = 0
			if i == e-1 {
				return poly.Poly{}, fmt.Errorf("gf: exhausted search for p=%v e=%d", p, e)
			}
		}
	}
	return poly.Poly{}, fmt.Errorf("gf: no irreducible modulus found for p=%v e=%d within %d candidates", p, e, maxScan)
}

// P returns the characteristic.
func (f *Field) P() *big.Int { return new(big.Int).Set(f.p) }

// Degree returns the extension degree e.
func (f *Field) Degree() int { return f.e }

// Order returns q = p^e.
func (f *Field) Order() *big.Int { return new(big.Int).Set(f.q) }

// Modulus returns the defining polynomial h(y).
func (f *Field) Modulus() poly.Poly { return f.h }

// String implements fmt.Stringer.
func (f *Field) String() string { return fmt.Sprintf("GF(%v^%d)", f.p, f.e) }

// Reduce maps an arbitrary polynomial to its canonical representative.
func (f *Field) Reduce(a poly.Poly) poly.Poly {
	rem, err := a.ReduceCoeffs(f.p).Mod(f.h)
	if err != nil {
		panic(fmt.Sprintf("gf: reduce: %v", err))
	}
	return rem.ReduceCoeffs(f.p)
}

// Zero returns the additive identity.
func (f *Field) Zero() poly.Poly { return poly.Zero() }

// One returns the multiplicative identity.
func (f *Field) One() poly.Poly { return poly.One() }

// FromInt embeds an integer into the prime subfield.
func (f *Field) FromInt(v int64) poly.Poly {
	return poly.FromInt64(v).ReduceCoeffs(f.p)
}

// Y returns the generator element y.
func (f *Field) Y() poly.Poly { return f.Reduce(poly.X()) }

// Add returns a + b.
func (f *Field) Add(a, b poly.Poly) poly.Poly { return f.Reduce(a.Add(b)) }

// Sub returns a - b.
func (f *Field) Sub(a, b poly.Poly) poly.Poly { return f.Reduce(a.Sub(b)) }

// Neg returns -a.
func (f *Field) Neg(a poly.Poly) poly.Poly { return f.Reduce(a.Neg()) }

// Mul returns a · b.
func (f *Field) Mul(a, b poly.Poly) poly.Poly { return f.Reduce(a.Mul(b)) }

// Equal reports whether a and b represent the same field element.
func (f *Field) Equal(a, b poly.Poly) bool { return f.Reduce(a).Equal(f.Reduce(b)) }

// IsZero reports whether a ≡ 0.
func (f *Field) IsZero(a poly.Poly) bool { return f.Reduce(a).IsZero() }

// Inv returns a^{-1} by the extended Euclidean algorithm over F_p[y],
// or an error for a ≡ 0.
func (f *Field) Inv(a poly.Poly) (poly.Poly, error) {
	r0 := f.h
	r1 := f.Reduce(a)
	if r1.IsZero() {
		return poly.Poly{}, errors.New("gf: inverse of zero")
	}
	s0, s1 := poly.Zero(), poly.One()
	for !r1.IsZero() {
		q, rem, err := fpDivMod(r0, r1, f.p)
		if err != nil {
			return poly.Poly{}, err
		}
		r0, r1 = r1, rem
		s0, s1 = s1, s0.Sub(q.Mul(s1)).ReduceCoeffs(f.p)
	}
	// r0 is now gcd(h, a): a nonzero constant since h is irreducible.
	if r0.Degree() != 0 {
		return poly.Poly{}, fmt.Errorf("gf: gcd has degree %d (modulus not irreducible?)", r0.Degree())
	}
	cInv := new(big.Int).ModInverse(r0.Coeff(0), f.p)
	if cInv == nil {
		return poly.Poly{}, errors.New("gf: constant gcd not invertible")
	}
	return f.Reduce(s0.MulScalar(cInv)), nil
}

// Div returns a / b.
func (f *Field) Div(a, b poly.Poly) (poly.Poly, error) {
	bi, err := f.Inv(b)
	if err != nil {
		return poly.Poly{}, err
	}
	return f.Mul(a, bi), nil
}

// Exp returns a^k for k >= 0.
func (f *Field) Exp(a poly.Poly, k *big.Int) poly.Poly {
	result := f.One()
	base := f.Reduce(a)
	for i := k.BitLen() - 1; i >= 0; i-- {
		result = f.Mul(result, result)
		if k.Bit(i) == 1 {
			result = f.Mul(result, base)
		}
	}
	return result
}

// Rand draws a uniformly random element from rng.
func (f *Field) Rand(rng io.Reader) (poly.Poly, error) {
	coeffs := make([]*big.Int, f.e)
	for i := range coeffs {
		v, err := f.base.Rand(rng)
		if err != nil {
			return poly.Poly{}, err
		}
		coeffs[i] = v
	}
	return poly.New(coeffs...), nil
}

// fpDivMod divides a by b over F_p[y] (b nonzero mod p), returning
// quotient and remainder with canonical coefficients.
func fpDivMod(a, b poly.Poly, p *big.Int) (quo, rem poly.Poly, err error) {
	b = b.ReduceCoeffs(p)
	if b.IsZero() {
		return poly.Poly{}, poly.Poly{}, errors.New("gf: division by zero polynomial")
	}
	// Scale b monic, divide, unscale the quotient.
	lead := b.LeadingCoeff()
	leadInv := new(big.Int).ModInverse(lead, p)
	if leadInv == nil {
		return poly.Poly{}, poly.Poly{}, errors.New("gf: non-invertible leading coefficient")
	}
	bm := b.MulScalar(leadInv).ReduceCoeffs(p)
	q, r, err := a.ReduceCoeffs(p).DivMod(bm)
	if err != nil {
		return poly.Poly{}, poly.Poly{}, err
	}
	return q.MulScalar(leadInv).ReduceCoeffs(p), r.ReduceCoeffs(p), nil
}
