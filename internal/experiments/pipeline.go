package experiments

import (
	"crypto/sha256"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/mapping"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/sharing"
	"sssearch/internal/xmltree"
)

// pipeline wires a document through encode → split → serve → engine, the
// full scheme stack used by the measurement experiments.
type pipeline struct {
	doc        *xmltree.Node
	ring       ring.Ring
	mapping    *mapping.Map
	seed       drbg.Seed
	encoded    *polyenc.Tree
	serverTree *sharing.Tree
	server     *server.Local
	engine     *core.Engine
}

// buildPipeline constructs the stack deterministically from a secret label.
func buildPipeline(r ring.Ring, doc *xmltree.Node, secret string) (*pipeline, error) {
	seed := drbg.Seed(sha256.Sum256([]byte(secret)))
	m, err := mapping.New(r.MaxTag(), []byte(secret))
	if err != nil {
		return nil, err
	}
	enc, err := polyenc.Encode(r, doc, m)
	if err != nil {
		return nil, err
	}
	tree, err := sharing.Split(enc, seed)
	if err != nil {
		return nil, err
	}
	srv, err := server.NewLocal(r, tree)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(r, seed, m, srv, nil)
	return &pipeline{
		doc:        doc,
		ring:       r,
		mapping:    m,
		seed:       seed,
		encoded:    enc,
		serverTree: tree,
		server:     srv,
		engine:     eng,
	}, nil
}
