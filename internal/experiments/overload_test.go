package experiments

import "testing"

// TestOverloadWorkload runs one wave of each admission variant. Run()
// itself enforces the contract — every served answer byte-identical to
// the reference, every rejection a typed overload error, at least one
// request served — so this is a correctness gate for the bench fixture,
// not a latency assertion (the p99 comparison lives in BENCH_N.json,
// where one noisy CI box can't flake it).
func TestOverloadWorkload(t *testing.T) {
	for _, tc := range []struct {
		name string
		shed bool
	}{
		{"Shed", true},
		{"Unbounded", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w, err := NewOverloadWorkload(tc.shed)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Run(); err != nil {
				t.Fatal(err)
			}
			if tc.shed && w.rejected == 0 {
				t.Error("admission-capped wave rejected nothing; the overload fixture exercised no shedding")
			}
			if !tc.shed && w.rejected > 0 {
				t.Errorf("unbounded wave rejected %d requests", w.rejected)
			}
			if w.P99Ns() <= 0 {
				t.Error("no latency recorded")
			}
		})
	}
}
