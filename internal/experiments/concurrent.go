package experiments

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"
	"time"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/mapping"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/sharing"
	"sssearch/internal/workload"
)

func init() {
	register(Experiment{
		ID: "concurrent", Ref: "§4.2 k-of-n extension, concurrent engine",
		Title: "multi-server fan-out schedule: sequential vs concurrent round trips",
		Run:   runConcurrent,
	})
}

// rttAPI models a share server one (simulated) network round trip away —
// the experiment isolates the fan-out schedule from host core count.
type rttAPI struct {
	inner core.ServerAPI
	rtt   time.Duration
}

func (l rttAPI) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	time.Sleep(l.rtt)
	return l.inner.EvalNodes(keys, points)
}

func (l rttAPI) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	time.Sleep(l.rtt)
	return l.inner.FetchPolys(keys)
}

func (l rttAPI) Prune(keys []drbg.NodeKey) error {
	time.Sleep(l.rtt)
	return l.inner.Prune(keys)
}

// runConcurrent measures the same k-of-n query workload under the
// sequential fan-out (the pre-concurrency engine: each protocol round
// costs k round trips) and the concurrent fan-out (each round costs the
// slowest single round trip), reporting per-query latency and speedup.
func runConcurrent(w io.Writer, cfg Config) error {
	nodes, queries, rtt := 150, 6, 2*time.Millisecond
	if cfg.Quick {
		nodes, queries, rtt = 60, 2, 1*time.Millisecond
	}
	fp := ring.MustFp(17)
	doc := workload.RandomTree(workload.TreeConfig{Nodes: nodes, MaxFanout: 4, Vocab: 10, Seed: 33})
	m, err := mapping.New(fp.MaxTag(), []byte("concurrent-exp"))
	if err != nil {
		return err
	}
	enc, err := polyenc.Encode(fp, doc, m)
	if err != nil {
		return err
	}
	seed := drbg.Seed(sha256.Sum256([]byte("concurrent-exp")))

	t := &Table{Headers: []string{"servers (k=n)", "sequential ms/query", "concurrent ms/query", "speedup"}}
	for _, n := range []int{2, 4} {
		shares, err := sharing.MultiSplit(enc, seed, n, n, rand.Reader)
		if err != nil {
			return err
		}
		members := make([]core.MultiMember, n)
		for i, s := range shares {
			srv, err := server.NewLocal(fp, s.Tree)
			if err != nil {
				return err
			}
			members[i] = core.MultiMember{X: s.X, API: rttAPI{inner: srv, rtt: rtt}}
		}
		var elapsed [2]time.Duration
		var matchCounts [2]int
		for mode, sequential := range []bool{true, false} {
			ms, err := core.NewMultiServer(fp, n, members)
			if err != nil {
				return err
			}
			ms.Sequential = sequential
			eng := core.NewEngine(fp, seed, m, ms, nil)
			start := time.Now()
			for q := 0; q < queries; q++ {
				res, err := eng.Lookup(fmt.Sprintf("t%d", q%10), core.Opts{Verify: core.VerifyResolve})
				if err != nil {
					return err
				}
				matchCounts[mode] += len(res.Matches)
			}
			elapsed[mode] = time.Since(start)
		}
		if matchCounts[0] != matchCounts[1] {
			return fmt.Errorf("concurrent fan-out changed results: %d vs %d matches", matchCounts[1], matchCounts[0])
		}
		seqMS := float64(elapsed[0].Microseconds()) / 1000 / float64(queries)
		conMS := float64(elapsed[1].Microseconds()) / 1000 / float64(queries)
		t.Add(n, fmt.Sprintf("%.1f", seqMS), fmt.Sprintf("%.1f", conMS), fmt.Sprintf("%.2fx", seqMS/conMS))
	}
	t.Render(w)
	fmt.Fprintf(w, "(simulated %s RTT per server call; the concurrent engine pays the slowest of k round trips per protocol round instead of their sum)\n", rtt)
	return nil
}
