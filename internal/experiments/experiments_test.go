package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs the entire harness in quick mode. Every
// experiment validates its own golden values and invariants, so this is
// simultaneously the integration test for the full reproduction.
func TestAllExperimentsQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, Config{Quick: true}); err != nil {
		t.Fatalf("%v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	// Spot-check that the headline figures made it into the output.
	for _, needle := range []string{
		"3x^3 + 3x^2 + 3x + 3", // figure 2(a) root
		"265x + 45",            // figure 2(b) root
		"256x + 57",            // figure 4 server root share
		"dead branch",          // figures 5/6 classification
		"majority",             // voting table
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("output missing %q", needle)
		}
	}
}

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) < 14 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	ids := IDs()
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate experiment id %q", id)
		}
		seen[id] = true
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"storage", "pruning", "compare", "trusted", "seedonly", "multiserver",
		"coeffgrowth", "advanced", "verify", "voting"} {
		if !seen[want] {
			t.Errorf("experiment %q missing", want)
		}
	}
	if _, ok := ByID("fig3"); !ok {
		t.Error("ByID failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("phantom experiment")
	}
}

func TestSingleExperiments(t *testing.T) {
	// Each figure experiment individually (fast, golden-value checks).
	for _, id := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		var buf bytes.Buffer
		if err := e.Run(&buf, Config{Quick: true}); err != nil {
			t.Errorf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Headers: []string{"a", "bb"}}
	tab.Add(1, "x")
	tab.Add("long-cell", 3.14159)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "long-cell") || !strings.Contains(out, "3.142") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines", len(lines))
	}
}
