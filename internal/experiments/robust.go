package experiments

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
	"time"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/field"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/shamir"
	"sssearch/internal/sharing"
	"sssearch/internal/workload"
	"sssearch/internal/xmltree"
)

func init() {
	register(Experiment{
		ID: "verify", Ref: "§4.3 eqs. (2)-(3)",
		Title: "lying-server detection: tamper injection vs tag-recovery verification",
		Run:   runVerify,
	})
	register(Experiment{
		ID: "voting", Ref: "§3 worked example",
		Title: "secure multi-party voting: majority (Σ) and veto (Π)",
		Run:   runVoting,
	})
}

func runVerify(w io.Writer, cfg Config) error {
	n := 60
	if cfg.Quick {
		n = 25
	}
	doc := workload.RandomTree(workload.TreeConfig{Nodes: n, MaxFanout: 3, Vocab: 8, Seed: 13})
	z := ring.MustIntQuotient(1, 0, 1)
	p, err := buildPipeline(z, doc, "verify")
	if err != nil {
		return err
	}
	// Tamper every node's fetched polynomial in turn; RecoverTag must
	// reject each one.
	var keys []drbg.NodeKey
	p.serverTree.Walk(func(k drbg.NodeKey, _ *sharing.Node) bool {
		keys = append(keys, k)
		return true
	})
	detected := 0
	for _, k := range keys {
		tam := &server.Tamperer{Inner: p.server, CorruptPolyAt: k}
		eng := core.NewEngine(p.ring, p.seed, p.mapping, tam, nil)
		// Query a tag whose resolution path must fetch node k or whose
		// VerifyFull pass re-checks matches; simplest complete trigger:
		// recover every node's tag through the tampering server.
		tagOK := true
		target, err := p.doc.Lookup(k)
		if err != nil {
			return err
		}
		res, lerr := eng.Lookup(target.Tag, core.Opts{Verify: core.VerifyFull})
		if lerr != nil {
			detected++
			tagOK = false
		}
		_ = res
		_ = tagOK
		if lerr == nil && tam.PolyTampered > 0 {
			// The corrupted polynomial was served and still accepted —
			// a real detection failure.
			return fmt.Errorf("tampered node %s served (%d times) but not detected", k, tam.PolyTampered)
		}
	}
	t := &Table{Headers: []string{"tamper style", "trials", "served+detected", "never served"}}
	t.Add("corrupt fetched polynomial", len(keys), detected, len(keys)-detected)
	t.Render(w)
	fmt.Fprintln(w, "(every tampered polynomial that reached the client failed eq. (2)'s consistency check;")
	fmt.Fprintln(w, " 'never served' rows are nodes whose polynomials no verification needed to fetch)")

	// Value forgery under VerifyFull: craft a zero-sum forgery and show
	// VerifyNone accepts it while VerifyFull rejects it.
	caught, err := valueForgeryCaught(p)
	if err != nil {
		return err
	}
	if !caught {
		return fmt.Errorf("crafted value forgery was not caught by VerifyFull")
	}
	fmt.Fprintln(w, "crafted zero-sum value forgery: accepted by VerifyNone, rejected by VerifyFull ✓")
	return nil
}

// valueForgeryCaught fabricates a fake zero evaluation on a leaf and checks
// that VerifyFull detects it.
//
// The forged node must actually be REACHED by the query traversal: every
// ancestor has to be live at the forged tag's point, which holds exactly
// when the leaf's parent's subtree contains that tag. Pick the pair
// accordingly (a leaf plus a differently-tagged node elsewhere under its
// parent).
func valueForgeryCaught(p *pipeline) (bool, error) {
	var leaf drbg.NodeKey
	var otherTag string
	var pick func(n *xmltree.Node) bool
	pick = func(n *xmltree.Node) bool {
		// Look for a leaf child whose parent subtree holds another tag.
		for _, c := range n.Children {
			if len(c.Children) != 0 {
				continue
			}
			for tag := range xmltree.ComputeStats(n).TagCounts {
				if tag != c.Tag {
					leaf = c.Key()
					otherTag = tag
					return true
				}
			}
		}
		for _, c := range n.Children {
			if pick(c) {
				return true
			}
		}
		return false
	}
	if !pick(p.doc) {
		return false, fmt.Errorf("document too uniform for forgery test")
	}
	point, _ := p.mapping.Value(otherTag)
	mod, err := p.ring.EvalModulus(point)
	if err != nil {
		return false, err
	}
	sc := sharing.NewSeedClient(p.ring, p.seed)
	cv, err := sc.EvalShare(leaf, point)
	if err != nil {
		return false, err
	}
	honest, err := p.server.EvalNodes([]drbg.NodeKey{leaf}, []*big.Int{point})
	if err != nil {
		return false, err
	}
	sum := new(big.Int).Add(cv, honest[0].Values[0])
	delta := new(big.Int).Neg(sum)
	delta.Mod(delta, mod)
	forger := &deltaForger{inner: p.server, target: leaf.String(), delta: delta}
	eng := core.NewEngine(p.ring, p.seed, p.mapping, forger, nil)
	// VerifyFull must reject the forged match.
	_, err = eng.Lookup(otherTag, core.Opts{Verify: core.VerifyFull})
	return err != nil, nil
}

// deltaForger adds a fixed delta to every evaluation of one node.
type deltaForger struct {
	inner  core.ServerAPI
	target string
	delta  *big.Int
}

func (f *deltaForger) EvalNodes(keys []drbg.NodeKey, points []*big.Int) ([]core.NodeEval, error) {
	out, err := f.inner.EvalNodes(keys, points)
	if err != nil {
		return nil, err
	}
	for i := range out {
		if out[i].Key.String() != f.target {
			continue
		}
		vals := make([]*big.Int, len(out[i].Values))
		for j, v := range out[i].Values {
			vals[j] = new(big.Int).Add(v, f.delta)
		}
		out[i].Values = vals
	}
	return out, nil
}

func (f *deltaForger) FetchPolys(keys []drbg.NodeKey) ([]core.NodePoly, error) {
	return f.inner.FetchPolys(keys)
}

func (f *deltaForger) Prune(keys []drbg.NodeKey) error { return f.inner.Prune(keys) }

func runVoting(w io.Writer, cfg Config) error {
	f, err := field.NewUint64(2003)
	if err != nil {
		return err
	}
	n := 9
	scheme, err := shamir.NewScheme(f, 4, n)
	if err != nil {
		return err
	}
	votes := make([]*big.Int, n)
	yes := 0
	for i := range votes {
		if i%3 != 0 { // 6 yes, 3 no
			votes[i] = big.NewInt(1)
			yes++
		} else {
			votes[i] = big.NewInt(0)
		}
	}
	openers := []int{0, 2, 4, 6}
	maj, err := shamir.MajorityVote(scheme, votes, openers, rand.Reader)
	if err != nil {
		return err
	}
	if maj.Value.Int64() != int64(yes) {
		return fmt.Errorf("majority tally %v, want %d", maj.Value, yes)
	}

	consent := []*big.Int{big.NewInt(1), big.NewInt(1), big.NewInt(1), big.NewInt(1)}
	veto := []*big.Int{big.NewInt(1), big.NewInt(0), big.NewInt(1), big.NewInt(1)}
	vetoScheme, err := shamir.NewScheme(f, 2, 4)
	if err != nil {
		return err
	}
	unanimous, err := shamir.VetoVote(vetoScheme, consent, rand.Reader)
	if err != nil {
		return err
	}
	vetoed, err := shamir.VetoVote(vetoScheme, veto, rand.Reader)
	if err != nil {
		return err
	}
	if unanimous.Value.Sign() == 0 || vetoed.Value.Sign() != 0 {
		return fmt.Errorf("veto semantics broken: %v / %v", unanimous.Value, vetoed.Value)
	}

	t := &Table{Headers: []string{"protocol", "parties", "threshold", "result", "messages", "opening shares"}}
	t.Add("majority Σ", n, 4, fmt.Sprintf("%v yes of %d", maj.Value, n), maj.MessagesSent, maj.OpeningShares)
	t.Add("veto Π (unanimous)", 4, 2, "passed (nonzero)", unanimous.MessagesSent, unanimous.OpeningShares)
	t.Add("veto Π (one veto)", 4, 2, "blocked (zero)", vetoed.MessagesSent, vetoed.OpeningShares)
	t.Render(w)
	fmt.Fprintln(w, "(no party learns another's vote; no trusted third party counts)")
	return nil
}

// --- helpers used by perf.go ------------------------------------------------

type seedTimer struct{ p *pipeline }

func newSeedTimer(p *pipeline) *seedTimer { return &seedTimer{p: p} }

// timeSeedOnly regenerates every node's client share from the seed.
func (s *seedTimer) timeSeedOnly() (time.Duration, error) {
	client := sharing.NewSeedClient(s.p.ring, s.p.seed)
	var keys []drbg.NodeKey
	s.p.serverTree.Walk(func(k drbg.NodeKey, _ *sharing.Node) bool {
		keys = append(keys, k)
		return true
	})
	start := time.Now()
	for _, k := range keys {
		if _, err := client.Share(k); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// timeMaterialized expands the client tree once, then walks all shares.
func (s *seedTimer) timeMaterialized() (time.Duration, int, error) {
	start := time.Now()
	mat, err := sharing.Materialize(s.p.ring, s.p.seed, s.p.serverTree)
	if err != nil {
		return 0, 0, err
	}
	count := 0
	mat.Walk(func(_ drbg.NodeKey, n *sharing.Node) bool {
		if !n.Poly.IsZero() {
			count++
		}
		return true
	})
	elapsed := time.Since(start)
	return elapsed, mat.ByteSize(), nil
}

// multiServerRun builds a k-of-n deployment and validates evaluation
// reconstruction from every k-subset on sample nodes.
func multiServerRun(w io.Writer, n int) error {
	doc := workload.RandomTree(workload.TreeConfig{Nodes: n, MaxFanout: 4, Vocab: 10, Seed: 31})
	fp := ring.MustFp(257)
	p, err := buildPipeline(fp, doc, "multiserver")
	if err != nil {
		return err
	}
	single := p.serverTree.ByteSize()
	enc := p.encoded
	t := &Table{Headers: []string{"scheme", "servers", "per-server B", "total B", "blowup vs 1-server"}}
	t.Add("single server", 1, single, single, 1.0)
	for _, kn := range [][2]int{{2, 3}, {3, 5}} {
		k, servers := kn[0], kn[1]
		shares, err := sharing.MultiSplit(enc, p.seed, k, servers, rand.Reader)
		if err != nil {
			return err
		}
		per := shares[0].Tree.ByteSize()
		total := 0
		for _, s := range shares {
			total += s.Tree.ByteSize()
		}
		t.Add(fmt.Sprintf("%d-of-%d Shamir", k, servers), servers, per, total,
			float64(total)/float64(single))

		// Validate: evaluations reconstruct from the first k servers on a
		// few nodes.
		client := sharing.NewSeedClient(fp, p.seed)
		a := big.NewInt(5)
		checked := 0
		var failure error
		enc.Walk(func(key drbg.NodeKey, node *polyenc.Node) bool {
			if checked >= 10 {
				return false
			}
			checked++
			want, err := fp.Eval(node.Poly, a)
			if err != nil {
				failure = err
				return false
			}
			evals := make([]sharing.ServerEval, 0, k)
			for j := 0; j < k; j++ {
				sn, err := shares[j].Tree.Lookup(key)
				if err != nil {
					failure = err
					return false
				}
				v, err := fp.Eval(sn.Polynomial(), a)
				if err != nil {
					failure = err
					return false
				}
				evals = append(evals, sharing.ServerEval{X: shares[j].X, Value: v})
			}
			got, err := sharing.MultiReconstructEval(fp, client, key, a, evals, k)
			if err != nil {
				failure = err
				return false
			}
			if got.Cmp(want) != 0 {
				failure = fmt.Errorf("node %s: reconstructed %v, want %v", key, got, want)
				return false
			}
			return true
		})
		if failure != nil {
			return failure
		}
	}
	t.Render(w)
	fmt.Fprintln(w, "(k-of-n keeps the per-query protocol scalar: evaluations recombine by Lagrange weights)")
	return nil
}
