package experiments

import (
	crand "crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"
	"time"

	"sssearch/internal/core"
	"sssearch/internal/drbg"
	"sssearch/internal/mapping"
	"sssearch/internal/metrics"
	"sssearch/internal/obs"
	"sssearch/internal/polyenc"
	"sssearch/internal/ring"
	"sssearch/internal/server"
	"sssearch/internal/sharing"
	"sssearch/internal/workload"
	"sssearch/internal/xmltree"
)

// BenchTarget is one tracked hot-path measurement: the named closures are
// what cmd/sss-bench -json times and what the per-PR BENCH_N.json files
// record, so the perf trajectory of the reproduction is comparable across
// PRs. Names are stable identifiers — do not rename without migrating the
// recorded history.
type BenchTarget struct {
	Name string
	// Fn runs one iteration of the measured operation. Setup cost is paid
	// before BenchTargets returns, not inside Fn.
	Fn func() error
	// Dist, when non-nil, snapshots the latency distribution the target
	// accumulated across its Fn runs (a mergeable log-bucketed histogram).
	// Mean ns/op hides exactly what the overload targets exist to show,
	// so targets whose story is the latency distribution export the whole
	// shape — sss-bench derives p50/p95/p99 from it for the JSON report.
	Dist func() obs.HistSnapshot
	// Metrics, when non-nil, reports named counter snapshots taken after
	// the target's runs — evidence of what machinery the measurement
	// actually exercised (sheds, retries, breaker trips), written by
	// sss-bench -metrics next to the timing report.
	Metrics func() map[string]metrics.Snapshot
}

// BenchTargets builds the tracked measurement set:
//
//   - fig5 / fig6: the paper's worked query figures, golden-checked per
//     iteration (same code path as the F_p and Z benchmarks in
//     bench_test.go).
//   - lookupFp1000Hit: a //t3 lookup over a 1000-node random tree in
//     F_257 with a seed-only client — the protocol's end-to-end hot path,
//     mirroring BenchmarkLookupFp1000Hit.
//   - traceOverhead: the same lookup with every request sampled for
//     end-to-end tracing (span allocation, stage attribution, slow-log
//     insertion) — the cost of observability at its most aggressive
//     setting, read against lookupFp1000Hit, whose runs pay only the
//     per-request "sampling off?" atomic load.
//   - outsourceFp: the write-path mirror of lookupFp1000Hit — the full
//     encode→split outsourcing pipeline (packed parallel fast path, as
//     sssearch.Outsource runs it) over the same 1000-node F_257 document,
//     mirroring BenchmarkOutsourceFp1000.
//   - multiCombine: the k-of-n read path — MultiServer EvalNodes over
//     every node at 4 points plus a 64-node FetchPolys batch against a
//     3-of-4 deployment of in-process Locals. Member evaluations are
//     cache-hot after the first iteration, so the number isolates the
//     Shamir combine (fastfield Lagrange basis vs the old per-point
//     big.Int interpolation), mirroring BenchmarkMultiCombine.
//   - shardQuery: lookupFp1000Hit routed across a 4-shard partitioned
//     deployment of guarded in-process Locals — the scatter/gather
//     overhead against the identical unsharded number, mirroring
//     BenchmarkShardQuery4.
//   - shardOutsource: the sharded write path — encode → split →
//     partition into 4 shard trees over the same document, mirroring
//     BenchmarkShardOutsource4.
//   - outsourceFp100k / shardOutsource100k: the capacity-scale write
//     path — the same pipelines over a 100k-node document (the ROADMAP
//     "outsourcing a 100k-node document becomes routine" target),
//     mirroring BenchmarkOutsourceFp100k and BenchmarkShardOutsource100k.
//     With BenchOpts.SchoolbookBaseline the set also includes
//     outsourceFp100kSchoolbook, the big.Int reference pipeline over the
//     same document (schoolbook polynomial products + sequential big.Int
//     split) — minutes per pass at this scale, so it is opt-in
//     (sss-bench -baselines): the BENCH_N.json recordings carry it so
//     the capacity-scale speedup is measured in the same run.
//   - multiSplit / multiSplitSequential: k-of-n share-tree generation —
//     a 3-of-4 MultiSplit over a 300-node document on the packed
//     vectorized parallel walk versus the retained sequential big.Int
//     reference, mirroring BenchmarkMultiSplit300*.
//   - coalesceQuery: the cross-session hot path — 16 concurrent
//     seed-only sessions all running the //t3 lookup against ONE
//     coalescing store with a shared client pad cache, so concurrent
//     frames drain into shared deduplicated evaluation passes AND the
//     per-session share regeneration collapses into one (one iteration
//     = one 16-session round), mirroring BenchmarkCoalesceQuery16.
//   - sharedPad: the isolated client-side half of that win — 16
//     seed-only clients of one seed evaluating their share on every
//     tree node at the rotating hot point through one SharedPadCache,
//     mirroring BenchmarkSharedPad16.
//   - hedgedTail / unhedgedTail / hedgedFastPath: the tail-latency story
//     of hedged fan-outs — a 2-of-3 MultiServer whose first primary is a
//     deterministic 10 ms straggler, with a 1 ms hedge delay (the spare
//     covers the straggler), with hedging effectively off (the baseline
//     eats the full straggler delay every call), and with no straggler
//     at all (the fault-free cost of keeping hedging armed).
//   - overloadShed / overloadUnbounded: the admission-control story — a
//     fixed-capacity daemon offered 4× its service rate through a
//     retrying session, with the admission cap matched to the backend
//     capacity versus wide open. Both export the latency distribution
//     over served requests (the p50_ns/p95_ns/p99_ns fields of the JSON
//     report): bounded under shedding, growing with the backlog under
//     open admission, with every served answer checked byte-identical to
//     the reference either way.
func BenchTargets() ([]BenchTarget, error) {
	return BenchTargetsWithOpts(BenchOpts{})
}

// BenchOpts selects optional members of the tracked measurement set.
type BenchOpts struct {
	// SchoolbookBaseline includes the big.Int reference pipeline over the
	// capacity-scale document (outsourceFp100kSchoolbook). One pass runs
	// minutes, so it is opt-in: per-PR BENCH_N.json recordings set it
	// (the speedup claim needs baseline and fast path in one run), the
	// routine CI trajectory run does not.
	SchoolbookBaseline bool
}

// BenchTargetsWithOpts is BenchTargets with the optional members
// selected explicitly.
func BenchTargetsWithOpts(o BenchOpts) ([]BenchTarget, error) {
	var targets []BenchTarget
	for _, id := range []string{"fig5", "fig6"} {
		e, ok := ByID(id)
		if !ok {
			return nil, fmt.Errorf("experiments: %s not registered", id)
		}
		run := e.Run
		targets = append(targets, BenchTarget{
			Name: id,
			Fn:   func() error { return run(io.Discard, Config{Quick: true}) },
		})
	}

	doc := workload.RandomTree(workload.TreeConfig{Nodes: 1000, MaxFanout: 4, Vocab: 20, Seed: 1234})
	p, err := buildPipeline(ring.MustFp(257), doc, "bench-lookup-fp-1000")
	if err != nil {
		return nil, err
	}
	if _, ok := p.mapping.Value("t3"); !ok {
		if _, err := p.mapping.Assign("t3"); err != nil {
			return nil, err
		}
	}
	targets = append(targets, BenchTarget{
		Name: "lookupFp1000Hit",
		Fn: func() error {
			_, err := p.engine.Lookup("t3", core.Opts{Verify: core.VerifyResolve})
			return err
		},
	})

	targets = append(targets, BenchTarget{
		Name: "traceOverhead",
		Fn: func() error {
			prev := obs.SampleEvery()
			obs.SetSampleEvery(1)
			defer obs.SetSampleEvery(prev)
			_, err := p.engine.Lookup("t3", core.Opts{Verify: core.VerifyResolve})
			return err
		},
	})

	targets = append(targets, BenchTarget{
		Name: "outsourceFp",
		Fn:   func() error { return OutsourceFpOnce(doc, false) },
	})

	combine, err := NewMultiCombineWorkload(false)
	if err != nil {
		return nil, err
	}
	targets = append(targets, BenchTarget{
		Name: "multiCombine",
		Fn:   combine.Run,
	})

	shardQ, err := NewShardQueryWorkload(4)
	if err != nil {
		return nil, err
	}
	targets = append(targets, BenchTarget{
		Name: "shardQuery",
		Fn:   shardQ.Run,
	})

	targets = append(targets, BenchTarget{
		Name: "shardOutsource",
		Fn:   func() error { return ShardOutsourceOnce(doc, 4) },
	})

	scaleDoc := OutsourceFpScaleDoc()
	targets = append(targets, BenchTarget{
		Name: "outsourceFp100k",
		Fn:   func() error { return OutsourceFpScaleOnce(scaleDoc, false) },
	})
	if o.SchoolbookBaseline {
		targets = append(targets, BenchTarget{
			Name: "outsourceFp100kSchoolbook",
			Fn:   func() error { return OutsourceFpScaleOnce(scaleDoc, true) },
		})
	}
	targets = append(targets, BenchTarget{
		Name: "shardOutsource100k",
		Fn:   func() error { return ShardOutsourceOnce(scaleDoc, 4) },
	})

	msw, err := NewMultiSplitWorkload()
	if err != nil {
		return nil, err
	}
	targets = append(targets, BenchTarget{
		Name: "multiSplit",
		Fn:   msw.Run,
	})
	targets = append(targets, BenchTarget{
		Name: "multiSplitSequential",
		Fn:   msw.RunSequential,
	})

	coalQ, err := NewCoalesceQueryWorkload(16, QueryShared)
	if err != nil {
		return nil, err
	}
	targets = append(targets, BenchTarget{
		Name: "coalesceQuery",
		Fn:   coalQ.Run,
	})

	sharedPad, err := NewSharedPadWorkload(16, true)
	if err != nil {
		return nil, err
	}
	targets = append(targets, BenchTarget{
		Name: "sharedPad",
		Fn:   sharedPad.Run,
	})

	const straggler = 10 * time.Millisecond
	hedged, err := NewHedgeWorkload(straggler, time.Millisecond)
	if err != nil {
		return nil, err
	}
	targets = append(targets, BenchTarget{
		Name: "hedgedTail",
		Fn:   hedged.Run,
	})
	unhedged, err := NewHedgeWorkload(straggler, time.Hour)
	if err != nil {
		return nil, err
	}
	targets = append(targets, BenchTarget{
		Name: "unhedgedTail",
		Fn:   unhedged.Run,
	})
	fastPath, err := NewHedgeWorkload(0, time.Millisecond)
	if err != nil {
		return nil, err
	}
	targets = append(targets, BenchTarget{
		Name: "hedgedFastPath",
		Fn:   fastPath.Run,
	})

	shed, err := NewOverloadWorkload(true)
	if err != nil {
		return nil, err
	}
	targets = append(targets, BenchTarget{
		Name:    "overloadShed",
		Fn:      shed.Run,
		Dist:    shed.Dist,
		Metrics: shed.Metrics,
	})
	unbounded, err := NewOverloadWorkload(false)
	if err != nil {
		return nil, err
	}
	targets = append(targets, BenchTarget{
		Name:    "overloadUnbounded",
		Fn:      unbounded.Run,
		Dist:    unbounded.Dist,
		Metrics: unbounded.Metrics,
	})
	return targets, nil
}

// OutsourceFpDoc builds the write-path workload document: the same
// 1000-node F_257 corpus as the lookupFp1000Hit read-path target, so the
// BENCH_N.json trajectory covers both halves of the protocol over one
// document. Also driven by BenchmarkOutsourceFp1000*.
func OutsourceFpDoc() *xmltree.Node {
	return workload.RandomTree(workload.TreeConfig{Nodes: 1000, MaxFanout: 4, Vocab: 20, Seed: 1234})
}

// OutsourceFpOnce runs one full outsourcing pass over doc. sequential
// false is the production fast path exactly as sssearch.Outsource runs
// it (fresh ring and mapping, PackedOnly parallel encode, packed
// parallel split); sequential true is the retained big.Int-boundary
// reference pipeline (boundary-crossing encode + SplitSequential).
func OutsourceFpOnce(doc *xmltree.Node, sequential bool) error {
	fp := ring.MustFp(257)
	m, err := mapping.New(fp.MaxTag(), []byte("bench-outsource-fp"))
	if err != nil {
		return err
	}
	seed := drbg.Seed(sha256.Sum256([]byte("bench-outsource-fp")))
	if sequential {
		enc, err := polyenc.Encode(fp, doc, m)
		if err != nil {
			return err
		}
		_, err = sharing.SplitSequential(enc, seed)
		return err
	}
	enc, err := polyenc.EncodeWithOpts(fp, doc, m, polyenc.Opts{PackedOnly: true})
	if err != nil {
		return err
	}
	_, err = sharing.Split(enc, seed)
	return err
}

// OutsourceFpScaleDoc builds the capacity-scale write-path corpus: a
// 100k-node F_257 document, two orders of magnitude over OutsourceFpDoc.
// At this size most interior products saturate the ring's degree bound,
// so the encode exercises the transform engine rather than the short
// schoolbook path. Also driven by BenchmarkOutsourceFp100k* and
// BenchmarkShardOutsource100k.
func OutsourceFpScaleDoc() *xmltree.Node {
	return workload.RandomTree(workload.TreeConfig{Nodes: 100000, MaxFanout: 4, Vocab: 40, Seed: 99})
}

// OutsourceFpScaleOnce runs one full outsourcing pass over the
// capacity-scale document. schoolbook false is the production fast path
// exactly as sssearch.Outsource runs it (packed parallel encode through
// the NTT engine, packed parallel split); schoolbook true is the big.Int
// reference pipeline end to end — SetFast(false) encode (schoolbook
// polynomial products on math/big) plus SplitSequential — the baseline
// the capacity-scale speedup is measured against. The reference pass
// runs minutes at this scale, which is the point: the fast path turns
// the same workload into seconds.
func OutsourceFpScaleOnce(doc *xmltree.Node, schoolbook bool) error {
	fp := ring.MustFp(257)
	m, err := mapping.New(fp.MaxTag(), []byte("bench-outsource-fp-100k"))
	if err != nil {
		return err
	}
	seed := drbg.Seed(sha256.Sum256([]byte("bench-outsource-fp-100k")))
	if schoolbook {
		fp.SetFast(false)
		enc, err := polyenc.Encode(fp, doc, m)
		if err != nil {
			return err
		}
		_, err = sharing.SplitSequential(enc, seed)
		return err
	}
	enc, err := polyenc.EncodeWithOpts(fp, doc, m, polyenc.Opts{PackedOnly: true})
	if err != nil {
		return err
	}
	_, err = sharing.Split(enc, seed)
	return err
}

// MultiSplitWorkload is the k-of-n write-path fixture behind the
// multiSplit / multiSplitSequential bench targets and
// BenchmarkMultiSplit300*: 3-of-4 Shamir share-tree generation over a
// 300-node F_257 document. The parallel target runs the packed
// vectorized walk, the sequential one the retained big.Int reference —
// together they are the before/after pair for the MultiSplit port.
type MultiSplitWorkload struct {
	enc  *polyenc.Tree
	seed drbg.Seed
}

// NewMultiSplitWorkload encodes the fixture document once; Run and
// RunSequential share it (MultiSplit does not mutate the encode tree).
func NewMultiSplitWorkload() (*MultiSplitWorkload, error) {
	fp := ring.MustFp(257)
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 300, MaxFanout: 4, Vocab: 12, Seed: 77})
	m, err := mapping.New(fp.MaxTag(), []byte("bench-multi-split"))
	if err != nil {
		return nil, err
	}
	enc, err := polyenc.Encode(fp, doc, m)
	if err != nil {
		return nil, err
	}
	return &MultiSplitWorkload{
		enc:  enc,
		seed: drbg.Seed(sha256.Sum256([]byte("bench-multi-split"))),
	}, nil
}

// Run generates one 3-of-4 share set on the parallel packed walk.
func (w *MultiSplitWorkload) Run() error {
	_, err := sharing.MultiSplit(w.enc, w.seed, 3, 4, crand.Reader)
	return err
}

// RunSequential generates the same share set on the sequential big.Int
// reference walk.
func (w *MultiSplitWorkload) RunSequential() error {
	_, err := sharing.MultiSplitSequential(w.enc, w.seed, 3, 4, crand.Reader)
	return err
}

// MultiCombineWorkload is the shared k-of-n combine fixture behind the
// multiCombine bench target and BenchmarkMultiCombine*: a 3-of-4
// deployment of in-process Locals over a 300-node F_257 document. After
// the first Run the member evaluations are cache-hot, so repeated Runs
// measure the Shamir combine itself.
type MultiCombineWorkload struct {
	ms     *core.MultiServer
	keys   []drbg.NodeKey
	fetch  []drbg.NodeKey
	points []*big.Int
}

// NewMultiCombineWorkload assembles the fixture. bigCombine true selects
// the per-point big.Int interpolation ablation.
func NewMultiCombineWorkload(bigCombine bool) (*MultiCombineWorkload, error) {
	fp := ring.MustFp(257)
	doc := workload.RandomTree(workload.TreeConfig{Nodes: 300, MaxFanout: 4, Vocab: 12, Seed: 77})
	m, err := mapping.New(fp.MaxTag(), []byte("bench-multi-combine"))
	if err != nil {
		return nil, err
	}
	enc, err := polyenc.Encode(fp, doc, m)
	if err != nil {
		return nil, err
	}
	seed := drbg.Seed(sha256.Sum256([]byte("bench-multi-combine")))
	shares, err := sharing.MultiSplit(enc, seed, 3, 4, crand.Reader)
	if err != nil {
		return nil, err
	}
	members := make([]core.MultiMember, len(shares))
	for i, s := range shares {
		srv, err := server.NewLocal(fp, s.Tree)
		if err != nil {
			return nil, err
		}
		members[i] = core.MultiMember{X: s.X, API: srv}
	}
	ms, err := core.NewMultiServer(fp, 3, members)
	if err != nil {
		return nil, err
	}
	ms.BigCombine = bigCombine
	var keys []drbg.NodeKey
	enc.Walk(func(key drbg.NodeKey, _ *polyenc.Node) bool {
		keys = append(keys, key)
		return true
	})
	fetch := keys
	if len(fetch) > 64 {
		fetch = fetch[:64]
	}
	return &MultiCombineWorkload{
		ms:     ms,
		keys:   keys,
		fetch:  fetch,
		points: []*big.Int{big.NewInt(2), big.NewInt(3), big.NewInt(5), big.NewInt(7)},
	}, nil
}

// Run performs one combine iteration: EvalNodes over every node at the
// four points plus a 64-node FetchPolys batch.
func (w *MultiCombineWorkload) Run() error {
	if _, err := w.ms.EvalNodes(w.keys, w.points); err != nil {
		return err
	}
	_, err := w.ms.FetchPolys(w.fetch)
	return err
}
