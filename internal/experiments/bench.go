package experiments

import (
	"fmt"
	"io"

	"sssearch/internal/core"
	"sssearch/internal/ring"
	"sssearch/internal/workload"
)

// BenchTarget is one tracked hot-path measurement: the named closures are
// what cmd/sss-bench -json times and what the per-PR BENCH_N.json files
// record, so the perf trajectory of the reproduction is comparable across
// PRs. Names are stable identifiers — do not rename without migrating the
// recorded history.
type BenchTarget struct {
	Name string
	// Fn runs one iteration of the measured operation. Setup cost is paid
	// before BenchTargets returns, not inside Fn.
	Fn func() error
}

// BenchTargets builds the tracked measurement set:
//
//   - fig5 / fig6: the paper's worked query figures, golden-checked per
//     iteration (same code path as the F_p and Z benchmarks in
//     bench_test.go).
//   - lookupFp1000Hit: a //t3 lookup over a 1000-node random tree in
//     F_257 with a seed-only client — the protocol's end-to-end hot path,
//     mirroring BenchmarkLookupFp1000Hit.
func BenchTargets() ([]BenchTarget, error) {
	var targets []BenchTarget
	for _, id := range []string{"fig5", "fig6"} {
		e, ok := ByID(id)
		if !ok {
			return nil, fmt.Errorf("experiments: %s not registered", id)
		}
		run := e.Run
		targets = append(targets, BenchTarget{
			Name: id,
			Fn:   func() error { return run(io.Discard, Config{Quick: true}) },
		})
	}

	doc := workload.RandomTree(workload.TreeConfig{Nodes: 1000, MaxFanout: 4, Vocab: 20, Seed: 1234})
	p, err := buildPipeline(ring.MustFp(257), doc, "bench-lookup-fp-1000")
	if err != nil {
		return nil, err
	}
	if _, ok := p.mapping.Value("t3"); !ok {
		if _, err := p.mapping.Assign("t3"); err != nil {
			return nil, err
		}
	}
	targets = append(targets, BenchTarget{
		Name: "lookupFp1000Hit",
		Fn: func() error {
			_, err := p.engine.Lookup("t3", core.Opts{Verify: core.VerifyResolve})
			return err
		},
	})
	return targets, nil
}
